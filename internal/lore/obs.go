package lore

import "repro/internal/obs"

// Store metrics (see docs/observability.md).
var (
	mApplies       = obs.NewCounter("lore_apply_total")
	mApplyNs       = obs.NewHistogram("lore_apply_ns")
	mCheckpoints   = obs.NewCounter("lore_checkpoint_total")
	mCheckpointNs  = obs.NewHistogram("lore_checkpoint_ns")
	mApplyFailures = obs.NewCounter("lore_apply_failures_total")
)
