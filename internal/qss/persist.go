package qss

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/timestamp"
)

// Subscription state persistence: the accumulated DOEM history, the source
// id remap, and the polling times of a subscription can be exported and
// re-imported, so a QSS server restart (or a migration of the subscription
// to another server) does not lose history. The paper's QSS keeps this
// state in Lore; here it is a self-contained JSON document the caller can
// put wherever it likes (e.g. a lore.Store via PutOEM/PutDOEM, or a file).

// wireState is the serialized subscription state.
type wireState struct {
	Name      string            `json:"name"`
	DOEM      json.RawMessage   `json:"doem"`
	Remap     map[uint64]uint64 `json:"remap,omitempty"`
	NextID    uint64            `json:"next_id"`
	PollTimes []string          `json:"poll_times,omitempty"`
}

// ExportState serializes the named subscription's accumulated state.
func (s *Service) ExportState(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSub, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.marshalState(name)
}

// marshalState serializes the subscription state; st.mu must be held.
func (st *subState) marshalState(name string) ([]byte, error) {
	dd, err := st.d.Marshal()
	if err != nil {
		return nil, fmt.Errorf("qss: export: %w", err)
	}
	w := wireState{Name: name, DOEM: dd, NextID: uint64(st.nextID)}
	w.Remap = make(map[uint64]uint64, len(st.remap))
	for src, id := range st.remap {
		w.Remap[uint64(src)] = uint64(id)
	}
	for _, t := range st.pollTimes {
		w.PollTimes = append(w.PollTimes, t.String())
	}
	return json.Marshal(w)
}

// ImportState restores a subscription's accumulated state. The subscription
// must already exist (Subscribe first — sources and queries are not part of
// the state) and must not have been polled yet.
func (s *Service) ImportState(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replNode != nil {
		// Imported state would diverge from what the replicated oplog
		// replays; replicated subscriptions recover from the oplog alone.
		return errors.New("qss: import is not supported under replication")
	}
	st, ok := s.subs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchSub, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.pollTimes) > 0 {
		return fmt.Errorf("qss: import into already-polled subscription %q", name)
	}
	if err := st.restoreState(data); err != nil {
		return err
	}
	// Under WAL persistence the imported state supersedes whatever the log
	// replayed: record it as a checkpoint so the next restart agrees.
	if st.log != nil {
		ck, err := st.marshalState(name)
		if err != nil {
			return err
		}
		if err := st.log.Checkpoint(ck, st.log.LastSeq()); err != nil {
			return fmt.Errorf("qss: import: %w", err)
		}
	}
	// Under segmented persistence the store on disk is superseded wholesale:
	// reseed it from the imported database (which carries the full history
	// in its new active segment) and rewrite the sidecar.
	if st.seg != nil {
		if err := s.reseedSegments(st); err != nil {
			return err
		}
	}
	return nil
}

// restoreState deserializes subscription state into st; st.mu must be held.
func (st *subState) restoreState(data []byte) error {
	var w wireState
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("qss: import: %w", err)
	}
	d, err := doem.Unmarshal(w.DOEM)
	if err != nil {
		return fmt.Errorf("qss: import: %w", err)
	}
	times := make([]timestamp.Time, 0, len(w.PollTimes))
	for _, ts := range w.PollTimes {
		t, err := timestamp.Parse(ts)
		if err != nil {
			return fmt.Errorf("qss: import: %w", err)
		}
		times = append(times, t)
	}
	st.setDOEM(d)
	st.nextID = oem.NodeID(w.NextID)
	st.remap = make(map[oem.NodeID]oem.NodeID, len(w.Remap))
	for src, id := range w.Remap {
		st.remap[oem.NodeID(src)] = oem.NodeID(id)
	}
	st.pollTimes = times
	return nil
}
