package guidegen

import (
	"testing"

	"repro/internal/doem"
	"repro/internal/value"
)

func TestPaperGuideShape(t *testing.T) {
	db, ids := PaperGuide()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(db.OutLabeled(ids.Guide, "restaurant")); got != 2 {
		t.Errorf("restaurants = %d, want 2", got)
	}
	if v := db.MustValue(ids.Price); !v.Equal(value.Int(10)) {
		t.Errorf("Bangkok price = %s, want 10", v)
	}
	if v := db.MustValue(ids.JantaPrice); !v.Equal(value.Str("moderate")) {
		t.Errorf("Janta price = %s", v)
	}
	// Shared parking and the cycle.
	if !db.HasArc(ids.Bangkok, "parking", ids.Parking) || !db.HasArc(ids.Janta, "parking", ids.Parking) {
		t.Error("parking not shared")
	}
	if !db.HasArc(ids.Parking, "nearby-eats", ids.Bangkok) {
		t.Error("nearby-eats cycle missing")
	}
}

func TestPaperHistoryValid(t *testing.T) {
	db, ids := PaperGuide()
	h := PaperHistory(ids)
	if err := h.Validate(db); err != nil {
		t.Fatalf("paper history invalid: %v", err)
	}
	if _, err := doem.FromHistory(db, h); err != nil {
		t.Fatalf("DOEM construction: %v", err)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(42, 50)
	b := Synthetic(42, 50)
	if !a.Equal(b) {
		t.Error("same seed produced different databases")
	}
	c := Synthetic(43, 50)
	if a.Equal(c) {
		t.Error("different seeds produced identical databases")
	}
}

func TestSyntheticShape(t *testing.T) {
	db := Synthetic(7, 100)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	rests := db.OutLabeled(db.Root(), "restaurant")
	if len(rests) != 100 {
		t.Fatalf("restaurants = %d", len(rests))
	}
	// Structural irregularity must actually occur: count price kinds.
	intPrices, strPrices, noPrices := 0, 0, 0
	strAddrs, cplxAddrs := 0, 0
	for _, ra := range rests {
		prices := db.OutLabeled(ra.Child, "price")
		switch {
		case len(prices) == 0:
			noPrices++
		case db.MustValue(prices[0].Child).Kind() == value.KindInt:
			intPrices++
		default:
			strPrices++
		}
		for _, aa := range db.OutLabeled(ra.Child, "address") {
			if db.MustValue(aa.Child).IsComplex() {
				cplxAddrs++
			} else {
				strAddrs++
			}
		}
	}
	for name, n := range map[string]int{
		"int prices": intPrices, "string prices": strPrices, "missing prices": noPrices,
		"string addresses": strAddrs, "complex addresses": cplxAddrs,
	} {
		if n == 0 {
			t.Errorf("synthetic guide has no %s — irregularity lost", name)
		}
	}
}

func TestEvolverStepsProduceValidHistory(t *testing.T) {
	initial, h := GenerateHistory(11, 30, 10, 8)
	if err := h.Validate(initial); err != nil {
		t.Fatalf("generated history invalid: %v", err)
	}
	if len(h) == 0 {
		t.Fatal("no steps generated")
	}
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatalf("DOEM over generated history: %v", err)
	}
	if !d.Feasible() {
		t.Error("generated DOEM infeasible")
	}
	total := 0
	for _, s := range h {
		total += len(s.Ops)
	}
	if total < 20 {
		t.Errorf("history too sparse: %d ops", total)
	}
}

func TestGenerateHistoryDeterministic(t *testing.T) {
	i1, h1 := GenerateHistory(5, 20, 5, 5)
	i2, h2 := GenerateHistory(5, 20, 5, 5)
	if !i1.Equal(i2) {
		t.Error("initial snapshots differ")
	}
	if len(h1) != len(h2) {
		t.Fatalf("history lengths differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i].Ops.String() != h2[i].Ops.String() {
			t.Errorf("step %d differs", i)
		}
	}
}
