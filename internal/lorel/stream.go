package lorel

import (
	"errors"
	"os"
	"sync/atomic"

	"repro/internal/oem"
	"repro/internal/symbol"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// This file is the streaming half of the evaluation core: a push-style
// depth-first path walker that yields matches one at a time instead of
// materializing []pathResult frontiers. Consumers stop the walk early by
// returning errStop from the yield — `exists` stops at its first witness,
// enumerate streams generator bindings into the next generator without
// holding a candidate slice, and the planned executor's existential
// search stops expanding the instant a completion satisfies.
//
// The walker is provably order-identical to the materializing BFS in
// evalPath: both visit the step-k matches of a path in the same sequence
// (the DFS emission order at depth k is the concatenation, over depth
// k-1 matches in order, of each match's expansions — exactly the order
// the BFS frontier loop appends them), and both apply the same per-step
// first-occurrence dedup, so the dedup decisions coincide too. The
// streaming-vs-materialized parity suite holds both halves to that.
//
// One semantic note, documented in docs/eval.md: early termination can
// skip path-expansion work the materializing evaluator would have done
// after the stopping point, so an error lurking past the first witness
// of an `exists` is not surfaced. This mirrors the planner's contract
// (pushed conjuncts must be pure and error-free for reordering) — the
// set of *successful* results is unchanged; only doomed work is skipped.

// errStop is the sentinel a pathYield returns to end a walk early. It
// never escapes the package: walkPath returns it to the caller that
// injected it, which converts it back to a normal stop.
var errStop = errors.New("lorel: stop iteration")

// pathYield consumes one path match. Returning errStop ends the walk
// early and successfully; any other error aborts it.
type pathYield func(pathResult) error

// streamDisabled flips the evaluator back to materialize-then-filter
// enumeration (the pre-streaming reference semantics) for A/B parity
// testing and benchmarking. The `exists` short-circuit is a bugfix, not
// an optimization, and stays on either way.
var streamDisabled atomic.Bool

func init() {
	if v := os.Getenv("REPRO_NOSTREAM"); v != "" && v != "0" {
		streamDisabled.Store(true)
	}
}

// StreamingEnabled reports whether evaluations stream generator and
// aggregate bindings through the pull-free walker (the default) instead
// of materializing candidate slices. REPRO_NOSTREAM or SetStreaming
// turns it off — mirroring plan.Enabled. Each evaluation snapshots the
// gate once when it starts.
func StreamingEnabled() bool { return !streamDisabled.Load() }

// SetStreaming sets the package-wide default and returns the previous
// value.
func SetStreaming(on bool) (prev bool) { return !streamDisabled.Swap(!on) }

// stepCtx is the per-step state of one walk: the resolved label matcher
// (symbol id, canonical pattern) and the step's persistent dedup sets.
// Resolving once per walk instead of once per binding is itself a win —
// the materializing evaluator re-asserted optional interfaces and
// re-examined the label for every frontier element.
type stepCtx struct {
	step  *PathStep
	binds bool // step binds annotation variables; dedup must not apply
	exact bool // label matches by equality (no '%' glob)
	sym   symbol.ID
	symOK bool   // sym resolved: interning on and the label is interned
	canon string // canonical pattern for fallback equality scans

	// Per-step dedup, identical to evalPath's fresh closure: starts on
	// bare NodeIDs under a shared as-of template and migrates to full
	// visitKeys only if a binding breaks the pattern.
	ids map[oem.NodeID]bool
	gen map[visitKey]bool
	ref binding
}

func (st *stepCtx) init(s *PathStep) {
	st.step = s
	st.binds = stepBindsVars(s)
	if s.Group == nil && !s.Hash {
		st.exact = exactLabel(s)
		st.canon = s.Label
		if st.exact && symbol.Enabled() {
			if id, ok := symbol.Lookup(s.Label); ok {
				st.sym, st.symOK = id, true
				st.canon = symbol.String(id)
			}
		}
	}
}

// match reports whether an arc label matches the step. Exact patterns
// compare against the canonical string, so matches against interned
// arc labels hit the runtime's pointer-equality fast path.
func (st *stepCtx) match(label string) bool {
	if st.exact {
		return st.canon == label
	}
	return value.Str(label).Like(st.step.Label)
}

// fresh is evalPath's per-step first-occurrence dedup as a method.
func (st *stepCtx) fresh(b binding) bool {
	if st.gen == nil && b.kind == bNode {
		if st.ids == nil {
			st.ids = make(map[oem.NodeID]bool, 16)
			st.ref = b
		}
		if b.hasAsOf == st.ref.hasAsOf && (!b.hasAsOf || b.asOf == st.ref.asOf) {
			if st.ids[b.id] {
				return false
			}
			st.ids[b.id] = true
			return true
		}
	}
	if st.gen == nil {
		st.gen = make(map[visitKey]bool, len(st.ids)+16)
		for id := range st.ids {
			rb := st.ref
			rb.id = id
			st.gen[rb.visitKey()] = true
		}
	}
	k := b.visitKey()
	if st.gen[k] {
		return false
	}
	st.gen[k] = true
	return true
}

// pathWalker carries one walk's hoisted state: the head graph's optional
// fast-path interfaces (asserted once per walk, not once per binding)
// and the per-step contexts. All bindings reached from one head share
// its graph, so the hoist is sound.
type pathWalker struct {
	ev    *evaluation
	yield pathYield
	steps []stepCtx

	g     Graph
	ls    LabelSeeker
	hasLS bool
	as    AllLabelSeeker
	hasAS bool
	ts    TimeSeeker
	hasTS bool
	ss    SymSeeker
	hasSS bool
}

// walkPath streams the matches of p under en to yield, in exactly the
// order evalPath would materialize them. yield returning errStop ends
// the walk early; walkPath returns errStop in that case so the caller
// can distinguish its own stop from a real error.
func (ev *evaluation) walkPath(en *env, p *PathExpr, yield pathYield) error {
	var head pathResult
	if b, ok := en.lookup(p.Head); ok {
		head = pathResult{b: b, env: en}
	} else if g, ok := ev.graphs[p.Head]; ok {
		head = pathResult{b: nodeBinding(g, g.Root()), env: en}
	} else {
		return errf(p.P, "unknown name %q (neither a variable in scope nor a registered database)", p.Head)
	}
	if len(p.Steps) == 0 {
		return yield(head)
	}
	w := pathWalker{ev: ev, yield: yield, steps: make([]stepCtx, len(p.Steps))}
	for i, s := range p.Steps {
		w.steps[i].init(s)
	}
	if head.b.kind == bNode {
		w.g = head.b.g
		w.ls, w.hasLS = w.g.(LabelSeeker)
		w.as, w.hasAS = w.g.(AllLabelSeeker)
		w.ts, w.hasTS = w.g.(TimeSeeker)
		w.ss, w.hasSS = w.g.(SymSeeker)
	}
	return w.walk(head, 0)
}

// walk expands cur through the steps from depth on, yielding completed
// matches.
func (w *pathWalker) walk(cur pathResult, depth int) error {
	if depth == len(w.steps) {
		return w.yield(cur)
	}
	if err := w.ev.checkCancel(); err != nil {
		return err
	}
	return w.expand(cur, depth)
}

// deliver applies depth's dedup to one reached binding and recurses.
func (w *pathWalker) deliver(r pathResult, depth int) error {
	st := &w.steps[depth]
	if !st.binds && !st.fresh(r.b) {
		return nil
	}
	return w.walk(r, depth+1)
}

// liveArcs is evaluation.liveArcs with the TimeSeeker assertion hoisted.
func (w *pathWalker) liveArcs(b binding, n oem.NodeID) []oem.Arc {
	if !b.hasAsOf {
		return w.g.Out(n)
	}
	if w.hasTS {
		return w.ts.OutAt(n, b.asOf)
	}
	var arcs []oem.Arc
	for _, a := range w.g.OutAll(n) {
		if w.g.ArcLiveAt(a, b.asOf) {
			arcs = append(arcs, a)
		}
	}
	return arcs
}

// expand applies one path step to one binding, delivering each reached
// binding. It mirrors evaluation.expandStep case for case; the only
// differences are streaming delivery and the hoisted per-step matcher.
func (w *pathWalker) expand(cur pathResult, depth int) error {
	if cur.b.kind != bNode {
		return nil // cannot traverse from a value or null
	}
	st := &w.steps[depth]
	step := st.step
	g := w.g

	// Regular path group: (a.b|c) with an optional quantifier. Groups
	// materialize their reached set (the quantifier closure needs it) and
	// stream the sorted result.
	if step.Group != nil {
		for _, r := range w.ev.expandGroup(nil, cur, step.Group) {
			if err := w.deliver(r, depth); err != nil {
				return err
			}
		}
		return nil
	}

	// '#' wildcard: all nodes reachable in zero or more steps, streamed
	// in the same stack order the materializing walker produced — an
	// exists over guide.# stops the closure at its first witness.
	if step.Hash {
		seen := map[oem.NodeID]bool{cur.b.id: true}
		stack := []oem.NodeID{cur.b.id}
		for len(stack) > 0 {
			if err := w.ev.checkCancel(); err != nil {
				return err
			}
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nb := cur.b
			nb.id = n
			if err := w.deliver(pathResult{b: nb, env: cur.env}, depth); err != nil {
				return err
			}
			for _, a := range w.liveArcs(cur.b, n) {
				if !seen[a.Child] {
					seen[a.Child] = true
					stack = append(stack, a.Child)
				}
			}
		}
		return nil
	}

	switch {
	case step.Arc == nil:
		// Exact-label steps over the current snapshot resolve from the
		// adjacency index when the graph provides one — by symbol id when
		// the tables are sym-keyed, by string otherwise. Both return arcs
		// in the same insertion order the scan below would produce.
		if st.exact && !cur.b.hasAsOf {
			if w.hasSS && st.symOK {
				if arcs, ok := w.ss.OutLabeledSym(cur.b.id, st.sym); ok {
					for _, a := range arcs {
						if err := w.child(cur, depth, a.Child, cur.env, nil); err != nil {
							return err
						}
					}
					return nil
				}
			}
			if w.hasLS {
				for _, a := range w.ls.OutLabeled(cur.b.id, step.Label) {
					if err := w.child(cur, depth, a.Child, cur.env, nil); err != nil {
						return err
					}
				}
				return nil
			}
		}
		for _, a := range w.liveArcs(cur.b, cur.b.id) {
			if !st.match(a.Label) {
				continue
			}
			if err := w.child(cur, depth, a.Child, cur.env, nil); err != nil {
				return err
			}
		}
	case step.Arc.Op == OpAdd || step.Arc.Op == OpRem:
		wantKind := annotKindFor(step.Arc.Op)
		// Exact-label annotation steps read the (parent, label) slice of
		// the full arc relation instead of scanning every arc ever.
		arcs, served := []oem.Arc(nil), false
		if st.exact && w.hasSS && st.symOK {
			arcs, served = w.ss.OutAllLabeledSym(cur.b.id, st.sym)
		}
		if !served {
			if st.exact && w.hasAS {
				arcs = w.as.OutAllLabeled(cur.b.id, step.Label)
			} else {
				arcs = g.OutAll(cur.b.id)
			}
		}
		for _, a := range arcs {
			if !st.match(a.Label) {
				continue
			}
			for _, ann := range g.ArcAnnots(a) {
				if ann.Kind != wantKind {
					continue
				}
				en := cur.env
				if step.Arc.AtVar != "" {
					en = en.extend(step.Arc.AtVar, valueBinding(value.Time(ann.At)))
				}
				if err := w.child(cur, depth, a.Child, en, nil); err != nil {
					return err
				}
			}
		}
	case step.Arc.Op == OpAt:
		t, ok, err := w.ev.evalTime(cur.env, step.Arc.AtExpr)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if w.hasTS {
			for _, a := range w.ts.OutAt(cur.b.id, t) {
				if !st.match(a.Label) {
					continue
				}
				if err := w.child(cur, depth, a.Child, cur.env, &t); err != nil {
					return err
				}
			}
			return nil
		}
		for _, a := range g.OutAll(cur.b.id) {
			if !st.match(a.Label) {
				continue
			}
			if g.ArcLiveAt(a, t) {
				if err := w.child(cur, depth, a.Child, cur.env, &t); err != nil {
					return err
				}
			}
		}
	default:
		return errf(step.P, "%s annotation cannot precede an arc label", step.Arc.Op)
	}
	return nil
}

// child applies the step's node annotation to one reached child and
// delivers the survivors — the streaming form of appendChild +
// applyNodeAnnot.
func (w *pathWalker) child(cur pathResult, depth int, id oem.NodeID, en *env, asOf *timestamp.Time) error {
	nb := cur.b
	nb.id = id
	if asOf != nil {
		nb.hasAsOf = true
		nb.asOf = *asOf
	}
	r := pathResult{b: nb, env: en}
	ann := w.steps[depth].step.Node
	if ann == nil {
		return w.deliver(r, depth)
	}
	g := w.g
	switch ann.Op {
	case OpCre:
		ct, ok := g.CreTime(r.b.id)
		if !ok {
			return nil
		}
		if ann.AtVar != "" {
			r.env = r.env.extend(ann.AtVar, valueBinding(value.Time(ct)))
		}
		return w.deliver(r, depth)
	case OpUpd:
		for _, u := range g.UpdTriples(r.b.id) {
			en := r.env
			if ann.AtVar != "" {
				en = en.extend(ann.AtVar, valueBinding(value.Time(u.At)))
			}
			if ann.FromVar != "" {
				en = en.extend(ann.FromVar, valueBinding(u.Old))
			}
			if ann.ToVar != "" {
				en = en.extend(ann.ToVar, valueBinding(u.New))
			}
			if err := w.deliver(pathResult{b: r.b, env: en}, depth); err != nil {
				return err
			}
		}
		return nil
	case OpAt:
		t, ok, err := w.ev.evalTime(r.env, ann.AtExpr)
		if err != nil || !ok {
			return err
		}
		r.b.hasAsOf = true
		r.b.asOf = t
		return w.deliver(r, depth)
	default:
		return errf(ann.P, "%s annotation cannot follow a label", ann.Op)
	}
}

// nullBind extends en for an empty existential generator: the range
// variable and the annotation variables its path would have bound go to
// null — except names already bound in the enclosing scope, which must
// stay visible. (Null-binding a name an earlier generator bound would
// shadow a real binding and silently falsify predicates over it.)
func nullBind(en *env, g FromItem) *env {
	nen := en.extend(g.Var, binding{kind: bNull})
	for _, v := range pathAnnotVars(g.Path) {
		if _, bound := en.lookup(v); bound {
			continue
		}
		nen = nen.extend(v, binding{kind: bNull})
	}
	return nen
}
