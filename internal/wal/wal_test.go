package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// testStep builds the i-th step of a simple deterministic history: each
// step creates one restaurant object with a name and links it to the root.
func testStep(i int) change.Step {
	base := oem.NodeID(1 + 2*i)
	return change.Step{
		At: timestamp.FromUnix(int64(1000 + i)),
		Ops: change.Set{
			change.CreNode{Node: base + 1, Value: value.Complex()},
			change.CreNode{Node: base + 2, Value: value.Str("Restaurant")},
			change.AddArc{Parent: 1, Label: "restaurant", Child: base + 1},
			change.AddArc{Parent: base + 1, Label: "name", Child: base + 2},
		},
	}
}

func appendSteps(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		s := testStep(i)
		if _, err := l.AppendStep(s.At, s.Ops); err != nil {
			t.Fatalf("append step %d: %v", i, err)
		}
	}
}

func wantSteps(t *testing.T, l *Log, n int) {
	t.Helper()
	h, err := l.ReplayHistory()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(h) != n {
		t.Fatalf("replayed %d steps, want %d", len(h), n)
	}
	for i, s := range h {
		want := testStep(i)
		if !s.At.Equal(want.At) || !reflect.DeepEqual(s.Ops, want.Ops) {
			t.Fatalf("step %d differs after replay", i)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), &Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendSteps(t, l, 0, 10)
	wantSteps(t, l, 10)
	if got := l.LastSeq(); got != 10 {
		t.Errorf("LastSeq = %d, want 10", got)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSteps(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq after reopen = %d, want 5", got)
	}
	appendSteps(t, l, 5, 9)
	wantSteps(t, l, 9)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendSteps(t, l, 0, 20)
	paths, _, err := l.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(paths))
	}
	wantSteps(t, l, 20)
}

func TestCheckpointCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendSteps(t, l, 0, 20)
	d, err := l.ReplayDOEM()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointDOEM(d); err != nil {
		t.Fatal(err)
	}
	paths, _, err := l.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Errorf("%d segments survive a full checkpoint, want 0", len(paths))
	}
	// The replayed state must be unchanged, now served from the checkpoint.
	d2, err := l.ReplayDOEM()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(d2) {
		t.Error("DOEM differs after checkpoint compaction")
	}
	// New appends and a reopen extend the checkpointed state.
	appendSteps(t, l, 20, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d3, err := l.ReplayDOEM()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d3.Steps()); got != 25 {
		t.Errorf("replayed DOEM has %d steps, want 25", got)
	}
}

func TestCheckpointBounds(t *testing.T) {
	l, err := Open(t.TempDir(), &Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendSteps(t, l, 0, 3)
	if err := l.Checkpoint(nil, 7); err == nil {
		t.Error("checkpoint beyond last record succeeded")
	}
	if err := l.Checkpoint(nil, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(nil, 2); err == nil {
		t.Error("checkpoint behind existing checkpoint succeeded")
	}
}

func TestClosedLogErrors(t *testing.T) {
	l, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := l.Append(nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Append on closed log: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync on closed log: %v", err)
	}
	if err := l.Replay(func(uint64, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Replay on closed log: %v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		l, err := Open(t.TempDir(), &Options{Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		appendSteps(t, l, 0, 5)
		wantSteps(t, l, 5)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMissingMiddleSegmentDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendSteps(t, l, 0, 20)
	paths, _, err := l.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(paths))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(paths[1]); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	h, err := l.ReplayHistory()
	if err != nil {
		t.Fatal(err)
	}
	// Only the records of the first segment survive; they form a prefix.
	if len(h) == 0 || len(h) >= 20 {
		t.Fatalf("recovered %d steps after losing a middle segment", len(h))
	}
	for i, s := range h {
		want := testStep(i)
		if !s.At.Equal(want.At) || !reflect.DeepEqual(s.Ops, want.Ops) {
			t.Fatalf("step %d not a prefix step", i)
		}
	}
}

func TestReplayDOEMMatchesFromHistory(t *testing.T) {
	l, err := Open(t.TempDir(), &Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var h change.History
	for i := 0; i < 8; i++ {
		s := testStep(i)
		h = append(h, s)
		if _, err := l.AppendStep(s.At, s.Ops); err != nil {
			t.Fatal(err)
		}
	}
	want, err := doem.FromHistory(oem.New(), h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.ReplayDOEM()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("ReplayDOEM differs from doem.FromHistory")
	}
}

func TestCheckpointBaseSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	// A non-empty base database checkpointed before any records.
	base := oem.New()
	n := base.CreateNode(value.Str("Chef Chu's"))
	if err := base.AddArc(base.Root(), "restaurant", n); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointDOEM(doem.New(base)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d, err := l.ReplayDOEM()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Current().Equal(base) {
		t.Error("checkpointed base lost across reopen")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointDOEM(doem.New(oem.New())); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("Open accepted a corrupt checkpoint")
	}
}
