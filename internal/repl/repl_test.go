package repl

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/change"
	"repro/internal/lore"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wal"
)

// fixedClock is a manually-advanced Clock: the tests' stand-in for
// qss.SimClock (same shape, no cross-package dependency).
type fixedClock struct {
	mu sync.Mutex
	t  timestamp.Time
}

func (c *fixedClock) Now() timestamp.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fixedClock) Set(t timestamp.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// testStep builds the i-th step of a deterministic history: create an
// object with a name child and link it under the root.
func testStep(i int) change.Step {
	base := oem.NodeID(1 + 2*i)
	return change.Step{
		At: timestamp.FromUnix(int64(1000 + i)),
		Ops: change.Set{
			change.CreNode{Node: base + 1, Value: value.Complex()},
			change.CreNode{Node: base + 2, Value: value.Str("Restaurant")},
			change.AddArc{Parent: 1, Label: "restaurant", Child: base + 1},
			change.AddArc{Parent: base + 1, Label: "name", Child: base + 2},
		},
	}
}

// testNode bundles a Node with its state and data dir for reopening.
type testNode struct {
	t     *testing.T
	dir   string
	n     *Node
	state *StoreState
}

func openTestNode(t *testing.T, dir string, cfg Config) *testNode {
	t.Helper()
	if cfg.WAL == nil {
		cfg.WAL = &wal.Options{Sync: wal.SyncNever}
	}
	st := NewStoreState()
	n, err := Open(dir, st, cfg)
	if err != nil {
		t.Fatalf("open %s: %v", cfg.ID, err)
	}
	tn := &testNode{t: t, dir: dir, n: n, state: st}
	t.Cleanup(func() { tn.n.Close() })
	return tn
}

func newTestNode(t *testing.T, cfg Config) *testNode {
	return openTestNode(t, t.TempDir(), cfg)
}

// applySteps applies steps [from, to) to the named db on the primary,
// failing the test on any error.
func (tn *testNode) applySteps(name string, from, to int) {
	tn.t.Helper()
	for i := from; i < to; i++ {
		s := testStep(i)
		if _, err := tn.n.ApplyStep(name, s.At, s.Ops); err != nil {
			tn.t.Fatalf("apply step %d: %v", i, err)
		}
	}
}

// pipeDialer returns a Dialer that connects to p over an in-memory pipe.
func pipeDialer(p *Node) Dialer {
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		go p.HandleConn(b)
		return a, nil
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// requireSameDB asserts that both stores hold byte-for-byte equal DOEM
// histories for name — which makes every query, including `<at T>`
// time travel, agree at every timestamp.
func requireSameDB(t *testing.T, a, b *lore.Store, name string) {
	t.Helper()
	da, err := a.GetDOEM(name)
	if err != nil {
		t.Fatalf("GetDOEM(a, %s): %v", name, err)
	}
	db, err := b.GetDOEM(name)
	if err != nil {
		t.Fatalf("GetDOEM(b, %s): %v", name, err)
	}
	if !da.Equal(db) {
		t.Fatalf("databases %q diverged", name)
	}
}

// oplogBytes concatenates a node dir's oplog segment files in order — the
// raw replicated history for byte-identity checks.
func oplogBytes(t *testing.T, dir string) []byte {
	t.Helper()
	seg := filepath.Join(dir, "oplog")
	ents, err := os.ReadDir(seg)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(seg, name))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
	}
	return buf.Bytes()
}

func TestBasicReplication(t *testing.T) {
	p := newTestNode(t, Config{ID: "p"})
	f := newTestNode(t, Config{ID: "f"})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if f.n.Role() != RoleFollower || p.n.Role() != RolePrimary {
		t.Fatal("roles not set")
	}
	if err := f.n.Follow(pipeDialer(p.n)); err != nil {
		t.Fatal(err)
	}

	p.applySteps("db", 0, 50)
	waitFor(t, "follower catch-up", func() bool { return f.n.Status().Applied == 50 })
	waitFor(t, "commit watermark", func() bool { return f.n.Status().Commit == 50 })

	requireSameDB(t, p.state.Store(), f.state.Store(), "db")
	pb, fb := oplogBytes(t, p.dir), oplogBytes(t, f.dir)
	if !bytes.Equal(pb, fb) {
		t.Fatalf("oplogs differ: primary %d bytes, follower %d bytes", len(pb), len(fb))
	}
	if st := f.n.Status(); st.LagSeq != 0 || st.PrimaryTip != 50 {
		t.Fatalf("follower status: %+v", st)
	}
	waitFor(t, "session registered", func() bool { return p.n.Status().Followers == 1 })

	// Writes on the follower are rejected.
	s := testStep(50)
	if _, err := f.n.ApplyStep("db", s.At, s.Ops); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower write: %v", err)
	}
}

func TestAckModes(t *testing.T) {
	for _, mode := range []AckMode{AckOne, AckQuorum} {
		t.Run(mode.String(), func(t *testing.T) {
			p := newTestNode(t, Config{ID: "p", Ack: mode, Replicas: 1, AckTimeout: 100 * time.Millisecond})
			if err := p.n.Promote(); err != nil {
				t.Fatal(err)
			}
			// No follower connected: the write lands locally but is not
			// acknowledged.
			s := testStep(0)
			if _, err := p.n.ApplyStep("db", s.At, s.Ops); !errors.Is(err, ErrAckTimeout) {
				t.Fatalf("no-follower apply: %v", err)
			}
			f := newTestNode(t, Config{ID: "f"})
			if err := f.n.Follow(pipeDialer(p.n)); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "catch-up", func() bool { return f.n.Status().Applied == 1 })
			p.applySteps("db", 1, 5)
			if got := p.n.Status().Commit; got != 5 {
				t.Fatalf("commit = %d, want 5", got)
			}
		})
	}
}

func TestParseAckMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AckMode
	}{{"none", AckNone}, {"one", AckOne}, {"quorum", AckQuorum}} {
		got, err := ParseAckMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAckMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseAckMode("all"); err == nil {
		t.Fatal("ParseAckMode accepted garbage")
	}
}

func TestFollowerRestartCatchUp(t *testing.T) {
	p := newTestNode(t, Config{ID: "p"})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	f := openTestNode(t, fdir, Config{ID: "f"})
	if err := f.n.Follow(pipeDialer(p.n)); err != nil {
		t.Fatal(err)
	}
	p.applySteps("db", 0, 20)
	waitFor(t, "first catch-up", func() bool { return f.n.Status().Applied == 20 })
	f.n.Close()

	// Twenty more records land while the follower is down.
	p.applySteps("db", 20, 40)

	f2 := openTestNode(t, fdir, Config{ID: "f"})
	if got := f2.n.Status().Applied; got != 20 {
		t.Fatalf("recovered applied = %d, want 20", got)
	}
	if err := f2.n.Follow(pipeDialer(p.n)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resume catch-up", func() bool { return f2.n.Status().Applied == 40 })
	requireSameDB(t, p.state.Store(), f2.state.Store(), "db")
	if !bytes.Equal(oplogBytes(t, p.dir), oplogBytes(t, fdir)) {
		t.Fatal("oplogs differ after restart catch-up")
	}
}

func TestSnapshotCatchUp(t *testing.T) {
	p := newTestNode(t, Config{ID: "p"})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	p.applySteps("db", 0, 30)
	// Compact the primary's oplog so seq 1..30 are only available as a
	// checkpoint; a fresh follower must bootstrap from the snapshot.
	if err := p.n.Compact(); err != nil {
		t.Fatal(err)
	}
	p.applySteps("db", 30, 40)

	f := newTestNode(t, Config{ID: "f"})
	if err := f.n.Follow(pipeDialer(p.n)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snapshot catch-up", func() bool { return f.n.Status().Applied == 40 })
	requireSameDB(t, p.state.Store(), f.state.Store(), "db")

	// The follower survives its own restart from the reset oplog.
	f.n.Close()
	f2 := openTestNode(t, f.dir, Config{ID: "f"})
	if got := f2.n.Status().Applied; got != 40 {
		t.Fatalf("applied after restart = %d, want 40", got)
	}
	requireSameDB(t, p.state.Store(), f2.state.Store(), "db")
}

// TestFencingByHello deposes a primary via a higher-epoch handshake: its
// subsequent appends must be rejected with ErrFenced.
func TestFencingByHello(t *testing.T) {
	p := newTestNode(t, Config{ID: "p"})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	p.applySteps("db", 0, 3)

	a, b := net.Pipe()
	defer a.Close()
	go p.n.HandleConn(b)
	hello := Frame{Type: FrameHello, Epoch: p.n.Epoch() + 5, Seq: 0, Payload: handshakePayload("new-era")}
	if err := WriteFrame(a, hello); err != nil {
		t.Fatal(err)
	}
	rej, err := ReadFrame(bufio.NewReader(a), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if rej.Type != FrameReject || rej.Epoch != hello.Epoch {
		t.Fatalf("got %+v, want reject at epoch %d", rej, hello.Epoch)
	}
	if p.n.Role() != RoleFollower || p.n.Epoch() != hello.Epoch {
		t.Fatalf("primary not deposed: role=%v epoch=%d", p.n.Role(), p.n.Epoch())
	}
	s := testStep(3)
	if _, err := p.n.ApplyStep("db", s.At, s.Ops); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed apply: %v", err)
	}
	if !p.n.Status().Fenced {
		t.Fatal("status not fenced")
	}
}

// TestFencingByReject deposes a primary through the ack channel of a live
// session — the path a stale primary hits when its follower has moved to
// a newer epoch mid-stream.
func TestFencingByReject(t *testing.T) {
	p := newTestNode(t, Config{ID: "p"})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	go p.n.HandleConn(b)
	br := bufio.NewReader(a)
	hello := Frame{Type: FrameHello, Epoch: p.n.Epoch(), Seq: 0, Payload: handshakePayload("f")}
	if err := WriteFrame(a, hello); err != nil {
		t.Fatal(err)
	}
	if w, err := ReadFrame(br, DefaultMaxFrame); err != nil || w.Type != FrameWelcome {
		t.Fatalf("welcome: %+v %v", w, err)
	}
	newEpoch := p.n.Epoch() + 1
	if err := WriteFrame(a, Frame{Type: FrameReject, Epoch: newEpoch}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fencing", func() bool { return p.n.Status().Fenced })
	if p.n.Epoch() != newEpoch {
		t.Fatalf("epoch = %d, want %d", p.n.Epoch(), newEpoch)
	}
	s := testStep(0)
	if _, err := p.n.ApplyStep("db", s.At, s.Ops); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed apply: %v", err)
	}
}

// TestEpochPersistence: epochs survive restart, and Promote always moves
// strictly above everything the node has seen.
func TestEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	n1 := openTestNode(t, dir, Config{ID: "n"})
	if err := n1.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := n1.n.Epoch(); got != 1 {
		t.Fatalf("epoch after promote = %d", got)
	}
	n1.applySteps("db", 0, 2)
	n1.n.Close()

	n2 := openTestNode(t, dir, Config{ID: "n"})
	if got := n2.n.Epoch(); got != 1 {
		t.Fatalf("epoch after reopen = %d", got)
	}
	if got := n2.n.Role(); got != RoleFollower {
		t.Fatalf("role after reopen = %v (restart must not self-promote)", got)
	}
	if err := n2.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := n2.n.Epoch(); got != 2 {
		t.Fatalf("epoch after second promote = %d", got)
	}
}

// TestReadReplicaTimeTravel drives a history through replication under a
// deterministic clock and checks that the replica answers `<at T>` reads
// identically to the primary within its reported staleness bound.
func TestReadReplicaTimeTravel(t *testing.T) {
	clock := &fixedClock{}
	clock.Set(timestamp.FromUnix(500))
	p := newTestNode(t, Config{ID: "p", Clock: clock})
	f := newTestNode(t, Config{ID: "f", Clock: clock})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := f.n.Follow(pipeDialer(p.n)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clock.Set(timestamp.FromUnix(int64(1000 + i)))
		s := testStep(i)
		if _, err := p.n.ApplyStep("db", s.At, s.Ops); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "catch-up", func() bool { return f.n.Status().Applied == 5 })

	st := f.n.Status()
	if st.LagSeq != 0 {
		t.Fatalf("lag = %d, want 0", st.LagSeq)
	}
	if !st.AppliedAt.Equal(timestamp.FromUnix(1004)) {
		t.Fatalf("appliedAt = %v, want t=1004", st.AppliedAt)
	}

	pd, err := p.state.Store().GetDOEM("db")
	if err != nil {
		t.Fatal(err)
	}
	fd, err := f.state.Store().GetDOEM("db")
	if err != nil {
		t.Fatal(err)
	}
	// Time-travel parity at every step boundary (and before history).
	for i := -1; i < 5; i++ {
		at := timestamp.FromUnix(int64(1000 + i))
		ps, fs := pd.SnapshotAt(at), fd.SnapshotAt(at)
		pn, fn := ps.Nodes(), fs.Nodes()
		if len(pn) != len(fn) {
			t.Fatalf("<at %v>: %d nodes on primary, %d on replica", at, len(pn), len(fn))
		}
	}
	if !pd.Equal(fd) {
		t.Fatalf("replica history diverged")
	}

	// Now lag the replica: stop following, write more on the primary. The
	// replica's answers must equal the primary's *as of its applied seq* —
	// the staleness contract — and its status must expose the bound.
	f.n.StopFollow()
	asOf := f.n.Status().Applied
	clock.Set(timestamp.FromUnix(2000))
	p.applySteps("db", 5, 8)
	fd2, err := f.state.Store().GetDOEM("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := fd2.LastStep(); !got.Equal(timestamp.FromUnix(1004)) {
		t.Fatalf("replica last step = %v, want 1004 (stale reads stay at applied=%d)", got, asOf)
	}
	if err := f.n.Follow(pipeDialer(p.n)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-catch-up", func() bool { return f.n.Status().Applied == 8 })
	requireSameDB(t, p.state.Store(), f.state.Store(), "db")
}
