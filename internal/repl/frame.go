// Package repl implements primary/replica replication of append-only
// change-set logs — the paper's OEM histories (Section 2.2) shipped as
// deltas, the propagation model argued for in "On Graph Deltas for
// Historical Queries".
//
// A primary appends opaque (name, payload) records to a single replication
// oplog (an internal/wal.Log) and streams them to followers, which append
// the very same bytes to their own oplogs and apply them to a pluggable
// State. Byte-identical histories are therefore guaranteed by
// construction: a follower's oplog is always a verbatim prefix of the
// primary's. A client write is acknowledged only once a configurable
// quorum of followers has durably appended it (AckMode).
//
// Promotion is epoch-fenced: every frame carries the sender's epoch, a
// monotone counter persisted per node and bumped by Promote. Receivers
// reject lower-epoch senders and adopt higher epochs, so a deposed
// primary's appends are fenced the moment it hears from (or is heard by)
// anyone from the new epoch.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/change"
)

// Frame types. One stream direction carries Welcome/Snapshot/Record/Commit
// (primary→follower), the other Hello/Ack/Reject (follower→primary);
// Reject can flow either way.
const (
	// FrameHello opens a session (follower→primary): Epoch = follower
	// epoch, Seq = follower's last oplog seq, Commit = epoch of the
	// follower's last record (divergence check), Payload = magic + node id.
	FrameHello byte = 1
	// FrameWelcome accepts a session: Seq = primary's last seq, Commit =
	// commit watermark, Payload = magic + advertised client address.
	FrameWelcome byte = 2
	// FrameSnapshot resets the follower: Payload = state snapshot covering
	// every record with seq <= Seq; Commit = epoch of the record at Seq.
	FrameSnapshot byte = 3
	// FrameRecord ships one oplog record: Seq = its sequence, Commit = the
	// current commit watermark, Payload = the verbatim oplog record bytes.
	FrameRecord byte = 4
	// FrameCommit advances the commit watermark without a record (also the
	// stream heartbeat): Seq = primary's last seq, Commit = watermark.
	FrameCommit byte = 5
	// FrameAck acknowledges durable append of every record with seq <= Seq.
	FrameAck byte = 6
	// FrameReject refuses a lower-epoch peer; Epoch is the rejecter's.
	FrameReject byte = 7
)

// protoMagic guards Hello/Welcome payloads against cross-protocol dials.
const protoMagic = "QREPL1\n"

// DefaultMaxFrame caps a frame payload (snapshots can be large).
const DefaultMaxFrame = 64 << 20

// ErrBadFrame reports a torn, corrupt, or oversized frame.
var ErrBadFrame = errors.New("repl: bad frame")

// crcTable is CRC-32C, matching the WAL's record framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one replication wire frame:
//
//	[1 type][uvarint epoch][uvarint seq][uvarint commit]
//	[uvarint len(payload)][payload][4-byte LE CRC-32C of everything prior]
//
// The field meanings per type are documented on the Frame* constants.
type Frame struct {
	Type    byte
	Epoch   uint64
	Seq     uint64
	Commit  uint64
	Payload []byte
}

// AppendFrame appends the encoding of f to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = append(dst, f.Type)
	dst = binary.AppendUvarint(dst, f.Epoch)
	dst = binary.AppendUvarint(dst, f.Seq)
	dst = binary.AppendUvarint(dst, f.Commit)
	dst = binary.AppendUvarint(dst, uint64(len(f.Payload)))
	dst = append(dst, f.Payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable))
}

// DecodeFrame parses the first frame in data, returning it (payload
// aliases data) and the bytes consumed. maxPayload bounds the payload
// length a corrupt prefix can claim.
func DecodeFrame(data []byte, maxPayload int) (Frame, int, error) {
	if len(data) < 1 {
		return Frame{}, 0, fmt.Errorf("%w: empty", ErrBadFrame)
	}
	f := Frame{Type: data[0]}
	off := 1
	var fields [4]uint64
	for i := range fields {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return Frame{}, 0, fmt.Errorf("%w: truncated header", ErrBadFrame)
		}
		fields[i] = v
		off += n
	}
	f.Epoch, f.Seq, f.Commit = fields[0], fields[1], fields[2]
	plen := fields[3]
	if plen > uint64(maxPayload) {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrBadFrame, plen, maxPayload)
	}
	total := off + int(plen) + 4
	if len(data) < total {
		return Frame{}, 0, fmt.Errorf("%w: truncated payload", ErrBadFrame)
	}
	f.Payload = data[off : off+int(plen)]
	sum := binary.LittleEndian.Uint32(data[total-4:])
	if crc32.Checksum(data[:total-4], crcTable) != sum {
		return Frame{}, 0, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	if len(f.Payload) == 0 {
		f.Payload = nil
	}
	return f, total, nil
}

// WriteFrame writes one frame as a single Write call, so byte-offset fault
// injection (faults.CutAfterBytes, faults.ConnFault.Torn) can sever a
// stream at any point inside exactly one frame.
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, 64+len(f.Payload)), f)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return nil
}

// ReadFrame reads one frame from br, validating its CRC.
func ReadFrame(br *bufio.Reader, maxPayload int) (Frame, error) {
	hdr := make([]byte, 0, 64)
	t, err := br.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	hdr = append(hdr, t)
	var fields [4]uint64
	for i := range fields {
		v, raw, err := readUvarint(br)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: header: %v", ErrBadFrame, err)
		}
		fields[i] = v
		hdr = append(hdr, raw...)
	}
	plen := fields[3]
	if plen > uint64(maxPayload) {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrBadFrame, plen, maxPayload)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: payload: %v", ErrBadFrame, err)
	}
	var sumBuf [4]byte
	if _, err := io.ReadFull(br, sumBuf[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: checksum: %v", ErrBadFrame, err)
	}
	crc := crc32.Update(crc32.Checksum(hdr, crcTable), crcTable, payload)
	if crc != binary.LittleEndian.Uint32(sumBuf[:]) {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	if len(payload) == 0 {
		payload = nil
	}
	return Frame{
		Type: t, Epoch: fields[0], Seq: fields[1], Commit: fields[2], Payload: payload,
	}, nil
}

// readUvarint reads one uvarint, returning both the value and its raw
// bytes (needed for the running CRC).
func readUvarint(br *bufio.Reader) (uint64, []byte, error) {
	var raw []byte
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		raw = append(raw, b)
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, raw, nil
		}
		shift += 7
	}
	return 0, nil, errors.New("uvarint too long")
}

// helloPayload / welcomePayload carry the protocol magic plus one string.
func handshakePayload(s string) []byte {
	return append([]byte(protoMagic), s...)
}

func parseHandshake(payload []byte) (string, bool) {
	if len(payload) < len(protoMagic) || string(payload[:len(protoMagic)]) != protoMagic {
		return "", false
	}
	return string(payload[len(protoMagic):]), true
}

// Oplog records. The replication oplog stores frames whose payload is:
//
//	[uvarint epoch][string name][uvarint len(data)][data]
//
// epoch is the primary's epoch at append time (the divergence detector),
// name routes the record to a database/subscription, and data is the
// opaque unit the State applies (a change.Step for StoreState, a QSS poll
// record for the QSS layer). Followers append these bytes verbatim.

// AppendOplogRecord appends the oplog encoding of one record to dst.
func AppendOplogRecord(dst []byte, epoch uint64, name string, data []byte) []byte {
	dst = binary.AppendUvarint(dst, epoch)
	dst = change.AppendString(dst, name)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	return append(dst, data...)
}

// DecodeOplogRecord parses one oplog record (data aliases the input).
func DecodeOplogRecord(payload []byte) (epoch uint64, name string, data []byte, err error) {
	epoch, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, "", nil, fmt.Errorf("%w: record epoch", ErrBadFrame)
	}
	off := n
	name, sn, err := change.DecodeString(payload[off:])
	if err != nil {
		return 0, "", nil, fmt.Errorf("%w: record name: %v", ErrBadFrame, err)
	}
	off += sn
	dlen, dn := binary.Uvarint(payload[off:])
	if dn <= 0 {
		return 0, "", nil, fmt.Errorf("%w: record data length", ErrBadFrame)
	}
	off += dn
	if uint64(len(payload)-off) != dlen {
		return 0, "", nil, fmt.Errorf("%w: record data length %d != %d", ErrBadFrame, dlen, len(payload)-off)
	}
	return epoch, name, payload[off:], nil
}
