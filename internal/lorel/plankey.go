package lorel

import "strconv"

// canonicalKey serializes a canonicalized query into the plan-cache key.
// The encoding is injective by construction — every node carries a type
// tag and every string is length-prefixed — so two queries with different
// canonical ASTs can never share a key (and therefore never share a
// prepared plan; FuzzPlanCacheKey hunts for violations). Query.String()
// is NOT usable here: it omits WhereGens and renders values without their
// kinds.
func canonicalKey(q *Query) string {
	b := make([]byte, 0, 128)
	b = append(b, 'Q')
	b = strconv.AppendInt(b, int64(len(q.Select)), 10)
	for _, s := range q.Select {
		b = keyExpr(b, s.Expr)
		b = keyStr(b, s.Label)
	}
	b = keyGens(b, q.From)
	b = keyGens(b, q.WhereGens)
	b = keyExpr(b, q.Where)
	return string(b)
}

func keyGens(b []byte, gens []FromItem) []byte {
	b = append(b, 'F')
	b = strconv.AppendInt(b, int64(len(gens)), 10)
	for _, f := range gens {
		b = keyStr(b, f.Var)
		b = keyPath(b, f.Path)
	}
	return b
}

func keyStr(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	return append(b, s...)
}

func keyExpr(b []byte, e Expr) []byte {
	switch x := e.(type) {
	case nil:
		return append(b, 'Z')
	case *ConstExpr:
		b = append(b, 'C')
		b = strconv.AppendInt(b, int64(x.Val.Kind()), 10)
		return keyStr(b, x.Val.String())
	case *TimeRefExpr:
		b = append(b, 'T')
		return strconv.AppendInt(b, int64(x.Index), 10)
	case *PathValueExpr:
		b = append(b, 'P')
		return keyPath(b, x.Path)
	case *BinExpr:
		b = append(b, 'B')
		b = keyStr(b, x.Op)
		b = keyExpr(b, x.L)
		return keyExpr(b, x.R)
	case *NotExpr:
		b = append(b, 'N')
		return keyExpr(b, x.E)
	case *ExistsExpr:
		b = append(b, 'E')
		b = keyStr(b, x.Var)
		b = keyPath(b, x.In)
		return keyExpr(b, x.Cond)
	case *AggExpr:
		b = append(b, 'A')
		b = keyStr(b, x.Fn)
		return keyPath(b, x.Path)
	}
	// Unknown node type: poison the key so it never matches anything.
	return append(b, '?')
}

func keyPath(b []byte, p *PathExpr) []byte {
	b = append(b, 'p')
	b = keyStr(b, p.Head)
	b = strconv.AppendInt(b, int64(len(p.Steps)), 10)
	for _, s := range p.Steps {
		flags := byte('0')
		if s.Hash {
			flags |= 1
		}
		if s.Quoted {
			flags |= 2
		}
		b = append(b, flags)
		b = keyStr(b, s.Label)
		if s.Group != nil {
			b = append(b, 'g')
			b = strconv.AppendInt(b, int64(len(s.Group.Alts)), 10)
			for _, alt := range s.Group.Alts {
				b = strconv.AppendInt(b, int64(len(alt)), 10)
				for _, l := range alt {
					b = keyStr(b, l)
				}
			}
			b = append(b, s.Group.Quant)
		}
		b = keyAnnot(b, 'a', s.Arc)
		b = keyAnnot(b, 'n', s.Node)
	}
	return b
}

func keyAnnot(b []byte, tag byte, a *AnnotExpr) []byte {
	if a == nil {
		return append(b, '-')
	}
	b = append(b, tag)
	b = strconv.AppendInt(b, int64(a.Op), 10)
	b = keyStr(b, a.AtVar)
	b = keyStr(b, a.FromVar)
	b = keyStr(b, a.ToVar)
	return keyExpr(b, a.AtExpr)
}
