package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseCSVSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "books.csv")
	if err := os.WriteFile(path, []byte("id,title\n1,Dune\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, src, err := parseCSVSpec("books=" + path + ":id:book")
	if err != nil {
		t.Fatal(err)
	}
	if name != "books" {
		t.Errorf("name = %q", name)
	}
	db, err := src.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.OutLabeled(db.Root(), "book")); got != 1 {
		t.Errorf("books = %d", got)
	}
	if !src.StableIDs() {
		t.Error("csv source should have stable ids")
	}

	for _, bad := range []string{"", "noequals", "x=only-one-part", "x=a:b", "x=a:b:c:d"} {
		if _, _, err := parseCSVSpec(bad); err == nil {
			t.Errorf("parseCSVSpec(%q) succeeded", bad)
		}
	}
}
