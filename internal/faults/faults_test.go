package faults

import (
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/oem"
	"repro/internal/value"
	"repro/internal/wrapper"
)

func okSource() wrapper.Source {
	return wrapper.Func{
		PollFunc: func() (*oem.Database, error) {
			db := oem.New()
			n := db.CreateNode(value.Str("x"))
			if err := db.AddArc(db.Root(), "a", n); err != nil {
				return nil, err
			}
			return db, nil
		},
		Stable: true,
	}
}

func TestFailPollsPlacement(t *testing.T) {
	boom := errors.New("boom")
	src := NewSource(okSource(), FailPolls(boom, 2, 4))
	var got []bool
	for i := 0; i < 5; i++ {
		_, err := src.Poll()
		got = append(got, err != nil)
		if err != nil && !errors.Is(err, boom) {
			t.Fatalf("poll %d: err = %v, want boom", i+1, err)
		}
	}
	want := []bool{false, true, false, true, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("failure placement = %v, want %v", got, want)
	}
	if src.Polls() != 5 {
		t.Errorf("Polls() = %d, want 5", src.Polls())
	}
}

func TestFailRangePlacement(t *testing.T) {
	boom := errors.New("boom")
	src := NewSource(okSource(), FailRange(boom, 2, 3))
	for i, wantErr := range []bool{false, true, true, false} {
		if _, err := src.Poll(); (err != nil) != wantErr {
			t.Errorf("poll %d: err = %v, want failure=%v", i+1, err, wantErr)
		}
	}
}

func TestScriptLatencyAndError(t *testing.T) {
	boom := errors.New("boom")
	src := NewSource(okSource(), Script(map[int]SourceFault{
		1: {Latency: 10 * time.Millisecond},
		2: {Err: boom},
	}))
	start := time.Now()
	if _, err := src.Poll(); err != nil {
		t.Fatalf("poll 1: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("poll 1 returned after %v, want >= 10ms latency", d)
	}
	if _, err := src.Poll(); !errors.Is(err, boom) {
		t.Fatalf("poll 2: err = %v, want boom", err)
	}
	if _, err := src.Poll(); err != nil {
		t.Fatalf("poll 3 (past script): %v", err)
	}
}

func TestRandomSameSeedSameSequence(t *testing.T) {
	run := func(seed int64) []bool {
		src := NewSource(okSource(), Random(seed, 0.5, 0))
		var seq []bool
		for i := 0; i < 64; i++ {
			_, err := src.Poll()
			seq = append(seq, err != nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error %v", err)
			}
		}
		return seq
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different fault sequences")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical fault sequences (suspicious)")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("errRate 0.5 produced %d/%d failures", fails, len(a))
	}
}

func TestHangAndRelease(t *testing.T) {
	src := NewSource(okSource(), Script(map[int]SourceFault{1: {Hang: true}}))
	done := make(chan error, 1)
	go func() {
		_, err := src.Poll()
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("hung poll returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	src.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released poll failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll still hung after Release")
	}
	// Release is sticky and idempotent.
	src.Release()
	if _, err := src.Poll(); err != nil {
		t.Fatalf("poll after release: %v", err)
	}
}

func TestConnTornWrite(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := NewConn(a, nil, ConnScript(map[int]ConnFault{1: {Torn: 3}}))

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()

	n, err := fc.Write([]byte("hello world"))
	if err == nil {
		t.Fatal("torn write reported no error")
	}
	if n != 3 {
		t.Errorf("torn write wrote %d bytes, want 3", n)
	}
	select {
	case onWire := <-got:
		if string(onWire) != "hel" {
			t.Errorf("peer saw %q, want %q", onWire, "hel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the torn bytes")
	}

	// Later writes go through untouched.
	go func() { io.ReadFull(b, make([]byte, 2)) }()
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("write after torn write: %v", err)
	}
}

func TestConnDropAndErr(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	boom := errors.New("io glitch")
	fc := NewConn(a, ConnScript(map[int]ConnFault{1: {Err: boom}, 2: {Drop: true}}), nil)
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, boom) {
		t.Fatalf("read 1: err = %v, want injected glitch", err)
	}
	if _, err := fc.Read(make([]byte, 1)); err == nil {
		t.Fatal("read 2: drop reported no error")
	}
	// The underlying conn really is closed.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("underlying conn still writable after Drop")
	}
}

func TestListenerTemporaryErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	ln := NewListener(inner, func(attempt int) error {
		if attempt <= 2 {
			return TemporaryError("simulated EMFILE")
		}
		return nil
	})
	for i := 0; i < 2; i++ {
		_, err := ln.Accept()
		if err == nil {
			t.Fatalf("accept %d: no injected error", i+1)
		}
		var tmp interface{ Temporary() bool }
		if !errors.As(err, &tmp) || !tmp.Temporary() {
			t.Fatalf("accept %d: %v is not a temporary net.Error", i+1, err)
		}
	}
	go func() {
		nc, err := net.Dial("tcp", inner.Addr().String())
		if err == nil {
			nc.Close()
		}
	}()
	nc, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept 3: %v", err)
	}
	nc.Close()
	if ln.Attempts() != 3 {
		t.Errorf("Attempts() = %d, want 3", ln.Attempts())
	}
}
