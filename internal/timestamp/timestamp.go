// Package timestamp implements the discrete, totally ordered time domain
// used by OEM histories and DOEM annotations (paper Section 2.2).
//
// A Time is either a finite instant (with second resolution, which is ample
// for a change-history domain) or one of the two infinities. Negative
// infinity is the value of the QSS variable t[-i] before the i-th poll has
// happened (paper Section 6); positive infinity is a convenient "end of
// time" for range scans.
//
// In keeping with Lorel's extensive use of coercion, Parse accepts any of a
// number of textual forms, including the paper's "1Jan97" style.
package timestamp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Time is an instant in the history time domain.
// The zero value is the finite instant at Unix second 0.
type Time struct {
	sec int64
	inf int8 // -1: -infinity, +1: +infinity, 0: finite
}

// NegInf and PosInf are the two infinite instants.
var (
	NegInf = Time{inf: -1}
	PosInf = Time{inf: +1}
)

// FromUnix returns the finite instant at the given Unix second.
func FromUnix(sec int64) Time { return Time{sec: sec} }

// FromTime converts a stdlib time.Time (truncated to seconds).
func FromTime(t time.Time) Time { return Time{sec: t.Unix()} }

// Unix returns the Unix second of a finite instant.
// It panics on an infinite instant.
func (t Time) Unix() int64 {
	if t.inf != 0 {
		panic("timestamp: Unix called on infinite Time")
	}
	return t.sec
}

// IsFinite reports whether t is neither +inf nor -inf.
func (t Time) IsFinite() bool { return t.inf == 0 }

// Compare returns -1, 0 or +1 as t is before, equal to, or after u.
func (t Time) Compare(u Time) int {
	switch {
	case t.inf != u.inf:
		if t.inf < u.inf {
			return -1
		}
		return 1
	case t.inf != 0: // both the same infinity
		return 0
	case t.sec < u.sec:
		return -1
	case t.sec > u.sec:
		return 1
	default:
		return 0
	}
}

// Before reports whether t < u.
func (t Time) Before(u Time) bool { return t.Compare(u) < 0 }

// After reports whether t > u.
func (t Time) After(u Time) bool { return t.Compare(u) > 0 }

// Equal reports whether t == u.
func (t Time) Equal(u Time) bool { return t.Compare(u) == 0 }

// Add returns t shifted by d (truncated to seconds).
// Shifting an infinite instant returns it unchanged.
func (t Time) Add(d time.Duration) Time {
	if t.inf != 0 {
		return t
	}
	return Time{sec: t.sec + int64(d/time.Second)}
}

// Sub returns the duration t-u for two finite instants.
func (t Time) Sub(u Time) time.Duration {
	if t.inf != 0 || u.inf != 0 {
		panic("timestamp: Sub on infinite Time")
	}
	return time.Duration(t.sec-u.sec) * time.Second
}

// Go returns the stdlib time.Time of a finite instant, in UTC.
func (t Time) Go() time.Time {
	if t.inf != 0 {
		panic("timestamp: Go called on infinite Time")
	}
	return time.Unix(t.sec, 0).UTC()
}

// String renders t in the paper's compact style ("1Jan97") when the instant
// is at midnight UTC, and in a fuller form otherwise.
func (t Time) String() string {
	switch t.inf {
	case -1:
		return "-inf"
	case +1:
		return "+inf"
	}
	g := t.Go()
	if g.Hour() == 0 && g.Minute() == 0 && g.Second() == 0 {
		return g.Format("2Jan06")
	}
	if g.Second() == 0 {
		return g.Format("2Jan06 15:04")
	}
	return g.Format("2Jan06 15:04:05")
}

// layouts lists the accepted textual forms, most specific first.
var layouts = []string{
	"2Jan06 15:04:05",
	"2Jan06 15:04",
	"2Jan06 3:04pm",
	"2Jan06 3:04PM",
	"2Jan06",
	"2Jan2006 15:04:05",
	"2Jan2006 15:04",
	"2Jan2006 3:04pm",
	"2Jan2006",
	"2 Jan 2006 15:04:05",
	"2 Jan 2006",
	time.RFC3339,
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	"01/02/2006",
	"Jan 2, 2006",
}

// ErrParse reports an unrecognized textual timestamp.
var ErrParse = errors.New("timestamp: unrecognized time format")

// Parse converts a textual timestamp in any recognized format.
// Recognized forms include the paper's "1Jan97" and "4Jan97", RFC 3339,
// "2006-01-02 15:04:05", "1Jan97 11:30pm", "-inf"/"+inf", and a bare
// integer Unix second.
func Parse(s string) (Time, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "-inf", "-infinity":
		return NegInf, nil
	case "+inf", "inf", "+infinity", "infinity":
		return PosInf, nil
	}
	for _, layout := range layouts {
		if g, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return FromTime(g), nil
		}
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return FromUnix(sec), nil
	}
	return Time{}, fmt.Errorf("%w: %q", ErrParse, s)
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) Time {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Min returns the earlier of t and u.
func Min(t, u Time) Time {
	if t.Compare(u) <= 0 {
		return t
	}
	return u
}

// Max returns the later of t and u.
func Max(t, u Time) Time {
	if t.Compare(u) >= 0 {
		return t
	}
	return u
}
