package repl

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// cluster wires three nodes onto a faults.Net, each serving replication
// on its own host name and dialing whatever the current target is.
type cluster struct {
	nw     *faults.Net
	mu     sync.Mutex
	target string
}

func (c *cluster) setTarget(host string) {
	c.mu.Lock()
	c.target = host
	c.mu.Unlock()
}

func (c *cluster) dialer(from string) Dialer {
	return func() (net.Conn, error) {
		c.mu.Lock()
		to := c.target
		c.mu.Unlock()
		return c.nw.Dial(from, to)
	}
}

func (c *cluster) serve(t *testing.T, host string, n *Node) {
	t.Helper()
	ln, err := c.nw.Listen(host)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go n.Serve(ln)
}

// TestPartitionFailoverAndRecovery runs the full runbook on a partitioned
// 3-node cluster: the isolated primary cannot acknowledge writes, a
// survivor is promoted under a new epoch, the second follower re-points,
// and after healing the stale primary is demoted, its divergent
// (unacknowledged) tail is discarded via snapshot reset, and the cluster
// reconverges on identical histories.
func TestPartitionFailoverAndRecovery(t *testing.T) {
	c := &cluster{nw: faults.NewNet(1), target: "p"}
	cfg := func(id string) Config {
		return Config{
			ID: id, Ack: AckQuorum, Replicas: 2,
			AckTimeout:     200 * time.Millisecond,
			HeartbeatEvery: 10 * time.Millisecond,
			IdleTimeout:    250 * time.Millisecond,
			RedialInitial:  10 * time.Millisecond,
			RedialMax:      50 * time.Millisecond,
		}
	}
	p := newTestNode(t, cfg("p"))
	f1 := newTestNode(t, cfg("f1"))
	f2 := newTestNode(t, cfg("f2"))
	c.serve(t, "p", p.n)
	c.serve(t, "f1", f1.n)
	c.serve(t, "f2", f2.n)

	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := f1.n.Follow(c.dialer("f1")); err != nil {
		t.Fatal(err)
	}
	if err := f2.n.Follow(c.dialer("f2")); err != nil {
		t.Fatal(err)
	}

	p.applySteps("db", 0, 5)
	waitFor(t, "initial replication", func() bool {
		return f1.n.Status().Applied == 5 && f2.n.Status().Applied == 5
	})

	// Isolate the primary from both followers (both directions).
	c.nw.CutBoth("p", "f1")
	c.nw.CutBoth("p", "f2")

	// Writes on the isolated primary are appended locally but can never
	// reach quorum: they stay unacknowledged — the divergent tail.
	for i := 5; i < 7; i++ {
		s := testStep(i)
		if _, err := p.n.ApplyStep("db", s.At, s.Ops); !errors.Is(err, ErrAckTimeout) {
			t.Fatalf("isolated apply %d: %v", i, err)
		}
	}
	if st := p.n.Status(); st.Applied != 7 || st.Commit != 5 {
		t.Fatalf("isolated primary status: %+v", st)
	}

	// Failover: promote f2, re-point f1 at it.
	if err := f2.n.Promote(); err != nil {
		t.Fatal(err)
	}
	c.setTarget("f2")
	newEpoch := f2.n.Epoch()
	if newEpoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", newEpoch)
	}
	waitFor(t, "f1 re-pointed", func() bool {
		st := f1.n.Status()
		return st.Epoch == newEpoch && st.Applied == 5
	})

	// The new primary takes writes; quorum (1 of Replicas=2) is f1.
	for i := 0; i < 3; i++ {
		s := testStep(10 + i)
		if _, err := f2.n.ApplyStep("db", s.At, s.Ops); err != nil {
			t.Fatalf("post-failover apply %d: %v", i, err)
		}
	}
	waitFor(t, "f1 catch-up on new primary", func() bool { return f1.n.Status().Applied == 8 })

	// Heal the partition and run the old primary through the runbook:
	// demote, then follow the new primary. Its hello exposes the divergent
	// tail (seq 7 under the old epoch), so it is reset from a snapshot.
	c.nw.HealAll()
	p.n.Demote()
	s := testStep(99)
	if _, err := p.n.ApplyStep("db", s.At, s.Ops); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("demoted apply: %v", err)
	}
	if err := p.n.Follow(c.dialer("p")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "old primary reconverged", func() bool {
		st := p.n.Status()
		return st.Epoch == newEpoch && st.Applied == 8 && st.LagSeq == 0
	})

	requireSameDB(t, f2.state.Store(), f1.state.Store(), "db")
	requireSameDB(t, f2.state.Store(), p.state.Store(), "db")

	// The divergent steps (5, 6) must be gone from the reset node: its
	// history now ends with the new primary's last step.
	pd, err := p.state.Store().GetDOEM("db")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pd.LastStep(), testStep(12).At; !got.Equal(want) {
		t.Fatalf("reset node last step = %v, want %v", got, want)
	}
}

// TestStalePrimaryFencedOnContact: a deposed primary that never heard
// about the new epoch is fenced the moment a higher-epoch peer contacts
// it, and rejects writes with ErrFenced from then on.
func TestStalePrimaryFencedOnContact(t *testing.T) {
	c := &cluster{nw: faults.NewNet(2), target: "p"}
	cfg := func(id string) Config {
		return Config{
			ID:            id,
			AckTimeout:    100 * time.Millisecond,
			RedialInitial: 10 * time.Millisecond,
			RedialMax:     50 * time.Millisecond,
		}
	}
	p := newTestNode(t, cfg("p"))
	f := newTestNode(t, cfg("f"))
	c.serve(t, "p", p.n)

	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := f.n.Follow(c.dialer("f")); err != nil {
		t.Fatal(err)
	}
	p.applySteps("db", 0, 3)
	waitFor(t, "replication", func() bool { return f.n.Status().Applied == 3 })

	// The follower is promoted behind the old primary's back (e.g. a
	// partitioned operator decision): epoch 2.
	f.n.StopFollow()
	if err := f.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if p.n.Role() != RolePrimary {
		t.Fatal("old primary deposed too early")
	}

	// First contact from the new era — here, the new primary demoted back
	// to follower and dialing the old one, the smallest such messenger —
	// fences the old primary.
	f.n.Demote()
	if err := f.n.Follow(c.dialer("f")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fencing on contact", func() bool { return p.n.Status().Fenced })
	if got := p.n.Epoch(); got != f.n.Epoch() {
		t.Fatalf("old primary epoch %d, new era %d", got, f.n.Epoch())
	}
	s := testStep(3)
	if _, err := p.n.ApplyStep("db", s.At, s.Ops); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced apply: %v", err)
	}
}
