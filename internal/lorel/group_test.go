package lorel

import (
	"testing"

	"repro/internal/oem"
	"repro/internal/value"
)

func TestParsePathGroups(t *testing.T) {
	q := mustParse(t, `select guide.(restaurant|cafe).name`)
	pv := q.Select[0].Expr.(*PathValueExpr)
	g := pv.Path.Steps[0].Group
	if g == nil || len(g.Alts) != 2 || g.Quant != 0 {
		t.Fatalf("group = %+v", g)
	}
	q = mustParse(t, `select a.(b.c)*.d`)
	pv = q.Select[0].Expr.(*PathValueExpr)
	if g := pv.Path.Steps[0].Group; g == nil || g.Quant != '*' || len(g.Alts[0]) != 2 {
		t.Fatalf("starred group = %+v", g)
	}
	q = mustParse(t, `select a.(b)+.c`)
	pv = q.Select[0].Expr.(*PathValueExpr)
	if g := pv.Path.Steps[0].Group; g == nil || g.Quant != '+' {
		t.Fatalf("plus group = %+v", g)
	}
	q = mustParse(t, `select a.(b|c.d)?.e`)
	pv = q.Select[0].Expr.(*PathValueExpr)
	if g := pv.Path.Steps[0].Group; g == nil || g.Quant != '?' {
		t.Fatalf("optional group = %+v", g)
	}
	// Rendering round-trips.
	for _, src := range []string{
		`select guide.(restaurant|cafe).name`,
		`select a.(b.c)*.d`,
		`select a.(b|c.d)?.e`,
	} {
		q := mustParse(t, src)
		if _, err := Parse(q.String()); err != nil {
			t.Errorf("group rendering of %q does not re-parse: %v\n%s", src, err, q.String())
		}
	}
}

func TestParsePathGroupErrors(t *testing.T) {
	for _, bad := range []string{
		`select a.()`,
		`select a.(b|)`,
		`select a.(b`,
		`select a.(<add>b)`,
		`select a.<add>(b)`, // annotation on group step
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestGroupAlternation(t *testing.T) {
	// guide with both restaurant and cafe children.
	db := newOEMWith(t, func(b *builderT) {
		r := b.complexArc(b.root(), "restaurant")
		b.atomArc(r, "name", value.Str("Janta"))
		c := b.complexArc(b.root(), "cafe")
		b.atomArc(c, "name", value.Str("Blue Bottle"))
		o := b.complexArc(b.root(), "office")
		b.atomArc(o, "name", value.Str("not food"))
	})
	e := NewEngine()
	e.Register("guide", NewOEMGraph(db))
	res, err := e.Query(`select N from guide.(restaurant|cafe).name N`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", res.Len(), res)
	}
}

func TestGroupKleeneClosure(t *testing.T) {
	// A chain root -> a -> a -> a -> leaf; (a)* reaches every prefix.
	db := newOEMWith(t, func(b *builderT) {
		n1 := b.complexArc(b.root(), "a")
		n2 := b.complexArc(n1, "a")
		n3 := b.complexArc(n2, "a")
		b.atomArc(n3, "leaf", value.Str("end"))
	})
	e := NewEngine()
	e.Register("db", NewOEMGraph(db))
	// Zero or more 'a' steps from the root: root, n1, n2, n3 -> 4 objects.
	res, err := e.Query(`select db.(a)*`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("(a)* rows = %d, want 4\n%s", res.Len(), res)
	}
	// One or more.
	res, err = e.Query(`select db.(a)+`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("(a)+ rows = %d, want 3", res.Len())
	}
	// The classic "leaf at any depth" idiom.
	res, err = e.Query(`select db.(a)*.leaf`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("leaf")
	if len(vals) != 1 || !vals[0].Equal(value.Str("end")) {
		t.Errorf("leaf values = %v", vals)
	}
}

func TestGroupCycleSafe(t *testing.T) {
	// parking/nearby-eats cycle: closure terminates.
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant.(parking.nearby-eats)*.name`)
	if err != nil {
		t.Fatal(err)
	}
	// Names of restaurants reachable by alternating parking/nearby-eats:
	// the restaurants themselves plus Bangkok Cuisine via the cycle.
	if res.Len() == 0 {
		t.Fatal("cycle closure returned nothing")
	}
}

func TestGroupOptional(t *testing.T) {
	// address? — both string addresses (no indirection) and the complex
	// address's street: select street values reachable via (address)?.
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select S from guide.restaurant.(address)?.street S`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("street")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Lytton")) {
		t.Errorf("streets = %v", vals)
	}
}

func TestGroupMultiLabelSequence(t *testing.T) {
	e, pids, _ := paperEngine(t)
	// (parking.nearby-eats) exactly once from Janta... Janta's parking arc
	// was removed; Bangkok's survives and cycles back to Bangkok.
	res, err := e.Query(`select R from guide.restaurant.(parking.nearby-eats) R`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.FirstColumnNodes()
	if len(got) != 1 || got[0] != pids.Bangkok {
		t.Errorf("cycle targets = %v, want [Bangkok]", got)
	}
}

func TestGroupDirectVsSnapshotConsistency(t *testing.T) {
	// Groups over a DOEM database traverse the current snapshot only.
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.(restaurant)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("grouped restaurant rows = %d, want 3", res.Len())
	}
	_ = pids
}

// --- tiny builder helpers local to this file ---

type builderT struct {
	b *oem.Builder
}

func (t *builderT) root() oem.NodeID { return t.b.Root() }

func (t *builderT) complexArc(p oem.NodeID, l string) oem.NodeID {
	return t.b.ComplexArc(p, l)
}

func (t *builderT) atomArc(p oem.NodeID, l string, v value.Value) oem.NodeID {
	return t.b.AtomArc(p, l, v)
}

func newOEMWith(t *testing.T, fn func(*builderT)) *oem.Database {
	t.Helper()
	bt := &builderT{b: oem.NewBuilder()}
	fn(bt)
	return bt.b.Build()
}
