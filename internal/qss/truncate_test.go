package qss

import (
	"errors"
	"testing"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func TestServiceTruncate(t *testing.T) {
	src, ids := paperSource(t)
	svc := NewService(nil)
	err := svc.Subscribe(Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustPoll := func(day string) {
		t.Helper()
		if _, err := svc.Poll("R", timestamp.MustParse(day)); err != nil {
			t.Fatal(err)
		}
	}
	mustPoll("1Jan97")
	if err := src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "name", nm)
	}); err != nil {
		t.Fatal(err)
	}
	mustPoll("2Jan97")

	d, times, err := svc.History("R")
	if err != nil {
		t.Fatal(err)
	}
	beforeAnnots := d.NumAnnotations()
	if len(times) != 2 {
		t.Fatalf("times = %v", times)
	}

	// Truncate through the first poll: its creations collapse away.
	if err := svc.Truncate("R", timestamp.MustParse("1Jan97")); err != nil {
		t.Fatal(err)
	}
	d, times, err = svc.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumAnnotations() >= beforeAnnots {
		t.Errorf("annotations = %d, want fewer than %d", d.NumAnnotations(), beforeAnnots)
	}
	if len(times) != 1 || !times[0].Equal(timestamp.MustParse("2Jan97")) {
		t.Errorf("times after truncate = %v", times)
	}
	if !d.Feasible() {
		t.Error("truncated subscription history infeasible")
	}

	// Polling continues to work after truncation.
	if err := src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		return db.AddArc(ids.Guide, "restaurant", r)
	}); err != nil {
		t.Fatal(err)
	}
	n, err := svc.Poll("R", timestamp.MustParse("3Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n == nil || n.Result.Len() != 1 {
		t.Fatalf("post-truncate poll = %v", n)
	}

	if err := svc.Truncate("ghost", timestamp.MustParse("1Jan97")); !errors.Is(err, ErrNoSuchSub) {
		t.Errorf("truncate missing sub: %v", err)
	}
}
