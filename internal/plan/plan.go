// Package plan is the cost-based query planner for canonical Lorel/Chorel
// queries: given a specification of a query's generators (the canonical
// single-step from-clause) and its where-clause conjuncts, it chooses a
// join order by estimated selectivity, places each conjunct at the
// earliest position where its variables are bound (predicate pushdown),
// and reports per-generator cardinality estimates for EXPLAIN.
//
// The package is deliberately a leaf: it knows nothing about the AST or
// the evaluator. internal/lorel extracts a Spec from a canonicalized
// query, fills in cardinalities through the Stats interface (implemented
// by internal/index from its adjacency maps and by internal/segment from
// its STATE summaries), calls Prepare, and executes the resulting Plan.
// That keeps every costing decision unit-testable without a database.
//
// Correctness is not plan-dependent: the executor restores the written
// enumeration order when a plan reorders strict generators, so planner-on
// results are byte-identical to planner-off (the parity property test in
// this package pins that against monolithic and segmented stores).
package plan

import (
	"fmt"
	"strings"
)

// StepKind classifies the single step of a canonical generator, which is
// what determines both its fanout estimate and its per-expansion cost.
type StepKind uint8

const (
	KindHead  StepKind = iota // bare head (aliasing generator): fanout 1
	KindLabel                 // exact label over the current snapshot
	KindGlob                  // '%' glob label: scans the adjacency list
	KindHash                  // '#': the whole reachable subtree
	KindGroup                 // regular path group (alts, quantifier)
	KindAnnot                 // <add|rem at T>: full arc relation + chains
	KindAt                    // <at T>: historical view seek
)

func (k StepKind) String() string {
	switch k {
	case KindHead:
		return "head"
	case KindLabel:
		return "label"
	case KindGlob:
		return "glob"
	case KindHash:
		return "subtree"
	case KindGroup:
		return "group"
	case KindAnnot:
		return "annot"
	case KindAt:
		return "at"
	}
	return "?"
}

// PredKind classifies a where-clause conjunct for selectivity estimation.
type PredKind uint8

const (
	PredOther PredKind = iota // disjunctions, exists, truthiness, ...
	PredEq                    // equality comparison
	PredRange                 // ordered comparison (<, <=, >, >=, !=)
	PredLike                  // like pattern
)

// Textbook selectivity defaults; see docs/planner.md.
func selectivity(k PredKind) float64 {
	switch k {
	case PredEq:
		return 0.10
	case PredRange:
		return 0.33
	case PredLike:
		return 0.25
	}
	return 0.50
}

// Card is the cardinality summary of the database a generator's head
// resolves to, restricted to the generator's label where that applies.
// The zero value means "no statistics" and selects structural defaults.
type Card struct {
	Known  bool
	Nodes  int // nodes ever created
	Arcs   int // current-snapshot arcs, all labels
	Annots int // total annotations in the history
	Label  LabelCard
}

// LabelCard is the per-label slice of the summary.
type LabelCard struct {
	Parents, Arcs       int // current snapshot: distinct parents, arcs
	AllParents, AllArcs int // full arc relation (removed arcs included)
	RootOut, AllRootOut int // arcs with the label out of the root
}

// GenSpec describes one canonical generator.
type GenSpec struct {
	Var    string
	Source string // rendered path, for EXPLAIN
	Strict bool   // from-clause (strict) vs hoisted where-clause (existential)
	Kind   StepKind
	Root   bool  // head is a database root, not a variable
	Deps   []int // generator indexes this one depends on (head, time exprs)
	Card   Card
}

// ConjSpec describes one top-level where-clause conjunct.
type ConjSpec struct {
	Text string // rendered expression, for EXPLAIN
	Deps []int  // generators whose variables the conjunct references
	Kind PredKind
}

// Spec is the planner's input: generators in written order (strict block
// first, as the canonicalizer emits them), plus the where conjuncts.
type Spec struct {
	Gens  []GenSpec
	Conjs []ConjSpec
}

// Plan is the planner's output.
type Plan struct {
	// Order lists every generator index in execution order: the strict
	// block first (a permutation of the strict indexes), then the
	// existential block.
	Order   []int
	NStrict int
	// Reordered reports whether the strict block differs from written
	// order, in which case the executor must restore result order by
	// enumeration rank. Reordering only the existential block never sets
	// this: existential bindings cannot reach the select clause.
	Reordered bool
	// Push[p] holds the conjunct indexes to evaluate once the first p
	// generators of Order are bound; Push[0] are constant conjuncts.
	Push [][]int
	// Est[g] is the estimated total number of bindings generator g
	// produces over the whole evaluation, indexed by original position.
	Est []float64
	// EstTuples estimates the strict tuples surviving all pushed
	// conjuncts on strict positions.
	EstTuples float64
	// Costs of the chosen order and of the written order under the same
	// model (equal when no reordering was worthwhile).
	CostChosen, CostWritten float64
	// Notes are human-readable EXPLAIN lines describing the decisions.
	Notes []string
}

// ReorderThreshold is the minimum estimated cost improvement (written /
// chosen) before the planner commits to reordering strict generators.
// Below it the written order is kept: rank-restoring emission has real
// bookkeeping cost, and estimates this close are within model noise.
const ReorderThreshold = 1.3

// fanout estimates how many bindings one expansion of g produces.
func fanout(g *GenSpec) float64 {
	c := &g.Card
	if !c.Known {
		// Structural defaults, selective-first: exact labels are narrow,
		// globs wider, subtree expansion is the thing to postpone.
		switch g.Kind {
		case KindHead:
			return 1
		case KindLabel:
			return 3
		case KindGlob:
			return 8
		case KindHash:
			if g.Root {
				return 256
			}
			return 64
		case KindGroup:
			return 6
		case KindAnnot:
			return 2
		case KindAt:
			return 3
		}
		return 4
	}
	avgDeg := ratio(c.Arcs, c.Nodes, 0.5)
	switch g.Kind {
	case KindHead:
		return 1
	case KindLabel:
		if g.Root {
			return atLeast(float64(c.Label.RootOut), 0.1)
		}
		return ratio(c.Label.Arcs, c.Label.Parents, 0.1)
	case KindGlob:
		return atLeast(2*avgDeg, 1)
	case KindHash:
		if g.Root {
			return atLeast(float64(c.Nodes), 8)
		}
		return atLeast(float64(c.Nodes)/8, 8)
	case KindGroup:
		return atLeast(2*avgDeg, 2)
	case KindAnnot:
		if g.Root {
			return atLeast(1.5*float64(c.Label.AllRootOut), 0.1)
		}
		return 1.5 * ratio(c.Label.AllArcs, c.Label.AllParents, 0.1)
	case KindAt:
		// Live-at-T arcs are bounded by the full relation; use its
		// average as the (upper) estimate.
		if g.Root {
			return atLeast(float64(c.Label.AllRootOut), 0.1)
		}
		return ratio(c.Label.AllArcs, c.Label.AllParents, 0.1)
	}
	return avgDeg
}

// weight is the relative cost of producing one binding of g.
func weight(g *GenSpec) float64 {
	switch g.Kind {
	case KindHead:
		return 0.5
	case KindLabel:
		return 1 // indexed (parent, label) seek
	case KindGlob:
		return 1.5 // adjacency-list scan with glob matching
	case KindHash, KindGroup:
		return 2 // traversal with frontier dedup
	case KindAnnot:
		return 2.5 // full arc relation plus annotation chains
	case KindAt:
		return 2 // historical view lookups
	}
	return 1
}

func ratio(num, den int, whenEmpty float64) float64 {
	if den <= 0 {
		return whenEmpty
	}
	return float64(num) / float64(den)
}

func atLeast(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}

// Prepare plans a query. It always returns a plan: when reordering is not
// worthwhile the plan keeps the written strict order and still carries
// the pushdown placement and estimates.
func Prepare(s *Spec) *Plan {
	var strict, exist []int
	for i := range s.Gens {
		if s.Gens[i].Strict {
			strict = append(strict, i)
		} else {
			exist = append(exist, i)
		}
	}

	written := append(append([]int{}, strict...), exist...)
	costWritten, _, _, _ := s.cost(written)

	chosenStrict := s.greedy(strict, nil)
	chosenExist := s.greedy(exist, chosenStrict)
	chosen := append(append([]int{}, chosenStrict...), chosenExist...)
	costChosen, _, _, _ := s.cost(chosen)

	reordered := !equalInts(chosenStrict, strict)
	if reordered && costWritten < costChosen*ReorderThreshold {
		// Not worth the rank-restoring emission: keep written strict
		// order (existential reordering is free — it cannot affect
		// result rows or their order).
		chosen = append(append([]int{}, strict...), chosenExist...)
		reordered = false
	}

	cost, est, tuples, push := s.cost(chosen)
	pl := &Plan{
		Order:       chosen,
		NStrict:     len(strict),
		Reordered:   reordered,
		Push:        push,
		Est:         est,
		EstTuples:   tuples,
		CostChosen:  cost,
		CostWritten: costWritten,
	}
	pl.Notes = s.describe(pl)
	return pl
}

// greedy orders one block (all-strict or all-existential) by repeatedly
// picking the eligible generator with the smallest fanout × pushed
// selectivity. placed carries the other block's already-ordered indexes
// (the strict block, when ordering existentials).
func (s *Spec) greedy(block, placed []int) []int {
	inBlock := make(map[int]bool, len(block))
	for _, i := range block {
		inBlock[i] = true
	}
	bound := make(map[int]bool, len(placed))
	for _, i := range placed {
		bound[i] = true
	}
	applied := make([]bool, len(s.Conjs))
	// Conjuncts only over placed generators are already applied.
	for ci := range s.Conjs {
		applied[ci] = depsIn(s.Conjs[ci].Deps, bound)
	}

	order := make([]int, 0, len(block))
	remaining := append([]int{}, block...)
	for len(remaining) > 0 {
		best, bestScore := -1, 0.0
		for _, gi := range remaining {
			g := &s.Gens[gi]
			if !depsIn(g.Deps, bound) {
				continue
			}
			score := fanout(g)
			for ci := range s.Conjs {
				if applied[ci] {
					continue
				}
				if depsInPlus(s.Conjs[ci].Deps, bound, gi) {
					score *= selectivity(s.Conjs[ci].Kind)
				}
			}
			if best < 0 || score < bestScore {
				best, bestScore = gi, score
			}
		}
		if best < 0 {
			// Unsatisfiable dependency (should be rejected upstream);
			// fall back to appending the rest in written order.
			order = append(order, remaining...)
			break
		}
		order = append(order, best)
		bound[best] = true
		for ci := range s.Conjs {
			if !applied[ci] && depsIn(s.Conjs[ci].Deps, bound) {
				applied[ci] = true
			}
		}
		for k, gi := range remaining {
			if gi == best {
				remaining = append(remaining[:k], remaining[k+1:]...)
				break
			}
		}
	}
	return order
}

// cost evaluates one complete order under the model: the work at each
// position is tuples-so-far × (1 + fanout × weight); pushed conjuncts
// shrink the tuple stream by their selectivity as soon as they apply.
func (s *Spec) cost(order []int) (total float64, est []float64, strictTuples float64, push [][]int) {
	pos := make(map[int]int, len(order)) // gen index -> 1-based position
	for i, gi := range order {
		pos[gi] = i + 1
	}
	push = make([][]int, len(order)+1)
	for ci := range s.Conjs {
		p := 0
		for _, d := range s.Conjs[ci].Deps {
			if pos[d] > p {
				p = pos[d]
			}
		}
		push[p] = append(push[p], ci)
	}

	est = make([]float64, len(s.Gens))
	tuples := 1.0
	for _, ci := range push[0] {
		tuples *= selectivity(s.Conjs[ci].Kind)
	}
	strictTuples = tuples
	total = 0
	for i, gi := range order {
		g := &s.Gens[gi]
		f := fanout(g)
		total += tuples * (1 + f*weight(g))
		produced := tuples * f
		est[gi] = produced
		tuples = produced
		for _, ci := range push[i+1] {
			tuples *= selectivity(s.Conjs[ci].Kind)
		}
		if g.Strict {
			strictTuples = tuples
		}
	}
	return total, est, strictTuples, push
}

// describe renders the EXPLAIN lines for a plan.
func (s *Spec) describe(pl *Plan) []string {
	var lines []string
	var vars []string
	for _, gi := range pl.Order {
		vars = append(vars, s.Gens[gi].Var)
	}
	mode := "written order"
	if pl.Reordered {
		mode = "reordered"
	}
	lines = append(lines, fmt.Sprintf("join order: %s (%s; est cost %.4g, written %.4g)",
		strings.Join(vars, " -> "), mode, pl.CostChosen, pl.CostWritten))
	for p, gi := range pl.Order {
		g := &s.Gens[gi]
		quant := "strict"
		if !g.Strict {
			quant = "exists"
		}
		stats := "no stats"
		if g.Card.Known {
			stats = "stats"
		}
		line := fmt.Sprintf("  %s := %s  [%s %s, %s] est=%.4g", g.Var, g.Source, quant, g.Kind, stats, pl.Est[gi])
		if conj := s.pushText(pl.Push[p+1]); conj != "" {
			line += "  push: " + conj
		}
		lines = append(lines, line)
	}
	if conj := s.pushText(pl.Push[0]); conj != "" {
		lines = append(lines, "  constant predicates: "+conj)
	}
	lines = append(lines, fmt.Sprintf("est tuples: %.4g", pl.EstTuples))
	return lines
}

func (s *Spec) pushText(cis []int) string {
	if len(cis) == 0 {
		return ""
	}
	parts := make([]string, 0, len(cis))
	for _, ci := range cis {
		parts = append(parts, s.Conjs[ci].Text)
	}
	return strings.Join(parts, " and ")
}

func depsIn(deps []int, set map[int]bool) bool {
	for _, d := range deps {
		if !set[d] {
			return false
		}
	}
	return true
}

func depsInPlus(deps []int, set map[int]bool, extra int) bool {
	for _, d := range deps {
		if d != extra && !set[d] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
