package qss

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/oem"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// segSvc returns a service with segmented persistence under dir and an
// aggressive auto-seal policy, so a handful of polls crosses several seal
// boundaries.
func segSvc(t *testing.T, dir string) *Service {
	t.Helper()
	svc := NewService(nil)
	pol := &segment.Policy{SealAnnotations: 4}
	if err := svc.EnableSegments(dir, &wal.Options{Sync: wal.SyncNever}, pol); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestSegmentsRestartMatchesUninterrupted mirrors the WAL restart test for
// segmented persistence: a service is killed after a few polls (with seals
// in between) and restarted; subsequent polls must produce exactly the
// notifications an uninterrupted, unpersisted service produces.
func TestSegmentsRestartMatchesUninterrupted(t *testing.T) {
	srcA, idsA := paperSource(t)
	srcB, idsB := paperSource(t)
	sub := func(src *wrapper.Mutable) Subscription {
		return Subscription{
			Name: "R", SourceName: "guide", Source: src,
			Polling: `select guide.restaurant`,
			Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
		}
	}

	dir := t.TempDir()
	svc1 := segSvc(t, dir)
	if err := svc1.Subscribe(sub(srcA)); err != nil {
		t.Fatal(err)
	}
	ref := NewService(nil)
	if err := ref.Subscribe(sub(srcB)); err != nil {
		t.Fatal(err)
	}

	addRestaurant := func(src *wrapper.Mutable, guide oem.NodeID, name string) {
		t.Helper()
		if err := src.Mutate(func(db *oem.Database) error {
			r := db.CreateNode(value.Complex())
			if err := db.AddArc(guide, "restaurant", r); err != nil {
				return err
			}
			nm := db.CreateNode(value.Str(name))
			return db.AddArc(r, "name", nm)
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Several polls with source changes in between, so change sets pile up
	// annotations and the SealAnnotations policy fires mid-history.
	for day := 1; day <= 5; day++ {
		if day > 1 {
			addRestaurant(srcA, idsA.Guide, "Hakata")
			addRestaurant(srcB, idsB.Guide, "Hakata")
		}
		pollDays(t, svc1, "R", day, day)
		pollDays(t, ref, "R", day, day)
	}
	st := svc1.subs["R"]
	if st.seg.Segments() == 0 {
		t.Fatal("seal policy produced no sealed segments; the test is not exercising segmented recovery")
	}

	addRestaurant(srcA, idsA.Guide, "Genji")
	addRestaurant(srcB, idsB.Guide, "Genji")

	// "Kill" the segmented service without any export.
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := segSvc(t, dir)
	if err := svc2.Subscribe(sub(srcA)); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	_, times, err := svc2.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 {
		t.Fatalf("recovered %d poll times, want 5", len(times))
	}

	got := pollDays(t, svc2, "R", 6, 8)
	want := pollDays(t, ref, "R", 6, 8)
	if !sameNotifications(got, want) {
		t.Errorf("post-restart notifications diverge from uninterrupted run:\ngot  %v\nwant %v", got, want)
	}
	if got[0] == nil || got[0].Result.Len() != 1 {
		t.Errorf("day-6 poll after restart = %v, want the one new restaurant", got[0])
	}
}

// TestSegmentsSidecarCrashRecovery simulates the one crash window the
// sidecar-first write order leaves open — the sidecar recorded the poll
// but the store append was lost — by restoring the pre-poll store files
// under the post-poll sidecar. Recovery must treat it as a phantom silent
// poll: the poll time survives, the orphaned remap entries are pruned, and
// the changes the crashed poll saw surface at the NEXT poll's time.
func TestSegmentsSidecarCrashRecovery(t *testing.T) {
	src, ids := paperSource(t)
	dir := t.TempDir()
	svc := segSvc(t, dir)
	sub := Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}
	if err := svc.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	mutate := func() {
		t.Helper()
		if err := src.Mutate(func(db *oem.Database) error {
			r := db.CreateNode(value.Complex())
			return db.AddArc(ids.Guide, "restaurant", r)
		}); err != nil {
			t.Fatal(err)
		}
	}
	for day := 1; day <= 3; day++ {
		if day > 1 {
			mutate()
		}
		pollDays(t, svc, "R", day, day)
	}
	// Snapshot the store (including its tail-log subdirectory) as of day 3.
	segPath := filepath.Join(dir, "R"+subSegExt)
	preStore := make(map[string][]byte)
	if err := filepath.Walk(segPath, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(segPath, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		preStore[rel] = data
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Day 4: the source changes and the poll runs to completion...
	mutate()
	pollDays(t, svc, "R", 4, 4)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// ...but the crash loses the store append (sidecar kept, store rolled
	// back to its day-3 state).
	if err := os.RemoveAll(segPath); err != nil {
		t.Fatal(err)
	}
	for rel, data := range preStore {
		path := filepath.Join(segPath, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	svc2 := segSvc(t, dir)
	if err := svc2.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	_, times, err := svc2.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("recovered %d poll times, want 4 (day 4 as a phantom silent poll)", len(times))
	}
	day4 := timestamp.MustParse("1Jan97").Add(3 * 24 * time.Hour)
	if !times[3].Equal(day4) {
		t.Fatalf("recovered poll time %s, want %s", times[3], day4)
	}
	// The day-5 poll re-observes the change the crashed poll lost, at its
	// own time: exactly one new restaurant.
	n, err := svc2.Poll("R", day4.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if n == nil || n.Result.Len() != 1 {
		t.Fatalf("day-5 poll = %v, want the crashed poll's restaurant re-observed", n)
	}
	// And a quiet day 6 stays quiet.
	if n, err := svc2.Poll("R", day4.Add(2*24*time.Hour)); err != nil {
		t.Fatal(err)
	} else if n != nil {
		t.Errorf("silent day-6 poll produced a notification: %v", n)
	}
}

// TestSegmentsTruncate: truncating a segmented subscription deletes its
// sealed segments and drops covered poll times, across a restart.
func TestSegmentsTruncate(t *testing.T) {
	src, ids := paperSource(t)
	dir := t.TempDir()
	svc := segSvc(t, dir)
	sub := Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}
	if err := svc.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 6; day++ {
		if day%2 == 0 {
			if err := src.Mutate(func(db *oem.Database) error {
				r := db.CreateNode(value.Complex())
				return db.AddArc(ids.Guide, "restaurant", r)
			}); err != nil {
				t.Fatal(err)
			}
		}
		pollDays(t, svc, "R", day, day)
	}
	st := svc.subs["R"]
	if st.seg.Segments() == 0 {
		t.Fatal("no sealed segments before truncation")
	}
	if err := svc.Truncate("R", timestamp.MustParse("6Jan97")); err != nil {
		t.Fatal(err)
	}
	if n := st.seg.Segments(); n != 0 {
		t.Errorf("%d sealed segments survive truncation, want 0", n)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	svc2 := segSvc(t, dir)
	if err := svc2.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	_, times, err := svc2.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 0 {
		t.Errorf("poll times at or before the truncation point survive: %v", times)
	}
}

func TestEnableSegmentsGuards(t *testing.T) {
	svc := NewService(nil)
	if err := svc.EnableSegments("", nil, nil); err == nil {
		t.Error("EnableSegments accepted an empty directory")
	}
	if err := svc.EnableWAL(t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
	if err := svc.EnableSegments(t.TempDir(), nil, nil); err == nil {
		t.Error("EnableSegments accepted a service already in WAL mode")
	}

	src, _ := paperSource(t)
	sub := Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`, Filter: `select R.restaurant`,
	}
	svc2 := NewService(nil)
	if err := svc2.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := svc2.EnableSegments(t.TempDir(), nil, nil); err == nil {
		t.Error("EnableSegments after Subscribe succeeded")
	}

	svc3 := NewService(nil)
	if err := svc3.EnableSegments(t.TempDir(), nil, nil); err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	bad := sub
	bad.Name = "../escape"
	if err := svc3.Subscribe(bad); err == nil {
		t.Error("subscription name with a path separator accepted in segmented mode")
	}
}

// TestSegmentsImportState: importing exported state into a segmented
// subscription reseeds the on-disk store, and a restart serves the
// imported history.
func TestSegmentsImportState(t *testing.T) {
	// Build history on a plain service and export it.
	src, ids := paperSource(t)
	plain := NewService(nil)
	sub := Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}
	if err := plain.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	pollDays(t, plain, "R", 1, 2)
	if err := src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		return db.AddArc(ids.Guide, "restaurant", r)
	}); err != nil {
		t.Fatal(err)
	}
	pollDays(t, plain, "R", 3, 3)
	state, err := plain.ExportState("R")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	svc := segSvc(t, dir)
	if err := svc.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := svc.ImportState("R", state); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := segSvc(t, dir)
	if err := svc2.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	d, times, err := svc2.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("recovered %d poll times after import+restart, want 3", len(times))
	}
	// Day 2 was a silent poll, so the imported history has two steps
	// (days 1 and 3).
	if len(d.Steps()) != 2 {
		t.Errorf("recovered %d history steps after import+restart, want 2", len(d.Steps()))
	}
	// A quiet day-4 poll over the imported history must not notify.
	if n, err := svc2.Poll("R", timestamp.MustParse("4Jan97")); err != nil {
		t.Fatal(err)
	} else if n != nil {
		t.Errorf("silent post-import poll produced a notification: %v", n)
	}
}
