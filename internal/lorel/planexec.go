package lorel

import (
	"sort"
	"strings"
	"sync"
)

// This file is the planned executor: it enumerates generators in the
// plan's order instead of written order, applies pushed conjuncts as soon
// as their variables are bound, and short-circuits existential search at
// the first satisfying completion. Its contract is byte-identical output
// with the written-order evaluator, which rests on three properties the
// validator in plan.go established: pushed conjuncts are pure and
// error-free (conjunction order cannot matter), existential variables
// never reach the select clause (collapsing completions per strict tuple
// cannot drop rows), and a generator's candidate list depends only on the
// bindings of its declared dependencies (a candidate's index is the same
// in any enumeration order, so written-order ranks are reconstructible).

// rankedRow carries a result row plus its written-order enumeration rank:
// the candidate indexes of the strict generators in written order,
// followed by the row's position within its tuple's built rows.
// Lexicographic rank order is exactly the order the written-order
// evaluator would first emit each row.
type rankedRow struct {
	row  Row
	rank []int32
}

func rankLess(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// plannedExec is the per-evaluation (or per-worker) state of one planned
// execution.
type plannedExec struct {
	ev   *evaluation
	q    *Query
	pr   *prepared
	gens []FromItem
	// idx[gi] is the candidate index of generator gi's current binding.
	idx []int32
	// actual[gi] counts the bindings generator gi produced (for the
	// estimated-vs-actual EXPLAIN trace).
	actual []int64

	// Row collection. Unreordered plans emit in first-occurrence order
	// like the legacy emitter; reordered plans collect ranked rows and
	// sort at the end.
	rows   []Row
	seen   map[string]bool
	ranked []rankedRow
	best   map[string]int // row key -> index into ranked
	kb     []byte
}

func newPlannedExec(ev *evaluation, q *Query, pr *prepared) *plannedExec {
	x := &plannedExec{
		ev:     ev,
		q:      q,
		pr:     pr,
		gens:   pr.gens,
		idx:    make([]int32, len(pr.gens)),
		actual: make([]int64, len(pr.gens)),
	}
	if pr.plan.Reordered {
		x.best = make(map[string]int)
	} else {
		x.seen = make(map[string]bool)
	}
	return x
}

// applyPush evaluates the conjuncts placed at position p (first p
// generators of the order bound).
func (x *plannedExec) applyPush(en *env, p int) (bool, error) {
	for _, ci := range x.pr.plan.Push[p] {
		ok, err := x.ev.evalBool(en, x.pr.conjs[ci])
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// run enumerates the strict block from depth d (d generators of the
// order already bound).
func (x *plannedExec) run(en *env, d int) error {
	if err := x.ev.checkCancel(); err != nil {
		return err
	}
	if ok, err := x.applyPush(en, d); err != nil || !ok {
		return err
	}
	pl := x.pr.plan
	if d == pl.NStrict {
		sat, err := x.existSat(en, 0)
		if err != nil {
			return err
		}
		if sat {
			return x.emit(en)
		}
		return nil
	}
	gi := pl.Order[d]
	g := x.gens[gi]
	if x.ev.stream {
		// Stream candidates through the walker instead of materializing the
		// generator's binding list. The walker yields in the exact order
		// evalPath would return, so the candidate index k (the written-order
		// rank component for reordered plans) is just a running counter.
		k := int32(0)
		return x.ev.walkPath(en, g.Path, func(r pathResult) error {
			x.actual[gi]++
			x.idx[gi] = k
			k++
			return x.run(r.env.extend(g.Var, r.b), d+1)
		})
	}
	results, err := x.ev.evalPath(en, g.Path)
	if err != nil {
		return err
	}
	x.actual[gi] += int64(len(results))
	for k, r := range results {
		x.idx[gi] = int32(k)
		if err := x.run(r.env.extend(g.Var, r.b), d+1); err != nil {
			return err
		}
	}
	return nil
}

// existSat searches the existential block (d existential generators
// bound) for one completion satisfying every remaining pushed conjunct.
// Empty generators null-bind their variables exactly as the written-order
// evaluator does, so predicates over missing paths see the same nulls.
func (x *plannedExec) existSat(en *env, d int) (bool, error) {
	if err := x.ev.checkCancel(); err != nil {
		return false, err
	}
	pl := x.pr.plan
	if d > 0 {
		if ok, err := x.applyPush(en, pl.NStrict+d); err != nil || !ok {
			return false, err
		}
	}
	if pl.NStrict+d == len(pl.Order) {
		return true, nil
	}
	gi := pl.Order[pl.NStrict+d]
	g := x.gens[gi]
	if x.ev.stream {
		// Existential search only needs one satisfying completion, so the
		// walker stops producing candidates at the first one: candidates
		// past the witness are never generated at all, and actual[gi]
		// counts only the candidates actually examined.
		n := 0
		sat := false
		err := x.ev.walkPath(en, g.Path, func(r pathResult) error {
			n++
			x.actual[gi]++
			s, err := x.existSat(r.env.extend(g.Var, r.b), d+1)
			if err != nil {
				return err
			}
			if s {
				sat = true
				return errStop
			}
			return nil
		})
		if err != nil && err != errStop {
			return false, err
		}
		if sat {
			return true, nil
		}
		if n == 0 {
			return x.existSat(nullBind(en, g), d+1)
		}
		return false, nil
	}
	results, err := x.ev.evalPath(en, g.Path)
	if err != nil {
		return false, err
	}
	x.actual[gi] += int64(len(results))
	if len(results) == 0 {
		return x.existSat(nullBind(en, g), d+1)
	}
	for _, r := range results {
		sat, err := x.existSat(r.env.extend(g.Var, r.b), d+1)
		if err != nil {
			return false, err
		}
		if sat {
			return true, nil
		}
	}
	return false, nil
}

// emit builds and collects the rows of one satisfied strict tuple.
func (x *plannedExec) emit(en *env) error {
	x.ev.bindings++
	built, err := x.ev.buildRows(en, x.q.Select)
	if err != nil {
		return err
	}
	pl := x.pr.plan
	if !pl.Reordered {
		for _, row := range built {
			x.kb = row.appendKey(x.kb[:0])
			if !x.seen[string(x.kb)] {
				x.seen[string(x.kb)] = true
				x.rows = append(x.rows, row)
			} else {
				x.ev.dedupHits++
			}
		}
		return nil
	}
	for ri, row := range built {
		rank := make([]int32, pl.NStrict+1)
		copy(rank, x.idx[:pl.NStrict]) // strict gens are written-order 0..NStrict-1
		rank[pl.NStrict] = int32(ri)
		k := row.key()
		if bi, ok := x.best[k]; ok {
			x.ev.dedupHits++
			if rankLess(rank, x.ranked[bi].rank) {
				x.ranked[bi].rank = rank
			}
		} else {
			x.best[k] = len(x.ranked)
			x.ranked = append(x.ranked, rankedRow{row: row, rank: rank})
		}
	}
	return nil
}

func (x *plannedExec) emitted() int {
	if x.pr.plan.Reordered {
		return len(x.ranked)
	}
	return len(x.rows)
}

// finishRows returns the collected rows in written-enumeration order.
func (x *plannedExec) finishRows() []Row {
	if !x.pr.plan.Reordered {
		return x.rows
	}
	sort.Slice(x.ranked, func(i, j int) bool {
		return rankLess(x.ranked[i].rank, x.ranked[j].rank)
	})
	rows := make([]Row, len(x.ranked))
	for i := range x.ranked {
		rows[i] = x.ranked[i].row
	}
	return rows
}

// evalPlanned executes a prepared plan, in parallel when the engine's
// parallelism allows.
func (e *Engine) evalPlanned(ev *evaluation, q *Query, pr *prepared) (*Result, error) {
	pl := pr.plan
	mPlanExecs.Inc()
	if pl.Reordered {
		mPlanReordered.Inc()
	}
	ev.constTimes = pr.constTimes

	sp := ev.trace.StartSpan("plan")
	vars := make([]string, len(pl.Order))
	for i, gi := range pl.Order {
		vars[i] = pr.gens[gi].Var
	}
	mode := "written"
	if pl.Reordered {
		mode = "reordered"
	}
	sp.EndNote("order=%s mode=%s est_tuples=%.4g", strings.Join(vars, ","), mode, pl.EstTuples)

	if w := e.Parallelism(); w > 1 && pl.NStrict > 0 {
		res, done, err := e.evalPlannedParallel(ev, q, pr, w)
		if done {
			return res, err
		}
	}
	x := newPlannedExec(ev, q, pr)
	if err := x.run(nil, 0); err != nil {
		return nil, err
	}
	x.flushTrace()
	return &Result{Rows: x.finishRows()}, nil
}

// flushTrace records estimated-vs-actual cardinalities per generator.
func (x *plannedExec) flushTrace() {
	pl := x.pr.plan
	for _, gi := range pl.Order {
		v := x.gens[gi].Var
		x.ev.trace.Add("plan_actual_"+v, x.actual[gi])
		x.ev.trace.Add("plan_est_"+v, int64(pl.Est[gi]+0.5))
	}
}

// evalPlannedParallel partitions the plan's outermost generator across
// workers, mirroring the legacy evalParallel merge discipline: contiguous
// shards, first-occurrence dedup (or global rank merge when reordered),
// and the minimum-index error. The outer generator of a plan order never
// has dependencies (greedy only places satisfiable generators), so its
// candidate list is computable up front. done=false falls back to the
// serial planned path.
func (e *Engine) evalPlannedParallel(ev *evaluation, q *Query, pr *prepared, workers int) (*Result, bool, error) {
	pl := pr.plan
	parent := newPlannedExec(ev, q, pr)
	if ok, err := parent.applyPush(nil, 0); err != nil || !ok {
		if err != nil {
			return nil, true, err
		}
		return &Result{}, true, nil
	}
	o0 := pl.Order[0]
	g := pr.gens[o0]
	outer, err := ev.evalPath(nil, g.Path)
	if err != nil {
		return nil, true, err
	}
	if len(outer) < 2 {
		return nil, false, nil
	}
	if workers > len(outer) {
		workers = len(outer)
	}
	mParallel.Inc()

	type shard struct {
		x     *plannedExec
		errAt int
		err   error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(outer) / workers
		hi := (w + 1) * len(outer) / workers
		wg.Add(1)
		go func(w int, sh *shard, lo, hi int) {
			defer wg.Done()
			sp := ev.trace.StartSpan("worker")
			wev := ev.fork()
			x := newPlannedExec(wev, q, pr)
			for i := lo; i < hi; i++ {
				r := outer[i]
				x.idx[o0] = int32(i)
				if err := x.run(r.env.extend(g.Var, r.b), 1); err != nil {
					sh.errAt, sh.err = i, err
					break
				}
			}
			sh.x = x
			sp.EndNote("w=%d range=[%d,%d) rows=%d", w, lo, hi, x.emitted())
		}(w, &shards[w], lo, hi)
	}
	wg.Wait()

	// Fold worker stats into the parent evaluation and exec.
	parent.actual[o0] = int64(len(outer))
	for i := range shards {
		x := shards[i].x
		ev.bindings += x.ev.bindings
		ev.dedupHits += x.ev.dedupHits
		for gi := range parent.actual {
			if gi != o0 {
				parent.actual[gi] += x.actual[gi]
			}
		}
	}

	var firstErr error
	firstAt := -1
	for i := range shards {
		if shards[i].err != nil && (firstAt < 0 || shards[i].errAt < firstAt) {
			firstAt, firstErr = shards[i].errAt, shards[i].err
		}
	}
	if firstErr != nil {
		return nil, true, firstErr
	}

	msp := ev.trace.StartSpan("merge")
	if !pl.Reordered {
		for i := range shards {
			for _, row := range shards[i].x.rows {
				parent.kb = row.appendKey(parent.kb[:0])
				if !parent.seen[string(parent.kb)] {
					parent.seen[string(parent.kb)] = true
					parent.rows = append(parent.rows, row)
				} else {
					ev.dedupHits++
				}
			}
		}
	} else {
		for i := range shards {
			for _, rr := range shards[i].x.ranked {
				k := rr.row.key()
				if bi, ok := parent.best[k]; ok {
					ev.dedupHits++
					if rankLess(rr.rank, parent.ranked[bi].rank) {
						parent.ranked[bi].rank = rr.rank
					}
				} else {
					parent.best[k] = len(parent.ranked)
					parent.ranked = append(parent.ranked, rr)
				}
			}
		}
	}
	rows := parent.finishRows()
	msp.EndNote("workers=%d rows=%d", workers, len(rows))
	parent.flushTrace()
	return &Result{Rows: rows}, true, nil
}
