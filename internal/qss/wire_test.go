package qss

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/wrapper"
)

// startServerWith is startServer with an explicit ServerConfig.
func startServerWith(t *testing.T, sources map[string]wrapper.Source, cfg ServerConfig) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(sources, NewSimClock(timestamp.MustParse("1Jan97")), cfg)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

// TestServeRetriesTemporaryAcceptErrors: transient Accept failures
// (EMFILE, ECONNABORTED) must not kill the accept loop.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	src, _ := paperSource(t)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faults.NewListener(inner, func(attempt int) error {
		if attempt <= 3 {
			return faults.TemporaryError("simulated EMFILE")
		}
		return nil
	})
	srv := NewServer(map[string]wrapper.Source{"guide": src},
		NewSimClock(timestamp.MustParse("1Jan97")))
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	cl, err := Dial(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.List(); err != nil {
		t.Fatalf("list after injected accept errors: %v", err)
	}
	if got := ln.Attempts(); got < 4 {
		t.Errorf("accept attempts = %d, want >= 4 (3 injected failures + success)", got)
	}
}

// TestWireGarbageAndOversizedLines: malformed and oversized request lines
// must produce error responses — in sequence — and leave the connection
// usable, not dead.
func TestWireGarbageAndOversizedLines(t *testing.T) {
	src, _ := paperSource(t)
	addr, _ := startServerWith(t, map[string]wrapper.Source{"guide": src},
		ServerConfig{MaxMessage: 256})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	readResp := func() Response {
		t.Helper()
		nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("connection died: %v", err)
		}
		var resp Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("unparseable response %q: %v", line, err)
		}
		return resp
	}

	// 1: garbage that is not JSON.
	if _, err := nc.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	resp := readResp()
	if resp.Seq != 1 || resp.Error == "" || !strings.Contains(resp.Error, "malformed") {
		t.Fatalf("garbage line: got seq %d error %q", resp.Seq, resp.Error)
	}

	// 2: a line over the 256-byte limit (even valid JSON is rejected).
	big := `{"op":"subscribe","name":"` + strings.Repeat("x", 1000) + `"}` + "\n"
	if _, err := nc.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	resp = readResp()
	if resp.Seq != 2 || !strings.Contains(resp.Error, "exceeds") {
		t.Fatalf("oversized line: got seq %d error %q", resp.Seq, resp.Error)
	}

	// 3: the connection has resynchronized; a normal request still works.
	if _, err := nc.Write([]byte(`{"op":"list"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	resp = readResp()
	if resp.Seq != 3 || !resp.OK || resp.Error != "" {
		t.Fatalf("list after bad lines: got seq %d ok %v error %q", resp.Seq, resp.OK, resp.Error)
	}
}

// TestDispatchRecoversPollPanic: a panicking source turns into an error
// response on that request; the connection and server survive.
func TestDispatchRecoversPollPanic(t *testing.T) {
	bomb := wrapper.Func{
		PollFunc: func() (*oem.Database, error) { panic("source kaboom") },
		Stable:   true,
	}
	addr, _ := startServer(t, map[string]wrapper.Source{"bomb": bomb})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Subscribe("B", "bomb", "s", "select s.x", "select B.x", ""); err != nil {
		t.Fatal(err)
	}
	err = cl.Poll("B", "1Jan97")
	if err == nil {
		t.Fatal("poll of panicking source reported success")
	}
	if !strings.Contains(err.Error(), "internal error") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("poll error = %v, want contained panic", err)
	}
	// Same connection still works.
	names, err := cl.List()
	if err != nil {
		t.Fatalf("list after panic: %v", err)
	}
	if len(names) != 1 || names[0] != "B" {
		t.Errorf("names after panic = %v", names)
	}
}

// TestHeartbeatKeepsIdleClientAlive: with server heartbeats faster than
// the client's idle timeout, a quiet connection stays up.
func TestHeartbeatKeepsIdleClientAlive(t *testing.T) {
	src, _ := paperSource(t)
	addr, _ := startServerWith(t, map[string]wrapper.Source{"guide": src},
		ServerConfig{HeartbeatInterval: 50 * time.Millisecond})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetIdleTimeout(250 * time.Millisecond)
	select {
	case <-cl.Done():
		t.Fatalf("connection died despite heartbeats: %v", cl.Err())
	case <-time.After(600 * time.Millisecond):
	}
	if _, err := cl.List(); err != nil {
		t.Fatalf("list after idle period: %v", err)
	}
}

// TestClientIdleTimeoutWithoutHeartbeats: without heartbeats, the client's
// idle timeout tears the connection down (the reconnect trigger).
func TestClientIdleTimeoutWithoutHeartbeats(t *testing.T) {
	src, _ := paperSource(t)
	addr, _ := startServer(t, map[string]wrapper.Source{"guide": src})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetIdleTimeout(100 * time.Millisecond)
	select {
	case <-cl.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("idle connection never timed out")
	}
}

// TestServerIdleTimeoutDropsSilentClient: the server reaps connections
// that send nothing, unless they ping.
func TestServerIdleTimeoutDropsSilentClient(t *testing.T) {
	src, _ := paperSource(t)
	addr, _ := startServerWith(t, map[string]wrapper.Source{"guide": src},
		ServerConfig{IdleTimeout: 100 * time.Millisecond})

	silent, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	select {
	case <-silent.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("server never dropped the silent connection")
	}

	// A pinging client outlives several idle windows.
	chatty, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer chatty.Close()
	for i := 0; i < 8; i++ {
		if err := chatty.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, err := chatty.List(); err != nil {
		t.Fatalf("pinging client was dropped: %v", err)
	}
}

// TestTornWriteKillsOnlyThatConnection: a client whose writes tear
// mid-message loses its own connection; the server keeps serving others.
func TestTornWriteKillsOnlyThatConnection(t *testing.T) {
	src, _ := paperSource(t)
	addr, _ := startServer(t, map[string]wrapper.Source{"guide": src})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := faults.NewConn(nc, nil, faults.ConnScript(map[int]faults.ConnFault{
		2: {Torn: 5, Drop: true},
	}))
	victim := NewClient(fc)
	defer victim.Close()
	if _, err := victim.List(); err != nil {
		t.Fatalf("list before fault: %v", err)
	}
	// This request's write tears after 5 bytes and drops the conn; the
	// server sees a half line then EOF and must just clean up.
	if err := victim.Subscribe("X", "guide", "guide", "select guide.restaurant", "select X.restaurant", ""); err == nil {
		t.Fatal("subscribe over torn connection reported success")
	}

	other, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.List(); err != nil {
		t.Fatalf("server unusable after torn client write: %v", err)
	}
}
