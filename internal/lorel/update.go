package lorel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/value"
)

// The paper notes (Section 2.1) that "users will typically request
// 'higher-level' changes based on the Lorel update language; the basic
// change operations defined here reflect the actual changes at the
// database level." This file implements that layer: a small Lorel-style
// update language whose statements compile into basic change sets.
//
// Statements:
//
//	update PATH := LITERAL [where COND]   -- updNode on every matched node
//	insert PATH := LITERAL [where COND]   -- creNode+addArc under each
//	insert PATH := complex [where COND]      matched parent of PATH's last label
//	delete PATH [where COND]              -- remArc of every matched arc
//
// Examples:
//
//	update guide.restaurant.price := 25 where guide.restaurant.name = "Janta"
//	insert guide.restaurant.comment := "try the curry" where guide.restaurant.price < 20
//	delete guide.restaurant.parking where guide.restaurant.name = "Janta"
//
// The where clause correlates with the target path by shared prefixes,
// exactly as in queries. Target paths must be plain (no wildcards, globs,
// or annotation expressions).

// UpdateKind distinguishes the statement forms.
type UpdateKind uint8

// The update statement kinds.
const (
	UpdateSet UpdateKind = iota
	UpdateInsert
	UpdateDelete
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateSet:
		return "update"
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	default:
		return fmt.Sprintf("UpdateKind(%d)", uint8(k))
	}
}

// UpdateStmt is a parsed update statement.
type UpdateStmt struct {
	Kind   UpdateKind
	Target *PathExpr
	// Value is the assigned literal (UpdateSet, UpdateInsert).
	Value value.Value
	// Complex marks "insert PATH := complex" (a new complex object).
	Complex bool
	Where   Expr
}

// ParseUpdate parses an update statement.
func ParseUpdate(src string) (*UpdateStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt := &UpdateStmt{}
	switch {
	case p.acceptKeyword("update"):
		stmt.Kind = UpdateSet
	case p.acceptKeyword("insert"):
		stmt.Kind = UpdateInsert
	case p.acceptKeyword("delete"):
		stmt.Kind = UpdateDelete
	default:
		return nil, errf(p.peek().pos, "expected update, insert or delete, found %s", p.peek())
	}
	stmt.Target, err = p.parsePath()
	if err != nil {
		return nil, err
	}
	if err := checkPlainPath(stmt.Target); err != nil {
		return nil, err
	}
	if stmt.Kind != UpdateDelete {
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		if p.acceptKeyword("complex") {
			if stmt.Kind != UpdateInsert {
				return nil, errf(p.peek().pos, "':= complex' is only valid with insert")
			}
			stmt.Complex = true
			stmt.Value = value.Complex()
		} else {
			lit, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			c, ok := lit.(*ConstExpr)
			if !ok {
				return nil, errf(lit.Pos(), "assigned value must be a literal")
			}
			stmt.Value = c.Val
		}
	}
	if p.acceptKeyword("where") {
		stmt.Where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s after statement", p.peek())
	}
	if len(stmt.Target.Steps) == 0 {
		return nil, errf(stmt.Target.P, "update target needs at least one step")
	}
	return stmt, nil
}

func checkPlainPath(p *PathExpr) error {
	for _, s := range p.Steps {
		if s.Hash {
			return errf(s.P, "update targets cannot use '#' wildcards")
		}
		if !s.Quoted && strings.Contains(s.Label, "%") {
			return errf(s.P, "update targets cannot use label globs")
		}
		if s.Arc != nil || s.Node != nil {
			return errf(s.P, "update targets cannot carry annotation expressions")
		}
	}
	return nil
}

// CompileUpdate evaluates an update statement against the engine's
// registered databases and returns the basic change set it denotes.
// alloc supplies fresh node ids for inserts; when nil, an error is
// returned for insert statements.
func (e *Engine) CompileUpdate(stmt *UpdateStmt, alloc func() oem.NodeID) (change.Set, error) {
	target := clonePath(stmt.Target)
	last := target.Steps[len(target.Steps)-1]
	prefix := &PathExpr{
		Head:  target.Head,
		Steps: target.Steps[:len(target.Steps)-1],
		P:     target.P,
	}

	const parentVar, childVar = "_upd_parent", "_upd_child"
	// Canonicalization rewrites expression trees in place; clone so the
	// statement can be compiled repeatedly.
	q := &Query{Where: cloneExpr(stmt.Where)}
	switch stmt.Kind {
	case UpdateSet, UpdateDelete:
		q.From = []FromItem{
			{Path: prefix, Var: parentVar},
			{Path: &PathExpr{Head: parentVar, Steps: []*PathStep{last}, P: last.P}, Var: childVar},
		}
		q.Select = []SelectItem{
			{Expr: &PathValueExpr{Path: &PathExpr{Head: parentVar}}, Label: "parent"},
			{Expr: &PathValueExpr{Path: &PathExpr{Head: childVar}}, Label: "child"},
		}
	case UpdateInsert:
		q.From = []FromItem{{Path: prefix, Var: parentVar}}
		q.Select = []SelectItem{
			{Expr: &PathValueExpr{Path: &PathExpr{Head: parentVar}}, Label: "parent"},
		}
	}
	if err := Canonicalize(q); err != nil {
		return nil, err
	}
	res, err := e.Eval(q)
	if err != nil {
		return nil, err
	}

	var set change.Set
	switch stmt.Kind {
	case UpdateSet:
		seen := make(map[oem.NodeID]bool)
		for _, row := range res.Rows {
			c, _ := row.Cell("child")
			if !c.IsNode() || seen[c.Node()] {
				continue
			}
			seen[c.Node()] = true
			set = append(set, change.UpdNode{Node: c.Node(), Value: stmt.Value})
		}
	case UpdateDelete:
		seen := make(map[oem.Arc]bool)
		for _, row := range res.Rows {
			p, _ := row.Cell("parent")
			c, _ := row.Cell("child")
			if !p.IsNode() || !c.IsNode() {
				continue
			}
			arc := oem.Arc{Parent: p.Node(), Label: last.Label, Child: c.Node()}
			if seen[arc] {
				continue
			}
			seen[arc] = true
			set = append(set, change.RemArc{Parent: arc.Parent, Label: arc.Label, Child: arc.Child})
		}
	case UpdateInsert:
		if alloc == nil {
			return nil, fmt.Errorf("lorel: insert statements need an id allocator")
		}
		seen := make(map[oem.NodeID]bool)
		var parents []oem.NodeID
		for _, row := range res.Rows {
			p, _ := row.Cell("parent")
			if !p.IsNode() || seen[p.Node()] {
				continue
			}
			seen[p.Node()] = true
			parents = append(parents, p.Node())
		}
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		for _, parent := range parents {
			id := alloc()
			set = append(set, change.CreNode{Node: id, Value: stmt.Value})
			set = append(set, change.AddArc{Parent: parent, Label: last.Label, Child: id})
		}
	}
	return set, nil
}

// Update parses, compiles and returns the change set for an update
// statement in one call.
func (e *Engine) Update(src string, alloc func() oem.NodeID) (change.Set, error) {
	stmt, err := ParseUpdate(src)
	if err != nil {
		return nil, err
	}
	return e.CompileUpdate(stmt, alloc)
}
