package lorel

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// tracedQuery runs one query with a fresh trace attached and returns the
// trace alongside the result.
func tracedQuery(t *testing.T, eng *Engine, q string) (*Result, *obs.Trace) {
	t.Helper()
	tr := obs.NewTrace(q)
	res, err := eng.QueryContext(obs.WithTrace(context.Background(), tr), q)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	return res, tr
}

func spanNames(tr *obs.Trace) map[string]int {
	names := make(map[string]int)
	for _, sp := range tr.Spans() {
		names[sp.Name]++
	}
	return names
}

func TestQueryTraceSerial(t *testing.T) {
	serial, _ := syntheticEngines(t, 7, 12, 4, 4, 2)
	const q = `select R.name from guide.restaurant R where R.price < 40`

	res, tr := tracedQuery(t, serial, q)
	names := spanNames(tr)
	if names["parse"] != 1 || names["eval"] != 1 {
		t.Fatalf("want one parse and one eval span, got %v", names)
	}
	stats := tr.Stats()
	if stats["bindings"] < int64(len(res.Rows)) {
		t.Errorf("bindings stat %d < result rows %d", stats["bindings"], len(res.Rows))
	}
	if _, ok := stats["dedup_hits"]; !ok {
		t.Errorf("missing dedup_hits stat: %v", stats)
	}

	// Second run hits the query cache; the parse span says so.
	_, tr2 := tracedQuery(t, serial, q)
	found := false
	for _, sp := range tr2.Spans() {
		if sp.Name == "parse" && strings.Contains(sp.Note, "cache=hit") {
			found = true
		}
	}
	if !found {
		t.Errorf("cached parse span not marked cache=hit: %+v", tr2.Spans())
	}
}

func TestQueryTraceParallel(t *testing.T) {
	serial, par := syntheticEngines(t, 7, 16, 5, 5, 4)
	const q = `select R.name from guide.restaurant R where R.price < 40`

	_, str := tracedQuery(t, serial, q)
	_, ptr := tracedQuery(t, par, q)

	names := spanNames(ptr)
	if names["worker"] == 0 {
		t.Errorf("parallel trace has no worker spans: %v", names)
	}
	if names["merge"] != 1 {
		t.Errorf("parallel trace wants one merge span, got %v", names)
	}
	// Shard-summed stats must agree with the serial evaluation.
	ss, ps := str.Stats(), ptr.Stats()
	if ps["bindings"] != ss["bindings"] {
		t.Errorf("parallel bindings %d != serial %d", ps["bindings"], ss["bindings"])
	}
}

// TestConcurrentTracedQueries drives the parallel evaluator from many
// goroutines with metrics collection on and a live trace per query —
// the configuration the race detector must clear for the -admin endpoint
// to be safe on a serving qss.
func TestConcurrentTracedQueries(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	serial, par := syntheticEngines(t, 11, 16, 5, 5, 4)
	queries := []string{
		`select R.name from guide.restaurant R where R.price < 25`,
		`select C from guide.restaurant.<add at T>comment C where T > t[-2]`,
		`select guide.#`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := serial.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want[i] = res.String()
	}

	var wg sync.WaitGroup
	errCh := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				qi := (w + i) % len(queries)
				tr := obs.NewTrace(queries[qi])
				res, err := par.QueryContext(obs.WithTrace(context.Background(), tr), queries[qi])
				if err != nil {
					errCh <- err.Error()
					return
				}
				if res.String() != want[qi] {
					errCh <- "concurrent traced result differs: " + queries[qi]
					return
				}
				if len(tr.Spans()) == 0 {
					errCh <- "empty trace for " + queries[qi]
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}
}

// The evaluation hot path with instrumentation compiled in but collection
// off — the default configuration — versus collection on and versus a
// fully traced query. Compare BenchmarkEvalObsDisabled with
// BenchmarkEvalObsEnabled to see the collection cost; the disabled run is
// the baseline every untraced query pays.
func benchEval(b *testing.B, enabled, traced bool) {
	prev := obs.SetEnabled(enabled)
	defer obs.SetEnabled(prev)
	serial, _ := syntheticEngines(b, 7, 16, 5, 5, 2)
	const q = `select R.name from guide.restaurant R where R.price < 40`
	if _, err := serial.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		if traced {
			ctx = obs.WithTrace(ctx, obs.NewTrace(q))
		}
		if _, err := serial.QueryContext(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalObsDisabled(b *testing.B) { benchEval(b, false, false) }
func BenchmarkEvalObsEnabled(b *testing.B)  { benchEval(b, true, false) }
func BenchmarkEvalTraced(b *testing.B)      { benchEval(b, true, true) }
