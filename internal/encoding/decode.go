package encoding

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// ErrMalformed reports an OEM database that is not a well-formed Section 5.1
// encoding.
var ErrMalformed = errors.New("encoding: malformed DOEM encoding")

// Decode reconstructs a DOEM database from its OEM encoding. The result is
// isomorphic to the originally encoded database (node ids are freshly
// assigned; re-encoding yields an isomorphic encoding).
func Decode(enc *oem.Database) (*doem.Database, error) {
	dec := &decoder{enc: enc}
	if err := dec.scan(); err != nil {
		return nil, err
	}
	return dec.build()
}

// objInfo is the decoded description of one DOEM object.
type objInfo struct {
	encID oem.NodeID
	val   value.Value // current value
	cre   *timestamp.Time
	upds  []doem.UpdInfo
	arcs  []arcInfo
}

type arcInfo struct {
	label  string
	target oem.NodeID // encoding id of the target
	events []doem.ArcAnnot
	live   bool // present among current-snapshot arcs
}

type decoder struct {
	enc  *oem.Database
	objs map[oem.NodeID]*objInfo
	ord  []oem.NodeID
}

func (d *decoder) scan() error {
	d.objs = make(map[oem.NodeID]*objInfo)
	stack := []oem.NodeID{d.enc.Root()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, done := d.objs[n]; done {
			continue
		}
		info, next, err := d.scanObject(n)
		if err != nil {
			return err
		}
		d.objs[n] = info
		d.ord = append(d.ord, n)
		stack = append(stack, next...)
	}
	return nil
}

// scanObject decodes one encoding object and returns the encoding ids of
// neighbouring objects to scan.
func (d *decoder) scanObject(n oem.NodeID) (*objInfo, []oem.NodeID, error) {
	info := &objInfo{encID: n}
	var next []oem.NodeID
	sawVal := false
	current := make(map[string]map[oem.NodeID]bool) // label -> live targets
	for _, a := range d.enc.Out(n) {
		switch {
		case a.Label == LabelVal:
			if sawVal {
				return nil, nil, fmt.Errorf("%w: object %s has two &val children", ErrMalformed, n)
			}
			sawVal = true
			if a.Child == n {
				info.val = value.Complex()
			} else {
				v, ok := d.enc.Value(a.Child)
				if !ok || v.IsComplex() {
					return nil, nil, fmt.Errorf("%w: &val of %s is not atomic", ErrMalformed, n)
				}
				info.val = v
			}
		case a.Label == LabelCre:
			t, err := d.timeValue(a.Child)
			if err != nil {
				return nil, nil, err
			}
			if info.cre != nil {
				return nil, nil, fmt.Errorf("%w: object %s has two &cre children", ErrMalformed, n)
			}
			info.cre = &t
		case a.Label == LabelUpd:
			u, err := d.scanUpd(a.Child)
			if err != nil {
				return nil, nil, err
			}
			info.upds = append(info.upds, u)
		case strings.HasSuffix(a.Label, "-history") && strings.HasPrefix(a.Label, Prefix):
			label, _ := DataLabel(a.Label)
			arc, err := d.scanHistory(label, a.Child)
			if err != nil {
				return nil, nil, err
			}
			info.arcs = append(info.arcs, arc)
			next = append(next, arc.target)
		case strings.HasPrefix(a.Label, Prefix):
			return nil, nil, fmt.Errorf("%w: unknown encoding label %q on %s", ErrMalformed, a.Label, n)
		default:
			// A current-snapshot data arc.
			if current[a.Label] == nil {
				current[a.Label] = make(map[oem.NodeID]bool)
			}
			current[a.Label][a.Child] = true
			next = append(next, a.Child)
		}
	}
	if !sawVal {
		return nil, nil, fmt.Errorf("%w: object %s lacks &val", ErrMalformed, n)
	}
	sort.Slice(info.upds, func(i, j int) bool { return info.upds[i].At.Before(info.upds[j].At) })
	// Mark liveness and check consistency in one direction: every
	// current-snapshot data arc must have a live history entry. (The
	// converse does not hold — an object deleted by unreachability keeps
	// live-annotated arcs in its history while contributing no data arcs,
	// because the current snapshot excludes the whole object.)
	for i := range info.arcs {
		arc := &info.arcs[i]
		arc.live = len(arc.events) == 0 || arc.events[len(arc.events)-1].Kind == doem.AnnotAdd
		if arc.live {
			delete(current[arc.label], arc.target)
		}
	}
	for label, targets := range current {
		if len(targets) > 0 {
			return nil, nil, fmt.Errorf("%w: current arc %q of %s lacks a live history object", ErrMalformed, label, n)
		}
	}
	return info, next, nil
}

func (d *decoder) scanUpd(n oem.NodeID) (doem.UpdInfo, error) {
	var u doem.UpdInfo
	sawTime, sawOV, sawNV := false, false, false
	for _, a := range d.enc.Out(n) {
		switch a.Label {
		case LabelTime:
			t, err := d.timeValue(a.Child)
			if err != nil {
				return u, err
			}
			u.At, sawTime = t, true
		case LabelOV:
			v, _ := d.enc.Value(a.Child)
			u.Old, sawOV = v, true
		case LabelNV:
			v, _ := d.enc.Value(a.Child)
			u.New, sawNV = v, true
		default:
			return u, fmt.Errorf("%w: unexpected label %q in &upd", ErrMalformed, a.Label)
		}
	}
	if !sawTime || !sawOV || !sawNV {
		return u, fmt.Errorf("%w: incomplete &upd object %s", ErrMalformed, n)
	}
	return u, nil
}

func (d *decoder) scanHistory(label string, n oem.NodeID) (arcInfo, error) {
	arc := arcInfo{label: label}
	sawTarget := false
	for _, a := range d.enc.Out(n) {
		switch a.Label {
		case LabelTarget:
			if sawTarget {
				return arc, fmt.Errorf("%w: history object %s has two targets", ErrMalformed, n)
			}
			sawTarget = true
			arc.target = a.Child
		case LabelAdd, LabelRem:
			t, err := d.timeValue(a.Child)
			if err != nil {
				return arc, err
			}
			kind := doem.AnnotAdd
			if a.Label == LabelRem {
				kind = doem.AnnotRem
			}
			arc.events = append(arc.events, doem.ArcAnnot{Kind: kind, At: t})
		default:
			return arc, fmt.Errorf("%w: unexpected label %q in history object", ErrMalformed, a.Label)
		}
	}
	if !sawTarget {
		return arc, fmt.Errorf("%w: history object %s lacks &target", ErrMalformed, n)
	}
	sort.Slice(arc.events, func(i, j int) bool { return arc.events[i].At.Before(arc.events[j].At) })
	return arc, nil
}

func (d *decoder) timeValue(n oem.NodeID) (timestamp.Time, error) {
	v, ok := d.enc.Value(n)
	if !ok || v.Kind() != value.KindTime {
		return timestamp.Time{}, fmt.Errorf("%w: node %s is not a timestamp", ErrMalformed, n)
	}
	return v.AsTime(), nil
}

// build reconstructs the original snapshot and history, then replays them
// into a DOEM database.
func (d *decoder) build() (*doem.Database, error) {
	// Assign fresh DOEM ids: root first, others in scan order.
	o0 := oem.New()
	idOf := make(map[oem.NodeID]oem.NodeID, len(d.objs))
	idOf[d.enc.Root()] = o0.Root()
	for _, encID := range d.ord {
		if encID == d.enc.Root() {
			continue
		}
		info := d.objs[encID]
		idOf[encID] = o0.CreateNode(d.initialValue(info))
	}
	// Root's initial value is complex by construction; set others' initial
	// values already. Now wire initial arcs: those whose first event is rem
	// or that have no events.
	for _, encID := range d.ord {
		info := d.objs[encID]
		for _, arc := range info.arcs {
			initial := len(arc.events) == 0 || arc.events[0].Kind == doem.AnnotRem
			if initial {
				if err := o0.AddArc(idOf[encID], arc.label, idOf[arc.target]); err != nil {
					return nil, fmt.Errorf("%w: initial arc: %v", ErrMalformed, err)
				}
			}
		}
	}
	// Nodes with cre annotations are not part of O_0; they must be
	// unreachable there. GarbageCollect drops them (and anything else
	// unreachable initially).
	o0.GarbageCollect()

	// Reconstruct the history, one step per distinct timestamp.
	steps := make(map[timestamp.Time]*change.Set)
	var times []timestamp.Time
	stepFor := func(t timestamp.Time) *change.Set {
		if s, ok := steps[t]; ok {
			return s
		}
		s := &change.Set{}
		steps[t] = s
		times = append(times, t)
		return s
	}
	for _, encID := range d.ord {
		info := d.objs[encID]
		id := idOf[encID]
		if info.cre != nil {
			s := stepFor(*info.cre)
			*s = append(*s, change.CreNode{Node: id, Value: d.initialValue(info)})
		}
		for _, u := range info.upds {
			s := stepFor(u.At)
			*s = append(*s, change.UpdNode{Node: id, Value: u.New})
		}
		for _, arc := range info.arcs {
			for _, ev := range arc.events {
				s := stepFor(ev.At)
				if ev.Kind == doem.AnnotAdd {
					*s = append(*s, change.AddArc{Parent: id, Label: arc.label, Child: idOf[arc.target]})
				} else {
					*s = append(*s, change.RemArc{Parent: id, Label: arc.label, Child: idOf[arc.target]})
				}
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	h := make(change.History, 0, len(times))
	for _, t := range times {
		h = append(h, change.Step{At: t, Ops: *steps[t]})
	}
	rebuilt, err := doem.FromHistory(o0, h)
	if err != nil {
		return nil, fmt.Errorf("%w: history replay: %v", ErrMalformed, err)
	}
	return rebuilt, nil
}

// initialValue reconstructs an object's value at its first appearance: the
// old value of its earliest upd annotation, or its current value.
func (d *decoder) initialValue(info *objInfo) value.Value {
	if len(info.upds) > 0 {
		return info.upds[0].Old
	}
	return info.val
}
