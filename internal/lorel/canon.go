package lorel

import (
	"fmt"
)

// Canonicalize rewrites a parsed query into the canonical form the
// evaluator and the Chorel-to-Lorel translator consume, mirroring the
// paper's Section 4.2.1 preprocessing:
//
//   - every path expression is decomposed into single-step range-variable
//     definitions ("a.b.c" becomes "a.b X, X.c Y" — the Lorel rewriting the
//     paper cites), with *identical unannotated prefixes shared*: the
//     occurrences of guide.restaurant in "select guide.restaurant where
//     guide.restaurant.price < 20.5" denote the same object variable, which
//     is what makes Example 4.1 return only Bangkok Cuisine;
//   - paths in the select clause are hoisted into the from clause and
//     replaced by variables;
//   - paths in the where clause (outside exists bodies) are hoisted into
//     existentially quantified generators (Example 4.5) that bind null when
//     the path has no matches, so disjunctions over missing subobjects
//     still evaluate;
//   - every annotation expression is completed with variables
//     ("<add>" becomes "<add at _v1>"); annotated steps are never shared
//     between occurrences, since each occurrence binds its own variables;
//   - select items receive default labels: the last path label for objects
//     and the paper's create-time / add-time / remove-time / update-time /
//     old-value / new-value for annotation variables.
//
// Canonicalize mutates q in place.
func Canonicalize(q *Query) error {
	c := &canonicalizer{
		q:         q,
		varLabels: make(map[string]string),
		shared:    make(map[string]string),
	}
	return c.run()
}

type canonicalizer struct {
	q         *Query
	nfresh    int
	varLabels map[string]string // variable -> default output label
	shared    map[string]string // textual path prefix -> variable
}

func (c *canonicalizer) fresh() string {
	c.nfresh++
	return fmt.Sprintf("_v%d", c.nfresh)
}

func (c *canonicalizer) run() error {
	q := c.q
	// 1. Decompose the original from items in order, preserving user range
	// variables.
	var from []FromItem
	for _, f := range q.From {
		c.expandPath(f.Path, &from, f.Var)
	}

	// 2. Hoist and decompose select-clause paths (strict generators).
	for i := range q.Select {
		q.Select[i].Expr = c.rewriteExpr(q.Select[i].Expr, &from)
	}
	q.From = from

	// 3. Hoist and decompose where-clause paths into existential generators.
	var gens []FromItem
	if q.Where != nil {
		q.Where = c.rewriteExpr(q.Where, &gens)
	}
	q.WhereGens = append(q.WhereGens, gens...)

	// 4. Complete annotation expressions and record default labels.
	q.walkPaths(c.completeAnnots)

	// 5. Default select labels.
	for i := range q.Select {
		if q.Select[i].Label == "" {
			q.Select[i].Label = c.defaultLabel(q.Select[i].Expr)
		}
	}

	// 6. Stamp the plan-cache key. The canonical AST is immutable from
	// here on, so the key is computed once per parse, not per evaluation.
	q.key = canonicalKey(q)
	return nil
}

// Rekey recomputes the plan-cache key of a canonical-form query that was
// built or rewritten programmatically (the chorel translator) rather
// than through Canonicalize. Queries without a key are never planned.
func Rekey(q *Query) { q.key = canonicalKey(q) }

// expandPath decomposes a multi-step path into single-step generators
// appended to gens and returns the variable denoting the path's result.
// Unannotated steps reuse the variable of an identical earlier prefix.
// finalVar, when non-empty, names the last step's variable (a user range
// variable); it is registered for reuse but never itself reused.
func (c *canonicalizer) expandPath(p *PathExpr, gens *[]FromItem, finalVar string) string {
	cur := p.Head
	key := p.Head
	for i, step := range p.Steps {
		last := i == len(p.Steps)-1
		annotated := step.Arc != nil || step.Node != nil
		key = key + "." + stepKey(step)
		// Reuse a shared prefix variable when possible.
		if !annotated && !(last && finalVar != "") {
			if v, ok := c.shared[key]; ok {
				cur = v
				continue
			}
		}
		v := finalVar
		if !last || v == "" {
			v = c.fresh()
		}
		*gens = append(*gens, FromItem{
			Path: &PathExpr{Head: cur, Steps: []*PathStep{step}, P: step.P},
			Var:  v,
		})
		if !annotated {
			if _, taken := c.shared[key]; !taken {
				c.shared[key] = v
			}
		}
		c.varLabels[v] = stepLabel(step)
		cur = v
	}
	if len(p.Steps) == 0 {
		// A bare head. With a user alias, emit an aliasing generator.
		if finalVar != "" && finalVar != p.Head {
			*gens = append(*gens, FromItem{Path: &PathExpr{Head: p.Head, P: p.P}, Var: finalVar})
			return finalVar
		}
		return p.Head
	}
	return cur
}

// stepKey renders a step for prefix sharing.
func stepKey(s *PathStep) string {
	switch {
	case s.Group != nil:
		return s.Group.String()
	case s.Hash:
		return "#"
	case s.Quoted:
		return fmt.Sprintf("%q", s.Label)
	default:
		return s.Label
	}
}

func stepLabel(s *PathStep) string {
	if s.Hash || s.Group != nil {
		return "object"
	}
	return s.Label
}

// rewriteExpr replaces every path-with-steps in e by its expanded variable.
// Paths inside exists bodies are left alone (the evaluator enumerates them
// natively); bare variables are untouched.
func (c *canonicalizer) rewriteExpr(e Expr, gens *[]FromItem) Expr {
	switch x := e.(type) {
	case *PathValueExpr:
		if len(x.Path.Steps) == 0 {
			return x
		}
		v := c.expandPath(x.Path, gens, "")
		return &PathValueExpr{Path: &PathExpr{Head: v, P: x.Path.P}}
	case *BinExpr:
		x.L = c.rewriteExpr(x.L, gens)
		x.R = c.rewriteExpr(x.R, gens)
		return x
	case *NotExpr:
		x.E = c.rewriteExpr(x.E, gens)
		return x
	case *ExistsExpr:
		return x // native enumeration; keep paths in place
	case *AggExpr:
		return x // aggregates enumerate their path per tuple
	default:
		return e
	}
}

// completeAnnots fills missing annotation variables and records default
// labels for all annotation variables in the path.
func (c *canonicalizer) completeAnnots(p *PathExpr) {
	for _, s := range p.Steps {
		for _, ann := range []*AnnotExpr{s.Arc, s.Node} {
			if ann == nil || ann.Op == OpAt {
				continue
			}
			if ann.AtVar == "" {
				ann.AtVar = c.fresh()
			}
			c.varLabels[ann.AtVar] = timeLabel(ann.Op)
			if ann.Op == OpUpd {
				if ann.FromVar == "" {
					ann.FromVar = c.fresh()
				}
				if ann.ToVar == "" {
					ann.ToVar = c.fresh()
				}
				c.varLabels[ann.FromVar] = "old-value"
				c.varLabels[ann.ToVar] = "new-value"
			}
		}
	}
}

// timeLabel returns the paper's default label for an annotation time
// variable.
func timeLabel(op AnnotOp) string {
	switch op {
	case OpAdd:
		return "add-time"
	case OpRem:
		return "remove-time"
	case OpCre:
		return "create-time"
	case OpUpd:
		return "update-time"
	default:
		return "time"
	}
}

// defaultLabel computes the output label of a canonicalized select item.
func (c *canonicalizer) defaultLabel(e Expr) string {
	if pv, ok := e.(*PathValueExpr); ok {
		if len(pv.Path.Steps) == 0 {
			if l, ok := c.varLabels[pv.Path.Head]; ok {
				return l
			}
			return pv.Path.Head
		}
		last := pv.Path.Steps[len(pv.Path.Steps)-1]
		return stepLabel(last)
	}
	return "value"
}
