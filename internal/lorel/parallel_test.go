package lorel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/timestamp"
)

// syntheticEngines builds serial and parallel engines over the same
// randomly evolved guide DOEM, with identical polling times installed.
func syntheticEngines(t testing.TB, seed int64, restaurants, steps, ops, workers int) (*Engine, *Engine) {
	t.Helper()
	initial, h := guidegen.GenerateHistory(seed, restaurants, steps, ops)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatalf("building DOEM: %v", err)
	}
	var times []timestamp.Time
	for _, step := range h {
		times = append(times, step.At)
	}
	serial := NewEngine()
	serial.Register("guide", d)
	serial.SetPollTimes(times)
	par := NewEngine()
	par.Register("guide", d)
	par.SetPollTimes(times)
	par.SetParallelism(workers)
	return serial, par
}

// randomQuery composes a random Chorel query over the synthetic guide
// vocabulary: nested generators, wildcards, globs, arc and node
// annotations, time references and where clauses of varying shape.
func randomQuery(rng *rand.Rand) string {
	labels := []string{"name", "price", "cuisine", "address", "comment", "parking", "nearby-eats"}
	cuisines := []string{"thai", "italian", "mexican", "diner", "sushi", "bbq"}
	lbl := func() string { return labels[rng.Intn(len(labels))] }
	date := func() string { return fmt.Sprintf("%dJan97", 1+rng.Intn(9)) }

	from := []string{"guide.restaurant R"}
	sel := []string{"R"}
	var where []string

	switch rng.Intn(8) {
	case 0: // reachability wildcard
		from = append(from, "R.# C")
		sel = append(sel, "C")
		if rng.Intn(2) == 0 {
			where = append(where, fmt.Sprintf("C = %q", cuisines[rng.Intn(len(cuisines))]))
		}
	case 1: // label glob
		from = append(from, "R.%a% X")
		sel = append(sel, "X")
	case 2: // arc add annotation with bound time
		from = append(from, fmt.Sprintf("R.<add at T>%s C", lbl()))
		sel = append(sel, "C", "T")
		if rng.Intn(2) == 0 {
			where = append(where, "T > "+date())
		}
	case 3: // arc rem annotation
		from = append(from, fmt.Sprintf("R.<rem at T>%s C", lbl()))
		sel = append(sel, "T")
	case 4: // node upd annotation on price
		from = append(from, "R.price P")
		sel = append(sel, "T", "NV")
		from[1] = "R.price<upd at T to NV> P"
	case 5: // plain nested generator
		from = append(from, fmt.Sprintf("R.%s X", lbl()))
		sel = append(sel, "X")
	case 6: // snapshot at a past instant
		from = append(from, fmt.Sprintf("R.<at %s>%s X", date(), lbl()))
		sel = append(sel, "X")
	case 7: // aggregate in the where clause
		where = append(where, fmt.Sprintf("count(R.%s) >= %d", lbl(), rng.Intn(3)))
		sel = append(sel, "R.name")
	}

	switch rng.Intn(5) {
	case 0:
		where = append(where, fmt.Sprintf("R.price < %d", 5+rng.Intn(40)))
	case 1:
		where = append(where, fmt.Sprintf("R.cuisine = %q", cuisines[rng.Intn(len(cuisines))]))
	case 2:
		where = append(where, fmt.Sprintf("R.name like %q", "%"+string(rune('a'+rng.Intn(26)))+"%"))
	case 3:
		where = append(where, fmt.Sprintf("exists C in R.comment : C != %q", "x"))
	case 4: // creation-time predicate via an existential generator
		from = append(from, fmt.Sprintf("R.%s<cre at CT> Y", lbl()))
		where = append(where, "CT > "+date())
	}

	q := "select " + join(sel) + " from " + join(from)
	if len(where) > 0 {
		op := " and "
		if rng.Intn(3) == 0 {
			op = " or "
		}
		q += " where " + joinWith(where, op)
	}
	return q
}

func join(xs []string) string { return joinWith(xs, ", ") }

func joinWith(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

func rowKeys(res *Result) []string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = r.key()
	}
	return keys
}

// TestParallelMatchesSerialRandom is the tentpole property test: on 120
// randomized queries over randomized histories, parallel evaluation must
// produce a Result byte-identical to serial evaluation (same rows, same
// order), and identical errors when a query fails.
func TestParallelMatchesSerialRandom(t *testing.T) {
	const queriesPerDB = 40
	total, okCount := 0, 0
	for dbSeed := int64(0); dbSeed < 3; dbSeed++ {
		serial, par := syntheticEngines(t, dbSeed, 25, 6, 6, 4)
		rng := rand.New(rand.NewSource(100 + dbSeed))
		for i := 0; i < queriesPerDB; i++ {
			q := randomQuery(rng)
			total++
			rs, errS := serial.Query(q)
			rp, errP := par.Query(q)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("db %d query %q: serial err=%v, parallel err=%v", dbSeed, q, errS, errP)
			}
			if errS != nil {
				if errS.Error() != errP.Error() {
					t.Fatalf("db %d query %q: error mismatch:\nserial:   %v\nparallel: %v", dbSeed, q, errS, errP)
				}
				continue
			}
			okCount++
			if rs.String() != rp.String() {
				t.Fatalf("db %d query %q: results differ:\nserial:\n%s\nparallel:\n%s", dbSeed, q, rs, rp)
			}
			sk, pk := rowKeys(rs), rowKeys(rp)
			for j := range sk {
				if sk[j] != pk[j] {
					t.Fatalf("db %d query %q: row %d key differs: %s vs %s", dbSeed, q, j, sk[j], pk[j])
				}
			}
		}
	}
	if total < 100 {
		t.Fatalf("property test ran only %d queries, want >= 100", total)
	}
	// Guard against the generator degrading into queries that all fail to
	// parse (which would compare errors instead of results).
	if okCount*10 < total*9 {
		t.Fatalf("only %d/%d random queries evaluated cleanly", okCount, total)
	}
}

// TestParallelMatchesSerialPaperQueries pins the equivalence on the
// paper's own examples at several worker counts, including counts above
// the binding count.
func TestParallelMatchesSerialPaperQueries(t *testing.T) {
	queries := []string{
		`select guide.restaurant`,
		`select guide.restaurant.name`,
		`select R.name from guide.restaurant R where R.price < 20`,
		`select C from guide.restaurant.<add at T>comment C where T > 1Mar97`,
		`select N, T, NV from guide.restaurant R, R.name N, R.price<upd at T to NV>`,
		`select guide.#`,
	}
	e, _, d := paperEngine(t)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewEngine()
		par.Register("guide", d)
		par.SetParallelism(workers)
		for _, q := range queries {
			rs, err := e.Query(q)
			if err != nil {
				t.Fatalf("%q serial: %v", q, err)
			}
			rp, err := par.Query(q)
			if err != nil {
				t.Fatalf("%q parallel(%d): %v", q, workers, err)
			}
			if rs.String() != rp.String() {
				t.Errorf("%q parallel(%d) differs:\nserial:\n%s\nparallel:\n%s", q, workers, rs, rp)
			}
		}
	}
}

// TestParallelErrorMatchesSerial checks that a query failing mid-stream
// reports the same error in both modes (the parallel merge must pick the
// first error in binding order, not whichever worker failed first).
func TestParallelErrorMatchesSerial(t *testing.T) {
	serial, par := syntheticEngines(t, 1, 25, 4, 4, 4)
	// "+" is not a predicate, so the where clause errors on the first
	// tuple that reaches it.
	q := `select R from guide.restaurant R where R.price + 1`
	_, errS := serial.Query(q)
	_, errP := par.Query(q)
	if errS == nil || errP == nil {
		t.Fatalf("expected errors, got serial=%v parallel=%v", errS, errP)
	}
	if errS.Error() != errP.Error() {
		t.Fatalf("error mismatch:\nserial:   %v\nparallel: %v", errS, errP)
	}
}

// gateGraph wraps a Graph so a test can freeze evaluation mid-query: after
// threshold Out calls it closes reached and blocks every subsequent Out
// until release is closed. This makes cancellation tests deterministic on
// any machine speed: the test cancels while evaluation is provably
// mid-flight, then releases and requires a prompt context.Canceled.
type gateGraph struct {
	Graph
	threshold int32
	calls     int32
	reached   chan struct{}
	release   chan struct{}
	once      sync.Once
}

func newGateGraph(g Graph, threshold int32) *gateGraph {
	return &gateGraph{Graph: g, threshold: threshold, reached: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateGraph) Out(n oem.NodeID) []oem.Arc {
	if atomic.AddInt32(&g.calls, 1) >= g.threshold {
		g.once.Do(func() { close(g.reached) })
		<-g.release
	}
	return g.Graph.Out(n)
}

func cancellationDB(t testing.TB) *doem.Database {
	t.Helper()
	initial, h := guidegen.GenerateHistory(2, 150, 3, 4)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testCancellation(t *testing.T, workers int) {
	g := newGateGraph(cancellationDB(t), 100)
	e := NewEngine()
	e.Register("guide", g)
	e.SetParallelism(workers)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		// Reachability from every restaurant touches the whole shared
		// parking/nearby-eats component: far more work than the gate
		// threshold, so the query cannot finish before the gate trips.
		_, err := e.QueryContext(ctx, `select C from guide.restaurant R, R.# C where C = "no such value"`)
		done <- err
	}()

	select {
	case <-g.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("query never reached the gate")
	}
	cancel()
	close(g.release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query did not abort after cancellation")
	}
}

func TestCancellationSerial(t *testing.T)   { testCancellation(t, 1) }
func TestCancellationParallel(t *testing.T) { testCancellation(t, 4) }

// TestConcurrentEngineUse exercises one Engine from many goroutines —
// queries in both modes interleaved with SetPollTimes and Register — and
// relies on the race detector to catch unsynchronized state. It also
// checks that every concurrent query still returns the serial answer.
func TestConcurrentEngineUse(t *testing.T) {
	// Metrics collection on, so the instrumentation hooks are part of
	// what the race detector checks here.
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	serial, par := syntheticEngines(t, 4, 20, 5, 5, 4)
	queries := []string{
		`select R.name from guide.restaurant R where R.price < 25`,
		`select C from guide.restaurant.<add at T>comment C where T > t[-2]`,
		`select guide.#`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := serial.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want[i] = res.String()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (w + i) % len(queries)
				res, err := par.Query(queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("%q: %w", queries[qi], err)
					return
				}
				if got := res.String(); got != want[qi] {
					errCh <- fmt.Errorf("%q: concurrent result differs", queries[qi])
					return
				}
			}
		}(w)
	}
	// Engine-state writers running alongside the queries. Re-installing
	// the same poll times keeps the concurrent answers comparable.
	times := append([]timestamp.Time(nil), par.newEvaluation(nil).pollTimes...)
	wg.Add(1)
	go func() {
		defer wg.Done()
		extra, _ := guidegen.PaperGuide()
		for i := 0; i < 20; i++ {
			par.SetPollTimes(times)
			par.Register(fmt.Sprintf("scratch%d", i%3), NewOEMGraph(extra))
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
