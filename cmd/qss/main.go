// Command qss runs the Query Subscription Service server (paper Section 6,
// Figure 7). It hosts one or more information sources and accepts QSC
// client connections over TCP.
//
// Usage:
//
//	qss [-listen ADDR] [-guide N] [-library N] [-evolve DUR] [-parallel N] [-waldir DIR] [-walsync POLICY] [-segments DIR] [-csv NAME=PATH:KEY:ROW]...
//
// Persistence is either a flat per-subscription write-ahead log (-waldir)
// or a time-partitioned segment store (-segments, with -seal-anns,
// -seal-age and -cold-after tuning the seal and tier policy; see
// docs/segments.md). The two are mutually exclusive.
//
// Built-in demo sources:
//
//	guide    a synthetic restaurant guide with N entries that evolves
//	         every -evolve interval (default 2s), polled as "guide"
//	library  a circulation simulator with N books, polled as "library"
//
// CSV sources re-read PATH on every poll, exposing rows as ROW objects
// keyed by the KEY column.
//
// Observability (see docs/observability.md): -admin ADDR serves /metrics
// (expvar-style JSON, or Prometheus text with ?format=prometheus),
// /healthz with per-subscription poll-health states, and net/http/pprof —
// and switches metrics collection on. -version prints build information.
//
// Fault tolerance (see docs/robustness.md): -heartbeat, -idle-timeout,
// -write-timeout, -max-msg and -linger harden the wire layer;
// -retry-initial, -retry-max, -degraded-after, -suspend-after and -probe
// tune poll retry and subscription health. The -chaos-* flags wrap every
// source with seeded fault injection for resilience testing. SIGINT or
// SIGTERM triggers a graceful shutdown (pollers stopped, WAL flushed,
// connections drained).
//
// Replication (see docs/replication.md): -repl-dir turns the server into a
// replication participant whose poll history lives on a replicated oplog
// (mutually exclusive with -waldir and -segments). -repl-listen accepts
// follower streams; -repl-primary takes the primary role at startup, while
// -repl-follow ADDR follows an existing primary and serves reads, with
// writes redirected to the primary's -repl-advertise address. -repl-ack
// picks the write acknowledgment mode (none | one | quorum). POST
// /promote on the admin endpoint promotes a follower during failover, and
// /healthz reports the node's role, epoch and replication lag.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/guidegen"
	"repro/internal/incr"
	"repro/internal/index"
	"repro/internal/library"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/plan"
	"repro/internal/qss"
	"repro/internal/repl"
	"repro/internal/segment"
	"repro/internal/symbol"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

type csvFlags []string

func (c *csvFlags) String() string     { return strings.Join(*c, ",") }
func (c *csvFlags) Set(s string) error { *c = append(*c, s); return nil }

type config struct {
	listen   string
	guideN   int
	libN     int
	evolve   time.Duration
	seed     int64
	parallel int
	walDir   string
	walSync  string
	csvs     []string
	admin    string

	segDir   string
	sealAnns int
	sealAge  time.Duration
	coldN    uint64

	heartbeat    time.Duration
	idleTimeout  time.Duration
	writeTimeout time.Duration
	maxMsg       int
	linger       time.Duration
	drain        time.Duration

	retryInitial  time.Duration
	retryMax      time.Duration
	degradedAfter int
	suspendAfter  int
	probe         time.Duration

	chaosSeed    int64
	chaosErrRate float64
	chaosLatency time.Duration

	replDir        string
	replListen     string
	replFollow     string
	replPrimary    bool
	replID         string
	replAck        string
	replReplicas   int
	replAckTimeout time.Duration
	replAdvertise  string
	replHeartbeat  time.Duration
	replIdle       time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:4997", "address to listen on")
	flag.IntVar(&cfg.guideN, "guide", 50, "restaurants in the demo guide source")
	flag.IntVar(&cfg.libN, "library", 30, "books in the demo library source")
	flag.DurationVar(&cfg.evolve, "evolve", 2*time.Second, "interval between demo source changes")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for the demo sources")
	flag.IntVar(&cfg.parallel, "parallel", 1, "query evaluation workers per poll (0 = GOMAXPROCS)")
	noindex := flag.Bool("noindex", false, "disable secondary indexes and poll-time snapshot caching")
	noplanner := flag.Bool("noplanner", false, "disable the cost-based query planner (written-order baseline)")
	noincremental := flag.Bool("noincremental", false, "disable delta-driven incremental subscription matching (evaluate every filter on every poll)")
	nointern := flag.Bool("nointern", false, "disable symbol interning and streaming evaluation (string+materialized baseline)")
	flag.StringVar(&cfg.walDir, "waldir", "", "directory for per-subscription write-ahead logs (empty: no persistence)")
	flag.StringVar(&cfg.walSync, "walsync", "interval", "WAL durability: always | interval | never")
	flag.StringVar(&cfg.segDir, "segments", "", "directory for per-subscription segmented history stores (mutually exclusive with -waldir; see docs/segments.md)")
	flag.IntVar(&cfg.sealAnns, "seal-anns", 0, "auto-seal the active segment after this many annotations (0 = manual seals only)")
	flag.DurationVar(&cfg.sealAge, "seal-age", 0, "auto-seal the active segment after this much history time (0 = off)")
	flag.Uint64Var(&cfg.coldN, "cold-after", 0, "demote sealed segments untouched for this many graph operations to the cold tier (0 = never)")
	flag.StringVar(&cfg.admin, "admin", "", "serve /metrics, /healthz and pprof on this address (enables metrics collection; empty = off)")
	version := flag.Bool("version", false, "print build information and exit")
	var csvs csvFlags
	flag.Var(&csvs, "csv", "CSV source as NAME=PATH:KEY:ROW (repeatable)")

	flag.DurationVar(&cfg.heartbeat, "heartbeat", 0, "push idle keep-alives to clients at this interval (0 = off)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 0, "drop connections silent for this long (0 = never)")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 0, "per-message write deadline (0 = none)")
	flag.IntVar(&cfg.maxMsg, "max-msg", 0, "max request line size in bytes (0 = 1 MiB default)")
	flag.DurationVar(&cfg.linger, "linger", 0, "keep a disconnected client's subscriptions resumable for this long")
	flag.DurationVar(&cfg.drain, "drain", 5*time.Second, "graceful-shutdown window for connected clients")

	flag.DurationVar(&cfg.retryInitial, "retry-initial", 0, "initial poll retry backoff (0 = default 1s)")
	flag.DurationVar(&cfg.retryMax, "retry-max", 0, "max poll retry backoff (0 = default 1m)")
	flag.IntVar(&cfg.degradedAfter, "degraded-after", 0, "consecutive poll failures before a subscription is degraded (0 = default 3)")
	flag.IntVar(&cfg.suspendAfter, "suspend-after", 0, "consecutive poll failures before a subscription is suspended (0 = default 8)")
	flag.DurationVar(&cfg.probe, "probe", 0, "probe interval while suspended (0 = default 1m)")

	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 0, "seed for source fault injection")
	flag.Float64Var(&cfg.chaosErrRate, "chaos-error-rate", 0, "probability each source poll fails (0 = chaos off)")
	flag.DurationVar(&cfg.chaosLatency, "chaos-latency", 0, "max injected source poll latency")

	flag.StringVar(&cfg.replDir, "repl-dir", "", "directory for the replicated oplog (enables replication; mutually exclusive with -waldir and -segments)")
	flag.StringVar(&cfg.replListen, "repl-listen", "", "address accepting follower replication streams")
	flag.StringVar(&cfg.replFollow, "repl-follow", "", "primary replication address to follow (serve as a read replica)")
	flag.BoolVar(&cfg.replPrimary, "repl-primary", false, "take the primary role at startup")
	flag.StringVar(&cfg.replID, "repl-id", "", "node id in acks and logs (default: the -listen address)")
	flag.StringVar(&cfg.replAck, "repl-ack", "none", "write acknowledgment mode: none | one | quorum")
	flag.IntVar(&cfg.replReplicas, "repl-replicas", 0, "expected follower count (the quorum denominator for -repl-ack=quorum)")
	flag.DurationVar(&cfg.replAckTimeout, "repl-ack-timeout", 5*time.Second, "max wait for the ack quorum (0 = wait forever)")
	flag.StringVar(&cfg.replAdvertise, "repl-advertise", "", "client-facing address replicas redirect writes to while primary (default: -listen)")
	flag.DurationVar(&cfg.replHeartbeat, "repl-heartbeat", time.Second, "primary commit-watermark heartbeat cadence (0 = off)")
	flag.DurationVar(&cfg.replIdle, "repl-idle-timeout", 5*time.Second, "follower stream liveness timeout before redialing (0 = off)")
	flag.Parse()
	cfg.csvs = csvs

	if *version {
		fmt.Println("qss", obs.Version())
		return
	}
	if *noindex {
		index.SetEnabled(false)
	}
	if *noplanner {
		plan.SetEnabled(false)
	}
	if *noincremental {
		incr.SetEnabled(false)
	}
	if *nointern {
		symbol.SetEnabled(false)
		lorel.SetStreaming(false)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "qss:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	sources := make(map[string]wrapper.Source)

	// Demo guide: a mutable source evolved by a background goroutine.
	ev := guidegen.NewEvolver(cfg.seed, cfg.guideN)
	guideSrc := wrapper.NewMutable(ev.DB)
	sources["guide"] = guideSrc

	// Demo library.
	sim := library.New(cfg.seed, cfg.libN)
	libSrc := wrapper.NewMutable(sim.DB())
	sources["library"] = libSrc

	for _, spec := range cfg.csvs {
		name, src, err := parseCSVSpec(spec)
		if err != nil {
			return err
		}
		sources[name] = src
	}

	// Chaos mode: wrap every source with seeded, reproducible fault
	// injection to exercise the retry/health machinery end to end.
	if cfg.chaosErrRate > 0 || cfg.chaosLatency > 0 {
		for name, src := range sources {
			sources[name] = faults.NewSource(src,
				faults.Random(cfg.chaosSeed, cfg.chaosErrRate, cfg.chaosLatency))
		}
		fmt.Printf("qss: chaos on (seed=%d error-rate=%g latency<=%s)\n",
			cfg.chaosSeed, cfg.chaosErrRate, cfg.chaosLatency)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background evolution of the demo sources, stopped on shutdown.
	rng := rand.New(rand.NewSource(cfg.seed))
	go func() {
		t := time.NewTicker(cfg.evolve)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			guideSrc.Mutate(func(*oem.Database) error {
				ev.Step(2 + rng.Intn(4))
				return nil
			})
			libSrc.Mutate(func(*oem.Database) error {
				sim.Step(1 + rng.Intn(3))
				return nil
			})
		}
	}()

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	fmt.Printf("qss: listening on %s (sources: %s)\n", ln.Addr(), sourceNames(sources))
	srv := qss.NewServerWith(sources, qss.RealClock{}, qss.ServerConfig{
		Retry: qss.RetryPolicy{
			Initial:       cfg.retryInitial,
			Max:           cfg.retryMax,
			DegradedAfter: cfg.degradedAfter,
			SuspendAfter:  cfg.suspendAfter,
			Probe:         cfg.probe,
		},
		Seed:              cfg.seed,
		HeartbeatInterval: cfg.heartbeat,
		IdleTimeout:       cfg.idleTimeout,
		WriteTimeout:      cfg.writeTimeout,
		MaxMessage:        cfg.maxMsg,
		Linger:            cfg.linger,
	})
	if cfg.parallel != 1 {
		srv.Service().SetParallelism(cfg.parallel)
	}
	if cfg.walDir != "" {
		var pol wal.SyncPolicy
		switch cfg.walSync {
		case "always":
			pol = wal.SyncAlways
		case "interval":
			pol = wal.SyncInterval
		case "never":
			pol = wal.SyncNever
		default:
			return fmt.Errorf("bad -walsync %q (want always, interval, or never)", cfg.walSync)
		}
		if err := srv.EnableWAL(cfg.walDir, &wal.Options{Sync: pol}); err != nil {
			return err
		}
		fmt.Printf("qss: logging subscriptions under %s (sync=%s)\n", cfg.walDir, cfg.walSync)
	}
	if cfg.segDir != "" {
		var spol *segment.Policy
		if cfg.sealAnns > 0 || cfg.sealAge > 0 || cfg.coldN > 0 {
			spol = &segment.Policy{
				SealAnnotations: cfg.sealAnns,
				SealAge:         cfg.sealAge,
				ColdAfter:       cfg.coldN,
			}
		}
		if err := srv.EnableSegments(cfg.segDir, nil, spol); err != nil {
			return err
		}
		fmt.Printf("qss: segmented subscription history under %s (seal-anns=%d seal-age=%s cold-after=%d)\n",
			cfg.segDir, cfg.sealAnns, cfg.sealAge, cfg.coldN)
	}

	// Replication: subscription history lives on a replicated oplog (see
	// docs/replication.md) instead of per-subscription logs or segments.
	var node *repl.Node
	if cfg.replDir == "" {
		for flagName, set := range map[string]bool{
			"-repl-listen":  cfg.replListen != "",
			"-repl-follow":  cfg.replFollow != "",
			"-repl-primary": cfg.replPrimary,
		} {
			if set {
				return fmt.Errorf("%s requires -repl-dir", flagName)
			}
		}
	} else {
		if cfg.walDir != "" || cfg.segDir != "" {
			return fmt.Errorf("-repl-dir is mutually exclusive with -waldir and -segments")
		}
		if cfg.replPrimary && cfg.replFollow != "" {
			return fmt.Errorf("-repl-primary and -repl-follow are mutually exclusive")
		}
		ack, err := repl.ParseAckMode(cfg.replAck)
		if err != nil {
			return err
		}
		id := cfg.replID
		if id == "" {
			id = cfg.listen
		}
		advertise := cfg.replAdvertise
		if advertise == "" {
			advertise = cfg.listen
		}
		node, err = repl.Open(cfg.replDir, qss.NewReplState(srv.Service()), repl.Config{
			ID:             id,
			Ack:            ack,
			Replicas:       cfg.replReplicas,
			AckTimeout:     cfg.replAckTimeout,
			Advertise:      advertise,
			HeartbeatEvery: cfg.replHeartbeat,
			IdleTimeout:    cfg.replIdle,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		if err := srv.EnableReplication(node); err != nil {
			return err
		}
		if cfg.replListen != "" {
			rln, err := net.Listen("tcp", cfg.replListen)
			if err != nil {
				return fmt.Errorf("repl: %w", err)
			}
			defer rln.Close()
			go node.Serve(rln)
			fmt.Printf("qss: replication streams on %s\n", rln.Addr())
		}
		switch {
		case cfg.replPrimary:
			if err := node.Promote(); err != nil {
				return err
			}
		case cfg.replFollow != "":
			target := cfg.replFollow
			if err := node.Follow(func() (net.Conn, error) {
				return net.Dial("tcp", target)
			}); err != nil {
				return err
			}
		}
		st := node.Status()
		fmt.Printf("qss: replicated oplog under %s (id=%s role=%s epoch=%d ack=%s advertise=%s)\n",
			cfg.replDir, id, st.Role, st.Epoch, ack, advertise)
	}

	// Opt-in admin endpoint: metrics (JSON + Prometheus text), health with
	// per-subscription poll states, and pprof. Collection is enabled only
	// when the endpoint is served, so the default run pays one atomic
	// branch per metric touch. Bind to localhost unless fronted by
	// something that authenticates (see docs/observability.md).
	var adminSrv *http.Server
	if cfg.admin != "" {
		obs.SetEnabled(true)
		aln, err := net.Listen("tcp", cfg.admin)
		if err != nil {
			return fmt.Errorf("admin: %w", err)
		}
		mux := obs.NewAdminMux(obs.AdminOptions{
			Registry: obs.Default,
			Health: func() (string, map[string]any) {
				states := srv.HealthStates()
				status := "ok"
				for _, st := range states {
					if st == qss.Suspended.String() {
						status = "degraded"
					}
				}
				details := map[string]any{
					"subscriptions": states,
					"orphaned":      srv.Orphaned(),
				}
				if node != nil {
					st := node.Status()
					details["repl"] = map[string]any{
						"role":    st.Role.String(),
						"epoch":   st.Epoch,
						"fenced":  st.Fenced,
						"applied": st.Applied,
						"commit":  st.Commit,
						"lag_seq": st.LagSeq,
						"primary": st.PrimaryAddr,
					}
					if st.Fenced {
						status = "degraded"
					}
				}
				return status, details
			},
		})
		if node != nil {
			// Failover runbook endpoint: promote this node to primary (see
			// docs/replication.md). Epoch fencing makes the deposed primary's
			// appends fail once any follower or client carries the news.
			mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
				if r.Method != http.MethodPost {
					http.Error(w, "POST only", http.StatusMethodNotAllowed)
					return
				}
				if err := node.Promote(); err != nil {
					http.Error(w, err.Error(), http.StatusConflict)
					return
				}
				st := node.Status()
				fmt.Fprintf(w, "{\"role\":%q,\"epoch\":%d}\n", st.Role, st.Epoch)
			})
		}
		adminSrv = &http.Server{Handler: mux}
		go func() { _ = adminSrv.Serve(aln) }()
		fmt.Printf("qss: admin endpoint on http://%s (/metrics, /healthz, /debug/pprof)\n", aln.Addr())
	}

	served := make(chan struct{})
	go func() {
		defer close(served)
		srv.Serve(ln)
	}()
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop pollers, give clients the drain window,
		// flush and close the WAL.
		fmt.Println("qss: shutting down")
		srv.Shutdown(cfg.drain)
		<-served
	case <-served:
		srv.Close()
	}
	if adminSrv != nil {
		_ = adminSrv.Close()
	}
	return nil
}

func parseCSVSpec(spec string) (string, wrapper.Source, error) {
	eq := strings.IndexByte(spec, '=')
	if eq < 0 {
		return "", nil, fmt.Errorf("bad -csv spec %q (want NAME=PATH:KEY:ROW)", spec)
	}
	name := spec[:eq]
	parts := strings.Split(spec[eq+1:], ":")
	if len(parts) != 3 {
		return "", nil, fmt.Errorf("bad -csv spec %q (want NAME=PATH:KEY:ROW)", spec)
	}
	path, key, row := parts[0], parts[1], parts[2]
	src := wrapper.NewCSV(row, key, func() (string, error) {
		data, err := os.ReadFile(path)
		return string(data), err
	})
	return name, src, nil
}

func sourceNames(m map[string]wrapper.Source) string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	return strings.Join(names, ", ")
}
