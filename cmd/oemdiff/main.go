// Command oemdiff infers the basic change operations between two OEM
// snapshots stored as .oem.json files (the paper's OEMdiff module,
// Section 6).
//
// Usage:
//
//	oemdiff [-match] OLD.oem.json NEW.oem.json
//
// By default the snapshots are assumed to share object identity (stable
// node ids); -match uses the structural matcher instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/oemdiff"
	"repro/internal/oemio"
)

func main() {
	match := flag.Bool("match", false, "match objects structurally instead of by id")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: oemdiff [-match] OLD.oem.json NEW.oem.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *match); err != nil {
		fmt.Fprintln(os.Stderr, "oemdiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, match bool) error {
	old, err := load(oldPath)
	if err != nil {
		return err
	}
	new, err := load(newPath)
	if err != nil {
		return err
	}
	var set change.Set
	if match {
		set, err = oemdiff.Diff(old, new, nil)
	} else {
		set, err = oemdiff.DiffIdentity(old, new)
	}
	if err != nil {
		return err
	}
	for _, op := range set.Canonical() {
		fmt.Println(op)
	}
	c := oemdiff.Measure(set)
	fmt.Printf("# %d ops: %d creNode, %d updNode, %d addArc, %d remArc\n",
		c.Total(), c.Creates, c.Updates, c.Adds, c.Removes)
	return nil
}

func load(path string) (*oem.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return oemio.Read(f)
}
