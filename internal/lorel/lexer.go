package lorel

import (
	"fmt"
	"strings"
)

// lexer splits query text into tokens.
//
// Identifier tokens are generous because OEM labels are free-form: they may
// start with a letter, '_', '&' (the encoding prefix of Section 5.1) or '%'
// (a label glob), and continue with letters, digits, '_', '&', '%', and '-'
// ("nearby-eats"). A '-' is part of an identifier only when it is directly
// followed by a letter, so "T - 5" lexes as a subtraction while
// "nearby-eats" is one label. Write spaces around a binary minus.
//
// A token starting with a digit that contains trailing letters is lexed as
// an unquoted timestamp literal ("4Jan97", per paper Section 4.2); plain
// digit runs are integers, and digits with a single '.' are reals.
type lexer struct {
	src string
	pos int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

// Error is a query syntax or evaluation error with a byte position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lorel: at offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumberOrTime(start)
	case c == '"' || c == '\'':
		return l.lexString(start, c)
	}
	l.pos++
	switch c {
	case '.':
		return token{kind: tokDot, pos: start}, nil
	case ',':
		return token{kind: tokComma, pos: start}, nil
	case '(':
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		return token{kind: tokRParen, pos: start}, nil
	case '[':
		return token{kind: tokLBracket, pos: start}, nil
	case ']':
		return token{kind: tokRBracket, pos: start}, nil
	case ':':
		return token{kind: tokColon, pos: start}, nil
	case '+':
		return token{kind: tokPlus, pos: start}, nil
	case '-':
		return token{kind: tokMinus, pos: start}, nil
	case '*':
		return token{kind: tokStar, pos: start}, nil
	case '/':
		return token{kind: tokSlash, pos: start}, nil
	case '#':
		return token{kind: tokHash, pos: start}, nil
	case '|':
		return token{kind: tokPipe, pos: start}, nil
	case '?':
		return token{kind: tokQuestion, pos: start}, nil
	case '=':
		return token{kind: tokEq, pos: start}, nil
	case '!':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokNeq, pos: start}, nil
		}
		return token{}, errf(start, "unexpected '!'")
	case '<':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokLeq, pos: start}, nil
		}
		if l.pos < len(l.src) && l.src[l.pos] == '>' {
			l.pos++
			return token{kind: tokNeq, pos: start}, nil
		}
		return token{kind: tokLAngle, pos: start}, nil
	case '>':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokGeq, pos: start}, nil
		}
		return token{kind: tokRAngle, pos: start}, nil
	}
	return token{}, errf(start, "unexpected character %q", c)
}

func (l *lexer) lexIdent(start int) token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isIdentPart(c) {
			l.pos++
			continue
		}
		// '-' continues an identifier only when followed by a letter.
		if c == '-' && l.pos+1 < len(l.src) && isLetter(l.src[l.pos+1]) {
			l.pos += 2
			continue
		}
		break
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}
}

func (l *lexer) lexNumberOrTime(start int) (token, error) {
	sawDot := false
	sawLetter := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !sawDot && !sawLetter && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			sawDot = true
			l.pos++
		case isLetter(c) || c == ':':
			sawLetter = true
			l.pos++
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	switch {
	case sawLetter && sawDot:
		return token{}, errf(start, "malformed literal %q", text)
	case sawLetter:
		return token{kind: tokTime, text: text, pos: start}, nil
	case sawDot:
		return token{kind: tokReal, text: text, pos: start}, nil
	default:
		return token{kind: tokInt, text: text, pos: start}, nil
	}
}

func (l *lexer) lexString(start int, quote byte) (token, error) {
	l.pos++ // consume opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, errf(start, "unterminated string")
			}
			l.pos++
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"', '\'':
				b.WriteByte(esc)
			default:
				return token{}, errf(l.pos, "unknown escape \\%c", esc)
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, errf(start, "unterminated string")
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentStart(c byte) bool {
	return isLetter(c) || c == '_' || c == '&' || c == '%' || c == '@'
}

func isIdentPart(c byte) bool {
	return isLetter(c) || (c >= '0' && c <= '9') || c == '_' || c == '&' || c == '%' || c == '@'
}
