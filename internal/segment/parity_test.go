package segment

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/lorel"
	"repro/internal/timestamp"
)

// randomQuery draws one query from a template pool covering the evaluator
// paths that reach into history: exact-label steps, virtual <at T> steps,
// <add/rem at T> arc annotations, <upd ...> matching, <cre at T> node
// annotations, wildcards, and poll-time offsets t[-i] resolved against
// SetPollTimes.
func randomQuery(rng *rand.Rand, times []timestamp.Time) string {
	at := func() string { return fmt.Sprintf("%q", times[rng.Intn(len(times))].String()) }
	switch rng.Intn(12) {
	case 0:
		return `select guide.restaurant.name`
	case 1:
		return fmt.Sprintf(`select N from guide.restaurant R, R.name N where R.price < %d`, 5+rng.Intn(40))
	case 2:
		return fmt.Sprintf(`select guide.<at %s>restaurant.name`, at())
	case 3:
		return fmt.Sprintf(`select R from guide.<at %s>restaurant R, R.<at %s>price P where P < %d`,
			at(), at(), 5+rng.Intn(40))
	case 4:
		return `select N, T from guide.<add at T>restaurant R, R.name N`
	case 5:
		return `select T from guide.<rem at T>restaurant`
	case 6:
		return `select T, OV, NV from guide.restaurant.price<upd at T from OV to NV>`
	case 7:
		return `select guide.#.name`
	case 8:
		return `select guide.restaurant.commen%`
	case 9:
		return fmt.Sprintf(`select N, T from guide.restaurant<cre at T> R, R.name N where T >= %s`, at())
	case 10:
		return fmt.Sprintf(`select T from guide.<add at T>restaurant where T > t[-%d]`, 1+rng.Intn(5))
	default:
		return `select N, T from guide.restaurant<cre at T> R, R.name N where T < t[0]`
	}
}

// TestSegmentedEvalParity is the subsystem's end-to-end property test:
// over randomized histories with randomized seal points, a lorel engine on
// the segmented store's graph (serial and parallel) must return
// byte-identical results to one on a monolithic database holding the same
// history, on well over 100 randomized queries including poll-time
// offsets.
func TestSegmentedEvalParity(t *testing.T) {
	total := 0
	for seed := int64(1); seed <= 4; seed++ {
		sealRng := rand.New(rand.NewSource(seed * 104729))
		dir := filepath.Join(t.TempDir(), "store")
		mono, st := buildPair(t, dir, seed, func(i int) bool { return sealRng.Intn(5) == 0 }, nil)
		defer st.Close()

		raw := lorel.NewEngine()
		raw.Register("guide", mono)
		seg := lorel.NewEngine()
		seg.Register("guide", st.Graph())
		par := lorel.NewEngine()
		par.Register("guide", st.Graph())
		par.SetParallelism(4)

		steps := mono.Steps()
		polls := steps[:len(steps)/2+1]
		raw.SetPollTimes(polls)
		seg.SetPollTimes(polls)
		par.SetPollTimes(polls)

		rng := rand.New(rand.NewSource(seed * 7919))
		times := candidateTimes(mono)
		for i := 0; i < 30; i++ {
			q := randomQuery(rng, times)
			want, err := raw.Query(q)
			if err != nil {
				t.Fatalf("seed %d: monolithic %q: %v", seed, q, err)
			}
			got, err := seg.Query(q)
			if err != nil {
				t.Fatalf("seed %d: segmented %q: %v", seed, q, err)
			}
			if want.String() != got.String() {
				t.Errorf("seed %d: segmented result diverges for %q:\nmonolithic:\n%s\nsegmented:\n%s",
					seed, q, want, got)
			}
			pgot, err := par.Query(q)
			if err != nil {
				t.Fatalf("seed %d: segmented parallel %q: %v", seed, q, err)
			}
			if want.String() != pgot.String() {
				t.Errorf("seed %d: segmented parallel result diverges for %q", seed, q)
			}
			total++
		}
	}
	if total < 100 {
		t.Fatalf("property test ran only %d queries, want >= 100", total)
	}
}

// FuzzSegmentParity is the nightly fuzz entry: arbitrary seeds and seal
// masks must preserve graph-level parity between the segmented store and
// the monolithic database.
func FuzzSegmentParity(f *testing.F) {
	f.Add(int64(1), uint64(0))
	f.Add(int64(2), uint64(0x5555))
	f.Add(int64(3), uint64(0xffff))
	f.Add(int64(42), uint64(0x1248))
	f.Fuzz(func(t *testing.T, seed int64, sealMask uint64) {
		dir := filepath.Join(t.TempDir(), "store")
		mono, st := buildPair(t, dir, seed, func(i int) bool { return sealMask>>(uint(i)%64)&1 == 1 }, nil)
		defer st.Close()
		checkGraphParity(t, mono, st)
	})
}
