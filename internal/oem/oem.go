// Package oem implements the Object Exchange Model (paper Section 2,
// Definition 2.1): a rooted directed graph whose nodes are objects and whose
// labeled arcs are object-subobject relationships. Atomic objects carry a
// value; complex objects (value C) carry outgoing arcs. Persistence is by
// reachability from the distinguished root.
//
// A Database keeps arcs in insertion order per parent so that traversals,
// query results and serializations are deterministic.
package oem

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/symbol"
	"repro/internal/value"
)

// NodeID identifies an object within one Database. IDs are allocated
// monotonically and never reused, matching the paper's Section 2.2
// assumption that identifiers of deleted nodes do not recur.
type NodeID uint64

// InvalidNode is the zero NodeID; no object ever has it.
const InvalidNode NodeID = 0

// String renders the id in the paper's "nK" style.
func (n NodeID) String() string { return fmt.Sprintf("n%d", uint64(n)) }

// Arc is a labeled directed arc (p, l, c): c is an l-labeled subobject of p.
type Arc struct {
	Parent NodeID
	Label  string
	Child  NodeID
}

// String renders the arc as (p, l, c).
func (a Arc) String() string {
	return fmt.Sprintf("(%s, %q, %s)", a.Parent, a.Label, a.Child)
}

// Database is an OEM database: the 4-tuple (N, A, v, r) of Definition 2.1.
//
// Concurrency: read methods (including Out/In, which return live slices
// callers must not modify) are pure lookups, so a Database is safe for
// concurrent readers once built; mutators must exclude them.
type Database struct {
	values map[NodeID]value.Value
	out    map[NodeID][]Arc // insertion-ordered outgoing arcs
	in     map[NodeID][]Arc // insertion-ordered incoming arcs
	arcSet map[Arc]struct{} // membership
	root   NodeID
	nextID NodeID
}

// Common database errors.
var (
	ErrNoSuchNode  = errors.New("oem: no such node")
	ErrNodeExists  = errors.New("oem: node already exists")
	ErrNotComplex  = errors.New("oem: node is not a complex object")
	ErrHasChildren = errors.New("oem: complex node still has subobjects")
	ErrArcExists   = errors.New("oem: arc already exists")
	ErrNoSuchArc   = errors.New("oem: no such arc")
	ErrEmptyLabel  = errors.New("oem: empty arc label")
)

// New creates a database containing only a complex root object.
func New() *Database {
	db := &Database{
		values: make(map[NodeID]value.Value),
		out:    make(map[NodeID][]Arc),
		in:     make(map[NodeID][]Arc),
		arcSet: make(map[Arc]struct{}),
		nextID: 1,
	}
	db.root = db.newNode(value.Complex())
	return db
}

func (db *Database) newNode(v value.Value) NodeID {
	id := db.nextID
	db.nextID++
	db.values[id] = v
	return id
}

// Root returns the distinguished root object.
func (db *Database) Root() NodeID { return db.root }

// Has reports whether node n exists.
func (db *Database) Has(n NodeID) bool {
	_, ok := db.values[n]
	return ok
}

// Value returns the value of node n. The boolean reports existence.
func (db *Database) Value(n NodeID) (value.Value, bool) {
	v, ok := db.values[n]
	return v, ok
}

// MustValue returns the value of node n, panicking if absent; for callers
// that hold an id they obtained from this database.
func (db *Database) MustValue(n NodeID) value.Value {
	v, ok := db.values[n]
	if !ok {
		panic(fmt.Sprintf("oem: MustValue(%s): no such node", n))
	}
	return v
}

// IsComplex reports whether n exists and is a complex object.
func (db *Database) IsComplex(n NodeID) bool {
	v, ok := db.values[n]
	return ok && v.IsComplex()
}

// NumNodes returns the number of objects.
func (db *Database) NumNodes() int { return len(db.values) }

// NumArcs returns the number of arcs.
func (db *Database) NumArcs() int { return len(db.arcSet) }

// Out returns the outgoing arcs of n in insertion order.
// The returned slice must not be modified.
func (db *Database) Out(n NodeID) []Arc { return db.out[n] }

// In returns the incoming arcs of n in insertion order.
// The returned slice must not be modified.
func (db *Database) In(n NodeID) []Arc { return db.in[n] }

// OutLabeled returns the l-labeled outgoing arcs of n in insertion order.
func (db *Database) OutLabeled(n NodeID, l string) []Arc {
	var arcs []Arc
	for _, a := range db.out[n] {
		if a.Label == l {
			arcs = append(arcs, a)
		}
	}
	return arcs
}

// HasArc reports whether the arc (p, l, c) exists.
func (db *Database) HasArc(p NodeID, l string, c NodeID) bool {
	_, ok := db.arcSet[Arc{p, l, c}]
	return ok
}

// Arcs returns every arc, ordered by parent id then insertion order.
func (db *Database) Arcs() []Arc {
	parents := make([]NodeID, 0, len(db.out))
	for p := range db.out {
		if len(db.out[p]) > 0 {
			parents = append(parents, p)
		}
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	arcs := make([]Arc, 0, len(db.arcSet))
	for _, p := range parents {
		arcs = append(arcs, db.out[p]...)
	}
	return arcs
}

// Nodes returns every node id in ascending order.
func (db *Database) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(db.values))
	for id := range db.values {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CreateNode performs the paper's creNode: it allocates a fresh object with
// the given initial value (atomic, or C for complex) and returns its id.
func (db *Database) CreateNode(v value.Value) NodeID {
	return db.newNode(v)
}

// CreateNodeWithID creates an object with a caller-chosen id, which must be
// fresh. It is used when replaying histories that mention explicit ids.
func (db *Database) CreateNodeWithID(n NodeID, v value.Value) error {
	if n == InvalidNode {
		return fmt.Errorf("%w: id 0 is reserved", ErrNodeExists)
	}
	if db.Has(n) {
		return fmt.Errorf("%w: %s", ErrNodeExists, n)
	}
	db.values[n] = v
	if n >= db.nextID {
		db.nextID = n + 1
	}
	return nil
}

// UpdateNode performs the paper's updNode: it changes the value of n.
// Per Section 2.1 the node must be atomic, or complex without subobjects.
func (db *Database) UpdateNode(n NodeID, v value.Value) error {
	old, ok := db.values[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, n)
	}
	if old.IsComplex() && len(db.out[n]) > 0 {
		return fmt.Errorf("%w: %s", ErrHasChildren, n)
	}
	db.values[n] = v
	return nil
}

// AddArc performs the paper's addArc. Both endpoints must exist, the parent
// must be complex, and the arc must not already exist.
func (db *Database) AddArc(p NodeID, l string, c NodeID) error {
	if l == "" {
		return ErrEmptyLabel
	}
	// Canonicalize the label so every arc with the same label shares one
	// backing string, whatever decoder or caller produced it. Equality and
	// map keys are content-based, so callers never observe the swap.
	l = symbol.Canon(l)
	if !db.Has(p) {
		return fmt.Errorf("%w: parent %s", ErrNoSuchNode, p)
	}
	if !db.Has(c) {
		return fmt.Errorf("%w: child %s", ErrNoSuchNode, c)
	}
	if !db.IsComplex(p) {
		return fmt.Errorf("%w: %s", ErrNotComplex, p)
	}
	a := Arc{p, l, c}
	if _, ok := db.arcSet[a]; ok {
		return fmt.Errorf("%w: %s", ErrArcExists, a)
	}
	db.arcSet[a] = struct{}{}
	db.out[p] = append(db.out[p], a)
	db.in[c] = append(db.in[c], a)
	return nil
}

// RemoveArc performs the paper's remArc. The arc must exist.
func (db *Database) RemoveArc(p NodeID, l string, c NodeID) error {
	a := Arc{p, l, c}
	if _, ok := db.arcSet[a]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchArc, a)
	}
	delete(db.arcSet, a)
	db.out[p] = removeArc(db.out[p], a)
	db.in[c] = removeArc(db.in[c], a)
	return nil
}

func removeArc(arcs []Arc, a Arc) []Arc {
	for i, x := range arcs {
		if x == a {
			return append(arcs[:i:i], arcs[i+1:]...)
		}
	}
	return arcs
}

// Reachable returns the set of nodes reachable from the root.
func (db *Database) Reachable() map[NodeID]bool {
	seen := make(map[NodeID]bool, len(db.values))
	stack := []NodeID{db.root}
	seen[db.root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range db.out[n] {
			if !seen[a.Child] {
				seen[a.Child] = true
				stack = append(stack, a.Child)
			}
		}
	}
	return seen
}

// GarbageCollect deletes every node unreachable from the root, along with
// arcs among deleted nodes, and returns the ids removed (ascending). This
// implements the paper's implicit deletion by unreachability, applied at the
// end of each history step (Section 2.2).
func (db *Database) GarbageCollect() []NodeID {
	live := db.Reachable()
	var dead []NodeID
	for id := range db.values {
		if !live[id] {
			dead = append(dead, id)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, id := range dead {
		for _, a := range db.out[id] {
			delete(db.arcSet, a)
			db.in[a.Child] = removeArc(db.in[a.Child], a)
		}
		for _, a := range db.in[id] {
			delete(db.arcSet, a)
			db.out[a.Parent] = removeArc(db.out[a.Parent], a)
		}
		delete(db.out, id)
		delete(db.in, id)
		delete(db.values, id)
	}
	return dead
}

// Validate checks Definition 2.1's invariants: only complex nodes have
// outgoing arcs, arc endpoints exist, and every node is reachable from the
// root. It returns the first violation found.
func (db *Database) Validate() error {
	for a := range db.arcSet {
		if !db.Has(a.Parent) || !db.Has(a.Child) {
			return fmt.Errorf("oem: dangling arc %s", a)
		}
		if !db.IsComplex(a.Parent) {
			return fmt.Errorf("oem: atomic node %s has outgoing arc %s", a.Parent, a)
		}
	}
	live := db.Reachable()
	for id := range db.values {
		if !live[id] {
			return fmt.Errorf("oem: node %s unreachable from root", id)
		}
	}
	return nil
}

// Clone returns a deep copy of the database, preserving node ids and arc
// insertion order.
func (db *Database) Clone() *Database {
	c := &Database{
		values: make(map[NodeID]value.Value, len(db.values)),
		out:    make(map[NodeID][]Arc, len(db.out)),
		in:     make(map[NodeID][]Arc, len(db.in)),
		arcSet: make(map[Arc]struct{}, len(db.arcSet)),
		root:   db.root,
		nextID: db.nextID,
	}
	for id, v := range db.values {
		c.values[id] = v
	}
	for id, arcs := range db.out {
		if len(arcs) > 0 {
			c.out[id] = append([]Arc(nil), arcs...)
		}
	}
	for id, arcs := range db.in {
		if len(arcs) > 0 {
			c.in[id] = append([]Arc(nil), arcs...)
		}
	}
	for a := range db.arcSet {
		c.arcSet[a] = struct{}{}
	}
	return c
}

// Equal reports whether two databases are identical: same root, same node
// set with equal values, and same arc set. Arc order is not significant.
func (db *Database) Equal(other *Database) bool {
	if db.root != other.root || len(db.values) != len(other.values) || len(db.arcSet) != len(other.arcSet) {
		return false
	}
	for id, v := range db.values {
		ov, ok := other.values[id]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	for a := range db.arcSet {
		if _, ok := other.arcSet[a]; !ok {
			return false
		}
	}
	return true
}

// String renders a deterministic multi-line listing, useful in tests.
func (db *Database) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oem root=%s nodes=%d arcs=%d\n", db.root, db.NumNodes(), db.NumArcs())
	for _, id := range db.Nodes() {
		fmt.Fprintf(&b, "  %s = %s\n", id, db.values[id])
		for _, a := range db.out[id] {
			fmt.Fprintf(&b, "    .%s -> %s\n", a.Label, a.Child)
		}
	}
	return b.String()
}
