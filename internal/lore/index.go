package lore

import (
	"sort"

	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// LabelIndex maps arc labels to the arcs bearing them, over one OEM
// database. It accelerates label-rooted scans.
type LabelIndex struct {
	byLabel map[string][]oem.Arc
}

// BuildLabelIndex indexes every arc of db by label.
func BuildLabelIndex(db *oem.Database) *LabelIndex {
	ix := &LabelIndex{byLabel: make(map[string][]oem.Arc)}
	for _, a := range db.Arcs() {
		ix.byLabel[a.Label] = append(ix.byLabel[a.Label], a)
	}
	return ix
}

// Arcs returns the arcs labeled l.
func (ix *LabelIndex) Arcs(l string) []oem.Arc { return ix.byLabel[l] }

// Labels returns the distinct labels, sorted.
func (ix *LabelIndex) Labels() []string {
	ls := make([]string, 0, len(ix.byLabel))
	for l := range ix.byLabel {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// ValueIndex maps atomic values (by their canonical rendering) to nodes.
type ValueIndex struct {
	byValue map[string][]oem.NodeID
}

// BuildValueIndex indexes every atomic node of db by value.
func BuildValueIndex(db *oem.Database) *ValueIndex {
	ix := &ValueIndex{byValue: make(map[string][]oem.NodeID)}
	for _, id := range db.Nodes() {
		v := db.MustValue(id)
		if v.IsAtomic() {
			k := v.String()
			ix.byValue[k] = append(ix.byValue[k], id)
		}
	}
	return ix
}

// Nodes returns the atomic nodes holding exactly v.
func (ix *ValueIndex) Nodes(v value.Value) []oem.NodeID { return ix.byValue[v.String()] }

// AnnotationIndex supports time-range lookups over the annotations of a
// DOEM database — the index structure the paper sketches in Section 7
// ("designing indexes on annotations (based on their types and
// timestamps)"). Entries are sorted by timestamp for binary-searched range
// scans.
type AnnotationIndex struct {
	cre []nodeEntry
	upd []nodeEntry
	add []arcEntry
	rem []arcEntry
}

type nodeEntry struct {
	at   timestamp.Time
	node oem.NodeID
}

type arcEntry struct {
	at  timestamp.Time
	arc oem.Arc
}

// BuildAnnotationIndex scans every annotation in d.
func BuildAnnotationIndex(d *doem.Database) *AnnotationIndex {
	ix := &AnnotationIndex{}
	seen := make(map[oem.NodeID]bool)
	var visit func(n oem.NodeID)
	visit = func(n oem.NodeID) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, ann := range d.NodeAnnots(n) {
			switch ann.Kind {
			case doem.AnnotCre:
				ix.cre = append(ix.cre, nodeEntry{ann.At, n})
			case doem.AnnotUpd:
				ix.upd = append(ix.upd, nodeEntry{ann.At, n})
			}
		}
		for _, arc := range d.OutAll(n) {
			for _, ann := range d.ArcAnnots(arc) {
				switch ann.Kind {
				case doem.AnnotAdd:
					ix.add = append(ix.add, arcEntry{ann.At, arc})
				case doem.AnnotRem:
					ix.rem = append(ix.rem, arcEntry{ann.At, arc})
				}
			}
			visit(arc.Child)
		}
	}
	visit(d.Root())
	sortNodeEntries(ix.cre)
	sortNodeEntries(ix.upd)
	sortArcEntries(ix.add)
	sortArcEntries(ix.rem)
	return ix
}

func sortNodeEntries(es []nodeEntry) {
	sort.SliceStable(es, func(i, j int) bool { return es[i].at.Before(es[j].at) })
}

func sortArcEntries(es []arcEntry) {
	sort.SliceStable(es, func(i, j int) bool { return es[i].at.Before(es[j].at) })
}

// CreatedIn returns nodes with cre annotations in (from, to], the shape of
// a QSS filter predicate "T > t[-1]".
func (ix *AnnotationIndex) CreatedIn(from, to timestamp.Time) []oem.NodeID {
	return nodeRange(ix.cre, from, to)
}

// UpdatedIn returns nodes with upd annotations in (from, to].
func (ix *AnnotationIndex) UpdatedIn(from, to timestamp.Time) []oem.NodeID {
	return nodeRange(ix.upd, from, to)
}

// AddedIn returns arcs with add annotations in (from, to].
func (ix *AnnotationIndex) AddedIn(from, to timestamp.Time) []oem.Arc {
	return arcRange(ix.add, from, to)
}

// RemovedIn returns arcs with rem annotations in (from, to].
func (ix *AnnotationIndex) RemovedIn(from, to timestamp.Time) []oem.Arc {
	return arcRange(ix.rem, from, to)
}

func nodeRange(es []nodeEntry, from, to timestamp.Time) []oem.NodeID {
	lo := sort.Search(len(es), func(i int) bool { return es[i].at.After(from) })
	var out []oem.NodeID
	for i := lo; i < len(es) && !es[i].at.After(to); i++ {
		out = append(out, es[i].node)
	}
	return out
}

func arcRange(es []arcEntry, from, to timestamp.Time) []oem.Arc {
	lo := sort.Search(len(es), func(i int) bool { return es[i].at.After(from) })
	var out []oem.Arc
	for i := lo; i < len(es) && !es[i].at.After(to); i++ {
		out = append(out, es[i].arc)
	}
	return out
}

// Size returns the total number of indexed annotations.
func (ix *AnnotationIndex) Size() int {
	return len(ix.cre) + len(ix.upd) + len(ix.add) + len(ix.rem)
}
