package timestamp

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParsePaperStyle(t *testing.T) {
	tests := []struct {
		in   string
		want string // canonical String()
	}{
		{"1Jan97", "1Jan97"},
		{"4Jan97", "4Jan97"},
		{"8Jan97", "8Jan97"},
		{"30Dec96", "30Dec96"},
		{"1Jan97 11:30pm", "1Jan97 23:30"},
		{"1997-01-01", "1Jan97"},
		{"1997-01-05 10:30:00", "5Jan97 10:30"},
		{"Jan 5, 1997", "5Jan97"},
		{"-inf", "-inf"},
		{"+inf", "+inf"},
		{"inf", "+inf"},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tt.in, got.String(), tt.want)
		}
	}
}

func TestParseTwoDigitYear(t *testing.T) {
	// POSIX-style pivot: 69..99 -> 19xx, 00..68 -> 20xx.
	got := MustParse("1Jan97")
	if y := got.Go().Year(); y != 1997 {
		t.Errorf("1Jan97 parsed to year %d, want 1997", y)
	}
	got = MustParse("1Jan05")
	if y := got.Go().Year(); y != 2005 {
		t.Errorf("1Jan05 parsed to year %d, want 2005", y)
	}
}

func TestParseUnixSecond(t *testing.T) {
	got, err := Parse("852076800")
	if err != nil {
		t.Fatal(err)
	}
	if got.Unix() != 852076800 {
		t.Errorf("Unix = %d, want 852076800", got.Unix())
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("not a time"); err == nil {
		t.Error("Parse of garbage succeeded, want error")
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse of empty string succeeded, want error")
	}
}

func TestOrdering(t *testing.T) {
	t1 := MustParse("1Jan97")
	t2 := MustParse("5Jan97")
	t3 := MustParse("8Jan97")
	if !t1.Before(t2) || !t2.Before(t3) {
		t.Error("paper timestamps not in order")
	}
	if !NegInf.Before(t1) || !t3.Before(PosInf) {
		t.Error("infinities not ordered around finite instants")
	}
	if !NegInf.Before(PosInf) {
		t.Error("-inf not before +inf")
	}
	if NegInf.Compare(NegInf) != 0 || PosInf.Compare(PosInf) != 0 {
		t.Error("infinity not equal to itself")
	}
	if !t2.After(t1) || !t2.Equal(t2) {
		t.Error("After/Equal inconsistent")
	}
}

func TestAddSub(t *testing.T) {
	t1 := MustParse("1Jan97")
	t2 := t1.Add(4 * 24 * time.Hour)
	if t2.String() != "5Jan97" {
		t.Errorf("1Jan97 + 4d = %s, want 5Jan97", t2)
	}
	if d := t2.Sub(t1); d != 4*24*time.Hour {
		t.Errorf("Sub = %v, want 96h", d)
	}
	if !NegInf.Add(time.Hour).Equal(NegInf) {
		t.Error("adding to -inf should stay -inf")
	}
}

func TestInfinitePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Unix": func() { NegInf.Unix() },
		"Go":   func() { PosInf.Go() },
		"Sub":  func() { PosInf.Sub(NegInf) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on infinite Time did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMinMax(t *testing.T) {
	a, b := MustParse("1Jan97"), MustParse("5Jan97")
	if !Min(a, b).Equal(a) || !Max(a, b).Equal(b) {
		t.Error("Min/Max wrong")
	}
	if !Min(NegInf, a).Equal(NegInf) || !Max(a, PosInf).Equal(PosInf) {
		t.Error("Min/Max with infinities wrong")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	// Property: Compare is antisymmetric and transitive over arbitrary instants.
	mk := func(sec int64, infSel uint8) Time {
		switch infSel % 5 {
		case 0:
			return NegInf
		case 1:
			return PosInf
		default:
			return FromUnix(sec % 1e6)
		}
	}
	anti := func(s1 int64, i1 uint8, s2 int64, i2 uint8) bool {
		a, b := mk(s1, i1), mk(s2, i2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	trans := func(s1 int64, i1 uint8, s2 int64, i2 uint8, s3 int64, i3 uint8) bool {
		a, b, c := mk(s1, i1), mk(s2, i2), mk(s3, i3)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	// Property: String() of a second-resolution instant reparses to the same instant.
	rt := func(sec uint32) bool {
		// Stay within the two-digit-year pivot window (1969..2068) that the
		// compact "2Jan06" rendering can represent unambiguously.
		orig := FromUnix(int64(sec) % 3_000_000_000)
		back, err := Parse(orig.String())
		return err == nil && back.Equal(orig)
	}
	if err := quick.Check(rt, nil); err != nil {
		t.Error(err)
	}
	for _, inf := range []Time{NegInf, PosInf} {
		back, err := Parse(inf.String())
		if err != nil || !back.Equal(inf) {
			t.Errorf("round trip of %s failed", inf)
		}
	}
}
