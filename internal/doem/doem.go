// Package doem implements DOEM (Delta-OEM), the paper's change
// representation model (Section 3). A DOEM database is an OEM graph whose
// nodes and arcs carry annotations encoding the complete history of basic
// change operations:
//
//	cre(t)      node created at t
//	upd(t, ov)  node value updated at t; ov is the old value
//	add(t)      arc added at t
//	rem(t)      arc removed at t
//
// Removed arcs are never physically deleted — they simply carry a rem
// annotation — so a DOEM database faithfully stores the original snapshot,
// every intermediate snapshot, and the encoded history (Section 3.2).
package doem

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/symbol"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// AnnotKind distinguishes the four annotation forms.
type AnnotKind uint8

// The annotation kinds.
const (
	AnnotCre AnnotKind = iota
	AnnotUpd
	AnnotAdd
	AnnotRem
)

// String returns the paper's keyword for the kind.
func (k AnnotKind) String() string {
	switch k {
	case AnnotCre:
		return "cre"
	case AnnotUpd:
		return "upd"
	case AnnotAdd:
		return "add"
	case AnnotRem:
		return "rem"
	default:
		return fmt.Sprintf("AnnotKind(%d)", uint8(k))
	}
}

// NodeAnnot is a cre or upd annotation on a node.
type NodeAnnot struct {
	Kind AnnotKind // AnnotCre or AnnotUpd
	At   timestamp.Time
	Old  value.Value // old value; meaningful only for AnnotUpd
}

// String renders the annotation in the paper's notation.
func (a NodeAnnot) String() string {
	if a.Kind == AnnotUpd {
		return fmt.Sprintf("upd(%s, %s)", a.At, a.Old)
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.At)
}

// ArcAnnot is an add or rem annotation on an arc.
type ArcAnnot struct {
	Kind AnnotKind // AnnotAdd or AnnotRem
	At   timestamp.Time
}

// String renders the annotation in the paper's notation.
func (a ArcAnnot) String() string { return fmt.Sprintf("%s(%s)", a.Kind, a.At) }

// UpdInfo is one upd annotation together with the implicitly represented new
// value (paper Section 4.2: the new value is the old value of the next upd
// annotation, or the current value if none follows).
type UpdInfo struct {
	At  timestamp.Time
	Old value.Value
	New value.Value
}

// ArcEvent is one add or rem annotation on an l-labeled arc, paired with the
// arc's target; the shape returned by the paper's addFun/remFun.
type ArcEvent struct {
	At    timestamp.Time
	Child oem.NodeID
}

// Database is a DOEM database: the triple (O, f_N, f_A) of Definition 3.1.
//
// Internally it maintains the *current snapshot* as a live OEM database
// (so unannotated Chorel steps and polling reads are cheap) plus the full
// arc relation including removed arcs, the annotation maps, and the values
// of nodes that have been deleted from the current snapshot.
//
// Concurrency: read methods are pure lookups with no interior mutation, so
// a Database is safe for any number of concurrent readers once built.
// Apply and Truncate mutate in place and must exclude readers (see
// lore.Store.ViewDOEM for the coordinated path).
type Database struct {
	current *oem.Database
	// outAll holds every arc ever present, per parent, in insertion order.
	outAll map[oem.NodeID][]oem.Arc
	// dead marks arcs in outAll that are absent from the current snapshot.
	dead map[oem.Arc]bool
	// deletedValues holds the final value of nodes removed from the current
	// snapshot by unreachability.
	deletedValues map[oem.NodeID]value.Value
	nodeAnn       map[oem.NodeID][]NodeAnnot
	arcAnn        map[oem.Arc][]ArcAnnot
	// steps records the timestamps of applied change sets, ascending.
	steps []timestamp.Time
	// version counts successful Apply calls; secondary indexes compare it
	// against the generation they were built at to detect staleness.
	version uint64
}

// Version returns a counter that advances on every successful Apply.
// Readers holding the database's read lock (see lore.Store.ViewDOEM) see a
// stable value; derived structures such as internal/index use it as the
// graph generation of their cache keys.
func (d *Database) Version() uint64 { return d.version }

// Errors returned by Apply.
var (
	ErrStaleTimestamp = errors.New("doem: timestamp not after last applied step")
	ErrDeletedNode    = errors.New("doem: operation references a deleted node")
	ErrReusedID       = errors.New("doem: node id of a deleted object reused")
)

// New returns a DOEM database over a copy of the given OEM snapshot with
// empty annotation sets — the D_0 of Section 3.1. The snapshot's node ids
// are preserved.
func New(o *oem.Database) *Database {
	cur := o.Clone()
	d := &Database{
		current:       cur,
		outAll:        make(map[oem.NodeID][]oem.Arc),
		dead:          make(map[oem.Arc]bool),
		deletedValues: make(map[oem.NodeID]value.Value),
		nodeAnn:       make(map[oem.NodeID][]NodeAnnot),
		arcAnn:        make(map[oem.Arc][]ArcAnnot),
	}
	for _, id := range cur.Nodes() {
		if arcs := cur.Out(id); len(arcs) > 0 {
			d.outAll[id] = append([]oem.Arc(nil), arcs...)
		}
	}
	return d
}

// FromHistory constructs D(O, H) per Section 3.1: it starts from O with
// empty annotations and applies every step of h, annotating as it goes.
// O itself is not modified.
func FromHistory(o *oem.Database, h change.History) (*Database, error) {
	if err := h.Validate(o); err != nil {
		return nil, err
	}
	d := New(o)
	for _, step := range h {
		if err := d.Apply(step.At, step.Ops); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Root returns the root object id.
func (d *Database) Root() oem.NodeID { return d.current.Root() }

// Current returns the current snapshot. The returned database is live —
// callers must not modify it; use Apply.
func (d *Database) Current() *oem.Database { return d.current }

// LastStep returns the timestamp of the most recently applied step, or
// timestamp.NegInf if none.
func (d *Database) LastStep() timestamp.Time {
	if len(d.steps) == 0 {
		return timestamp.NegInf
	}
	return d.steps[len(d.steps)-1]
}

// Steps returns the timestamps of all applied steps, ascending.
func (d *Database) Steps() []timestamp.Time {
	return append([]timestamp.Time(nil), d.steps...)
}

// Has reports whether node n exists anywhere in the DOEM graph (including
// nodes deleted from the current snapshot).
func (d *Database) Has(n oem.NodeID) bool {
	if d.current.Has(n) {
		return true
	}
	_, ok := d.deletedValues[n]
	return ok
}

// Value returns the current (final) value of n, looking through to deleted
// nodes.
func (d *Database) Value(n oem.NodeID) (value.Value, bool) {
	if v, ok := d.current.Value(n); ok {
		return v, ok
	}
	v, ok := d.deletedValues[n]
	return v, ok
}

// Out returns the arcs of n in the current snapshot.
func (d *Database) Out(n oem.NodeID) []oem.Arc { return d.current.Out(n) }

// OutAll returns every arc ever attached to n, including removed arcs,
// in insertion order. The slice must not be modified.
func (d *Database) OutAll(n oem.NodeID) []oem.Arc { return d.outAll[n] }

// IsDead reports whether arc a is absent from the current snapshot.
func (d *Database) IsDead(a oem.Arc) bool { return d.dead[a] }

// NodeAnnots returns the annotations on node n in timestamp order.
func (d *Database) NodeAnnots(n oem.NodeID) []NodeAnnot { return d.nodeAnn[n] }

// ArcAnnots returns the annotations on arc a in timestamp order.
func (d *Database) ArcAnnots(a oem.Arc) []ArcAnnot { return d.arcAnn[a] }

// CreTime implements the paper's creFun: the creation timestamp of n, if n
// carries a cre annotation.
func (d *Database) CreTime(n oem.NodeID) (timestamp.Time, bool) {
	for _, a := range d.nodeAnn[n] {
		if a.Kind == AnnotCre {
			return a.At, true
		}
	}
	return timestamp.Time{}, false
}

// UpdTriples implements the paper's updFun: the (time, old, new) triples of
// n's upd annotations, in timestamp order.
func (d *Database) UpdTriples(n oem.NodeID) []UpdInfo {
	anns := d.nodeAnn[n]
	var ups []UpdInfo
	for _, a := range anns {
		if a.Kind == AnnotUpd {
			ups = append(ups, UpdInfo{At: a.At, Old: a.Old})
		}
	}
	// The new value of each update is the old value of the next one; the
	// final update's new value is the node's current value.
	for i := range ups {
		if i+1 < len(ups) {
			ups[i].New = ups[i+1].Old
		} else if v, ok := d.Value(n); ok {
			ups[i].New = v
		}
	}
	return ups
}

// AddEvents implements the paper's addFun(n, l): (t, c) pairs such that the
// arc (n, l, c) carries an add(t) annotation.
func (d *Database) AddEvents(n oem.NodeID, label string) []ArcEvent {
	return d.arcEvents(n, label, AnnotAdd)
}

// RemEvents implements the paper's remFun(n, l).
func (d *Database) RemEvents(n oem.NodeID, label string) []ArcEvent {
	return d.arcEvents(n, label, AnnotRem)
}

func (d *Database) arcEvents(n oem.NodeID, label string, kind AnnotKind) []ArcEvent {
	var evs []ArcEvent
	for _, arc := range d.outAll[n] {
		if arc.Label != label {
			continue
		}
		for _, a := range d.arcAnn[arc] {
			if a.Kind == kind {
				evs = append(evs, ArcEvent{At: a.At, Child: arc.Child})
			}
		}
	}
	return evs
}

// Apply incorporates one history step (t, ops) into the DOEM database:
// it applies the operations to the current snapshot and attaches the
// corresponding annotations (Section 3.1). The timestamp must be finite and
// strictly after the last applied step, and the operations must not touch
// deleted nodes or reuse their ids.
func (d *Database) Apply(t timestamp.Time, ops change.Set) error {
	if !t.IsFinite() {
		return fmt.Errorf("%w: %s", ErrStaleTimestamp, t)
	}
	if t.Compare(d.LastStep()) <= 0 {
		return fmt.Errorf("%w: %s <= %s", ErrStaleTimestamp, t, d.LastStep())
	}
	// Deleted-node discipline (paper Section 2.2).
	for _, op := range ops {
		switch o := op.(type) {
		case change.CreNode:
			if _, dead := d.deletedValues[o.Node]; dead {
				return fmt.Errorf("%w: %s", ErrReusedID, o.Node)
			}
		case change.UpdNode:
			if _, dead := d.deletedValues[o.Node]; dead {
				return fmt.Errorf("%w: %s", ErrDeletedNode, op)
			}
		case change.AddArc:
			if d.isDeleted(o.Parent) || d.isDeleted(o.Child) {
				return fmt.Errorf("%w: %s", ErrDeletedNode, op)
			}
		case change.RemArc:
			if d.isDeleted(o.Parent) || d.isDeleted(o.Child) {
				return fmt.Errorf("%w: %s", ErrDeletedNode, op)
			}
		}
	}
	if err := ops.Validate(d.current); err != nil {
		return err
	}
	// Record old values for upd annotations before mutating. Validate has
	// ruled out cre+upd of one node in a single set, so every updated
	// node already exists in the pre-step snapshot; together with the
	// canonical application order below this makes the attached
	// annotations independent of the set's input order (Def. 2.2 — see
	// TestApplyOrderIndependence).
	oldValues := make(map[oem.NodeID]value.Value)
	for _, op := range ops {
		if u, ok := op.(change.UpdNode); ok {
			v, _ := d.current.Value(u.Node)
			oldValues[u.Node] = v
		}
	}
	// Apply in canonical order, attaching annotations as the paper's
	// construction does. Validate has already established that every
	// operation will succeed.
	for _, op := range ops.Canonical() {
		if err := op.Apply(d.current); err != nil {
			// Unreachable given the Validate above; fail loudly if the
			// invariant is ever broken.
			panic(fmt.Sprintf("doem: validated op failed: %s: %v", op, err))
		}
		switch o := op.(type) {
		case change.CreNode:
			d.nodeAnn[o.Node] = append(d.nodeAnn[o.Node], NodeAnnot{Kind: AnnotCre, At: t})
		case change.UpdNode:
			d.nodeAnn[o.Node] = append(d.nodeAnn[o.Node], NodeAnnot{Kind: AnnotUpd, At: t, Old: oldValues[o.Node]})
		case change.AddArc:
			// Canonicalize labels so the full-arc relation, the annotation
			// maps and the current snapshot (whose AddArc canonicalizes the
			// same way) all share one backing string per distinct label.
			arc := oem.Arc{Parent: o.Parent, Label: symbol.Canon(o.Label), Child: o.Child}
			if d.dead[arc] {
				delete(d.dead, arc) // re-added after a removal
			} else if !d.inOutAll(arc) {
				d.outAll[o.Parent] = append(d.outAll[o.Parent], arc)
			}
			d.arcAnn[arc] = append(d.arcAnn[arc], ArcAnnot{Kind: AnnotAdd, At: t})
		case change.RemArc:
			arc := oem.Arc{Parent: o.Parent, Label: symbol.Canon(o.Label), Child: o.Child}
			d.dead[arc] = true
			d.arcAnn[arc] = append(d.arcAnn[arc], ArcAnnot{Kind: AnnotRem, At: t})
		}
	}
	// Nodes that became unreachable are deleted from the current snapshot
	// (paper Section 2.2) but remain in the DOEM graph, still reachable
	// through rem-annotated arcs; capture their final values before the
	// collection drops them. The reachability walk is skipped when the
	// step cannot have orphaned anything.
	if ops.NeedsCollection(d.current) {
		live := d.current.Reachable()
		for _, id := range d.current.Nodes() {
			if !live[id] {
				d.deletedValues[id] = d.current.MustValue(id)
			}
		}
		d.current.GarbageCollect()
	}
	d.steps = append(d.steps, t)
	d.version++
	return nil
}

func (d *Database) isDeleted(n oem.NodeID) bool {
	_, dead := d.deletedValues[n]
	return dead
}

func (d *Database) inOutAll(a oem.Arc) bool {
	for _, x := range d.outAll[a.Parent] {
		if x == a {
			return true
		}
	}
	return false
}

// SnapshotAt materializes O_t(D), the snapshot at time t (Section 3.2).
// Node ids are preserved; nodes unreachable at t are absent. SnapshotAt
// with t = timestamp.NegInf yields the original snapshot O_0(D).
func (d *Database) SnapshotAt(t timestamp.Time) *oem.Database {
	out := oem.New()
	if out.Root() != d.Root() {
		panic("doem: root id mismatch in snapshot materialization")
	}
	// Create every node ever, with its value at time t.
	ids := d.AllNodeIDs()
	for _, id := range ids {
		if id == d.Root() {
			continue
		}
		if err := out.CreateNodeWithID(id, d.ValueAt(id, t)); err != nil {
			panic(fmt.Sprintf("doem: snapshot node %s: %v", id, err))
		}
	}
	// Add arcs live at time t.
	for _, id := range ids {
		for _, arc := range d.outAll[id] {
			if d.ArcLiveAt(arc, t) {
				if err := out.AddArc(arc.Parent, arc.Label, arc.Child); err != nil {
					panic(fmt.Sprintf("doem: snapshot arc %s: %v", arc, err))
				}
			}
		}
	}
	out.GarbageCollect()
	return out
}

// Original returns O_0(D), the snapshot before the first recorded change.
func (d *Database) Original() *oem.Database { return d.SnapshotAt(timestamp.NegInf) }

// AllNodeIDs returns the ids of every node ever present in the database —
// current nodes plus nodes deleted by unreachability — in ascending order.
func (d *Database) AllNodeIDs() []oem.NodeID {
	seen := make(map[oem.NodeID]bool)
	var ids []oem.NodeID
	for _, id := range d.current.Nodes() {
		seen[id] = true
		ids = append(ids, id)
	}
	for id := range d.deletedValues {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ValueAt returns the value of node n at time t per the paper's rule:
// if the latest upd annotation is at or before t (or there are none), the
// current value; otherwise the old value of the earliest upd after t.
func (d *Database) ValueAt(n oem.NodeID, t timestamp.Time) value.Value {
	cur, _ := d.Value(n)
	var ups []NodeAnnot
	for _, a := range d.nodeAnn[n] {
		if a.Kind == AnnotUpd {
			ups = append(ups, a)
		}
	}
	if len(ups) == 0 || !ups[len(ups)-1].At.After(t) {
		return cur
	}
	for _, a := range ups {
		if a.At.After(t) {
			return a.Old
		}
	}
	return cur
}

// ArcLiveAt reports whether arc a existed at time t. An arc existed in O_0
// iff it carries no annotations or its earliest annotation is rem; add/rem
// annotations with timestamps <= t then toggle its existence.
func (d *Database) ArcLiveAt(a oem.Arc, t timestamp.Time) bool {
	anns := d.arcAnn[a]
	live := len(anns) == 0 || anns[0].Kind == AnnotRem
	for _, ann := range anns {
		if ann.At.After(t) {
			break
		}
		live = ann.Kind == AnnotAdd
	}
	return live
}

// ExtractHistory recovers the encoded history H(D) per Section 3.2: one
// step per distinct annotation timestamp, containing the corresponding
// basic change operations.
func (d *Database) ExtractHistory() change.History {
	byTime := make(map[timestamp.Time]*change.Set)
	var times []timestamp.Time
	stepFor := func(t timestamp.Time) *change.Set {
		if s, ok := byTime[t]; ok {
			return s
		}
		s := &change.Set{}
		byTime[t] = s
		times = append(times, t)
		return s
	}
	for _, id := range d.AllNodeIDs() {
		anns := d.nodeAnn[id]
		ups := d.UpdTriples(id)
		upIdx := 0
		for _, a := range anns {
			switch a.Kind {
			case AnnotCre:
				// The created value is the node's value just after creation:
				// the old value of the first upd, or the current value.
				v := d.ValueAt(id, a.At)
				s := stepFor(a.At)
				*s = append(*s, change.CreNode{Node: id, Value: v})
			case AnnotUpd:
				s := stepFor(a.At)
				*s = append(*s, change.UpdNode{Node: id, Value: ups[upIdx].New})
				upIdx++
			}
		}
	}
	for _, id := range d.AllNodeIDs() {
		for _, arc := range d.outAll[id] {
			for _, a := range d.arcAnn[arc] {
				s := stepFor(a.At)
				switch a.Kind {
				case AnnotAdd:
					*s = append(*s, change.AddArc{Parent: arc.Parent, Label: arc.Label, Child: arc.Child})
				case AnnotRem:
					*s = append(*s, change.RemArc{Parent: arc.Parent, Label: arc.Label, Child: arc.Child})
				}
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	h := make(change.History, 0, len(times))
	for _, t := range times {
		h = append(h, change.Step{At: t, Ops: *byTime[t]})
	}
	return h
}

// Truncate returns a new DOEM database whose history up to and including t
// is collapsed into the base snapshot: the snapshot at t becomes the new
// O_0 and only annotations after t survive. Node ids are preserved. This is
// the paper's Section 6.1 space-for-accuracy trade ("storing a smaller
// state at the expense of not being able to detect all changes"):
// queries about instants at or before t see the collapsed state.
func (d *Database) Truncate(t timestamp.Time) (*Database, error) {
	base := d.SnapshotAt(t)
	var h change.History
	for _, step := range d.ExtractHistory() {
		if step.At.After(t) {
			h = append(h, step)
		}
	}
	return FromHistory(base, h)
}

// Feasible reports whether D = D(O_0(D), H(D)) — i.e. whether this DOEM
// database is one that some OEM database and valid history produce
// (Section 3.2).
func (d *Database) Feasible() bool {
	o0 := d.Original()
	h := d.ExtractHistory()
	rebuilt, err := FromHistory(o0, h)
	if err != nil {
		return false
	}
	return d.Equal(rebuilt)
}

// Equal reports whether two DOEM databases are identical: equal current
// snapshots, equal full arc relations with equal annotation sequences, and
// equal node annotation sequences.
func (d *Database) Equal(other *Database) bool {
	if !d.current.Equal(other.current) {
		return false
	}
	if len(d.nodeAnn) != len(other.nodeAnn) || len(d.arcAnn) != len(other.arcAnn) || len(d.dead) != len(other.dead) {
		return false
	}
	for n, anns := range d.nodeAnn {
		o := other.nodeAnn[n]
		if len(o) != len(anns) {
			return false
		}
		for i := range anns {
			if anns[i].Kind != o[i].Kind || !anns[i].At.Equal(o[i].At) || !anns[i].Old.Equal(o[i].Old) {
				return false
			}
		}
	}
	for a, anns := range d.arcAnn {
		o := other.arcAnn[a]
		if len(o) != len(anns) {
			return false
		}
		for i := range anns {
			if anns[i] != o[i] {
				return false
			}
		}
	}
	for a := range d.dead {
		if !other.dead[a] {
			return false
		}
	}
	for n, v := range d.deletedValues {
		ov, ok := other.deletedValues[n]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return len(d.deletedValues) == len(other.deletedValues)
}

// MaxID returns the largest node id ever used in the database (including
// nodes deleted from the current snapshot). Id allocators for change
// scripts must stay above it, since ids are never reused.
func (d *Database) MaxID() oem.NodeID {
	var m oem.NodeID
	for _, id := range d.current.Nodes() {
		if id > m {
			m = id
		}
	}
	for id := range d.deletedValues {
		if id > m {
			m = id
		}
	}
	return m
}

// NumAnnotations returns the total count of node and arc annotations.
func (d *Database) NumAnnotations() int {
	n := 0
	for _, a := range d.nodeAnn {
		n += len(a)
	}
	for _, a := range d.arcAnn {
		n += len(a)
	}
	return n
}

// String renders a deterministic listing with annotations, in the spirit of
// Figure 4.
func (d *Database) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "doem root=%s steps=%d annotations=%d\n", d.Root(), len(d.steps), d.NumAnnotations())
	for _, id := range d.AllNodeIDs() {
		v, _ := d.Value(id)
		fmt.Fprintf(&b, "  %s = %s", id, v)
		for _, a := range d.nodeAnn[id] {
			fmt.Fprintf(&b, " [%s]", a)
		}
		if d.isDeleted(id) {
			b.WriteString(" (deleted)")
		}
		b.WriteString("\n")
		for _, arc := range d.outAll[id] {
			fmt.Fprintf(&b, "    .%s -> %s", arc.Label, arc.Child)
			for _, a := range d.arcAnn[arc] {
				fmt.Fprintf(&b, " [%s]", a)
			}
			if d.dead[arc] {
				b.WriteString(" (removed)")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
