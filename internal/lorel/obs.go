package lorel

import "repro/internal/obs"

// Engine metrics (see docs/observability.md). All collection is behind
// the obs global gate: with observability disabled each counter costs
// one atomic load per query, not per tuple — the per-tuple stats are
// plain fields on the evaluation and are flushed once at the end.
var (
	mQueries     = obs.NewCounter("lorel_queries_total")
	mQueryErrors = obs.NewCounter("lorel_query_errors_total")
	mQueryNs     = obs.NewHistogram("lorel_query_ns")
	mCacheHits   = obs.NewCounter("lorel_parse_cache_hits_total")
	mCacheMisses = obs.NewCounter("lorel_parse_cache_misses_total")
	mBindings    = obs.NewCounter("lorel_bindings_total")
	mDedupHits   = obs.NewCounter("lorel_dedup_hits_total")
	mParallel    = obs.NewCounter("lorel_parallel_queries_total")
)
