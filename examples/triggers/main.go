// ECA triggers over a change-managed database — the paper's Section 7
// future-work item, built on DOEM and Chorel: trigger events and conditions
// are one Chorel query scoped to the latest history step; actions are Go
// callbacks that may cascade further changes.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/guidegen"
)

func main() {
	db, ids := guidegen.PaperGuide()
	mgr := repro.NewTriggerManager("guide", repro.NewDOEM(db))

	// Rule 1: complain when any price rises above 15.
	err := mgr.Add(repro.Trigger{
		Name: "price-alarm",
		Query: `select N, OV, NV from guide.restaurant R, R.name N,
			R.price<upd at T from OV to NV> where T > t[-1] and NV > 15`,
		Action: func(f repro.Firing) error {
			for _, row := range f.Result.Rows {
				n, _ := row.Cell("name")
				ov, _ := row.Cell("old-value")
				nv, _ := row.Cell("new-value")
				nval, _ := n.Value()
				oval, _ := ov.Value()
				nvval, _ := nv.Value()
				fmt.Printf("[price-alarm @ %s] %s went from %s to %s\n",
					f.At, nval.Display(), oval.Display(), nvval.Display())
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Rule 2: stamp every new restaurant "unreviewed" (a cascading action),
	// and Rule 3: report the stamp (fires on the cascaded change).
	next := repro.NodeID(1000)
	err = mgr.Add(repro.Trigger{
		Name:  "stamp-new",
		Query: `select R from guide.<add at T>restaurant R where T > t[-1]`,
		Action: func(f repro.Firing) error {
			for _, id := range f.Result.FirstColumnNodes() {
				next++
				mgr.Queue(repro.ChangeSet{
					repro.CreNode{Node: next, Value: repro.Str("unreviewed")},
					repro.AddArc{Parent: id, Label: "status", Child: next},
				})
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	err = mgr.Add(repro.Trigger{
		Name:  "report-stamp",
		Query: `select S from guide.restaurant.<add at T>status S where T > t[-1]`,
		Action: func(f repro.Firing) error {
			fmt.Printf("[report-stamp @ %s] %d restaurant(s) stamped (cascade depth %d)\n",
				f.At, f.Result.Len(), f.Depth)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive the paper's history through the trigger manager.
	fmt.Println("applying the paper's January 1997 history with triggers armed…")
	for _, step := range guidegen.PaperHistory(ids) {
		if err := mgr.Apply(step.At, step.Ops); err != nil {
			log.Fatal(err)
		}
	}

	// The cascaded stamp is part of the recorded history.
	eng := repro.NewEngine()
	eng.Register("guide", mgr.DOEM())
	out, err := eng.Query(`select N, S from guide.restaurant R, R.name N, R.status S`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrestaurants with status stamps:")
	fmt.Print(out)
}
