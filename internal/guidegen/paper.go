// Package guidegen builds restaurant-guide data: the paper's exact running
// example (Figures 2-4) and deterministic synthetic guides of arbitrary
// size with evolution histories, used by examples, benchmarks and QSS
// simulations.
package guidegen

import (
	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// PaperIDs names the nodes of the paper's running example using the paper's
// own identifiers where it assigns them (n1..n7 in Examples 2.2-2.3).
type PaperIDs struct {
	Guide   oem.NodeID // n4: the root
	Bangkok oem.NodeID // the "Bangkok Cuisine" restaurant object
	Price   oem.NodeID // n1: Bangkok Cuisine's price object
	Janta   oem.NodeID // n6: the "Janta" restaurant object
	Parking oem.NodeID // n7: the shared parking object
	Hakata  oem.NodeID // n2: the "Hakata" restaurant (created by the history)
	Name    oem.NodeID // n3: Hakata's name object (created by the history)
	Comment oem.NodeID // n5: Hakata's comment object (created by the history)

	BangkokName oem.NodeID
	JantaName   oem.NodeID
	JantaPrice  oem.NodeID
	JantaAddr   oem.NodeID
	Address     oem.NodeID // Bangkok Cuisine's complex address
	Street      oem.NodeID
	City        oem.NodeID
}

// PaperGuide constructs the Figure 2 Guide database: two restaurants with
// heterogeneous price and address representations, a shared parking object,
// and the parking/nearby-eats cycle.
func PaperGuide() (*oem.Database, *PaperIDs) {
	b := oem.NewBuilder()
	ids := &PaperIDs{Guide: b.Root()}

	ids.Bangkok = b.ComplexArc(ids.Guide, "restaurant")
	ids.BangkokName = b.AtomArc(ids.Bangkok, "name", value.Str("Bangkok Cuisine"))
	ids.Price = b.AtomArc(ids.Bangkok, "price", value.Int(10))
	b.AtomArc(ids.Bangkok, "cuisine", value.Str("Thai"))
	ids.Address = b.ComplexArc(ids.Bangkok, "address")
	ids.Street = b.AtomArc(ids.Address, "street", value.Str("Lytton"))
	ids.City = b.AtomArc(ids.Address, "city", value.Str("Palo Alto"))

	ids.Janta = b.ComplexArc(ids.Guide, "restaurant")
	ids.JantaName = b.AtomArc(ids.Janta, "name", value.Str("Janta"))
	ids.JantaPrice = b.AtomArc(ids.Janta, "price", value.Str("moderate"))
	ids.JantaAddr = b.AtomArc(ids.Janta, "address", value.Str("120 Lytton"))

	ids.Parking = b.ComplexArc(ids.Janta, "parking")
	b.Arc(ids.Bangkok, "parking", ids.Parking)
	b.AtomArc(ids.Parking, "comment", value.Str("usually full"))
	b.AtomArc(ids.Parking, "address", value.Str("Lytton lot 2"))
	b.Arc(ids.Parking, "nearby-eats", ids.Bangkok)

	db := b.Build()
	// Fresh ids for the nodes the history creates (the paper's n2, n3, n5).
	ids.Hakata = 100
	ids.Name = 101
	ids.Comment = 102
	return db, ids
}

// Paper timestamps t1, t2, t3 of Example 2.2.
var (
	T1 = timestamp.MustParse("1Jan97")
	T2 = timestamp.MustParse("5Jan97")
	T3 = timestamp.MustParse("8Jan97")
)

// PaperHistory returns the Example 2.3 history H = ((t1,U1),(t2,U2),(t3,U3)):
// the price update, the Hakata restaurant creation, the later comment, and
// the removal of Janta's parking arc.
func PaperHistory(ids *PaperIDs) change.History {
	return change.History{
		{At: T1, Ops: change.Set{
			change.UpdNode{Node: ids.Price, Value: value.Int(20)},
			change.CreNode{Node: ids.Hakata, Value: value.Complex()},
			change.CreNode{Node: ids.Name, Value: value.Str("Hakata")},
			change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: ids.Hakata},
			change.AddArc{Parent: ids.Hakata, Label: "name", Child: ids.Name},
		}},
		{At: T2, Ops: change.Set{
			change.CreNode{Node: ids.Comment, Value: value.Str("need info")},
			change.AddArc{Parent: ids.Hakata, Label: "comment", Child: ids.Comment},
		}},
		{At: T3, Ops: change.Set{
			change.RemArc{Parent: ids.Janta, Label: "parking", Child: ids.Parking},
		}},
	}
}
