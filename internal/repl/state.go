package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/lore"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/timestamp"
)

// State is the materialized view a Node maintains from its oplog. The
// oplog (plus its checkpoint) is the durable truth; Open rebuilds the
// State from it deterministically, so implementations may be purely
// in-memory. All calls are serialized by the Node.
type State interface {
	// Reset discards everything, returning to the empty state. Called
	// before a full oplog replay or a snapshot restore.
	Reset() error
	// Apply applies one record's data to the named database/stream.
	Apply(name string, data []byte) error
	// Snapshot encodes the full state for checkpointing and follower
	// bootstrap. Implementations that cannot snapshot return
	// ErrNoSnapshot; their oplogs are never compacted and their followers
	// always catch up by record replay.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a previously Snapshot()ed encoding.
	Restore(snapshot []byte) error
}

// ErrNoSnapshot marks a State that cannot checkpoint (see State.Snapshot).
var ErrNoSnapshot = errors.New("repl: state does not support snapshots")

// StoreState replicates into an in-memory lore.Store: each oplog record is
// a change.Step applied to the named DOEM database. Followers serve
// time-travel (`<at T>`) queries straight from the store — the
// read-replica path. Durability comes entirely from the node's oplog.
type StoreState struct {
	mu    sync.RWMutex
	store *lore.Store
}

// NewStoreState builds an empty in-memory store state.
func NewStoreState() *StoreState {
	st, err := lore.Open("")
	if err != nil {
		// lore.Open("") cannot fail: it performs no I/O.
		panic(err)
	}
	return &StoreState{store: st}
}

// EncodeStep encodes one history step as StoreState record data.
func EncodeStep(t timestamp.Time, ops change.Set) []byte {
	return change.AppendStep(nil, change.Step{At: t, Ops: ops})
}

// Reset implements State.
func (s *StoreState) Reset() error {
	st, err := lore.Open("")
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
	return nil
}

// Apply implements State: data must be an encoded change.Step.
func (s *StoreState) Apply(name string, data []byte) error {
	step, n, err := change.DecodeStep(data)
	if err != nil {
		return fmt.Errorf("repl: step: %w", err)
	}
	if n != len(data) {
		return fmt.Errorf("repl: step: %d trailing bytes", len(data)-n)
	}
	s.mu.RLock()
	st := s.store
	s.mu.RUnlock()
	if _, err := st.GetDOEM(name); errors.Is(err, lore.ErrNotFound) {
		if err := st.PutDOEM(name, doem.New(oem.New())); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	return st.ApplySet(name, step.At, step.Ops)
}

// Snapshot implements State: a count followed by (name, marshaled DOEM)
// pairs in sorted name order.
func (s *StoreState) Snapshot() ([]byte, error) {
	s.mu.RLock()
	st := s.store
	s.mu.RUnlock()
	entries := st.List()
	var names []string
	for _, e := range entries {
		if e.Kind == "doem" {
			names = append(names, e.Name)
		}
	}
	buf := binary.AppendUvarint(nil, uint64(len(names)))
	for _, name := range names {
		d, err := st.GetDOEM(name)
		if err != nil {
			return nil, err
		}
		data, err := d.Marshal()
		if err != nil {
			return nil, err
		}
		buf = change.AppendString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(len(data)))
		buf = append(buf, data...)
	}
	return buf, nil
}

// Restore implements State.
func (s *StoreState) Restore(snapshot []byte) error {
	st, err := lore.Open("")
	if err != nil {
		return err
	}
	count, n := binary.Uvarint(snapshot)
	if n <= 0 {
		return fmt.Errorf("repl: snapshot: bad count")
	}
	off := n
	for i := uint64(0); i < count; i++ {
		name, sn, err := change.DecodeString(snapshot[off:])
		if err != nil {
			return fmt.Errorf("repl: snapshot name: %w", err)
		}
		off += sn
		dlen, dn := binary.Uvarint(snapshot[off:])
		if dn <= 0 {
			return fmt.Errorf("repl: snapshot: bad length for %q", name)
		}
		off += dn
		if uint64(len(snapshot)-off) < dlen {
			return fmt.Errorf("repl: snapshot: truncated data for %q", name)
		}
		d, err := doem.Unmarshal(snapshot[off : off+int(dlen)])
		if err != nil {
			return fmt.Errorf("repl: snapshot doem %q: %w", name, err)
		}
		off += int(dlen)
		if err := st.PutDOEM(name, d); err != nil {
			return err
		}
	}
	if off != len(snapshot) {
		return fmt.Errorf("repl: snapshot: %d trailing bytes", len(snapshot)-off)
	}
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
	return nil
}

// View runs fn against the named database's indexed graph — the
// read-replica query entry point. Callers pair it with Node.Status to
// report the staleness bound alongside results.
func (s *StoreState) View(name string, fn func(lorel.Graph) error) error {
	s.mu.RLock()
	st := s.store
	s.mu.RUnlock()
	return st.ViewIndexed(name, fn)
}

// Store exposes the underlying store (tests, richer read paths).
func (s *StoreState) Store() *lore.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store
}
