// Package value implements the atomic-value ADT of OEM and Lorel's
// "forgiving" coercion semantics (paper Sections 2, 4.1).
//
// An OEM object is either complex (value C) or atomic with a value of type
// integer, real, string, boolean, or timestamp. Lorel comparisons first try
// to coerce both operands to a common type; when coercion fails the
// comparison evaluates to false rather than raising an error — the behaviour
// Example 4.1 of the paper depends on.
package value

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/timestamp"
)

// Kind identifies the type of a Value.
type Kind uint8

// The value kinds. KindComplex is the paper's reserved value C.
const (
	KindComplex Kind = iota
	KindNull
	KindBool
	KindInt
	KindReal
	KindString
	KindTime
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindComplex:
		return "complex"
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable OEM value. The zero Value is the complex marker C.
type Value struct {
	kind Kind
	b    bool
	i    int64
	r    float64
	s    string
	t    timestamp.Time
}

// Complex returns the reserved complex-object value C.
func Complex() Value { return Value{kind: KindComplex} }

// Null returns the null atomic value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a boolean atomic value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer atomic value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Real returns a real atomic value.
func Real(r float64) Value { return Value{kind: KindReal, r: r} }

// String returns a string atomic value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Time returns a timestamp atomic value.
func Time(t timestamp.Time) Value { return Value{kind: KindTime, t: t} }

// Kind returns the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsComplex reports whether v is the complex marker C.
func (v Value) IsComplex() bool { return v.kind == KindComplex }

// IsAtomic reports whether v is an atomic value (anything but C).
func (v Value) IsAtomic() bool { return v.kind != KindComplex }

// AsBool returns the boolean payload; valid only for KindBool.
func (v Value) AsBool() bool { return v.b }

// AsInt returns the integer payload; valid only for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsReal returns the real payload; valid only for KindReal.
func (v Value) AsReal() float64 { return v.r }

// AsString returns the string payload; valid only for KindString.
func (v Value) AsString() string { return v.s }

// AsTime returns the timestamp payload; valid only for KindTime.
func (v Value) AsTime() timestamp.Time { return v.t }

// String renders v for display: strings are quoted, C is the paper's "C".
func (v Value) String() string {
	switch v.kind {
	case KindComplex:
		return "C"
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindTime:
		return v.t.String()
	default:
		return "?"
	}
}

// Display renders v for end-user output: strings unquoted.
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Equal reports exact (kind-sensitive) equality; use Compare for Lorel's
// coercing equality.
func (v Value) Equal(u Value) bool {
	if v.kind != u.kind {
		return false
	}
	switch v.kind {
	case KindComplex, KindNull:
		return true
	case KindBool:
		return v.b == u.b
	case KindInt:
		return v.i == u.i
	case KindReal:
		return v.r == u.r
	case KindString:
		return v.s == u.s
	case KindTime:
		return v.t.Equal(u.t)
	}
	return false
}

// asReal coerces v to a real number.
func (v Value) asReal() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindReal:
		return v.r, true
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case KindString:
		r, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return r, err == nil
	default:
		return 0, false
	}
}

// asTime coerces v to a timestamp.
func (v Value) asTime() (timestamp.Time, bool) {
	switch v.kind {
	case KindTime:
		return v.t, true
	case KindString:
		t, err := timestamp.Parse(v.s)
		return t, err == nil
	case KindInt:
		return timestamp.FromUnix(v.i), true
	default:
		return timestamp.Time{}, false
	}
}

// Compare performs Lorel's coercing three-way comparison. It returns the
// ordering (-1, 0, +1) and whether the operands were comparable at all.
// Incomparable operands (coercion failure, complex or null operands) return
// ok=false, which every predicate then treats as false (paper Example 4.1).
func Compare(a, b Value) (cmp int, ok bool) {
	if a.kind == KindComplex || b.kind == KindComplex {
		return 0, false
	}
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	// Same kind: direct comparison.
	if a.kind == b.kind {
		switch a.kind {
		case KindBool:
			return boolCmp(a.b, b.b), true
		case KindInt:
			return intCmp(a.i, b.i), true
		case KindReal:
			return realCmp(a.r, b.r), true
		case KindString:
			return strings.Compare(a.s, b.s), true
		case KindTime:
			return a.t.Compare(b.t), true
		}
	}
	// Time against anything coercible to time.
	if a.kind == KindTime || b.kind == KindTime {
		at, aok := a.asTime()
		bt, bok := b.asTime()
		if aok && bok {
			return at.Compare(bt), true
		}
		return 0, false
	}
	// Otherwise coerce numerically.
	ar, aok := a.asReal()
	br, bok := b.asReal()
	if aok && bok {
		return realCmp(ar, br), true
	}
	return 0, false
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case b:
		return -1
	default:
		return 1
	}
}

func intCmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func realCmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Like reports whether v matches the SQL-style pattern (with % matching any
// substring and _ matching any single byte), used by Lorel's like operator.
// Non-string values are coerced to their display string first.
func (v Value) Like(pattern string) bool {
	if v.kind == KindComplex {
		return false
	}
	return likeMatch(v.Display(), pattern)
}

// likeMatch matches s against a SQL LIKE pattern iteratively.
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern/string positions, linear-space.
	// prev[j] = does pattern[:j] match s[:i-1].
	m, n := len(s), len(pattern)
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] && pattern[j-1] == '%'
	}
	for i := 1; i <= m; i++ {
		cur[0] = false
		for j := 1; j <= n; j++ {
			switch pattern[j-1] {
			case '%':
				cur[j] = cur[j-1] || prev[j]
			case '_':
				cur[j] = prev[j-1]
			default:
				cur[j] = prev[j-1] && pattern[j-1] == s[i-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// Arith applies a coercing arithmetic operator (+, -, *, /) to two values.
// String concatenation is supported for + on two strings. Failure to coerce
// returns ok=false.
func Arith(op string, a, b Value) (Value, bool) {
	if op == "+" && a.kind == KindString && b.kind == KindString {
		return Str(a.s + b.s), true
	}
	// Integer-preserving arithmetic when both sides are ints.
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case "+":
			return Int(a.i + b.i), true
		case "-":
			return Int(a.i - b.i), true
		case "*":
			return Int(a.i * b.i), true
		case "/":
			if b.i == 0 {
				return Value{}, false
			}
			if a.i%b.i == 0 {
				return Int(a.i / b.i), true
			}
			return Real(float64(a.i) / float64(b.i)), true
		}
		return Value{}, false
	}
	ar, aok := a.asReal()
	br, bok := b.asReal()
	if !aok || !bok {
		return Value{}, false
	}
	switch op {
	case "+":
		return Real(ar + br), true
	case "-":
		return Real(ar - br), true
	case "*":
		return Real(ar * br), true
	case "/":
		if br == 0 {
			return Value{}, false
		}
		return Real(ar / br), true
	}
	return Value{}, false
}

// Truthy reports whether v counts as true in a boolean context.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindReal:
		return v.r != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}
