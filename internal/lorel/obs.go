package lorel

import "repro/internal/obs"

// Engine metrics (see docs/observability.md). All collection is behind
// the obs global gate: with observability disabled each counter costs
// one atomic load per query, not per tuple — the per-tuple stats are
// plain fields on the evaluation and are flushed once at the end.
var (
	mQueries     = obs.NewCounter("lorel_queries_total")
	mQueryErrors = obs.NewCounter("lorel_query_errors_total")
	mQueryNs     = obs.NewHistogram("lorel_query_ns")
	mCacheHits   = obs.NewCounter("lorel_parse_cache_hits_total")
	mCacheMisses = obs.NewCounter("lorel_parse_cache_misses_total")
	mBindings    = obs.NewCounter("lorel_bindings_total")
	mDedupHits   = obs.NewCounter("lorel_dedup_hits_total")
	mParallel    = obs.NewCounter("lorel_parallel_queries_total")

	// Planner metrics: plan-cache traffic, re-preparations forced by stale
	// statistics, queries the validator sent back to the written-order
	// evaluator, and planned executions (reordered counts the subset that
	// committed to a strict-block reorder).
	mPlanCacheHits   = obs.NewCounter("lorel_plan_cache_hits_total")
	mPlanCacheMisses = obs.NewCounter("lorel_plan_cache_misses_total")
	mPlanReprepares  = obs.NewCounter("lorel_plan_reprepares_total")
	mPlanUnplannable = obs.NewCounter("lorel_plan_unplannable_total")
	mPlanExecs       = obs.NewCounter("lorel_plan_execs_total")
	mPlanReordered   = obs.NewCounter("lorel_plan_reordered_total")
)
