package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"
)

// Dialer connects a follower to its (believed) primary. Multi-address
// deployments return a connection to whichever candidate answers.
type Dialer func() (net.Conn, error)

// errStalePrimary ends a pump whose primary has a lower epoch than ours.
var errStalePrimary = errors.New("repl: primary has stale epoch")

// Follow starts the follower loop: dial, handshake, apply the record
// stream, redial with capped backoff on failure. It returns immediately;
// the loop runs until StopFollow, Promote, or Close. Following while
// primary (or while already following) is an error.
func (n *Node) Follow(dial Dialer) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if n.role != RoleFollower {
		return errors.New("repl: cannot follow while primary")
	}
	if n.following {
		return errors.New("repl: already following")
	}
	n.following = true
	stop := make(chan struct{})
	n.followStop = stop
	done := make(chan struct{})
	n.followConn = done
	go func() {
		defer close(done)
		n.followLoop(dial, stop)
	}()
	return nil
}

// StopFollow stops the follower loop and waits for it to exit. Safe to
// call when not following.
func (n *Node) StopFollow() {
	n.mu.Lock()
	if !n.following {
		n.mu.Unlock()
		return
	}
	stop := n.followStop
	done := n.followConn
	conn := n.followNetConn
	n.mu.Unlock()
	select {
	case <-stop:
	default:
		close(stop)
	}
	if conn != nil {
		conn.Close()
	}
	<-done
}

func (n *Node) followLoop(dial Dialer, stop chan struct{}) {
	defer func() {
		n.mu.Lock()
		n.following = false
		n.followNetConn = nil
		n.mu.Unlock()
	}()
	backoff := n.cfg.RedialInitial
	for {
		select {
		case <-stop:
			return
		default:
		}
		n.mu.Lock()
		if n.closed || n.role != RoleFollower {
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		conn, err := dial()
		if err == nil {
			n.mu.Lock()
			n.followNetConn = conn
			n.mu.Unlock()
			mFollowerConnected.Set(1)
			err = n.pump(conn, stop)
			mFollowerConnected.Set(0)
			conn.Close()
			n.mu.Lock()
			n.followNetConn = nil
			n.mu.Unlock()
			if err == nil || errors.Is(err, errStalePrimary) {
				// Clean session end or a deposed primary: retry promptly,
				// the cluster may be mid-failover.
				backoff = n.cfg.RedialInitial
			}
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > n.cfg.RedialMax {
			backoff = n.cfg.RedialMax
		}
	}
}

// pump runs one follower session: send Hello, then apply the primary's
// frame stream until the connection ends or a protocol/fencing condition
// breaks it.
func (n *Node) pump(c net.Conn, stop chan struct{}) error {
	n.mu.Lock()
	hello := Frame{
		Type:    FrameHello,
		Epoch:   n.epoch,
		Seq:     n.applied,
		Commit:  n.lastRecordEpoch,
		Payload: handshakePayload(n.cfg.ID),
	}
	n.mu.Unlock()
	if err := WriteFrame(c, hello); err != nil {
		return err
	}
	br := bufio.NewReader(c)
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		if n.cfg.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(n.cfg.IdleTimeout))
		}
		f, err := ReadFrame(br, n.cfg.MaxFrame)
		if err != nil {
			return err
		}
		n.mu.Lock()
		myEpoch := n.epoch
		n.mu.Unlock()
		if f.Type == FrameReject {
			// The peer outranks us (or refuses to serve); adopt and redial.
			mRejectsReceived.Inc()
			n.adoptEpoch(f.Epoch)
			return fmt.Errorf("repl: rejected by peer at epoch %d", f.Epoch)
		}
		if f.Epoch < myEpoch {
			// Stale primary: fence it and drop the stream.
			mRejectsSent.Inc()
			WriteFrame(c, Frame{Type: FrameReject, Epoch: myEpoch})
			return errStalePrimary
		}
		if f.Epoch > myEpoch {
			n.adoptEpoch(f.Epoch)
			myEpoch = f.Epoch
		}
		switch f.Type {
		case FrameWelcome:
			addr, ok := parseHandshake(f.Payload)
			if !ok {
				return fmt.Errorf("%w: welcome payload", ErrBadFrame)
			}
			n.mu.Lock()
			if f.Seq > n.primaryTip {
				n.primaryTip = f.Seq
			}
			// Only raise the watermark (as FrameRecord/FrameCommit do): a
			// reconnect Welcome must not regress what we already know.
			if f.Commit > n.commitKnown {
				n.commitKnown = f.Commit
			}
			n.primaryAddr = addr
			n.lastContact = time.Now()
			cb := n.cfg.OnPrimaryAddr
			n.mu.Unlock()
			if cb != nil && addr != "" {
				go cb(addr)
			}
		case FrameSnapshot:
			if err := n.applySnapshot(f); err != nil {
				return err
			}
			ack := Frame{Type: FrameAck, Epoch: myEpoch, Seq: f.Seq}
			if err := WriteFrame(c, ack); err != nil {
				return err
			}
			mAcksSent.Inc()
		case FrameRecord:
			dup, err := n.applyRecord(f)
			if err != nil {
				return err
			}
			if !dup {
				mRecordsReceived.Inc()
			}
			ack := Frame{Type: FrameAck, Epoch: myEpoch, Seq: f.Seq}
			if err := WriteFrame(c, ack); err != nil {
				return err
			}
			mAcksSent.Inc()
		case FrameCommit:
			n.mu.Lock()
			if f.Seq > n.primaryTip {
				n.primaryTip = f.Seq
			}
			if f.Commit > n.commitKnown {
				n.commitKnown = f.Commit
			}
			n.lastContact = time.Now()
			n.mu.Unlock()
		default:
			return fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.Type)
		}
	}
}

// applySnapshot resets the follower to the primary's snapshot: state
// restore + oplog reset, positioned at f.Seq.
func (n *Node) applySnapshot(f Frame) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.state.Restore(f.Payload); err != nil {
		return fmt.Errorf("repl: restore snapshot: %w", err)
	}
	if err := n.log.Reset(f.Payload, f.Seq); err != nil {
		return err
	}
	mSnapshotsApplied.Inc()
	n.applied = f.Seq
	n.appliedAt = n.cfg.Clock.Now()
	n.lastRecordEpoch = f.Commit
	if f.Seq > n.primaryTip {
		n.primaryTip = f.Seq
	}
	n.lastContact = time.Now()
	return nil
}

// applyRecord appends one streamed record verbatim to the oplog and
// applies it to the state. Duplicate (already-applied) sequences are
// tolerated and re-acked; gaps are protocol errors.
func (n *Node) applyRecord(f Frame) (dup bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f.Seq <= n.applied {
		return true, nil
	}
	if f.Seq != n.applied+1 {
		return false, fmt.Errorf("repl: record gap: got %d, want %d", f.Seq, n.applied+1)
	}
	repoch, name, data, err := DecodeOplogRecord(f.Payload)
	if err != nil {
		return false, err
	}
	if _, err := n.log.Append(f.Payload); err != nil {
		return false, err
	}
	if err := n.state.Apply(name, data); err != nil {
		return false, fmt.Errorf("repl: apply record %d: %w", f.Seq, err)
	}
	n.applied = f.Seq
	n.appliedAt = n.cfg.Clock.Now()
	n.lastRecordEpoch = repoch
	if f.Seq > n.primaryTip {
		n.primaryTip = f.Seq
	}
	if f.Commit > n.commitKnown {
		n.commitKnown = f.Commit
	}
	n.lastContact = time.Now()
	return false, nil
}
