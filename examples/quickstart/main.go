// Quickstart: build a small semistructured database, record changes, and
// query data and changes together with Chorel.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Build an OEM database: a guide with one restaurant.
	db := repro.NewOEM()
	guide := db.Root()
	rest := db.CreateNode(repro.Complex())
	must(db.AddArc(guide, "restaurant", rest))
	name := db.CreateNode(repro.Str("Bangkok Cuisine"))
	must(db.AddArc(rest, "name", name))
	price := db.CreateNode(repro.Int(10))
	must(db.AddArc(rest, "price", price))

	// 2. Place it under change management and record a history: the price
	// rises on 1Jan97, and a second restaurant appears on 5Jan97.
	cdb := repro.Open("guide", db)
	must(cdb.Apply(repro.MustParseTime("1Jan97"), repro.ChangeSet{
		repro.UpdNode{Node: price, Value: repro.Int(20)},
	}))
	hakata := repro.NodeID(100)
	hname := repro.NodeID(101)
	must(cdb.Apply(repro.MustParseTime("5Jan97"), repro.ChangeSet{
		repro.CreNode{Node: hakata, Value: repro.Complex()},
		repro.CreNode{Node: hname, Value: repro.Str("Hakata")},
		repro.AddArc{Parent: guide, Label: "restaurant", Child: hakata},
		repro.AddArc{Parent: hakata, Label: "name", Child: hname},
	}))

	// 3. Query the data (plain Lorel — sees the current snapshot).
	res, err := cdb.Query(`select N from guide.restaurant.name N`)
	check(err)
	fmt.Println("restaurants now:")
	fmt.Print(res)

	// 4. Query the changes (Chorel annotation expressions).
	res, err = cdb.Query(`select N, T from guide.<add at T>restaurant R, R.name N`)
	check(err)
	fmt.Println("\nrestaurants added, and when:")
	fmt.Print(res)

	res, err = cdb.Query(`select OV, NV from guide.restaurant.price<upd from OV to NV>`)
	check(err)
	fmt.Println("\nprice changes (old -> new):")
	fmt.Print(res)

	// 5. Time travel: the guide as of 2Jan97 has one restaurant.
	snap := cdb.SnapshotAt(repro.MustParseTime("2Jan97"))
	fmt.Printf("\nrestaurants on 2Jan97: %d\n", len(snap.OutLabeled(snap.Root(), "restaurant")))
	fmt.Printf("restaurants today:     %d\n", len(cdb.Current().OutLabeled(guide, "restaurant")))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
