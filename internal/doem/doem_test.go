package doem

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// fixture builds the Figure 2 Guide database and returns ids mirroring the
// paper's n1 (Bangkok price), n4 (guide root), n6 (Janta), n7 (parking).
type fixture struct {
	db         *oem.Database
	price      oem.NodeID // n1
	guide      oem.NodeID // n4
	janta      oem.NodeID // n6
	parking    oem.NodeID // n7
	bangkok    oem.NodeID
	h          change.History
	n2, n3, n5 oem.NodeID // Hakata restaurant, name, comment
	t1, t2, t3 timestamp.Time
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	b := oem.NewBuilder()
	guide := b.Root()
	bangkok := b.ComplexArc(guide, "restaurant")
	b.AtomArc(bangkok, "name", value.Str("Bangkok Cuisine"))
	price := b.AtomArc(bangkok, "price", value.Int(10))
	b.AtomArc(bangkok, "cuisine", value.Str("Thai"))
	addr := b.ComplexArc(bangkok, "address")
	b.AtomArc(addr, "street", value.Str("Lytton"))
	b.AtomArc(addr, "city", value.Str("Palo Alto"))
	janta := b.ComplexArc(guide, "restaurant")
	b.AtomArc(janta, "name", value.Str("Janta"))
	b.AtomArc(janta, "price", value.Str("moderate"))
	b.AtomArc(janta, "address", value.Str("120 Lytton"))
	parking := b.ComplexArc(janta, "parking")
	b.Arc(bangkok, "parking", parking)
	b.AtomArc(parking, "comment", value.Str("usually full"))
	b.AtomArc(parking, "address", value.Str("Lytton lot 2"))
	b.Arc(parking, "nearby-eats", bangkok)
	db := b.Build()

	f := &fixture{
		db: db, price: price, guide: guide, janta: janta, parking: parking,
		bangkok: bangkok,
		n2:      oem.NodeID(100), n3: oem.NodeID(101), n5: oem.NodeID(102),
		t1: timestamp.MustParse("1Jan97"),
		t2: timestamp.MustParse("5Jan97"),
		t3: timestamp.MustParse("8Jan97"),
	}
	f.h = change.History{
		{At: f.t1, Ops: change.Set{
			change.UpdNode{Node: f.price, Value: value.Int(20)},
			change.CreNode{Node: f.n2, Value: value.Complex()},
			change.CreNode{Node: f.n3, Value: value.Str("Hakata")},
			change.AddArc{Parent: f.guide, Label: "restaurant", Child: f.n2},
			change.AddArc{Parent: f.n2, Label: "name", Child: f.n3},
		}},
		{At: f.t2, Ops: change.Set{
			change.CreNode{Node: f.n5, Value: value.Str("need info")},
			change.AddArc{Parent: f.n2, Label: "comment", Child: f.n5},
		}},
		{At: f.t3, Ops: change.Set{
			change.RemArc{Parent: f.janta, Label: "parking", Child: f.parking},
		}},
	}
	return f
}

func (f *fixture) doem(t testing.TB) *Database {
	t.Helper()
	d, err := FromHistory(f.db, f.h)
	if err != nil {
		t.Fatalf("FromHistory: %v", err)
	}
	return d
}

// TestPaperExample31Annotations checks the exact annotation sets of Figure 4.
func TestPaperExample31Annotations(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)

	// upd(1Jan97, ov:10) on the price node.
	ups := d.UpdTriples(f.price)
	if len(ups) != 1 {
		t.Fatalf("price upd annotations = %d, want 1", len(ups))
	}
	if !ups[0].At.Equal(f.t1) || !ups[0].Old.Equal(value.Int(10)) || !ups[0].New.Equal(value.Int(20)) {
		t.Errorf("price upd = (%s, %s, %s), want (1Jan97, 10, 20)", ups[0].At, ups[0].Old, ups[0].New)
	}

	// cre(1Jan97) on the Hakata restaurant and name nodes.
	for _, n := range []oem.NodeID{f.n2, f.n3} {
		ct, ok := d.CreTime(n)
		if !ok || !ct.Equal(f.t1) {
			t.Errorf("node %s cre = (%s, %v), want 1Jan97", n, ct, ok)
		}
	}
	// cre(5Jan97) on the comment node.
	if ct, ok := d.CreTime(f.n5); !ok || !ct.Equal(f.t2) {
		t.Errorf("comment cre = (%s, %v), want 5Jan97", ct, ok)
	}

	// add(1Jan97) on restaurant and name arcs; add(5Jan97) on comment arc.
	adds := d.AddEvents(f.guide, "restaurant")
	if len(adds) != 1 || !adds[0].At.Equal(f.t1) || adds[0].Child != f.n2 {
		t.Errorf("restaurant add events = %v", adds)
	}
	adds = d.AddEvents(f.n2, "comment")
	if len(adds) != 1 || !adds[0].At.Equal(f.t2) || adds[0].Child != f.n5 {
		t.Errorf("comment add events = %v", adds)
	}

	// rem(8Jan97) on Janta's parking arc; the arc stays in the DOEM graph.
	rems := d.RemEvents(f.janta, "parking")
	if len(rems) != 1 || !rems[0].At.Equal(f.t3) || rems[0].Child != f.parking {
		t.Errorf("parking rem events = %v", rems)
	}
	arc := oem.Arc{Parent: f.janta, Label: "parking", Child: f.parking}
	if !d.IsDead(arc) {
		t.Error("removed arc not marked dead")
	}
	found := false
	for _, a := range d.OutAll(f.janta) {
		if a == arc {
			found = true
		}
	}
	if !found {
		t.Error("removed arc missing from full graph (must be retained, Figure 4)")
	}
	// But absent from the current snapshot.
	if d.Current().HasArc(f.janta, "parking", f.parking) {
		t.Error("removed arc still in current snapshot")
	}

	// Exactly 7 annotations in Figure 4: 1 upd + 3 cre + 3 add... plus rem = 8.
	// Figure 4 shows: upd, cre x3, add x3, rem x1.
	if got := d.NumAnnotations(); got != 8 {
		t.Errorf("annotation count = %d, want 8", got)
	}

	// Original nodes carry no annotations.
	if len(d.NodeAnnots(f.janta)) != 0 || len(d.NodeAnnots(f.guide)) != 0 {
		t.Error("original nodes must have empty annotation sets")
	}
}

func TestCurrentSnapshotMatchesFigure3(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	cur := d.Current()
	if err := cur.Validate(); err != nil {
		t.Fatalf("current snapshot invalid: %v", err)
	}
	if v := cur.MustValue(f.price); !v.Equal(value.Int(20)) {
		t.Errorf("price = %s, want 20", v)
	}
	if got := len(cur.OutLabeled(f.guide, "restaurant")); got != 3 {
		t.Errorf("restaurants = %d, want 3", got)
	}
	if cur.HasArc(f.janta, "parking", f.parking) {
		t.Error("parking arc should be gone from current snapshot")
	}
}

// TestOriginalSnapshot checks O_0(D) reproduces Figure 2 exactly.
func TestOriginalSnapshot(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	o0 := d.Original()
	if err := o0.Validate(); err != nil {
		t.Fatalf("O_0 invalid: %v", err)
	}
	if !o0.Equal(f.db) {
		t.Errorf("O_0(D) differs from the original database:\nwant:\n%s\ngot:\n%s", f.db, o0)
	}
}

// TestSnapshotAt walks the timeline of Example 2.2.
func TestSnapshotAt(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)

	// Before t1: identical to the original.
	s := d.SnapshotAt(timestamp.MustParse("31Dec96"))
	if !s.Equal(f.db) {
		t.Error("snapshot before t1 should equal the original")
	}

	// At t1: price updated, Hakata present without comment, parking intact.
	s = d.SnapshotAt(f.t1)
	if v := s.MustValue(f.price); !v.Equal(value.Int(20)) {
		t.Errorf("price at t1 = %s, want 20", v)
	}
	if !s.HasArc(f.guide, "restaurant", f.n2) {
		t.Error("Hakata missing at t1")
	}
	if s.HasArc(f.n2, "comment", f.n5) {
		t.Error("comment present at t1 (added at t2)")
	}
	if !s.HasArc(f.janta, "parking", f.parking) {
		t.Error("parking arc missing at t1 (removed at t3)")
	}

	// Between t1 and t2 (e.g. 3Jan97): same as at t1.
	if !d.SnapshotAt(timestamp.MustParse("3Jan97")).Equal(s) {
		t.Error("snapshot at 3Jan97 should equal snapshot at t1")
	}

	// At t2: comment present.
	s = d.SnapshotAt(f.t2)
	if !s.HasArc(f.n2, "comment", f.n5) {
		t.Error("comment missing at t2")
	}

	// At t3 and beyond: parking arc gone; equals the current snapshot.
	s = d.SnapshotAt(f.t3)
	if s.HasArc(f.janta, "parking", f.parking) {
		t.Error("parking arc present at t3")
	}
	if !s.Equal(d.Current()) {
		t.Error("snapshot at t3 should equal current snapshot")
	}
	if !d.SnapshotAt(timestamp.PosInf).Equal(d.Current()) {
		t.Error("snapshot at +inf should equal current snapshot")
	}
}

func TestValueAt(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	if v := d.ValueAt(f.price, timestamp.MustParse("31Dec96")); !v.Equal(value.Int(10)) {
		t.Errorf("price before update = %s, want 10", v)
	}
	if v := d.ValueAt(f.price, f.t1); !v.Equal(value.Int(20)) {
		t.Errorf("price at update instant = %s, want 20", v)
	}
	if v := d.ValueAt(f.price, timestamp.PosInf); !v.Equal(value.Int(20)) {
		t.Errorf("price now = %s, want 20", v)
	}
}

func TestValueAtMultipleUpdates(t *testing.T) {
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "x", n); err != nil {
		t.Fatal(err)
	}
	h := change.History{
		{At: timestamp.MustParse("1Jan97"), Ops: change.Set{change.UpdNode{Node: n, Value: value.Int(2)}}},
		{At: timestamp.MustParse("2Jan97"), Ops: change.Set{change.UpdNode{Node: n, Value: value.Int(3)}}},
		{At: timestamp.MustParse("3Jan97"), Ops: change.Set{change.UpdNode{Node: n, Value: value.Int(4)}}},
	}
	d, err := FromHistory(db, h)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"31Dec96": 1, "1Jan97": 2, "2Jan97": 3, "3Jan97": 4, "4Jan97": 4,
	}
	for ts, w := range want {
		if v := d.ValueAt(n, timestamp.MustParse(ts)); !v.Equal(value.Int(w)) {
			t.Errorf("value at %s = %s, want %d", ts, v, w)
		}
	}
	ups := d.UpdTriples(n)
	if len(ups) != 3 {
		t.Fatalf("upd count = %d", len(ups))
	}
	// New-value chaining: new of upd_i = old of upd_{i+1}.
	if !ups[0].New.Equal(value.Int(2)) || !ups[1].New.Equal(value.Int(3)) || !ups[2].New.Equal(value.Int(4)) {
		t.Errorf("new-value chain wrong: %v", ups)
	}
}

func TestArcLiveAtReAdd(t *testing.T) {
	// Remove an arc and add it back later: the timeline must toggle.
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "x", n); err != nil {
		t.Fatal(err)
	}
	keep := db.CreateNode(value.Int(2)) // second path keeps n alive
	if err := db.AddArc(db.Root(), "keep", keep); err != nil {
		t.Fatal(err)
	}
	h := change.History{
		{At: timestamp.MustParse("1Jan97"), Ops: change.Set{
			change.RemArc{Parent: db.Root(), Label: "x", Child: n},
			change.AddArc{Parent: db.Root(), Label: "y", Child: n},
		}},
		{At: timestamp.MustParse("2Jan97"), Ops: change.Set{
			change.AddArc{Parent: db.Root(), Label: "x", Child: n},
		}},
	}
	d, err := FromHistory(db, h)
	if err != nil {
		t.Fatal(err)
	}
	arc := oem.Arc{Parent: db.Root(), Label: "x", Child: n}
	if !d.ArcLiveAt(arc, timestamp.MustParse("31Dec96")) {
		t.Error("arc should be live before removal")
	}
	if d.ArcLiveAt(arc, timestamp.MustParse("1Jan97")) {
		t.Error("arc should be dead at 1Jan97")
	}
	if !d.ArcLiveAt(arc, timestamp.MustParse("2Jan97")) {
		t.Error("arc should be live again at 2Jan97")
	}
	if d.IsDead(arc) {
		t.Error("re-added arc should not be marked dead")
	}
	// The annotation trail shows rem then add.
	anns := d.ArcAnnots(arc)
	if len(anns) != 2 || anns[0].Kind != AnnotRem || anns[1].Kind != AnnotAdd {
		t.Errorf("annotation trail = %v", anns)
	}
}

func TestDeletedNodeRetained(t *testing.T) {
	// A node that becomes unreachable is deleted from the current snapshot
	// but its history — and final value — remain in the DOEM graph.
	db := oem.New()
	n := db.CreateNode(value.Str("ephemeral"))
	if err := db.AddArc(db.Root(), "x", n); err != nil {
		t.Fatal(err)
	}
	h := change.History{
		{At: timestamp.MustParse("1Jan97"), Ops: change.Set{
			change.RemArc{Parent: db.Root(), Label: "x", Child: n},
		}},
	}
	d, err := FromHistory(db, h)
	if err != nil {
		t.Fatal(err)
	}
	if d.Current().Has(n) {
		t.Error("deleted node still in current snapshot")
	}
	if !d.Has(n) {
		t.Error("deleted node missing from DOEM graph")
	}
	if v, ok := d.Value(n); !ok || !v.Equal(value.Str("ephemeral")) {
		t.Errorf("deleted node value = %s,%v", v, ok)
	}
	// It reappears in historical snapshots.
	s := d.SnapshotAt(timestamp.MustParse("31Dec96"))
	if !s.Has(n) {
		t.Error("deleted node missing from pre-deletion snapshot")
	}
}

func TestApplyGuards(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)

	// Stale timestamp.
	err := d.Apply(f.t2, change.Set{})
	if !errors.Is(err, ErrStaleTimestamp) {
		t.Errorf("stale timestamp: %v", err)
	}
	// Non-finite timestamp.
	err = d.Apply(timestamp.PosInf, change.Set{})
	if !errors.Is(err, ErrStaleTimestamp) {
		t.Errorf("infinite timestamp: %v", err)
	}

	// Make the Hakata comment node unreachable, then try to touch it.
	t4 := timestamp.MustParse("9Jan97")
	if err := d.Apply(t4, change.Set{change.RemArc{Parent: f.n2, Label: "comment", Child: f.n5}}); err != nil {
		t.Fatal(err)
	}
	t5 := timestamp.MustParse("10Jan97")
	err = d.Apply(t5, change.Set{change.UpdNode{Node: f.n5, Value: value.Str("zombie")}})
	if !errors.Is(err, ErrDeletedNode) {
		t.Errorf("update of deleted node: %v", err)
	}
	err = d.Apply(t5, change.Set{change.CreNode{Node: f.n5, Value: value.Int(1)}})
	if !errors.Is(err, ErrReusedID) {
		t.Errorf("reuse of deleted id: %v", err)
	}
	err = d.Apply(t5, change.Set{change.AddArc{Parent: f.n2, Label: "comment", Child: f.n5}})
	if !errors.Is(err, ErrDeletedNode) {
		t.Errorf("arc to deleted node: %v", err)
	}
}

// TestExtractHistory checks H(D) recovers the paper's Example 2.3 history.
func TestExtractHistory(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	h := d.ExtractHistory()
	if len(h) != 3 {
		t.Fatalf("extracted %d steps, want 3", len(h))
	}
	for i, want := range []timestamp.Time{f.t1, f.t2, f.t3} {
		if !h[i].At.Equal(want) {
			t.Errorf("step %d at %s, want %s", i, h[i].At, want)
		}
	}
	if len(h[0].Ops) != 5 || len(h[1].Ops) != 2 || len(h[2].Ops) != 1 {
		t.Errorf("op counts = %d,%d,%d; want 5,2,1", len(h[0].Ops), len(h[1].Ops), len(h[2].Ops))
	}
	// Replaying the extracted history over O_0 reproduces the current state.
	o0 := d.Original()
	if err := h.Apply(o0); err != nil {
		t.Fatalf("extracted history invalid: %v", err)
	}
	if !o0.Equal(d.Current()) {
		t.Error("replayed extracted history differs from current snapshot")
	}
}

// TestFeasible checks the Section 3.2 uniqueness property: D(O_0(D), H(D)) = D.
func TestFeasible(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	if !d.Feasible() {
		t.Error("paper-example DOEM database reported infeasible")
	}
	// An empty DOEM database is trivially feasible.
	if !New(oem.New()).Feasible() {
		t.Error("empty DOEM database infeasible")
	}
}

func TestFeasibleAfterDeletions(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	// Remove the Hakata comment — the comment node becomes unreachable.
	if err := d.Apply(timestamp.MustParse("9Jan97"), change.Set{
		change.RemArc{Parent: f.n2, Label: "comment", Child: f.n5},
	}); err != nil {
		t.Fatal(err)
	}
	if !d.Feasible() {
		t.Error("DOEM with deleted nodes reported infeasible")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	f := newFixture(t)
	a := f.doem(t)
	b := f.doem(t)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("identically constructed DOEM databases unequal")
	}
	if err := b.Apply(timestamp.MustParse("9Jan97"), change.Set{
		change.UpdNode{Node: f.price, Value: value.Int(25)},
	}); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Error("databases equal after divergent update")
	}
}

func TestStringRendering(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	s := d.String()
	for _, want := range []string{"upd(1Jan97, 10)", "cre(1Jan97)", "add(5Jan97)", "rem(8Jan97)", "(removed)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

func TestFromHistoryDoesNotMutateInput(t *testing.T) {
	f := newFixture(t)
	before := f.db.Clone()
	_ = f.doem(t)
	if !f.db.Equal(before) {
		t.Error("FromHistory mutated the input OEM database")
	}
}

func TestStepsAccounting(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	steps := d.Steps()
	if len(steps) != 3 || !steps[0].Equal(f.t1) || !steps[2].Equal(f.t3) {
		t.Errorf("Steps() = %v", steps)
	}
	if !d.LastStep().Equal(f.t3) {
		t.Errorf("LastStep = %s", d.LastStep())
	}
	if !New(oem.New()).LastStep().Equal(timestamp.NegInf) {
		t.Error("empty DOEM LastStep should be -inf")
	}
}

func TestReAddedArcHistoryFeasible(t *testing.T) {
	// An arc removed and later re-added must round-trip through
	// ExtractHistory / Feasible.
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "x", n); err != nil {
		t.Fatal(err)
	}
	keep := db.CreateNode(value.Int(2))
	if err := db.AddArc(db.Root(), "keep", keep); err != nil {
		t.Fatal(err)
	}
	h := change.History{
		{At: timestamp.MustParse("1Jan97"), Ops: change.Set{
			change.RemArc{Parent: db.Root(), Label: "x", Child: n},
			change.AddArc{Parent: db.Root(), Label: "y", Child: n},
		}},
		{At: timestamp.MustParse("2Jan97"), Ops: change.Set{
			change.AddArc{Parent: db.Root(), Label: "x", Child: n},
		}},
	}
	d, err := FromHistory(db, h)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible() {
		t.Error("re-added-arc history infeasible")
	}
	eh := d.ExtractHistory()
	if len(eh) != 2 {
		t.Errorf("extracted steps = %d", len(eh))
	}
}
