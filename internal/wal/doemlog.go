package wal

import (
	"fmt"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/timestamp"
)

// Typed layer: history steps as record payloads and DOEM databases as
// checkpoint payloads. A log written through this layer is exactly an OEM
// history H on disk; ReplayDOEM is the paper's D(O, H) construction run
// directly off the log, with O the checkpointed base (or the empty
// database).

// AppendStep appends one history step (t, ops) as a record.
func (l *Log) AppendStep(t timestamp.Time, ops change.Set) (uint64, error) {
	return l.Append(change.AppendStep(nil, change.Step{At: t, Ops: ops}))
}

// ReplaySteps calls fn for every step recorded after the checkpoint, in
// order. fn must not call back into l.
func (l *Log) ReplaySteps(fn func(seq uint64, step change.Step) error) error {
	return l.Replay(func(seq uint64, payload []byte) error {
		step, n, err := change.DecodeStep(payload)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", seq, err)
		}
		if n != len(payload) {
			return fmt.Errorf("wal: record %d: %d trailing bytes", seq, len(payload)-n)
		}
		return fn(seq, step)
	})
}

// ReplayHistory collects the steps recorded after the checkpoint.
func (l *Log) ReplayHistory() (change.History, error) {
	var h change.History
	err := l.ReplaySteps(func(_ uint64, step change.Step) error {
		h = append(h, step)
		return nil
	})
	return h, err
}

// ReplayDOEM reconstructs the DOEM database the log describes: the
// checkpointed base (an empty database when none has been written) with
// every subsequent step applied.
func (l *Log) ReplayDOEM() (*doem.Database, error) {
	d, _, err := l.ReplayDOEMCounted()
	return d, err
}

// ReplayDOEMCounted is ReplayDOEM reporting how many log records were
// replayed on top of the checkpoint, for recovery observability.
func (l *Log) ReplayDOEMCounted() (*doem.Database, int, error) {
	var d *doem.Database
	if payload, _, ok := l.LastCheckpoint(); ok {
		var err error
		d, err = doem.Unmarshal(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: checkpoint: %w", err)
		}
	} else {
		d = doem.New(oem.New())
	}
	records := 0
	err := l.ReplaySteps(func(seq uint64, step change.Step) error {
		if err := d.Apply(step.At, step.Ops); err != nil {
			return fmt.Errorf("wal: replaying record %d: %w", seq, err)
		}
		records++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return d, records, nil
}

// CheckpointDOEM snapshots d as the new checkpoint covering every record
// appended so far, dropping the segments the snapshot makes redundant.
//
// Concurrency contract: the caller must exclude writers of BOTH d and this
// log for the whole call. The log's own mutex serializes the final
// Checkpoint write against Append, but the marshal of d and the LastSeq
// read here are not one atomic step with it: an AppendStep landing between
// them would either be covered-but-absent from the snapshot (the record is
// compacted away and its effects lost on replay) or present-in-snapshot
// yet replayed again. lore.Store holds its store-wide lock across both
// ApplySet and Checkpoint, and internal/segment seals under its single-
// writer rule, so both callers satisfy this; see the ApplySet/Checkpoint
// race-stress test in internal/lore.
func (l *Log) CheckpointDOEM(d *doem.Database) error {
	payload, err := d.Marshal()
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	return l.Checkpoint(payload, l.LastSeq())
}
