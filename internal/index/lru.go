package index

import "container/list"

// lru is a minimal least-recently-used cache. It does no locking of its
// own: callers guard it (tables.mu) because get mutates recency order.
type lru[K comparable, V any] struct {
	cap int
	ll  *list.List
	m   map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	k K
	v V
}

func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[K, V]{cap: capacity, ll: list.New(), m: make(map[K]*list.Element)}
}

func (c *lru[K, V]) get(k K) (V, bool) {
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).v, true
	}
	var zero V
	return zero, false
}

// add inserts k→v, evicting the least recently used entry when the cache
// is full. It reports whether an eviction happened. Adding an existing key
// refreshes its value and recency without evicting.
func (c *lru[K, V]) add(k K, v V) (evicted bool) {
	if el, ok := c.m[k]; ok {
		el.Value.(*lruEntry[K, V]).v = v
		c.ll.MoveToFront(el)
		return false
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry[K, V]).k)
		evicted = true
	}
	c.m[k] = c.ll.PushFront(&lruEntry[K, V]{k: k, v: v})
	return evicted
}

func (c *lru[K, V]) len() int { return c.ll.Len() }
