package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledMetricsRecordNothing(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	r := NewRegistry()
	c := r.NewCounter("c_total")
	g := r.NewGauge("g")
	h := r.NewHistogram("h_ns")
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(3)
	h.Observe(100)
	h.ObserveSince(Now())
	s := r.Snapshot()
	if s.Counter("c_total") != 0 || s.Gauge("g") != 0 || s.Histogram("h_ns").Count != 0 {
		t.Fatalf("disabled metrics mutated: %+v", s)
	}
	if !Now().IsZero() {
		t.Fatal("Now() should be zero while disabled")
	}
}

func TestEnabledMetrics(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	c := r.NewCounter("c_total")
	g := r.NewGauge("g")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	r.RegisterGaugeFunc("fn", func() int64 { return 42 })
	s := r.Snapshot()
	if got := s.Counter("c_total"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := s.Gauge("g"); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	if got := s.Gauge("fn"); got != 42 {
		t.Errorf("gauge func = %d, want 42", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.NewCounter("x") != r.NewCounter("x") {
		t.Error("NewCounter not idempotent")
	}
	if r.NewGauge("x") != r.NewGauge("x") {
		t.Error("NewGauge not idempotent")
	}
	if r.NewHistogram("x") != r.NewHistogram("x") {
		t.Error("NewHistogram not idempotent")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	h := r.NewHistogram("lat_ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	st := h.Stats()
	if st.Count != 100 || st.Sum != 5050 || st.Window != 100 {
		t.Fatalf("count=%d sum=%d window=%d", st.Count, st.Sum, st.Window)
	}
	if st.Min != 1 || st.Max != 100 {
		t.Errorf("min=%d max=%d", st.Min, st.Max)
	}
	// (n-1)*p/100 over 1..100: p50 -> index 49 -> 50, p95 -> 95, p99 -> 99.
	if st.P50 != 50 || st.P95 != 95 || st.P99 != 99 {
		t.Errorf("p50=%d p95=%d p99=%d", st.P50, st.P95, st.P99)
	}
	if st.Mean != 50.5 {
		t.Errorf("mean=%v", st.Mean)
	}
}

func TestHistogramRingWrap(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	h := r.NewHistogram("lat_ns")
	// Overfill the ring; the window must hold the newest ringSize values.
	for i := int64(0); i < ringSize+100; i++ {
		h.Observe(1000 + i)
	}
	st := h.Stats()
	if st.Count != ringSize+100 {
		t.Fatalf("count=%d", st.Count)
	}
	if st.Window != ringSize {
		t.Fatalf("window=%d", st.Window)
	}
	if st.Min < 1100 {
		t.Errorf("min=%d still holds an evicted sample", st.Min)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	h := r.NewHistogram("lat_ns")
	c := r.NewCounter("c_total")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
				c.Inc()
				if i%100 == 0 {
					_ = h.Stats()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if st := h.Stats(); st.Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", st.Count)
	}
}

func TestObserveSinceZeroStart(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_ns")
	// Collection toggled on after the start was taken while disabled:
	// nothing must be recorded.
	prev := SetEnabled(false)
	start := Now()
	SetEnabled(true)
	h.ObserveSince(start)
	SetEnabled(prev)
	if st := h.Stats(); st.Count != 0 {
		t.Errorf("zero start recorded a sample: %+v", st)
	}
}

func TestObserveSinceMeasures(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	h := r.NewHistogram("lat_ns")
	start := Now()
	time.Sleep(time.Millisecond)
	h.ObserveSince(start)
	st := h.Stats()
	if st.Count != 1 || st.Min < int64(time.Millisecond) {
		t.Errorf("stats = %+v", st)
	}
}

func TestLabeledName(t *testing.T) {
	if got := LabeledName("qss_poll_ns", "sub", "R"); got != `qss_poll_ns{sub="R"}` {
		t.Errorf("LabeledName = %s", got)
	}
}

func TestPrometheusText(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	r.NewCounter("a_total").Add(3)
	r.NewCounter(`b_total{to="x"}`).Add(1)
	r.NewCounter(`b_total{to="y"}`).Add(2)
	r.NewGauge("depth").Set(9)
	h := r.NewHistogram(`lat_ns{sub="R"}`)
	h.Observe(10)
	h.Observe(20)
	text := PrometheusText(r.Snapshot())
	for _, want := range []string{
		"# TYPE a_total counter\na_total 3\n",
		"# TYPE b_total counter\n",
		`b_total{to="x"} 1`,
		`b_total{to="y"} 2`,
		"# TYPE depth gauge\ndepth 9\n",
		"# TYPE lat_ns summary\n",
		`lat_ns{sub="R",quantile="0.5"}`,
		`lat_ns_sum{sub="R"} 30`,
		`lat_ns_count{sub="R"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q in:\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE b_total") != 1 {
		t.Error("TYPE line repeated for labeled variants")
	}
}
