package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// A Trace collects the structured timeline of one query evaluation:
// named spans (parse, rewrite, eval, per-worker shards, merge) plus
// integer stats (bindings enumerated, dedup hits). Traces are explicitly
// requested per query — attach one to a context with WithTrace — and are
// collected regardless of the global metrics gate.
//
// All methods are nil-safe: call sites instrument unconditionally
// (`defer tr.StartSpan("eval").End()`) and a nil *Trace makes every call
// a no-op. Non-nil traces are safe for concurrent use, so parallel
// evaluation workers may record spans and stats directly.
type Trace struct {
	// Query is the source text the trace describes.
	Query string

	began time.Time

	mu    sync.Mutex
	spans []Span
	stats map[string]int64
}

// A Span is one timed stage of a traced evaluation.
type Span struct {
	Name string `json:"name"`
	// Note carries stage detail ("cache=hit", "rows=12 range=[0,40)").
	Note string `json:"note,omitempty"`
	// Start is the offset from the beginning of the trace.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// NewTrace starts a trace for the given query text.
func NewTrace(query string) *Trace {
	return &Trace{Query: query, began: time.Now(), stats: make(map[string]int64)}
}

// A SpanHandle ends one span; returned by StartSpan.
type SpanHandle struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a named span. End (or EndNote) closes it.
func (t *Trace) StartSpan(name string) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{t: t, name: name, start: time.Now()}
}

// End closes the span with no note.
func (sh *SpanHandle) End() { sh.EndNote("") }

// EndNote closes the span with a formatted note.
func (sh *SpanHandle) EndNote(format string, args ...any) {
	if sh == nil {
		return
	}
	note := format
	if len(args) > 0 {
		note = fmt.Sprintf(format, args...)
	}
	end := time.Now()
	sp := Span{
		Name:  sh.name,
		Note:  note,
		Start: sh.start.Sub(sh.t.began),
		Dur:   end.Sub(sh.start),
	}
	sh.t.mu.Lock()
	sh.t.spans = append(sh.t.spans, sp)
	sh.t.mu.Unlock()
}

// Add accumulates a named stat (bindings, dedup hits, ...).
func (t *Trace) Add(stat string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stats[stat] += n
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Stats returns a copy of the accumulated stats.
func (t *Trace) Stats() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.stats))
	for k, v := range t.stats {
		out[k] = v
	}
	return out
}

// String renders the trace as an indented report: spans sorted by start
// offset, then stats sorted by name.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	stats := t.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %s\n", t.Query)
	for _, sp := range spans {
		fmt.Fprintf(&sb, "  %-12s +%-12s %-12s %s\n", sp.Name, sp.Start, sp.Dur, sp.Note)
	}
	for _, n := range names {
		fmt.Fprintf(&sb, "  stat %-20s %d\n", n, stats[n])
	}
	return sb.String()
}

type traceKey struct{}

// WithTrace attaches a trace to a context; instrumented evaluations
// found downstream record into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
