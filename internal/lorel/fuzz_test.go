package lorel

import "testing"

// FuzzParse: the query parser must never panic; it either returns a Query
// or an error. Parsed queries must also survive canonicalization and
// String rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`select guide.restaurant`,
		`select guide.<add at T>restaurant where T < 4Jan97`,
		`select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97 and NV > 15`,
		`select guide.restaurant where guide.restaurant.address.# like "%Lytton%"`,
		`select count(R.comment) from g.r R`,
		`select x."quoted label".y where t[0] > 1Jan97`,
		`select a.b-c.&d-history where exists V in a.b : V = 1`,
		"select \x00\xff",
		`select ((((`,
		`select x where x = "unterminated`,
		`select -1.5 + 2 * 3 / 4`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if err := Canonicalize(q); err != nil {
			t.Fatalf("canonicalize after successful parse: %v", err)
		}
		_ = q.String()
	})
}

// FuzzParseUpdate: same contract for the update-statement parser.
func FuzzParseUpdate(f *testing.F) {
	seeds := []string{
		`update guide.restaurant.price := 25 where guide.restaurant.name = "Janta"`,
		`insert guide.restaurant.comment := "x"`,
		`insert a.b := complex`,
		`delete a.b.c where a.b = 1`,
		`update a.b := `,
		`delete`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParseUpdate(src)
		if err != nil {
			return
		}
		_ = stmt.Kind.String()
		_ = stmt.Target.String()
	})
}

// FuzzEval: syntactically valid queries over the paper database must
// evaluate without panicking (errors are fine).
func FuzzEval(f *testing.F) {
	seeds := []string{
		`select guide.restaurant`,
		`select guide.#`,
		`select guide.<add>restaurant<cre at T> where T > t[-1]`,
		`select count(guide.#) as n where n > 0`,
		`select guide.restaurant.price<at 1Jan97>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := buildFanout(3)
	e := NewEngine()
	e.Register("guide", NewOEMGraph(db))
	f.Fuzz(func(t *testing.T, src string) {
		res, err := e.Query(src)
		if err != nil {
			return
		}
		_ = res.String()
		_ = res.Answer()
	})
}
