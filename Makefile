# DOEM/Chorel reproduction — common targets.

GO ?= go

.PHONY: all build test race vet lint cover bench bench-json bench-check harness examples fuzz ci fmtcheck clean

all: build test

# Mirrors .github/workflows/ci.yml locally: formatting gate, build, vet,
# tests, and the race-detector run that gates the parallel evaluator.
# (CI additionally runs `make lint`, which needs network access to
# install its tools.)
ci: fmtcheck build test race

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet plus vulnerability scanning; mirrors the CI
# lint job. Installs the tools on first use (network required).
lint:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@latest
	$(GO) install golang.org/x/vuln/cmd/govulncheck@latest
	$$($(GO) env GOPATH)/bin/staticcheck ./...
	$$($(GO) env GOPATH)/bin/govulncheck ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark report: per-benchmark ns/op, B/op, allocs/op,
# the measured observability overhead, the indexed-vs-noindex <at T>
# speedups, the planner's selective-join speedup, the segmented-vs-
# monolithic growth factors and per-tier RSS, the replication ack-mode
# overheads, the incremental-matching speedup and flatness factors, and a
# metrics snapshot.
bench-json:
	$(GO) run ./cmd/benchharness -json BENCH_9.json

# Bench-regression gate: a fresh suite run vs the committed baseline,
# failing on a >25% regression in any headline ratio metric.
bench-check:
	$(GO) run ./cmd/benchharness -check BENCH_9.json -check-out bench_fresh.json

# Regenerates every experiment in EXPERIMENTS.md.
harness:
	$(GO) run ./cmd/benchharness

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/restaurants
	$(GO) run ./examples/subscription
	$(GO) run ./examples/timetravel
	$(GO) run ./examples/htmldiff
	$(GO) run ./examples/triggers

# Short fuzzing pass over every fuzz target.
fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s -run xxx ./internal/lorel/
	$(GO) test -fuzz='^FuzzParseUpdate$$' -fuzztime=30s -run xxx ./internal/lorel/
	$(GO) test -fuzz='^FuzzEval$$' -fuzztime=30s -run xxx ./internal/lorel/
	$(GO) test -fuzz='^FuzzPlanCacheKey$$' -fuzztime=30s -run xxx ./internal/lorel/
	$(GO) test -fuzz='^FuzzToOEM$$' -fuzztime=30s -run xxx ./internal/htmldiff/
	$(GO) test -fuzz='^FuzzMarkup$$' -fuzztime=30s -run xxx ./internal/htmldiff/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s -run xxx ./internal/timestamp/
	$(GO) test -fuzz='^FuzzLabelRoundTrip$$' -fuzztime=30s -run xxx ./internal/encoding/
	$(GO) test -fuzz='^FuzzEncodeDecode$$' -fuzztime=30s -run xxx ./internal/encoding/
	$(GO) test -fuzz='^FuzzRead$$' -fuzztime=30s -run xxx ./internal/oemio/
	$(GO) test -fuzz='^FuzzWALRecordDecode$$' -fuzztime=30s -run xxx ./internal/wal/
	$(GO) test -fuzz='^FuzzRequestDecode$$' -fuzztime=30s -run xxx ./internal/qss/
	$(GO) test -fuzz='^FuzzReadLine$$' -fuzztime=30s -run xxx ./internal/qss/
	$(GO) test -fuzz='^FuzzIndexSnapshotParity$$' -fuzztime=30s -run xxx ./internal/index/
	$(GO) test -fuzz='^FuzzSegmentParity$$' -fuzztime=30s -run xxx ./internal/segment/
	$(GO) test -fuzz='^FuzzReplFrameDecode$$' -fuzztime=30s -run xxx ./internal/repl/
	$(GO) test -fuzz='^FuzzFilterFingerprint$$' -fuzztime=30s -run xxx ./internal/incr/

clean:
	rm -f test_output.txt bench_output.txt htmldiff-output.html bench_fresh.json
