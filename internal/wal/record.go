package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing. Each record in a segment file is one frame:
//
//	[4-byte LE body length][body][4-byte LE CRC-32C of body]
//
// where body = uvarint(seq) + payload. The CRC detects torn or bit-rotted
// tails; a frame that fails length, sequence, or CRC validation marks the
// end of the recoverable log prefix (see recoverSegments).

// castagnoli is the CRC-32C table (the polynomial used by iSCSI, ext4 and
// most modern log formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the fixed per-record framing cost in bytes.
const frameOverhead = 8

// maxRecordSize caps a single record body so corrupt length prefixes cannot
// trigger huge allocations during recovery.
const maxRecordSize = 1 << 28 // 256 MiB

// errTorn reports a frame that is truncated, corrupt, or out of sequence —
// the marker of a torn tail during recovery.
var errTorn = errors.New("wal: torn or corrupt record")

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, seq uint64, payload []byte) []byte {
	body := make([]byte, 0, binary.MaxVarintLen64+len(payload))
	body = binary.AppendUvarint(body, seq)
	body = append(body, payload...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, castagnoli))
}

// decodeFrame parses the first frame of data. It returns the record's
// sequence number and payload (aliasing data) and the total bytes consumed.
// Any truncation or checksum mismatch yields errTorn.
func decodeFrame(data []byte) (seq uint64, payload []byte, n int, err error) {
	if len(data) < 4 {
		return 0, nil, 0, fmt.Errorf("%w: short length prefix", errTorn)
	}
	bodyLen := binary.LittleEndian.Uint32(data)
	if bodyLen == 0 || bodyLen > maxRecordSize {
		return 0, nil, 0, fmt.Errorf("%w: implausible body length %d", errTorn, bodyLen)
	}
	total := 4 + int(bodyLen) + 4
	if len(data) < total {
		return 0, nil, 0, fmt.Errorf("%w: truncated body", errTorn)
	}
	body := data[4 : 4+bodyLen]
	sum := binary.LittleEndian.Uint32(data[4+bodyLen:])
	if crc32.Checksum(body, castagnoli) != sum {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", errTorn)
	}
	seq, vn := binary.Uvarint(body)
	if vn <= 0 {
		return 0, nil, 0, fmt.Errorf("%w: bad sequence varint", errTorn)
	}
	return seq, body[vn:], total, nil
}
