// Time travel over a DOEM history: historical snapshots (Section 3.2) and
// the paper's Section 4.2.2 virtual <at T> annotations, demonstrated on a
// synthetic evolving restaurant guide.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/guidegen"
	"repro/internal/timestamp"
)

func main() {
	// A 20-restaurant guide evolving for 10 daily steps from 1Jan97.
	initial, history := guidegen.GenerateHistory(42, 20, 10, 6)
	cdb, err := core.FromHistory("guide", initial, history)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Snapshot sizes over time (Section 3.2's O_t(D)) ==")
	for _, day := range []string{"31Dec96", "2Jan97", "5Jan97", "8Jan97", "11Jan97"} {
		t := timestamp.MustParse(day)
		snap := cdb.SnapshotAt(t)
		fmt.Printf("  %-8s %3d restaurants, %3d nodes\n",
			day, len(snap.OutLabeled(snap.Root(), "restaurant")), snap.NumNodes())
	}
	cur := cdb.Current()
	fmt.Printf("  %-8s %3d restaurants, %3d nodes\n",
		"today", len(cur.OutLabeled(cur.Root(), "restaurant")), cur.NumNodes())

	fmt.Println("\n== Virtual annotations: the guide as of 3Jan97, in one query ==")
	res, err := cdb.Query(`select N from guide.<at 3Jan97>restaurant R, R.name N`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restaurants listed on 3Jan97: %d\n", res.Len())

	fmt.Println("\n== Value history of every updated price ==")
	res, err = cdb.Query(`select N, T, OV, NV
		from guide.restaurant R, R.name N, R.price<upd at T from OV to NV>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\n== Restaurants present then but gone today ==")
	// Objects live at 3Jan97 whose root arc has since been removed.
	res, err = cdb.Query(`select N, T from guide.<rem at T>restaurant R, R.name N`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	// The reconstructed history round-trips (Section 3.2's H(D)).
	h := cdb.History()
	replay := cdb.SnapshotAt(timestamp.NegInf)
	if err := h.Apply(replay); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nH(D) has %d steps; replaying it over O_0(D) reproduces the current snapshot: %v\n",
		len(h), replay.Equal(cdb.Current()))
}
