package qss

import (
	"time"

	"repro/internal/timestamp"
)

// Health is a subscription's poll-health state. The scheduler drives the
// machine from consecutive poll outcomes:
//
//	Healthy    --failures >= DegradedAfter-->  Degraded
//	Degraded   --failures >= SuspendAfter-->   Suspended
//	Suspended  --first success-->              Recovering
//	Recovering --successes >= RecoverAfter-->  Healthy
//	Recovering --any failure-->                Suspended
//
// A suspended subscription is not dropped: its accumulated DOEM history
// keeps serving filter queries and History calls (graceful degradation),
// and polling continues at the slower Probe cadence until the source
// answers again.
type Health int

// Health states, ordered from best to worst-but-probing.
const (
	Healthy Health = iota
	Degraded
	Suspended
	Recovering
)

// String implements fmt.Stringer; the forms travel on the wire.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Suspended:
		return "suspended"
	case Recovering:
		return "recovering"
	}
	return "unknown"
}

// RetryPolicy controls poll retry, backoff and the health thresholds.
// Durations are rounded to the history time domain's second resolution;
// see DefaultRetryPolicy for the zero-value substitutions.
type RetryPolicy struct {
	// Initial is the backoff after the first failure (min 1s).
	Initial time.Duration
	// Max caps the exponential backoff.
	Max time.Duration
	// Multiplier grows the backoff per consecutive failure (min 1).
	Multiplier float64
	// Jitter adds a uniform random extra of up to Jitter*backoff, in
	// whole seconds, to decorrelate retries. 0 disables jitter.
	Jitter float64
	// DegradedAfter is the consecutive-failure count entering Degraded.
	DegradedAfter int
	// SuspendAfter is the consecutive-failure count entering Suspended.
	SuspendAfter int
	// Probe is the poll cadence while Suspended.
	Probe time.Duration
	// RecoverAfter is the consecutive-success count leaving Recovering.
	RecoverAfter int
}

// DefaultRetryPolicy returns the production defaults.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Initial:       time.Second,
		Max:           time.Minute,
		Multiplier:    2,
		Jitter:        0.25,
		DegradedAfter: 3,
		SuspendAfter:  8,
		Probe:         time.Minute,
		RecoverAfter:  2,
	}
}

// withDefaults substitutes defaults for zero fields and clamps the rest
// to sane bounds.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.Initial <= 0 {
		p.Initial = d.Initial
	}
	if p.Initial < time.Second {
		p.Initial = time.Second // timestamp resolution floor
	}
	if p.Max <= 0 {
		p.Max = d.Max
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	if p.Multiplier < 1 {
		if p.Multiplier == 0 {
			p.Multiplier = d.Multiplier
		} else {
			p.Multiplier = 1
		}
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.DegradedAfter <= 0 {
		p.DegradedAfter = d.DegradedAfter
	}
	if p.SuspendAfter <= 0 {
		p.SuspendAfter = d.SuspendAfter
	}
	if p.SuspendAfter < p.DegradedAfter {
		p.SuspendAfter = p.DegradedAfter
	}
	if p.Probe < time.Second {
		if p.Probe <= 0 {
			p.Probe = d.Probe
		} else {
			p.Probe = time.Second
		}
	}
	if p.RecoverAfter <= 0 {
		p.RecoverAfter = d.RecoverAfter
	}
	return p
}

// HealthEvent reports one health-state transition.
type HealthEvent struct {
	Subscription string
	From, To     Health
	// At is the polling time of the attempt that caused the transition.
	At timestamp.Time
	// Err is the poll error for failure-driven transitions, nil otherwise.
	Err error
	// Failures is the consecutive-failure count after the attempt.
	Failures int
}

// healthTracker runs the state machine for one subscription. Callers
// synchronize access (the scheduler guards it with its mutex).
type healthTracker struct {
	pol       RetryPolicy
	state     Health
	failures  int // consecutive failures
	successes int // consecutive successes since entering Recovering
}

// onFailure records a failed poll; changed reports a state transition.
func (h *healthTracker) onFailure() (from, to Health, changed bool) {
	h.failures++
	h.successes = 0
	from = h.state
	switch h.state {
	case Suspended:
		// Stay suspended; keep probing.
	case Recovering:
		h.state = Suspended
	default:
		if h.failures >= h.pol.SuspendAfter {
			h.state = Suspended
		} else if h.failures >= h.pol.DegradedAfter {
			h.state = Degraded
		}
	}
	return from, h.state, from != h.state
}

// onSuccess records a successful poll; changed reports a state transition.
func (h *healthTracker) onSuccess() (from, to Health, changed bool) {
	h.failures = 0
	from = h.state
	switch h.state {
	case Degraded:
		h.state = Healthy
	case Suspended:
		h.successes = 1
		h.state = Recovering
		if h.successes >= h.pol.RecoverAfter {
			h.state = Healthy
		}
	case Recovering:
		h.successes++
		if h.successes >= h.pol.RecoverAfter {
			h.state = Healthy
		}
	}
	return from, h.state, from != h.state
}
