package qss

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oem"
	"repro/internal/oemio"
	"repro/internal/timestamp"
)

// Client is the QSC side of Figure 7: it connects to a QSS server, manages
// subscriptions, and receives notifications. A Client is bound to one
// connection; see RobustClient for automatic reconnection.
type Client struct {
	c    net.Conn
	enc  *json.Encoder
	idle atomic.Int64 // read-idle timeout, ns; 0 = none

	mu       sync.Mutex
	pending  map[int64]chan *Response
	nextSeq  int64
	notifCh  chan ClientNotification
	healthCh chan ClientHealth
	readErr  error
	done     chan struct{}
}

// ClientNotification is a decoded server push.
type ClientNotification struct {
	Subscription string
	At           timestamp.Time
	// Seq is the server's per-subscription notification sequence; used
	// to dedupe replays across reconnects (0 from pre-sequence servers).
	Seq    uint64
	Answer *oem.Database
}

// ClientHealth is a decoded subscription health-transition push.
type ClientHealth struct {
	Subscription string
	From, To     string
	At           timestamp.Time
	Error        string
	Failures     int
}

// SubSpec captures the arguments of Subscribe so a subscription can be
// re-established after a reconnect.
type SubSpec struct {
	Name, Source, SourceName, Polling, Filter, Freq string
}

// RedirectError reports a request rejected by a read replica. Addr is the
// primary's advertised address ("" when the replica does not know one
// yet); RobustClient follows it automatically.
type RedirectError struct {
	Addr string
	Msg  string
}

// Error implements error.
func (e *RedirectError) Error() string {
	if e.Addr == "" {
		return fmt.Sprintf("qss: server: %s", e.Msg)
	}
	return fmt.Sprintf("qss: server: %s (primary at %s)", e.Msg, e.Addr)
}

// Dial connects to a QSS server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	cl := &Client{
		c:        nc,
		enc:      json.NewEncoder(nc),
		pending:  make(map[int64]chan *Response),
		notifCh:  make(chan ClientNotification, 256),
		healthCh: make(chan ClientHealth, 16),
		done:     make(chan struct{}),
	}
	go cl.readLoop()
	return cl
}

// Notifications returns the channel of pushed notifications. It is closed
// when the connection ends.
func (cl *Client) Notifications() <-chan ClientNotification { return cl.notifCh }

// Health returns the channel of pushed health transitions. It is closed
// when the connection ends.
func (cl *Client) Health() <-chan ClientHealth { return cl.healthCh }

// Done is closed when the connection ends.
func (cl *Client) Done() <-chan struct{} { return cl.done }

// Err returns the read error that ended the connection, if any.
func (cl *Client) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.readErr
}

// SetIdleTimeout arms a rolling read deadline: if the server sends
// nothing (not even heartbeats) for d, the connection is torn down. The
// deadline takes effect immediately, including for an in-flight read.
func (cl *Client) SetIdleTimeout(d time.Duration) {
	cl.idle.Store(int64(d))
	if d > 0 {
		_ = cl.c.SetReadDeadline(time.Now().Add(d))
	} else {
		_ = cl.c.SetReadDeadline(time.Time{})
	}
}

// Close terminates the connection.
func (cl *Client) Close() error { return cl.c.Close() }

func (cl *Client) readLoop() {
	dec := json.NewDecoder(bufio.NewReader(cl.c))
	for {
		if d := cl.idle.Load(); d > 0 {
			_ = cl.c.SetReadDeadline(time.Now().Add(time.Duration(d)))
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			cl.mu.Lock()
			cl.readErr = err
			for _, ch := range cl.pending {
				close(ch)
			}
			cl.pending = make(map[int64]chan *Response)
			cl.mu.Unlock()
			close(cl.notifCh)
			close(cl.healthCh)
			close(cl.done)
			return
		}
		if resp.Heartbeat {
			continue // keep-alive; the deadline reset above is the point
		}
		if resp.Health != nil {
			h := resp.Health
			at, err := timestamp.Parse(h.At)
			if err != nil {
				continue
			}
			select {
			case cl.healthCh <- ClientHealth{
				Subscription: h.Subscription,
				From:         h.From,
				To:           h.To,
				At:           at,
				Error:        h.Error,
				Failures:     h.Failures,
			}:
			default:
				// Slow consumer: drop rather than stall the read loop.
			}
			continue
		}
		if resp.Notification != nil {
			n := resp.Notification
			at, err := timestamp.Parse(n.At)
			if err != nil {
				continue
			}
			answer, err := oemio.Unmarshal(n.Answer)
			if err != nil {
				continue
			}
			select {
			case cl.notifCh <- ClientNotification{Subscription: n.Subscription, At: at, Seq: n.Seq, Answer: answer}:
			default:
				// Slow consumer: drop rather than stall the read loop.
			}
			continue
		}
		if resp.Seq == 0 {
			continue // gap notices and other unmatched pushes
		}
		cl.mu.Lock()
		ch := cl.pending[resp.Seq]
		delete(cl.pending, resp.Seq)
		cl.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

func (cl *Client) call(req *Request) (*Response, error) {
	cl.mu.Lock()
	if cl.readErr != nil {
		err := cl.readErr
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextSeq++
	seq := cl.nextSeq
	ch := make(chan *Response, 1)
	cl.pending[seq] = ch
	// Encode while holding the lock: the server numbers responses by
	// arrival order, so our sequence assignment must match the wire order.
	err := cl.enc.Encode(req)
	cl.mu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, errors.New("qss: connection closed")
	}
	if resp.Error != "" {
		if resp.Redirect != "" {
			return nil, &RedirectError{Addr: resp.Redirect, Msg: resp.Error}
		}
		return nil, fmt.Errorf("qss: server: %s", resp.Error)
	}
	return resp, nil
}

// Subscribe creates a subscription on the server. source names a
// server-side source; freq may be empty for manual polling.
func (cl *Client) Subscribe(name, source, sourceName, polling, filter, freq string) error {
	_, err := cl.subscribe(SubSpec{
		Name: name, Source: source, SourceName: sourceName,
		Polling: polling, Filter: filter, Freq: freq,
	}, false)
	return err
}

// subscribe issues the subscribe request; resume asks the server to adopt
// an orphaned subscription of the same name, replaying buffered pushes.
// resumed reports whether an orphan was in fact adopted — false means a
// fresh subscription whose notification sequence restarts from 1.
func (cl *Client) subscribe(sp SubSpec, resume bool) (resumed bool, err error) {
	resp, err := cl.call(&Request{
		Op: "subscribe", Name: sp.Name, Source: sp.Source, SourceName: sp.SourceName,
		Polling: sp.Polling, Filter: sp.Filter, Freq: sp.Freq, Resume: resume,
	})
	if err != nil {
		return false, err
	}
	return resp.Resumed, nil
}

// Unsubscribe removes a subscription.
func (cl *Client) Unsubscribe(name string) error {
	_, err := cl.call(&Request{Op: "unsubscribe", Name: name})
	return err
}

// List returns subscription names.
func (cl *Client) List() ([]string, error) {
	resp, err := cl.call(&Request{Op: "list"})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Poll triggers a manual poll at the given time ("" = server clock now) —
// the paper's explicit-request mode.
func (cl *Client) Poll(name, at string) error {
	_, err := cl.call(&Request{Op: "poll", Name: name, Time: at})
	return err
}

// Ping round-trips a no-op request, refreshing the server's idle timer
// for this connection and verifying liveness.
func (cl *Client) Ping() error {
	_, err := cl.call(&Request{Op: "ping"})
	return err
}

// Status reports the server's replication role and staleness bound; nil
// on servers without replication enabled.
func (cl *Client) Status() (*WireReplStatus, error) {
	resp, err := cl.call(&Request{Op: "status"})
	if err != nil {
		return nil, err
	}
	return resp.Repl, nil
}
