package repl

import (
	"time"

	"repro/internal/obs"
)

// Package metrics (cheap no-ops while obs is disabled). Gauge funcs for
// per-node state are registered by the most recently opened node — the
// one-node-per-process deployment shape, same convention as qss.Server.
var (
	mRecordsSent          = obs.NewCounter("repl_records_sent_total")
	mRecordsReceived      = obs.NewCounter("repl_records_received_total")
	mAcksSent             = obs.NewCounter("repl_acks_sent_total")
	mAcksReceived         = obs.NewCounter("repl_acks_received_total")
	mRejectsSent          = obs.NewCounter("repl_rejects_sent_total")
	mRejectsReceived      = obs.NewCounter("repl_rejects_received_total")
	mSnapshotsSent        = obs.NewCounter("repl_snapshots_sent_total")
	mSnapshotsApplied     = obs.NewCounter("repl_snapshots_applied_total")
	mSnapshots            = obs.NewCounter("repl_compactions_total")
	mSnapshotFailures     = obs.NewCounter("repl_snapshot_failures_total")
	mEpochChanges         = obs.NewCounter("repl_epoch_changes_total")
	mFences               = obs.NewCounter("repl_fences_total")
	mApplyRejected        = obs.NewCounter("repl_apply_rejected_total")
	mAckTimeouts          = obs.NewCounter("repl_ack_timeouts_total")
	mAckWaitNs            = obs.NewHistogram("repl_ack_wait_ns")
	mEpochPersistFailures = obs.NewCounter("repl_epoch_persist_failures_total")
	mFollowerConnected    = obs.NewGauge("repl_follower_connected")
)

// registerMetrics installs per-node gauge functions: role, epoch, applied
// and commit sequences, follower count, and replication lag.
func (n *Node) registerMetrics() {
	obs.RegisterGaugeFunc("repl_role", func() int64 {
		return int64(n.Role())
	})
	obs.RegisterGaugeFunc("repl_epoch", func() int64 {
		return int64(n.Epoch())
	})
	obs.RegisterGaugeFunc("repl_applied_seq", func() int64 {
		return int64(n.Status().Applied)
	})
	obs.RegisterGaugeFunc("repl_commit_seq", func() int64 {
		return int64(n.Status().Commit)
	})
	obs.RegisterGaugeFunc("repl_followers", func() int64 {
		return int64(n.Status().Followers)
	})
	obs.RegisterGaugeFunc("repl_lag_seq", func() int64 {
		return int64(n.Status().LagSeq)
	})
	obs.RegisterGaugeFunc("repl_lag_ns", func() int64 {
		st := n.Status()
		if st.Role != RoleFollower || st.LastContact.IsZero() {
			return 0
		}
		return int64(time.Since(st.LastContact))
	})
}
