package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x").End()
	tr.StartSpan("y").EndNote("n=%d", 1)
	tr.Add("s", 3)
	if tr.Spans() != nil || tr.Stats() != nil || tr.String() != "" {
		t.Error("nil trace not inert")
	}
}

func TestTraceSpansAndStats(t *testing.T) {
	tr := NewTrace("select x")
	sp := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	sp.EndNote("cache=%s", "miss")
	tr.StartSpan("eval").End()
	tr.Add("bindings", 5)
	tr.Add("bindings", 2)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Name != "parse" || spans[0].Note != "cache=miss" {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if spans[0].Dur < time.Millisecond {
		t.Errorf("parse dur = %v", spans[0].Dur)
	}
	if got := tr.Stats()["bindings"]; got != 7 {
		t.Errorf("bindings = %d", got)
	}
	out := tr.String()
	for _, want := range []string{"trace: select x", "parse", "eval", "stat bindings", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("q")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.StartSpan("worker").EndNote("w=%d", w)
				tr.Add("n", 1)
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Errorf("spans = %d", got)
	}
	if got := tr.Stats()["n"]; got != 800 {
		t.Errorf("n = %d", got)
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Error("background context should carry no trace")
	}
	if TraceFrom(nil) != nil {
		t.Error("nil context should carry no trace")
	}
	tr := NewTrace("q")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("trace lost in context")
	}
	if TraceFrom(WithTrace(nil, tr)) != tr {
		t.Error("WithTrace(nil) should still attach")
	}
}
