package qss

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/oemio"
	"repro/internal/repl"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// The QSS wire protocol (Figure 7's QSS/QSC split) is JSON-lines over TCP:
// the client sends one request object per line, the server replies with one
// response per request and pushes notification, health and heartbeat
// objects asynchronously. See docs/qss-protocol.md.

// Request is a client -> server message.
type Request struct {
	Op         string `json:"op"` // subscribe | unsubscribe | list | poll | ping | status
	Name       string `json:"name,omitempty"`
	Source     string `json:"source,omitempty"` // server-side source name
	SourceName string `json:"source_name,omitempty"`
	Polling    string `json:"polling,omitempty"`
	Filter     string `json:"filter,omitempty"`
	Freq       string `json:"freq,omitempty"`
	Time       string `json:"time,omitempty"` // manual poll time
	// Resume, on subscribe, adopts an orphaned subscription of the same
	// name (left behind by a dropped connection within its linger window)
	// instead of failing with a duplicate error. Buffered notifications
	// are replayed on adoption.
	Resume bool `json:"resume,omitempty"`
}

// Response is a server -> client message. Exactly one of the payload
// fields is set, per the request op; Notification, Health, Heartbeat and
// Gap are used for asynchronous pushes (Seq 0).
type Response struct {
	Seq          int64             `json:"seq"`
	OK           bool              `json:"ok"`
	Error        string            `json:"error,omitempty"`
	Names        []string          `json:"names,omitempty"`
	Notification *WireNotification `json:"notification,omitempty"`
	// Health reports a subscription health-state transition.
	Health *WireHealth `json:"health,omitempty"`
	// Heartbeat marks an idle keep-alive push carrying nothing else.
	Heartbeat bool `json:"heartbeat,omitempty"`
	// Gap, on resume, counts notifications dropped while the
	// subscription was orphaned and its replay buffer overflowed.
	Gap int `json:"gap,omitempty"`
	// Resumed, on a subscribe ack, reports that an orphaned subscription
	// was adopted (notification sequence continues) rather than a fresh
	// one created (sequence restarts from 1, e.g. after a server
	// restart) — clients reset their dedupe watermark when false.
	Resumed bool `json:"resumed,omitempty"`
	// Redirect, on an error response from a replica, carries the
	// primary's advertised address: clients should reconnect there.
	Redirect string `json:"redirect,omitempty"`
	// Repl answers a status request on a replicated server.
	Repl *WireReplStatus `json:"repl,omitempty"`
}

// WireReplStatus is a replicated server's status (op "status"): its role
// and the staleness bound a read replica serves under — every record
// through Applied is reflected in reads, LagSeq records are known to
// exist beyond that, and AppliedAt timestamps the newest applied record.
type WireReplStatus struct {
	Role      string `json:"role"`
	Epoch     uint64 `json:"epoch"`
	Fenced    bool   `json:"fenced,omitempty"`
	Applied   uint64 `json:"applied"`
	Commit    uint64 `json:"commit"`
	LagSeq    uint64 `json:"lag_seq"`
	AppliedAt string `json:"applied_at,omitempty"`
	Primary   string `json:"primary,omitempty"`
}

// WireNotification is a notification serialized for the wire.
type WireNotification struct {
	Subscription string `json:"subscription"`
	At           string `json:"at"`
	// Seq is the server-assigned per-subscription notification sequence
	// (1, 2, ...); reconnecting clients dedupe replayed notifications
	// by it.
	Seq    uint64          `json:"nseq,omitempty"`
	Answer json.RawMessage `json:"answer"`
}

// WireHealth is a health-state transition serialized for the wire.
type WireHealth struct {
	Subscription string `json:"subscription"`
	From         string `json:"from"`
	To           string `json:"to"`
	At           string `json:"at"`
	Error        string `json:"error,omitempty"`
	Failures     int    `json:"failures,omitempty"`
}

// ServerConfig tunes the server's fault-tolerance behavior. The zero
// value reproduces the historical behavior (no deadlines, no heartbeats,
// immediate subscription cleanup on disconnect) with sane message-size
// and buffer defaults.
type ServerConfig struct {
	// Retry drives poll retry/backoff and subscription health; zero
	// fields take DefaultRetryPolicy values.
	Retry RetryPolicy
	// Seed seeds deterministic retry jitter.
	Seed int64
	// HeartbeatInterval, when positive, pushes an idle keep-alive to
	// every connection at this cadence so clients can detect dead
	// servers via a read deadline.
	HeartbeatInterval time.Duration
	// IdleTimeout, when positive, drops connections that send nothing
	// for this long. Clients must ping (see Client.Ping) at a shorter
	// interval to stay connected.
	IdleTimeout time.Duration
	// WriteTimeout, when positive, bounds each message write so one
	// stalled client cannot wedge deliveries.
	WriteTimeout time.Duration
	// MaxMessage bounds a request line's size in bytes (default 1 MiB).
	// Oversized lines get an error response and the connection
	// resynchronizes at the next newline.
	MaxMessage int
	// Linger keeps a disconnected client's subscriptions alive (polling,
	// accumulating history, buffering notifications) for this long so a
	// reconnecting client can resume them. 0 drops them immediately.
	Linger time.Duration
	// NotifyBuffer bounds the per-subscription notification replay
	// buffer while orphaned (default 256; oldest dropped first).
	NotifyBuffer int
}

const (
	defaultMaxMessage   = 1 << 20
	defaultNotifyBuffer = 256
)

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxMessage <= 0 {
		c.MaxMessage = defaultMaxMessage
	}
	if c.NotifyBuffer <= 0 {
		c.NotifyBuffer = defaultNotifyBuffer
	}
	return c
}

// Server hosts a Service over TCP. Sources are registered server-side by
// name; clients reference them in subscribe requests.
type Server struct {
	svc     *Service
	sched   *Scheduler
	clock   Clock
	sources map[string]wrapper.Source
	cfg     ServerConfig
	// repl, when set via EnableReplication, gates mutating ops on the
	// node's role: replicas redirect clients to the primary's advertised
	// address, and promotion takes effect on the next request.
	repl *repl.Node

	mu      sync.Mutex
	subs    map[string]*subRecord // subscription -> ownership record
	conns   map[*conn]struct{}
	ln      net.Listener
	closing bool
	wg      sync.WaitGroup
}

// subRecord tracks one subscription's connection ownership and delivery
// state. Guarded by Server.mu.
type subRecord struct {
	owner     *conn // nil while orphaned
	scheduled bool  // a frequency poller is running
	nseq      uint64
	buf       []*Response // pushes buffered while orphaned
	dropped   int         // pushes evicted from buf
	linger    *time.Timer // orphan expiry
}

// buffer queues a push for replay on resume, evicting the oldest beyond
// the cap.
func (r *subRecord) buffer(resp *Response, cap int) {
	if len(r.buf) >= cap {
		r.buf = r.buf[1:]
		r.dropped++
	}
	r.buf = append(r.buf, resp)
}

type conn struct {
	c            net.Conn
	enc          *json.Encoder
	writeTimeout time.Duration
	mu           sync.Mutex
}

func (c *conn) send(r *Response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeTimeout > 0 {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	return c.enc.Encode(r)
}

// NewServer builds a QSS server over the given sources, polling with
// clock, with the default (zero) ServerConfig.
func NewServer(sources map[string]wrapper.Source, clock Clock) *Server {
	return NewServerWith(sources, clock, ServerConfig{})
}

// NewServerWith builds a QSS server with explicit fault-tolerance
// configuration.
func NewServerWith(sources map[string]wrapper.Source, clock Clock, cfg ServerConfig) *Server {
	s := &Server{
		clock:   clock,
		sources: sources,
		cfg:     cfg.withDefaults(),
		subs:    make(map[string]*subRecord),
		conns:   make(map[*conn]struct{}),
	}
	s.svc = NewService(s.deliver)
	s.sched = NewSchedulerWith(s.svc, clock, SchedulerOptions{
		Policy:   cfg.Retry,
		Seed:     cfg.Seed,
		OnHealth: s.deliverHealth,
	})
	// Computed gauges read server state at snapshot time (the registry
	// evaluates them outside its lock, so taking s.mu here is safe). A
	// later server re-registers the names, which is the right behavior for
	// the one-server-per-process deployments cmd/qss runs.
	obs.RegisterGaugeFunc("qss_linger_buffered", s.lingerBuffered)
	obs.RegisterGaugeFunc("qss_orphaned_subscriptions", func() int64 {
		return int64(len(s.Orphaned()))
	})
	return s
}

// lingerBuffered reports the total number of pushes buffered for orphaned
// subscriptions awaiting resume — the linger-buffer depth gauge.
func (s *Server) lingerBuffered() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, rec := range s.subs {
		if rec.owner == nil {
			n += int64(len(rec.buf))
		}
	}
	return n
}

// HealthStates reports the health state of every scheduled subscription
// as strings, for the admin /healthz endpoint.
func (s *Server) HealthStates() map[string]string {
	states := s.sched.States()
	out := make(map[string]string, len(states))
	for name, h := range states {
		out[name] = h.String()
	}
	return out
}

// Service exposes the underlying service (for in-process use and tests).
func (s *Server) Service() *Service { return s.svc }

// Health reports the poll-health state of a scheduled subscription.
func (s *Server) Health(name string) Health { return s.sched.Health(name) }

// Orphaned lists subscriptions currently in their linger window (owned by
// no connection), sorted.
func (s *Server) Orphaned() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name, rec := range s.subs {
		if rec.owner == nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// EnableWAL turns on per-subscription write-ahead logging (see
// Service.EnableWAL). Call before serving.
func (s *Server) EnableWAL(dir string, opt *wal.Options) error {
	return s.svc.EnableWAL(dir, opt)
}

// EnableSegments turns on per-subscription segmented history storage (see
// Service.EnableSegments). Call before serving.
func (s *Server) EnableSegments(dir string, opt *wal.Options, pol *segment.Policy) error {
	return s.svc.EnableSegments(dir, opt, pol)
}

// EnableReplication routes every poll through node (see
// Service.EnableReplication) and gates the wire protocol on the node's
// role: while the node is not primary, mutating ops (subscribe,
// unsubscribe, poll) fail with a redirect to the primary's advertised
// address, and read ops (list, status, ping) keep serving. Call before
// serving.
func (s *Server) EnableReplication(node *repl.Node) error {
	if err := s.svc.EnableReplication(node); err != nil {
		return err
	}
	s.mu.Lock()
	s.repl = node
	s.mu.Unlock()
	return nil
}

// replNode returns the replication node, nil when replication is off.
func (s *Server) replNode() *repl.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl
}

// notPrimary builds the redirect response a replica answers mutating ops
// with; nil when this server may accept the op.
func (s *Server) notPrimary() *Response {
	node := s.replNode()
	if node == nil || node.Role() == repl.RolePrimary {
		return nil
	}
	return &Response{
		Error:    "qss: not primary (read replica)",
		Redirect: node.PrimaryAddr(),
	}
}

// deliver pushes a notification to the owning connection, or buffers it
// for replay while the subscription is orphaned.
func (s *Server) deliver(n Notification) {
	answer, err := oemio.Marshal(n.Answer)
	if err != nil {
		return
	}
	s.mu.Lock()
	rec := s.subs[n.Subscription]
	if rec == nil {
		s.mu.Unlock()
		return
	}
	rec.nseq++
	resp := &Response{OK: true, Notification: &WireNotification{
		Subscription: n.Subscription,
		At:           n.At.String(),
		Seq:          rec.nseq,
		Answer:       answer,
	}}
	owner := rec.owner
	if owner == nil {
		rec.buffer(resp, s.cfg.NotifyBuffer)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	_ = owner.send(resp)
}

// deliverHealth pushes a health transition to the owning connection, or
// buffers it alongside notifications while orphaned.
func (s *Server) deliverHealth(ev HealthEvent) {
	wh := &WireHealth{
		Subscription: ev.Subscription,
		From:         ev.From.String(),
		To:           ev.To.String(),
		At:           ev.At.String(),
		Failures:     ev.Failures,
	}
	if ev.Err != nil {
		wh.Error = ev.Err.Error()
	}
	resp := &Response{OK: true, Health: wh}
	s.mu.Lock()
	rec := s.subs[ev.Subscription]
	if rec == nil {
		s.mu.Unlock()
		return
	}
	owner := rec.owner
	if owner == nil {
		rec.buffer(resp, s.cfg.NotifyBuffer)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	_ = owner.send(resp)
}

// Serve accepts connections on ln until Close. Temporary accept errors
// (in the net.Error sense: EMFILE, ECONNABORTED, ...) are retried with
// capped backoff instead of wedging the server.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	closing := s.closing
	s.mu.Unlock()
	if closing {
		ln.Close()
		return
	}
	const (
		minAcceptBackoff = 5 * time.Millisecond
		maxAcceptBackoff = time.Second
	)
	backoff := minAcceptBackoff
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isClosing() || errors.Is(err, net.ErrClosed) {
				return
			}
			if isTemporary(err) {
				time.Sleep(backoff)
				backoff *= 2
				if backoff > maxAcceptBackoff {
					backoff = maxAcceptBackoff
				}
				continue
			}
			return
		}
		backoff = minAcceptBackoff
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(nc)
		}()
	}
}

func (s *Server) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// isTemporary reports whether err advertises itself as transient. The
// check uses a local interface so it keeps working however the stdlib
// evolves net.Error.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	if errors.As(err, &te) {
		return te.Temporary()
	}
	return false
}

// Close stops the server immediately: listener, pollers, connections,
// then the service (flushing and closing any write-ahead logs).
func (s *Server) Close() { s.Shutdown(0) }

// Shutdown stops the server gracefully: stop accepting, stop pollers,
// then give connected clients up to drain to disconnect on their own
// before severing them. The service (and its write-ahead logs) is closed
// last, after every in-flight delivery has finished.
func (s *Server) Shutdown(drain time.Duration) {
	s.mu.Lock()
	alreadyClosing := s.closing
	s.closing = true
	ln := s.ln
	var timers []*time.Timer
	for _, rec := range s.subs {
		if rec.linger != nil {
			timers = append(timers, rec.linger)
			rec.linger = nil
		}
	}
	s.mu.Unlock()
	if alreadyClosing {
		return
	}
	for _, t := range timers {
		t.Stop()
	}
	if ln != nil {
		ln.Close()
	}
	s.sched.StopAll()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if drain > 0 {
		select {
		case <-done:
		case <-time.After(drain):
		}
	}
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.c.Close()
	}
	<-done
	s.svc.Close()
}

func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	cn := &conn{
		c:            nc,
		enc:          json.NewEncoder(&countingWriter{w: nc, c: mWireSent}),
		writeTimeout: s.cfg.WriteTimeout,
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	s.conns[cn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cn)
		s.mu.Unlock()
	}()

	// Idle heartbeats let clients with a read deadline detect a dead
	// server (and keep middleboxes from reaping quiet connections).
	if hb := s.cfg.HeartbeatInterval; hb > 0 {
		stopHB := make(chan struct{})
		defer close(stopHB)
		go func() {
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-stopHB:
					return
				case <-t.C:
					if cn.send(&Response{OK: true, Heartbeat: true}) != nil {
						return
					}
				}
			}
		}()
	}

	var owned []string
	defer func() {
		// The client is gone: orphan its subscriptions for the linger
		// window (resumable) or drop them immediately.
		s.releaseOwned(cn, owned)
	}()

	br := bufio.NewReader(&countingReader{r: nc, c: mWireRecv})
	var seq int64
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		line, tooLong, err := readLine(br, s.cfg.MaxMessage)
		if err != nil {
			return
		}
		if !tooLong && len(bytes.TrimSpace(line)) == 0 {
			continue // blank lines don't consume a sequence number
		}
		seq++
		var resp *Response
		if tooLong {
			resp = &Response{Error: fmt.Sprintf("qss: request exceeds %d-byte limit", s.cfg.MaxMessage)}
		} else {
			var req Request
			if uerr := json.Unmarshal(line, &req); uerr != nil {
				resp = &Response{Error: "qss: malformed request: " + uerr.Error()}
			} else {
				resp = s.dispatchSafe(cn, &req, &owned)
			}
		}
		resp.Seq = seq
		if cn.send(resp) != nil {
			return
		}
	}
}

// readLine reads one newline-terminated line, enforcing the size limit.
// An oversized line is consumed through its terminator and reported via
// tooLong, so the connection resynchronizes at the next line instead of
// dying.
func readLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	for {
		frag, err := br.ReadSlice('\n')
		if len(frag) > 0 && !tooLong {
			line = append(line, frag...)
			if len(line) > max {
				tooLong, line = true, nil
			}
		}
		switch err {
		case nil:
			if tooLong {
				return nil, true, nil
			}
			return bytes.TrimSuffix(line, []byte("\n")), false, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return nil, tooLong, err
		}
	}
}

// releaseOwned detaches a closed connection from its subscriptions.
func (s *Server) releaseOwned(cn *conn, owned []string) {
	for _, name := range owned {
		s.mu.Lock()
		rec := s.subs[name]
		if rec == nil || rec.owner != cn {
			// Unsubscribed, or already resumed by a newer connection.
			s.mu.Unlock()
			continue
		}
		rec.owner = nil
		if s.cfg.Linger > 0 && !s.closing {
			nm := name
			rec.linger = time.AfterFunc(s.cfg.Linger, func() { s.expire(nm) })
			s.mu.Unlock()
			continue
		}
		delete(s.subs, name)
		s.mu.Unlock()
		s.drop(name)
	}
}

// expire finalizes an orphaned subscription whose linger window lapsed
// without a resume.
func (s *Server) expire(name string) {
	s.mu.Lock()
	rec := s.subs[name]
	if rec == nil || rec.owner != nil {
		s.mu.Unlock()
		return
	}
	delete(s.subs, name)
	s.mu.Unlock()
	s.drop(name)
}

func (s *Server) drop(name string) {
	s.sched.Stop(name)
	_ = s.svc.Unsubscribe(name)
}

// dispatchSafe contains panics from request handling (a panicking source
// wrapper, a packaging bug) to an error response on this request, keeping
// the connection and the server alive.
func (s *Server) dispatchSafe(cn *conn, req *Request, owned *[]string) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Error: fmt.Sprintf("qss: internal error: %v", r)}
		}
	}()
	return s.dispatch(cn, req, owned)
}

func (s *Server) dispatch(cn *conn, req *Request, owned *[]string) *Response {
	fail := func(err error) *Response { return &Response{Error: err.Error()} }
	switch req.Op {
	case "subscribe", "unsubscribe", "poll":
		// Mutating ops run on the primary only; replicas redirect.
		if resp := s.notPrimary(); resp != nil {
			return resp
		}
	}
	switch req.Op {
	case "subscribe":
		if req.Resume {
			if resp, handled := s.tryResume(cn, req, owned); handled {
				return resp
			}
		}
		src, ok := s.sources[req.Source]
		if !ok {
			return fail(fmt.Errorf("qss: unknown source %q", req.Source))
		}
		sub := Subscription{
			Name:       req.Name,
			SourceName: req.SourceName,
			Source:     src,
			Polling:    req.Polling,
			Filter:     req.Filter,
		}
		if req.Freq != "" {
			f, err := ParseFreq(req.Freq)
			if err != nil {
				return fail(err)
			}
			sub.Freq = f
		}
		if err := s.svc.Subscribe(sub); err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.subs[req.Name] = &subRecord{owner: cn, scheduled: sub.Freq != nil}
		s.mu.Unlock()
		*owned = append(*owned, req.Name)
		if sub.Freq != nil {
			s.sched.Start(req.Name, sub.Freq)
		}
		return &Response{OK: true}
	case "unsubscribe":
		s.mu.Lock()
		if rec := s.subs[req.Name]; rec != nil {
			if rec.linger != nil {
				rec.linger.Stop()
			}
			delete(s.subs, req.Name)
		}
		s.mu.Unlock()
		s.sched.Stop(req.Name)
		if err := s.svc.Unsubscribe(req.Name); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case "list":
		return &Response{OK: true, Names: s.svc.List()}
	case "poll":
		t := s.clock.Now()
		if req.Time != "" {
			var err error
			t, err = timestamp.Parse(req.Time)
			if err != nil {
				return fail(err)
			}
		}
		if _, err := s.svc.Poll(req.Name, t); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	case "ping":
		return &Response{OK: true}
	case "status":
		resp := &Response{OK: true}
		if node := s.replNode(); node != nil {
			st := node.Status()
			resp.Repl = &WireReplStatus{
				Role:      st.Role.String(),
				Epoch:     st.Epoch,
				Fenced:    st.Fenced,
				Applied:   st.Applied,
				Commit:    st.Commit,
				LagSeq:    st.LagSeq,
				AppliedAt: st.AppliedAt.String(),
				Primary:   st.PrimaryAddr,
			}
		}
		return resp
	default:
		return fail(errors.New("qss: unknown op"))
	}
}

// tryResume adopts an orphaned subscription of the same name, replaying
// buffered pushes. handled is false when there is nothing to resume and
// the request should fall through to a fresh subscribe.
func (s *Server) tryResume(cn *conn, req *Request, owned *[]string) (*Response, bool) {
	s.mu.Lock()
	rec := s.subs[req.Name]
	if rec == nil {
		s.mu.Unlock()
		return nil, false
	}
	if rec.owner != nil {
		s.mu.Unlock()
		return &Response{Error: fmt.Sprintf("%v: %q", ErrDuplicate, req.Name)}, true
	}
	if rec.linger != nil {
		rec.linger.Stop()
		rec.linger = nil
	}
	rec.owner = cn
	backlog := rec.buf
	rec.buf = nil
	dropped := rec.dropped
	rec.dropped = 0
	s.mu.Unlock()
	*owned = append(*owned, req.Name)
	if dropped > 0 {
		_ = cn.send(&Response{OK: true, Gap: dropped})
	}
	for _, r := range backlog {
		if cn.send(r) != nil {
			break
		}
	}
	return &Response{OK: true, Resumed: true}, true
}
