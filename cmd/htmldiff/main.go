// Command htmldiff reproduces the paper's change-visualization tool
// (Section 1.1, Figure 1): it compares two versions of an HTML page and
// writes a marked-up copy highlighting insertions, deletions and updates.
//
// Usage:
//
//	htmldiff [-stats] OLD.html NEW.html > marked.html
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/htmldiff"
)

func main() {
	stats := flag.Bool("stats", false, "print change statistics to stderr")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: htmldiff [-stats] OLD.html NEW.html")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *stats); err != nil {
		fmt.Fprintln(os.Stderr, "htmldiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, stats bool) error {
	oldHTML, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newHTML, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	out, err := htmldiff.Markup(string(oldHTML), string(newHTML))
	if err != nil {
		return err
	}
	if stats {
		res, err := htmldiff.Diff(string(oldHTML), string(newHTML))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "htmldiff: %d created, %d updated, %d arcs added, %d arcs removed\n",
			res.Cost.Creates, res.Cost.Updates, res.Cost.Adds, res.Cost.Removes)
	}
	_, err = os.Stdout.WriteString(out)
	return err
}
