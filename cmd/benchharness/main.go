// Command benchharness regenerates every experiment in EXPERIMENTS.md:
// the paper's figures and worked examples as pass/fail checks (F1-F7,
// Q1-Q5), and the quantitative series B1-B8 as formatted tables.
//
// Usage:
//
//	benchharness [-quick]
//	benchharness -json PATH
//	benchharness -check BASELINE.json [-check-out PATH]
//
// With -json, the harness instead runs a curated testing.Benchmark suite
// (query evaluation with observability off and on, parallel evaluation,
// the cost-based planner's selective-join headline, Chorel translation,
// WAL appends, QSS poll cycles) and writes a machine-readable report with
// per-benchmark ns/op, B/op, allocs/op, the measured observability
// overhead, and a metrics snapshot.
//
// With -check, the harness runs the -json suite fresh and compares its
// headline ratio metrics (parallel/planner/index speedups, segment
// flatness factors) against the committed baseline report, exiting
// nonzero on a >25% regression — the CI bench-regression gate.
// -check-out keeps the fresh report for upload as an artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/change"
	"repro/internal/chorel"
	"repro/internal/doem"
	"repro/internal/encoding"
	"repro/internal/guidegen"
	"repro/internal/htmldiff"
	"repro/internal/index"
	"repro/internal/lore"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/oemdiff"
	"repro/internal/qss"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

var (
	quick     = flag.Bool("quick", false, "smaller problem sizes")
	jsonPath  = flag.String("json", "", "run the benchmark suite and write a JSON report to this path")
	checkPath = flag.String("check", "", "run the benchmark suite and fail on >25% headline regression against this baseline report")
	checkOut  = flag.String("check-out", "", "with -check: write the fresh report to this path instead of a temporary file")
)

var failures int

func main() {
	flag.Parse()
	if *checkPath != "" {
		if err := runCheck(*checkPath, *checkOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonPath != "" {
		if err := runJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("DOEM/Chorel reproduction — experiment harness")
	fmt.Println(strings.Repeat("=", 64))

	checkSection()
	extensionChecks()
	b1()
	b2()
	b3()
	b4()
	b5()
	b6()
	b7()
	b8()
	b9()
	b10()
	b11()
	b12()
	b13()
	b14()
	b15()
	b16()

	fmt.Println(strings.Repeat("=", 64))
	if failures > 0 {
		fmt.Printf("FAILED: %d check(s) did not reproduce\n", failures)
		os.Exit(1)
	}
	fmt.Println("all reproduction checks passed")
}

func check(id, what string, ok bool) {
	mark := "ok  "
	if !ok {
		mark = "FAIL"
		failures++
	}
	fmt.Printf("  [%s] %-4s %s\n", mark, id, what)
}

// checkSection reruns the paper's figures and worked examples.
func checkSection() {
	fmt.Println("\n-- Paper figures and worked examples --")

	// F2/F3/F4: the running example and its DOEM database.
	db, ids := guidegen.PaperGuide()
	check("F2", "Figure 2 guide: 2 restaurants, shared parking, cycle",
		len(db.OutLabeled(ids.Guide, "restaurant")) == 2 &&
			db.HasArc(ids.Parking, "nearby-eats", ids.Bangkok))
	d, err := doem.FromHistory(db, guidegen.PaperHistory(ids))
	if err != nil {
		check("F3", "Example 2.3 history applies", false)
		return
	}
	check("F3", "Example 2.3 history applies; 3 restaurants after",
		len(d.Current().OutLabeled(ids.Guide, "restaurant")) == 3)
	check("F4", "Figure 4 DOEM: 8 annotations, removed arc retained",
		d.NumAnnotations() == 8 && d.IsDead(oem.Arc{Parent: ids.Janta, Label: "parking", Child: ids.Parking}))
	check("F4b", "Section 3.2: D is feasible and O_0(D) = O", d.Feasible() && d.Original().Equal(db))

	eng := lorel.NewEngine()
	eng.Register("guide", d)
	run := func(q string) *lorel.Result {
		res, err := eng.Query(q)
		if err != nil {
			fmt.Printf("       query error: %v\n", err)
			return &lorel.Result{}
		}
		return res
	}

	// Q1-Q5.
	r := run(`select guide.restaurant where guide.restaurant.price < 20.5`)
	check("Q1", "Example 4.1 -> exactly Bangkok Cuisine",
		r.Len() == 1 && r.FirstColumnNodes()[0] == ids.Bangkok)
	r = run(`select guide.<add>restaurant`)
	check("Q2", "Example 4.2 -> exactly Hakata",
		r.Len() == 1 && r.FirstColumnNodes()[0] == ids.Hakata)
	r = run(`select guide.<add at T>restaurant where T < 4Jan97`)
	check("Q3", "Example 4.3 -> exactly Hakata", r.Len() == 1 && r.FirstColumnNodes()[0] == ids.Hakata)
	r = run(`select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97 and NV > 15`)
	q4ok := r.Len() == 1
	if q4ok {
		n := r.Values("name")
		t := r.Values("update-time")
		nv := r.Values("new-value")
		q4ok = len(n) == 1 && n[0].Equal(value.Str("Bangkok Cuisine")) &&
			t[0].Equal(value.Time(guidegen.T1)) && nv[0].Equal(value.Int(20))
	}
	check("Q4", "Example 4.4 -> {Bangkok Cuisine, 1Jan97, 20}", q4ok)
	r = run(`select N from guide.restaurant R, R.name N where R.<add at T>price = "moderate" and T >= 1Jan97`)
	check("Q5", "Example 4.5 -> empty on the paper history", r.Len() == 0)

	// F5: translation (Example 5.1) agrees with direct evaluation.
	cdb := chorel.New("guide", d)
	direct, err1 := cdb.Query(`select guide.<add>restaurant`)
	trans, err2 := cdb.QueryTranslated(`select guide.<add>restaurant`)
	agree := err1 == nil && err2 == nil && direct.Len() == trans.Len()
	if agree && direct.Len() == 1 {
		m := cdb.MapToDOEM(trans.FirstColumnNodes())
		agree = len(m) == 1 && m[0] == direct.FirstColumnNodes()[0]
	}
	check("F5", "Section 5: direct and translated strategies agree", agree)
	text, err := chorel.TranslateString(`select N from guide.restaurant R, R.name N where R.<add at T>price = "moderate" and T >= 1Jan97`)
	check("F5b", "Example 5.1 translation uses &price-history/&target/&val",
		err == nil && strings.Contains(text, "&price-history") &&
			strings.Contains(text, "&target") && strings.Contains(text, "&val"))

	// F6: Example 6.1 timeline.
	src, gids := wrapper.NewMutable(mustGuide()), ids
	_ = gids
	svc := qss.NewService(nil)
	err = svc.Subscribe(qss.Subscription{
		Name: "Restaurants", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select Restaurants.restaurant<cre at T> where T > t[-1]`,
	})
	n1, _ := svc.Poll("Restaurants", timestamp.MustParse("30Dec96"))
	n2, _ := svc.Poll("Restaurants", timestamp.MustParse("31Dec96"))
	src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		db.AddArc(db.Root(), "restaurant", r)
		return db.AddArc(r, "name", nm)
	})
	n3, _ := svc.Poll("Restaurants", timestamp.MustParse("1Jan97"))
	check("F6", "Example 6.1: notify {2}, {}, {Hakata}",
		err == nil && n1 != nil && n1.Result.Len() == 2 && n2 == nil && n3 != nil && n3.Result.Len() == 1)

	// F1: htmldiff markup.
	out, err := htmldiff.Markup(
		`<ul><li><b>Janta</b> price 10</li></ul>`,
		`<ul><li><b>Janta</b> price 20</li><li><b>Hakata</b></li></ul>`)
	check("F1", "Figure 1: htmldiff marks insertion and text update",
		err == nil && strings.Contains(out, "hd-ins") && strings.Contains(out, "hd-upd-old"))
}

func mustGuide() *oem.Database {
	db, _ := guidegen.PaperGuide()
	return db
}

// extensionChecks exercises the implemented Section 7 future-work items.
func extensionChecks() {
	fmt.Println("\n-- Section 7 extensions --")

	// X1: ECA triggers.
	db, ids := guidegen.PaperGuide()
	mgr := trigger.NewManager("guide", doem.New(db))
	fired := 0
	err := mgr.Add(trigger.Trigger{
		Name:   "watch",
		Query:  `select NV from guide.restaurant.price<upd at T to NV> where T > t[-1] and NV > 15`,
		Action: func(trigger.Firing) error { fired++; return nil },
	})
	if err == nil {
		err = mgr.Apply(guidegen.T1, change.Set{change.UpdNode{Node: ids.Price, Value: value.Int(20)}})
	}
	check("X1", "ECA trigger fires on qualifying price update", err == nil && fired == 1)

	// X2: the update language compiles to basic change operations.
	eng := lorel.NewEngine()
	eng.Register("guide", lorel.NewOEMGraph(mustGuide()))
	set, err := eng.Update(`update guide.restaurant.price := 25 where guide.restaurant.name = "Janta"`, nil)
	check("X2", "Lorel update statement compiles to one updNode", err == nil && len(set) == 1)

	// X3: history truncation (Section 6.1 space trade).
	fullDB, fids := guidegen.PaperGuide()
	d, err := doem.FromHistory(fullDB, guidegen.PaperHistory(fids))
	ok := err == nil
	if ok {
		td, terr := d.Truncate(guidegen.T2)
		ok = terr == nil && td.NumAnnotations() == 1 && td.Current().Equal(d.Current()) && td.Feasible()
	}
	check("X3", "history truncation keeps later annotations and the snapshot", ok)

	// X4: annotation index answers windowed creation queries.
	ix := lore.BuildAnnotationIndex(d)
	created := ix.CreatedIn(guidegen.T1, guidegen.T2)
	check("X4", "annotation index: one node created in (t1, t2]", len(created) == 1)

	// X5: aggregates.
	aeng := lorel.NewEngine()
	aeng.Register("guide", d)
	res, err := aeng.Query(`select count(guide.restaurant) as n`)
	ok = err == nil && res.Len() == 1
	if ok {
		v := res.Values("n")
		ok = len(v) == 1 && v[0].Equal(value.Int(3))
	}
	check("X5", "aggregate count(guide.restaurant) = 3", ok)
}

// b9 measures matching-diff quality versus the similarity threshold: the
// script cost for a known small evolution (lower is better; the identity
// differ's cost is the floor).
func b9() {
	fmt.Println("\n-- B9: matching-diff threshold ablation (script ops for a small evolution) --")
	ev := guidegen.NewEvolver(5, 200)
	old := ev.DB.Clone()
	ev.Step(12)
	fresh := reID(ev.DB)
	floorSet, err := oemdiff.DiffIdentity(old, ev.DB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  identity floor: %d ops\n", oemdiff.Measure(floorSet).Total())
	fmt.Printf("  %10s %10s\n", "threshold", "ops")
	for _, th := range []float64{0.3, 0.5, 0.7, 0.9} {
		set, err := oemdiff.Diff(old, fresh, &oemdiff.Options{Threshold: th})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %10.1f %10d\n", th, oemdiff.Measure(set).Total())
	}
}

// b10 compares WAL-backed persistence (an append-only log of change sets)
// with full-snapshot rewrites as a history grows: the per-set persistence
// cost, the cost of loading a store (checkpoint + log replay), and the cost
// of a bare crash-recovery scan over the log.
func b10() {
	fmt.Println("\n-- B10: WAL vs snapshot persistence cost vs history length --")
	fmt.Printf("  %8s %14s %14s %12s %12s\n", "steps", "wal-append/op", "snapshot/op", "load", "recovery")
	opt := &wal.Options{Sync: wal.SyncNever}
	for _, steps := range []int{10, 50, scale(200)} {
		initial, h := guidegen.GenerateHistory(2, 100, steps, 8)
		if len(h) == 0 {
			continue
		}

		perOp := func(s *lore.Store) time.Duration {
			if err := s.PutDOEM("guide", doem.New(initial)); err != nil {
				panic(err)
			}
			start := time.Now()
			for _, step := range h {
				if err := s.ApplySet("guide", step.At, step.Ops); err != nil {
					panic(err)
				}
			}
			return time.Since(start) / time.Duration(len(h))
		}

		walRoot, err := os.MkdirTemp("", "b10wal")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(walRoot)
		ws, err := lore.OpenWAL(walRoot, opt)
		if err != nil {
			panic(err)
		}
		walPer := perOp(ws)
		ws.Close()

		snapRoot, err := os.MkdirTemp("", "b10snap")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(snapRoot)
		ss, err := lore.Open(snapRoot)
		if err != nil {
			panic(err)
		}
		snapPer := perOp(ss)

		load := measure(func() {
			s, err := lore.OpenWAL(walRoot, opt)
			if err != nil {
				panic(err)
			}
			s.Close()
		})
		logDir := filepath.Join(walRoot, "guide.doemwal")
		recovery := measure(func() {
			l, err := wal.Open(logDir, opt)
			if err != nil {
				panic(err)
			}
			l.Close()
		})
		fmt.Printf("  %8d %14s %14s %12s %12s\n", len(h), walPer, snapPer, load, recovery)
	}
}

// b11 measures the parallel evaluation mode (Engine.SetParallelism)
// against serial on a reachability-heavy query: every restaurant's `#`
// closure walks the shared parking/nearby-eats component, so the work per
// outer binding is large and uniform — the best case for partitioning the
// binding stream. Speedup is bounded by the host's core count (the table
// reports GOMAXPROCS); workers beyond it cannot help. It also gates on
// the determinism guarantee: every worker count must reproduce the serial
// result byte for byte.
func b11() {
	fmt.Println("\n-- B11: parallel query evaluation vs workers (R.# reachability query) --")
	initial, h := guidegen.GenerateHistory(7, scale(300), 4, 8)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		panic(err)
	}
	eng := lorel.NewEngine()
	eng.Register("guide", d)
	parsed, err := lorel.Parse(`select R.name from guide.restaurant R, R.# C where C = "no such value"`)
	if err != nil {
		panic(err)
	}
	if err := lorel.Canonicalize(parsed); err != nil {
		panic(err)
	}

	serialRes, err := eng.Eval(parsed)
	if err != nil {
		panic(err)
	}
	serialOut := serialRes.String()
	serialPer := measure(func() {
		if _, err := eng.Eval(parsed); err != nil {
			panic(err)
		}
	})

	fmt.Printf("  GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	fmt.Printf("  %8s %14s %9s\n", "workers", "time/query", "speedup")
	fmt.Printf("  %8d %14s %8.2fx\n", 1, serialPer, 1.0)
	identical := true
	for _, workers := range []int{2, 4, 8} {
		eng.SetParallelism(workers)
		res, err := eng.Eval(parsed)
		if err != nil {
			panic(err)
		}
		if res.String() != serialOut {
			identical = false
		}
		per := measure(func() {
			if _, err := eng.Eval(parsed); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %8d %14s %8.2fx\n", workers, per, float64(serialPer)/float64(per))
	}
	eng.SetParallelism(1)
	check("B11", "parallel results byte-identical to serial at every worker count", identical)
}

// b12 compares indexed evaluation (internal/index: adjacency indexes,
// binary-searched annotations, the (generation, T) view cache) against the
// raw database — the -noindex escape hatch — on repeated <at T> snapshot
// work as the annotation count grows. Two measurements per tier: a Lorel
// query that resolves arcs and values at T, and direct O_t(D) snapshot
// extraction, which the indexed wrapper memoizes. Gates on byte-identical
// results between the two modes.
func b12() {
	fmt.Println("\n-- B12: annotation-time indexes — repeated <at T> snapshot queries, indexed vs -noindex --")
	fmt.Printf("  %8s %8s %12s %12s %8s %12s %12s %8s\n",
		"annots", "steps", "query-raw", "query-idx", "speedup", "snap-raw", "snap-idx", "speedup")
	identical := true
	for _, steps := range []int{8, 77, scale(770)} {
		initial, h := guidegen.GenerateHistory(9, 40, steps, 100)
		d, err := doem.FromHistory(initial, h)
		if err != nil {
			panic(err)
		}
		ts := d.Steps()
		at := ts[len(ts)/2]
		q := fmt.Sprintf(`select P from guide.<at %q>restaurant.price P where P < 20`, at.String())

		raw := lorel.NewEngine()
		raw.Register("guide", d)
		ig := index.NewGraph(d)
		idx := lorel.NewEngine()
		idx.Register("guide", ig)

		rawRes, err := raw.Query(q)
		if err != nil {
			panic(err)
		}
		idxRes, err := idx.Query(q)
		if err != nil {
			panic(err)
		}
		if rawRes.String() != idxRes.String() || !d.SnapshotAt(at).Equal(ig.SnapshotAt(at)) {
			identical = false
		}

		qRaw := measure(func() {
			if _, err := raw.Query(q); err != nil {
				panic(err)
			}
		})
		qIdx := measure(func() {
			if _, err := idx.Query(q); err != nil {
				panic(err)
			}
		})
		sRaw := measure(func() { d.SnapshotAt(at) })
		sIdx := measure(func() { ig.SnapshotAt(at) })
		fmt.Printf("  %8d %8d %12s %12s %7.2fx %12s %12s %8.0fx\n",
			d.NumAnnotations(), len(h), qRaw, qIdx, float64(qRaw)/float64(qIdx),
			sRaw, sIdx, float64(sRaw)/float64(sIdx))
	}
	check("B12", "indexed <at T> queries and snapshots byte-identical to raw", identical)
}

// b13 measures the internal/segment subsystem against the monolithic
// database as history grows 10x past the active-segment size. Three
// claims: (a) repeated <at T> queries into old history stay roughly flat
// (they touch one sealed segment's persistent index, not the whole
// annotation history), (b) restart recovery stays roughly flat (only the
// bounded active-segment tail replays; sealed segments recover from their
// checkpointed snapshots), and (c) the cold tier bounds resident memory
// (index-dropped, compressed segments cost near nothing until touched).
// Gates on byte-identical query results between the two representations.
func b13() {
	fmt.Println("\n-- B13: segmented history storage — <at T> latency, recovery and RSS vs monolithic --")
	pol := &segment.Policy{SealAnnotations: 300}
	opt := &wal.Options{Sync: wal.SyncNever}
	base := scale(100)
	// The 10x history extends the mixed base workload with churn steps
	// (price updates against existing nodes): the history grows 10x while
	// the live graph stays the same size. That isolates what B13b/c
	// claim — deep <at T> access and restart recovery scale with the
	// touched interval / active segment, not with total history — from
	// the orthogonal cost of a larger live database, which every storage
	// arrangement pays alike.
	initial, h0 := guidegen.GenerateHistory(13, 40, base, 10)
	histories := [2]change.History{h0, extendWithChurn(initial, h0, 9*len(h0))}
	fmt.Printf("  %8s %8s %8s %12s %12s %12s %12s\n",
		"steps", "annots", "segs", "query-mono", "query-seg", "open-mono", "open-seg")
	identical := true
	var segLat, monoLat [2]time.Duration
	var segOpen [2]time.Duration
	for i, h := range histories {
		var preHeap int64
		if i == 1 {
			preHeap = int64(heapInUse())
		}
		mono, err := doem.FromHistory(initial, h)
		if err != nil {
			panic(err)
		}
		var monoHeap int64
		if i == 1 {
			monoHeap = int64(heapInUse()) - preHeap
		}

		segDir, err := os.MkdirTemp("", "b13seg")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(segDir)
		st, err := segment.Create(segDir, doem.New(initial.Clone()), opt, pol)
		if err != nil {
			panic(err)
		}
		walDir, err := os.MkdirTemp("", "b13wal")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(walDir)
		l, err := wal.Open(walDir, opt)
		if err != nil {
			panic(err)
		}
		if err := l.CheckpointDOEM(doem.New(initial.Clone())); err != nil {
			panic(err)
		}
		for _, step := range h {
			if err := st.Apply(step.At, step.Ops); err != nil {
				panic(err)
			}
			if _, err := l.AppendStep(step.At, step.Ops); err != nil {
				panic(err)
			}
		}
		l.Close()

		// A T deep in old history: for the segmented store it lands in an
		// early sealed segment; for the monolithic database the whole
		// annotation history is in play.
		ts := mono.Steps()
		at := ts[len(ts)/10]
		q := fmt.Sprintf(`select P from guide.<at %q>restaurant.price P where P < 20`, at.String())
		monoEng := lorel.NewEngine()
		monoEng.Register("guide", mono)
		segEng := lorel.NewEngine()
		segEng.Register("guide", st.Graph())
		monoRes, err := monoEng.Query(q)
		if err != nil {
			panic(err)
		}
		segRes, err := segEng.Query(q)
		if err != nil {
			panic(err)
		}
		if monoRes.String() != segRes.String() {
			identical = false
		}
		monoLat[i] = measure(func() {
			if _, err := monoEng.Query(q); err != nil {
				panic(err)
			}
		})
		segLat[i] = measure(func() {
			if _, err := segEng.Query(q); err != nil {
				panic(err)
			}
		})
		segs := st.Segments()
		st.Close()

		// Restart recovery: the monolithic WAL replays the full history;
		// the segmented store replays only its bounded active tail.
		openMono := measure(func() {
			l, err := wal.Open(walDir, opt)
			if err != nil {
				panic(err)
			}
			if _, err := l.ReplayDOEM(); err != nil {
				panic(err)
			}
			l.Close()
		})
		segOpen[i] = measure(func() {
			s, err := segment.Open(segDir, opt, pol)
			if err != nil {
				panic(err)
			}
			s.Close()
		})
		fmt.Printf("  %8d %8d %8d %12s %12s %12s %12s\n",
			len(h), mono.NumAnnotations(), segs, monoLat[i], segLat[i], openMono, segOpen[i])

		if i == 1 {
			b13rss(segDir, opt, pol, mono, monoHeap, q, at)
		}
	}
	check("B13a", "segmented query results byte-identical to monolithic", identical)
	check("B13b", "segmented <at T> latency roughly flat across 10x history growth",
		segLat[1] < 3*segLat[0]+time.Millisecond)
	check("B13c", "segmented restart recovery roughly flat across 10x history growth",
		segOpen[1] < 3*segOpen[0]+5*time.Millisecond)
}

// b13rss reports resident heap per storage arrangement at the 10x size:
// the monolithic database (monoHeap, measured around its construction),
// the segmented store with every sealed index hot, and the same store
// demoted to the cold tier (both measured against a baseline taken just
// before the store opens).
func b13rss(segDir string, opt *wal.Options, pol *segment.Policy, mono *doem.Database, monoHeap int64, q string, at timestamp.Time) {
	baseline := int64(heapInUse())

	coldPol := &segment.Policy{SealAnnotations: pol.SealAnnotations, ColdAfter: 1}
	st, err := segment.Open(segDir, opt, coldPol)
	if err != nil {
		panic(err)
	}
	defer st.Close()
	eng := lorel.NewEngine()
	eng.Register("guide", st.Graph())
	// Touch every sealed segment so each index is parsed and hot.
	for _, seal := range st.SealTimes() {
		hq := fmt.Sprintf(`select P from guide.<at %q>restaurant.price P where P < 20`, seal.String())
		if _, err := eng.Query(hq); err != nil {
			panic(err)
		}
	}
	hot, _, _ := st.Tiers()
	hotHeap := int64(heapInUse()) - baseline
	// Demote everything: with ColdAfter=1 any later graph op ages every
	// sealed segment out.
	st.Maintain()
	st.Maintain()
	_, _, cold := st.Tiers()
	coldHeap := int64(heapInUse()) - baseline
	_ = mono.NumAnnotations() // keep the monolithic copy live in the baseline
	fmt.Printf("  RSS at 10x: monolithic %+.1f MiB | segmented hot (%d idx) %+.1f MiB | cold (%d seg) %+.1f MiB\n",
		float64(monoHeap)/(1<<20), hot, float64(hotHeap)/(1<<20), cold, float64(coldHeap)/(1<<20))
	check("B13d", "cold tier releases sealed-index memory", cold > 0 && coldHeap <= hotHeap)
}

// heapInUse reports live heap bytes after a full collection.
func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// extendWithChurn lengthens a generated history with n churn steps — price
// updates against nodes that already exist at the end of h — so the
// recorded history grows without growing the live graph.
func extendWithChurn(initial *oem.Database, h change.History, n int) change.History {
	db := initial.Clone()
	for _, step := range h {
		if _, err := step.Ops.Apply(db); err != nil {
			panic(err)
		}
	}
	var prices []oem.NodeID
	for _, node := range db.Nodes() {
		for _, a := range db.OutLabeled(node, "price") {
			prices = append(prices, a.Child)
		}
	}
	sort.Slice(prices, func(i, j int) bool { return prices[i] < prices[j] })
	out := append(change.History{}, h...)
	if len(prices) == 0 || len(h) == 0 {
		return out
	}
	t := h[len(h)-1].At
	v := 0
	for i := 0; i < n; i++ {
		t = t.Add(86400e9) // +1 day
		var set change.Set
		for j := 0; j < 10 && j < len(prices); j++ {
			// Consecutive residues keep the step's targets distinct.
			p := prices[(i*10+j)%len(prices)]
			v++
			set = append(set, change.UpdNode{Node: p, Value: value.Int(int64(5 + v%40))})
		}
		out = append(out, change.Step{At: t, Ops: set})
	}
	return out
}

// --- quantitative series ---

func scale(n int) int {
	if *quick {
		return n / 5
	}
	return n
}

// measure runs fn repeatedly for at least 200ms and returns the per-op time.
func measure(fn func()) time.Duration {
	fn() // warm up
	var iters int
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		fn()
		iters++
	}
	return time.Since(start) / time.Duration(iters)
}

func b1() {
	fmt.Println("\n-- B1: DOEM construction vs. history length (100 restaurants, 10 ops/step) --")
	fmt.Printf("  %8s %14s %14s\n", "steps", "build time", "per op")
	for _, steps := range []int{10, 50, scale(200)} {
		initial, h := guidegen.GenerateHistory(1, 100, steps, 10)
		ops := 0
		for _, s := range h {
			ops += len(s.Ops)
		}
		dt := measure(func() {
			if _, err := doem.FromHistory(initial, h); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %8d %14s %14s\n", steps, dt, dt/time.Duration(max(ops, 1)))
	}
}

func b2() {
	fmt.Println("\n-- B2: SnapshotAt(t) cost (200 restaurants, 100 steps) --")
	initial, h := guidegen.GenerateHistory(1, 200, scale(100), 10)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %10s %14s\n", "t", "time")
	for _, tc := range []struct {
		name string
		t    timestamp.Time
	}{
		{"original", timestamp.NegInf},
		{"mid", timestamp.MustParse("1Feb97")},
		{"current", timestamp.PosInf},
	} {
		dt := measure(func() { d.SnapshotAt(tc.t) })
		fmt.Printf("  %10s %14s\n", tc.name, dt)
	}
}

func b3() {
	fmt.Println("\n-- B3: Chorel strategies — direct on DOEM vs. translated over encoding --")
	initial, h := guidegen.GenerateHistory(1, scale(200), 50, 10)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		panic(err)
	}
	eng := lorel.NewEngine()
	eng.Register("guide", d)
	cdb := chorel.New("guide", d)
	encStart := time.Now()
	cdb.Encoding()
	encTime := time.Since(encStart)

	fmt.Printf("  one-time encoding: %s\n", encTime)
	fmt.Printf("  %-12s %12s %12s %8s\n", "query", "direct", "translated", "ratio")
	for _, q := range []struct{ name, text string }{
		{"plain-scan", `select guide.restaurant.name`},
		{"add-scan", `select guide.<add at T>restaurant where T > 1Jan97`},
		{"upd-join", `select N, NV from guide.restaurant R, R.name N, R.price<upd to NV>`},
	} {
		direct := measure(func() {
			if _, err := eng.Query(q.text); err != nil {
				panic(err)
			}
		})
		translated := measure(func() {
			if _, err := cdb.QueryTranslated(q.text); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %-12s %12s %12s %7.2fx\n", q.name, direct, translated,
			float64(translated)/float64(direct))
	}
}

func b4() {
	fmt.Println("\n-- B4: annotation index ablation (Section 7 future work) --")
	initial, h := guidegen.GenerateHistory(1, scale(500), 100, 10)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		panic(err)
	}
	eng := lorel.NewEngine()
	eng.Register("guide", d)
	ix := lore.BuildAnnotationIndex(d)
	from, to := timestamp.MustParse("1Feb97"), timestamp.MustParse("2Feb97")

	scan := measure(func() {
		if _, err := eng.Query(`select guide.restaurant<cre at T> where T > 1Feb97 and T <= 2Feb97`); err != nil {
			panic(err)
		}
	})
	lookup := measure(func() { ix.CreatedIn(from, to) })
	build := measure(func() { lore.BuildAnnotationIndex(d) })
	fmt.Printf("  query scan:    %12s\n", scan)
	fmt.Printf("  index lookup:  %12s  (%.0fx faster)\n", lookup, float64(scan)/float64(lookup))
	fmt.Printf("  index build:   %12s  (amortized over repeated windows)\n", build)
}

func b5() {
	fmt.Println("\n-- B5: OEMdiff — identity vs. matching mode --")
	fmt.Printf("  %8s %14s %14s %8s\n", "size", "identity", "matching", "ratio")
	for _, n := range []int{100, 500, scale(2000)} {
		ev := guidegen.NewEvolver(1, n)
		old := ev.DB.Clone()
		ev.Step(n / 10)
		fresh := reID(ev.DB)
		ident := measure(func() {
			if _, err := oemdiff.DiffIdentity(old, ev.DB); err != nil {
				panic(err)
			}
		})
		matching := measure(func() {
			if _, err := oemdiff.Diff(old, fresh, nil); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %8d %14s %14s %7.1fx\n", n, ident, matching, float64(matching)/float64(ident))
	}
}

func b6() {
	fmt.Println("\n-- B6: QSS polling cycle latency --")
	fmt.Printf("  %12s %14s\n", "restaurants", "cycle time")
	for _, n := range []int{50, 200, scale(1000)} {
		ev := guidegen.NewEvolver(1, n)
		src := wrapper.NewMutable(ev.DB)
		svc := qss.NewService(nil)
		if err := svc.Subscribe(qss.Subscription{
			Name: "R", SourceName: "guide", Source: src,
			Polling: `select guide.restaurant`,
			Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
		}); err != nil {
			panic(err)
		}
		t := timestamp.MustParse("1Jan97")
		if _, err := svc.Poll("R", t); err != nil {
			panic(err)
		}
		dt := measure(func() {
			src.Mutate(func(*oem.Database) error { ev.Step(5); return nil })
			t = t.Add(3600e9)
			if _, err := svc.Poll("R", t); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %12d %14s\n", n, dt)
	}
}

func b7() {
	fmt.Println("\n-- B7: OEM-encoding space overhead (Section 5.1) --")
	fmt.Printf("  %8s %10s %10s %12s %12s\n", "steps", "DOEM n/a", "enc n/a", "node-factor", "arc-factor")
	for _, steps := range []int{20, scale(100)} {
		initial, h := guidegen.GenerateHistory(1, 200, steps, 10)
		d, err := doem.FromHistory(initial, h)
		if err != nil {
			panic(err)
		}
		enc := encoding.Encode(d)
		s := encoding.Measure(d, enc)
		fmt.Printf("  %8d %5d/%-5d %5d/%-5d %11.2fx %11.2fx\n",
			steps, s.DOEMNodes, s.DOEMArcs, s.EncNodes, s.EncArcs, s.NodeFactor(), s.ArcFactor())
	}
}

func b8() {
	fmt.Println("\n-- B8: htmldiff end-to-end --")
	fmt.Printf("  %8s %14s\n", "entries", "markup time")
	for _, n := range []int{50, 200, scale(1000)} {
		oldPage := makePage(n, "")
		newPage := makePage(n, " Now with patio seating!")
		dt := measure(func() {
			if _, err := htmldiff.Markup(oldPage, newPage); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %8d %14s\n", n, dt)
	}
}

func makePage(entries int, bump string) string {
	var sb strings.Builder
	sb.WriteString("<html><body><h1>Guide</h1><ul>")
	for i := 0; i < entries; i++ {
		note := ""
		if i == entries/2 {
			note = bump
		}
		fmt.Fprintf(&sb, "<li><b>Restaurant %d</b> price %d.%s</li>", i, 10+i%30, note)
	}
	sb.WriteString("</ul></body></html>")
	return sb.String()
}

// reID re-copies a database with fresh node ids, preserving all labels —
// the shape of a source without object identity.
func reID(db *oem.Database) *oem.Database {
	out, err := wrapper.Unstable{Inner: wrapper.Static{DB: db}}.Poll()
	if err != nil {
		panic(err)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
