package doem

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/oem"
	"repro/internal/oemio"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// wireDOEM is the exact serialized form of a DOEM database: the current
// snapshot plus the full arc relation, annotations, deleted-node values and
// step timestamps. Unlike the Section 5.1 OEM encoding (package encoding),
// this format preserves node ids exactly, which the lore store and QSS rely
// on across restarts.
type wireDOEM struct {
	Current  json.RawMessage `json:"current"`
	DeadArcs []wireArc       `json:"dead_arcs,omitempty"`
	NodeAnn  []wireNodeAnn   `json:"node_annotations,omitempty"`
	ArcAnn   []wireArcAnn    `json:"arc_annotations,omitempty"`
	Deleted  []wireDeleted   `json:"deleted_nodes,omitempty"`
	Steps    []string        `json:"steps,omitempty"`
	// OutAll order per parent, to keep listings deterministic.
	ArcOrder []wireArc `json:"arc_order,omitempty"`
}

type wireArc struct {
	P uint64 `json:"p"`
	L string `json:"l"`
	C uint64 `json:"c"`
}

type wireNodeAnn struct {
	Node    uint64 `json:"n"`
	Kind    string `json:"k"` // "cre" or "upd"
	At      string `json:"t"`
	OldKind string `json:"ovk,omitempty"`
	OldVal  any    `json:"ov,omitempty"`
}

type wireArcAnn struct {
	Arc  wireArc `json:"a"`
	Kind string  `json:"k"` // "add" or "rem"
	At   string  `json:"t"`
}

type wireDeleted struct {
	Node uint64 `json:"n"`
	Kind string `json:"k"`
	Val  any    `json:"v,omitempty"`
}

func toWireArc(a oem.Arc) wireArc {
	return wireArc{P: uint64(a.Parent), L: a.Label, C: uint64(a.Child)}
}

func fromWireArc(a wireArc) oem.Arc {
	return oem.Arc{Parent: oem.NodeID(a.P), Label: a.L, Child: oem.NodeID(a.C)}
}

// Marshal serializes the database to JSON, preserving node ids and
// annotation order exactly.
func (d *Database) Marshal() ([]byte, error) {
	cur, err := oemio.Marshal(d.current)
	if err != nil {
		return nil, err
	}
	w := wireDOEM{Current: cur}
	for a := range d.dead {
		w.DeadArcs = append(w.DeadArcs, toWireArc(a))
	}
	sortWireArcs(w.DeadArcs)
	for _, id := range d.AllNodeIDs() {
		for _, ann := range d.nodeAnn[id] {
			wa := wireNodeAnn{Node: uint64(id), Kind: ann.Kind.String(), At: ann.At.String()}
			if ann.Kind == AnnotUpd {
				wa.OldKind, wa.OldVal = oemio.EncodeValue(ann.Old)
			}
			w.NodeAnn = append(w.NodeAnn, wa)
		}
		for _, arc := range d.outAll[id] {
			w.ArcOrder = append(w.ArcOrder, toWireArc(arc))
			for _, ann := range d.arcAnn[arc] {
				w.ArcAnn = append(w.ArcAnn, wireArcAnn{Arc: toWireArc(arc), Kind: ann.Kind.String(), At: ann.At.String()})
			}
		}
	}
	for id, v := range d.deletedValues {
		k, val := oemio.EncodeValue(v)
		w.Deleted = append(w.Deleted, wireDeleted{Node: uint64(id), Kind: k, Val: val})
	}
	sort.Slice(w.Deleted, func(i, j int) bool { return w.Deleted[i].Node < w.Deleted[j].Node })
	for _, t := range d.steps {
		w.Steps = append(w.Steps, t.String())
	}
	return json.Marshal(w)
}

func sortWireArcs(arcs []wireArc) {
	sort.Slice(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.L != b.L {
			return a.L < b.L
		}
		return a.C < b.C
	})
}

// Unmarshal reconstructs a database serialized by Marshal.
func Unmarshal(data []byte) (*Database, error) {
	var w wireDOEM
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("doem: unmarshal: %w", err)
	}
	cur, err := oemio.Unmarshal(w.Current)
	if err != nil {
		return nil, fmt.Errorf("doem: unmarshal current snapshot: %w", err)
	}
	d := &Database{
		current:       cur,
		outAll:        make(map[oem.NodeID][]oem.Arc),
		dead:          make(map[oem.Arc]bool),
		deletedValues: make(map[oem.NodeID]value.Value),
		nodeAnn:       make(map[oem.NodeID][]NodeAnnot),
		arcAnn:        make(map[oem.Arc][]ArcAnnot),
	}
	for _, wa := range w.ArcOrder {
		a := fromWireArc(wa)
		d.outAll[a.Parent] = append(d.outAll[a.Parent], a)
	}
	for _, wa := range w.DeadArcs {
		d.dead[fromWireArc(wa)] = true
	}
	for _, wn := range w.NodeAnn {
		at, err := timestamp.Parse(wn.At)
		if err != nil {
			return nil, fmt.Errorf("doem: unmarshal annotation time: %w", err)
		}
		ann := NodeAnnot{At: at}
		switch wn.Kind {
		case "cre":
			ann.Kind = AnnotCre
		case "upd":
			ann.Kind = AnnotUpd
			ov, err := oemio.DecodeValue(wn.OldKind, wn.OldVal)
			if err != nil {
				return nil, fmt.Errorf("doem: unmarshal old value: %w", err)
			}
			ann.Old = ov
		default:
			return nil, fmt.Errorf("doem: unknown node annotation kind %q", wn.Kind)
		}
		d.nodeAnn[oem.NodeID(wn.Node)] = append(d.nodeAnn[oem.NodeID(wn.Node)], ann)
	}
	for _, wa := range w.ArcAnn {
		at, err := timestamp.Parse(wa.At)
		if err != nil {
			return nil, fmt.Errorf("doem: unmarshal arc annotation time: %w", err)
		}
		var kind AnnotKind
		switch wa.Kind {
		case "add":
			kind = AnnotAdd
		case "rem":
			kind = AnnotRem
		default:
			return nil, fmt.Errorf("doem: unknown arc annotation kind %q", wa.Kind)
		}
		arc := fromWireArc(wa.Arc)
		d.arcAnn[arc] = append(d.arcAnn[arc], ArcAnnot{Kind: kind, At: at})
	}
	for _, wd := range w.Deleted {
		v, err := oemio.DecodeValue(wd.Kind, wd.Val)
		if err != nil {
			return nil, fmt.Errorf("doem: unmarshal deleted value: %w", err)
		}
		d.deletedValues[oem.NodeID(wd.Node)] = v
	}
	for _, s := range w.Steps {
		t, err := timestamp.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("doem: unmarshal step time: %w", err)
		}
		d.steps = append(d.steps, t)
	}
	return d, nil
}
