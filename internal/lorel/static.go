package lorel

// StaticallySafe reports whether the canonical query q provably cannot
// raise a runtime evaluation error against the given graph registration:
// every head name resolves (to a registered graph or an earlier
// generator's variable), no variable is bound twice, annotations sit in
// positions the evaluator accepts, select items depend only on strict
// generators, and strict generators depend only on strict generators.
//
// It is the plannability validator of plan.go re-exposed as a predicate
// (without the costing step), for callers that need the same guarantee
// the planned executor relies on — notably internal/incr, whose delta
// evaluator may only suppress a filter evaluation when that evaluation
// provably returns an empty result rather than an error. The answer
// depends only on the set of registered names, not on graph contents, so
// it stays valid as long as the registration's name set is unchanged.
//
// q must be in canonical form (Canonicalize or the chorel translator);
// queries that never went through canonicalization are reported unsafe.
func StaticallySafe(q *Query, graphs map[string]Graph) bool {
	if q == nil || q.key == "" {
		return false
	}
	b := &specBuilder{
		graphs: graphs,
		varGen: make(map[string]int),
		vers:   make(map[string]uint64),
		tags:   make(map[string]uintptr),
		consts: make(map[Expr]bool),
	}
	gens := append(append([]FromItem{}, q.From...), q.WhereGens...)
	_, ok := b.build(q, gens, len(q.From))
	return ok
}
