package oemio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func sampleDB(t testing.TB) *oem.Database {
	b := oem.NewBuilder()
	r := b.Root()
	rest := b.ComplexArc(r, "restaurant")
	b.AtomArc(rest, "name", value.Str("Bangkok Cuisine"))
	b.AtomArc(rest, "price", value.Int(10))
	b.AtomArc(rest, "rating", value.Real(4.5))
	b.AtomArc(rest, "open", value.Bool(true))
	b.AtomArc(rest, "since", value.Time(timestamp.MustParse("1Jan97")))
	b.AtomArc(rest, "note", value.Null())
	// Cycle and sharing.
	park := b.ComplexArc(rest, "parking")
	b.Arc(park, "nearby-eats", rest)
	rest2 := b.ComplexArc(r, "restaurant")
	b.Arc(rest2, "parking", park)
	return b.Build()
}

func TestRoundTripWriteRead(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(back) {
		t.Errorf("round trip changed database:\nin:\n%s\nout:\n%s", db, back)
	}
}

func TestRoundTripMarshalUnmarshal(t *testing.T) {
	db := sampleDB(t)
	data, err := Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(back) {
		t.Error("marshal/unmarshal round trip changed database")
	}
}

func TestArcOrderPreserved(t *testing.T) {
	db := oem.New()
	var kids []oem.NodeID
	for i := 0; i < 10; i++ {
		c := db.CreateNode(value.Int(int64(i)))
		if err := db.AddArc(db.Root(), "x", c); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, c)
	}
	data, err := Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	out := back.Out(back.Root())
	for i, a := range out {
		if a.Child != kids[i] {
			t.Fatalf("arc %d child = %s, want %s (order lost)", i, a.Child, kids[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"missing root": `{"root":1,"nodes":[],"arcs":[]}`,
		"atomic root":  `{"root":1,"nodes":[{"id":1,"kind":"int","value":3}],"arcs":[]}`,
		"bad kind":     `{"root":1,"nodes":[{"id":1,"kind":"complex"},{"id":2,"kind":"widget"}],"arcs":[]}`,
		"dangling arc": `{"root":1,"nodes":[{"id":1,"kind":"complex"}],"arcs":[{"p":1,"l":"x","c":9}]}`,
		"dup node":     `{"root":1,"nodes":[{"id":1,"kind":"complex"},{"id":2,"kind":"int","value":1},{"id":2,"kind":"int","value":2}],"arcs":[]}`,
		"bad root id":  `{"root":7,"nodes":[{"id":7,"kind":"complex"}],"arcs":[]}`,
		"bad time":     `{"root":1,"nodes":[{"id":1,"kind":"complex"},{"id":2,"kind":"time","value":"whenever"}],"arcs":[]}`,
		"bad string":   `{"root":1,"nodes":[{"id":1,"kind":"complex"},{"id":2,"kind":"string","value":7}],"arcs":[]}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestValueKindsRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null(),
		value.Bool(true),
		value.Bool(false),
		value.Int(-42),
		value.Int(1 << 40), // beyond float64 exactness threshold is avoided; still large
		value.Real(3.14159),
		value.Str(""),
		value.Str("with \"quotes\" and \n newline"),
		value.Time(timestamp.MustParse("8Jan97")),
	}
	for _, v := range vals {
		kind, payload := EncodeValue(v)
		back, err := DecodeValue(kind, payload)
		if err != nil {
			t.Errorf("DecodeValue(%s): %v", v, err)
			continue
		}
		if !back.Equal(v) {
			t.Errorf("round trip %s -> %s", v, back)
		}
	}
}

// Property: random trees round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, sizes []uint8) bool {
		db := oem.New()
		parents := []oem.NodeID{db.Root()}
		for i, s := range sizes {
			if i > 60 {
				break
			}
			var v value.Value
			switch s % 4 {
			case 0:
				v = value.Int(int64(s))
			case 1:
				v = value.Str(strings.Repeat("x", int(s%7)))
			case 2:
				v = value.Real(float64(s) / 2)
			default:
				v = value.Complex()
			}
			n := db.CreateNode(v)
			p := parents[int(s)%len(parents)]
			if err := db.AddArc(p, "l"+string(rune('a'+s%5)), n); err != nil {
				return false
			}
			if v.IsComplex() {
				parents = append(parents, n)
			}
		}
		data, err := Marshal(db)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return db.Equal(back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
