package repl

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleFrames() []Frame {
	return []Frame{
		{Type: FrameHello, Epoch: 0, Seq: 0, Commit: 0, Payload: handshakePayload("n1")},
		{Type: FrameWelcome, Epoch: 1, Seq: 42, Commit: 40, Payload: handshakePayload("host:123")},
		{Type: FrameSnapshot, Epoch: 7, Seq: 1 << 40, Commit: 3, Payload: bytes.Repeat([]byte{0xab}, 4096)},
		{Type: FrameRecord, Epoch: 2, Seq: 99, Commit: 98, Payload: []byte("payload")},
		{Type: FrameCommit, Epoch: 1<<63 + 5, Seq: 10, Commit: 10},
		{Type: FrameAck, Epoch: 3, Seq: 1},
		{Type: FrameReject, Epoch: 9},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		enc := AppendFrame(nil, f)
		got, n, err := DecodeFrame(enc, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("decode %d: %v", f.Type, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %d consumed %d of %d bytes", f.Type, n, len(enc))
		}
		if got.Type != f.Type || got.Epoch != f.Epoch || got.Seq != f.Seq ||
			got.Commit != f.Commit || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("decode %d: got %+v want %+v", f.Type, got, f)
		}
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range frames {
		got, err := ReadFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("read %d: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Epoch != want.Epoch || got.Seq != want.Seq ||
			got.Commit != want.Commit || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("read %d: got %+v want %+v", want.Type, got, want)
		}
	}
}

func TestFrameDecodeMultiple(t *testing.T) {
	frames := sampleFrames()
	var enc []byte
	for _, f := range frames {
		enc = AppendFrame(enc, f)
	}
	off := 0
	for i, want := range frames {
		got, n, err := DecodeFrame(enc[off:], DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(enc) {
		t.Fatalf("consumed %d of %d bytes", off, len(enc))
	}
}

func TestFrameDecodeCorruption(t *testing.T) {
	enc := AppendFrame(nil, Frame{Type: FrameRecord, Epoch: 3, Seq: 17, Commit: 16, Payload: []byte("hello world")})

	// Every truncation must fail (a torn stream never yields a frame).
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeFrame(enc[:i], DefaultMaxFrame); err == nil {
			t.Fatalf("truncation to %d bytes decoded", i)
		}
	}
	// Every single-bit flip must fail the CRC (or the header parse).
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x01
		if f, _, err := DecodeFrame(mut, DefaultMaxFrame); err == nil {
			t.Fatalf("bit flip at %d decoded as %+v", i, f)
		}
	}
	// Payload length beyond the cap is rejected before allocation.
	if _, _, err := DecodeFrame(enc, 4); err == nil || !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized payload: %v", err)
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)), 4); err == nil {
		t.Fatal("ReadFrame accepted oversized payload")
	}
}

func TestHandshakePayload(t *testing.T) {
	s, ok := parseHandshake(handshakePayload("node-a"))
	if !ok || s != "node-a" {
		t.Fatalf("round trip: %q %v", s, ok)
	}
	if _, ok := parseHandshake([]byte("GET / HTTP/1.1\r\n")); ok {
		t.Fatal("accepted foreign protocol bytes")
	}
	if _, ok := parseHandshake(nil); ok {
		t.Fatal("accepted empty payload")
	}
}

func TestOplogRecordRoundTrip(t *testing.T) {
	rec := AppendOplogRecord(nil, 5, "db/main", []byte("step-bytes"))
	epoch, name, data, err := DecodeOplogRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 5 || name != "db/main" || string(data) != "step-bytes" {
		t.Fatalf("got %d %q %q", epoch, name, data)
	}
	// Empty data and empty name are legal.
	rec = AppendOplogRecord(nil, 0, "", nil)
	if _, _, _, err := DecodeOplogRecord(rec); err != nil {
		t.Fatal(err)
	}
	// Truncations and trailing bytes are not.
	rec = AppendOplogRecord(nil, 9, strings.Repeat("x", 40), []byte("data"))
	for i := 0; i < len(rec); i++ {
		if _, _, _, err := DecodeOplogRecord(rec[:i]); err == nil {
			t.Fatalf("truncation to %d decoded", i)
		}
	}
	if _, _, _, err := DecodeOplogRecord(append(rec, 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}
