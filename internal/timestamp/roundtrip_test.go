package timestamp

import "testing"

// TestLayoutTable exercises every documented textual form once: each
// parses to the expected instant, and its rendering re-parses to the
// same instant.
func TestLayoutTable(t *testing.T) {
	cases := []struct {
		in   string
		unix int64
	}{
		{"1Jan97", 852076800},
		{"4Jan97 11:30pm", 852420600},
		{"4Jan97 11:30PM", 852420600},
		{"4Jan97 23:30", 852420600},
		{"4Jan97 23:30:15", 852420615},
		{"4Jan1997 23:30:15", 852420615},
		{"4Jan1997 23:30", 852420600},
		{"4Jan1997 11:30pm", 852420600},
		{"4Jan1997", 852336000},
		{"4 Jan 1997 23:30:15", 852420615},
		{"4 Jan 1997", 852336000},
		{"1997-01-04T23:30:15Z", 852420615},
		{"1997-01-04T23:30:15", 852420615},
		{"1997-01-04 23:30:15", 852420615},
		{"1997-01-04 23:30", 852420600},
		{"1997-01-04", 852336000},
		{"01/04/1997", 852336000},
		{"Jan 4, 1997", 852336000},
		{"852420615", 852420615},
		{"  1Jan97  ", 852076800}, // surrounding whitespace is trimmed
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got.Unix() != c.unix {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got.Unix(), c.unix)
			continue
		}
		back, err := Parse(got.String())
		if err != nil {
			t.Errorf("rendering %q of %q does not re-parse: %v", got, c.in, err)
			continue
		}
		if !back.Equal(got) {
			t.Errorf("%q: round trip %s -> %s", c.in, got, back)
		}
	}
}

// TestInfinitySpellings: every accepted spelling of the infinities.
func TestInfinitySpellings(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"-inf", NegInf}, {"-infinity", NegInf}, {"-INF", NegInf},
		{"+inf", PosInf}, {"inf", PosInf}, {"+infinity", PosInf},
		{"infinity", PosInf}, {"INF", PosInf},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil || !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

// TestInfinityArithmetic: Add is the identity on infinities; Min and Max
// treat them as the extremes of the order.
func TestInfinityArithmetic(t *testing.T) {
	mid := MustParse("1Jan97")
	if !NegInf.Add(1e12).Equal(NegInf) || !PosInf.Add(-1e12).Equal(PosInf) {
		t.Error("Add must leave infinities unchanged")
	}
	if !Min(NegInf, mid).Equal(NegInf) || !Max(PosInf, mid).Equal(PosInf) {
		t.Error("infinities are not order extremes")
	}
	if !Min(PosInf, mid).Equal(mid) || !Max(NegInf, mid).Equal(mid) {
		t.Error("finite instant must win against the opposite infinity")
	}
}
