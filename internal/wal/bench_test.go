package wal

import (
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
)

// benchLog fills a log with the steps of a generated history and returns
// its directory.
func benchLog(b *testing.B, steps int) (string, *Options) {
	b.Helper()
	opt := &Options{Sync: SyncNever}
	dir := b.TempDir()
	initial, h := guidegen.GenerateHistory(1, 50, steps, 10)
	l, err := Open(dir, opt)
	if err != nil {
		b.Fatal(err)
	}
	if err := l.CheckpointDOEM(doem.New(initial)); err != nil {
		b.Fatal(err)
	}
	for _, step := range h {
		if _, err := l.AppendStep(step.At, step.Ops); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	return dir, opt
}

func BenchmarkWALAppend(b *testing.B) {
	_, h := guidegen.GenerateHistory(1, 50, 64, 10)
	l, err := Open(b.TempDir(), &Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step := h[i%len(h)]
		if _, err := l.AppendStep(step.At, step.Ops); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALReplay(b *testing.B) {
	dir, opt := benchLog(b, 200)
	l, err := Open(dir, opt)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ReplayDOEM(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALRecovery(b *testing.B) {
	dir, opt := benchLog(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(dir, opt)
		if err != nil {
			b.Fatal(err)
		}
		l.Close()
	}
}
