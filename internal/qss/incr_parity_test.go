package qss

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/guidegen"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wrapper"
)

// parityFilters covers every fingerprint class: exact-label guards of all
// four kinds, a prefix-walked guard, a glob (kind-only) guard, a
// non-fresh guard (>= t[-1] matches old annotations, never skippable),
// and an unguarded query that fires on every poll.
var parityFilters = []string{
	`select %s.restaurant<cre at T> where T > t[-1]`,
	`select NV from %s.restaurant X, X.price<upd at T to NV> where T > t[-1]`,
	`select %s.<add at T>restaurant where T > t[0]`,
	`select X.name from %s.restaurant X, X.<rem at T>parking where T > t[-1]`,
	`select %s.rest%%<cre at T> where T >= t[0]`,
	`select %s.restaurant<cre at T> where T >= t[-1]`,
	`select %s.restaurant.name`,
}

// renderNotif serializes a notification for byte-for-byte comparison.
func renderNotif(n *Notification) string {
	if n == nil {
		return "<none>"
	}
	return fmt.Sprintf("%s@%s rows=%d\n%s", n.Subscription, n.At, n.Result.Len(), n.Answer.String())
}

// mutateRandom applies one random source mutation class; some rounds
// deliberately change nothing (silent polls are the skip fast path).
func mutateRandom(t *testing.T, rng *rand.Rand, src *wrapper.Mutable, ids *guidegen.PaperIDs, prices *[]oem.NodeID, rests *[]oem.NodeID) {
	t.Helper()
	err := src.Mutate(func(db *oem.Database) error {
		switch rng.Intn(6) {
		case 0: // new restaurant with name and price
			r := db.CreateNode(value.Complex())
			nm := db.CreateNode(value.Str(fmt.Sprintf("spot-%d", rng.Intn(1000))))
			pr := db.CreateNode(value.Int(int64(rng.Intn(40))))
			if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
				return err
			}
			if err := db.AddArc(r, "name", nm); err != nil {
				return err
			}
			if err := db.AddArc(r, "price", pr); err != nil {
				return err
			}
			*rests = append(*rests, r)
			*prices = append(*prices, pr)
		case 1: // price update
			p := (*prices)[rng.Intn(len(*prices))]
			return db.UpdateNode(p, value.Int(int64(rng.Intn(40))))
		case 2: // attach parking to a random restaurant
			r := (*rests)[rng.Intn(len(*rests))]
			if !db.HasArc(r, "parking", ids.Parking) {
				return db.AddArc(r, "parking", ids.Parking)
			}
		case 3: // detach parking again
			r := (*rests)[rng.Intn(len(*rests))]
			if db.HasArc(r, "parking", ids.Parking) {
				return db.RemoveArc(r, "parking", ids.Parking)
			}
		case 4: // unrelated change: comment on a restaurant
			c := db.CreateNode(value.Str("note"))
			return db.AddArc((*rests)[rng.Intn(len(*rests))], "comment", c)
		case 5: // silent round
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalParityRandomized drives randomized change-set streams
// through two services — incremental matching on vs off — across store
// modes and evaluation parallelism, and requires every notification
// stream to be byte-identical. Run with -race in CI.
func TestIncrementalParityRandomized(t *testing.T) {
	modes := []struct {
		name  string
		setup func(t *testing.T, svc *Service)
	}{
		{"mono", nil},
		{"noindex", func(t *testing.T, svc *Service) { svc.SetIndexing(false) }},
		{"wal", func(t *testing.T, svc *Service) {
			if err := svc.EnableWAL(t.TempDir(), nil); err != nil {
				t.Fatal(err)
			}
		}},
		{"segmented", func(t *testing.T, svc *Service) {
			if err := svc.EnableSegments(t.TempDir(), nil, &segment.Policy{SealAnnotations: 6}); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, mode := range modes {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode.name, workers), func(t *testing.T) {
				defer obs.SetEnabled(obs.SetEnabled(true))
				src, ids := paperSource(t)
				on := NewService(nil)
				off := NewService(nil)
				off.SetIncremental(false)
				on.SetParallelism(workers)
				off.SetParallelism(workers)
				if mode.setup != nil {
					mode.setup(t, on)
					mode.setup(t, off)
				}
				for i, f := range parityFilters {
					for _, svc := range []*Service{on, off} {
						name := fmt.Sprintf("P%d", i)
						err := svc.Subscribe(Subscription{
							Name:       name,
							SourceName: "guide",
							Source:     src,
							Polling:    `select guide.restaurant`,
							Filter:     fmt.Sprintf(f, name),
						})
						if err != nil {
							t.Fatalf("subscribe %s: %v", name, err)
						}
					}
				}

				rng := rand.New(rand.NewSource(9))
				prices := []oem.NodeID{ids.Price, ids.JantaPrice}
				rests := []oem.NodeID{ids.Bangkok, ids.Janta}
				base := timestamp.MustParse("1Jan97")
				skipsBefore := obs.Default.Snapshot().Counters["incr_skips_total"]
				for round := 0; round < 25; round++ {
					mutateRandom(t, rng, src, ids, &prices, &rests)
					at := base.Add(time.Duration(round) * time.Hour)
					for i := range parityFilters {
						name := fmt.Sprintf("P%d", i)
						nOn, errOn := on.Poll(name, at)
						nOff, errOff := off.Poll(name, at)
						if (errOn == nil) != (errOff == nil) {
							t.Fatalf("round %d %s: err mismatch: on=%v off=%v", round, name, errOn, errOff)
						}
						if got, want := renderNotif(nOn), renderNotif(nOff); got != want {
							t.Fatalf("round %d %s: notification mismatch\nincremental:\n%s\nfull:\n%s", round, name, got, want)
						}
					}
				}
				if skips := obs.Default.Snapshot().Counters["incr_skips_total"] - skipsBefore; skips == 0 {
					t.Error("incremental service never skipped an evaluation (test is vacuous)")
				}
			})
		}
	}
}
