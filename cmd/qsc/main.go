// Command qsc is the Query Subscription Client (paper Figure 7): it
// connects to a qss server, creates subscriptions, and prints the
// notifications as they arrive.
//
// Usage:
//
//	qsc -connect ADDR list
//	qsc -connect ADDR poll NAME [TIME]
//	qsc -connect ADDR watch NAME SOURCE POLLING FILTER [FREQ]
//
// Example (against the demo server):
//
//	qsc watch NewRestaurants guide \
//	  'select guide.restaurant' \
//	  'select NewRestaurants.restaurant<cre at T> where T > t[-1]' \
//	  'every 3 seconds'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/oem"
	"repro/internal/qss"
)

func main() {
	addr := flag.String("connect", "127.0.0.1:4997", "qss server address")
	sourceName := flag.String("source-name", "", "name the polling query uses for the source (default: the source name)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if err := run(*addr, *sourceName, args); err != nil {
		fmt.Fprintln(os.Stderr, "qsc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  qsc [-connect ADDR] list
  qsc [-connect ADDR] poll NAME [TIME]
  qsc [-connect ADDR] watch NAME SOURCE POLLING FILTER [FREQ]`)
	os.Exit(2)
}

func run(addr, sourceName string, args []string) error {
	cl, err := qss.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	switch args[0] {
	case "list":
		names, err := cl.List()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "poll":
		if len(args) < 2 {
			usage()
		}
		at := ""
		if len(args) > 2 {
			at = args[2]
		}
		return cl.Poll(args[1], at)
	case "watch":
		if len(args) < 5 {
			usage()
		}
		name, source, polling, filter := args[1], args[2], args[3], args[4]
		freq := ""
		if len(args) > 5 {
			freq = args[5]
		}
		sn := sourceName
		if sn == "" {
			sn = source
		}
		if err := cl.Subscribe(name, source, sn, polling, filter, freq); err != nil {
			return err
		}
		fmt.Printf("qsc: subscribed %q; waiting for notifications (Ctrl-C to stop)\n", name)
		for n := range cl.Notifications() {
			fmt.Printf("\n== %s @ %s ==\n", n.Subscription, n.At)
			printAnswer(n.Answer)
		}
		return nil
	default:
		usage()
		return nil
	}
}

// printAnswer renders a notification's answer database as an indented tree.
func printAnswer(db *oem.Database) {
	var walk func(n oem.NodeID, indent string, seen map[oem.NodeID]bool)
	walk = func(n oem.NodeID, indent string, seen map[oem.NodeID]bool) {
		if seen[n] {
			fmt.Printf("%s(shared %s)\n", indent, n)
			return
		}
		seen[n] = true
		for _, a := range db.Out(n) {
			v := db.MustValue(a.Child)
			if v.IsComplex() {
				fmt.Printf("%s%s:\n", indent, a.Label)
				walk(a.Child, indent+"  ", seen)
			} else {
				fmt.Printf("%s%s: %s\n", indent, a.Label, v.Display())
			}
		}
	}
	walk(db.Root(), "  ", make(map[oem.NodeID]bool))
}
