package qss

import (
	"testing"
	"time"

	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
)

// TestSoakLongHistoryWithTruncation runs a long polling campaign with
// periodic truncation — the operating regime the paper's Section 6.1
// space discussion anticipates — and verifies the accumulated state stays
// feasible and bounded.
func TestSoakLongHistoryWithTruncation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	ev := guidegen.NewEvolver(13, 120)
	src := wrapperMutable(ev)
	svc := NewService(nil)
	err := svc.Subscribe(Subscription{
		Name: "Guide", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select Guide.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}

	at := timestamp.MustParse("1Jan97")
	var annotHighWater int
	for cycle := 0; cycle < 150; cycle++ {
		if err := src.Mutate(func(*oem.Database) error { ev.Step(8); return nil }); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Poll("Guide", at); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Every 25 cycles, truncate everything older than 10 cycles.
		if cycle%25 == 24 {
			cut := at.Add(-10 * 24 * time.Hour)
			if err := svc.Truncate("Guide", cut); err != nil {
				t.Fatalf("cycle %d truncate: %v", cycle, err)
			}
			d, _, _ := svc.History("Guide")
			if !d.Feasible() {
				t.Fatalf("cycle %d: infeasible after truncation", cycle)
			}
			if n := d.NumAnnotations(); n > annotHighWater {
				annotHighWater = n
			}
		}
		at = at.Add(24 * time.Hour)
	}
	d, times, err := svc.History("Guide")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible() {
		t.Error("final state infeasible")
	}
	// Truncation keeps the retained window bounded: far fewer polling
	// times than cycles.
	if len(times) >= 150 {
		t.Errorf("poll times = %d; truncation did not bound the window", len(times))
	}
	// Annotation count stays around the windowed level rather than growing
	// with total history (150 cycles x 8 ops would dwarf this).
	if n := d.NumAnnotations(); n > annotHighWater*3+1000 {
		t.Errorf("annotations = %d (high water %d); unbounded growth suspected", n, annotHighWater)
	}
}
