// Package symbol is a process-wide interned symbol table for arc labels
// and other string atoms: it maps each distinct string to a dense integer
// id and a single canonical backing string.
//
// Two things fall out of canonicalization. First, every store layer
// (oem adjacency, doem full-arc relation, segment registries) holds the
// same backing bytes for a given label no matter how many times it was
// decoded from a WAL, a wire frame, or a segment file — a graph with a
// small label alphabet shrinks to one allocation per distinct label.
// Second, comparing two canonical strings hits the runtime's
// pointer-equality fast path in string ==, so hot-path label comparisons
// on match are word compares instead of byte scans.
//
// The dense ids exist for map keys: internal/index keys its per-(node,
// label) adjacency maps by (NodeID, ID) — a fixed 12-byte comparable —
// instead of hashing string keys, and the evaluator resolves a path
// step's label to an id once per walk instead of once per binding.
//
// Symbols are an in-memory representation only. Wire formats, WAL
// encoding and segment files always carry strings; interning happens at
// load/apply time (oem.AddArc, doem.Apply, segment replay), so
// replication byte-parity and on-disk compatibility are untouched.
//
// Concurrency: lookups and hits are lock-free (sync.Map); only the first
// interning of a new string takes the table lock. The table is
// append-only and process-wide — it is never reset, and its size is
// bounded by the number of distinct labels the process has loaded.
package symbol

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// ID is a dense interned-symbol identifier. The zero value None never
// identifies a symbol.
type ID uint32

// None is the invalid ID.
const None ID = 0

type entry struct {
	id ID
	s  string // the canonical backing string
}

var (
	table sync.Map // string -> entry; keys are the canonical strings
	mu    sync.RWMutex
	strs  = []string{""} // ID -> canonical string; index 0 reserved for None
)

// Intern returns the dense id and canonical backing string for s,
// inserting it on first sight. The canonical string is a clone, so
// holding it never pins a caller's larger backing array.
func Intern(s string) (ID, string) {
	if e, ok := table.Load(s); ok {
		en := e.(entry)
		return en.id, en.s
	}
	mu.Lock()
	defer mu.Unlock()
	if e, ok := table.Load(s); ok {
		en := e.(entry)
		return en.id, en.s
	}
	if uint64(len(strs)) > uint64(^ID(0)) {
		// Table full (2^32 distinct symbols): serve the string uninterned.
		return None, s
	}
	c := strings.Clone(s)
	id := ID(len(strs))
	strs = append(strs, c)
	table.Store(c, entry{id: id, s: c})
	return id, c
}

// Lookup returns the id for s without inserting. A miss means no data
// loaded so far ever interned s — for sym-keyed indexes built over
// interned data, a miss proves the label matches nothing.
func Lookup(s string) (ID, bool) {
	if e, ok := table.Load(s); ok {
		return e.(entry).id, true
	}
	return None, false
}

// Canon returns the canonical backing string for s, interning it when
// interning is enabled; when disabled it returns s unchanged. Store
// layers call this on every label they record.
func Canon(s string) string {
	if !Enabled() {
		return s
	}
	_, c := Intern(s)
	return c
}

// String returns the canonical string for id, or "" when id is None or
// unknown.
func String(id ID) string {
	mu.RLock()
	defer mu.RUnlock()
	if int(id) >= len(strs) {
		return ""
	}
	return strs[id]
}

// Size returns the number of interned symbols.
func Size() int {
	mu.RLock()
	defer mu.RUnlock()
	return len(strs) - 1
}

// disabled flips the package-wide default from interned to plain string
// storage. It gates Canon (label canonicalization at store layers), the
// sym-keyed index build in internal/index, and the evaluator's
// symbol-resolved step matching; the table itself keeps working either
// way, so flipping the gate mid-process never corrupts existing data —
// graphs built under the other setting simply don't share backing
// strings.
var disabled atomic.Bool

func init() {
	if v := os.Getenv("REPRO_NOINTERN"); v != "" && v != "0" {
		disabled.Store(true)
	}
}

// Enabled reports whether interning is on. The default is on; the
// REPRO_NOINTERN environment variable or a -nointern command flag (via
// SetEnabled) turns it off — mirroring plan.Enabled and index.Enabled.
// The gate is consulted when data is loaded and when index tables are
// built, so flip it before constructing databases.
func Enabled() bool { return !disabled.Load() }

// SetEnabled sets the package-wide default and returns the previous value.
func SetEnabled(on bool) (prev bool) { return !disabled.Swap(!on) }
