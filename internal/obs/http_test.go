package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAdminMetricsJSONAndPrometheus(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	r.NewCounter("hits_total").Add(7)
	r.NewHistogram("lat_ns").Observe(100)
	mux := NewAdminMux(AdminOptions{Registry: r})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("content type %q", ct)
	}
	var snap Snap
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counter("hits_total") != 7 || snap.Histogram("lat_ns").Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "hits_total 7") || !strings.Contains(body, "# TYPE lat_ns summary") {
		t.Errorf("prometheus body:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type %q", ct)
	}
}

func TestAdminHealthz(t *testing.T) {
	mux := NewAdminMux(AdminOptions{
		Registry: NewRegistry(),
		Health: func() (string, map[string]any) {
			return "ok", map[string]any{"subscriptions": map[string]string{"R": "healthy"}}
		},
	})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	var payload map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload["status"] != "ok" {
		t.Errorf("status = %v", payload["status"])
	}
	if payload["build"] == nil || payload["subscriptions"] == nil {
		t.Errorf("payload missing build/detail: %v", payload)
	}

	// Degraded health serves 503.
	mux = NewAdminMux(AdminOptions{
		Registry: NewRegistry(),
		Health:   func() (string, map[string]any) { return "degraded", nil },
	})
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("degraded /healthz status %d", rec.Code)
	}
}

func TestAdminPprof(t *testing.T) {
	mux := NewAdminMux(AdminOptions{Registry: NewRegistry()})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index missing profiles")
	}
}

func TestBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Error("missing go version")
	}
	if !strings.Contains(Version(), bi.GoVersion) {
		t.Errorf("Version() = %q missing go version", Version())
	}
}
