// The paper's Figure 1 workflow: diff two versions of a restaurant-guide
// web page and emit a marked-up copy highlighting the changes, then show
// how the same change surfaces as Chorel-queryable history when the page is
// a QSS source.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/htmldiff"
	"repro/internal/oem"
	"repro/internal/qss"
	"repro/internal/timestamp"
	"repro/internal/wrapper"
)

const pageV1 = `<html><body>
<h1>Palo Alto Restaurant Guide</h1>
<ul>
<li><b>Bangkok Cuisine</b> Thai. Price rating 10. 120 Lytton.</li>
<li><b>Janta</b> Indian. Moderate prices. Parking at Lytton lot 2.</li>
</ul>
</body></html>`

const pageV2 = `<html><body>
<h1>Palo Alto Restaurant Guide</h1>
<ul>
<li><b>Bangkok Cuisine</b> Thai. Price rating 20. 120 Lytton.</li>
<li><b>Janta</b> Indian. Moderate prices.</li>
<li><b>Hakata</b> need info.</li>
</ul>
</body></html>`

func main() {
	// Figure 1: the marked-up diff.
	out, err := htmldiff.Markup(pageV1, pageV2)
	if err != nil {
		log.Fatal(err)
	}
	const path = "htmldiff-output.html"
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		log.Fatal(err)
	}
	res, err := htmldiff.Diff(pageV1, pageV2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("htmldiff: wrote %s (%d bytes)\n", path, len(out))
	fmt.Printf("changes: %d created, %d updated, %d arcs added, %d arcs removed\n",
		res.Cost.Creates, res.Cost.Updates, res.Cost.Adds, res.Cost.Removes)

	// The same page as a QSS source: version flips between polls, and the
	// filter query reports newly added list entries. Re-parsing the page
	// yields fresh node ids each time, so QSS runs its matching differ.
	fmt.Println("\nsubscribing to new <li> entries on the page…")
	current := pageV1
	pageSrc := wrapper.Func{
		PollFunc: func() (*oem.Database, error) { return htmldiff.ToOEM(current), nil },
		Stable:   false,
	}
	svc := qss.NewService(nil)
	err = svc.Subscribe(qss.Subscription{
		Name:       "Entries",
		SourceName: "page",
		Source:     pageSrc,
		Polling:    `select page.html.html.body.ul.li`,
		Filter:     `select Entries.li<cre at T> where T > t[-1]`,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := svc.Poll("Entries", timestamp.MustParse("30Dec96")); err != nil {
		log.Fatal(err)
	}
	current = pageV2
	n, err := svc.Poll("Entries", timestamp.MustParse("1Jan97"))
	if err != nil {
		log.Fatal(err)
	}
	if n == nil {
		fmt.Println("no new entries detected")
		return
	}
	fmt.Printf("new entries on 1Jan97: %d\n", n.Result.Len())
	for _, a := range n.Answer.OutLabeled(n.Answer.Root(), "li") {
		for _, b := range n.Answer.OutLabeled(a.Child, "b") {
			for _, txt := range n.Answer.OutLabeled(b.Child, "text") {
				fmt.Printf("  - %s\n", n.Answer.MustValue(txt.Child).Display())
			}
		}
	}
}
