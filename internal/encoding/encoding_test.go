package encoding

import (
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func paperDOEM(t testing.TB) (*doem.Database, *guidegen.PaperIDs) {
	t.Helper()
	db, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(db, guidegen.PaperHistory(ids))
	if err != nil {
		t.Fatal(err)
	}
	return d, ids
}

// TestEncodeStructureFigure5 checks the per-object encoding shapes of
// Figure 5: &val/&cre/&upd for nodes, &l-history/&target/&add/&rem for arcs.
func TestEncodeStructureFigure5(t *testing.T) {
	d, ids := paperDOEM(t)
	enc := Encode(d)
	db := enc.DB
	if err := db.Validate(); err != nil {
		t.Fatalf("encoding invalid: %v", err)
	}

	// The price object (updated 10 -> 20 at t1): &val = 20, one &upd with
	// &time 1Jan97, &ov 10, &nv 20.
	price := enc.Fwd[ids.Price]
	vals := db.OutLabeled(price, LabelVal)
	if len(vals) != 1 {
		t.Fatalf("&val arcs = %d", len(vals))
	}
	if v := db.MustValue(vals[0].Child); !v.Equal(value.Int(20)) {
		t.Errorf("&val = %s, want 20", v)
	}
	upds := db.OutLabeled(price, LabelUpd)
	if len(upds) != 1 {
		t.Fatalf("&upd arcs = %d", len(upds))
	}
	un := upds[0].Child
	checkAtom := func(n oem.NodeID, label string, want value.Value) {
		t.Helper()
		arcs := db.OutLabeled(n, label)
		if len(arcs) != 1 {
			t.Fatalf("%s arcs = %d, want 1", label, len(arcs))
		}
		if v := db.MustValue(arcs[0].Child); !v.Equal(want) {
			t.Errorf("%s = %s, want %s", label, v, want)
		}
	}
	checkAtom(un, LabelTime, value.Time(guidegen.T1))
	checkAtom(un, LabelOV, value.Int(10))
	checkAtom(un, LabelNV, value.Int(20))

	// A complex object's &val points to itself.
	bangkok := enc.Fwd[ids.Bangkok]
	bv := db.OutLabeled(bangkok, LabelVal)
	if len(bv) != 1 || bv[0].Child != bangkok {
		t.Error("complex object's &val must be a self-loop")
	}

	// Created nodes carry &cre with the right timestamp.
	hakata := enc.Fwd[ids.Hakata]
	checkAtom(hakata, LabelCre, value.Time(guidegen.T1))

	// The removed parking arc: Janta has NO live "parking" arc but does
	// have an &parking-history object with &target and &rem 8Jan97.
	janta := enc.Fwd[ids.Janta]
	if len(db.OutLabeled(janta, "parking")) != 0 {
		t.Error("removed arc still live in encoding")
	}
	hist := db.OutLabeled(janta, HistoryLabel("parking"))
	if len(hist) != 1 {
		t.Fatalf("&parking-history arcs = %d", len(hist))
	}
	hn := hist[0].Child
	tgt := db.OutLabeled(hn, LabelTarget)
	if len(tgt) != 1 || tgt[0].Child != enc.Fwd[ids.Parking] {
		t.Error("&target does not reference the parking encoding object")
	}
	checkAtom(hn, LabelRem, value.Time(guidegen.T3))

	// An added arc: guide's restaurant arc to Hakata is live AND has a
	// history object with &add t1.
	root := enc.Fwd[ids.Guide]
	liveRest := db.OutLabeled(root, "restaurant")
	if len(liveRest) != 3 {
		t.Errorf("live restaurant arcs = %d, want 3", len(liveRest))
	}
	found := false
	for _, h := range db.OutLabeled(root, HistoryLabel("restaurant")) {
		tgts := db.OutLabeled(h.Child, LabelTarget)
		if len(tgts) == 1 && tgts[0].Child == hakata {
			found = true
			checkAtom(h.Child, LabelAdd, value.Time(guidegen.T1))
		}
	}
	if !found {
		t.Error("no &restaurant-history entry targets Hakata")
	}

	// Every arc ever gets a history object: 3 restaurants + everything else.
	if got := len(db.OutLabeled(root, HistoryLabel("restaurant"))); got != 3 {
		t.Errorf("restaurant history objects = %d, want 3", got)
	}
}

func TestEncodeOriginalArcsHaveEmptyHistories(t *testing.T) {
	d, ids := paperDOEM(t)
	enc := Encode(d)
	db := enc.DB
	// Bangkok's name arc is original: history object with target only.
	bangkok := enc.Fwd[ids.Bangkok]
	hist := db.OutLabeled(bangkok, HistoryLabel("name"))
	if len(hist) != 1 {
		t.Fatalf("name history objects = %d", len(hist))
	}
	hn := hist[0].Child
	if len(db.OutLabeled(hn, LabelAdd)) != 0 || len(db.OutLabeled(hn, LabelRem)) != 0 {
		t.Error("original arc history must have no add/rem children")
	}
}

func TestEncodePreservesSharingAndCycles(t *testing.T) {
	d, ids := paperDOEM(t)
	enc := Encode(d)
	db := enc.DB
	// The shared parking object has one encoding object; both Bangkok (live)
	// and Janta (via history) reference it.
	parking := enc.Fwd[ids.Parking]
	if parking == oem.InvalidNode {
		t.Fatal("parking not encoded")
	}
	// The nearby-eats cycle survives encoding.
	ne := db.OutLabeled(parking, "nearby-eats")
	if len(ne) != 1 || ne[0].Child != enc.Fwd[ids.Bangkok] {
		t.Error("cycle arc lost in encoding")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	d, _ := paperDOEM(t)
	enc := Encode(d)
	back, err := Decode(enc.DB)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// The decoded database is isomorphic: re-encoding gives an isomorphic
	// OEM graph.
	enc2 := Encode(back)
	if !oem.Isomorphic(enc.DB, enc2.DB) {
		t.Error("decode/re-encode is not isomorphic to the original encoding")
	}
	// Current snapshots agree structurally.
	if !oem.Isomorphic(d.Current(), back.Current()) {
		t.Error("decoded current snapshot differs")
	}
	// And the decoded database is feasible.
	if !back.Feasible() {
		t.Error("decoded DOEM database infeasible")
	}
}

func TestDecodeRoundTripWithDeletions(t *testing.T) {
	d, ids := paperDOEM(t)
	// Remove Hakata's comment so a created node is later deleted.
	if err := d.Apply(timestamp.MustParse("9Jan97"), change.Set{
		change.RemArc{Parent: ids.Hakata, Label: "comment", Child: ids.Comment},
	}); err != nil {
		t.Fatal(err)
	}
	enc := Encode(d)
	back, err := Decode(enc.DB)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !oem.Isomorphic(Encode(back).DB, enc.DB) {
		t.Error("round trip with deletions not isomorphic")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	// A plain OEM database is not an encoding (objects lack &val).
	db, _ := guidegen.PaperGuide()
	if _, err := Decode(db); err == nil {
		t.Error("decoding a non-encoding succeeded")
	}
}

func TestHistoryLabelRoundTrip(t *testing.T) {
	l := HistoryLabel("price")
	if l != "&price-history" {
		t.Errorf("HistoryLabel = %q", l)
	}
	back, ok := DataLabel(l)
	if !ok || back != "price" {
		t.Errorf("DataLabel(%q) = %q, %v", l, back, ok)
	}
	if _, ok := DataLabel("price"); ok {
		t.Error("DataLabel accepted a non-history label")
	}
	// Hyphenated data labels survive.
	if back, ok := DataLabel(HistoryLabel("nearby-eats")); !ok || back != "nearby-eats" {
		t.Errorf("nearby-eats round trip = %q, %v", back, ok)
	}
}

func TestMeasureOverhead(t *testing.T) {
	d, _ := paperDOEM(t)
	enc := Encode(d)
	s := Measure(d, enc)
	if s.DOEMNodes == 0 || s.EncNodes <= s.DOEMNodes {
		t.Errorf("stats implausible: %+v", s)
	}
	if s.NodeFactor() < 1.5 {
		t.Errorf("node factor = %.2f; encoding should cost well over 1x", s.NodeFactor())
	}
	if s.Annotations != 8 {
		t.Errorf("annotations = %d, want 8", s.Annotations)
	}
}

// TestEncodeEmptyDOEM: a DOEM database with no history encodes to just the
// root with a self &val.
func TestEncodeEmptyDOEM(t *testing.T) {
	d := doem.New(oem.New())
	enc := Encode(d)
	if enc.DB.NumNodes() != 1 {
		t.Errorf("nodes = %d, want 1", enc.DB.NumNodes())
	}
	vals := enc.DB.OutLabeled(enc.DB.Root(), LabelVal)
	if len(vals) != 1 || vals[0].Child != enc.DB.Root() {
		t.Error("root &val self-loop missing")
	}
	back, err := Decode(enc.DB)
	if err != nil {
		t.Fatal(err)
	}
	if back.Current().NumNodes() != 1 {
		t.Error("decoded empty database not empty")
	}
}
