package lorel

import (
	"strconv"
	"strings"

	"repro/internal/timestamp"
	"repro/internal/value"
)

// Parse parses a Lorel or Chorel query. The result is not yet canonicalized;
// call Canonicalize (or use Engine.Query, which does both).
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "unexpected %s after query", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// keyword reports whether the current token is the given case-insensitive
// keyword identifier.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.keyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, errf(t.pos, "expected %s, found %s", kind, t)
	}
	p.pos++
	return t, nil
}

// reserved words that terminate a path or cannot be range variables.
var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "exists": true, "in": true, "like": true, "as": true,
}

func isReserved(s string) bool { return reservedWords[strings.ToLower(s)] }

// aggFuncs are the aggregate function names.
var aggFuncs = map[string]bool{
	"count": true, "min": true, "max": true, "sum": true, "avg": true,
}

// annotation keywords recognized after '<' in a path step.
var annotWords = map[string]AnnotOp{
	"add": OpAdd, "rem": OpRem, "cre": OpCre, "upd": OpUpd, "at": OpAt,
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.acceptKeyword("select") {
		return nil, errf(p.peek().pos, "expected 'select', found %s", p.peek())
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if p.acceptKeyword("from") {
		for {
			item, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, item)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseAdd()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		t, err := p.expect(tokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.Label = t.text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	t := p.peek()
	if t.kind != tokIdent || isReserved(t.text) {
		return FromItem{}, errf(t.pos, "expected path expression, found %s", t)
	}
	path, err := p.parsePath()
	if err != nil {
		return FromItem{}, err
	}
	item := FromItem{Path: path}
	// Optional range variable: a following non-reserved identifier.
	if nt := p.peek(); nt.kind == tokIdent && !isReserved(nt.text) {
		item.Var = nt.text
		p.next()
	}
	return item, nil
}

// parsePath parses head(.step)*, where each step may carry annotation
// expressions.
func (p *parser) parsePath() (*PathExpr, error) {
	head, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	path := &PathExpr{Head: head.text, P: head.pos}
	for p.peek().kind == tokDot {
		p.next()
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
	return path, nil
}

func (p *parser) parseStep() (*PathStep, error) {
	step := &PathStep{P: p.peek().pos}
	// Optional arc annotation before the label.
	if p.peek().kind == tokLAngle {
		if ann, ok, err := p.tryParseAnnot(true); err != nil {
			return nil, err
		} else if ok {
			step.Arc = ann
		}
	}
	t := p.next()
	switch t.kind {
	case tokIdent:
		step.Label = t.text
	case tokString:
		step.Label = t.text
		step.Quoted = true
	case tokHash:
		step.Hash = true
	case tokLParen:
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		step.Group = g
	default:
		return nil, errf(t.pos, "expected arc label, found %s", t)
	}
	// Optional node annotation after the label.
	if p.peek().kind == tokLAngle {
		if ann, ok, err := p.tryParseAnnot(false); err != nil {
			return nil, err
		} else if ok {
			step.Node = ann
		}
	}
	if step.Hash && (step.Arc != nil || step.Node != nil) {
		return nil, errf(step.P, "annotation expressions on '#' wildcards are not supported")
	}
	if step.Group != nil && (step.Arc != nil || step.Node != nil) {
		return nil, errf(step.P, "annotation expressions on path groups are not supported")
	}
	return step, nil
}

// parseGroup parses a regular path group after its opening '(':
// label sequences separated by '|', a closing ')', and an optional
// quantifier (*, + or ?).
func (p *parser) parseGroup() (*PathGroup, error) {
	g := &PathGroup{}
	for {
		var seq []string
		for {
			t := p.peek()
			if t.kind != tokIdent && t.kind != tokString {
				return nil, errf(t.pos, "expected label in path group, found %s", t)
			}
			p.next()
			seq = append(seq, t.text)
			if p.peek().kind != tokDot {
				break
			}
			p.next()
		}
		g.Alts = append(g.Alts, seq)
		if p.peek().kind == tokPipe {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokStar:
		g.Quant = '*'
		p.next()
	case tokPlus:
		g.Quant = '+'
		p.next()
	case tokQuestion:
		g.Quant = '?'
		p.next()
	}
	return g, nil
}

// tryParseAnnot parses an annotation expression if the '<' is followed by an
// annotation keyword; otherwise it consumes nothing and returns ok=false
// (the '<' is a comparison operator). arcPos selects which operators are
// legal: add/rem (and virtual at) before a label, cre/upd (and virtual at)
// after one.
func (p *parser) tryParseAnnot(arcPos bool) (*AnnotExpr, bool, error) {
	nt := p.peek2()
	if nt.kind != tokIdent {
		return nil, false, nil
	}
	op, isAnnot := annotWords[strings.ToLower(nt.text)]
	if !isAnnot {
		return nil, false, nil
	}
	open := p.next() // consume '<'
	p.next()         // consume the keyword
	ann := &AnnotExpr{Op: op, P: open.pos}
	switch op {
	case OpAt:
		e, err := p.parseAdd()
		if err != nil {
			return nil, false, err
		}
		ann.AtExpr = e
	case OpAdd, OpRem, OpCre:
		if !arcPos && (op == OpAdd || op == OpRem) {
			return nil, false, errf(open.pos, "%s annotation must precede an arc label", op)
		}
		if arcPos && op == OpCre {
			return nil, false, errf(open.pos, "cre annotation must follow a label")
		}
		if p.acceptKeyword("at") {
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, false, err
			}
			ann.AtVar = v.text
		}
	case OpUpd:
		if arcPos {
			return nil, false, errf(open.pos, "upd annotation must follow a label")
		}
		if p.acceptKeyword("at") {
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, false, err
			}
			ann.AtVar = v.text
		}
		if p.acceptKeyword("from") {
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, false, err
			}
			ann.FromVar = v.text
		}
		if p.acceptKeyword("to") {
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, false, err
			}
			ann.ToVar = v.text
		}
	}
	if _, err := p.expect(tokRAngle); err != nil {
		return nil, false, err
	}
	return ann, true, nil
}

// Boolean expression grammar.

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		pos := p.next().pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r, P: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		pos := p.next().pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r, P: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("not") {
		pos := p.next().pos
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e, P: pos}, nil
	}
	if p.keyword("exists") {
		pos := p.next().pos
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("in") {
			return nil, errf(p.peek().pos, "expected 'in' in exists, found %s", p.peek())
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		cond, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Var: v.text, In: path, Cond: cond, P: pos}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[tokenKind]string{
	tokEq: "=", tokNeq: "!=", tokLAngle: "<", tokRAngle: ">",
	tokLeq: "<=", tokGeq: ">=",
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if op, ok := cmpOps[t.kind]; ok {
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r, P: t.pos}, nil
	}
	if p.keyword("like") {
		pos := p.next().pos
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: "like", L: l, R: r, P: pos}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		switch t.kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, P: t.pos}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		switch t.kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, P: t.pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokMinus:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold constant negation.
		if c, ok := e.(*ConstExpr); ok {
			switch c.Val.Kind() {
			case value.KindInt:
				return &ConstExpr{Val: value.Int(-c.Val.AsInt()), P: t.pos}, nil
			case value.KindReal:
				return &ConstExpr{Val: value.Real(-c.Val.AsReal()), P: t.pos}, nil
			}
		}
		return &BinExpr{Op: "-", L: &ConstExpr{Val: value.Int(0), P: t.pos}, R: e, P: t.pos}, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokInt:
		p.next()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad integer %q", t.text)
		}
		return &ConstExpr{Val: value.Int(i), P: t.pos}, nil
	case tokReal:
		p.next()
		r, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "bad real %q", t.text)
		}
		return &ConstExpr{Val: value.Real(r), P: t.pos}, nil
	case tokTime:
		p.next()
		ts, err := timestamp.Parse(t.text)
		if err != nil {
			return nil, errf(t.pos, "bad timestamp %q", t.text)
		}
		return &ConstExpr{Val: value.Time(ts), P: t.pos}, nil
	case tokString:
		p.next()
		return &ConstExpr{Val: value.Str(t.text), P: t.pos}, nil
	case tokIdent:
		// t[i] polling-time reference (QSS, Section 6).
		if t.text == "t" && p.peek2().kind == tokLBracket {
			p.next()
			p.next() // '['
			neg := false
			if p.peek().kind == tokMinus {
				neg = true
				p.next()
			}
			it, err := p.expect(tokInt)
			if err != nil {
				return nil, err
			}
			idx, err := strconv.Atoi(it.text)
			if err != nil {
				return nil, errf(it.pos, "bad index %q", it.text)
			}
			if neg {
				idx = -idx
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &TimeRefExpr{Index: idx, P: t.pos}, nil
		}
		if isReserved(t.text) {
			return nil, errf(t.pos, "unexpected keyword %q", t.text)
		}
		// Aggregate call: count(path), min(path), ...
		if aggFuncs[strings.ToLower(t.text)] && p.peek2().kind == tokLParen {
			fn := strings.ToLower(t.text)
			p.next() // ident
			p.next() // '('
			path, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &AggExpr{Fn: fn, Path: path, P: t.pos}, nil
		}
		// Boolean literals.
		switch strings.ToLower(t.text) {
		case "true":
			p.next()
			return &ConstExpr{Val: value.Bool(true), P: t.pos}, nil
		case "false":
			p.next()
			return &ConstExpr{Val: value.Bool(false), P: t.pos}, nil
		case "null":
			p.next()
			return &ConstExpr{Val: value.Null(), P: t.pos}, nil
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &PathValueExpr{Path: path}, nil
	}
	return nil, errf(t.pos, "unexpected %s", t)
}
