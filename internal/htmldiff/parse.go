// Package htmldiff reimplements the paper's motivating htmldiff tool
// (Section 1.1, Figure 1, after CRGMW96): it parses two versions of an HTML
// page into OEM trees, computes a structural matching with oemdiff, and
// emits a marked-up copy of the page highlighting insertions, deletions and
// updates.
package htmldiff

import (
	"strings"
)

// OEM labels used for the HTML-to-OEM mapping: elements become complex
// objects labeled by their tag, text runs become "text" atoms, attributes
// become "@name" atoms.
const (
	TextLabel  = "text"
	AttrPrefix = "@"
)

// voidElements never have content (HTML5 list, lowercase).
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements hold raw text until their matching close tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// implicitClose lists tags that are implicitly closed by an open tag of the
// same kind (tolerant handling of common tag-soup).
var implicitClose = map[string]bool{
	"li": true, "p": true, "tr": true, "td": true, "th": true,
	"option": true, "dt": true, "dd": true,
}

// node is the intermediate parse tree.
type htmlNode struct {
	tag      string      // "" for text nodes
	text     string      // text content for text nodes
	attrs    [][2]string // attribute name/value pairs, in order
	children []*htmlNode
}

// Parse tokenizes and tree-builds HTML tolerantly: unclosed tags are closed
// implicitly, unknown constructs are skipped, and attribute quoting is
// optional. It never fails: any input yields a tree.
func Parse(src string) *htmlNode {
	p := &htmlParser{src: src}
	root := &htmlNode{tag: "#root"}
	p.parseInto(root, "")
	return root
}

type htmlParser struct {
	src      string
	pos      int
	tagStart int // where the last open tag began, for implicit-close rewind
}

// parseInto appends parsed content to parent until EOF or a close tag for
// stopTag (or an ancestor, which is pushed back).
func (p *htmlParser) parseInto(parent *htmlNode, stopTag string) (closedTag string) {
	for p.pos < len(p.src) {
		if p.src[p.pos] != '<' {
			text := p.readText()
			if t := strings.TrimSpace(text); t != "" {
				parent.children = append(parent.children, &htmlNode{text: collapseSpace(text)})
			}
			continue
		}
		// Comments and doctype.
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			if end := strings.Index(p.src[p.pos+4:], "-->"); end >= 0 {
				p.pos += 4 + end + 3
			} else {
				p.pos = len(p.src)
			}
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!") || strings.HasPrefix(p.src[p.pos:], "<?") {
			if end := strings.IndexByte(p.src[p.pos:], '>'); end >= 0 {
				p.pos += end + 1
			} else {
				p.pos = len(p.src)
			}
			continue
		}
		// Close tag.
		if strings.HasPrefix(p.src[p.pos:], "</") {
			tag := p.readCloseTag()
			if tag == "" {
				continue
			}
			if tag == stopTag {
				return tag
			}
			if stopTag == "" {
				continue // stray close tag at the top level: drop it
			}
			// A close tag for something else: return it so an ancestor can
			// match (the intermediate levels close implicitly).
			return tag
		}
		// Open tag.
		tag, attrs, selfClose, ok := p.readOpenTag()
		if !ok {
			// Stray '<': treat as text.
			parent.children = append(parent.children, &htmlNode{text: "<"})
			p.pos++
			continue
		}
		node := &htmlNode{tag: tag, attrs: attrs}
		// Implicit close: "<li>a<li>b" — a new li closes the open one.
		if implicitClose[tag] && stopTag == tag {
			p.pos = p.tagStart // rewind; the caller closes first
			return tag
		}
		parent.children = append(parent.children, node)
		if selfClose || voidElements[tag] {
			continue
		}
		if rawTextElements[tag] {
			raw := p.readRawText(tag)
			if strings.TrimSpace(raw) != "" {
				node.children = append(node.children, &htmlNode{text: raw})
			}
			continue
		}
		closed := p.parseInto(node, tag)
		if closed != tag && closed != "" {
			// The close tag belongs to an ancestor: propagate it.
			if closed == stopTag {
				return closed
			}
			// Unmatched close tag: drop it.
		}
	}
	return ""
}

func (p *htmlParser) readText() string {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '<' {
		p.pos++
	}
	return decodeEntities(p.src[start:p.pos])
}

func (p *htmlParser) readCloseTag() string {
	// at "</"
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		p.pos = len(p.src)
		return ""
	}
	tag := strings.ToLower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
	p.pos += end + 1
	return tag
}

func (p *htmlParser) readOpenTag() (tag string, attrs [][2]string, selfClose, ok bool) {
	p.tagStart = p.pos
	i := p.pos + 1
	start := i
	for i < len(p.src) && isTagChar(p.src[i]) {
		i++
	}
	if i == start {
		return "", nil, false, false
	}
	tag = strings.ToLower(p.src[start:i])
	// Attributes.
	for i < len(p.src) {
		for i < len(p.src) && isHTMLSpace(p.src[i]) {
			i++
		}
		if i < len(p.src) && p.src[i] == '>' {
			i++
			p.pos = i
			return tag, attrs, selfClose, true
		}
		if i+1 < len(p.src) && p.src[i] == '/' && p.src[i+1] == '>' {
			p.pos = i + 2
			return tag, attrs, true, true
		}
		if i >= len(p.src) {
			break
		}
		// Attribute name.
		ns := i
		for i < len(p.src) && !isHTMLSpace(p.src[i]) && p.src[i] != '=' && p.src[i] != '>' && p.src[i] != '/' {
			i++
		}
		if i == ns {
			i++
			continue
		}
		name := strings.ToLower(p.src[ns:i])
		val := ""
		for i < len(p.src) && isHTMLSpace(p.src[i]) {
			i++
		}
		if i < len(p.src) && p.src[i] == '=' {
			i++
			for i < len(p.src) && isHTMLSpace(p.src[i]) {
				i++
			}
			if i < len(p.src) && (p.src[i] == '"' || p.src[i] == '\'') {
				q := p.src[i]
				i++
				vs := i
				for i < len(p.src) && p.src[i] != q {
					i++
				}
				val = decodeEntities(p.src[vs:i])
				if i < len(p.src) {
					i++
				}
			} else {
				vs := i
				for i < len(p.src) && !isHTMLSpace(p.src[i]) && p.src[i] != '>' {
					i++
				}
				val = decodeEntities(p.src[vs:i])
			}
		}
		attrs = append(attrs, [2]string{name, val})
	}
	p.pos = len(p.src)
	return tag, attrs, selfClose, true
}

func (p *htmlParser) readRawText(tag string) string {
	// Case-insensitive byte search; ToLower on the haystack would shift
	// offsets when the input contains invalid UTF-8.
	idx := indexCloseTag(p.src[p.pos:], tag)
	if idx < 0 {
		raw := p.src[p.pos:]
		p.pos = len(p.src)
		return raw
	}
	raw := p.src[p.pos : p.pos+idx]
	rest := p.src[p.pos+idx:]
	if gt := strings.IndexByte(rest, '>'); gt >= 0 {
		p.pos += idx + gt + 1
	} else {
		p.pos = len(p.src)
	}
	return raw
}

// indexCloseTag finds the first "</tag" in s, matching the (already
// lowercase) tag name ASCII-case-insensitively.
func indexCloseTag(s, tag string) int {
	n := 2 + len(tag)
	for i := 0; i+n <= len(s); i++ {
		if s[i] != '<' || s[i+1] != '/' {
			continue
		}
		match := true
		for j := 0; j < len(tag); j++ {
			c := s[i+2+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != tag[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func isTagChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isHTMLSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'", "nbsp": " ",
}

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '&' {
			if semi := strings.IndexByte(s[i:], ';'); semi > 1 && semi < 10 {
				name := s[i+1 : i+semi]
				if rep, ok := entities[name]; ok {
					b.WriteString(rep)
					i += semi + 1
					continue
				}
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
