package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func dialPair(t *testing.T, nw *Net, from, to string) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := nw.Listen(to)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c, err := nw.Dial(from, to)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-accepted:
		return c, s
	case <-time.After(time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

func TestNetRoundTrip(t *testing.T) {
	nw := NewNet(1)
	c, s := dialPair(t, nw, "a", "b")
	defer c.Close()
	defer s.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(s, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
	if _, err := s.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "world" {
		t.Fatalf("read %q, %v", buf, err)
	}
	// EOF after peer close, once drained.
	s.Write([]byte("bye"))
	s.Close()
	rest, _ := io.ReadAll(c)
	if string(rest) != "bye" {
		t.Fatalf("drained %q, want bye", rest)
	}
}

func TestNetAsymmetricPartition(t *testing.T) {
	nw := NewNet(1)
	c, s := dialPair(t, nw, "a", "b")
	defer c.Close()
	defer s.Close()

	nw.Cut("a", "b") // a's packets vanish; b's still arrive

	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("blackholed write should succeed locally: %v", err)
	}
	if _, err := s.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "back" {
		t.Fatalf("reverse direction broken: %q, %v", buf, err)
	}
	// Nothing arrives at b.
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if n, err := s.Read(buf); err == nil {
		t.Fatalf("read through cut got %d bytes", n)
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout through cut, got %v", err)
	}

	// Dial fails while cut, works after heal.
	if _, err := nw.Dial("a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial through cut: %v", err)
	}
	nw.Heal("a", "b")
	c2, err := nw.Dial("a", "b")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
}

func TestNetDelay(t *testing.T) {
	nw := NewNet(1)
	nw.SetDelay("a", "b", 40*time.Millisecond)
	c, s := dialPair(t, nw, "a", "b")
	defer c.Close()
	defer s.Close()
	start := time.Now()
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~40ms", d)
	}
}

func TestNetReorder(t *testing.T) {
	nw := NewNet(7)
	nw.SetReorder("a", "b", 0.5)
	c, s := dialPair(t, nw, "a", "b")
	defer c.Close()
	defer s.Close()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			c.Write([]byte{byte(i)})
		}
	}()
	got := make([]byte, 0, n)
	buf := make([]byte, 64)
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	for len(got) < n {
		k, err := s.Read(buf)
		if err != nil {
			t.Fatalf("read after %d bytes: %v", len(got), err)
		}
		got = append(got, buf[:k]...)
	}
	// Same bytes, scrambled order: framed protocols must detect this.
	sorted := append([]byte(nil), got...)
	inOrder := true
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("reorder rate 0.5 delivered every chunk in order")
	}
	counts := make(map[byte]int)
	for _, b := range got {
		counts[b]++
	}
	for i := 0; i < n; i++ {
		if counts[byte(i)] != 1 {
			t.Fatalf("byte %d delivered %d times", i, counts[byte(i)])
		}
	}
}

func TestCutAfterBytes(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	cut := CutAfterBytes(a, 10)
	go func() {
		cut.Write([]byte("0123456789abcdef")) // 16 bytes, cut at 10
	}()
	buf := make([]byte, 32)
	got := make([]byte, 0, 16)
	for {
		n, err := b.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
		if len(got) >= 10 {
			// One more read should see the close.
			b.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		}
	}
	if !bytes.Equal(got, []byte("0123456789")) {
		t.Fatalf("received %q, want exactly the first 10 bytes", got)
	}
	if !cut.Tripped() {
		t.Fatal("limit not tripped")
	}
	if _, err := cut.Write([]byte("more")); !errors.Is(err, ErrByteLimit) {
		t.Fatalf("post-trip write: %v", err)
	}
}
