package qss

import (
	"errors"
	"net"
	"sort"
	"sync"
	"time"
)

// ErrClientClosed is returned by RobustClient calls after Close.
var ErrClientClosed = errors.New("qss: client closed")

// RobustOptions tunes RobustClient's reconnection behavior.
type RobustOptions struct {
	// ReconnectInitial is the backoff after the first failed dial
	// (default 100ms).
	ReconnectInitial time.Duration
	// ReconnectMax caps the exponential redial backoff (default 5s).
	ReconnectMax time.Duration
	// PingInterval, when positive, round-trips a ping at this cadence so
	// a server-side idle timeout does not reap the connection.
	PingInterval time.Duration
	// IdleTimeout, when positive, tears the connection down (triggering
	// a reconnect) if the server sends nothing — not even heartbeats —
	// for this long.
	IdleTimeout time.Duration
	// OnEvent observes connection lifecycle events ("dial", "connected",
	// "disconnected", "resubscribe <name>") for logging; err may be nil.
	OnEvent func(event string, err error)
}

func (o RobustOptions) withDefaults() RobustOptions {
	if o.ReconnectInitial <= 0 {
		o.ReconnectInitial = 100 * time.Millisecond
	}
	if o.ReconnectMax < o.ReconnectInitial {
		o.ReconnectMax = 5 * time.Second
		if o.ReconnectMax < o.ReconnectInitial {
			o.ReconnectMax = o.ReconnectInitial
		}
	}
	return o
}

// RobustClient wraps Client with automatic reconnection: when the
// connection drops it redials with capped exponential backoff, resumes
// every subscription it owns (replaying server-buffered notifications),
// and dedupes notifications by the server's per-subscription sequence, so
// a consumer sees each notification exactly once across reconnects (as
// long as the server's replay buffer did not overflow — watch for Gap
// pushes via OnEvent at the wire level).
type RobustClient struct {
	dial func() (net.Conn, error)
	opts RobustOptions

	notifCh  chan ClientNotification
	healthCh chan ClientHealth
	done     chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond
	cur     *Client
	subs    map[string]SubSpec
	lastSeq map[string]uint64
	closed  bool
	// addrs/addrIdx rotate through fallback addresses on dial failure
	// (DialRobustAddrs); redirect, when set, is tried first — the primary
	// address a read replica pointed us at.
	addrs    []string
	addrIdx  int
	redirect string
}

// DialRobust returns a RobustClient (re)connecting to addr over TCP.
func DialRobust(addr string, opts *RobustOptions) *RobustClient {
	return DialRobustAddrs([]string{addr}, opts)
}

// DialRobustAddrs returns a RobustClient over TCP with failover targets:
// it connects to the first reachable address, rotates to the next on dial
// failure, and follows server redirects — a replica answering a mutating
// op names the primary's advertised address, which becomes the next dial
// target. Give it the primary plus its replicas and the client finds
// whoever is primary after a failover.
func DialRobustAddrs(addrs []string, opts *RobustOptions) *RobustClient {
	rc := newRobustClient(opts)
	rc.addrs = append([]string(nil), addrs...)
	go rc.run()
	return rc
}

// NewRobustClient returns a RobustClient using dial to (re)establish its
// connection; opts may be nil for defaults. The first connection is made
// asynchronously — API calls block until it is up.
func NewRobustClient(dial func() (net.Conn, error), opts *RobustOptions) *RobustClient {
	rc := newRobustClient(opts)
	rc.dial = dial
	go rc.run()
	return rc
}

func newRobustClient(opts *RobustOptions) *RobustClient {
	var o RobustOptions
	if opts != nil {
		o = *opts
	}
	rc := &RobustClient{
		opts:     o.withDefaults(),
		notifCh:  make(chan ClientNotification, 256),
		healthCh: make(chan ClientHealth, 64),
		done:     make(chan struct{}),
		subs:     make(map[string]SubSpec),
		lastSeq:  make(map[string]uint64),
	}
	rc.cond = sync.NewCond(&rc.mu)
	return rc
}

// dialConn establishes the next connection: the redirect target if a
// replica pointed us at the primary, else the current fallback address,
// else the custom dial function. A failed dial advances the rotation.
func (rc *RobustClient) dialConn() (net.Conn, error) {
	rc.mu.Lock()
	target := rc.redirect
	if target == "" && len(rc.addrs) > 0 {
		target = rc.addrs[rc.addrIdx%len(rc.addrs)]
	}
	dial := rc.dial
	rc.mu.Unlock()
	if target == "" {
		return dial()
	}
	nc, err := net.Dial("tcp", target)
	if err != nil {
		rc.mu.Lock()
		if rc.redirect != "" {
			// The redirect target is down too; fall back to rotation.
			rc.redirect = ""
		} else {
			rc.addrIdx++
		}
		rc.mu.Unlock()
	}
	return nc, err
}

// noteRedirect records the primary address carried by a RedirectError
// and, when the redirect arrived over a live connection, tears that
// connection down so the manager redials at the primary. It reports
// whether err was such a redirect.
func (rc *RobustClient) noteRedirect(err error) bool {
	var re *RedirectError
	if !errors.As(err, &re) || re.Addr == "" {
		return false
	}
	rc.mu.Lock()
	rc.redirect = re.Addr
	cur := rc.cur
	rc.mu.Unlock()
	rc.event("redirect "+re.Addr, nil)
	if cur != nil {
		cur.Close()
	}
	return true
}

// Notifications returns the deduplicated notification stream. It is
// closed after Close.
func (rc *RobustClient) Notifications() <-chan ClientNotification { return rc.notifCh }

// Health returns the subscription health-transition stream. It is closed
// after Close.
func (rc *RobustClient) Health() <-chan ClientHealth { return rc.healthCh }

// run is the connection manager: dial, resubscribe, pump, repeat.
func (rc *RobustClient) run() {
	defer close(rc.notifCh)
	defer close(rc.healthCh)
	backoff := rc.opts.ReconnectInitial
	for {
		if rc.isClosed() {
			return
		}
		nc, err := rc.dialConn()
		if err != nil {
			rc.event("dial", err)
			if !rc.sleep(backoff) {
				return
			}
			backoff *= 2
			if backoff > rc.opts.ReconnectMax {
				backoff = rc.opts.ReconnectMax
			}
			continue
		}
		cl := NewClient(nc)
		if rc.opts.IdleTimeout > 0 {
			cl.SetIdleTimeout(rc.opts.IdleTimeout)
		}
		if !rc.resubscribe(cl) {
			// Resume can race the server noticing the old connection died
			// (the subscription is still "owned" until then) — back off and
			// redial rather than running with a partial subscription set.
			cl.Close()
			if !rc.sleep(backoff) {
				return
			}
			backoff *= 2
			if backoff > rc.opts.ReconnectMax {
				backoff = rc.opts.ReconnectMax
			}
			continue
		}
		backoff = rc.opts.ReconnectInitial
		rc.setClient(cl)
		rc.event("connected", nil)
		stopPing := make(chan struct{})
		if rc.opts.PingInterval > 0 {
			go pinger(cl, rc.opts.PingInterval, stopPing)
		}
		rc.pump(cl)
		close(stopPing)
		rc.setClient(nil)
		cl.Close()
		rc.event("disconnected", cl.Err())
		if rc.isClosed() {
			return
		}
	}
}

// resubscribe re-establishes every owned subscription with resume
// semantics. It reports false when any resume fails — whether the
// connection died mid-way or the server rejected it (e.g. it still
// considers the old connection the owner) — so the caller backs off and
// tries again on a fresh connection. Specs are always kept.
func (rc *RobustClient) resubscribe(cl *Client) bool {
	rc.mu.Lock()
	specs := make([]SubSpec, 0, len(rc.subs))
	for _, sp := range rc.subs {
		specs = append(specs, sp)
	}
	rc.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	for _, sp := range specs {
		resumed, err := cl.subscribe(sp, true)
		if err != nil {
			// A replica's redirect sets the next dial target (the
			// primary); any other failure backs off and retries here.
			rc.noteRedirect(err)
			rc.event("resubscribe "+sp.Name, err)
			return false
		}
		if !resumed {
			// Fresh subscription (the server lost the orphan — restart or
			// linger expiry): its notification sequence restarts from 1,
			// so the dedupe watermark must too, or every notification
			// under the old watermark would be swallowed as a replay.
			rc.mu.Lock()
			delete(rc.lastSeq, sp.Name)
			rc.mu.Unlock()
			rc.event("resubscribe "+sp.Name+" (fresh)", nil)
		}
	}
	return true
}

// pump forwards pushes from one connection, deduping notifications, until
// the connection dies or the client is closed.
func (rc *RobustClient) pump(cl *Client) {
	notif, health := cl.Notifications(), cl.Health()
	for notif != nil || health != nil {
		select {
		case <-rc.done:
			return
		case n, ok := <-notif:
			if !ok {
				notif = nil
				continue
			}
			if rc.isDuplicate(n) {
				continue
			}
			select {
			case rc.notifCh <- n:
			case <-rc.done:
				return
			}
		case h, ok := <-health:
			if !ok {
				health = nil
				continue
			}
			select {
			case rc.healthCh <- h:
			case <-rc.done:
				return
			}
		}
	}
}

// isDuplicate records n's sequence and reports whether it was already
// delivered (a replay from the server's resume buffer).
func (rc *RobustClient) isDuplicate(n ClientNotification) bool {
	if n.Seq == 0 {
		return false // pre-sequence server; cannot dedupe
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if n.Seq <= rc.lastSeq[n.Subscription] {
		return true
	}
	rc.lastSeq[n.Subscription] = n.Seq
	return false
}

func pinger(cl *Client, interval time.Duration, stop chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-cl.Done():
			return
		case <-t.C:
			if cl.Ping() != nil {
				return
			}
		}
	}
}

func (rc *RobustClient) setClient(cl *Client) {
	rc.mu.Lock()
	rc.cur = cl
	rc.cond.Broadcast()
	rc.mu.Unlock()
}

func (rc *RobustClient) isClosed() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.closed
}

// sleep waits d or until Close; it reports false when closed.
func (rc *RobustClient) sleep(d time.Duration) bool {
	select {
	case <-rc.done:
		return false
	case <-time.After(d):
		return true
	}
}

func (rc *RobustClient) event(ev string, err error) {
	if rc.opts.OnEvent != nil {
		rc.opts.OnEvent(ev, err)
	}
}

// client blocks until a connection is up (or the client is closed).
func (rc *RobustClient) client() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for rc.cur == nil && !rc.closed {
		rc.cond.Wait()
	}
	if rc.closed {
		return nil, ErrClientClosed
	}
	return rc.cur, nil
}

// Subscribe creates a subscription and remembers it for automatic
// re-subscription after reconnects. It blocks until connected.
func (rc *RobustClient) Subscribe(name, source, sourceName, polling, filter, freq string) error {
	sp := SubSpec{
		Name: name, Source: source, SourceName: sourceName,
		Polling: polling, Filter: filter, Freq: freq,
	}
	cl, err := rc.client()
	if err != nil {
		return err
	}
	if _, err := cl.subscribe(sp, false); err != nil {
		rc.noteRedirect(err)
		return err
	}
	rc.mu.Lock()
	rc.subs[name] = sp
	rc.mu.Unlock()
	return nil
}

// Unsubscribe removes a subscription and forgets its re-subscription spec.
func (rc *RobustClient) Unsubscribe(name string) error {
	cl, err := rc.client()
	if err != nil {
		return err
	}
	if err := cl.Unsubscribe(name); err != nil {
		rc.noteRedirect(err)
		return err
	}
	rc.mu.Lock()
	delete(rc.subs, name)
	delete(rc.lastSeq, name)
	rc.mu.Unlock()
	return nil
}

// List returns subscription names from the server.
func (rc *RobustClient) List() ([]string, error) {
	cl, err := rc.client()
	if err != nil {
		return nil, err
	}
	return cl.List()
}

// Poll triggers a manual poll (see Client.Poll).
func (rc *RobustClient) Poll(name, at string) error {
	cl, err := rc.client()
	if err != nil {
		return err
	}
	if err := cl.Poll(name, at); err != nil {
		rc.noteRedirect(err)
		return err
	}
	return nil
}

// Status reports the connected server's replication status (see
// Client.Status).
func (rc *RobustClient) Status() (*WireReplStatus, error) {
	cl, err := rc.client()
	if err != nil {
		return nil, err
	}
	return cl.Status()
}

// Close stops reconnecting and tears down the current connection. The
// Notifications and Health channels are closed once the manager exits.
func (rc *RobustClient) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	cur := rc.cur
	rc.cond.Broadcast()
	rc.mu.Unlock()
	close(rc.done)
	if cur != nil {
		cur.Close()
	}
	return nil
}
