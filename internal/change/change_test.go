package change

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// guideFixture builds the Figure 2 Guide database and returns the node ids
// needed by the paper's Example 2.2 history: n1 (Bangkok price), n4 (guide
// root), n6 (Janta), n7 (parking).
func guideFixture(t testing.TB) (db *oem.Database, n1, n4, n6, n7 oem.NodeID) {
	t.Helper()
	b := oem.NewBuilder()
	guide := b.Root()
	bangkok := b.ComplexArc(guide, "restaurant")
	b.AtomArc(bangkok, "name", value.Str("Bangkok Cuisine"))
	price := b.AtomArc(bangkok, "price", value.Int(10))
	b.AtomArc(bangkok, "cuisine", value.Str("Thai"))
	addr := b.ComplexArc(bangkok, "address")
	b.AtomArc(addr, "street", value.Str("Lytton"))
	b.AtomArc(addr, "city", value.Str("Palo Alto"))
	janta := b.ComplexArc(guide, "restaurant")
	b.AtomArc(janta, "name", value.Str("Janta"))
	b.AtomArc(janta, "price", value.Str("moderate"))
	b.AtomArc(janta, "address", value.Str("120 Lytton"))
	parking := b.ComplexArc(janta, "parking")
	b.Arc(bangkok, "parking", parking)
	b.AtomArc(parking, "comment", value.Str("usually full"))
	b.AtomArc(parking, "address", value.Str("Lytton lot 2"))
	b.Arc(parking, "nearby-eats", bangkok)
	return b.Build(), price, guide, janta, parking
}

// paperHistory returns the Example 2.3 history against the fixture's ids.
// n2, n3, n5 are fresh ids for the Hakata restaurant, its name, and the
// later comment.
func paperHistory(db *oem.Database, n1, n4, n6, n7 oem.NodeID) (History, oem.NodeID, oem.NodeID, oem.NodeID) {
	n2 := oem.NodeID(100)
	n3 := oem.NodeID(101)
	n5 := oem.NodeID(102)
	h := History{
		{At: timestamp.MustParse("1Jan97"), Ops: Set{
			UpdNode{Node: n1, Value: value.Int(20)},
			CreNode{Node: n2, Value: value.Complex()},
			CreNode{Node: n3, Value: value.Str("Hakata")},
			AddArc{Parent: n4, Label: "restaurant", Child: n2},
			AddArc{Parent: n2, Label: "name", Child: n3},
		}},
		{At: timestamp.MustParse("5Jan97"), Ops: Set{
			CreNode{Node: n5, Value: value.Str("need info")},
			AddArc{Parent: n2, Label: "comment", Child: n5},
		}},
		{At: timestamp.MustParse("8Jan97"), Ops: Set{
			RemArc{Parent: n6, Label: "parking", Child: n7},
		}},
	}
	return h, n2, n3, n5
}

// TestPaperExample23History replays Examples 2.2/2.3 and checks the
// resulting database matches Figure 3.
func TestPaperExample23History(t *testing.T) {
	db, n1, n4, n6, n7 := guideFixture(t)
	h, n2, n3, n5 := paperHistory(db, n1, n4, n6, n7)
	if err := h.Validate(db); err != nil {
		t.Fatalf("paper history invalid: %v", err)
	}
	if err := h.Apply(db); err != nil {
		t.Fatal(err)
	}
	// Figure 3 checks: price updated to 20.
	if v := db.MustValue(n1); !v.Equal(value.Int(20)) {
		t.Errorf("price = %s, want 20", v)
	}
	// Hakata restaurant with name and comment.
	if !db.HasArc(n4, "restaurant", n2) {
		t.Error("restaurant arc to Hakata missing")
	}
	if v := db.MustValue(n3); !v.Equal(value.Str("Hakata")) {
		t.Errorf("name = %s", v)
	}
	if !db.HasArc(n2, "comment", n5) {
		t.Error("comment arc missing")
	}
	// Janta's parking arc removed; parking node still reachable via Bangkok.
	if db.HasArc(n6, "parking", n7) {
		t.Error("removed parking arc still present")
	}
	if !db.Has(n7) {
		t.Error("shared parking node was collected though still reachable")
	}
	// Three restaurants now.
	if got := len(db.OutLabeled(n4, "restaurant")); got != 3 {
		t.Errorf("restaurants = %d, want 3", got)
	}
	if err := db.Validate(); err != nil {
		t.Errorf("post-history db invalid: %v", err)
	}
}

func TestOpValidation(t *testing.T) {
	db := oem.New()
	atom := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "a", atom); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		op   Op
		ok   bool
	}{
		{"creNode fresh", CreNode{Node: 50, Value: value.Int(1)}, true},
		{"creNode existing", CreNode{Node: atom, Value: value.Int(1)}, false},
		{"creNode zero id", CreNode{Node: 0, Value: value.Int(1)}, false},
		{"updNode atom", UpdNode{Node: atom, Value: value.Str("x")}, true},
		{"updNode root-with-children", UpdNode{Node: db.Root(), Value: value.Int(1)}, false},
		{"updNode missing", UpdNode{Node: 99, Value: value.Int(1)}, false},
		{"addArc dup", AddArc{Parent: db.Root(), Label: "a", Child: atom}, false},
		{"addArc from atom", AddArc{Parent: atom, Label: "x", Child: db.Root()}, false},
		{"addArc new", AddArc{Parent: db.Root(), Label: "b", Child: atom}, true},
		{"addArc empty label", AddArc{Parent: db.Root(), Label: "", Child: atom}, false},
		{"remArc present", RemArc{Parent: db.Root(), Label: "a", Child: atom}, true},
		{"remArc absent", RemArc{Parent: db.Root(), Label: "zz", Child: atom}, false},
	}
	for _, tt := range tests {
		err := tt.op.Validate(db)
		if (err == nil) != tt.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestSetCanonicalOrderEnablesRemThenUpd(t *testing.T) {
	// {remArc(p,a,c), updNode(p, atomic)} is valid only when the removal
	// comes first — the canonical order must find it.
	db := oem.New()
	p := db.CreateNode(value.Complex())
	c := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "p", p); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(p, "a", c); err != nil {
		t.Fatal(err)
	}
	s := Set{
		UpdNode{Node: p, Value: value.Str("now atomic")},
		RemArc{Parent: p, Label: "a", Child: c},
	}
	if err := s.Validate(db); err != nil {
		t.Fatalf("set should be valid via rem-then-upd order: %v", err)
	}
	if _, err := s.Apply(db); err != nil {
		t.Fatal(err)
	}
	if v := db.MustValue(p); !v.Equal(value.Str("now atomic")) {
		t.Error("update not applied")
	}
	if db.Has(c) {
		t.Error("orphaned child not collected")
	}
}

func TestSetCanonicalOrderEnablesUpdThenAdd(t *testing.T) {
	// {updNode(n, C), addArc(n, l, m)}: upd must come first.
	db := oem.New()
	n := db.CreateNode(value.Int(5))
	m := db.CreateNode(value.Int(6))
	if err := db.AddArc(db.Root(), "n", n); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(db.Root(), "m", m); err != nil {
		t.Fatal(err)
	}
	s := Set{
		AddArc{Parent: n, Label: "x", Child: m},
		UpdNode{Node: n, Value: value.Complex()},
	}
	if err := s.Validate(db); err != nil {
		t.Fatalf("set should be valid via upd-then-add order: %v", err)
	}
	if _, err := s.Apply(db); err != nil {
		t.Fatal(err)
	}
	if !db.HasArc(n, "x", m) {
		t.Error("arc not added")
	}
}

func TestSetCreThenUpdThenAdd(t *testing.T) {
	// Example 2.2's first step shape: creations plus arcs wiring them in.
	db := oem.New()
	s := Set{
		AddArc{Parent: db.Root(), Label: "restaurant", Child: 10},
		AddArc{Parent: 10, Label: "name", Child: 11},
		CreNode{Node: 10, Value: value.Complex()},
		CreNode{Node: 11, Value: value.Str("Hakata")},
	}
	if err := s.Validate(db); err != nil {
		t.Fatalf("creation set invalid: %v", err)
	}
	if _, err := s.Apply(db); err != nil {
		t.Fatal(err)
	}
	if !db.HasArc(10, "name", 11) {
		t.Error("arcs not wired")
	}
}

func TestSetRejectsAddAndRemSameArc(t *testing.T) {
	db := oem.New()
	c := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "a", c); err != nil {
		t.Fatal(err)
	}
	s := Set{
		RemArc{Parent: db.Root(), Label: "a", Child: c},
		AddArc{Parent: db.Root(), Label: "a", Child: c},
	}
	if err := s.Validate(db); !errors.Is(err, ErrInvalidSet) {
		t.Errorf("add+rem of same arc: %v, want ErrInvalidSet", err)
	}
}

func TestSetRejectsTwoUpdatesSameNode(t *testing.T) {
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "n", n); err != nil {
		t.Fatal(err)
	}
	s := Set{
		UpdNode{Node: n, Value: value.Int(2)},
		UpdNode{Node: n, Value: value.Int(3)},
	}
	if err := s.Validate(db); !errors.Is(err, ErrInvalidSet) {
		t.Errorf("two upds: %v, want ErrInvalidSet", err)
	}
}

func TestSetRejectsConflictingUpdAdd(t *testing.T) {
	// {updNode(n, atomic), addArc(n, l, m)} is invalid in every order.
	db := oem.New()
	n := db.CreateNode(value.Complex())
	m := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "n", n); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(db.Root(), "m", m); err != nil {
		t.Fatal(err)
	}
	s := Set{
		UpdNode{Node: n, Value: value.Int(7)},
		AddArc{Parent: n, Label: "x", Child: m},
	}
	if err := s.Validate(db); !errors.Is(err, ErrInvalidSet) {
		t.Errorf("conflicting upd+add: %v, want ErrInvalidSet", err)
	}
}

func TestSetValidateDoesNotMutate(t *testing.T) {
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "n", n); err != nil {
		t.Fatal(err)
	}
	snapshot := db.Clone()
	s := Set{UpdNode{Node: n, Value: value.Int(2)}}
	if err := s.Validate(db); err != nil {
		t.Fatal(err)
	}
	if !db.Equal(snapshot) {
		t.Error("Validate mutated the database")
	}
}

func TestHistoryTimestampOrdering(t *testing.T) {
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "n", n); err != nil {
		t.Fatal(err)
	}
	mk := func(ts ...string) History {
		var h History
		for _, s := range ts {
			h = append(h, Step{At: timestamp.MustParse(s), Ops: Set{}})
		}
		return h
	}
	if err := mk("5Jan97", "1Jan97").Validate(db); !errors.Is(err, ErrInvalidHistory) {
		t.Error("decreasing timestamps accepted")
	}
	if err := mk("1Jan97", "1Jan97").Validate(db); !errors.Is(err, ErrInvalidHistory) {
		t.Error("equal timestamps accepted")
	}
	if err := mk("1Jan97", "5Jan97").Validate(db); err != nil {
		t.Errorf("increasing timestamps rejected: %v", err)
	}
	h := History{{At: timestamp.PosInf, Ops: Set{}}}
	if err := h.Validate(db); !errors.Is(err, ErrInvalidHistory) {
		t.Error("infinite timestamp accepted")
	}
}

func TestHistoryRejectsUseOfDeletedNode(t *testing.T) {
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "n", n); err != nil {
		t.Fatal(err)
	}
	h := History{
		{At: timestamp.MustParse("1Jan97"), Ops: Set{
			RemArc{Parent: db.Root(), Label: "n", Child: n}, // n becomes unreachable -> deleted
		}},
		{At: timestamp.MustParse("2Jan97"), Ops: Set{
			UpdNode{Node: n, Value: value.Int(2)},
		}},
	}
	if err := h.Validate(db); !errors.Is(err, ErrInvalidHistory) {
		t.Errorf("operation on deleted node accepted: %v", err)
	}
}

func TestHistoryApplyFailsCleanly(t *testing.T) {
	// Apply validates the whole history before mutating, so a failing
	// history leaves the database untouched.
	db := oem.New()
	n := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "n", n); err != nil {
		t.Fatal(err)
	}
	snapshot := db.Clone()
	h := History{
		{At: timestamp.MustParse("1Jan97"), Ops: Set{UpdNode{Node: n, Value: value.Int(2)}}},
		{At: timestamp.MustParse("2Jan97"), Ops: Set{UpdNode{Node: 999, Value: value.Int(3)}}},
	}
	if err := h.Apply(db); err == nil {
		t.Fatal("invalid history applied")
	}
	if !db.Equal(snapshot) {
		t.Error("failed Apply left partial changes")
	}
}

func TestHistoryStringRendering(t *testing.T) {
	db, n1, n4, n6, n7 := guideFixture(t)
	h, _, _, _ := paperHistory(db, n1, n4, n6, n7)
	s := h.String()
	for _, want := range []string{"1Jan97", "5Jan97", "8Jan97", "creNode", "updNode", "addArc", "remArc"} {
		if !strings.Contains(s, want) {
			t.Errorf("History.String() missing %q:\n%s", want, s)
		}
	}
}

// Property: applying a valid set in canonical order twice from equal clones
// yields equal databases (determinism).
func TestSetApplyDeterministic(t *testing.T) {
	prop := func(vals []uint8) bool {
		db := oem.New()
		var nodes []oem.NodeID
		for i := 0; i < 5; i++ {
			n := db.CreateNode(value.Complex())
			if err := db.AddArc(db.Root(), "c", n); err != nil {
				return false
			}
			nodes = append(nodes, n)
		}
		var s Set
		id := oem.NodeID(1000)
		for i, v := range vals {
			if i >= 8 {
				break
			}
			switch v % 3 {
			case 0:
				s = append(s, CreNode{Node: id, Value: value.Int(int64(v))})
				s = append(s, AddArc{Parent: nodes[int(v)%len(nodes)], Label: "k", Child: id})
				id++
			case 1:
				s = append(s, AddArc{Parent: nodes[int(v)%len(nodes)], Label: "x", Child: nodes[(int(v)+1)%len(nodes)]})
			case 2:
				// updates on a fresh atomic child
				s = append(s, CreNode{Node: id, Value: value.Str("s")})
				s = append(s, AddArc{Parent: nodes[0], Label: "y", Child: id})
				id++
			}
		}
		a, b := db.Clone(), db.Clone()
		errA := func() error { _, err := s.Apply(a); return err }()
		errB := func() error { _, err := s.Apply(b); return err }()
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a.Equal(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// validateReference is the straightforward clone-and-apply validation the
// overlay-based Set.Validate replaced; the differential test below keeps
// them in agreement.
func validateReference(s Set, db *oem.Database) error {
	if err := s.checkCommutativity(); err != nil {
		return err
	}
	scratch := db.Clone()
	for _, op := range s.Canonical() {
		if err := op.Apply(scratch); err != nil {
			return err
		}
	}
	return nil
}

// TestValidateMatchesReference: the O(|set|) overlay validation must accept
// and reject exactly the same random sets as clone-and-apply.
func TestValidateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, n1, n4, n6, n7 := guideFixture(t)
	_ = n1
	_ = n6
	_ = n7
	nodes := base.Nodes()
	mkOp := func(id *oem.NodeID) Op {
		switch rng.Intn(6) {
		case 0:
			*id++
			return CreNode{Node: *id, Value: value.Int(rng.Int63n(50))}
		case 1:
			*id++
			return CreNode{Node: *id, Value: value.Complex()}
		case 2:
			return UpdNode{Node: nodes[rng.Intn(len(nodes))], Value: value.Int(rng.Int63n(50))}
		case 3:
			arcs := base.Arcs()
			a := arcs[rng.Intn(len(arcs))]
			return RemArc{Parent: a.Parent, Label: a.Label, Child: a.Child}
		case 4:
			p := nodes[rng.Intn(len(nodes))]
			c := nodes[rng.Intn(len(nodes))]
			return AddArc{Parent: p, Label: "x", Child: c}
		default:
			p := nodes[rng.Intn(len(nodes))]
			return AddArc{Parent: p, Label: "restaurant", Child: n4}
		}
	}
	for trial := 0; trial < 500; trial++ {
		var set Set
		id := oem.NodeID(5000 + trial*20)
		for k := 0; k < 1+rng.Intn(6); k++ {
			set = append(set, mkOp(&id))
		}
		fast := set.Validate(base)
		slow := validateReference(set, base)
		if (fast == nil) != (slow == nil) {
			t.Fatalf("trial %d: overlay=%v reference=%v\nset: %s", trial, fast, slow, set)
		}
	}
}
