package wrapper

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/oemdiff"
	"repro/internal/value"
)

func TestStaticSource(t *testing.T) {
	db, _ := guidegen.PaperGuide()
	s := Static{DB: db}
	got, err := s.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db) || !s.StableIDs() {
		t.Error("static source misbehaves")
	}
}

func TestMutableSourceSnapshotsIndependent(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	m := NewMutable(db)
	snap1, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mutate(func(db *oem.Database) error {
		return db.UpdateNode(ids.Price, value.Int(99))
	}); err != nil {
		t.Fatal(err)
	}
	snap2, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if v := snap1.MustValue(ids.Price); !v.Equal(value.Int(10)) {
		t.Error("earlier snapshot aliased by mutation")
	}
	if v := snap2.MustValue(ids.Price); !v.Equal(value.Int(99)) {
		t.Error("mutation not visible in new snapshot")
	}
	// Identity diff across polls works (stable ids).
	set, err := oemdiff.DiffIdentity(snap1, snap2)
	if err != nil {
		t.Fatal(err)
	}
	if c := oemdiff.Measure(set); c.Updates != 1 || c.Total() != 1 {
		t.Errorf("diff cost = %+v, want one update", c)
	}
}

func TestUnstableSourceFreshIDs(t *testing.T) {
	db, _ := guidegen.PaperGuide()
	u := Unstable{Inner: Static{DB: db}}
	s1, err := u.Poll()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := u.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if u.StableIDs() {
		t.Error("unstable source claims stable ids")
	}
	if !oem.Isomorphic(s1, s2) {
		t.Error("unstable polls should be isomorphic")
	}
	// Content preserved relative to the original.
	if !oem.Isomorphic(s1, db) {
		t.Error("unstable copy lost content")
	}
}

func TestCSVSource(t *testing.T) {
	data := "id,title,status\n1,Dune,in\n2,Neuromancer,out\n"
	src := NewCSV("book", "id", func() (string, error) { return data, nil })
	s1, err := src.Poll()
	if err != nil {
		t.Fatal(err)
	}
	books := s1.OutLabeled(s1.Root(), "book")
	if len(books) != 2 {
		t.Fatalf("books = %d", len(books))
	}
	// Columns become labeled atoms with coerced values.
	title := s1.OutLabeled(books[0].Child, "title")
	if len(title) != 1 || !s1.MustValue(title[0].Child).Equal(value.Str("Dune")) {
		t.Error("title cell wrong")
	}
	id := s1.OutLabeled(books[0].Child, "id")
	if len(id) != 1 || !s1.MustValue(id[0].Child).Equal(value.Int(1)) {
		t.Error("id cell not coerced to int")
	}

	// A status flip produces exactly one update under identity diff.
	data = "id,title,status\n1,Dune,out\n2,Neuromancer,out\n"
	s2, err := src.Poll()
	if err != nil {
		t.Fatal(err)
	}
	set, err := oemdiff.DiffIdentity(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if c := oemdiff.Measure(set); c.Updates != 1 || c.Total() != 1 {
		t.Errorf("diff = %+v, want a single update", c)
	}

	// A new row creates objects; a removed row removes arcs.
	data = "id,title,status\n1,Dune,out\n3,Snow Crash,in\n"
	s3, err := src.Poll()
	if err != nil {
		t.Fatal(err)
	}
	set, err = oemdiff.DiffIdentity(s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	c := oemdiff.Measure(set)
	if c.Creates == 0 || c.Removes == 0 {
		t.Errorf("diff = %+v, want creations and removals", c)
	}
}

func TestCSVErrors(t *testing.T) {
	src := NewCSV("row", "missing", func() (string, error) { return "a,b\n1,2\n", nil })
	if _, err := src.Poll(); err == nil || !strings.Contains(err.Error(), "key column") {
		t.Errorf("missing key column: %v", err)
	}
	src = NewCSV("row", "a", func() (string, error) { return "", nil })
	if _, err := src.Poll(); err == nil {
		t.Error("empty csv accepted")
	}
	src = NewCSV("row", "a", func() (string, error) { return "", fmt.Errorf("fetch failed") })
	if _, err := src.Poll(); err == nil {
		t.Error("fetch error swallowed")
	}
}

func TestFuncSource(t *testing.T) {
	calls := 0
	f := Func{PollFunc: func() (*oem.Database, error) {
		calls++
		db, _ := guidegen.PaperGuide()
		return db, nil
	}, Stable: true}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !f.StableIDs() {
		t.Error("func source misbehaves")
	}
}
