package repl

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReplFrameDecode throws arbitrary bytes at both frame decoders and
// checks the invariants that replication safety rests on: no panics, no
// over-consumption, decoder agreement, and re-encode/re-decode fidelity
// for every accepted frame.
func FuzzReplFrameDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(AppendFrame(nil, fr))
	}
	f.Add(AppendFrame(AppendFrame(nil, Frame{Type: FrameAck, Seq: 1}), Frame{Type: FrameCommit, Seq: 2, Commit: 2}))
	f.Add(AppendFrame(nil, Frame{Type: FrameRecord, Epoch: 1, Seq: 1, Payload: AppendOplogRecord(nil, 1, "db", []byte("x"))}))
	f.Add([]byte{})
	f.Add([]byte{FrameRecord, 0x80})

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, maxPayload)
		gotR, errR := ReadFrame(bufio.NewReader(bytes.NewReader(data)), maxPayload)
		if err != nil {
			// The streaming reader may consume trailing garbage differently,
			// but it must never accept what the slice decoder rejected when
			// the input is exactly one frame's worth of bytes.
			if errR == nil && n == 0 {
				enc := AppendFrame(nil, gotR)
				if len(enc) == len(data) {
					t.Fatalf("ReadFrame accepted, DecodeFrame rejected: %v", err)
				}
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if errR != nil {
			t.Fatalf("DecodeFrame accepted, ReadFrame rejected: %v", errR)
		}
		if gotR.Type != fr.Type || gotR.Epoch != fr.Epoch || gotR.Seq != fr.Seq ||
			gotR.Commit != fr.Commit || !bytes.Equal(gotR.Payload, fr.Payload) {
			t.Fatalf("decoder disagreement: %+v vs %+v", fr, gotR)
		}
		// Re-encode and re-decode: canonical encoding must round-trip. (The
		// original bytes may use non-minimal varints, so byte equality with
		// data[:n] is not required.)
		enc := AppendFrame(nil, fr)
		fr2, n2, err := DecodeFrame(enc, maxPayload)
		if err != nil || n2 != len(enc) {
			t.Fatalf("re-decode: %v (consumed %d of %d)", err, n2, len(enc))
		}
		if fr2.Type != fr.Type || fr2.Epoch != fr.Epoch || fr2.Seq != fr.Seq ||
			fr2.Commit != fr.Commit || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", fr, fr2)
		}
		// Record payloads feed DecodeOplogRecord on the hot path; it must
		// never panic on whatever survived the frame CRC.
		if fr.Type == FrameRecord {
			_, _, _, _ = DecodeOplogRecord(fr.Payload)
		}
		if fr.Type == FrameHello || fr.Type == FrameWelcome {
			_, _ = parseHandshake(fr.Payload)
		}
	})
}
