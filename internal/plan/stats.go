package plan

// Stats is the cardinality interface the planner costs plans with. It is
// implemented by index.Graph (from its per-(node,label) adjacency maps)
// and by segment.DB (from the store's STATE summaries); graphs without an
// implementation plan against structural defaults, which affects cost
// estimates but never correctness.
//
// StatsVersion must change whenever the answers could: cached plans
// record it at prepare time and re-prepare on mismatch rather than
// executing against stale cardinalities.
type Stats interface {
	StatsVersion() uint64
	NodeCount() int  // nodes ever created
	ArcCount() int   // current-snapshot arcs
	AnnotCount() int // total annotations (may be approximate)
	LabelStats(label string) LabelCard
}

// CardOf fills a Card for one generator from a stats provider; a nil
// provider yields the zero (unknown) Card. label may be empty for kinds
// that do not filter by label (subtree, glob, group).
func CardOf(st Stats, label string) Card {
	if st == nil {
		return Card{}
	}
	c := Card{
		Known:  true,
		Nodes:  st.NodeCount(),
		Arcs:   st.ArcCount(),
		Annots: st.AnnotCount(),
	}
	if label != "" {
		c.Label = st.LabelStats(label)
	}
	return c
}
