package incr

import "repro/internal/oem"

// walkBudget caps the arcs scanned per backward prefix walk; a walk that
// would exceed it gives up and conservatively reports a match.
const walkBudget = 1 << 10

// Affected reports whether the delta can possibly make the
// fingerprinted query's result non-empty: true unless every one of its
// obligations is discharged, i.e. unless some fresh guard has no
// compatible atom in the delta. Unguarded or unanalyzable fingerprints
// always report true. cur is the post-apply snapshot used for backward
// prefix walks (nil skips them, conservatively).
func (f *Fingerprint) Affected(d *Delta, cur *oem.Database) bool {
	if !f.Guarded() {
		return true
	}
	for _, g := range f.Guards {
		if !g.matched(d, cur) {
			return false
		}
	}
	return true
}

// Decide is Affected plus the decision metrics: it reports whether the
// subscription must be evaluated, counting skips and evaluations.
func (f *Fingerprint) Decide(d *Delta, cur *oem.Database) bool {
	mDecisions.Inc()
	if f.Affected(d, cur) {
		mEvals.Inc()
		return true
	}
	mSkips.Inc()
	return false
}

// matched reports whether some delta atom is compatible with the guard —
// right kind, agreeing label, and (when the guard's prefix is walkable)
// root-reachable backwards along the prefix.
func (g *Guard) matched(d *Delta, cur *oem.Database) bool {
	switch g.Kind {
	case KindAdd, KindRem:
		arcs := d.Add
		if g.Kind == KindRem {
			arcs = d.Rem
		}
		for _, a := range arcs {
			if g.Label != "" && g.Label != a.Label {
				continue
			}
			// The annotated arc hangs off a parent the generator reached
			// through the prefix over the live graph.
			if g.walkable(cur) && !walkToRoot(cur, []oem.NodeID{a.Parent}, g.Prefix) {
				continue
			}
			return true
		}
		return false
	case KindCre, KindUpd:
		nodes := d.Cre
		if g.Kind == KindUpd {
			nodes = d.Upd
		}
		for _, n := range nodes {
			if g.Label != "" && d.HasSnapshot {
				// The generator binds the node under exactly this in-label
				// over the live graph; seed the walk with the parents of
				// those in-arcs.
				if !hasLabel(n.Labels, g.Label) {
					continue
				}
				if g.walkable(cur) {
					var seeds []oem.NodeID
					for _, arc := range cur.In(n.Node) {
						if arc.Label == g.Label {
							seeds = append(seeds, arc.Parent)
						}
					}
					if !walkToRoot(cur, seeds, g.Prefix) {
						continue
					}
				}
			}
			return true
		}
		return false
	}
	return true // unknown kind: conservative
}

func (g *Guard) walkable(cur *oem.Database) bool {
	return g.PrefixOK && cur != nil
}

func hasLabel(labels []string, l string) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

// walkToRoot reports whether some node in the seed frontier is reachable
// from the registered root along the exact-label prefix — checked
// backwards: consume the prefix last-to-first over the current reverse
// adjacency and test whether the root survives in the final frontier.
// This mirrors forward evaluation because walkable prefixes consist only
// of plain exact-label steps over live arcs. Budget exhaustion reports
// a match (conservative).
func walkToRoot(cur *oem.Database, seeds []oem.NodeID, prefix []string) bool {
	frontier := make(map[oem.NodeID]bool, len(seeds))
	for _, n := range seeds {
		frontier[n] = true
	}
	budget := walkBudget
	for i := len(prefix) - 1; i >= 0; i-- {
		label := prefix[i]
		next := make(map[oem.NodeID]bool)
		for n := range frontier {
			for _, arc := range cur.In(n) {
				if budget--; budget <= 0 {
					mWalkBudget.Inc()
					return true
				}
				if arc.Label == label {
					next[arc.Parent] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	return frontier[cur.Root()]
}
