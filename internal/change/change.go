// Package change implements the paper's basic change operations on OEM
// databases (Section 2.1), sets of operations with order-independence
// semantics, and OEM histories (Section 2.2, Definition 2.2).
package change

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// Op is one of the four basic change operations: creNode, updNode, addArc,
// remArc.
type Op interface {
	// Validate reports whether the operation can be applied to db.
	Validate(db *oem.Database) error
	// Apply performs the operation on db. It validates first.
	Apply(db *oem.Database) error
	// String renders the operation in the paper's notation.
	String() string
	// kindRank orders operations in the canonical application order
	// creNode < remArc < updNode < addArc (see Set.Validate).
	kindRank() int
}

// CreNode is the paper's creNode(n, v): create object n with initial value v.
type CreNode struct {
	Node  oem.NodeID
	Value value.Value
}

// UpdNode is the paper's updNode(n, v): change the value of object n to v.
type UpdNode struct {
	Node  oem.NodeID
	Value value.Value
}

// AddArc is the paper's addArc(p, l, c).
type AddArc struct {
	Parent oem.NodeID
	Label  string
	Child  oem.NodeID
}

// RemArc is the paper's remArc(p, l, c).
type RemArc struct {
	Parent oem.NodeID
	Label  string
	Child  oem.NodeID
}

func (o CreNode) String() string {
	return fmt.Sprintf("creNode(%s, %s)", o.Node, o.Value)
}

func (o UpdNode) String() string {
	return fmt.Sprintf("updNode(%s, %s)", o.Node, o.Value)
}

func (o AddArc) String() string {
	return fmt.Sprintf("addArc(%s, %q, %s)", o.Parent, o.Label, o.Child)
}

func (o RemArc) String() string {
	return fmt.Sprintf("remArc(%s, %q, %s)", o.Parent, o.Label, o.Child)
}

func (CreNode) kindRank() int { return 0 }
func (RemArc) kindRank() int  { return 1 }
func (UpdNode) kindRank() int { return 2 }
func (AddArc) kindRank() int  { return 3 }

// Validate for CreNode: the id must be fresh.
func (o CreNode) Validate(db *oem.Database) error {
	if o.Node == oem.InvalidNode {
		return errors.New("change: creNode with reserved id 0")
	}
	if db.Has(o.Node) {
		return fmt.Errorf("change: creNode(%s): %w", o.Node, oem.ErrNodeExists)
	}
	return nil
}

// Apply for CreNode.
func (o CreNode) Apply(db *oem.Database) error {
	if err := o.Validate(db); err != nil {
		return err
	}
	return db.CreateNodeWithID(o.Node, o.Value)
}

// Validate for UpdNode: node exists and is atomic or childless complex.
func (o UpdNode) Validate(db *oem.Database) error {
	v, ok := db.Value(o.Node)
	if !ok {
		return fmt.Errorf("change: updNode(%s): %w", o.Node, oem.ErrNoSuchNode)
	}
	if v.IsComplex() && len(db.Out(o.Node)) > 0 {
		return fmt.Errorf("change: updNode(%s): %w", o.Node, oem.ErrHasChildren)
	}
	return nil
}

// Apply for UpdNode.
func (o UpdNode) Apply(db *oem.Database) error {
	if err := o.Validate(db); err != nil {
		return err
	}
	return db.UpdateNode(o.Node, o.Value)
}

// Validate for AddArc.
func (o AddArc) Validate(db *oem.Database) error {
	if o.Label == "" {
		return fmt.Errorf("change: addArc: %w", oem.ErrEmptyLabel)
	}
	if !db.Has(o.Parent) {
		return fmt.Errorf("change: addArc parent %s: %w", o.Parent, oem.ErrNoSuchNode)
	}
	if !db.Has(o.Child) {
		return fmt.Errorf("change: addArc child %s: %w", o.Child, oem.ErrNoSuchNode)
	}
	if !db.IsComplex(o.Parent) {
		return fmt.Errorf("change: addArc(%s): %w", o.Parent, oem.ErrNotComplex)
	}
	if db.HasArc(o.Parent, o.Label, o.Child) {
		return fmt.Errorf("change: %s: %w", o, oem.ErrArcExists)
	}
	return nil
}

// Apply for AddArc.
func (o AddArc) Apply(db *oem.Database) error {
	if err := o.Validate(db); err != nil {
		return err
	}
	return db.AddArc(o.Parent, o.Label, o.Child)
}

// Validate for RemArc.
func (o RemArc) Validate(db *oem.Database) error {
	if !db.HasArc(o.Parent, o.Label, o.Child) {
		return fmt.Errorf("change: remArc(%s, %q, %s): %w", o.Parent, o.Label, o.Child, oem.ErrNoSuchArc)
	}
	return nil
}

// Apply for RemArc.
func (o RemArc) Apply(db *oem.Database) error {
	if err := o.Validate(db); err != nil {
		return err
	}
	return db.RemoveArc(o.Parent, o.Label, o.Child)
}

// Set is a set of basic change operations applied "at once" (one history
// step). Validity follows the paper's definition: some ordering must be a
// valid sequence, all valid orderings must agree, and the set must not
// contain both addArc(p,l,c) and remArc(p,l,c).
type Set []Op

// ErrInvalidSet wraps all set-validity violations.
var ErrInvalidSet = errors.New("change: invalid operation set")

// Canonical returns the operations in the canonical application order:
// creNode, remArc, updNode, addArc; ties broken by operand ids for
// determinism. See doc.go for why this order realizes every valid set.
func (s Set) Canonical() []Op {
	ops := append([]Op(nil), s...)
	sort.SliceStable(ops, func(i, j int) bool {
		ri, rj := ops[i].kindRank(), ops[j].kindRank()
		if ri != rj {
			return ri < rj
		}
		return ops[i].String() < ops[j].String()
	})
	return ops
}

// Validate checks the set against db per the paper's three conditions.
// It does not modify db. Validation simulates the canonical application
// order against a small overlay of the set's own effects, so its cost is
// O(|set|), independent of the database size.
func (s Set) Validate(db *oem.Database) error {
	if err := s.checkCommutativity(); err != nil {
		return err
	}
	// Overlay state accumulated in canonical order
	// (creNode -> remArc -> updNode -> addArc).
	created := make(map[oem.NodeID]value.Value)
	updated := make(map[oem.NodeID]value.Value)
	addedArcs := make(map[oem.Arc]bool)
	removedArcs := make(map[oem.Arc]bool)
	outDelta := make(map[oem.NodeID]int) // net arc-count change per parent

	exists := func(n oem.NodeID) bool {
		if _, ok := created[n]; ok {
			return true
		}
		return db.Has(n)
	}
	valueOf := func(n oem.NodeID) (value.Value, bool) {
		if v, ok := updated[n]; ok {
			return v, true
		}
		if v, ok := created[n]; ok {
			return v, true
		}
		return db.Value(n)
	}
	outCount := func(n oem.NodeID) int {
		return len(db.Out(n)) + outDelta[n]
	}

	for _, op := range s.Canonical() {
		switch o := op.(type) {
		case CreNode:
			if o.Node == oem.InvalidNode {
				return fmt.Errorf("%w: %s: reserved id 0", ErrInvalidSet, o)
			}
			if exists(o.Node) {
				return fmt.Errorf("%w: %s: %v", ErrInvalidSet, o, oem.ErrNodeExists)
			}
			created[o.Node] = o.Value
		case RemArc:
			arc := oem.Arc{Parent: o.Parent, Label: o.Label, Child: o.Child}
			// Rule (3) bans add+rem of one arc, so a removable arc must
			// pre-exist in db.
			if !db.HasArc(o.Parent, o.Label, o.Child) || removedArcs[arc] {
				return fmt.Errorf("%w: %s: %v", ErrInvalidSet, o, oem.ErrNoSuchArc)
			}
			removedArcs[arc] = true
			outDelta[o.Parent]--
		case UpdNode:
			v, ok := valueOf(o.Node)
			if !ok {
				return fmt.Errorf("%w: %s: %v", ErrInvalidSet, o, oem.ErrNoSuchNode)
			}
			if v.IsComplex() && outCount(o.Node) > 0 {
				return fmt.Errorf("%w: %s: %v", ErrInvalidSet, o, oem.ErrHasChildren)
			}
			updated[o.Node] = o.Value
		case AddArc:
			if o.Label == "" {
				return fmt.Errorf("%w: %s: %v", ErrInvalidSet, o, oem.ErrEmptyLabel)
			}
			if !exists(o.Parent) {
				return fmt.Errorf("%w: %s: parent: %v", ErrInvalidSet, o, oem.ErrNoSuchNode)
			}
			if !exists(o.Child) {
				return fmt.Errorf("%w: %s: child: %v", ErrInvalidSet, o, oem.ErrNoSuchNode)
			}
			if v, _ := valueOf(o.Parent); !v.IsComplex() {
				return fmt.Errorf("%w: %s: %v", ErrInvalidSet, o, oem.ErrNotComplex)
			}
			arc := oem.Arc{Parent: o.Parent, Label: o.Label, Child: o.Child}
			// Rule (3) bans re-adding an arc removed in this set, and
			// checkCommutativity bans duplicates, so presence in either db
			// or the overlay is an error.
			if db.HasArc(o.Parent, o.Label, o.Child) || addedArcs[arc] {
				return fmt.Errorf("%w: %s: %v", ErrInvalidSet, o, oem.ErrArcExists)
			}
			addedArcs[arc] = true
			outDelta[o.Parent]++
		}
	}
	return nil
}

// checkCommutativity rejects op combinations whose valid orderings could
// disagree, plus the paper's explicit add+rem prohibition (condition 3).
func (s Set) checkCommutativity() error {
	type arcKey struct {
		p, c oem.NodeID
		l    string
	}
	adds := make(map[arcKey]bool)
	rems := make(map[arcKey]bool)
	upds := make(map[oem.NodeID]bool)
	cres := make(map[oem.NodeID]bool)
	for _, op := range s {
		switch o := op.(type) {
		case AddArc:
			k := arcKey{o.Parent, o.Child, o.Label}
			if adds[k] {
				return fmt.Errorf("%w: duplicate %s", ErrInvalidSet, o)
			}
			adds[k] = true
		case RemArc:
			k := arcKey{o.Parent, o.Child, o.Label}
			if rems[k] {
				return fmt.Errorf("%w: duplicate %s", ErrInvalidSet, o)
			}
			rems[k] = true
		case UpdNode:
			if upds[o.Node] {
				return fmt.Errorf("%w: two updNode operations on %s", ErrInvalidSet, o.Node)
			}
			upds[o.Node] = true
		case CreNode:
			if cres[o.Node] {
				return fmt.Errorf("%w: duplicate creNode(%s)", ErrInvalidSet, o.Node)
			}
			cres[o.Node] = true
		}
	}
	for k := range adds {
		if rems[k] {
			return fmt.Errorf("%w: both addArc and remArc of (%s, %q, %s)", ErrInvalidSet, k.p, k.l, k.c)
		}
	}
	// Creating and updating the same node in one atomic step is redundant
	// (create with the final value instead) and would make the DOEM
	// annotation trail ambiguous — a cre and an upd at the same timestamp.
	// We reject it to keep the representation canonical.
	for n := range cres {
		if upds[n] {
			return fmt.Errorf("%w: both creNode and updNode of %s", ErrInvalidSet, n)
		}
	}
	return nil
}

// Apply validates the set and applies it to db in canonical order, then
// garbage-collects nodes left unreachable (the paper's deletion by
// unreachability at step boundaries). It returns the deleted node ids.
func (s Set) Apply(db *oem.Database) ([]oem.NodeID, error) {
	if err := s.Validate(db); err != nil {
		return nil, err
	}
	for _, op := range s.Canonical() {
		if err := op.Apply(db); err != nil {
			// Unreachable when Validate is correct (the overlay simulation
			// mirrors Apply exactly; see TestValidateMatchesReference).
			return nil, err
		}
	}
	if !s.NeedsCollection(db) {
		return nil, nil
	}
	return db.GarbageCollect(), nil
}

// NeedsCollection reports whether applying this set can have left nodes
// unreachable, making the step-boundary garbage collection necessary:
// only arc removals can disconnect existing nodes, and only creations that
// ended up without incoming arcs can introduce unreachable nodes. Called
// after the operations have been applied to db.
func (s Set) NeedsCollection(db *oem.Database) bool {
	for _, op := range s {
		switch o := op.(type) {
		case RemArc:
			return true
		case CreNode:
			if len(db.In(o.Node)) == 0 {
				return true
			}
		}
	}
	return false
}

// String lists the set in canonical order, one operation per line.
func (s Set) String() string {
	var b strings.Builder
	for i, op := range s.Canonical() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(op.String())
	}
	return b.String()
}

// Step is one element (t_i, U_i) of a history.
type Step struct {
	At  timestamp.Time
	Ops Set
}

// History is the paper's OEM history: a sequence of timestamped operation
// sets with strictly increasing, finite timestamps.
type History []Step

// ErrInvalidHistory wraps history-validity violations.
var ErrInvalidHistory = errors.New("change: invalid history")

// Validate checks Definition 2.2: strictly increasing finite timestamps and
// each set valid for the state produced by its predecessors. It also
// enforces that no step operates on a node deleted (made unreachable) by an
// earlier step. db is not modified.
func (h History) Validate(db *oem.Database) error {
	scratch := db.Clone()
	return h.replay(scratch)
}

// Apply validates h against db and then applies every step in place.
func (h History) Apply(db *oem.Database) error {
	if err := h.Validate(db); err != nil {
		return err
	}
	return h.replay(db)
}

func (h History) replay(db *oem.Database) error {
	prev := timestamp.NegInf
	deleted := make(map[oem.NodeID]bool)
	for i, step := range h {
		if !step.At.IsFinite() {
			return fmt.Errorf("%w: step %d has non-finite timestamp", ErrInvalidHistory, i)
		}
		if step.At.Compare(prev) <= 0 {
			return fmt.Errorf("%w: step %d timestamp %s not after %s", ErrInvalidHistory, i, step.At, prev)
		}
		prev = step.At
		for _, op := range step.Ops {
			for _, n := range opNodes(op) {
				if deleted[n] {
					return fmt.Errorf("%w: step %d (%s) references deleted node %s", ErrInvalidHistory, i, op, n)
				}
			}
		}
		dead, err := step.Ops.Apply(db)
		if err != nil {
			return fmt.Errorf("%w: step %d at %s: %v", ErrInvalidHistory, i, step.At, err)
		}
		for _, n := range dead {
			deleted[n] = true
		}
	}
	return nil
}

func opNodes(op Op) []oem.NodeID {
	switch o := op.(type) {
	case CreNode:
		return []oem.NodeID{o.Node}
	case UpdNode:
		return []oem.NodeID{o.Node}
	case AddArc:
		return []oem.NodeID{o.Parent, o.Child}
	case RemArc:
		return []oem.NodeID{o.Parent, o.Child}
	}
	return nil
}

// String renders the history in the paper's H = ((t1,U1),...) style.
func (h History) String() string {
	var b strings.Builder
	b.WriteString("H = (")
	for i, step := range h {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s, {%s})", step.At, step.Ops)
	}
	b.WriteString(")")
	return b.String()
}
