// Package library simulates the paper's second motivating example
// (Section 1.1): a legacy library circulation system with no triggers and
// no queryable history. The simulator exposes the current circulation state
// as an OEM snapshot through a wrapper.Source; the "popular book becomes
// available" subscription is then expressible as a Chorel filter query over
// the DOEM history QSS accumulates.
package library

import (
	"fmt"
	"math/rand"

	"repro/internal/oem"
	"repro/internal/value"
)

// Book statuses.
const (
	StatusIn  = "in"
	StatusOut = "out"
)

// Sim is a deterministic circulation simulator. The OEM view is:
//
//	library.book* -> { title, author, status ("in"/"out"),
//	                   checkouts (int, cumulative) }
//
// Node ids are stable across snapshots (the wrapper has object identity),
// so QSS uses the exact identity differ.
type Sim struct {
	rng   *rand.Rand
	db    *oem.Database
	books []bookState
}

type bookState struct {
	node      oem.NodeID
	status    oem.NodeID // status atom
	checkouts oem.NodeID // cumulative checkout counter atom
	out       bool
	count     int64
	title     string
}

var titles = []string{
	"A Discipline of Programming", "The Art of Computer Programming",
	"Structure and Interpretation", "The Mythical Man-Month",
	"Transaction Processing", "Readings in Database Systems",
	"The C Programming Language", "Compilers: Principles and Techniques",
	"Computer Networks", "Operating System Concepts",
}

var authors = []string{
	"Dijkstra", "Knuth", "Abelson", "Brooks", "Gray",
	"Stonebraker", "Kernighan", "Aho", "Tanenbaum", "Silberschatz",
}

// New builds a simulator with n books, all on the shelf.
func New(seed int64, n int) *Sim {
	s := &Sim{rng: rand.New(rand.NewSource(seed)), db: oem.New()}
	for i := 0; i < n; i++ {
		b := s.db.CreateNode(value.Complex())
		mustArc(s.db, s.db.Root(), "book", b)
		title := fmt.Sprintf("%s, vol. %d", titles[i%len(titles)], i/len(titles)+1)
		addAtom(s.db, b, "title", value.Str(title))
		addAtom(s.db, b, "author", value.Str(authors[i%len(authors)]))
		status := addAtom(s.db, b, "status", value.Str(StatusIn))
		checkouts := addAtom(s.db, b, "checkouts", value.Int(0))
		s.books = append(s.books, bookState{
			node: b, status: status, checkouts: checkouts, title: title,
		})
	}
	return s
}

func mustArc(db *oem.Database, p oem.NodeID, l string, c oem.NodeID) {
	if err := db.AddArc(p, l, c); err != nil {
		panic(err)
	}
}

func addAtom(db *oem.Database, p oem.NodeID, l string, v value.Value) oem.NodeID {
	n := db.CreateNode(v)
	mustArc(db, p, l, n)
	return n
}

// Snapshot returns a copy of the current circulation database.
func (s *Sim) Snapshot() *oem.Database { return s.db.Clone() }

// DB returns the live database (for wrapper.NewMutable-style embedding).
func (s *Sim) DB() *oem.Database { return s.db }

// Checkout marks book i as checked out, bumping its counter. It reports
// whether the state changed.
func (s *Sim) Checkout(i int) bool {
	b := &s.books[i]
	if b.out {
		return false
	}
	b.out = true
	b.count++
	must(s.db.UpdateNode(b.status, value.Str(StatusOut)))
	must(s.db.UpdateNode(b.checkouts, value.Int(b.count)))
	return true
}

// Return marks book i as back on the shelf.
func (s *Sim) Return(i int) bool {
	b := &s.books[i]
	if !b.out {
		return false
	}
	b.out = false
	must(s.db.UpdateNode(b.status, value.Str(StatusIn)))
	return true
}

// Step performs nEvents random circulation events (checkouts and returns).
func (s *Sim) Step(nEvents int) {
	for i := 0; i < nEvents; i++ {
		b := s.rng.Intn(len(s.books))
		if s.books[b].out {
			// Returns are a bit more likely than repeat attempts.
			if s.rng.Intn(3) != 0 {
				s.Return(b)
			}
		} else if s.rng.Intn(2) == 0 {
			s.Checkout(b)
		}
	}
}

// NumBooks returns the number of books.
func (s *Sim) NumBooks() int { return len(s.books) }

// Title returns the title of book i.
func (s *Sim) Title(i int) string { return s.books[i].title }

// IsOut reports whether book i is checked out.
func (s *Sim) IsOut(i int) bool { return s.books[i].out }

// Checkouts returns the cumulative checkout count of book i.
func (s *Sim) Checkouts(i int) int64 { return s.books[i].count }

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// PopularAvailableQuery is the Chorel filter query of the paper's library
// example: notify when a book that has been checked out two or more times
// since `since` is (back) on the shelf. Two distinct upd annotations on the
// checkouts counter with timestamps after `since` witness "two or more
// checkouts"; the current status witnesses availability. The query is
// parameterized by the DOEM database name registered in the engine.
func PopularAvailableQuery(dbName, since string) string {
	return fmt.Sprintf(`select T from %[1]s.book B, B.title T
		where B.status = "in"
		  and B.checkouts<upd at T1> >= 0 and T1 > %[2]s
		  and B.checkouts<upd at T2> >= 0 and T2 > T1`, dbName, since)
}

// PopularAvailableQueryCount is the same filter expressed with Lorel
// aggregation: at least two checkout-counter updates in the history, and
// currently on the shelf. (The windowed variant above additionally bounds
// the update times.)
func PopularAvailableQueryCount(dbName string) string {
	return fmt.Sprintf(`select T from %[1]s.book B, B.title T
		where B.status = "in" and count(B.checkouts<upd at T1>) >= 2`, dbName)
}
