package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/change"
	"repro/internal/chorel"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/qss"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// The -json mode runs a curated benchmark suite through testing.Benchmark
// and writes a machine-readable report (BENCH_4.json in CI) with per-
// benchmark ns/op, B/op and allocs/op, the observability overhead measured
// disabled-vs-enabled, and a metrics snapshot from the instrumented run.

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchReport struct {
	Generated time.Time     `json:"generated"`
	Build     obs.BuildInfo `json:"build"`
	// ObsDisabledOverheadPct is what default (untraced, collection off)
	// queries pay for the compiled-in instrumentation: the measured
	// ns/op of the complete per-query disabled instrumentation sequence
	// (obs-disabled-per-query) relative to eval-obs-off. The acceptance
	// bar is <= 2%.
	ObsDisabledOverheadPct float64 `json:"obs_disabled_overhead_pct"`
	// ObsEnabledOverheadPct is the cost of switching collection on:
	// eval-obs-on vs eval-obs-off on the same workload. Negative values
	// are noise.
	ObsEnabledOverheadPct float64       `json:"obs_enabled_overhead_pct"`
	Benchmarks            []benchResult `json:"benchmarks"`
	// ParallelSpeedup4 is eval-obs-on ns/op over lorel-parallel4 ns/op:
	// the same workload serial vs 4 evaluation workers, both with
	// collection enabled (the B11 headline as a machine-relative ratio).
	ParallelSpeedup4 float64 `json:"parallel_speedup_4"`
	// PlannerSelectiveSpeedup10k is the cost-based planner's headline: a
	// selective-predicate join over the ~10k-annotation tier where written
	// order expands every restaurant's subtree before testing the price,
	// measured planner-off over planner-on (planner-selective-10k-off /
	// planner-selective-10k-on). The acceptance bar is >= 1.5.
	PlannerSelectiveSpeedup10k float64 `json:"planner_selective_speedup_10k"`
	// IndexAtQuerySpeedup10k is the speedup of repeated <at T> snapshot
	// queries from the internal/index fast paths at the ~10k-annotation
	// tier: atquery-10k-noindex ns/op over atquery-10k-indexed ns/op. The
	// acceptance bar is >= 2.
	IndexAtQuerySpeedup10k float64 `json:"index_at_query_speedup_10k"`
	// IndexAtSnapshotSpeedup10k is the same ratio for repeated O_t(D)
	// snapshot extraction at a fixed T, which the index memoizes.
	IndexAtSnapshotSpeedup10k float64 `json:"index_at_snapshot_speedup_10k"`
	// SegmentAtQueryFlatness10x is the growth factor of segmented <at T>
	// query latency when the history grows 10x past the active-segment
	// size: atquery-seg-10x ns/op over atquery-seg-base ns/op. Sublinear
	// history access means this stays near 1 while the monolithic factor
	// (MonoAtQueryGrowth10x) tracks the history size.
	SegmentAtQueryFlatness10x float64 `json:"segment_at_query_flatness_10x"`
	MonoAtQueryGrowth10x      float64 `json:"mono_at_query_growth_10x"`
	// SegmentOpenFlatness10x is the same growth factor for restart
	// recovery (open-seg-10x over open-seg-base): the segmented store
	// replays only its bounded active tail, the monolithic WAL the whole
	// history (MonoOpenGrowth10x).
	SegmentOpenFlatness10x float64 `json:"segment_open_flatness_10x"`
	MonoOpenGrowth10x      float64 `json:"mono_open_growth_10x"`
	// SegmentRSSBytes is resident heap attributable to each storage
	// arrangement of the 10x history: the monolithic DOEM database, the
	// segmented store with every sealed index hot, and the same store
	// demoted to the cold tier.
	SegmentRSSBytes map[string]int64 `json:"segment_rss_bytes"`
	// ReplAckPollOverhead maps each replication ack mode to its poll-cycle
	// cost relative to the same workload unreplicated (repl-poll-ack-MODE
	// over repl-poll-ack-off, ns/op ratios). ReplAckOnePollOverhead is the
	// AckOne entry pulled out as the gated headline: it is the price of
	// "every acknowledged write survives the primary's loss", and a
	// regression there means the ack round trip got slower relative to the
	// write itself on the same machine.
	ReplAckPollOverhead    map[string]float64 `json:"repl_ack_poll_overhead"`
	ReplAckOnePollOverhead float64            `json:"repl_ackone_poll_overhead"`
	// ReplPromoteNs is the failover promotion step (demote+promote cycle:
	// epoch bump persisted with fsync) in nanoseconds — absolute, reported
	// but not gated.
	ReplPromoteNs float64 `json:"repl_promote_ns"`
	// IncrNotifySpeedup10k is incremental subscription matching's
	// headline: per-change-set cost across a 10k standing-query fleet
	// with every query evaluated (the poll-diff discipline) over the same
	// fleet incrementally matched (incr-match-10k-full /
	// incr-match-10k-incr). The acceptance bar is >= 10.
	IncrNotifySpeedup10k float64 `json:"incr_notify_speedup_10k"`
	// IncrNotifyFlatness10x is the growth factor of the incremental
	// per-change cost when the untouched-query count grows 10x
	// (incr-match-100k-incr / incr-match-10k-incr): a change set touching
	// k subscriptions costs O(k), not O(total), so this stays near 1.
	IncrNotifyFlatness10x float64 `json:"incr_notify_flatness_10x"`
	// InternEvalSpeedup10k is the interned+streaming evaluator's headline:
	// a mixed exact-label traversal plus early-witness exists workload over
	// 10k objects, string-keyed and materialized over symbol-keyed and
	// streamed (intern-eval-10k-string / intern-eval-10k-intern). The
	// acceptance bar is >= 1.5.
	InternEvalSpeedup10k float64 `json:"intern_eval_speedup_10k"`
	// ExistsEarlyExitRatio is the evidence that exists does work
	// proportional to the witness position: the cost of an exists whose
	// single witness is the last of 10k candidates over one whose witness
	// is first (exists-witness-last / exists-witness-first). A collapse
	// toward 1 means exists is materializing its full candidate set again.
	ExistsEarlyExitRatio float64 `json:"exists_early_exit_ratio"`
	// Obs is the metric snapshot accumulated while the suite ran with
	// collection enabled; it includes the index_* cache counters from the
	// indexed benchmarks.
	Obs *obs.Snap `json:"obs"`
}

func toResult(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// paperEngine builds the harness's standard workload: the paper guide with
// its Example 2.3 history, registered as "guide".
func paperEngine() *lorel.Engine {
	db, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(db, guidegen.PaperHistory(ids))
	if err != nil {
		panic(err)
	}
	eng := lorel.NewEngine()
	eng.Register("guide", d)
	return eng
}

func runJSON(path string) error {
	const evalQuery = `select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97 and NV > 15`

	var report benchReport
	report.Build = obs.ReadBuildInfo()

	bench := func(name string, fn func(b *testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(fn)
		report.Benchmarks = append(report.Benchmarks, toResult(name, r))
		fmt.Printf("  %-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
		return r
	}

	fmt.Println("benchharness: JSON benchmark suite")

	// Observability overhead on the evaluation hot path: the same query,
	// instrumentation compiled in, collection off vs on. The "off" run is
	// what every untraced production query pays.
	obs.SetEnabled(false)
	eng := paperEngine()
	off := bench("eval-obs-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(evalQuery); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The complete disabled instrumentation sequence one serial query
	// executes — the gate checks, zero-time reads, nil-trace no-ops and
	// counter touches — measured in isolation. Its ns/op over the
	// query's ns/op is the disabled overhead.
	bc := obs.NewCounter("bench_disabled_counter")
	bh := obs.NewHistogram("bench_disabled_ns")
	perQuery := bench("obs-disabled-per-query", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			start := obs.Now()
			tr := obs.TraceFrom(ctx)
			psp := tr.StartSpan("parse")
			psp.EndNote("cache=%s", "hit")
			sp := tr.StartSpan("eval")
			bc.Inc()             // queries
			bc.Add(int64(i & 1)) // bindings
			bc.Add(0)            // dedup hits
			bh.ObserveSince(start)
			tr.Add("bindings", 0)
			tr.Add("dedup_hits", 0)
			sp.EndNote("rows=%d", 0)
		}
	})

	obs.SetEnabled(true)
	on := bench("eval-obs-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(evalQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	offNs := float64(off.T.Nanoseconds()) / float64(off.N)
	onNs := float64(on.T.Nanoseconds()) / float64(on.N)
	perQueryNs := float64(perQuery.T.Nanoseconds()) / float64(perQuery.N)
	report.ObsDisabledOverheadPct = perQueryNs / offNs * 100
	report.ObsEnabledOverheadPct = (onNs - offNs) / offNs * 100

	// The rest of the suite runs with collection enabled so the report's
	// obs snapshot reflects the instrumented stack end to end.
	par4 := bench("lorel-parallel4", func(b *testing.B) {
		peng := paperEngine()
		peng.SetParallelism(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := peng.Query(evalQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.ParallelSpeedup4 = onNs / (float64(par4.T.Nanoseconds()) / float64(par4.N))

	bench("chorel-translate", func(b *testing.B) {
		const q = `select N from guide.restaurant R, R.name N where R.<add at T>price = "moderate" and T >= 1Jan97`
		for i := 0; i < b.N; i++ {
			if _, err := chorel.TranslateString(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	bench("wal-append", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "benchwal")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		l, err := wal.Open(dir, &wal.Options{Sync: wal.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		payload := make([]byte, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
	})

	bench("qss-poll-cycle", func(b *testing.B) {
		ev := guidegen.NewEvolver(1, 100)
		src := wrapper.NewMutable(ev.DB)
		svc := qss.NewService(nil)
		if err := svc.Subscribe(qss.Subscription{
			Name: "R", SourceName: "guide", Source: src,
			Polling: `select guide.restaurant`,
			Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
		}); err != nil {
			b.Fatal(err)
		}
		t := timestamp.MustParse("1Jan97")
		if _, err := svc.Poll("R", t); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Mutate(func(*oem.Database) error { ev.Step(2); return nil })
			t = t.Add(3600e9)
			if _, err := svc.Poll("R", t); err != nil {
				b.Fatal(err)
			}
		}
	})

	// B12 in JSON form: repeated <at T> snapshot queries over a ~10k-
	// annotation synthetic guide, through the internal/index fast paths vs
	// the raw database (the -noindex mode). Queries fix T so the repeated
	// evaluations exercise the (generation, T) view cache the way a client
	// re-asking for one historical state does. Collection stays enabled so
	// the report's obs snapshot carries the index cache hit/miss counters.
	initial, hist := guidegen.GenerateHistory(9, 40, 1250, 10)
	d10k, err := doem.FromHistory(initial, hist)
	if err != nil {
		return err
	}
	steps := d10k.Steps()
	at := steps[len(steps)/2]
	atQuery := fmt.Sprintf(`select P from guide.<at %q>restaurant.price P where P < 20`, at.String())
	ig := index.NewGraph(d10k)
	rawEng := lorel.NewEngine()
	rawEng.Register("guide", d10k)
	idxEng := lorel.NewEngine()
	idxEng.Register("guide", ig)
	rawRes, err := rawEng.Query(atQuery)
	if err != nil {
		return err
	}
	idxRes, err := idxEng.Query(atQuery)
	if err != nil {
		return err
	}
	if rawRes.String() != idxRes.String() {
		return fmt.Errorf("indexed <at T> query diverged from raw evaluation")
	}

	// The indexed-vs-raw timings run with collection off — the production
	// default, and the configuration the -noindex comparison is about.
	obs.SetEnabled(false)
	qIdx := bench("atquery-10k-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := idxEng.Query(atQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	qRaw := bench("atquery-10k-noindex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rawEng.Query(atQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	sIdx := bench("atsnapshot-10k-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ig.SnapshotAt(at)
		}
	})
	sRaw := bench("atsnapshot-10k-noindex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d10k.SnapshotAt(at)
		}
	})

	// A short instrumented pass over the same workload so the index cache
	// hit/miss/build counters land in the report's obs snapshot (they are
	// the same counters /metrics serves).
	obs.SetEnabled(true)
	ig.Invalidate() // force one observed build and cache miss
	for i := 0; i < 100; i++ {
		if _, err := idxEng.Query(atQuery); err != nil {
			return err
		}
		ig.SnapshotAt(at)
	}
	report.IndexAtQuerySpeedup10k = float64(qRaw.T.Nanoseconds()) / float64(qRaw.N) /
		(float64(qIdx.T.Nanoseconds()) / float64(qIdx.N))
	report.IndexAtSnapshotSpeedup10k = float64(sRaw.T.Nanoseconds()) / float64(sRaw.N) /
		(float64(sIdx.T.Nanoseconds()) / float64(sIdx.N))

	// The planner's headline on the same 10k tier: a selective-predicate
	// join where the written order expands every restaurant's # subtree
	// before testing the price. The planner pushes P < 8 onto the narrow
	// price generator and runs it first, so the subtree walk only happens
	// for qualifying restaurants. Gates on byte-identical results.
	obs.SetEnabled(false)
	plannerQuery := `select X from guide.restaurant R, R.# X, R.price P where P < 8`
	planOff := lorel.NewEngine()
	planOff.SetPlanning(false)
	planOff.Register("guide", ig)
	planOn := lorel.NewEngine()
	planOn.SetPlanning(true)
	planOn.Register("guide", ig)
	offPlanRes, err := planOff.Query(plannerQuery)
	if err != nil {
		return err
	}
	onPlanRes, err := planOn.Query(plannerQuery)
	if err != nil {
		return err
	}
	if offPlanRes.String() != onPlanRes.String() {
		return fmt.Errorf("planned selective query diverged from written-order evaluation")
	}
	pOff := bench("planner-selective-10k-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := planOff.Query(plannerQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	pOn := bench("planner-selective-10k-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := planOn.Query(plannerQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.PlannerSelectiveSpeedup10k = float64(pOff.T.Nanoseconds()) / float64(pOff.N) /
		(float64(pOn.T.Nanoseconds()) / float64(pOn.N))

	if err := runSegmentJSON(&report, bench); err != nil {
		return err
	}
	if err := runReplJSON(&report, bench); err != nil {
		return err
	}
	if err := runIncrJSON(&report, bench); err != nil {
		return err
	}
	if err := runInternJSON(&report, bench); err != nil {
		return err
	}

	report.Obs = obs.Snapshot()
	obs.SetEnabled(false)
	report.Generated = time.Now().UTC()

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchharness: obs overhead %.3f%% disabled, %.2f%% enabled; report written to %s\n",
		report.ObsDisabledOverheadPct, report.ObsEnabledOverheadPct, path)
	return nil
}

// runSegmentJSON is B13 in JSON form: the segmented store vs the monolithic
// database as the recorded history grows 10x past the active-segment size
// with the live graph held constant (churn growth, as in the text-mode
// B13). Queries pin a T deep in sealed history; opens measure restart
// recovery. The four growth factors and the per-arrangement RSS map are the
// report's segment acceptance numbers.
func runSegmentJSON(report *benchReport, bench func(string, func(*testing.B)) testing.BenchmarkResult) error {
	pol := &segment.Policy{SealAnnotations: 300}
	opt := &wal.Options{Sync: wal.SyncNever}
	nsOp := func(r testing.BenchmarkResult) float64 { return float64(r.T.Nanoseconds()) / float64(r.N) }

	obs.SetEnabled(false)
	initial, h0 := guidegen.GenerateHistory(13, 40, 60, 10)
	histories := [2]change.History{h0, extendWithChurn(initial, h0, 9*len(h0))}
	var monoQ, segQ, monoO, segO [2]float64
	var lastSegDir string
	for i, h := range histories {
		tag := "base"
		if i == 1 {
			tag = "10x"
		}
		var preHeap int64
		if i == 1 {
			preHeap = int64(heapInUse())
		}
		mono, err := doem.FromHistory(initial, h)
		if err != nil {
			return err
		}
		var monoHeap int64
		if i == 1 {
			monoHeap = int64(heapInUse()) - preHeap
		}
		segDir, err := os.MkdirTemp("", "benchseg")
		if err != nil {
			return err
		}
		defer os.RemoveAll(segDir)
		lastSegDir = segDir
		st, err := segment.Create(segDir, doem.New(initial.Clone()), opt, pol)
		if err != nil {
			return err
		}
		walDir, err := os.MkdirTemp("", "benchwalmono")
		if err != nil {
			return err
		}
		defer os.RemoveAll(walDir)
		l, err := wal.Open(walDir, opt)
		if err != nil {
			return err
		}
		if err := l.CheckpointDOEM(doem.New(initial.Clone())); err != nil {
			return err
		}
		for _, step := range h {
			if err := st.Apply(step.At, step.Ops); err != nil {
				return err
			}
			if _, err := l.AppendStep(step.At, step.Ops); err != nil {
				return err
			}
		}
		l.Close()

		// A T deep in old history: for the segmented store it lands in an
		// early sealed segment; monolithic evaluation walks the full chains.
		ts := mono.Steps()
		at := ts[len(ts)/10]
		q := fmt.Sprintf(`select P from guide.<at %q>restaurant.price P where P < 20`, at.String())
		monoEng := lorel.NewEngine()
		monoEng.Register("guide", mono)
		segEng := lorel.NewEngine()
		segEng.Register("guide", st.Graph())
		monoQ[i] = nsOp(bench("atquery-mono-"+tag, func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := monoEng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		}))
		segQ[i] = nsOp(bench("atquery-seg-"+tag, func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := segEng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		}))
		st.Close()

		monoO[i] = nsOp(bench("open-mono-"+tag, func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				l, err := wal.Open(walDir, opt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := l.ReplayDOEM(); err != nil {
					b.Fatal(err)
				}
				l.Close()
			}
		}))
		segO[i] = nsOp(bench("open-seg-"+tag, func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				s, err := segment.Open(segDir, opt, pol)
				if err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		}))

		if i == 1 {
			// RSS per arrangement at the 10x size, against a baseline taken
			// before the store reopens; a query at each seal boundary pulls
			// every sealed index hot, then Maintain demotes them cold.
			baseline := int64(heapInUse())
			coldPol := &segment.Policy{SealAnnotations: pol.SealAnnotations, ColdAfter: 1}
			cst, err := segment.Open(segDir, opt, coldPol)
			if err != nil {
				return err
			}
			eng := lorel.NewEngine()
			eng.Register("guide", cst.Graph())
			for _, seal := range cst.SealTimes() {
				hq := fmt.Sprintf(`select P from guide.<at %q>restaurant.price P where P < 20`, seal.String())
				if _, err := eng.Query(hq); err != nil {
					cst.Close()
					return err
				}
			}
			hotHeap := int64(heapInUse()) - baseline
			cst.Maintain()
			cst.Maintain()
			coldHeap := int64(heapInUse()) - baseline
			_ = mono.NumAnnotations() // keep the monolithic copy live in the baseline
			cst.Close()
			report.SegmentRSSBytes = map[string]int64{
				"monolithic":     monoHeap,
				"segmented_hot":  hotHeap,
				"segmented_cold": coldHeap,
			}
		}
	}
	report.SegmentAtQueryFlatness10x = segQ[1] / segQ[0]
	report.MonoAtQueryGrowth10x = monoQ[1] / monoQ[0]
	report.SegmentOpenFlatness10x = segO[1] / segO[0]
	report.MonoOpenGrowth10x = monoO[1] / monoO[0]

	// One instrumented open so the segment_* metrics land in the report's
	// obs snapshot alongside the rest of the stack.
	obs.SetEnabled(true)
	s, err := segment.Open(lastSegDir, opt, pol)
	if err != nil {
		return err
	}
	s.Close()
	return nil
}
