package qss

import (
	"testing"
	"time"

	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
)

// TestLongRunEvolvingSource drives many polling cycles over a synthetic
// evolving guide and cross-checks QSS's accumulated history against ground
// truth from the source at every step.
func TestLongRunEvolvingSource(t *testing.T) {
	ev := guidegen.NewEvolver(3, 60)
	src := wrapperMutable(ev)
	svc := NewService(nil)

	err := svc.Subscribe(Subscription{
		Name:       "Guide",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant`,
		Filter:     `select Guide.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}

	at := timestamp.MustParse("1Jan97")
	totalNotified := 0
	for cycle := 0; cycle < 30; cycle++ {
		// Evolve the source between polls.
		if cycle > 0 {
			if err := src.Mutate(func(*oem.Database) error {
				ev.Step(6)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		n, err := svc.Poll("Guide", at)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if n != nil {
			totalNotified += n.Result.Len()
		}
		// Invariant: QSS's current snapshot is isomorphic to the packaged
		// ground truth (same restaurants with same content).
		d, _, err := svc.History("Guide")
		if err != nil {
			t.Fatal(err)
		}
		truth, err := src.Poll()
		if err != nil {
			t.Fatal(err)
		}
		var roots []oem.NodeID
		for _, a := range truth.Out(truth.Root()) {
			if a.Label == "restaurant" {
				roots = append(roots, a.Child)
			}
		}
		want, _ := truth.CopySubgraph(roots, "restaurant", nil)
		if !oem.Isomorphic(d.Current(), want) {
			t.Fatalf("cycle %d: QSS snapshot diverged from source ground truth", cycle)
		}
		at = at.Add(24 * time.Hour)
	}
	if totalNotified < 5 {
		t.Errorf("only %d creations notified over 30 cycles; evolution too quiet?", totalNotified)
	}
	// The whole accumulated history is feasible.
	d, times, err := svc.History("Guide")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 30 {
		t.Errorf("poll times = %d", len(times))
	}
	if !d.Feasible() {
		t.Error("long-run DOEM history infeasible")
	}
	// And truncation midway keeps it consistent.
	if err := svc.Truncate("Guide", times[len(times)/2]); err != nil {
		t.Fatal(err)
	}
	d, _, _ = svc.History("Guide")
	if !d.Feasible() {
		t.Error("truncated long-run history infeasible")
	}
}

// wrapperMutable wraps an evolver's database as a mutable source without
// importing wrapper in this file's callers repeatedly.
func wrapperMutable(ev *guidegen.Evolver) *mutableSource {
	return &mutableSource{db: ev.DB}
}

// mutableSource is a minimal in-package mutable source (mirrors
// wrapper.Mutable; defined here to keep the integration test focused).
type mutableSource struct {
	db *oem.Database
}

func (m *mutableSource) Poll() (*oem.Database, error) { return m.db.Clone(), nil }
func (m *mutableSource) StableIDs() bool              { return true }
func (m *mutableSource) Mutate(fn func(*oem.Database) error) error {
	return fn(m.db)
}
