package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/change"
	"repro/internal/timestamp"
	"repro/internal/wal"
)

// Role is a node's replication role.
type Role int32

const (
	// RoleFollower replicates from a primary (or idles awaiting one).
	RoleFollower Role = iota
	// RolePrimary accepts writes and streams to followers.
	RolePrimary
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "follower"
}

// AckMode selects when a primary acknowledges a write.
type AckMode int

const (
	// AckNone acknowledges after the local durable append.
	AckNone AckMode = iota
	// AckOne additionally waits for one follower's durable ack.
	AckOne
	// AckQuorum waits until a majority of the Replicas+1 cluster
	// (counting the primary itself) has the record durably.
	AckQuorum
)

// ParseAckMode parses "none", "one", or "quorum".
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "none":
		return AckNone, nil
	case "one":
		return AckOne, nil
	case "quorum":
		return AckQuorum, nil
	}
	return 0, fmt.Errorf("repl: unknown ack mode %q", s)
}

// String implements fmt.Stringer.
func (m AckMode) String() string {
	switch m {
	case AckOne:
		return "one"
	case AckQuorum:
		return "quorum"
	}
	return "none"
}

// Clock supplies timestamps for staleness accounting. qss.RealClock and
// qss.SimClock both satisfy it; protocol bytes never depend on it, so
// replicated histories are clock-independent.
type Clock interface {
	Now() timestamp.Time
}

type wallClock struct{}

func (wallClock) Now() timestamp.Time { return timestamp.FromTime(time.Now()) }

// Config configures a Node.
type Config struct {
	// ID names this node in acks and logs. Required.
	ID string
	// Ack is the write acknowledgment mode. Default AckNone.
	Ack AckMode
	// Replicas is the expected follower count — the quorum denominator
	// for AckQuorum (majority of Replicas+1 nodes, primary included).
	Replicas int
	// AckTimeout bounds how long Apply waits for the quorum; 0 waits
	// until commit, fencing, or Close.
	AckTimeout time.Duration
	// Advertise is the client-facing address followers should redirect
	// clients to while this node is primary.
	Advertise string
	// WAL configures the oplog. Default: wal defaults (SyncAlways — acks
	// imply durability).
	WAL *wal.Options
	// Clock supplies staleness timestamps. Default: wall clock.
	Clock Clock
	// MaxFrame caps frame payloads. Default DefaultMaxFrame.
	MaxFrame int
	// BatchBytes bounds one streamed record batch. Default 1 MiB.
	BatchBytes int
	// RedialInitial/RedialMax bound the follower redial backoff.
	// Defaults 50ms / 2s.
	RedialInitial, RedialMax time.Duration
	// HeartbeatEvery makes a primary push commit-watermark frames to idle
	// sessions at this cadence, so follower IdleTimeouts and staleness
	// gauges work. 0 disables (frames still flow on every append and
	// watermark advance).
	HeartbeatEvery time.Duration
	// IdleTimeout makes a follower drop (and redial) a stream that is
	// silent for this long — the liveness check that detects a partition
	// or dead primary. 0 disables.
	IdleTimeout time.Duration
	// OnRole, when set, is called (on its own goroutine) after every role
	// change with the new role and epoch.
	OnRole func(role Role, epoch uint64)
	// OnPrimaryAddr, when set, is called (on its own goroutine) when a
	// follower learns its primary's advertised client address.
	OnPrimaryAddr func(addr string)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = wallClock{}
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 1 << 20
	}
	if c.RedialInitial <= 0 {
		c.RedialInitial = 50 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = 2 * time.Second
	}
	return c
}

// Errors returned by Node operations.
var (
	// ErrNotPrimary reports a write on a node that is not primary.
	ErrNotPrimary = errors.New("repl: not primary")
	// ErrFenced reports a write on a deposed primary: a higher epoch
	// exists and this node's appends are rejected cluster-wide.
	ErrFenced = errors.New("repl: fenced by higher epoch")
	// ErrClosed reports use of a closed node.
	ErrClosed = errors.New("repl: node closed")
	// ErrAckTimeout reports a write that was appended locally but did not
	// reach its quorum within AckTimeout. The write is NOT acknowledged;
	// it may still replicate, or may be discarded by a failover.
	ErrAckTimeout = errors.New("repl: ack quorum timeout")
)

// Node is one replication participant: an oplog, a State materialized
// from it, an epoch, and a role. All methods are safe for concurrent use.
type Node struct {
	dir   string
	cfg   Config
	state State
	log   *wal.Log

	mu   sync.Mutex
	cond *sync.Cond
	// Protected by mu:
	epoch           uint64
	role            Role
	fenced          bool // deposed while primary; Apply returns ErrFenced
	applied         uint64
	appliedAt       timestamp.Time
	lastRecordEpoch uint64 // epoch of the record at applied (divergence check)
	commit          uint64 // primary: quorum watermark; follower: min(known, applied)
	commitKnown     uint64 // follower: primary's reported watermark
	primaryTip      uint64 // follower: primary's last known seq
	primaryAddr     string // follower: primary's advertised client address
	lastContact     time.Time
	acked           map[string]uint64 // primary: follower id -> durable seq
	sessions        map[*session]struct{}
	hb              uint64 // heartbeat tick counter; wakes idle sessions
	following       bool
	followStop      chan struct{}
	followConn      chan struct{} // closed to interrupt the active dial/pump
	followNetConn   interface{ Close() error }
	closed          bool
}

// Open opens (creating if needed) the node rooted at dir: <dir>/oplog is
// the replication log, <dir>/EPOCH the fencing epoch. The State is Reset
// and deterministically rebuilt from the oplog (checkpoint restore +
// record replay). Nodes start as followers; call Promote to take the
// primary role.
func Open(dir string, state State, cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("repl: Config.ID is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	log, err := wal.Open(filepath.Join(dir, "oplog"), cfg.WAL)
	if err != nil {
		return nil, err
	}
	epoch, err := loadEpoch(filepath.Join(dir, epochFile))
	if err != nil {
		log.Close()
		return nil, err
	}
	n := &Node{
		dir:      dir,
		cfg:      cfg,
		state:    state,
		log:      log,
		epoch:    epoch,
		acked:    make(map[string]uint64),
		sessions: make(map[*session]struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	if err := n.rebuildState(); err != nil {
		log.Close()
		return nil, err
	}
	n.registerMetrics()
	if cfg.HeartbeatEvery > 0 {
		go n.heartbeatLoop()
	}
	return n, nil
}

// heartbeatLoop periodically wakes streaming sessions so they push the
// commit watermark even when no records flow.
func (n *Node) heartbeatLoop() {
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for range t.C {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		n.hb++
		n.cond.Broadcast()
		n.mu.Unlock()
	}
}

// rebuildState resets the State and replays checkpoint + oplog into it.
func (n *Node) rebuildState() error {
	if err := n.state.Reset(); err != nil {
		return fmt.Errorf("repl: reset state: %w", err)
	}
	if pay, upTo, ok := n.log.LastCheckpoint(); ok && (upTo > 0 || len(pay) > 0) {
		if err := n.state.Restore(pay); err != nil {
			return fmt.Errorf("repl: restore checkpoint: %w", err)
		}
		n.applied = upTo
	}
	maxEpoch := uint64(0)
	err := n.log.Replay(func(seq uint64, payload []byte) error {
		repoch, name, data, err := DecodeOplogRecord(payload)
		if err != nil {
			return fmt.Errorf("repl: oplog record %d: %w", seq, err)
		}
		if err := n.state.Apply(name, data); err != nil {
			return fmt.Errorf("repl: replay record %d: %w", seq, err)
		}
		n.applied = seq
		n.lastRecordEpoch = repoch
		if repoch > maxEpoch {
			maxEpoch = repoch
		}
		return nil
	})
	if err != nil {
		return err
	}
	if maxEpoch > n.epoch {
		// The log outran the epoch file (crash between record append and
		// epoch persist cannot happen in this direction, but a copied
		// data directory can); trust the log.
		if err := saveEpoch(filepath.Join(n.dir, epochFile), maxEpoch); err != nil {
			return err
		}
		n.epoch = maxEpoch
	}
	n.commit = n.applied
	n.commitKnown = n.applied
	n.primaryTip = n.applied
	n.appliedAt = n.cfg.Clock.Now()
	return nil
}

// Close stops following, closes every session, and closes the oplog.
func (n *Node) Close() error {
	n.StopFollow()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	sessions := make([]*session, 0, len(n.sessions))
	for s := range n.sessions {
		sessions = append(sessions, s)
	}
	n.cond.Broadcast()
	n.mu.Unlock()
	for _, s := range sessions {
		s.conn.Close()
	}
	return n.log.Close()
}

// Epoch returns the node's current fencing epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// ID returns the node id.
func (n *Node) ID() string { return n.cfg.ID }

// StateRef returns the State the node maintains.
func (n *Node) StateRef() State { return n.state }

// PrimaryAddr returns the advertised client address of the last primary
// this follower spoke to ("" when unknown or primary).
func (n *Node) PrimaryAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primaryAddr
}

// Promote makes this node primary under a new, strictly higher epoch. It
// stops any follower loop first. Promoting an existing primary is a
// no-op. The caller (operator or orchestration layer) is responsible for
// picking the most advanced surviving follower — compare Status().Applied
// and Epoch across candidates — or acknowledged records may be lost.
func (n *Node) Promote() error {
	n.StopFollow()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.role == RolePrimary && !n.fenced {
		n.mu.Unlock()
		return nil
	}
	epoch := n.epoch + 1
	if err := saveEpoch(filepath.Join(n.dir, epochFile), epoch); err != nil {
		n.mu.Unlock()
		return err
	}
	n.epoch = epoch
	n.role = RolePrimary
	n.fenced = false
	n.primaryAddr = ""
	// The promoted node's entire log is now the authoritative history.
	n.commit = n.applied
	n.acked = make(map[string]uint64)
	cb := n.cfg.OnRole
	n.cond.Broadcast()
	n.mu.Unlock()
	mEpochChanges.Inc()
	if cb != nil {
		go cb(RolePrimary, epoch)
	}
	return nil
}

// Demote steps a primary down to follower without an epoch change — the
// operator's tool for re-pointing a healed stale primary at the new one
// (pair with Follow). In-flight Apply calls fail unacknowledged.
func (n *Node) Demote() {
	n.mu.Lock()
	var fire func()
	if n.role == RolePrimary {
		n.role = RoleFollower
		n.cond.Broadcast()
		if cb := n.cfg.OnRole; cb != nil {
			ep := n.epoch
			fire = func() { go cb(RoleFollower, ep) }
		}
	}
	n.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// adoptEpochLocked raises the node's epoch to e (persisting it), deposing
// a primary if one is running. Callers hold n.mu; e must exceed n.epoch.
// Returns the OnRole callback to fire (outside the lock) when a
// deposition happened.
func (n *Node) adoptEpochLocked(e uint64) func() {
	if err := saveEpoch(filepath.Join(n.dir, epochFile), e); err != nil {
		// Keep the in-memory epoch authoritative even if the disk write
		// failed; a restart may regress the epoch file but the cluster
		// will re-fence on first contact.
		mEpochPersistFailures.Inc()
	}
	n.epoch = e
	mEpochChanges.Inc()
	var fire func()
	if n.role == RolePrimary {
		n.role = RoleFollower
		n.fenced = true
		mFences.Inc()
		if cb := n.cfg.OnRole; cb != nil {
			fire = func() { go cb(RoleFollower, e) }
		}
	}
	n.cond.Broadcast()
	return fire
}

// adoptEpoch is adoptEpochLocked for callers without the lock; it ignores
// stale (lower or equal) epochs.
func (n *Node) adoptEpoch(e uint64) {
	n.mu.Lock()
	var fire func()
	if e > n.epoch {
		fire = n.adoptEpochLocked(e)
	}
	n.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// needAcks returns how many follower acks a write needs before commit.
func (n *Node) needAcks() int {
	switch n.cfg.Ack {
	case AckOne:
		return 1
	case AckQuorum:
		return (n.cfg.Replicas + 1) / 2
	}
	return 0
}

// recomputeCommitLocked advances the commit watermark from follower acks.
func (n *Node) recomputeCommitLocked() {
	need := n.needAcks()
	c := n.commit
	if need == 0 {
		c = n.applied
	} else if len(n.acked) >= need {
		vals := make([]uint64, 0, len(n.acked))
		for _, v := range n.acked {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
		if k := vals[need-1]; k > c {
			c = k
		}
		if c > n.applied {
			c = n.applied
		}
	}
	if c > n.commit {
		n.commit = c
		n.cond.Broadcast()
	}
}

// recordAck registers a follower's durable position.
func (n *Node) recordAck(id string, seq uint64) {
	n.mu.Lock()
	if seq > n.acked[id] {
		n.acked[id] = seq
		n.recomputeCommitLocked()
	}
	n.mu.Unlock()
	mAcksReceived.Inc()
}

// Apply appends one record as primary, streams it, and blocks until the
// configured quorum has it durably (see AckMode). On success the returned
// sequence is acknowledged: it survives any failover that promotes a
// quorum member. Any error means NOT acknowledged, but the returned
// sequence says how far the write got: 0 means the record was never
// appended (callers may roll back cleanly); nonzero means it is durably
// in the local oplog and applied to state — fencing, closing, or an ack
// timeout during the quorum wait — and callers must NOT roll back state
// the oplog carries (the record may still replicate, or a failover may
// discard it).
func (n *Node) Apply(name string, data []byte) (uint64, error) {
	start := time.Now()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	if n.role != RolePrimary {
		fenced := n.fenced
		n.mu.Unlock()
		mApplyRejected.Inc()
		if fenced {
			return 0, ErrFenced
		}
		return 0, ErrNotPrimary
	}
	payload := AppendOplogRecord(nil, n.epoch, name, data)
	seq, err := n.log.Append(payload)
	if err != nil {
		n.mu.Unlock()
		return 0, err
	}
	if err := n.state.Apply(name, data); err != nil {
		// The record is durably in the log but not in this process's
		// state, and the two cannot be reconciled from here: advancing
		// applied would stream a record our own state never applied,
		// while skipping it would let the next append stream past it.
		// Fatal — close the node so a follower takes over (or a restart
		// replays the log, repairing the state).
		n.closed = true
		sessions := make([]*session, 0, len(n.sessions))
		for s := range n.sessions {
			sessions = append(sessions, s)
		}
		n.cond.Broadcast()
		n.mu.Unlock()
		for _, s := range sessions {
			s.conn.Close()
		}
		n.log.Close()
		return seq, fmt.Errorf("repl: apply state (log/state diverged; node closed): %w", err)
	}
	n.applied = seq
	n.appliedAt = n.cfg.Clock.Now()
	n.lastRecordEpoch = n.epoch
	n.recomputeCommitLocked()
	n.cond.Broadcast() // wake streaming sessions
	err = n.waitCommittedLocked(seq)
	n.mu.Unlock()
	mAckWaitNs.Observe(time.Since(start).Nanoseconds())
	return seq, err
}

// ApplyStep is Apply for StoreState-backed nodes: one history step on the
// named database.
func (n *Node) ApplyStep(name string, t timestamp.Time, ops change.Set) (uint64, error) {
	return n.Apply(name, EncodeStep(t, ops))
}

// waitCommittedLocked blocks until seq commits, the node is fenced or
// closed, or AckTimeout passes. Caller holds n.mu.
func (n *Node) waitCommittedLocked(seq uint64) error {
	var deadline time.Time
	var timer *time.Timer
	if n.cfg.AckTimeout > 0 {
		deadline = time.Now().Add(n.cfg.AckTimeout)
		timer = time.AfterFunc(n.cfg.AckTimeout, func() {
			n.mu.Lock()
			n.cond.Broadcast()
			n.mu.Unlock()
		})
		defer timer.Stop()
	}
	for n.commit < seq {
		if n.closed {
			return ErrClosed
		}
		if n.role != RolePrimary {
			return ErrFenced
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			mAckTimeouts.Inc()
			return ErrAckTimeout
		}
		n.cond.Wait()
	}
	return nil
}

// Compact snapshots the State into the oplog checkpoint at the applied
// position, letting the log drop covered segments. States that return
// ErrNoSnapshot cannot compact; their logs retain full history (which
// also keeps full-replay catch-up possible).
func (n *Node) Compact() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	snap, err := n.state.Snapshot()
	if err != nil {
		return err
	}
	mSnapshots.Inc()
	return n.log.Checkpoint(snap, n.applied)
}

// Status is a point-in-time view of the node, including the staleness
// bound a read replica reports to clients: every record with sequence <=
// Applied is reflected in reads; LagSeq records are known to exist beyond
// that, and AppliedAt is the Clock time of the newest applied record.
type Status struct {
	ID          string
	Role        Role
	Fenced      bool
	Epoch       uint64
	Applied     uint64
	Commit      uint64
	PrimaryTip  uint64
	LagSeq      uint64
	AppliedAt   timestamp.Time
	LastContact time.Time
	Followers   int
	PrimaryAddr string
}

// Status returns the node's current status.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{
		ID:          n.cfg.ID,
		Role:        n.role,
		Fenced:      n.fenced,
		Epoch:       n.epoch,
		Applied:     n.applied,
		Commit:      n.commit,
		PrimaryTip:  n.primaryTip,
		AppliedAt:   n.appliedAt,
		LastContact: n.lastContact,
		Followers:   len(n.sessions),
		PrimaryAddr: n.primaryAddr,
	}
	if n.role == RoleFollower {
		if n.commitKnown < n.applied {
			st.Commit = n.commitKnown
		} else {
			st.Commit = n.applied
		}
		if n.primaryTip > n.applied {
			st.LagSeq = n.primaryTip - n.applied
		}
	}
	return st
}

// Epoch persistence: <dir>/EPOCH holds magic + uvarint epoch + CRC-32C,
// written atomically (tmp + fsync + rename + dir fsync).

const epochFile = "EPOCH"

var epochMagic = []byte("QREPLEP1")

func saveEpoch(path string, epoch uint64) error {
	buf := append([]byte(nil), epochMagic...)
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repl: epoch: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("repl: epoch: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repl: epoch: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repl: epoch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: epoch: %w", err)
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("repl: epoch: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("repl: epoch: %w", err)
	}
	return nil
}

func loadEpoch(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: epoch: %w", err)
	}
	if len(data) < len(epochMagic)+1+4 || string(data[:len(epochMagic)]) != string(epochMagic) {
		return 0, errors.New("repl: malformed epoch file")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return 0, errors.New("repl: epoch file checksum mismatch")
	}
	epoch, vn := binary.Uvarint(body[len(epochMagic):])
	if vn <= 0 {
		return 0, errors.New("repl: malformed epoch value")
	}
	return epoch, nil
}
