package segment

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/symbol"
)

// TestInternStreamParity is the cross-mode property test for the interned
// symbol table and the streaming evaluator: every combination of
// {interning on/off} × {streaming on/off} × {monolithic, indexed,
// segmented store} × {serial, parallel-4} must return byte-identical
// results on randomized Chorel queries. Databases are rebuilt under each
// gate setting so the build-time paths (label canonicalization, symbol- vs
// string-keyed index tables) are exercised, not just the query-time ones.
//
// The test mutates package-global gates, so it cannot run in parallel with
// itself or other gate-sensitive tests; gates are restored on exit.
func TestInternStreamParity(t *testing.T) {
	modes := []struct {
		name           string
		intern, stream bool
	}{
		{"intern+stream", true, true},
		{"intern", true, false},
		{"stream", false, true},
		{"neither", false, false},
	}

	prevIntern := symbol.SetEnabled(true)
	prevStream := lorel.SetStreaming(true)
	defer func() {
		symbol.SetEnabled(prevIntern)
		lorel.SetStreaming(prevStream)
	}()

	total := 0
	for seed := int64(1); seed <= 2; seed++ {
		// want[i] is the reference rendering of query i, recorded by the
		// first engine of the first mode and enforced everywhere after.
		var queries []string
		var want []string

		for _, m := range modes {
			symbol.SetEnabled(m.intern)
			lorel.SetStreaming(m.stream)

			sealRng := rand.New(rand.NewSource(seed * 104729))
			dir := filepath.Join(t.TempDir(), "store")
			mono, st := buildPair(t, dir, seed, func(i int) bool { return sealRng.Intn(5) == 0 }, nil)

			raw := lorel.NewEngine()
			raw.Register("guide", mono)
			idx := lorel.NewEngine()
			idx.Register("guide", index.NewGraph(mono))
			seg := lorel.NewEngine()
			seg.Register("guide", st.Graph())
			par := lorel.NewEngine()
			par.Register("guide", st.Graph())
			par.SetParallelism(4)

			steps := mono.Steps()
			polls := steps[:len(steps)/2+1]
			engines := []struct {
				name string
				e    *lorel.Engine
			}{{"mono", raw}, {"indexed", idx}, {"segmented", seg}, {"parallel", par}}
			for _, en := range engines {
				en.e.SetPollTimes(polls)
			}

			if queries == nil {
				rng := rand.New(rand.NewSource(seed * 7919))
				times := candidateTimes(mono)
				for i := 0; i < 25; i++ {
					queries = append(queries, randomQuery(rng, times))
				}
			}

			for qi, q := range queries {
				for _, en := range engines {
					res, err := en.e.Query(q)
					if err != nil {
						t.Fatalf("seed %d mode %s engine %s %q: %v", seed, m.name, en.name, q, err)
					}
					got := res.String()
					if len(want) <= qi {
						want = append(want, got)
						continue
					}
					if got != want[qi] {
						t.Errorf("seed %d mode %s engine %s diverges for %q:\nwant:\n%s\ngot:\n%s",
							seed, m.name, en.name, q, want[qi], got)
					}
					total++
				}
			}
			st.Close()
		}
	}
	if total < 100 {
		t.Fatalf("parity matrix ran only %d comparisons, want >= 100", total)
	}
}

// TestInternParityExistsShortCircuit pins byte-parity on the query shape
// the exists fix changed, across gate modes: a where-clause exists with an
// early witness and one with no witness.
func TestInternParityExistsShortCircuit(t *testing.T) {
	prevIntern := symbol.SetEnabled(true)
	prevStream := lorel.SetStreaming(true)
	defer func() {
		symbol.SetEnabled(prevIntern)
		lorel.SetStreaming(prevStream)
	}()

	queries := []string{
		`select R from guide.restaurant R where exists N in R.name : N like "%a%"`,
		`select R from guide.restaurant R where exists N in R.name : N = "no such restaurant"`,
		`select count(guide.restaurant.name)`,
	}
	var want []string
	for _, intern := range []bool{false, true} {
		for _, stream := range []bool{false, true} {
			symbol.SetEnabled(intern)
			lorel.SetStreaming(stream)
			dir := filepath.Join(t.TempDir(), "store")
			mono, st := buildPair(t, dir, 3, func(i int) bool { return i%3 == 0 }, nil)
			e := lorel.NewEngine()
			e.Register("guide", st.Graph())
			for qi, q := range queries {
				res, err := e.Query(q)
				if err != nil {
					t.Fatalf("intern=%v stream=%v %q: %v", intern, stream, q, err)
				}
				got := fmt.Sprintf("%s", res)
				if len(want) <= qi {
					want = append(want, got)
				} else if got != want[qi] {
					t.Errorf("intern=%v stream=%v diverges for %q:\nwant:\n%s\ngot:\n%s",
						intern, stream, q, want[qi], got)
				}
			}
			st.Close()
			_ = mono
		}
	}
}
