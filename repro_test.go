// Tests exercising the public facade end to end — the surface a downstream
// user of this library sees.
package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

// buildGuide constructs a small guide through the facade only.
func buildGuide(t testing.TB) (*repro.OEM, repro.NodeID, repro.NodeID) {
	t.Helper()
	db := repro.NewOEM()
	rest := db.CreateNode(repro.Complex())
	if err := db.AddArc(db.Root(), "restaurant", rest); err != nil {
		t.Fatal(err)
	}
	name := db.CreateNode(repro.Str("Bangkok Cuisine"))
	if err := db.AddArc(rest, "name", name); err != nil {
		t.Fatal(err)
	}
	price := db.CreateNode(repro.Int(10))
	if err := db.AddArc(rest, "price", price); err != nil {
		t.Fatal(err)
	}
	return db, rest, price
}

func TestFacadeEndToEnd(t *testing.T) {
	db, _, price := buildGuide(t)
	cdb := repro.Open("guide", db)

	if err := cdb.Apply(repro.MustParseTime("1Jan97"), repro.ChangeSet{
		repro.UpdNode{Node: price, Value: repro.Int(20)},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := cdb.Query(`select OV, NV from guide.restaurant.price<upd from OV to NV>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	ov := res.Values("old-value")
	if len(ov) != 1 || !ov[0].Equal(repro.Int(10)) {
		t.Errorf("old-value = %v", ov)
	}

	// Time travel through the facade.
	snap := cdb.SnapshotAt(repro.MustParseTime("31Dec96"))
	rests := snap.OutLabeled(snap.Root(), "restaurant")
	if len(rests) != 1 {
		t.Fatalf("restaurants = %d", len(rests))
	}
	prices := snap.OutLabeled(rests[0].Child, "price")
	if v := snap.MustValue(prices[0].Child); !v.Equal(repro.Int(10)) {
		t.Errorf("historical price = %s", v)
	}
}

func TestFacadeHistoryRoundTrip(t *testing.T) {
	db, rest, _ := buildGuide(t)
	h := repro.History{
		{At: repro.MustParseTime("1Jan97"), Ops: repro.ChangeSet{
			repro.CreNode{Node: 100, Value: repro.Str("Thai")},
			repro.AddArc{Parent: rest, Label: "cuisine", Child: 100},
		}},
	}
	cdb, err := repro.OpenWithHistory("guide", db, h)
	if err != nil {
		t.Fatal(err)
	}
	got := cdb.History()
	if len(got) != 1 || len(got[0].Ops) != 2 {
		t.Errorf("extracted history = %v", got)
	}
}

func TestFacadeDiffAndStore(t *testing.T) {
	db, _, price := buildGuide(t)
	next := db.Clone()
	if err := next.UpdateNode(price, repro.Int(30)); err != nil {
		t.Fatal(err)
	}
	set, err := repro.DiffSnapshots(db, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Errorf("diff = %s", set)
	}

	store, err := repro.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cdb := repro.Open("guide", db)
	if err := cdb.Save(store); err != nil {
		t.Fatal(err)
	}
	back, err := repro.LoadDB(store, "guide")
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "guide" {
		t.Errorf("name = %q", back.Name())
	}
}

func TestFacadeQSS(t *testing.T) {
	db, _, _ := buildGuide(t)
	src := repro.NewMutableSource(db)
	var got []repro.Notification
	svc := repro.NewQSS(func(n repro.Notification) { got = append(got, n) })
	err := svc.Subscribe(repro.Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("R", repro.MustParseTime("1Jan97")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("notifications = %d", len(got))
	}
}

func TestFacadeTriggers(t *testing.T) {
	db, _, price := buildGuide(t)
	mgr := repro.NewTriggerManager("guide", repro.NewDOEM(db))
	fired := 0
	err := mgr.Add(repro.Trigger{
		Name:   "watch",
		Query:  `select NV from guide.restaurant.price<upd at T to NV> where T > t[-1]`,
		Action: func(f repro.Firing) error { fired++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Apply(repro.MustParseTime("1Jan97"), repro.ChangeSet{
		repro.UpdNode{Node: price, Value: repro.Int(99)},
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
}

func TestFacadeFreqAndEngine(t *testing.T) {
	f, err := repro.ParseFreq("every 10 minutes")
	if err != nil {
		t.Fatal(err)
	}
	next := f.Next(repro.MustParseTime("1Jan97"))
	if next.String() != "1Jan97 00:10" {
		t.Errorf("Next = %s", next)
	}

	db, _, _ := buildGuide(t)
	eng := repro.NewEngine()
	eng.Register("g", repro.WrapOEM(db))
	res, err := eng.Query(`select g.restaurant.name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d", res.Len())
	}
}

func ExampleOpen() {
	db := repro.NewOEM()
	rest := db.CreateNode(repro.Complex())
	_ = db.AddArc(db.Root(), "restaurant", rest)
	price := db.CreateNode(repro.Int(10))
	_ = db.AddArc(rest, "price", price)

	cdb := repro.Open("guide", db)
	_ = cdb.Apply(repro.MustParseTime("1Jan97"), repro.ChangeSet{
		repro.UpdNode{Node: price, Value: repro.Int(20)},
	})
	res, _ := cdb.Query(`select NV from guide.restaurant.price<upd to NV>`)
	fmt.Print(res)
	// Output:
	// 1 row(s)
	// new-value: 20
}

func TestFacadeUpdateStatement(t *testing.T) {
	db, _, price := buildGuide(t)
	_ = price
	cdb := repro.Open("guide", db)
	set, err := cdb.Update(repro.MustParseTime("1Jan97"),
		`update guide.restaurant.price := 42`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("set = %v", set)
	}
	res, err := cdb.Query(`select NV from guide.restaurant.price<upd to NV>`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("new-value")
	if len(vals) != 1 || !vals[0].Equal(repro.Int(42)) {
		t.Errorf("new-value = %v", vals)
	}
}

func TestFacadeEncodeDecode(t *testing.T) {
	db, _, price := buildGuide(t)
	cdb := repro.Open("guide", db)
	if err := cdb.Apply(repro.MustParseTime("1Jan97"), repro.ChangeSet{
		repro.UpdNode{Node: price, Value: repro.Int(20)},
	}); err != nil {
		t.Fatal(err)
	}
	enc := repro.Encode(cdb.DOEM())
	back, err := repro.Decode(enc.DB)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Feasible() {
		t.Error("decoded database infeasible")
	}
}
