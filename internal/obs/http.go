package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// AdminOptions configures the admin HTTP surface.
type AdminOptions struct {
	// Registry is the metric source; nil uses Default.
	Registry *Registry
	// Health computes the /healthz detail. status "" or "ok" serves 200;
	// anything else serves 503 with the status in the payload. nil
	// reports a bare "ok".
	Health func() (status string, detail map[string]any)
}

// NewAdminMux builds the admin endpoint (serve it on a loopback or
// otherwise access-controlled address — it exposes pprof):
//
//	/metrics            expvar-style JSON snapshot of every metric
//	/metrics?format=prometheus
//	                    the same snapshot in Prometheus text format
//	/healthz            build info, uptime, and the Health callback's
//	                    status and detail (503 unless status is ok)
//	/debug/pprof/...    net/http/pprof profiles
func NewAdminMux(opts AdminOptions) *http.ServeMux {
	reg := opts.Registry
	if reg == nil {
		reg = Default
	}
	started := time.Now()
	build := ReadBuildInfo()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if f := r.URL.Query().Get("format"); f == "prometheus" || f == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(PrometheusText(snap)))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status, detail := "ok", map[string]any(nil)
		if opts.Health != nil {
			status, detail = opts.Health()
			if status == "" {
				status = "ok"
			}
		}
		payload := map[string]any{
			"status":         status,
			"build":          build,
			"uptime_seconds": int64(time.Since(started).Seconds()),
		}
		for k, v := range detail {
			payload[k] = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
	// pprof handlers are registered explicitly so only this mux (not
	// http.DefaultServeMux) exposes them.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// PrometheusText renders a snapshot in the Prometheus text exposition
// format (counters and gauges as-is, histograms as summaries with
// quantile labels over the retained window).
func PrometheusText(s *Snap) string {
	var sb strings.Builder

	writeTyped := func(vals map[string]int64, typ string) {
		names := make([]string, 0, len(vals))
		for n := range vals {
			names = append(names, n)
		}
		sort.Strings(names)
		typed := make(map[string]bool)
		for _, n := range names {
			base, _ := splitLabels(n)
			if !typed[base] {
				typed[base] = true
				fmt.Fprintf(&sb, "# TYPE %s %s\n", base, typ)
			}
			fmt.Fprintf(&sb, "%s %d\n", n, vals[n])
		}
	}
	writeTyped(s.Counters, "counter")
	writeTyped(s.Gauges, "gauge")

	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	typed := make(map[string]bool)
	for _, n := range names {
		st := s.Histograms[n]
		base, labels := splitLabels(n)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&sb, "# TYPE %s summary\n", base)
		}
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", st.P50}, {"0.95", st.P95}, {"0.99", st.P99}} {
			fmt.Fprintf(&sb, "%s{%squantile=%q} %d\n", base, labels, q.q, q.v)
		}
		fmt.Fprintf(&sb, "%s_sum%s %d\n", base, wrapLabels(labels), st.Sum)
		fmt.Fprintf(&sb, "%s_count%s %d\n", base, wrapLabels(labels), st.Count)
	}
	return sb.String()
}

// splitLabels splits `name{a="b"}` into the bare name and `a="b",`
// (trailing comma, ready to prefix more labels); a plain name yields "".
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	inner := name[i+1 : len(name)-1]
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// wrapLabels re-wraps a splitLabels result for a _sum/_count line.
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}
