package lorel

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/obs"
	"repro/internal/timestamp"
)

// planned returns an engine over the paper guide with planning forced on.
func plannedEngine(t testing.TB) (*Engine, *doem.Database) {
	t.Helper()
	e, _, d := paperEngine(t)
	e.SetPlanning(true)
	return e, d
}

// TestPlanCacheHitAndReprepare: the second run of a query hits the plan
// cache; mutating the database underneath re-prepares instead of
// executing against stale cardinalities, and the re-prepared plan's
// results match written-order evaluation of the new state.
func TestPlanCacheHitAndReprepare(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	ev := guidegen.NewEvolver(11, 10)
	d := doem.New(ev.DB)
	e := NewEngine()
	e.Register("guide", d)
	e.SetPlanning(true)
	off := NewEngine()
	off.Register("guide", d)
	off.SetPlanning(false)

	const q = `select N from guide.restaurant R, R.name N where R.price < 20`
	if _, err := e.Query(q); err != nil {
		t.Fatalf("first run: %v", err)
	}
	hits0 := mPlanCacheHits.Value()
	if _, err := e.Query(q); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if mPlanCacheHits.Value() == hits0 {
		t.Error("second run of an unchanged query did not hit the plan cache")
	}

	at := timestamp.MustParse("1Jan97")
	for i := 0; i < 4; i++ {
		set := ev.Step(5)
		if len(set) == 0 {
			continue
		}
		if err := d.Apply(at, set); err != nil {
			t.Fatalf("apply step %d: %v", i, err)
		}
		rep0 := mPlanReprepares.Value()
		got, err := e.Query(q)
		if err != nil {
			t.Fatalf("post-apply run %d: %v", i, err)
		}
		if mPlanReprepares.Value() == rep0 {
			t.Fatalf("step %d: cached plan served without re-preparing after Apply", i)
		}
		want, err := off.Query(q)
		if err != nil {
			t.Fatalf("written-order run %d: %v", i, err)
		}
		if got.String() != want.String() {
			t.Fatalf("step %d: re-prepared plan diverges:\nplanned:\n%s\nwritten order:\n%s", i, got, want)
		}
		at = at.Add(86400e9)
	}
}

// TestPlanCacheMissingNamePin: a query whose head is unregistered is
// cached as unplannable, but registering the name later must invalidate
// that entry — the query then plans and runs.
func TestPlanCacheMissingNamePin(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	e, d := plannedEngine(t)
	const q = `select N from later.restaurant R, R.name N`
	if _, err := e.Query(q); err == nil {
		t.Fatal("query against an unregistered name should error")
	}
	unp0 := mPlanUnplannable.Value()
	if _, err := e.Query(q); err == nil {
		t.Fatal("second run should still error")
	}
	if mPlanUnplannable.Value() == unp0 {
		// The negative entry should have been served from cache — but
		// either way the query errors; nothing more to assert here.
		t.Log("negative plan entry re-prepared (acceptable)")
	}
	e.Register("later", d)
	got, err := e.Query(q)
	if err != nil {
		t.Fatalf("after registering the missing name: %v", err)
	}
	off := NewEngine()
	off.SetPlanning(false)
	off.Register("later", d)
	want, err := off.Query(q)
	if err != nil {
		t.Fatalf("written-order reference: %v", err)
	}
	if got.String() != want.String() {
		t.Fatalf("stale negative entry survived Register:\nplanned:\n%s\nwritten order:\n%s", got, want)
	}
}

// TestUnplannableFallback: queries the validator rejects run on the
// legacy evaluator and must behave identically to planning-off, errors
// included.
func TestUnplannableFallback(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	e, d := plannedEngine(t)
	off := NewEngine()
	off.SetPlanning(false)
	off.Register("guide", d)

	// A duplicate annotation variable shadows under the legacy env chain;
	// the planner must stand aside rather than reproduce shadowing.
	dup := `select T from guide.<add at T>restaurant R, R.<add at T>name N`
	unp0 := mPlanUnplannable.Value()
	got, gerr := e.Query(dup)
	want, werr := off.Query(dup)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("fallback error mismatch: planned err=%v, written err=%v", gerr, werr)
	}
	if gerr == nil && got.String() != want.String() {
		t.Fatalf("fallback result diverges:\nplanned:\n%s\nwritten order:\n%s", got, want)
	}
	if mPlanUnplannable.Value() == unp0 {
		t.Error("duplicate-variable query was not counted unplannable")
	}

	// Arithmetic in predicate position errors at evaluation time; both
	// modes must return the same error.
	bad := `select R from guide.restaurant R where R.price + 1`
	_, gerr = e.Query(bad)
	_, werr = off.Query(bad)
	if gerr == nil || werr == nil {
		t.Fatalf("non-predicate where should error: planned=%v written=%v", gerr, werr)
	}
	if gerr.Error() != werr.Error() {
		t.Fatalf("error text diverges: planned %q, written %q", gerr, werr)
	}
}

// TestPlanDescription covers the three EXPLAIN shapes: a planned query
// (join order + pushdown), planning disabled, and an unplannable query.
func TestPlanDescription(t *testing.T) {
	e, _ := plannedEngine(t)
	lines, err := e.PlanDescription(`select N from guide.restaurant R, R.name N where R.price < 20`)
	if err != nil {
		t.Fatalf("PlanDescription: %v", err)
	}
	joined := strings.Join(lines, "\n")
	// The canonicalizer hoists R.price into an existential generator, so
	// the predicate is pushed onto its fresh variable.
	for _, want := range []string{"join order:", "est tuples:", "push: (_v1 < 20)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, joined)
		}
	}

	lines, err = e.PlanDescription(`select T from guide.<add at T>restaurant R, R.<add at T>name N`)
	if err != nil {
		t.Fatalf("PlanDescription (unplannable): %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "not plannable") {
		t.Errorf("unplannable EXPLAIN = %q", lines)
	}

	e.SetPlanning(false)
	lines, err = e.PlanDescription(`select guide.restaurant.name`)
	if err != nil {
		t.Fatalf("PlanDescription (disabled): %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "disabled") {
		t.Errorf("disabled EXPLAIN = %q", lines)
	}
}

// TestPlannedTraceActuals: a traced planned query records per-generator
// actual and estimated cardinalities for EXPLAIN ANALYZE-style output.
func TestPlannedTraceActuals(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	e, _ := plannedEngine(t)
	const q = `select N from guide.restaurant R, R.name N where R.price < 20`
	tr := obs.NewTrace(q)
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := e.QueryContext(ctx, q); err != nil {
		t.Fatalf("traced query: %v", err)
	}
	s := tr.String()
	if !strings.Contains(s, "plan_actual_R") || !strings.Contains(s, "plan_est_R") {
		t.Errorf("trace missing planner actual/estimated cardinalities:\n%s", s)
	}
	if !strings.Contains(s, "plan") {
		t.Errorf("trace missing plan span:\n%s", s)
	}
}

// FuzzPlanCacheKey checks the injectivity contract the plan cache depends
// on: whenever two query texts canonicalize to the same cache key, they
// must be the same query — byte-identical results on the same database.
func FuzzPlanCacheKey(f *testing.F) {
	// Whitespace and formatting variants: same key, same results.
	f.Add("select guide.restaurant.name", "select  guide.restaurant.name")
	f.Add("select N from guide.restaurant R, R.name N",
		"select N from guide.restaurant R, R.name N where true")
	// Alias renaming: keys may or may not collide; results must agree if
	// they do.
	f.Add("select N from guide.restaurant R, R.name N",
		"select M from guide.restaurant S, S.name M")
	// Near-misses that must NOT collide: different label, different
	// constant, different operator, swapped generators.
	f.Add("select guide.restaurant.name", "select guide.restaurant.nam")
	f.Add("select R from guide.restaurant R where R.price < 20",
		"select R from guide.restaurant R where R.price < 21")
	f.Add("select R from guide.restaurant R where R.price < 20",
		"select R from guide.restaurant R where R.price <= 20")
	f.Add("select N from guide.restaurant R, R.name N",
		"select N from R.name N, guide.restaurant R")
	f.Add("select T from guide.<add at T>restaurant", "select T from guide.<rem at T>restaurant")
	f.Add(`select guide.<at "1Jan97">restaurant`, `select guide.<at "2Jan97">restaurant`)

	db, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(db, guidegen.PaperHistory(ids))
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 512 || len(b) > 512 {
			t.Skip("oversized input")
		}
		qa := canonicalized(a)
		qb := canonicalized(b)
		if qa == nil || qb == nil {
			t.Skip("unparseable or non-canonical input")
		}
		if qa.key == "" || qb.key == "" {
			t.Fatalf("canonicalization left an empty plan-cache key: %q / %q", a, b)
		}
		if qa.key != qb.key {
			return
		}
		// Same key: the queries must be indistinguishable to the cache.
		e := NewEngine()
		e.Register("guide", d)
		ra, ea := e.EvalContext(context.Background(), qa)
		rb, eb := e.EvalContext(context.Background(), qb)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("key collision with diverging errors:\n%q -> %v\n%q -> %v", a, ea, b, eb)
		}
		if ea == nil && ra.String() != rb.String() {
			t.Fatalf("key collision with diverging results:\n%q:\n%s\n%q:\n%s", a, ra, b, rb)
		}
	})
}

// canonicalized parses and canonicalizes src, returning nil on any error.
func canonicalized(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		return nil
	}
	if err := Canonicalize(q); err != nil {
		return nil
	}
	return q
}

// TestCanonicalKeyDistinguishes pins the near-miss seeds deterministically
// (the fuzz target only checks them when the fuzz corpus runs).
func TestCanonicalKeyDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"select guide.restaurant.name", "select guide.restaurant.nam"},
		{"select R from guide.restaurant R where R.price < 20",
			"select R from guide.restaurant R where R.price < 21"},
		{"select R from guide.restaurant R where R.price < 20",
			"select R from guide.restaurant R where R.price <= 20"},
		{"select T from guide.<add at T>restaurant", "select T from guide.<rem at T>restaurant"},
		{`select guide.<at "1Jan97">restaurant`, `select guide.<at "2Jan97">restaurant`},
	}
	for _, p := range pairs {
		qa, qb := canonicalized(p[0]), canonicalized(p[1])
		if qa == nil || qb == nil {
			t.Fatalf("seed pair failed to canonicalize: %q / %q", p[0], p[1])
		}
		if qa.key == qb.key {
			t.Errorf("distinct queries share a cache key:\n%q\n%q\nkey: %s",
				p[0], p[1], fmt.Sprintf("%x", qa.key))
		}
	}
	// And the whitespace variant must collide (that is the point of
	// canonical keys: one cache entry per canonical query).
	qa, qb := canonicalized("select guide.restaurant.name"), canonicalized("select  guide.restaurant.name")
	if qa == nil || qb == nil || qa.key != qb.key {
		t.Error("whitespace variants should share a cache key")
	}
}
