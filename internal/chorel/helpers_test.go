package chorel

import (
	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/value"
)

// changeSetForTest builds a set creating a restaurant node with a name and
// wiring it under the guide root.
func changeSetForTest(id oem.NodeID, root oem.NodeID) change.Set {
	return change.Set{
		change.CreNode{Node: id, Value: value.Complex()},
		change.CreNode{Node: id + 1, Value: value.Str("Newcomer")},
		change.AddArc{Parent: root, Label: "restaurant", Child: id},
		change.AddArc{Parent: id, Label: "name", Child: id + 1},
	}
}
