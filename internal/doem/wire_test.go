package doem

import (
	"testing"

	"repro/internal/change"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func TestWireRoundTrip(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(back) || !back.Equal(d) {
		t.Errorf("wire round trip changed database:\nin:\n%s\nout:\n%s", d, back)
	}
	// The reloaded database remains fully functional: snapshots, history
	// extraction and further Apply all work.
	if !back.SnapshotAt(f.t1).Equal(d.SnapshotAt(f.t1)) {
		t.Error("snapshot differs after reload")
	}
	if !back.Feasible() {
		t.Error("reloaded database infeasible")
	}
	if err := back.Apply(timestamp.MustParse("9Jan97"), change.Set{
		change.UpdNode{Node: f.price, Value: value.Int(30)},
	}); err != nil {
		t.Errorf("Apply after reload: %v", err)
	}
}

func TestWireRoundTripWithDeletions(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	if err := d.Apply(timestamp.MustParse("9Jan97"), change.Set{
		change.RemArc{Parent: f.n2, Label: "comment", Child: f.n5},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(back) {
		t.Error("round trip with deleted nodes changed database")
	}
	if v, ok := back.Value(f.n5); !ok || !v.Equal(value.Str("need info")) {
		t.Errorf("deleted node value after reload = %s,%v", v, ok)
	}
}

func TestWireRoundTripEmpty(t *testing.T) {
	d := New(newFixture(t).db)
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(back) {
		t.Error("empty-history round trip changed database")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"current":"also not a db"}`)); err == nil {
		t.Error("bad nested payload accepted")
	}
}
