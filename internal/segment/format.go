package segment

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/oemio"
	"repro/internal/symbol"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// On-disk formats. A history directory holds:
//
//	wal/             the active segment's tail log (internal/wal)
//	seg-NNNNNN.seg   sealed segment N: checkpointed base snapshot + deltas
//	seg-NNNNNN.idx   sealed segment N's annotation index (derived, droppable)
//	seg-NNNNNN.seg.gz  cold-tier replacement for the .seg file
//	STATE            store-level registry/annotation summary at the last seal
//
// Every file carries a magic string and a trailing CRC-32C of everything
// before it, and is written atomically (temp + fsync + rename + directory
// fsync), mirroring the WAL checkpoint discipline: a crash leaves either the
// old file, the new file, or an invisible temp file — never a torn one the
// reader would trust. The .seg file is ground truth for its interval; the
// .idx file is derived from it and rebuilt on demand (the cold tier deletes
// it). The STATE file is derived from the seg files plus the tail and is
// rebuilt by full replay if it is ever missing or damaged.
//
// All varints are unsigned LEB128; times and values use the internal/change
// encoders, so the formats share the WAL payload encoding end to end.

var (
	segMagic   = []byte("DSEG1\n")
	idxMagic   = []byte("DIDX1\n")
	stateMagic = []byte("DSTA1\n")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an undecodable segment, index, or state file.
var ErrCorrupt = errors.New("segment: corrupt file")

// maxDecodeCount caps decoded element counts so corrupt length prefixes
// cannot trigger huge allocations (same bound as internal/change).
const maxDecodeCount = 1 << 24

const stateName = "STATE"

func segFileName(id int) string { return fmt.Sprintf("seg-%06d.seg", id) }
func idxFileName(id int) string { return fmt.Sprintf("seg-%06d.idx", id) }

// segData is the decoded ground truth of one sealed segment: the snapshot
// at the segment's start (the seal-boundary checkpoint), the history steps
// of its interval (start, end], and the orphan arcs frozen live at the
// start. An orphan arc's most recent annotation (in some earlier segment)
// is an add, but node garbage collection removed an endpoint before this
// segment began, so the boundary snapshot omits the arc while the
// monolithic ArcLiveAt keeps it live forever (its chain can never grow
// again). Persisting the orphans makes each segment self-contained: a
// cold-tier index rebuild cannot recover them from the store summaries,
// which reflect later segments too.
type segData struct {
	id         int
	start, end timestamp.Time
	base       *oem.Database
	steps      change.History
	orphans    []oem.Arc
}

// segIndex is the queryable annotation index of one sealed segment:
// time-sorted upd chains per node, add/rem chains per arc, and the complete
// set of arcs live at the segment's start (so liveness questions about any
// instant inside the interval resolve against this one segment).
type segIndex struct {
	upd         map[oem.NodeID][]doem.NodeAnnot
	arcs        map[oem.Arc][]doem.ArcAnnot
	liveAtStart map[oem.Arc]bool
}

// storeState is the store-level summary maintained across seals: the global
// arc registry (every arc ever, per parent, in first-insertion order — the
// monolithic OutAll order), cre times and final values of nodes whose
// annotations have been sealed away from the active segment, and the id
// high-water mark.
type storeState struct {
	lastSeal timestamp.Time
	maxID    oem.NodeID
	segCount int
	registry map[oem.NodeID][]oem.Arc
	cre      map[oem.NodeID]timestamp.Time
	dead     map[oem.NodeID]value.Value
	// sealedStatus records, for every arc with at least one annotation in
	// sealed history, the kind of its most recent sealed annotation — the
	// arc's status at the last seal boundary. Arcs absent from both this
	// map and the active chains have no annotations at all and are
	// vacuously live (the monolithic convention).
	sealedStatus map[oem.Arc]doem.AnnotKind
}

// ---- encoding helpers ----

func appendArc(dst []byte, a oem.Arc) []byte {
	dst = binary.AppendUvarint(dst, uint64(a.Parent))
	dst = change.AppendString(dst, a.Label)
	return binary.AppendUvarint(dst, uint64(a.Child))
}

func decodeArc(data []byte) (oem.Arc, int, error) {
	var a oem.Arc
	p, n := binary.Uvarint(data)
	if n <= 0 {
		return a, 0, fmt.Errorf("%w: arc parent", ErrCorrupt)
	}
	off := n
	label, n, err := change.DecodeString(data[off:])
	if err != nil {
		return a, 0, fmt.Errorf("%w: arc label", ErrCorrupt)
	}
	off += n
	c, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return a, 0, fmt.Errorf("%w: arc child", ErrCorrupt)
	}
	off += n
	return oem.Arc{Parent: oem.NodeID(p), Label: label, Child: oem.NodeID(c)}, off, nil
}

func decodeCount(data []byte, what string) (int, int, error) {
	c, n := binary.Uvarint(data)
	if n <= 0 || c > maxDecodeCount {
		return 0, 0, fmt.Errorf("%w: %s count", ErrCorrupt, what)
	}
	return int(c), n, nil
}

// seal wraps body in magic + CRC trailer.
func sealFrame(magic, body []byte) []byte {
	buf := append([]byte(nil), magic...)
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// openFrame validates magic and CRC and returns the body.
func openFrame(magic, data []byte) ([]byte, error) {
	if len(data) < len(magic)+4 || !bytes.Equal(data[:len(magic)], magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return body[len(magic):], nil
}

// ---- segment (.seg) files ----

func encodeSegData(s *segData) ([]byte, error) {
	baseBytes, err := oemio.Marshal(s.base)
	if err != nil {
		return nil, fmt.Errorf("segment: encoding base: %w", err)
	}
	var body []byte
	body = binary.AppendUvarint(body, uint64(s.id))
	body = change.AppendTime(body, s.start)
	body = change.AppendTime(body, s.end)
	body = binary.AppendUvarint(body, uint64(len(baseBytes)))
	body = append(body, baseBytes...)
	body = binary.AppendUvarint(body, uint64(len(s.steps)))
	for _, step := range s.steps {
		body = change.AppendStep(body, step)
	}
	body = binary.AppendUvarint(body, uint64(len(s.orphans)))
	for _, a := range s.orphans {
		body = appendArc(body, a)
	}
	return sealFrame(segMagic, body), nil
}

func decodeSegData(data []byte) (*segData, error) {
	body, err := openFrame(segMagic, data)
	if err != nil {
		return nil, err
	}
	s := &segData{}
	id, n := binary.Uvarint(body)
	if n <= 0 || id > maxDecodeCount {
		return nil, fmt.Errorf("%w: segment id", ErrCorrupt)
	}
	s.id = int(id)
	body = body[n:]
	if s.start, n, err = change.DecodeTime(body); err != nil {
		return nil, err
	}
	body = body[n:]
	if s.end, n, err = change.DecodeTime(body); err != nil {
		return nil, err
	}
	body = body[n:]
	blen, n := binary.Uvarint(body)
	if n <= 0 || uint64(len(body)-n) < blen {
		return nil, fmt.Errorf("%w: base length", ErrCorrupt)
	}
	body = body[n:]
	if s.base, err = oemio.Unmarshal(body[:blen]); err != nil {
		return nil, fmt.Errorf("%w: base: %v", ErrCorrupt, err)
	}
	body = body[blen:]
	count, n, err := decodeCount(body, "step")
	if err != nil {
		return nil, err
	}
	body = body[n:]
	s.steps = make(change.History, 0, count)
	for i := 0; i < count; i++ {
		step, n, err := change.DecodeStep(body)
		if err != nil {
			return nil, err
		}
		body = body[n:]
		s.steps = append(s.steps, step)
	}
	count, n, err = decodeCount(body, "orphan arc")
	if err != nil {
		return nil, err
	}
	body = body[n:]
	for i := 0; i < count; i++ {
		a, n, err := decodeArc(body)
		if err != nil {
			return nil, err
		}
		body = body[n:]
		s.orphans = append(s.orphans, a)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body))
	}
	return s, nil
}

// ---- index (.idx) files ----

func encodeSegIndex(id int, start, end timestamp.Time, x *segIndex) []byte {
	var body []byte
	body = binary.AppendUvarint(body, uint64(id))
	body = change.AppendTime(body, start)
	body = change.AppendTime(body, end)

	live := make([]oem.Arc, 0, len(x.liveAtStart))
	for a := range x.liveAtStart {
		live = append(live, a)
	}
	sortArcs(live)
	body = binary.AppendUvarint(body, uint64(len(live)))
	for _, a := range live {
		body = appendArc(body, a)
	}

	nodes := make([]oem.NodeID, 0, len(x.upd))
	for n := range x.upd {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	body = binary.AppendUvarint(body, uint64(len(nodes)))
	for _, n := range nodes {
		chain := x.upd[n]
		body = binary.AppendUvarint(body, uint64(n))
		body = binary.AppendUvarint(body, uint64(len(chain)))
		for _, a := range chain {
			body = change.AppendTime(body, a.At)
			body = change.AppendValue(body, a.Old)
		}
	}

	arcs := make([]oem.Arc, 0, len(x.arcs))
	for a := range x.arcs {
		arcs = append(arcs, a)
	}
	sortArcs(arcs)
	body = binary.AppendUvarint(body, uint64(len(arcs)))
	for _, a := range arcs {
		chain := x.arcs[a]
		body = appendArc(body, a)
		body = binary.AppendUvarint(body, uint64(len(chain)))
		for _, ann := range chain {
			if ann.Kind == doem.AnnotAdd {
				body = append(body, 0)
			} else {
				body = append(body, 1)
			}
			body = change.AppendTime(body, ann.At)
		}
	}
	return sealFrame(idxMagic, body)
}

func decodeSegIndex(data []byte) (int, *segIndex, error) {
	body, err := openFrame(idxMagic, data)
	if err != nil {
		return 0, nil, err
	}
	id, n := binary.Uvarint(body)
	if n <= 0 || id > maxDecodeCount {
		return 0, nil, fmt.Errorf("%w: index id", ErrCorrupt)
	}
	body = body[n:]
	if _, n, err = change.DecodeTime(body); err != nil {
		return 0, nil, err
	}
	body = body[n:]
	if _, n, err = change.DecodeTime(body); err != nil {
		return 0, nil, err
	}
	body = body[n:]

	x := &segIndex{
		upd:         make(map[oem.NodeID][]doem.NodeAnnot),
		arcs:        make(map[oem.Arc][]doem.ArcAnnot),
		liveAtStart: make(map[oem.Arc]bool),
	}
	count, n, err := decodeCount(body, "live arc")
	if err != nil {
		return 0, nil, err
	}
	body = body[n:]
	for i := 0; i < count; i++ {
		a, n, err := decodeArc(body)
		if err != nil {
			return 0, nil, err
		}
		body = body[n:]
		x.liveAtStart[a] = true
	}

	count, n, err = decodeCount(body, "upd node")
	if err != nil {
		return 0, nil, err
	}
	body = body[n:]
	for i := 0; i < count; i++ {
		node, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, nil, fmt.Errorf("%w: upd node id", ErrCorrupt)
		}
		body = body[n:]
		clen, n, err := decodeCount(body, "upd chain")
		if err != nil {
			return 0, nil, err
		}
		body = body[n:]
		chain := make([]doem.NodeAnnot, 0, clen)
		for j := 0; j < clen; j++ {
			at, n, err := change.DecodeTime(body)
			if err != nil {
				return 0, nil, err
			}
			body = body[n:]
			old, n, err := change.DecodeValue(body)
			if err != nil {
				return 0, nil, err
			}
			body = body[n:]
			chain = append(chain, doem.NodeAnnot{Kind: doem.AnnotUpd, At: at, Old: old})
		}
		x.upd[oem.NodeID(node)] = chain
	}

	count, n, err = decodeCount(body, "arc chain")
	if err != nil {
		return 0, nil, err
	}
	body = body[n:]
	for i := 0; i < count; i++ {
		a, n, err := decodeArc(body)
		if err != nil {
			return 0, nil, err
		}
		body = body[n:]
		clen, n, err := decodeCount(body, "arc annot")
		if err != nil {
			return 0, nil, err
		}
		body = body[n:]
		chain := make([]doem.ArcAnnot, 0, clen)
		for j := 0; j < clen; j++ {
			if len(body) == 0 || body[0] > 1 {
				return 0, nil, fmt.Errorf("%w: arc annot kind", ErrCorrupt)
			}
			kind := doem.AnnotAdd
			if body[0] == 1 {
				kind = doem.AnnotRem
			}
			body = body[1:]
			at, n, err := change.DecodeTime(body)
			if err != nil {
				return 0, nil, err
			}
			body = body[n:]
			chain = append(chain, doem.ArcAnnot{Kind: kind, At: at})
		}
		x.arcs[a] = chain
	}
	if len(body) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body))
	}
	return int(id), x, nil
}

// ---- STATE files ----

func encodeState(st *storeState) []byte {
	var body []byte
	body = change.AppendTime(body, st.lastSeal)
	body = binary.AppendUvarint(body, uint64(st.maxID))
	body = binary.AppendUvarint(body, uint64(st.segCount))

	parents := make([]oem.NodeID, 0, len(st.registry))
	for n := range st.registry {
		parents = append(parents, n)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	body = binary.AppendUvarint(body, uint64(len(parents)))
	for _, p := range parents {
		arcs := st.registry[p]
		body = binary.AppendUvarint(body, uint64(p))
		body = binary.AppendUvarint(body, uint64(len(arcs)))
		for _, a := range arcs {
			// The parent is implied; keep the registry order, which is the
			// monolithic OutAll insertion order.
			body = change.AppendString(body, a.Label)
			body = binary.AppendUvarint(body, uint64(a.Child))
		}
	}

	creNodes := make([]oem.NodeID, 0, len(st.cre))
	for n := range st.cre {
		creNodes = append(creNodes, n)
	}
	sort.Slice(creNodes, func(i, j int) bool { return creNodes[i] < creNodes[j] })
	body = binary.AppendUvarint(body, uint64(len(creNodes)))
	for _, n := range creNodes {
		body = binary.AppendUvarint(body, uint64(n))
		body = change.AppendTime(body, st.cre[n])
	}

	deadNodes := make([]oem.NodeID, 0, len(st.dead))
	for n := range st.dead {
		deadNodes = append(deadNodes, n)
	}
	sort.Slice(deadNodes, func(i, j int) bool { return deadNodes[i] < deadNodes[j] })
	body = binary.AppendUvarint(body, uint64(len(deadNodes)))
	for _, n := range deadNodes {
		body = binary.AppendUvarint(body, uint64(n))
		body = change.AppendValue(body, st.dead[n])
	}

	statusArcs := make([]oem.Arc, 0, len(st.sealedStatus))
	for a := range st.sealedStatus {
		statusArcs = append(statusArcs, a)
	}
	sortArcs(statusArcs)
	body = binary.AppendUvarint(body, uint64(len(statusArcs)))
	for _, a := range statusArcs {
		body = appendArc(body, a)
		if st.sealedStatus[a] == doem.AnnotAdd {
			body = append(body, 0)
		} else {
			body = append(body, 1)
		}
	}
	return sealFrame(stateMagic, body)
}

func decodeState(data []byte) (*storeState, error) {
	body, err := openFrame(stateMagic, data)
	if err != nil {
		return nil, err
	}
	st := &storeState{
		registry:     make(map[oem.NodeID][]oem.Arc),
		cre:          make(map[oem.NodeID]timestamp.Time),
		dead:         make(map[oem.NodeID]value.Value),
		sealedStatus: make(map[oem.Arc]doem.AnnotKind),
	}
	var n int
	if st.lastSeal, n, err = change.DecodeTime(body); err != nil {
		return nil, err
	}
	body = body[n:]
	maxID, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("%w: max id", ErrCorrupt)
	}
	st.maxID = oem.NodeID(maxID)
	body = body[n:]
	segCount, n, err := decodeCount(body, "segment")
	if err != nil {
		return nil, err
	}
	st.segCount = segCount
	body = body[n:]

	parents, n, err := decodeCount(body, "registry parent")
	if err != nil {
		return nil, err
	}
	body = body[n:]
	for i := 0; i < parents; i++ {
		p, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("%w: registry parent id", ErrCorrupt)
		}
		body = body[n:]
		count, n, err := decodeCount(body, "registry arc")
		if err != nil {
			return nil, err
		}
		body = body[n:]
		arcs := make([]oem.Arc, 0, count)
		for j := 0; j < count; j++ {
			label, n, err := change.DecodeString(body)
			if err != nil {
				return nil, err
			}
			body = body[n:]
			child, n := binary.Uvarint(body)
			if n <= 0 {
				return nil, fmt.Errorf("%w: registry child", ErrCorrupt)
			}
			body = body[n:]
			// Decoded labels are fresh allocations; canonicalize so the
			// registry shares backing strings with the active database.
			arcs = append(arcs, oem.Arc{Parent: oem.NodeID(p), Label: symbol.Canon(label), Child: oem.NodeID(child)})
		}
		st.registry[oem.NodeID(p)] = arcs
	}

	count, n, err := decodeCount(body, "cre")
	if err != nil {
		return nil, err
	}
	body = body[n:]
	for i := 0; i < count; i++ {
		node, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("%w: cre node", ErrCorrupt)
		}
		body = body[n:]
		at, n, err := change.DecodeTime(body)
		if err != nil {
			return nil, err
		}
		body = body[n:]
		st.cre[oem.NodeID(node)] = at
	}

	count, n, err = decodeCount(body, "dead")
	if err != nil {
		return nil, err
	}
	body = body[n:]
	for i := 0; i < count; i++ {
		node, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("%w: dead node", ErrCorrupt)
		}
		body = body[n:]
		v, n, err := change.DecodeValue(body)
		if err != nil {
			return nil, err
		}
		body = body[n:]
		st.dead[oem.NodeID(node)] = v
	}

	count, n, err = decodeCount(body, "sealed status")
	if err != nil {
		return nil, err
	}
	body = body[n:]
	for i := 0; i < count; i++ {
		a, n, err := decodeArc(body)
		if err != nil {
			return nil, err
		}
		body = body[n:]
		if len(body) == 0 || body[0] > 1 {
			return nil, fmt.Errorf("%w: sealed status kind", ErrCorrupt)
		}
		if body[0] == 0 {
			st.sealedStatus[a] = doem.AnnotAdd
		} else {
			st.sealedStatus[a] = doem.AnnotRem
		}
		body = body[1:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body))
	}
	return st, nil
}

func sortArcs(arcs []oem.Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Child < b.Child
	})
}

// ---- file I/O ----

// atomicWrite writes data to path via a temp file, fsync, rename, and
// directory fsync — the WAL checkpoint discipline.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // advisory on some platforms; best effort
	}
	d.Sync()
	d.Close()
	return nil
}

// segHeaderLen bounds the encoded size of a segment file's leading header
// fields (magic + id + start + end): 6 + 10 + 11 + 11 bytes, rounded up.
const segHeaderLen = 64

// decodeSegHeader parses just the leading header fields of a segment file
// from its first bytes, without CRC validation — Open uses it to enumerate
// sealed segments without reading their full ground truth. The trailing CRC
// still guards the body: loadSegData verifies it when the segment is first
// queried or re-indexed.
func decodeSegHeader(data []byte) (id int, start, end timestamp.Time, err error) {
	if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic) {
		return 0, start, end, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body := data[len(segMagic):]
	v, n := binary.Uvarint(body)
	if n <= 0 || v > maxDecodeCount {
		return 0, start, end, fmt.Errorf("%w: segment id", ErrCorrupt)
	}
	id = int(v)
	body = body[n:]
	if start, n, err = change.DecodeTime(body); err != nil {
		return 0, start, end, err
	}
	body = body[n:]
	if end, _, err = change.DecodeTime(body); err != nil {
		return 0, start, end, err
	}
	return id, start, end, nil
}

// readSegHeader reads only the first segHeaderLen bytes of a sealed
// segment's file, decompressing just the head of the cold-tier .gz form.
func readSegHeader(dir string, id int) ([]byte, error) {
	plain := filepath.Join(dir, segFileName(id))
	if f, err := os.Open(plain); err == nil {
		defer f.Close()
		buf := make([]byte, segHeaderLen)
		n, err := io.ReadFull(f, buf)
		if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
			return nil, fmt.Errorf("segment: %w", err)
		}
		return buf[:n], nil
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("segment: %w", err)
	}
	f, err := os.Open(plain + ".gz")
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip header: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	buf := make([]byte, segHeaderLen)
	n, err := io.ReadFull(zr, buf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, fmt.Errorf("%w: gzip body: %v", ErrCorrupt, err)
	}
	return buf[:n], nil
}

// readSegFile reads a sealed segment's ground truth, transparently
// decompressing the cold-tier .seg.gz form when the plain file is absent.
func readSegFile(dir string, id int) ([]byte, error) {
	plain := filepath.Join(dir, segFileName(id))
	if data, err := os.ReadFile(plain); err == nil {
		return data, nil
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("segment: %w", err)
	}
	f, err := os.Open(plain + ".gz")
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%w: gzip header: %v", ErrCorrupt, err)
	}
	defer zr.Close()
	data, err := io.ReadAll(io.LimitReader(zr, 1<<31))
	if err != nil {
		return nil, fmt.Errorf("%w: gzip body: %v", ErrCorrupt, err)
	}
	return data, nil
}

// compressSegFile replaces seg-N.seg with seg-N.seg.gz (cold demotion). The
// compressed file is fully synced before the plain file is removed, so a
// crash mid-demotion leaves at least one intact copy.
func compressSegFile(dir string, id int) error {
	plain := filepath.Join(dir, segFileName(id))
	data, err := os.ReadFile(plain)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // already compressed
		}
		return fmt.Errorf("segment: %w", err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if err := atomicWrite(plain+".gz", buf.Bytes()); err != nil {
		return err
	}
	if err := os.Remove(plain); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("segment: %w", err)
	}
	return syncDir(dir)
}
