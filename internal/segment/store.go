// Package segment implements time-partitioned storage for DOEM change
// histories: a mutable active segment (an in-memory DOEM database backed by
// a write-ahead-log tail) plus a sequence of sealed segments — immutable,
// time-bounded files each holding a checkpointed snapshot at its seal
// boundary, the encoded change sets of its interval, and a persistent
// annotation index. Queries select segments by their time bounds, so a
// historical query opens only the segment(s) it overlaps and restart
// recovery replays only the active tail; this is the paper's Section 6.1
// space-for-time trade applied per interval instead of to the whole
// history. Segments untouched for a while demote to a cold tier (index
// dropped, ground truth compressed) and rebuild on demand.
package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/symbol"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wal"
)

// Policy controls when the active segment seals and when sealed segments
// demote to the cold tier. The zero value seals only on explicit Seal calls
// and never demotes.
type Policy struct {
	// SealAnnotations seals the active segment once it has accumulated at
	// least this many annotations (0 = no count-based sealing).
	SealAnnotations int
	// SealAge seals the active segment once its recorded history spans more
	// than this much history time (0 = no age-based sealing). Age is
	// measured on history timestamps, not wall-clock time, so replayed and
	// simulated histories seal deterministically.
	SealAge time.Duration
	// ColdAfter demotes a sealed segment to the cold tier once it has gone
	// unused for this many graph operations (0 = never). Cold demotion
	// drops the segment's index file and compresses its ground truth.
	ColdAfter uint64
	// MaxHot bounds how many parsed segment indexes stay in RAM; the least
	// recently used beyond the bound are released (0 = unlimited).
	MaxHot int
}

// OpenStats describes what Open had to replay to recover the active
// segment — the restart cost the sealed tiers bound.
type OpenStats struct {
	Records  int           // WAL records replayed
	Segments int           // sealed segments found (not replayed)
	Duration time.Duration // total open time, including recovery
}

// handle is the in-memory descriptor of one sealed segment. The parsed
// index is loaded lazily and may be released (tier demotion); idx, lastUse
// and cold are guarded by Store.tierMu because queries load indexes while
// holding only the store's reader-side lock.
type handle struct {
	id         int
	start, end timestamp.Time
	idx        *segIndex
	lastUse    uint64
	cold       bool
}

// Store is one history's segmented storage. Mutators (Apply, Seal,
// Truncate, Close) follow the same contract as *doem.Database: they must
// exclude concurrent readers of the store's Graph (lore.Store and qss do
// this with per-name reader/writer locks). The Graph read path is safe for
// any number of concurrent readers; its internal index cache has its own
// lock.
type Store struct {
	dir string
	pol Policy

	tail   *wal.Log
	active *doem.Database
	// lastSeal is the boundary of the newest sealed segment (NegInf when
	// none): the active segment covers (lastSeal, +inf).
	lastSeal timestamp.Time

	// registry is the global arc relation: every arc ever recorded, per
	// parent, in first-insertion order — exactly the monolithic OutAll
	// order (a re-added arc keeps its original position). member is its
	// membership set.
	registry map[oem.NodeID][]oem.Arc
	member   map[oem.Arc]bool
	// cre and dead summarize annotations sealed away from the active
	// segment: creation times, and final values of nodes deleted by
	// unreachability during a sealed interval.
	cre  map[oem.NodeID]timestamp.Time
	dead map[oem.NodeID]value.Value
	// sealedStatus holds, per arc annotated in sealed history, the kind of
	// its most recent sealed annotation — the arc's status at lastSeal.
	// Arcs absent here and unannotated in the active segment have no
	// annotations at all (vacuously live, the monolithic convention).
	sealedStatus map[oem.Arc]doem.AnnotKind
	// maxID is the id high-water mark across the whole history, including
	// nodes whose deletion has been sealed away (ids are never reused).
	maxID oem.NodeID

	segs []*handle

	// activeAnnots counts the active segment's annotations (one per
	// applied operation); firstActive is its earliest step, for SealAge.
	activeAnnots int
	firstActive  timestamp.Time

	// ticks counts graph operations; the tier policy measures disuse in
	// ticks. tierMu guards handle index loading/release on the read path.
	ticks  atomic.Uint64
	tierMu sync.Mutex

	// statsC caches the planner-statistics summary (see stats.go).
	statsC *statsCache

	stats OpenStats
}

const tailDirName = "wal"

var segFileRe = regexp.MustCompile(`^seg-(\d{6})\.seg(\.gz)?$`)

// Create initializes a fresh segmented store in dir, seeded with d (which
// may already carry history; it becomes the active segment). dir must not
// already hold a store. opt may be nil for default log options; pol may be
// nil for the zero policy.
func Create(dir string, d *doem.Database, opt *wal.Options, pol *Policy) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, stateName)); err == nil {
		return nil, fmt.Errorf("segment: %s already holds a store", dir)
	}
	if _, err := os.Stat(filepath.Join(dir, tailDirName)); err == nil {
		return nil, fmt.Errorf("segment: %s already holds a store", dir)
	}
	l, err := wal.Open(filepath.Join(dir, tailDirName), opt)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if err := l.CheckpointDOEM(d); err != nil {
		l.Close()
		return nil, fmt.Errorf("segment: %w", err)
	}
	s := newStore(dir, pol)
	s.tail = l
	s.adoptActive(d)
	s.seedRegistryFromActive()
	s.updateGauges()
	return s, nil
}

// Open loads (or creates) the segmented store in dir, recovering from any
// crash: a torn newest segment file is quarantined, an interrupted seal is
// completed idempotently, and the active segment is rebuilt from the tail
// checkpoint plus its records — never by replaying sealed history.
func Open(dir string, opt *wal.Options, pol *Policy) (*Store, error) {
	begin := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	s := newStore(dir, pol)
	removeTempFiles(dir)

	st, err := s.loadState()
	if err != nil {
		return nil, err
	}
	if err := s.scanSegments(); err != nil {
		return nil, err
	}
	if st == nil && len(s.segs) > 0 {
		// The STATE summary is derived data; rebuild it by replaying the
		// sealed ground truth (slow, but only after external damage).
		st, err = s.rebuildState()
		if err != nil {
			return nil, err
		}
	}
	if st != nil {
		s.registry, s.cre, s.dead, s.maxID = st.registry, st.cre, st.dead, st.maxID
		s.sealedStatus = st.sealedStatus
		for _, arcs := range s.registry {
			for _, a := range arcs {
				s.member[a] = true
			}
		}
	}

	l, err := wal.Open(filepath.Join(dir, tailDirName), opt)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	s.tail = l
	d, records, err := s.replayTail()
	if err != nil {
		l.Close()
		return nil, err
	}
	s.adoptActive(d)
	if st == nil {
		// Never sealed: the active segment is the whole history and its
		// arc relation is the registry.
		s.seedRegistryFromActive()
	}
	if len(s.segs) > 0 {
		s.lastSeal = s.segs[len(s.segs)-1].end
	}

	// An interrupted seal left its segment file on disk but not the tail
	// checkpoint: the replayed active still contains the sealed steps.
	// Complete the seal — every step is an idempotent atomic replace.
	if n := len(s.segs); n > 0 && len(d.Steps()) > 0 && !d.Steps()[0].After(s.segs[n-1].end) {
		last := s.segs[n-1]
		if !d.LastStep().Equal(last.end) {
			l.Close()
			return nil, fmt.Errorf("%w: tail ends at %s but newest segment seals at %s",
				ErrCorrupt, d.LastStep(), last.end)
		}
		s.segs = s.segs[:n-1]
		if n > 1 {
			s.lastSeal = s.segs[n-2].end
		} else {
			s.lastSeal = timestamp.NegInf
		}
		if err := s.seal(); err != nil {
			l.Close()
			return nil, fmt.Errorf("segment: completing interrupted seal: %w", err)
		}
	}

	// If the STATE summary claims a later seal than the surviving segment
	// files show, the newest segment was quarantined. That is recoverable
	// as long as the tail still holds the interval's steps (they simply
	// remain active); if the tail was checkpointed past the damaged
	// segment, the interval is genuinely gone — refuse to open.
	if st != nil && st.lastSeal.After(s.lastSeal) {
		steps := d.Steps()
		if len(steps) == 0 || steps[0].After(st.lastSeal) {
			l.Close()
			return nil, fmt.Errorf("%w: interval (%s, %s] lost: segment damaged after the tail was checkpointed past it",
				ErrCorrupt, s.lastSeal, st.lastSeal)
		}
	}

	s.stats = OpenStats{Records: records, Segments: len(s.segs), Duration: time.Since(begin)}
	mOpenNs.Observe(int64(s.stats.Duration))
	s.updateGauges()
	return s, nil
}

func newStore(dir string, pol *Policy) *Store {
	s := &Store{
		dir:          dir,
		lastSeal:     timestamp.NegInf,
		registry:     make(map[oem.NodeID][]oem.Arc),
		member:       make(map[oem.Arc]bool),
		cre:          make(map[oem.NodeID]timestamp.Time),
		dead:         make(map[oem.NodeID]value.Value),
		sealedStatus: make(map[oem.Arc]doem.AnnotKind),
		statsC:       &statsCache{},
	}
	if pol != nil {
		s.pol = *pol
	}
	return s
}

func (s *Store) adoptActive(d *doem.Database) {
	s.active = d
	s.activeAnnots = d.NumAnnotations()
	s.firstActive = timestamp.PosInf
	if steps := d.Steps(); len(steps) > 0 {
		s.firstActive = steps[0]
	}
	if m := d.MaxID(); m > s.maxID {
		s.maxID = m
	}
}

// seedRegistryFromActive initializes the registry from the active
// segment's full arc relation — valid only while nothing has been sealed,
// when the active OutAll order is the monolithic order.
func (s *Store) seedRegistryFromActive() {
	s.registry = make(map[oem.NodeID][]oem.Arc)
	s.member = make(map[oem.Arc]bool)
	for _, n := range s.active.AllNodeIDs() {
		arcs := s.active.OutAll(n)
		if len(arcs) == 0 {
			continue
		}
		s.registry[n] = append([]oem.Arc(nil), arcs...)
		for _, a := range arcs {
			s.member[a] = true
		}
	}
}

// mergeOps folds one applied change set into the store-level summaries:
// new arcs append to the registry in canonical application order (the
// order doem.Apply appends them to OutAll), created ids raise the
// high-water mark. Call only after the set was applied successfully.
func (s *Store) mergeOps(ops change.Set) {
	for _, op := range ops.Canonical() {
		switch o := op.(type) {
		case change.AddArc:
			// Canonical labels keep the registry sharing backing strings
			// with the active doem database and the oem snapshots.
			a := oem.Arc{Parent: o.Parent, Label: symbol.Canon(o.Label), Child: o.Child}
			if !s.member[a] {
				s.member[a] = true
				s.registry[o.Parent] = append(s.registry[o.Parent], a)
			}
		case change.CreNode:
			if o.Node > s.maxID {
				s.maxID = o.Node
			}
		}
	}
}

// replayTail rebuilds the active segment from the tail checkpoint plus its
// records, folding replayed sets into the store summaries as it goes.
func (s *Store) replayTail() (*doem.Database, int, error) {
	var d *doem.Database
	if payload, _, ok := s.tail.LastCheckpoint(); ok {
		var err error
		if d, err = doem.Unmarshal(payload); err != nil {
			return nil, 0, fmt.Errorf("segment: tail checkpoint: %w", err)
		}
	} else {
		d = doem.New(oem.New())
	}
	records := 0
	err := s.tail.ReplaySteps(func(seq uint64, step change.Step) error {
		if err := d.Apply(step.At, step.Ops); err != nil {
			return fmt.Errorf("segment: replaying tail record %d: %w", seq, err)
		}
		s.mergeOps(step.Ops)
		records++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return d, records, nil
}

// Apply extends the history by one timestamped change set: it mutates the
// active segment, appends the delta to the tail log, and seals when the
// policy says so.
func (s *Store) Apply(t timestamp.Time, ops change.Set) error {
	// The active segment starts empty after a seal, so doem.Apply's own
	// monotonicity check cannot see sealed history; enforce it here so the
	// invariant "every annotation in the active segment is after lastSeal"
	// holds (segment selection depends on it).
	if !t.After(s.lastSeal) {
		return fmt.Errorf("segment: step at %s is not after the seal boundary %s", t, s.lastSeal)
	}
	if err := s.active.Apply(t, ops); err != nil {
		return err
	}
	s.mergeOps(ops)
	s.activeAnnots += len(ops)
	if s.firstActive.Equal(timestamp.PosInf) {
		s.firstActive = t
	}
	if _, err := s.tail.AppendStep(t, ops); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if s.shouldSeal(t) {
		if err := s.seal(); err != nil {
			return err
		}
	}
	s.maintain()
	s.updateGauges()
	return nil
}

func (s *Store) shouldSeal(t timestamp.Time) bool {
	if s.pol.SealAnnotations > 0 && s.activeAnnots >= s.pol.SealAnnotations {
		return true
	}
	if s.pol.SealAge > 0 && s.firstActive.IsFinite() && t.IsFinite() &&
		t.Sub(s.firstActive) >= s.pol.SealAge {
		return true
	}
	return false
}

// Seal closes the active segment at its last step: its interval becomes an
// immutable sealed segment (ground truth + index on disk), the store
// summaries absorb its annotations, the tail log is checkpointed with the
// truncated successor, and a fresh active segment starts at the boundary.
// Sealing with no recorded steps is a no-op.
func (s *Store) Seal() error {
	if !s.active.LastStep().After(s.lastSeal) {
		return nil
	}
	if err := s.seal(); err != nil {
		return err
	}
	s.maintain()
	s.updateGauges()
	return nil
}

// seal is the crash-ordered seal sequence. Each write is an atomic
// replace, ordered so any crash point recovers: before the tail checkpoint
// lands, the tail still holds the full pre-seal active segment, and Open
// re-runs this sequence to identical bytes.
func (s *Store) seal() error {
	start := obs.Now()
	bound := s.active.LastStep()
	id := len(s.segs) + 1
	sd := &segData{
		id:    id,
		start: s.lastSeal,
		end:   bound,
		base:  s.active.Original(),
		steps: s.active.ExtractHistory(),
	}
	sd.orphans = s.orphanArcs(sd.base)
	idx := buildIndex(s.active, sd.base)
	for _, a := range sd.orphans {
		idx.liveAtStart[a] = true
	}

	data, err := encodeSegData(sd)
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(s.dir, segFileName(id)), data); err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(s.dir, idxFileName(id)), encodeSegIndex(id, sd.start, bound, idx)); err != nil {
		return err
	}

	// Absorb the active segment's annotations into the store summaries
	// (idempotent — a completed re-run merges the same facts).
	for _, n := range s.active.AllNodeIDs() {
		for _, a := range s.active.NodeAnnots(n) {
			if a.Kind == doem.AnnotCre {
				s.cre[n] = a.At
			}
		}
		if _, ok := s.active.Current().Value(n); !ok {
			if v, ok := s.active.Value(n); ok {
				s.dead[n] = v
			}
		}
		for _, arc := range s.active.OutAll(n) {
			if chain := s.active.ArcAnnots(arc); len(chain) > 0 {
				s.sealedStatus[arc] = chain[len(chain)-1].Kind
			}
		}
	}
	if m := s.active.MaxID(); m > s.maxID {
		s.maxID = m
	}
	s.lastSeal = bound
	s.segs = append(s.segs, &handle{id: id, start: sd.start, end: bound, idx: idx, lastUse: s.ticks.Load()})

	if err := s.writeState(); err != nil {
		return err
	}
	next := doem.New(s.active.Current())
	if err := s.tail.CheckpointDOEM(next); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	s.adoptActive(next)
	mSeals.Inc()
	mSealNs.ObserveSince(start)
	return nil
}

// orphanArcs returns the arcs frozen live at the seal boundary by node
// garbage collection: their most recent annotation anywhere is an add, yet
// the boundary snapshot omits them because GC removed a deleted endpoint.
// The monolithic ArcLiveAt keeps such an arc live at every later instant,
// so the segment being sealed must carry it in its live-at-start set. An
// arc annotated inside the sealing interval is never an orphan (annotating
// requires live endpoints), which keeps this computation byte-identical
// when a crash-recovery re-run executes it after the summary merge has
// already landed in STATE.
func (s *Store) orphanArcs(base *oem.Database) []oem.Arc {
	var orphans []oem.Arc
	for a, kind := range s.sealedStatus {
		if kind != doem.AnnotAdd || base.HasArc(a.Parent, a.Label, a.Child) || len(s.active.ArcAnnots(a)) > 0 {
			continue
		}
		orphans = append(orphans, a)
	}
	sortArcs(orphans)
	return orphans
}

func (s *Store) writeState() error {
	st := &storeState{
		lastSeal:     s.lastSeal,
		maxID:        s.maxID,
		segCount:     len(s.segs),
		registry:     s.registry,
		cre:          s.cre,
		dead:         s.dead,
		sealedStatus: s.sealedStatus,
	}
	return atomicWrite(filepath.Join(s.dir, stateName), encodeState(st))
}

func (s *Store) loadState() (*storeState, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, stateName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	st, err := decodeState(data)
	if err != nil {
		// Derived data: fall back to a rebuild rather than refusing to open.
		return nil, nil
	}
	return st, nil
}

// scanSegments inventories the sealed segment files, quarantining a torn
// newest segment (the only one a crash can tear — older files are never
// rewritten) and requiring a contiguous id sequence.
func (s *Store) scanSegments() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	byID := make(map[int]bool)
	coldByID := make(map[int]bool)
	for _, ent := range entries {
		m := segFileRe.FindStringSubmatch(ent.Name())
		if m == nil {
			continue
		}
		id, _ := strconv.Atoi(m[1])
		if m[2] == ".gz" {
			if !byID[id] {
				coldByID[id] = true
			}
			byID[id] = true
		} else {
			byID[id] = true
			delete(coldByID, id)
		}
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i+1 {
			return fmt.Errorf("%w: segment files not contiguous (missing seg %d)", ErrCorrupt, i+1)
		}
	}
	for len(ids) > 0 {
		id := ids[len(ids)-1]
		raw, err := readSegFile(s.dir, id)
		if err != nil {
			if quarantineSegment(s.dir, id) {
				ids = ids[:len(ids)-1]
				continue
			}
			return err
		}
		sd, err := decodeSegData(raw)
		if err != nil || sd.id != id {
			if quarantineSegment(s.dir, id) {
				ids = ids[:len(ids)-1]
				continue
			}
			return fmt.Errorf("%w: segment %d", ErrCorrupt, id)
		}
		// The newest is intact. Older files are immutable and were fully
		// CRC-validated when written, so enumerate them from their headers
		// alone — Open stays proportional to the active tail, not the
		// sealed history. Their CRCs are still checked when loadSegData
		// reads them on first query or index rebuild.
		break
	}
	for _, id := range ids {
		head, err := readSegHeader(s.dir, id)
		if err != nil {
			return err
		}
		hid, start, end, err := decodeSegHeader(head)
		if err != nil || hid != id {
			return fmt.Errorf("%w: segment %d header", ErrCorrupt, id)
		}
		s.segs = append(s.segs, &handle{id: id, start: start, end: end, cold: coldByID[id]})
	}
	return nil
}

// quarantineSegment renames a torn segment's files out of the way so the
// open proceeds from the recoverable prefix (the tail still holds the
// interval's steps when the seal never completed). It reports whether
// anything was moved.
func quarantineSegment(dir string, id int) bool {
	moved := false
	for _, name := range []string{segFileName(id), segFileName(id) + ".gz", idxFileName(id)} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			if os.Rename(p, p+".corrupt") == nil {
				moved = true
			}
		}
	}
	if moved {
		mQuarantined.Inc()
		syncDir(dir)
	}
	return moved
}

// rebuildState reconstructs the STATE summary by replaying every sealed
// segment's ground truth in order — the slow path, taken only when the
// summary file was lost or damaged.
func (s *Store) rebuildState() (*storeState, error) {
	st := &storeState{
		lastSeal:     timestamp.NegInf,
		registry:     make(map[oem.NodeID][]oem.Arc),
		cre:          make(map[oem.NodeID]timestamp.Time),
		dead:         make(map[oem.NodeID]value.Value),
		sealedStatus: make(map[oem.Arc]doem.AnnotKind),
	}
	member := make(map[oem.Arc]bool)
	for _, h := range s.segs {
		raw, err := readSegFile(s.dir, h.id)
		if err != nil {
			return nil, err
		}
		sd, err := decodeSegData(raw)
		if err != nil {
			return nil, err
		}
		if h.id == 1 {
			for _, n := range sd.base.Nodes() {
				for _, a := range sd.base.Out(n) {
					if !member[a] {
						member[a] = true
						st.registry[a.Parent] = append(st.registry[a.Parent], a)
					}
				}
			}
		}
		d, err := doem.FromHistory(sd.base, sd.steps)
		if err != nil {
			return nil, fmt.Errorf("segment: rebuilding state from seg %d: %w", h.id, err)
		}
		for _, step := range sd.steps {
			for _, op := range step.Ops.Canonical() {
				switch o := op.(type) {
				case change.AddArc:
					a := oem.Arc{Parent: o.Parent, Label: symbol.Canon(o.Label), Child: o.Child}
					if !member[a] {
						member[a] = true
						st.registry[o.Parent] = append(st.registry[o.Parent], a)
					}
				case change.CreNode:
					if o.Node > st.maxID {
						st.maxID = o.Node
					}
				}
			}
		}
		for _, n := range d.AllNodeIDs() {
			for _, a := range d.NodeAnnots(n) {
				if a.Kind == doem.AnnotCre {
					st.cre[n] = a.At
				}
			}
			if _, ok := d.Current().Value(n); !ok {
				if v, ok := d.Value(n); ok {
					st.dead[n] = v
				}
			}
			if n > st.maxID {
				st.maxID = n
			}
			for _, arc := range d.OutAll(n) {
				if chain := d.ArcAnnots(arc); len(chain) > 0 {
					st.sealedStatus[arc] = chain[len(chain)-1].Kind
				}
			}
		}
		st.lastSeal = sd.end
	}
	st.segCount = len(s.segs)
	return st, nil
}

// buildIndex extracts the sealed interval's annotation index from the
// pre-seal active segment: its upd and arc chains, plus the complete set
// of arcs live at the interval's start (the base snapshot's arcs).
func buildIndex(d *doem.Database, base *oem.Database) *segIndex {
	x := &segIndex{
		upd:         make(map[oem.NodeID][]doem.NodeAnnot),
		arcs:        make(map[oem.Arc][]doem.ArcAnnot),
		liveAtStart: make(map[oem.Arc]bool),
	}
	for _, n := range base.Nodes() {
		for _, a := range base.Out(n) {
			x.liveAtStart[a] = true
		}
	}
	for _, n := range d.AllNodeIDs() {
		var ups []doem.NodeAnnot
		for _, a := range d.NodeAnnots(n) {
			if a.Kind == doem.AnnotUpd {
				ups = append(ups, a)
			}
		}
		if len(ups) > 0 {
			x.upd[n] = ups
		}
		for _, arc := range d.OutAll(n) {
			if chain := d.ArcAnnots(arc); len(chain) > 0 {
				x.arcs[arc] = append([]doem.ArcAnnot(nil), chain...)
			}
		}
	}
	return x
}

// Truncate collapses all history up to and including t into the active
// segment's base snapshot, deleting every sealed segment — the paper's
// full space-for-accuracy trade. t must not fall strictly inside sealed
// history: sealed segments are immutable, so partial truncation below the
// last seal boundary is refused.
func (s *Store) Truncate(t timestamp.Time) error {
	if t.Before(s.lastSeal) {
		return fmt.Errorf("segment: cannot truncate at %s inside sealed history (last seal %s)", t, s.lastSeal)
	}
	// Rebuild exactly as the monolithic database would: the snapshot at t
	// with arcs in global first-insertion (registry) order — the active
	// segment's own order can differ where an arc was removed in a sealed
	// interval and re-added since — plus the steps after t.
	base := s.globalSnapshotAt(t)
	var after change.History
	for _, step := range s.active.ExtractHistory() {
		if step.At.After(t) {
			after = append(after, step)
		}
	}
	td, err := doem.FromHistory(base, after)
	if err != nil {
		return err
	}
	for _, h := range s.segs {
		for _, name := range []string{segFileName(h.id), segFileName(h.id) + ".gz", idxFileName(h.id)} {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("segment: %w", err)
			}
		}
	}
	syncDir(s.dir)
	s.segs = nil
	s.lastSeal = timestamp.NegInf
	s.cre = make(map[oem.NodeID]timestamp.Time)
	s.dead = make(map[oem.NodeID]value.Value)
	s.sealedStatus = make(map[oem.Arc]doem.AnnotKind)
	s.adoptActive(td)
	s.seedRegistryFromActive()
	if err := s.writeState(); err != nil {
		return err
	}
	if err := s.tail.CheckpointDOEM(td); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	s.updateGauges()
	return nil
}

// Maintain applies the tier policy immediately; Apply and Seal run it as
// part of their own work.
func (s *Store) Maintain() {
	s.maintain()
	s.updateGauges()
}

// maintain applies the tier policy: sealed segments unused for
// Policy.ColdAfter graph operations demote to the cold tier, and parsed
// indexes beyond Policy.MaxHot are released, least recently used first.
func (s *Store) maintain() {
	s.tierMu.Lock()
	defer s.tierMu.Unlock()
	tick := s.ticks.Load()
	if s.pol.ColdAfter > 0 {
		for _, h := range s.segs {
			if !h.cold && tick-h.lastUse > s.pol.ColdAfter {
				h.idx = nil
				os.Remove(filepath.Join(s.dir, idxFileName(h.id)))
				if err := compressSegFile(s.dir, h.id); err == nil {
					h.cold = true
					mDemotions.Inc()
				}
			}
		}
	}
	if s.pol.MaxHot > 0 {
		loaded := make([]*handle, 0, len(s.segs))
		for _, h := range s.segs {
			if h.idx != nil {
				loaded = append(loaded, h)
			}
		}
		if len(loaded) > s.pol.MaxHot {
			sort.Slice(loaded, func(i, j int) bool { return loaded[i].lastUse < loaded[j].lastUse })
			for _, h := range loaded[:len(loaded)-s.pol.MaxHot] {
				h.idx = nil
			}
		}
	}
}

// index returns a sealed segment's parsed annotation index, loading it
// from its index file or rebuilding it from ground truth (cold tier). Safe
// under concurrent readers.
func (s *Store) index(h *handle) (*segIndex, error) {
	s.tierMu.Lock()
	defer s.tierMu.Unlock()
	h.lastUse = s.ticks.Load()
	if h.idx != nil {
		return h.idx, nil
	}
	start := obs.Now()
	if data, err := os.ReadFile(filepath.Join(s.dir, idxFileName(h.id))); err == nil {
		if id, x, err := decodeSegIndex(data); err == nil && id == h.id {
			h.idx = x
			mIdxLoads.Inc()
			mIdxLoadNs.ObserveSince(start)
			return x, nil
		}
	}
	// No (valid) index file: rebuild from the segment's ground truth and
	// re-persist it — cold-tier promotion.
	raw, err := readSegFile(s.dir, h.id)
	if err != nil {
		return nil, err
	}
	sd, err := decodeSegData(raw)
	if err != nil {
		return nil, err
	}
	d, err := doem.FromHistory(sd.base, sd.steps)
	if err != nil {
		return nil, fmt.Errorf("segment: rebuilding index for seg %d: %w", h.id, err)
	}
	x := buildIndex(d, sd.base)
	for _, a := range sd.orphans {
		x.liveAtStart[a] = true
	}
	atomicWrite(filepath.Join(s.dir, idxFileName(h.id)), encodeSegIndex(h.id, h.start, h.end, x))
	wasCold := h.cold
	h.idx = x
	h.cold = false
	mIdxRebuilds.Inc()
	mIdxLoadNs.ObserveSince(start)
	if wasCold {
		mPromotions.Inc()
	}
	return x, nil
}

// loadSegData reads and decodes one sealed segment's ground truth.
func (s *Store) loadSegData(h *handle) (*segData, error) {
	raw, err := readSegFile(s.dir, h.id)
	if err != nil {
		return nil, err
	}
	return decodeSegData(raw)
}

// covering returns the index of the sealed segment whose interval
// (start, end] contains t, or -1 when t falls in the active segment.
func (s *Store) covering(t timestamp.Time) int {
	if t.After(s.lastSeal) {
		return -1
	}
	return sort.Search(len(s.segs), func(i int) bool { return !s.segs[i].end.Before(t) })
}

func (s *Store) touch() { s.ticks.Add(1) }

// Active returns the live active-segment database: the current snapshot
// plus the annotations recorded since the last seal. Mutate only through
// Apply.
func (s *Store) Active() *doem.Database { return s.active }

// LastSeal returns the newest seal boundary (NegInf when nothing has been
// sealed).
func (s *Store) LastSeal() timestamp.Time { return s.lastSeal }

// MaxID returns the id high-water mark across the whole history, including
// sealed-away deletions; id allocators must stay above it.
func (s *Store) MaxID() oem.NodeID {
	if m := s.active.MaxID(); m > s.maxID {
		return m
	}
	return s.maxID
}

// Segments returns the sealed segment count.
func (s *Store) Segments() int { return len(s.segs) }

// SealTimes returns each sealed segment's end boundary, oldest first — the
// instants at which the history is checkpointed on disk.
func (s *Store) SealTimes() []timestamp.Time {
	out := make([]timestamp.Time, len(s.segs))
	for i, h := range s.segs {
		out[i] = h.end
	}
	return out
}

// Tiers reports how many sealed segments currently sit in each tier: hot
// (index parsed in RAM), warm (index on disk), cold (compressed ground
// truth only).
func (s *Store) Tiers() (hot, warm, cold int) {
	s.tierMu.Lock()
	defer s.tierMu.Unlock()
	for _, h := range s.segs {
		switch {
		case h.idx != nil:
			hot++
		case h.cold:
			cold++
		default:
			warm++
		}
	}
	return
}

// Stats returns what the last Open had to do.
func (s *Store) Stats() OpenStats { return s.stats }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the tail log. The store must not be used afterwards.
func (s *Store) Close() error {
	if s.tail == nil {
		return nil
	}
	err := s.tail.Close()
	s.tail = nil
	return err
}

func (s *Store) updateGauges() {
	gSegments.Set(int64(len(s.segs)))
	hot, _, cold := s.Tiers()
	gHotSegments.Set(int64(hot))
	gColdSegments.Set(int64(cold))
	gActiveAnnots.Set(int64(s.activeAnnots))
}

func removeTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ".tmp" {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}
