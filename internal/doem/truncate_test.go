package doem

import (
	"testing"

	"repro/internal/timestamp"
)

func TestTruncateCollapsesOldHistory(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	// Truncate between t2 and t3: the price update and Hakata creation
	// collapse into the base; only the parking removal survives.
	cut := timestamp.MustParse("6Jan97")
	td, err := d.Truncate(cut)
	if err != nil {
		t.Fatal(err)
	}
	if got := td.NumAnnotations(); got != 1 {
		t.Errorf("annotations after truncate = %d, want 1 (the rem)", got)
	}
	if len(td.Steps()) != 1 || !td.Steps()[0].Equal(f.t3) {
		t.Errorf("steps after truncate = %v", td.Steps())
	}
	// The current snapshot is unchanged.
	if !td.Current().Equal(d.Current()) {
		t.Error("truncation changed the current snapshot")
	}
	// Snapshots after the cut still agree with the original database.
	for _, ts := range []string{"6Jan97", "7Jan97", "8Jan97", "9Jan97"} {
		at := timestamp.MustParse(ts)
		if !td.SnapshotAt(at).Equal(d.SnapshotAt(at)) {
			t.Errorf("snapshot at %s differs after truncation", ts)
		}
	}
	// Snapshots at or before the cut collapse to the state at the cut —
	// the documented accuracy loss.
	early := td.SnapshotAt(timestamp.MustParse("31Dec96"))
	if !early.Equal(d.SnapshotAt(cut)) {
		t.Error("pre-cut snapshot should collapse to the cut state")
	}
	// The truncated database remains feasible and queryable.
	if !td.Feasible() {
		t.Error("truncated database infeasible")
	}
}

func TestTruncateAtEndDropsEverything(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	td, err := d.Truncate(timestamp.PosInf)
	if err != nil {
		t.Fatal(err)
	}
	if td.NumAnnotations() != 0 || len(td.Steps()) != 0 {
		t.Errorf("annotations=%d steps=%d, want 0/0", td.NumAnnotations(), len(td.Steps()))
	}
	if !td.Current().Equal(d.Current()) {
		t.Error("current snapshot changed")
	}
}

func TestTruncateBeforeStartIsIdentity(t *testing.T) {
	f := newFixture(t)
	d := f.doem(t)
	td, err := d.Truncate(timestamp.MustParse("1Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	if !td.Equal(d) {
		t.Error("truncating before the first step should preserve everything")
	}
}

func TestTruncateRandomHistories(t *testing.T) {
	for seed := int64(300); seed < 310; seed++ {
		db, h := randomHistory(seed, 6, 5)
		d, err := FromHistory(db, h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(h) < 3 {
			continue
		}
		cut := h[len(h)/2].At
		td, err := d.Truncate(cut)
		if err != nil {
			t.Fatalf("seed %d: truncate: %v", seed, err)
		}
		if !td.Current().Equal(d.Current()) {
			t.Errorf("seed %d: current snapshot changed", seed)
		}
		for _, step := range h {
			if step.At.After(cut) {
				if !td.SnapshotAt(step.At).Equal(d.SnapshotAt(step.At)) {
					t.Errorf("seed %d: post-cut snapshot at %s differs", seed, step.At)
				}
			}
		}
		if !td.Feasible() {
			t.Errorf("seed %d: truncated database infeasible", seed)
		}
		if td.NumAnnotations() > d.NumAnnotations() {
			t.Errorf("seed %d: truncation grew the database", seed)
		}
	}
}
