// Package oemio serializes OEM databases to a cycle-safe JSON wire format.
// The format is flat — a node table and an arc table — so arbitrary graphs
// (shared subobjects, cycles) round-trip exactly, preserving node ids and
// arc insertion order. It is the on-disk format of the lore store and the
// payload format of the QSS client/server protocol.
package oemio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// wireDB is the serialized form of an OEM database.
type wireDB struct {
	Root  uint64     `json:"root"`
	Nodes []wireNode `json:"nodes"`
	Arcs  []wireArc  `json:"arcs"`
}

type wireNode struct {
	ID    uint64 `json:"id"`
	Kind  string `json:"kind"`
	Value any    `json:"value,omitempty"`
}

type wireArc struct {
	Parent uint64 `json:"p"`
	Label  string `json:"l"`
	Child  uint64 `json:"c"`
}

// EncodeValue converts a value to its wire representation.
func EncodeValue(v value.Value) (kind string, payload any) {
	switch v.Kind() {
	case value.KindComplex:
		return "complex", nil
	case value.KindNull:
		return "null", nil
	case value.KindBool:
		return "bool", v.AsBool()
	case value.KindInt:
		return "int", v.AsInt()
	case value.KindReal:
		return "real", v.AsReal()
	case value.KindString:
		return "string", v.AsString()
	case value.KindTime:
		return "time", v.AsTime().String()
	default:
		return "null", nil
	}
}

// DecodeValue converts a wire representation back to a value.
func DecodeValue(kind string, payload any) (value.Value, error) {
	switch kind {
	case "complex":
		return value.Complex(), nil
	case "null":
		return value.Null(), nil
	case "bool":
		b, ok := payload.(bool)
		if !ok {
			return value.Value{}, fmt.Errorf("oemio: bool value has payload %T", payload)
		}
		return value.Bool(b), nil
	case "int":
		switch p := payload.(type) {
		case float64:
			return value.Int(int64(p)), nil
		case json.Number:
			i, err := p.Int64()
			if err != nil {
				return value.Value{}, fmt.Errorf("oemio: int value: %v", err)
			}
			return value.Int(i), nil
		case int64:
			return value.Int(p), nil
		default:
			return value.Value{}, fmt.Errorf("oemio: int value has payload %T", payload)
		}
	case "real":
		switch p := payload.(type) {
		case float64:
			return value.Real(p), nil
		case json.Number:
			r, err := p.Float64()
			if err != nil {
				return value.Value{}, fmt.Errorf("oemio: real value: %v", err)
			}
			return value.Real(r), nil
		default:
			return value.Value{}, fmt.Errorf("oemio: real value has payload %T", payload)
		}
	case "string":
		s, ok := payload.(string)
		if !ok {
			return value.Value{}, fmt.Errorf("oemio: string value has payload %T", payload)
		}
		return value.Str(s), nil
	case "time":
		s, ok := payload.(string)
		if !ok {
			return value.Value{}, fmt.Errorf("oemio: time value has payload %T", payload)
		}
		t, err := timestamp.Parse(s)
		if err != nil {
			return value.Value{}, err
		}
		return value.Time(t), nil
	default:
		return value.Value{}, fmt.Errorf("oemio: unknown value kind %q", kind)
	}
}

// Write serializes db as JSON to w.
func Write(w io.Writer, db *oem.Database) error {
	wd := wireDB{Root: uint64(db.Root())}
	for _, id := range db.Nodes() {
		v := db.MustValue(id)
		kind, payload := EncodeValue(v)
		wd.Nodes = append(wd.Nodes, wireNode{ID: uint64(id), Kind: kind, Value: payload})
	}
	for _, a := range db.Arcs() {
		wd.Arcs = append(wd.Arcs, wireArc{Parent: uint64(a.Parent), Label: a.Label, Child: uint64(a.Child)})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wd)
}

// Read deserializes a database written by Write. Node ids are preserved.
func Read(r io.Reader) (*oem.Database, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var wd wireDB
	if err := dec.Decode(&wd); err != nil {
		return nil, fmt.Errorf("oemio: %w", err)
	}
	return fromWire(&wd)
}

func fromWire(wd *wireDB) (*oem.Database, error) {
	db := oem.New()
	rootSeen := false
	for _, n := range wd.Nodes {
		v, err := DecodeValue(n.Kind, normalizeNumber(n.Value))
		if err != nil {
			return nil, fmt.Errorf("oemio: node %d: %w", n.ID, err)
		}
		if oem.NodeID(n.ID) == db.Root() {
			// The serialized root reuses the fresh database's root id.
			if !v.IsComplex() {
				return nil, fmt.Errorf("oemio: root node %d is not complex", n.ID)
			}
			rootSeen = true
			continue
		}
		if err := db.CreateNodeWithID(oem.NodeID(n.ID), v); err != nil {
			return nil, fmt.Errorf("oemio: node %d: %w", n.ID, err)
		}
	}
	if uint64(db.Root()) != wd.Root {
		return nil, fmt.Errorf("oemio: root id %d unsupported (must be %d)", wd.Root, db.Root())
	}
	if !rootSeen {
		return nil, fmt.Errorf("oemio: node table missing root %d", wd.Root)
	}
	for _, a := range wd.Arcs {
		if err := db.AddArc(oem.NodeID(a.Parent), a.Label, oem.NodeID(a.Child)); err != nil {
			return nil, fmt.Errorf("oemio: arc: %w", err)
		}
	}
	return db, nil
}

// normalizeNumber unwraps json.Number payloads produced by UseNumber.
func normalizeNumber(v any) any {
	if n, ok := v.(json.Number); ok {
		return n
	}
	return v
}

// Marshal serializes db to a JSON byte slice.
func Marshal(db *oem.Database) ([]byte, error) {
	wd := wireDB{Root: uint64(db.Root())}
	for _, id := range db.Nodes() {
		kind, payload := EncodeValue(db.MustValue(id))
		wd.Nodes = append(wd.Nodes, wireNode{ID: uint64(id), Kind: kind, Value: payload})
	}
	for _, a := range db.Arcs() {
		wd.Arcs = append(wd.Arcs, wireArc{Parent: uint64(a.Parent), Label: a.Label, Child: uint64(a.Child)})
	}
	return json.Marshal(wd)
}

// Unmarshal deserializes a database from a JSON byte slice.
func Unmarshal(data []byte) (*oem.Database, error) {
	return Read(bytes.NewReader(data))
}
