package qss

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// pollDays runs Poll over consecutive days starting at day `from` (1Jan97
// is day 1) and returns the notifications (nil entries for silent polls).
func pollDays(t *testing.T, svc *Service, name string, from, to int) []*Notification {
	t.Helper()
	var out []*Notification
	for day := from; day <= to; day++ {
		at := timestamp.MustParse("1Jan97").Add(time.Duration(day-1) * 24 * time.Hour)
		n, err := svc.Poll(name, at)
		if err != nil {
			t.Fatalf("poll day %d: %v", day, err)
		}
		out = append(out, n)
	}
	return out
}

// sameNotifications compares two notification sequences structurally.
func sameNotifications(a, b []*Notification) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			return false
		}
		if a[i] == nil {
			continue
		}
		if !a[i].At.Equal(b[i].At) || a[i].Subscription != b[i].Subscription {
			return false
		}
		if !a[i].Answer.Equal(b[i].Answer) {
			return false
		}
	}
	return true
}

// TestWALRestartMatchesUninterrupted is the restart satellite: a service
// with WAL persistence is killed after a few polls and restarted; the
// subsequent polls must produce exactly the notifications an uninterrupted
// service produces — recovered from the log, without re-polling history.
func TestWALRestartMatchesUninterrupted(t *testing.T) {
	// Two identical mutable sources so the interrupted and uninterrupted
	// services observe the same evolution.
	srcA, idsA := paperSource(t)
	srcB, idsB := paperSource(t)
	sub := func(src *wrapper.Mutable) Subscription {
		return Subscription{
			Name: "R", SourceName: "guide", Source: src,
			Polling: `select guide.restaurant`,
			Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
		}
	}

	dir := t.TempDir()
	svc1 := NewService(nil)
	if err := svc1.EnableWAL(dir, &wal.Options{Sync: wal.SyncNever}); err != nil {
		t.Fatal(err)
	}
	if err := svc1.Subscribe(sub(srcA)); err != nil {
		t.Fatal(err)
	}
	ref := NewService(nil)
	if err := ref.Subscribe(sub(srcB)); err != nil {
		t.Fatal(err)
	}

	pollDays(t, svc1, "R", 1, 3)
	pollDays(t, ref, "R", 1, 3)

	// Both sources change identically between the poll rounds.
	addRestaurant := func(src *wrapper.Mutable, guide oem.NodeID) {
		t.Helper()
		if err := src.Mutate(func(db *oem.Database) error {
			r := db.CreateNode(value.Complex())
			if err := db.AddArc(guide, "restaurant", r); err != nil {
				return err
			}
			nm := db.CreateNode(value.Str("Hakata"))
			return db.AddArc(r, "name", nm)
		}); err != nil {
			t.Fatal(err)
		}
	}
	addRestaurant(srcA, idsA.Guide)
	addRestaurant(srcB, idsB.Guide)

	// "Kill" the WAL-backed service without any export.
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := NewService(nil)
	if err := svc2.EnableWAL(dir, &wal.Options{Sync: wal.SyncNever}); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Subscribe(sub(srcA)); err != nil {
		t.Fatal(err)
	}

	// Recovered history: poll times survive the restart.
	_, times, err := svc2.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("recovered %d poll times, want 3", len(times))
	}

	got := pollDays(t, svc2, "R", 4, 6)
	want := pollDays(t, ref, "R", 4, 6)
	if !sameNotifications(got, want) {
		t.Errorf("post-restart notifications diverge from uninterrupted run:\ngot  %v\nwant %v", got, want)
	}

	// The restarted service reports the new restaurant exactly once.
	if got[0] == nil || got[0].Result.Len() != 1 {
		t.Errorf("day-4 poll after restart = %v, want the one new restaurant", got[0])
	}
}

// TestWALTruncateCompactsLog: truncating a logged subscription rewrites the
// checkpoint and drops covered segments.
func TestWALTruncateCompactsLog(t *testing.T) {
	src, ids := paperSource(t)
	dir := t.TempDir()
	svc := NewService(nil)
	if err := svc.EnableWAL(dir, &wal.Options{SegmentSize: 256, Sync: wal.SyncNever}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Subscribe(Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 6; day++ {
		at := timestamp.MustParse("1Jan97").Add(time.Duration(day-1) * 24 * time.Hour)
		if day%2 == 0 {
			if err := src.Mutate(func(db *oem.Database) error {
				r := db.CreateNode(value.Complex())
				return db.AddArc(ids.Guide, "restaurant", r)
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := svc.Poll("R", at); err != nil {
			t.Fatal(err)
		}
	}
	logDir := filepath.Join(dir, "R"+subWALExt)
	before := countSegs(t, logDir)
	if before == 0 {
		t.Fatal("no segments before truncation")
	}
	if err := svc.Truncate("R", timestamp.MustParse("6Jan97")); err != nil {
		t.Fatal(err)
	}
	if after := countSegs(t, logDir); after != 0 {
		t.Errorf("%d segments survive truncation, want 0", after)
	}
	// A restart serves the truncated history from the checkpoint.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(nil)
	if err := svc2.EnableWAL(dir, &wal.Options{SegmentSize: 256, Sync: wal.SyncNever}); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if err := svc2.Subscribe(Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}); err != nil {
		t.Fatal(err)
	}
	_, times, err := svc2.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 0 {
		t.Errorf("poll times at or before the truncation point survive: %v", times)
	}
}

func countSegs(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".seg") {
			n++
		}
	}
	return n
}

func TestEnableWALGuards(t *testing.T) {
	svc := NewService(nil)
	if err := svc.EnableWAL("", nil); err == nil {
		t.Error("EnableWAL accepted an empty directory")
	}
	src, _ := paperSource(t)
	sub := Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`, Filter: `select R.restaurant`,
	}
	if err := svc.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := svc.EnableWAL(t.TempDir(), nil); err == nil {
		t.Error("EnableWAL after Subscribe succeeded")
	}

	svc2 := NewService(nil)
	if err := svc2.EnableWAL(t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	bad := sub
	bad.Name = "../escape"
	if err := svc2.Subscribe(bad); err == nil {
		t.Error("subscription name with a path separator accepted in WAL mode")
	}
}

// TestPollRecordRoundTrip exercises the poll-record codec directly.
func TestPollRecordRoundTrip(t *testing.T) {
	at := timestamp.MustParse("5Mar97")
	ops := change.Set{
		change.CreNode{Node: 12, Value: value.Str("Hakata")},
		change.AddArc{Parent: 1, Label: "restaurant", Child: 12},
	}
	added := []remapPair{{Src: 7, ID: 12}, {Src: 9, ID: 13}}
	rec := appendPollRecord(nil, at, ops, added, 42)
	gt, gops, gadded, gnext, err := decodePollRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !gt.Equal(at) || !reflect.DeepEqual(gops, ops) || !reflect.DeepEqual(gadded, added) || gnext != 42 {
		t.Error("poll record round trip differs")
	}
	// Truncations error, never panic.
	for i := 0; i < len(rec); i++ {
		if _, _, _, _, err := decodePollRecord(rec[:i]); err == nil {
			t.Errorf("truncated record (%d bytes) accepted", i)
		}
	}
	if _, _, _, _, err := decodePollRecord(append(rec, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}
