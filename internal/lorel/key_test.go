package lorel

import (
	"testing"

	"repro/internal/value"
)

// TestBindingKeyKindCollision: values of different kinds can render to the
// same text (Int(5) and Real(5) both print "5"); the dedup key carries the
// kind so such rows stay distinct.
func TestBindingKeyKindCollision(t *testing.T) {
	i := valueBinding(value.Int(5))
	r := valueBinding(value.Real(5))
	if i.key() == r.key() {
		t.Fatalf("Int(5) and Real(5) share dedup key %q", i.key())
	}
}

// TestRowKeyNoSeparatorCollision: row keys are length-prefixed per
// component, so labels or values containing the join punctuation of the
// old Label=key; scheme cannot merge two distinct rows.
func TestRowKeyNoSeparatorCollision(t *testing.T) {
	cell := func(label string, v value.Value) Cell {
		return Cell{Label: label, b: valueBinding(v)}
	}
	cases := []struct {
		name string
		a, b Row
	}{
		{
			// Under the unprefixed scheme both rendered `a=v"x";b=v"y";`.
			"label-injection",
			Row{Cells: []Cell{cell("a", value.Str("x")), cell("b", value.Str("y"))}},
			Row{Cells: []Cell{cell(`a=v"x";b`, value.Str("y"))}},
		},
		{
			// The classic embedded-separator pair from the issue:
			// "a|b"+"c" vs "a"+"b|c".
			"value-separator",
			Row{Cells: []Cell{cell("X", value.Str("a|b")), cell("Y", value.Str("c"))}},
			Row{Cells: []Cell{cell("X", value.Str("a")), cell("Y", value.Str("b|c"))}},
		},
		{
			"kind-separator",
			Row{Cells: []Cell{cell("X", value.Int(5))}},
			Row{Cells: []Cell{cell("X", value.Real(5))}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.a.key() == tc.b.key() {
				t.Fatalf("distinct rows share dedup key %q", tc.a.key())
			}
		})
	}
}
