// Package repro is a from-scratch Go reproduction of "Representing and
// Querying Changes in Semistructured Data" (Chawathe, Abiteboul, Widom,
// ICDE 1998): the DOEM change representation model for OEM semistructured
// databases, the Chorel change query language, the DOEM-in-OEM encoding
// with Chorel-to-Lorel translation, snapshot differencing, and the Query
// Subscription Service.
//
// This root package is a curated facade over the implementation packages;
// see the package documentation of internal/oem, internal/doem,
// internal/lorel, internal/chorel, internal/oemdiff and internal/qss for
// the full surfaces.
//
// A minimal session:
//
//	db := repro.NewOEM()
//	guide := db.Root()
//	r := db.CreateNode(repro.Complex())
//	_ = db.AddArc(guide, "restaurant", r)
//	n := db.CreateNode(repro.Str("Bangkok Cuisine"))
//	_ = db.AddArc(r, "name", n)
//
//	cdb := repro.Open("guide", db)
//	_ = cdb.Apply(repro.MustParseTime("1Jan97"), repro.ChangeSet{
//		repro.UpdNode{Node: n, Value: repro.Str("Bangkok Cuisine II")},
//	})
//	res, _ := cdb.Query(`select N, NV from guide.restaurant.name<upd to NV>, guide.restaurant.name N`)
//	fmt.Println(res)
package repro

import (
	"repro/internal/change"
	"repro/internal/core"
	"repro/internal/doem"
	"repro/internal/encoding"
	"repro/internal/lore"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/oemdiff"
	"repro/internal/qss"
	"repro/internal/timestamp"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wrapper"
)

// Data model types.
type (
	// OEM is an Object Exchange Model database (paper Section 2).
	OEM = oem.Database
	// NodeID identifies an object within a database.
	NodeID = oem.NodeID
	// Arc is a labeled object-subobject arc.
	Arc = oem.Arc
	// Value is an atomic value or the complex marker C.
	Value = value.Value
	// Time is an instant of the history time domain.
	Time = timestamp.Time

	// DOEM is a Delta-OEM database: an OEM graph with change annotations
	// (paper Section 3).
	DOEM = doem.Database

	// ChangeSet is a set of basic change operations applied atomically.
	ChangeSet = change.Set
	// History is a time-ordered sequence of change sets (Definition 2.2).
	History = change.History
	// Step is one (timestamp, change set) element of a history.
	Step = change.Step
	// CreNode, UpdNode, AddArc and RemArc are the four basic change
	// operations of Section 2.1.
	CreNode = change.CreNode
	UpdNode = change.UpdNode
	AddArc  = change.AddArc
	RemArc  = change.RemArc

	// DB is an OEM database under change management: DOEM history plus
	// Chorel querying with both execution strategies.
	DB = core.DB
	// Engine evaluates Lorel/Chorel queries over registered databases.
	Engine = lorel.Engine
	// Result is a query result.
	Result = lorel.Result
	// Store is a named-database store (the Lore stand-in).
	Store = lore.Store

	// Source is a pollable information source (a Tsimmis-wrapper stand-in).
	Source = wrapper.Source
	// Subscription is a QSS standing query <frequency, polling, filter>.
	Subscription = qss.Subscription
	// Notification is a QSS filter-query delivery.
	Notification = qss.Notification
	// QSS is the Query Subscription Service core.
	QSS = qss.Service

	// Trigger is an event-condition-action rule over a change-managed
	// database (the paper's Section 7 trigger-language extension).
	Trigger = trigger.Trigger
	// Firing describes one trigger activation.
	Firing = trigger.Firing
	// TriggerManager owns a DOEM database and its triggers.
	TriggerManager = trigger.Manager
)

// Value constructors.
var (
	// Complex returns the reserved complex-object marker C.
	Complex = value.Complex
	// Null returns the null atomic value.
	Null = value.Null
	// Bool returns a boolean atomic value.
	Bool = value.Bool
	// Int returns an integer atomic value.
	Int = value.Int
	// Real returns a real atomic value.
	Real = value.Real
	// Str returns a string atomic value.
	Str = value.Str
	// TimeValue returns a timestamp atomic value.
	TimeValue = value.Time
)

// Time constructors.
var (
	// ParseTime parses a textual timestamp ("1Jan97", RFC 3339, ...).
	ParseTime = timestamp.Parse
	// MustParseTime is ParseTime that panics on error.
	MustParseTime = timestamp.MustParse
	// NegInf and PosInf are the infinite instants.
	NegInf = timestamp.NegInf
	PosInf = timestamp.PosInf
)

// NewOEM creates an empty OEM database (a complex root object only).
func NewOEM() *OEM { return oem.New() }

// NewDOEM places a copy of an OEM snapshot under change tracking with an
// empty annotation set.
func NewDOEM(o *OEM) *DOEM { return doem.New(o) }

// BuildDOEM constructs D(O, H): the DOEM database representing snapshot o
// and history h (paper Section 3.1).
func BuildDOEM(o *OEM, h History) (*DOEM, error) { return doem.FromHistory(o, h) }

// Open places an OEM database under change management with an empty
// history; queries address it by name.
func Open(name string, initial *OEM) *DB { return core.Open(name, initial) }

// OpenWithHistory opens a database with a pre-existing history.
func OpenWithHistory(name string, initial *OEM, h History) (*DB, error) {
	return core.FromHistory(name, initial, h)
}

// OpenStore opens (or creates) a database store rooted at dir; an empty dir
// yields an in-memory store.
func OpenStore(dir string) (*Store, error) { return lore.Open(dir) }

// LoadDB opens a change-managed database previously saved in a store.
func LoadDB(store *Store, name string) (*DB, error) { return core.Load(store, name) }

// NewEngine returns an empty query engine; register databases with
// Engine.Register.
func NewEngine() *Engine { return lorel.NewEngine() }

// WrapOEM adapts a plain OEM database for registration with an Engine.
func WrapOEM(db *OEM) lorel.Graph { return lorel.NewOEMGraph(db) }

// DiffSnapshots infers the change set between two snapshots that share
// object identity (paper Section 6's OEMdiff, identity mode).
func DiffSnapshots(old, new *OEM) (ChangeSet, error) { return oemdiff.DiffIdentity(old, new) }

// DiffSnapshotsMatched infers the change set between two snapshots without
// shared identity, matching objects structurally.
func DiffSnapshotsMatched(old, new *OEM) (ChangeSet, error) { return oemdiff.Diff(old, new, nil) }

// NewQSS returns a Query Subscription Service delivering notifications
// through fn.
func NewQSS(fn func(Notification)) *QSS { return qss.NewService(fn) }

// NewMutableSource wraps a live OEM database as a stable-identity source.
func NewMutableSource(db *OEM) *wrapper.Mutable { return wrapper.NewMutable(db) }

// ParseFreq parses a textual frequency specification ("every 10 minutes",
// "every Friday at 5:00pm").
func ParseFreq(s string) (qss.Freq, error) { return qss.ParseFreq(s) }

// NewTriggerManager wraps a DOEM database for ECA trigger processing;
// queries address it by name.
func NewTriggerManager(name string, d *DOEM) *TriggerManager {
	return trigger.NewManager(name, d)
}

// Encode builds the Section 5.1 OEM encoding of a DOEM database; Decode
// inverts it (up to node-id renaming).
var (
	Encode = encoding.Encode
	Decode = encoding.Decode
)
