package qss

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wrapper"
)

// TestLifecycleHealthTransitions drives a flaky source through the full
// health state machine — retry with backoff, degradation, suspension with
// probing, recovery — entirely on the simulated clock, and checks every
// transition (state and polling time) deterministically.
func TestLifecycleHealthTransitions(t *testing.T) {
	src, _ := paperSource(t)
	boom := errors.New("source unreachable")
	// Polls 2..7 fail; 1 and 8+ succeed.
	flaky := faults.NewSource(src, faults.FailRange(boom, 2, 7))

	svc := NewService(nil)
	if err := svc.Subscribe(Subscription{
		Name: "R", SourceName: "guide", Source: flaky,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}); err != nil {
		t.Fatal(err)
	}

	events := make(chan HealthEvent, 16)
	clock := NewSimClock(timestamp.MustParse("1Jan97"))
	sch := NewSchedulerWith(svc, clock, SchedulerOptions{
		Policy: RetryPolicy{
			Initial: time.Second, Max: 8 * time.Second, Multiplier: 2, Jitter: 0,
			DegradedAfter: 2, SuspendAfter: 4, Probe: 10 * time.Second, RecoverAfter: 2,
		},
		OnHealth: func(ev HealthEvent) { events <- ev },
	})
	sch.Start("R", Every{Interval: time.Hour})
	defer sch.StopAll()

	// Attempt schedule (from 1Jan97 00:00, hourly freq, backoff 1s*2^k
	// capped at 8s, probe 10s):
	//   #1 01:00:00 ok      #2 02:00:00 fail    #3 02:00:01 fail->degraded
	//   #4 02:00:03 fail    #5 02:00:07 fail->suspended
	//   #6 02:00:17 fail    #7 02:00:27 fail (probes)
	//   #8 02:00:37 ok->recovering   #9 03:00:37 ok->healthy
	want := []struct {
		from, to Health
		at       string
		failures int
	}{
		{Healthy, Degraded, "1Jan97 02:00:01", 2},
		{Degraded, Suspended, "1Jan97 02:00:07", 4},
		{Suspended, Recovering, "1Jan97 02:00:37", 0},
		{Recovering, Healthy, "1Jan97 03:00:37", 0},
	}
	for i, w := range want {
		select {
		case ev := <-events:
			if ev.Subscription != "R" {
				t.Fatalf("event %d: subscription %q", i, ev.Subscription)
			}
			if ev.From != w.from || ev.To != w.to {
				t.Fatalf("event %d: %s -> %s, want %s -> %s", i, ev.From, ev.To, w.from, w.to)
			}
			if !ev.At.Equal(timestamp.MustParse(w.at)) {
				t.Fatalf("event %d (%s -> %s): at %s, want %s", i, w.from, w.to, ev.At, w.at)
			}
			if ev.Failures != w.failures {
				t.Fatalf("event %d: failures = %d, want %d", i, ev.Failures, w.failures)
			}
			if w.to == Degraded || w.to == Suspended {
				if ev.Err == nil {
					t.Fatalf("event %d: failure transition without error", i)
				}
			} else if ev.Err != nil {
				t.Fatalf("event %d: recovery transition with error %v", i, ev.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for transition %d (%s -> %s)", i, w.from, w.to)
		}
	}
	if got := sch.Health("R"); got != Healthy {
		t.Errorf("final health = %s", got)
	}

	// Graceful degradation: the last-known history kept serving all along
	// and reflects the successful polls.
	d, times, err := svc.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 2 {
		t.Errorf("successful polls recorded = %d, want >= 2", len(times))
	}
	if got := len(d.Current().OutLabeled(d.Current().Root(), "restaurant")); got != 2 {
		t.Errorf("history restaurants = %d, want 2", got)
	}
}

// TestSuspendedKeepsServingHistory pins the graceful-degradation claim:
// while a subscription is suspended, History and filter evaluation over
// the accumulated DOEM database still work.
func TestSuspendedKeepsServingHistory(t *testing.T) {
	src, _ := paperSource(t)
	boom := errors.New("down")
	flaky := faults.NewSource(src, faults.FailRange(boom, 2, 1<<30))
	svc := NewService(nil)
	if err := svc.Subscribe(Subscription{
		Name: "R", SourceName: "guide", Source: flaky,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}); err != nil {
		t.Fatal(err)
	}
	events := make(chan HealthEvent, 16)
	clock := NewSimClock(timestamp.MustParse("1Jan97"))
	sch := NewSchedulerWith(svc, clock, SchedulerOptions{
		Policy: RetryPolicy{
			Initial: time.Second, Max: time.Second, Multiplier: 1, Jitter: 0,
			DegradedAfter: 1, SuspendAfter: 2, Probe: time.Minute, RecoverAfter: 2,
		},
		OnHealth: func(ev HealthEvent) { events <- ev },
	})
	sch.Start("R", Every{Interval: time.Hour})
	defer sch.StopAll()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.To != Suspended {
				continue
			}
		case <-deadline:
			t.Fatal("never suspended")
		}
		break
	}
	if got := sch.Health("R"); got != Suspended {
		t.Fatalf("health = %s, want suspended", got)
	}
	d, times, err := svc.History("R")
	if err != nil {
		t.Fatalf("suspended subscription stopped serving history: %v", err)
	}
	if len(times) != 1 {
		t.Errorf("poll times = %d, want 1 (the successful initial poll)", len(times))
	}
	if got := len(d.Current().OutLabeled(d.Current().Root(), "restaurant")); got != 2 {
		t.Errorf("last-known snapshot restaurants = %d, want 2", got)
	}
}

// killableDialer dials addr, remembers the latest raw connection so a
// test can sever it out from under the client, and can hold off redials
// to make the disconnected window deterministic.
type killableDialer struct {
	addr    string
	mu      sync.Mutex
	cur     net.Conn
	blocked bool
}

func (k *killableDialer) dial() (net.Conn, error) {
	k.mu.Lock()
	blocked := k.blocked
	k.mu.Unlock()
	if blocked {
		return nil, errors.New("dial blocked by test")
	}
	nc, err := net.Dial("tcp", k.addr)
	if err == nil {
		k.mu.Lock()
		k.cur = nc
		k.mu.Unlock()
	}
	return nc, err
}

// kill severs the current connection and blocks redials until allow.
func (k *killableDialer) kill() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.blocked = true
	if k.cur != nil {
		k.cur.Close()
	}
}

func (k *killableDialer) allow() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.blocked = false
}

// TestKillAndReconnectNoDupNoLoss severs a client's connection, polls the
// subscription while it is orphaned, and verifies the reconnecting client
// resumes it and receives every notification exactly once.
func TestKillAndReconnectNoDupNoLoss(t *testing.T) {
	src, ids := paperSource(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(map[string]wrapper.Source{"guide": src},
		NewSimClock(timestamp.MustParse("1Jan97")),
		ServerConfig{Linger: time.Minute})
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	kd := &killableDialer{addr: ln.Addr().String()}
	rc := NewRobustClient(kd.dial, &RobustOptions{
		ReconnectInitial: 50 * time.Millisecond,
		ReconnectMax:     200 * time.Millisecond,
	})
	defer rc.Close()

	if err := rc.Subscribe("R", "guide", "guide",
		`select guide.restaurant`,
		`select R.restaurant<cre at T> where T > t[-1]`,
		""); err != nil {
		t.Fatal(err)
	}

	poll := func(at string) {
		t.Helper()
		if _, err := srv.Service().Poll("R", timestamp.MustParse(at)); err != nil {
			t.Fatal(err)
		}
	}
	addRestaurant := func(name string) {
		t.Helper()
		if err := src.Mutate(func(db *oem.Database) error {
			r := db.CreateNode(value.Complex())
			nm := db.CreateNode(value.Str(name))
			if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
				return err
			}
			return db.AddArc(r, "name", nm)
		}); err != nil {
			t.Fatal(err)
		}
	}
	recv := func(wantSeq uint64, wantCount int) {
		t.Helper()
		select {
		case n := <-rc.Notifications():
			if n.Seq != wantSeq {
				t.Fatalf("notification seq = %d, want %d", n.Seq, wantSeq)
			}
			if got := len(n.Answer.OutLabeled(n.Answer.Root(), "restaurant")); got != wantCount {
				t.Fatalf("seq %d: %d restaurants, want %d", wantSeq, got, wantCount)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for notification seq %d", wantSeq)
		}
	}

	// Live delivery before the fault.
	poll("30Dec96")
	recv(1, 2)

	// Sever the connection (holding off redials); wait until the server
	// notices and orphans the subscription (it keeps buffering during the
	// linger window).
	kd.kill()
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.Orphaned()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never orphaned the subscription")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A notification produced while disconnected must not be lost.
	addRestaurant("Hakata")
	poll("31Dec96")

	// The client reconnects, resumes, and replays the buffered delivery.
	kd.allow()
	recv(2, 1)

	// And live delivery continues with no duplicates.
	addRestaurant("Zao")
	poll("1Jan97")
	recv(3, 1)

	// Exactly three notifications total: nothing duplicated, nothing extra.
	select {
	case n := <-rc.Notifications():
		t.Fatalf("unexpected extra notification seq %d", n.Seq)
	case <-time.After(200 * time.Millisecond):
	}

	// The resumed subscription is still registered server-side.
	names, err := rc.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "R" {
		t.Errorf("List after resume = %v", names)
	}
	if len(srv.Orphaned()) != 0 {
		t.Errorf("subscription still orphaned after resume: %v", srv.Orphaned())
	}
}

// TestServerRestartResetsDedupeWatermark: when the server itself restarts
// (losing orphan state), the resubscription is fresh and its notification
// sequence restarts from 1 — the client must reset its dedupe watermark
// instead of swallowing the new stream as replays.
func TestServerRestartResetsDedupeWatermark(t *testing.T) {
	src, _ := paperSource(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1 := NewServerWith(map[string]wrapper.Source{"guide": src},
		NewSimClock(timestamp.MustParse("1Jan97")),
		ServerConfig{Linger: time.Minute})
	go srv1.Serve(ln)

	rc := DialRobust(addr, &RobustOptions{
		ReconnectInitial: 50 * time.Millisecond,
		ReconnectMax:     200 * time.Millisecond,
	})
	defer rc.Close()
	if err := rc.Subscribe("R", "guide", "guide",
		`select guide.restaurant`,
		`select R.restaurant<cre at T> where T > t[-1]`,
		""); err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Service().Poll("R", timestamp.MustParse("30Dec96")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-rc.Notifications():
		if n.Seq != 1 {
			t.Fatalf("first notification seq = %d", n.Seq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no notification before restart")
	}

	// Hard restart: all orphan and sequence state is lost.
	srv1.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServerWith(map[string]wrapper.Source{"guide": src},
		NewSimClock(timestamp.MustParse("1Jan97")),
		ServerConfig{Linger: time.Minute})
	go srv2.Serve(ln2)
	t.Cleanup(srv2.Close)

	// Wait for the client to reconnect and freshly resubscribe.
	deadline := time.Now().Add(10 * time.Second)
	for len(srv2.Service().List()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never resubscribed to the restarted server")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The restarted stream's nseq is 1 again — it must not be deduped
	// against the pre-restart watermark (which was also 1).
	if _, err := srv2.Service().Poll("R", timestamp.MustParse("31Dec96")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-rc.Notifications():
		if n.Seq != 1 {
			t.Fatalf("post-restart notification seq = %d, want 1 (fresh stream)", n.Seq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("post-restart notification was swallowed by the stale dedupe watermark")
	}
}

// TestLingerExpiryDropsSubscription verifies the other side of the linger
// window: without a resume, the orphaned subscription is dropped.
func TestLingerExpiryDropsSubscription(t *testing.T) {
	src, _ := paperSource(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(map[string]wrapper.Source{"guide": src},
		NewSimClock(timestamp.MustParse("1Jan97")),
		ServerConfig{Linger: 50 * time.Millisecond})
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe("gone", "guide", "guide",
		"select guide.restaurant", "select gone.restaurant", ""); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.Service().List()) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("orphaned subscription survived linger expiry: %v", srv.Service().List())
}

// TestSchedulerPanicBecomesHealthEvent: a panicking source must not kill
// the poller — the panic surfaces as a poll failure and health event.
func TestSchedulerPanicBecomesHealthEvent(t *testing.T) {
	bomb := wrapper.Func{
		PollFunc: func() (*oem.Database, error) { panic("kaboom") },
		Stable:   true,
	}
	svc := NewService(nil)
	if err := svc.Subscribe(Subscription{
		Name: "B", SourceName: "s", Source: bomb,
		Polling: `select s.x`, Filter: `select B.x`,
	}); err != nil {
		t.Fatal(err)
	}
	events := make(chan HealthEvent, 4)
	var errMu sync.Mutex
	var lastErr error
	sch := NewSchedulerWith(svc, NewSimClock(timestamp.MustParse("1Jan97")), SchedulerOptions{
		Policy:   RetryPolicy{Initial: time.Second, DegradedAfter: 1, SuspendAfter: 100},
		OnError:  func(_ string, err error) { errMu.Lock(); lastErr = err; errMu.Unlock() },
		OnHealth: func(ev HealthEvent) { events <- ev },
	})
	sch.Start("B", Every{Interval: time.Hour})
	defer sch.StopAll()
	select {
	case ev := <-events:
		if ev.To != Degraded {
			t.Errorf("transition to %s, want degraded", ev.To)
		}
		if ev.Err == nil {
			t.Fatal("no error on panic-driven transition")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("poller died instead of reporting the panic")
	}
	errMu.Lock()
	defer errMu.Unlock()
	if lastErr == nil {
		t.Fatal("onError never saw the panic")
	}
}
