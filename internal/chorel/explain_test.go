package chorel

import (
	"errors"
	"strings"
	"testing"
)

func TestExplainQuerySteps(t *testing.T) {
	pl, err := ExplainQuery(`select guide.restaurant<cre at T> where T > 31Dec96`)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Err != nil {
		t.Fatalf("plan error: %v", pl.Err)
	}
	if len(pl.Steps) == 0 {
		t.Fatal("no rewrite steps for an annotated query")
	}
	rules := make(map[string]bool)
	for _, s := range pl.Steps {
		if s.Rule == "" || s.After == "" {
			t.Errorf("incomplete step: %+v", s)
		}
		rules[s.Rule] = true
	}
	if !rules["cre-node"] {
		t.Errorf("missing cre-node rule; fired: %v", rules)
	}
	if !strings.Contains(pl.Lorel, "&cre") {
		t.Errorf("generated Lorel lacks &cre:\n%s", pl.Lorel)
	}
}

func TestExplainQueryRuleCoverage(t *testing.T) {
	cases := []struct {
		src  string
		rule string
	}{
		{`select C from guide.restaurant.<add at T>comment C`, "add-arc"},
		{`select C from guide.restaurant.<rem at T>comment C`, "rem-arc"},
		{`select guide.restaurant<cre at T>`, "cre-node"},
		{`select T from guide.restaurant.price<upd at T>`, "upd-node"},
		{`select R.name from guide.restaurant R where R.price < 20`, "objvar-val"},
	}
	for _, c := range cases {
		pl, err := ExplainQuery(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if pl.Err != nil {
			t.Errorf("%q: plan error %v", c.src, pl.Err)
			continue
		}
		found := false
		for _, s := range pl.Steps {
			if s.Rule == c.rule {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: rule %s did not fire; steps %+v", c.src, c.rule, pl.Steps)
		}
	}
}

func TestExplainUntranslatable(t *testing.T) {
	pl, err := ExplainQuery(`select guide.#`)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(pl.Err, ErrUntranslatable) {
		t.Fatalf("plan error = %v, want ErrUntranslatable", pl.Err)
	}
	out := pl.String()
	if !strings.Contains(out, "direct evaluation") {
		t.Errorf("untranslatable plan does not fall back to direct evaluation:\n%s", out)
	}
}

func TestExplainRendering(t *testing.T) {
	out, err := Explain(`select guide.restaurant<cre at T> where T > 31Dec96`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"chorel (canonical):",
		"rewrite steps (",
		"[cre-node]",
		"lorel:",
		"Section 5.1 OEM encoding",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainParseError(t *testing.T) {
	if _, err := Explain(`select from where`); err == nil {
		t.Fatal("want parse error for malformed query")
	}
}

// The translated query an EXPLAIN prints must be exactly what Translate
// produces for evaluation — the plan is documentation, not a second
// translator.
func TestExplainMatchesTranslate(t *testing.T) {
	const src = `select C from guide.restaurant.<add at T>comment C where T >= 1Jan97`
	pl, err := ExplainQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := TranslateString(src)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Lorel != direct {
		t.Errorf("EXPLAIN lorel differs from Translate:\nexplain: %s\ndirect:  %s", pl.Lorel, direct)
	}
}
