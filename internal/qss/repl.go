package qss

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/repl"
)

// Replicated subscription state. With EnableReplication, every poll's
// record — the same bytes EnableWAL would append to a per-subscription
// log — is routed through a repl.Node before it is folded into the
// subscription's history: the node appends it to its replicated oplog,
// streams it to followers, and blocks until the configured ack quorum
// has it durably. ReplState, the node's repl.State, is the single place
// records are applied to subscription state, so the primary's polls,
// a follower's stream, restarts and catch-up replays all take the
// identical code path and converge on identical state. See
// docs/replication.md.

// ReplState implements repl.State over a Service's subscription states.
// Oplog records are poll records addressed by subscription name; applying
// one mirrors exactly the transitions a local poll performs (remap
// additions, history step, poll-time append, id high-water mark).
// Subscriptions a follower has never seen are created as unclaimed
// replicas — they accumulate history and serve reads, and Subscribe
// adopts them (reattaching source and queries) after a promotion.
type ReplState struct {
	svc *Service
}

// NewReplState builds the repl.State for svc. Open the repl.Node over it,
// then hand the node to svc.EnableReplication.
func NewReplState(svc *Service) *ReplState { return &ReplState{svc: svc} }

// Reset implements repl.State: drop every subscription state ahead of a
// full oplog replay or snapshot restore. Replicated state is by contract
// exactly what the oplog reproduces, so nothing here is lost.
func (rs *ReplState) Reset() error {
	s := rs.svc
	s.mu.Lock()
	s.subs = make(map[string]*subState)
	s.mu.Unlock()
	return nil
}

// Apply implements repl.State: fold one replicated poll record into the
// named subscription, creating an unclaimed replica the first time a
// name is seen.
func (rs *ReplState) Apply(name string, data []byte) error {
	t, ops, added, nextID, err := decodePollRecord(data)
	if err != nil {
		return fmt.Errorf("qss: repl record: %w", err)
	}
	st := rs.svc.replSub(name)
	st.mu.Lock()
	defer st.mu.Unlock()
	// Mirror pollContext/recoverFromLog: remap additions happen while
	// packaging (before the step is applied), pruning after.
	for _, p := range added {
		st.remap[p.Src] = p.ID
	}
	if len(ops) > 0 {
		if err := st.d.Apply(t, ops); err != nil {
			return fmt.Errorf("qss: applying repl record: %w", err)
		}
		st.pruneRemap()
		if st.ig != nil {
			st.ig.Invalidate()
		}
	}
	st.pollTimes = append(st.pollTimes, t)
	st.nextID = nextID
	return nil
}

// Snapshot implements repl.State: a count followed by (name, marshaled
// wireState) pairs in sorted name order — the checkpoint/bootstrap
// encoding for the whole service.
func (rs *ReplState) Snapshot() ([]byte, error) {
	s := rs.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.subs))
	for name := range s.subs {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := binary.AppendUvarint(nil, uint64(len(names)))
	for _, name := range names {
		st := s.subs[name]
		st.mu.Lock()
		data, err := st.marshalState(name)
		st.mu.Unlock()
		if err != nil {
			return nil, err
		}
		buf = change.AppendString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(len(data)))
		buf = append(buf, data...)
	}
	return buf, nil
}

// Restore implements repl.State: replace every subscription state with
// the snapshot's. All restored states are unclaimed replicas; Subscribe
// re-adopts them.
func (rs *ReplState) Restore(snapshot []byte) error {
	count, n := binary.Uvarint(snapshot)
	if n <= 0 {
		return errors.New("qss: repl snapshot: bad count")
	}
	s := rs.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	subs := make(map[string]*subState, count)
	off := n
	for i := uint64(0); i < count; i++ {
		name, sn, err := change.DecodeString(snapshot[off:])
		if err != nil {
			return fmt.Errorf("qss: repl snapshot name: %w", err)
		}
		off += sn
		dlen, dn := binary.Uvarint(snapshot[off:])
		if dn <= 0 {
			return fmt.Errorf("qss: repl snapshot: bad length for %q", name)
		}
		off += dn
		if uint64(len(snapshot)-off) < dlen {
			return fmt.Errorf("qss: repl snapshot: truncated data for %q", name)
		}
		st := s.newReplicaLocked(name)
		if err := st.restoreState(snapshot[off : off+int(dlen)]); err != nil {
			return err
		}
		off += int(dlen)
		subs[name] = st
	}
	if off != len(snapshot) {
		return fmt.Errorf("qss: repl snapshot: %d trailing bytes", len(snapshot)-off)
	}
	s.subs = subs
	return nil
}

// replSub returns the named subscription state, creating an unclaimed
// replica if none exists.
func (s *Service) replSub(name string) *subState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[name]
	if !ok {
		st = s.newReplicaLocked(name)
		s.subs[name] = st
	}
	return st
}

// newReplicaLocked builds an empty unclaimed replica state. Caller holds
// s.mu.
func (s *Service) newReplicaLocked(name string) *subState {
	st := &subState{
		replica: true,
		d:       doem.New(oem.New()),
		remap:   make(map[oem.NodeID]oem.NodeID),
		nextID:  1,
		pollNs:  obs.NewHistogram(obs.LabeledName("qss_poll_ns", "sub", name)),
	}
	if !s.noIndex {
		st.ig = index.NewGraph(st.d)
	}
	return st
}

// EnableReplication routes every poll through node: a poll is not applied
// (and no notification fires) until its record is durable on the node's
// oplog, and not acknowledged to the caller until the node's ack quorum
// has it. node must have been opened over this service's ReplState; any
// subscription states the node rebuilt from its oplog during Open become
// adoptable replicas. Mutually exclusive with EnableWAL/EnableSegments
// (the replicated oplog is the durable truth) and must precede Subscribe.
func (s *Service) EnableReplication(node *repl.Node) error {
	rs, ok := node.StateRef().(*ReplState)
	if !ok || rs.svc != s {
		return errors.New("qss: node was not opened over this service's ReplState")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.walDir != "" || s.segDir != "" {
		return errors.New("qss: replication is mutually exclusive with WAL/segment persistence")
	}
	for name, st := range s.subs {
		if !st.replica {
			return fmt.Errorf("qss: EnableReplication must precede Subscribe (%q exists)", name)
		}
	}
	s.replNode = node
	return nil
}

// ReplStatus reports the replication status of the service's node, and
// whether replication is enabled at all — the staleness bound a read
// replica serves alongside query results.
func (s *Service) ReplStatus() (repl.Status, bool) {
	s.mu.Lock()
	node := s.replNode
	s.mu.Unlock()
	if node == nil {
		return repl.Status{}, false
	}
	return node.Status(), true
}
