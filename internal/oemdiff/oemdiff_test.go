package oemdiff

import (
	"math/rand"
	"testing"

	"repro/internal/change"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/value"
)

// applyAndCheckIdentity applies the set and requires exact equality.
func applyAndCheckIdentity(t *testing.T, old, new *oem.Database, set change.Set) {
	t.Helper()
	got := old.Clone()
	if _, err := set.Apply(got); err != nil {
		t.Fatalf("applying diff: %v", err)
	}
	if !got.Equal(new) {
		t.Fatalf("diff did not reproduce target:\nold:\n%s\nnew:\n%s\ngot:\n%s\nset: %s", old, new, got, set)
	}
}

// applyAndCheckIso applies the set and requires isomorphism.
func applyAndCheckIso(t *testing.T, old, new *oem.Database, set change.Set) {
	t.Helper()
	got := old.Clone()
	if _, err := set.Apply(got); err != nil {
		t.Fatalf("applying diff: %v", err)
	}
	if !oem.Isomorphic(got, new) {
		t.Fatalf("diff result not isomorphic to target:\nold:\n%s\nnew:\n%s\ngot:\n%s\nset: %s", old, new, got, set)
	}
}

func TestIdentityDiffEmpty(t *testing.T) {
	db, _ := guidegen.PaperGuide()
	set, err := DiffIdentity(db, db.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Errorf("diff of identical snapshots = %s", set)
	}
}

func TestIdentityDiffPaperHistory(t *testing.T) {
	// Diffing Figure 2 against Figure 3 must recover ops equivalent to the
	// paper's full history (squashed into one set).
	old, ids := guidegen.PaperGuide()
	new := old.Clone()
	if err := guidegen.PaperHistory(ids).Apply(new); err != nil {
		t.Fatal(err)
	}
	set, err := DiffIdentity(old, new)
	if err != nil {
		t.Fatal(err)
	}
	c := Measure(set)
	// 3 created nodes (Hakata, name, comment), 1 update (price), 3 added
	// arcs, 1 removed arc.
	if c.Creates != 3 || c.Updates != 1 || c.Adds != 3 || c.Removes != 1 {
		t.Errorf("cost = %+v, want {3 1 3 1}", c)
	}
	applyAndCheckIdentity(t, old, new, set)
}

func TestIdentityDiffValueUpdate(t *testing.T) {
	old := oem.New()
	n := old.CreateNode(value.Int(10))
	if err := old.AddArc(old.Root(), "price", n); err != nil {
		t.Fatal(err)
	}
	new := old.Clone()
	if err := new.UpdateNode(n, value.Int(20)); err != nil {
		t.Fatal(err)
	}
	set, err := DiffIdentity(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("set = %s", set)
	}
	applyAndCheckIdentity(t, old, new, set)
}

func TestIdentityDiffComplexToAtomic(t *testing.T) {
	old := oem.New()
	c := old.CreateNode(value.Complex())
	leaf := old.CreateNode(value.Int(1))
	if err := old.AddArc(old.Root(), "x", c); err != nil {
		t.Fatal(err)
	}
	if err := old.AddArc(c, "leaf", leaf); err != nil {
		t.Fatal(err)
	}
	new := old.Clone()
	if err := new.RemoveArc(c, "leaf", leaf); err != nil {
		t.Fatal(err)
	}
	new.GarbageCollect()
	if err := new.UpdateNode(c, value.Str("now atomic")); err != nil {
		t.Fatal(err)
	}
	set, err := DiffIdentity(old, new)
	if err != nil {
		t.Fatal(err)
	}
	applyAndCheckIdentity(t, old, new, set)
}

func TestIdentityDiffRejectsConflictingSnapshots(t *testing.T) {
	// A new snapshot whose node ids collide incompatibly (complex vs arcs)
	// cannot happen from valid evolution; an id reused as a different kind
	// with children in both directions triggers set validation failure.
	old := oem.New()
	a := old.CreateNode(value.Int(1))
	if err := old.AddArc(old.Root(), "x", a); err != nil {
		t.Fatal(err)
	}
	// new: same id a is complex with a child, but old also keeps arcs into a.
	new := oem.New()
	if err := new.CreateNodeWithID(a, value.Complex()); err != nil {
		t.Fatal(err)
	}
	leaf := new.CreateNode(value.Int(2))
	_ = leaf
	if err := new.AddArc(new.Root(), "x", a); err != nil {
		t.Fatal(err)
	}
	if err := new.AddArc(a, "y", leaf); err != nil {
		t.Fatal(err)
	}
	set, err := DiffIdentity(old, new)
	if err != nil {
		t.Fatal(err) // this evolution is actually expressible: upd + adds
	}
	applyAndCheckIdentity(t, old, new, set)
}

// --- matching mode ---

// buildGuideLike builds a fresh database with the same structure as the
// paper guide but independent node ids (shifted by creating padding nodes).
func buildGuideLike(pad int, hakata bool, price int64) *oem.Database {
	b := oem.NewBuilder()
	root := b.Root()
	for i := 0; i < pad; i++ {
		x := b.Atom("", value.Int(int64(i)))
		b.Arc(root, "pad", x)
	}
	bangkok := b.ComplexArc(root, "restaurant")
	b.AtomArc(bangkok, "name", value.Str("Bangkok Cuisine"))
	b.AtomArc(bangkok, "price", value.Int(price))
	b.AtomArc(bangkok, "cuisine", value.Str("Thai"))
	janta := b.ComplexArc(root, "restaurant")
	b.AtomArc(janta, "name", value.Str("Janta"))
	b.AtomArc(janta, "price", value.Str("moderate"))
	if hakata {
		h := b.ComplexArc(root, "restaurant")
		b.AtomArc(h, "name", value.Str("Hakata"))
	}
	db := b.Build()
	// Remove padding so ids differ but content matches.
	for _, a := range db.OutLabeled(db.Root(), "pad") {
		if err := db.RemoveArc(a.Parent, a.Label, a.Child); err != nil {
			panic(err)
		}
	}
	db.GarbageCollect()
	return db
}

func TestMatchingDiffIdentical(t *testing.T) {
	old := buildGuideLike(0, false, 10)
	new := buildGuideLike(7, false, 10) // same content, different ids
	set, err := Diff(old, new, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Errorf("matching diff of identical content = %s", set)
	}
}

func TestMatchingDiffInsertion(t *testing.T) {
	old := buildGuideLike(0, false, 10)
	new := buildGuideLike(3, true, 10)
	set, err := Diff(old, new, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Measure(set)
	// One new restaurant: 2 creNodes (restaurant + name), 2 addArcs.
	if c.Creates != 2 || c.Adds != 2 || c.Updates != 0 || c.Removes != 0 {
		t.Errorf("cost = %+v, want {2 0 2 0}", c)
	}
	applyAndCheckIso(t, old, new, set)
}

func TestMatchingDiffUpdate(t *testing.T) {
	old := buildGuideLike(0, false, 10)
	new := buildGuideLike(5, false, 20)
	set, err := Diff(old, new, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Measure(set)
	// The price change should be detected as an update, not delete+insert.
	if c.Updates != 1 || c.Creates != 0 || c.Adds != 0 || c.Removes != 0 {
		t.Errorf("cost = %+v, want a single update", c)
	}
	applyAndCheckIso(t, old, new, set)
}

func TestMatchingDiffDeletion(t *testing.T) {
	old := buildGuideLike(0, true, 10)
	new := buildGuideLike(2, false, 10)
	set, err := Diff(old, new, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Measure(set)
	if c.Removes == 0 {
		t.Errorf("cost = %+v, want removals", c)
	}
	applyAndCheckIso(t, old, new, set)
}

func TestMatchingDiffSharedAndCyclic(t *testing.T) {
	build := func(pad int) *oem.Database {
		b := oem.NewBuilder()
		root := b.Root()
		for i := 0; i < pad; i++ {
			b.Arc(root, "pad", b.Atom("", value.Int(int64(i))))
		}
		r1 := b.ComplexArc(root, "restaurant")
		b.AtomArc(r1, "name", value.Str("A"))
		r2 := b.ComplexArc(root, "restaurant")
		b.AtomArc(r2, "name", value.Str("B"))
		park := b.ComplexArc(r1, "parking")
		b.Arc(r2, "parking", park) // shared
		b.AtomArc(park, "address", value.Str("lot 2"))
		b.Arc(park, "nearby-eats", r1) // cycle
		db := b.Build()
		for _, a := range db.OutLabeled(db.Root(), "pad") {
			if err := db.RemoveArc(a.Parent, a.Label, a.Child); err != nil {
				panic(err)
			}
		}
		db.GarbageCollect()
		return db
	}
	old, new := build(0), build(4)
	set, err := Diff(old, new, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Errorf("diff of identical shared/cyclic content = %s", set)
	}
	applyAndCheckIso(t, old, new, set)
}

func TestMatchingDiffAllocID(t *testing.T) {
	old := buildGuideLike(0, false, 10)
	new := buildGuideLike(0, true, 10)
	next := oem.NodeID(10000)
	set, err := Diff(old, new, &Options{AllocID: func() oem.NodeID { next++; return next }})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range set {
		if c, ok := op.(change.CreNode); ok && c.Node <= 10000 {
			t.Errorf("created node %s ignores the allocator", c.Node)
		}
	}
	applyAndCheckIso(t, old, new, set)
}

// TestMatchingDiffRandomEvolutions: random tree pairs where new is a
// mutation of old (re-built with fresh ids); the diff must always produce a
// valid script whose application is isomorphic to new.
func TestMatchingDiffRandomEvolutions(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		old := randomTree(rng, 3, 4)
		new := mutateTree(rng, old)
		set, err := Diff(old, new, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := old.Clone()
		if _, err := set.Apply(got); err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if !oem.Isomorphic(got, new) {
			t.Errorf("seed %d: result not isomorphic (script %d ops)", seed, len(set))
		}
	}
}

// randomTree builds a random tree of the given depth/fanout.
func randomTree(rng *rand.Rand, depth, fanout int) *oem.Database {
	db := oem.New()
	var grow func(parent oem.NodeID, d int)
	grow = func(parent oem.NodeID, d int) {
		n := 1 + rng.Intn(fanout)
		for i := 0; i < n; i++ {
			label := string(rune('a' + rng.Intn(4)))
			if d == 0 || rng.Intn(3) == 0 {
				leaf := db.CreateNode(value.Int(rng.Int63n(50)))
				if err := db.AddArc(parent, label, leaf); err != nil {
					panic(err)
				}
			} else {
				c := db.CreateNode(value.Complex())
				if err := db.AddArc(parent, label, c); err != nil {
					panic(err)
				}
				grow(c, d-1)
			}
		}
	}
	grow(db.Root(), depth)
	return db
}

// mutateTree rebuilds db with fresh ids, randomly updating some leaf values
// and dropping/duplicating some subtrees.
func mutateTree(rng *rand.Rand, src *oem.Database) *oem.Database {
	dst := oem.New()
	var copyNode func(s oem.NodeID) (oem.NodeID, bool)
	copyNode = func(s oem.NodeID) (oem.NodeID, bool) {
		v := src.MustValue(s)
		if !v.IsComplex() {
			if rng.Intn(10) == 0 {
				v = value.Int(rng.Int63n(50) + 100) // value update
			}
			return dst.CreateNode(v), true
		}
		id := dst.CreateNode(value.Complex())
		for _, a := range src.Out(s) {
			if rng.Intn(12) == 0 {
				continue // drop subtree
			}
			c, ok := copyNode(a.Child)
			if !ok {
				continue
			}
			if err := dst.AddArc(id, a.Label, c); err != nil {
				panic(err)
			}
		}
		return id, true
	}
	for _, a := range src.Out(src.Root()) {
		if rng.Intn(12) == 0 {
			continue
		}
		c, _ := copyNode(a.Child)
		if err := dst.AddArc(dst.Root(), a.Label, c); err != nil {
			panic(err)
		}
	}
	// Occasionally graft a brand-new subtree.
	if rng.Intn(2) == 0 {
		n := dst.CreateNode(value.Complex())
		if err := dst.AddArc(dst.Root(), "new", n); err != nil {
			panic(err)
		}
		leaf := dst.CreateNode(value.Str("fresh"))
		if err := dst.AddArc(n, "leaf", leaf); err != nil {
			panic(err)
		}
	}
	return dst
}

func TestMeasure(t *testing.T) {
	set := change.Set{
		change.CreNode{Node: 5, Value: value.Int(1)},
		change.AddArc{Parent: 1, Label: "x", Child: 5},
		change.UpdNode{Node: 5, Value: value.Int(2)},
		change.RemArc{Parent: 1, Label: "y", Child: 2},
	}
	c := Measure(set)
	if c.Creates != 1 || c.Adds != 1 || c.Updates != 1 || c.Removes != 1 || c.Total() != 4 {
		t.Errorf("Measure = %+v", c)
	}
}

// TestMatchingQualityMatchesIdentityFloor: on a realistic evolution with
// fresh ids, the default-threshold matcher should find a script no larger
// than a small multiple of the identity differ's (which knows the true
// object correspondence).
func TestMatchingQualityMatchesIdentityFloor(t *testing.T) {
	ev := guidegen.NewEvolver(5, 200)
	old := ev.DB.Clone()
	ev.Step(12)
	floor, err := DiffIdentity(old, ev.DB)
	if err != nil {
		t.Fatal(err)
	}
	fresh := reIDFull(t, ev.DB)
	set, err := Diff(old, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, want := Measure(set).Total(), Measure(floor).Total()
	if got > 2*want+4 {
		t.Errorf("matching script = %d ops, identity floor = %d — matcher quality regressed", got, want)
	}
	applyAndCheckIso(t, old, fresh, set)
}

// reIDFull re-copies db with fresh ids, preserving labels and structure.
func reIDFull(t *testing.T, db *oem.Database) *oem.Database {
	t.Helper()
	out := oem.New()
	remap := map[oem.NodeID]oem.NodeID{}
	var cp func(n oem.NodeID) oem.NodeID
	cp = func(n oem.NodeID) oem.NodeID {
		if id, ok := remap[n]; ok {
			return id
		}
		id := out.CreateNode(db.MustValue(n))
		remap[n] = id
		for _, a := range db.Out(n) {
			c := cp(a.Child)
			if err := out.AddArc(id, a.Label, c); err != nil {
				t.Fatal(err)
			}
		}
		return id
	}
	for _, a := range db.Out(db.Root()) {
		c := cp(a.Child)
		if err := out.AddArc(out.Root(), a.Label, c); err != nil {
			t.Fatal(err)
		}
	}
	return out
}
