package qss

import (
	"io"

	"repro/internal/obs"
)

// QSS metrics (see docs/observability.md). Per-subscription poll latency
// histograms are created at Subscribe time under
// qss_poll_ns{sub="<name>"}; everything else is service-wide.
var (
	mPolls         = obs.NewCounter("qss_polls_total")
	mPollFailures  = obs.NewCounter("qss_poll_failures_total")
	mNotifications = obs.NewCounter("qss_notifications_total")
	mRetries       = obs.NewCounter("qss_retries_total")
	mWireSent      = obs.NewCounter("qss_wire_sent_bytes_total")
	mWireRecv      = obs.NewCounter("qss_wire_recv_bytes_total")
)

// healthTransitionCounter returns the per-target-state transition counter
// (qss_health_transitions_total{to="degraded"} and friends). Registry
// creation is idempotent and transitions are rare, so looking it up at
// event time is fine.
func healthTransitionCounter(to Health) *obs.Counter {
	return obs.NewCounter(obs.LabeledName("qss_health_transitions_total", "to", to.String()))
}

// countingWriter feeds written byte counts into a counter (a no-op while
// observability is disabled).
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// countingReader is countingWriter's read-side twin.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}
