package plan_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/timestamp"
)

var stalenessQueries = []string{
	`select N from guide.restaurant R, R.name N where R.price < 20`,
	`select X from guide.restaurant R, R.# X, R.price P where P < 15`,
	`select N, T from guide.<add at T>restaurant R, R.name N`,
}

// reprepares reads the plan-cache re-preparation counter.
func reprepares() int64 {
	return obs.Snapshot().Counters["lorel_plan_reprepares_total"]
}

// checkFresh runs the staleness queries on the planning engine and the
// written-order reference, requiring identical output and at least one
// re-preparation when mutated is set.
func checkFresh(t *testing.T, stage string, mutated bool, on, off *lorel.Engine) {
	t.Helper()
	rep0 := reprepares()
	for _, q := range stalenessQueries {
		got, err := on.Query(q)
		if err != nil {
			t.Fatalf("%s: planned %q: %v", stage, q, err)
		}
		want, err := off.Query(q)
		if err != nil {
			t.Fatalf("%s: written-order %q: %v", stage, q, err)
		}
		if got.String() != want.String() {
			t.Fatalf("%s: stale plan served for %q:\nplanned:\n%s\nwritten order:\n%s",
				stage, q, got, want)
		}
	}
	if mutated && reprepares() == rep0 {
		t.Fatalf("%s: no cached plan re-prepared after mutation", stage)
	}
}

// TestPlannerStalenessIndexed: mutating the database under an index.Graph
// (with and without an explicit Invalidate) must re-prepare cached plans —
// the stats version the plan was costed against has moved.
func TestPlannerStalenessIndexed(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	for _, explicit := range []bool{false, true} {
		ev := guidegen.NewEvolver(17, 12)
		d := doem.New(ev.DB)
		ig := index.NewGraph(d)
		on := lorel.NewEngine()
		on.SetPlanning(true)
		on.Register("guide", ig)
		off := lorel.NewEngine()
		off.SetPlanning(false)
		off.Register("guide", ig)

		checkFresh(t, "initial", false, on, off)
		at := timestamp.MustParse("1Jan97")
		for i := 0; i < 5; i++ {
			set := ev.Step(6)
			if len(set) == 0 {
				continue
			}
			if err := d.Apply(at, set); err != nil {
				t.Fatalf("apply step %d: %v", i, err)
			}
			if explicit {
				ig.Invalidate()
			}
			checkFresh(t, fmt.Sprintf("explicit=%v step %d", explicit, i), true, on, off)
			at = at.Add(86400e9)
		}
	}
}

// TestPlannerStalenessSegmented: appending to and sealing a segmented
// store must re-prepare cached plans; sealing in particular swaps the
// active segment out from under the stats summary.
func TestPlannerStalenessSegmented(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	initial, h := guidegen.GenerateHistory(23, 10, 16, 5)
	st, err := segment.Create(filepath.Join(t.TempDir(), "store"), doem.New(initial), nil, nil)
	if err != nil {
		t.Fatalf("segment.Create: %v", err)
	}
	defer st.Close()

	half := len(h) / 2
	for i := 0; i < half; i++ {
		if err := st.Apply(h[i].At, h[i].Ops); err != nil {
			t.Fatalf("apply step %d: %v", i, err)
		}
	}

	on := lorel.NewEngine()
	on.SetPlanning(true)
	on.Register("guide", st.Graph())
	off := lorel.NewEngine()
	off.SetPlanning(false)
	off.Register("guide", st.Graph())

	checkFresh(t, "initial", false, on, off)
	for i := half; i < len(h); i++ {
		if err := st.Apply(h[i].At, h[i].Ops); err != nil {
			t.Fatalf("apply step %d: %v", i, err)
		}
		checkFresh(t, fmt.Sprintf("append step %d", i), true, on, off)
		if i%3 == 0 {
			if err := st.Seal(); err != nil {
				t.Fatalf("seal after step %d: %v", i, err)
			}
			checkFresh(t, fmt.Sprintf("seal after step %d", i), true, on, off)
		}
	}
}
