package index

import (
	"time"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/value"
)

// timestampDur converts whole seconds to the duration timestamp.Add takes.
func timestampDur(s int64) time.Duration { return time.Duration(s) * time.Second }

// mutationSet builds a small valid change set against d's current state:
// one new restaurant with a name, hung off the root.
func mutationSet(d *doem.Database) change.Set {
	r := d.MaxID() + 1
	nm := r + 1
	return change.Set{
		change.CreNode{Node: r, Value: value.Complex()},
		change.CreNode{Node: nm, Value: value.Str("Parity Cafe")},
		change.AddArc{Parent: d.Root(), Label: "restaurant", Child: r},
		change.AddArc{Parent: r, Label: "name", Child: nm},
	}
}
