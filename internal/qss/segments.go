package qss

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/oem"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/wal"
)

// Segmented subscription storage. With EnableSegments, every subscription's
// accumulated DOEM history lives in a time-partitioned segment store
// (internal/segment) instead of a monolithic in-memory database with a flat
// poll log: poll applications append to the active segment, filter queries
// evaluate over the store's merged graph (so `<at T>` resolution touches at
// most one sealed segment's index), and restart recovery replays only the
// active-segment tail regardless of total history size.
//
// The change steps themselves are durable in the segment store. The
// remaining per-subscription state — poll times, the source id remap, and
// the packaged-id high-water mark — rides in a small JSON sidecar file
// rewritten atomically on every poll, BEFORE the store append (see
// pollContext step 4). A crash between the two therefore recovers as a
// phantom silent poll: the poll time and id high-water mark are durable
// (ids are never reused), recovery prunes the remap entries whose packaged
// objects never made it into the store, and the changes the crashed poll
// observed simply surface at the next poll's own time — exactly as if the
// source had changed a moment later. The reverse window (store ahead of
// the sidecar) cannot arise from this ordering, but recovery still
// reconciles it defensively: step times newer than the sidecar's last poll
// time, and a newer seal boundary, are re-added to the poll times.

const (
	subSegExt  = ".subseg"
	subSideExt = ".subside"
)

// sideState is the serialized sidecar: subscription state that is not
// derivable from the segment store.
type sideState struct {
	Remap     map[uint64]uint64 `json:"remap,omitempty"`
	NextID    uint64            `json:"next_id"`
	PollTimes []string          `json:"poll_times,omitempty"`
}

// EnableSegments turns on segmented history storage under dir for all
// subscriptions registered afterwards. It must be called before Subscribe
// and is mutually exclusive with EnableWAL. opt configures the per-store
// active-segment tail log (nil for defaults); pol controls automatic
// sealing (nil never auto-seals).
func (s *Service) EnableSegments(dir string, opt *wal.Options, pol *segment.Policy) error {
	if dir == "" {
		return errors.New("qss: segments need a directory")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.subs) > 0 {
		return errors.New("qss: EnableSegments must precede Subscribe")
	}
	if s.walDir != "" {
		return errors.New("qss: EnableSegments is mutually exclusive with EnableWAL")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("qss: %w", err)
	}
	if opt == nil {
		opt = &wal.Options{}
	}
	s.segDir, s.segOpt, s.segPol = dir, opt, pol
	return nil
}

// attachSegments opens (or creates) the subscription's segment store and
// sidecar and rebuilds subscription state from them. Caller holds s.mu; st
// is not yet published.
func (s *Service) attachSegments(st *subState, name string) error {
	if strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("qss: subscription name %q not usable as a store directory", name)
	}
	segPath := filepath.Join(s.segDir, name+subSegExt)
	sidePath := filepath.Join(s.segDir, name+subSideExt)
	var store *segment.Store
	var err error
	if _, statErr := os.Stat(segPath); statErr == nil {
		store, err = segment.Open(segPath, s.segOpt, s.segPol)
	} else {
		// Fresh subscription: R0 is the empty OEM database (Section 6).
		store, err = segment.Create(segPath, st.d, s.segOpt, s.segPol)
	}
	if err != nil {
		return fmt.Errorf("qss: opening segments: %w", err)
	}
	st.seg = store
	st.sidePath = sidePath
	st.setDOEM(store.Active())

	last := timestamp.NegInf
	if data, err := os.ReadFile(sidePath); err == nil {
		var w sideState
		if err := json.Unmarshal(data, &w); err != nil {
			store.Close()
			return fmt.Errorf("qss: sidecar %s: %w", sidePath, err)
		}
		st.remap = make(map[oem.NodeID]oem.NodeID, len(w.Remap))
		for src, id := range w.Remap {
			st.remap[oem.NodeID(src)] = oem.NodeID(id)
		}
		if id := oem.NodeID(w.NextID); id > st.nextID {
			st.nextID = id
		}
		for _, ts := range w.PollTimes {
			t, err := timestamp.Parse(ts)
			if err != nil {
				store.Close()
				return fmt.Errorf("qss: sidecar %s: %w", sidePath, err)
			}
			st.pollTimes = append(st.pollTimes, t)
		}
		if n := len(st.pollTimes); n > 0 {
			last = st.pollTimes[n-1]
		}
	} else if !os.IsNotExist(err) {
		store.Close()
		return fmt.Errorf("qss: %w", err)
	}

	// Reconcile a poll the sidecar missed (crash between the store append
	// and the sidecar write): its step time is in the active segment, or it
	// became the seal boundary.
	var missed []timestamp.Time
	for _, ts := range st.d.Steps() {
		if ts.After(last) {
			missed = append(missed, ts)
		}
	}
	if ls := store.LastSeal(); ls.IsFinite() && ls.After(last) {
		missed = append(missed, ls)
	}
	if len(missed) > 0 {
		sort.Slice(missed, func(i, j int) bool { return missed[i].Before(missed[j]) })
		for _, ts := range missed {
			if n := len(st.pollTimes); n == 0 || ts.After(st.pollTimes[n-1]) {
				st.pollTimes = append(st.pollTimes, ts)
			}
		}
	}
	if m := store.MaxID(); m > st.nextID {
		st.nextID = m
	}
	st.pruneRemap()
	return nil
}

// reseedSegments rebuilds the subscription's on-disk segment store from
// st.d (used by ImportState, where the imported database supersedes the
// stored history wholesale). Caller holds st.mu.
func (s *Service) reseedSegments(st *subState) error {
	dir := st.seg.Dir()
	if err := st.seg.Close(); err != nil {
		return fmt.Errorf("qss: import: %w", err)
	}
	st.seg = nil
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("qss: import: %w", err)
	}
	store, err := segment.Create(dir, st.d, s.segOpt, s.segPol)
	if err != nil {
		return fmt.Errorf("qss: import: %w", err)
	}
	st.seg = store
	st.setDOEM(store.Active())
	return st.saveSidecar()
}

// saveSidecar atomically persists the subscription's non-store state; the
// subscription's mu must be held.
func (st *subState) saveSidecar() error {
	w := sideState{NextID: uint64(st.nextID)}
	w.Remap = make(map[uint64]uint64, len(st.remap))
	for src, id := range st.remap {
		w.Remap[uint64(src)] = uint64(id)
	}
	for _, t := range st.pollTimes {
		w.PollTimes = append(w.PollTimes, t.String())
	}
	data, err := json.Marshal(w)
	if err != nil {
		return fmt.Errorf("qss: sidecar: %w", err)
	}
	tmp := st.sidePath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("qss: sidecar: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("qss: sidecar: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("qss: sidecar: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("qss: sidecar: %w", err)
	}
	if err := os.Rename(tmp, st.sidePath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("qss: sidecar: %w", err)
	}
	return nil
}
