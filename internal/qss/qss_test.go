package qss

import (
	"errors"
	"testing"

	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wrapper"
)

// paperSource builds the mutable Guide source of Example 6.1, plus the ids
// for mutating it.
func paperSource(t testing.TB) (*wrapper.Mutable, *guidegen.PaperIDs) {
	t.Helper()
	db, ids := guidegen.PaperGuide()
	return wrapper.NewMutable(db), ids
}

// TestPaperExample61 replays the paper's QSS timeline exactly:
//
//	t1 = 30Dec96: both restaurants are new -> notified of both
//	t2 = 31Dec96: no change              -> no notification
//	t3 = 1Jan97:  Hakata added           -> notified of Hakata only
func TestPaperExample61(t *testing.T) {
	src, ids := paperSource(t)
	var delivered []Notification
	svc := NewService(func(n Notification) { delivered = append(delivered, n) })

	err := svc.Subscribe(Subscription{
		Name:       "Restaurants",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant`,
		Filter:     `select Restaurants.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}

	// t1: initial poll. R0 = empty, so both restaurants carry cre(t1) and
	// t[-1] = -inf: both are reported.
	n1, err := svc.Poll("Restaurants", timestamp.MustParse("30Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	if n1 == nil {
		t.Fatal("t1: expected a notification")
	}
	if got := n1.Result.Len(); got != 2 {
		t.Fatalf("t1: %d results, want 2 (both initial restaurants)\n%s", got, n1.Result)
	}

	// t2: nothing changed; cre annotations now predate t[-1] = t1.
	n2, err := svc.Poll("Restaurants", timestamp.MustParse("31Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != nil {
		t.Fatalf("t2: unexpected notification:\n%s", n2.Result)
	}

	// Before t3: Hakata is added to the source (Example 2.2's change).
	err = src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "name", nm)
	})
	if err != nil {
		t.Fatal(err)
	}

	// t3: exactly the new restaurant is reported.
	n3, err := svc.Poll("Restaurants", timestamp.MustParse("1Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n3 == nil {
		t.Fatal("t3: expected a notification")
	}
	if got := n3.Result.Len(); got != 1 {
		t.Fatalf("t3: %d results, want 1 (Hakata)\n%s", got, n3.Result)
	}
	// The notification's materialized answer contains the Hakata name.
	ans := n3.Answer
	rests := ans.OutLabeled(ans.Root(), "restaurant")
	if len(rests) != 1 {
		t.Fatalf("answer restaurants = %d", len(rests))
	}
	names := ans.OutLabeled(rests[0].Child, "name")
	if len(names) != 1 || !ans.MustValue(names[0].Child).Equal(value.Str("Hakata")) {
		t.Error("answer does not carry the Hakata name subobject")
	}

	// Delivery callback saw the two notifications.
	if len(delivered) != 2 {
		t.Errorf("delivered = %d notifications, want 2", len(delivered))
	}

	// The accumulated history has steps at t1 and t3 only (t2 was a no-op).
	d, times, err := svc.History("Restaurants")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Errorf("poll times = %d, want 3", len(times))
	}
	if got := len(d.Steps()); got != 2 {
		t.Errorf("history steps = %d, want 2", got)
	}
	if !d.Feasible() {
		t.Error("accumulated DOEM database infeasible")
	}
}

// TestLyttonSubscription runs the paper's Section 6 polling/filter pair
// (restaurants with Lytton in their address).
func TestLyttonSubscription(t *testing.T) {
	src, ids := paperSource(t)
	svc := NewService(nil)
	err := svc.Subscribe(Subscription{
		Name:       "LyttonRestaurants",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant where guide.restaurant.address.# like "%Lytton%"`,
		Filter:     `select LyttonRestaurants.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}
	n1, err := svc.Poll("LyttonRestaurants", timestamp.MustParse("30Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	// Both paper restaurants have Lytton addresses.
	if n1 == nil || n1.Result.Len() != 2 {
		t.Fatalf("t1 notification = %v", n1)
	}
	// Add a restaurant NOT on Lytton: no notification.
	err = src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		ad := db.CreateNode(value.Str("500 University"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "address", ad)
	})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := svc.Poll("LyttonRestaurants", timestamp.MustParse("31Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != nil {
		t.Fatalf("non-Lytton restaurant triggered notification:\n%s", n2.Result)
	}
	// Add one ON Lytton: notified.
	err = src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		ad := db.CreateNode(value.Str("230 Lytton"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "address", ad)
	})
	if err != nil {
		t.Fatal(err)
	}
	n3, err := svc.Poll("LyttonRestaurants", timestamp.MustParse("1Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n3 == nil || n3.Result.Len() != 1 {
		t.Fatalf("t3 notification = %v", n3)
	}
}

// TestValueChangeSurfacesAsUpdate: a price change in the source becomes an
// upd annotation queryable through the filter.
func TestValueChangeSurfacesAsUpdate(t *testing.T) {
	src, ids := paperSource(t)
	svc := NewService(nil)
	err := svc.Subscribe(Subscription{
		Name:       "Prices",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant`,
		Filter: `select N, NV from Prices.restaurant R, R.name N, R.price<upd at T to NV>
			where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("Prices", timestamp.MustParse("30Dec96")); err != nil {
		t.Fatal(err)
	}
	if err := src.Mutate(func(db *oem.Database) error {
		return db.UpdateNode(ids.Price, value.Int(20))
	}); err != nil {
		t.Fatal(err)
	}
	n, err := svc.Poll("Prices", timestamp.MustParse("31Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	if n == nil || n.Result.Len() != 1 {
		t.Fatalf("price-update notification = %v", n)
	}
	names := n.Result.Values("name")
	nvs := n.Result.Values("new-value")
	if len(names) != 1 || !names[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("names = %v", names)
	}
	if len(nvs) != 1 || !nvs[0].Equal(value.Int(20)) {
		t.Errorf("new values = %v", nvs)
	}
}

// TestUnstableSourceUsesMatchingDiff: the same timeline with id-unstable
// snapshots still produces correct creation notifications.
func TestUnstableSourceUsesMatchingDiff(t *testing.T) {
	inner, ids := paperSource(t)
	src := wrapper.Unstable{Inner: inner}
	svc := NewService(nil)
	err := svc.Subscribe(Subscription{
		Name:       "Restaurants",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant`,
		Filter:     `select Restaurants.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}
	n1, err := svc.Poll("Restaurants", timestamp.MustParse("30Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	if n1 == nil || n1.Result.Len() != 2 {
		t.Fatalf("t1 = %v", n1)
	}
	// Unchanged source: the matching differ must find nothing new.
	n2, err := svc.Poll("Restaurants", timestamp.MustParse("31Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != nil {
		t.Fatalf("matching diff hallucinated changes:\n%s", n2.Result)
	}
	// Adding a distinctive restaurant is detected as a creation.
	err = inner.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "name", nm)
	})
	if err != nil {
		t.Fatal(err)
	}
	n3, err := svc.Poll("Restaurants", timestamp.MustParse("1Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n3 == nil || n3.Result.Len() != 1 {
		t.Fatalf("t3 = %v", n3)
	}
}

// TestDisappearReappear: an object that leaves the result and returns gets
// a fresh identity (ids are never reused).
func TestDisappearReappear(t *testing.T) {
	src, ids := paperSource(t)
	svc := NewService(nil)
	err := svc.Subscribe(Subscription{
		Name:       "R",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant`,
		Filter:     `select R.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("R", timestamp.MustParse("1Jan97")); err != nil {
		t.Fatal(err)
	}
	// Remove Janta from the source.
	var jantaArc oem.Arc
	if err := src.Mutate(func(db *oem.Database) error {
		for _, a := range db.OutLabeled(ids.Guide, "restaurant") {
			if a.Child == ids.Janta {
				jantaArc = a
			}
		}
		return db.RemoveArc(jantaArc.Parent, jantaArc.Label, jantaArc.Child)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("R", timestamp.MustParse("2Jan97")); err != nil {
		t.Fatal(err)
	}
	// Bring Janta back: QSS must treat it as a new object.
	if err := src.Mutate(func(db *oem.Database) error {
		return db.AddArc(jantaArc.Parent, jantaArc.Label, jantaArc.Child)
	}); err != nil {
		t.Fatal(err)
	}
	n, err := svc.Poll("R", timestamp.MustParse("3Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n == nil || n.Result.Len() != 1 {
		t.Fatalf("reappearance = %v, want 1 creation", n)
	}
	d, _, _ := svc.History("R")
	if !d.Feasible() {
		t.Error("history with reappearance infeasible")
	}
}

func TestSubscribeValidation(t *testing.T) {
	src, _ := paperSource(t)
	svc := NewService(nil)
	base := Subscription{Name: "x", Source: src, Polling: "select a.b", Filter: "select c.d"}

	bad := base
	bad.Name = ""
	if err := svc.Subscribe(bad); err == nil {
		t.Error("empty name accepted")
	}
	bad = base
	bad.Source = nil
	if err := svc.Subscribe(bad); err == nil {
		t.Error("nil source accepted")
	}
	bad = base
	bad.Polling = "not a query"
	if err := svc.Subscribe(bad); err == nil {
		t.Error("bad polling query accepted")
	}
	bad = base
	bad.Filter = "select"
	if err := svc.Subscribe(bad); err == nil {
		t.Error("bad filter query accepted")
	}
	if err := svc.Subscribe(base); err != nil {
		t.Fatal(err)
	}
	if err := svc.Subscribe(base); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	if err := svc.Unsubscribe("x"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Unsubscribe("x"); !errors.Is(err, ErrNoSuchSub) {
		t.Errorf("double unsubscribe: %v", err)
	}
}

func TestPollGuards(t *testing.T) {
	src, _ := paperSource(t)
	svc := NewService(nil)
	if _, err := svc.Poll("nope", timestamp.MustParse("1Jan97")); !errors.Is(err, ErrNoSuchSub) {
		t.Errorf("poll missing sub: %v", err)
	}
	err := svc.Subscribe(Subscription{
		Name: "g", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`, Filter: `select g.restaurant`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("g", timestamp.MustParse("2Jan97")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("g", timestamp.MustParse("2Jan97")); !errors.Is(err, ErrStalePoll) {
		t.Errorf("stale poll: %v", err)
	}
	if _, err := svc.Poll("g", timestamp.MustParse("1Jan97")); !errors.Is(err, ErrStalePoll) {
		t.Errorf("backwards poll: %v", err)
	}
}

// TestPollingQueryChangeDetection exercises the multi-step scenario where
// the *result of the polling query* changes because an attribute changed,
// not membership: the Lytton filter sees a restaurant whose address moves
// onto Lytton.
func TestAddressMoveEntersResult(t *testing.T) {
	src, ids := paperSource(t)
	svc := NewService(nil)
	err := svc.Subscribe(Subscription{
		Name:       "Lytton",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant where guide.restaurant.address.# like "%Lytton%"`,
		Filter:     `select Lytton.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("Lytton", timestamp.MustParse("1Jan97")); err != nil {
		t.Fatal(err)
	}
	// Janta's address changes away from Lytton: it leaves the result.
	if err := src.Mutate(func(db *oem.Database) error {
		return db.UpdateNode(ids.JantaAddr, value.Str("500 University"))
	}); err != nil {
		t.Fatal(err)
	}
	n, err := svc.Poll("Lytton", timestamp.MustParse("2Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n != nil {
		t.Fatalf("departure triggered creation notification: %v", n.Result)
	}
	// And it moves back: it re-enters as a new object.
	if err := src.Mutate(func(db *oem.Database) error {
		return db.UpdateNode(ids.JantaAddr, value.Str("120 Lytton"))
	}); err != nil {
		t.Fatal(err)
	}
	n, err = svc.Poll("Lytton", timestamp.MustParse("3Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n == nil || n.Result.Len() != 1 {
		t.Fatalf("re-entry = %v, want 1", n)
	}
}

// Tiny sanity check that History on an unknown name errors.
func TestHistoryMissing(t *testing.T) {
	svc := NewService(nil)
	if _, _, err := svc.History("ghost"); !errors.Is(err, ErrNoSuchSub) {
		t.Errorf("History: %v", err)
	}
}
