package lore

import "repro/internal/obs"

// Store metrics (see docs/observability.md).
var (
	mApplies       = obs.NewCounter("lore_apply_total")
	mApplyNs       = obs.NewHistogram("lore_apply_ns")
	mCheckpoints   = obs.NewCounter("lore_checkpoint_total")
	mCheckpointNs  = obs.NewHistogram("lore_checkpoint_ns")
	mApplyFailures = obs.NewCounter("lore_apply_failures_total")

	// Recovery observability: how long opening a store spent replaying
	// persisted history (WAL tails and segment stores) and how many log
	// records that covered.
	mReplayNs      = obs.NewHistogram("lore_open_replay_ns")
	mReplayRecords = obs.NewCounter("lore_open_replay_records_total")
)
