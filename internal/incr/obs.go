package incr

import "repro/internal/obs"

// Package-level counters on the default registry, following the
// <subsystem>_<thing>_total convention documented in
// docs/observability.md.
var (
	// mExtracts counts fingerprint extractions (one per Subscribe /
	// trigger Add, plus re-extractions after replica adoption).
	mExtracts = obs.NewCounter("incr_fingerprints_total")
	// mUnanalyzable counts extractions that fell back to the
	// always-evaluate fingerprint.
	mUnanalyzable = obs.NewCounter("incr_unanalyzable_total")
	// mDecisions counts per-subscription skip/evaluate decisions.
	mDecisions = obs.NewCounter("incr_decisions_total")
	// mSkips counts evaluations suppressed as provably empty.
	mSkips = obs.NewCounter("incr_skips_total")
	// mEvals counts decisions that fell through to full evaluation.
	mEvals = obs.NewCounter("incr_evals_total")
	// mProbes counts inverted-index probes (one per applied change set).
	mProbes = obs.NewCounter("incr_probes_total")
	// mProbeHits counts subscription ids returned by probes.
	mProbeHits = obs.NewCounter("incr_probe_hits_total")
	// mWalkBudget counts backward prefix walks abandoned over budget
	// (each such walk conservatively reports a match).
	mWalkBudget = obs.NewCounter("incr_walk_budget_exceeded_total")
)
