package plan

import (
	"strings"
	"testing"
)

// specOf builds a Spec from shorthand; all gens strict unless marked.
func specOf(gens []GenSpec, conjs []ConjSpec) *Spec {
	return &Spec{Gens: gens, Conjs: conjs}
}

// TestGreedyReordersSelectiveFirst: a wide subtree generator written first
// and a narrow, predicated label generator second must swap when the
// estimated saving clears the threshold.
func TestGreedyReordersSelectiveFirst(t *testing.T) {
	s := specOf(
		[]GenSpec{
			{Var: "X", Source: "guide.#", Strict: true, Kind: KindHash, Root: true},
			{Var: "P", Source: "guide.price", Strict: true, Kind: KindLabel, Root: true,
				Card: Card{Known: true, Nodes: 1000, Arcs: 3000, Label: LabelCard{RootOut: 2, Parents: 2, Arcs: 2}}},
		},
		[]ConjSpec{{Text: "P < 8", Deps: []int{1}, Kind: PredRange}},
	)
	pl := Prepare(s)
	if !pl.Reordered {
		t.Fatalf("expected reordering; plan: %v", pl.Notes)
	}
	if pl.Order[0] != 1 || pl.Order[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", pl.Order)
	}
	if pl.CostChosen >= pl.CostWritten {
		t.Fatalf("chosen cost %.4g not below written %.4g", pl.CostChosen, pl.CostWritten)
	}
	if pl.CostWritten < pl.CostChosen*ReorderThreshold {
		t.Fatalf("reordered below threshold: written %.4g, chosen %.4g", pl.CostWritten, pl.CostChosen)
	}
}

// TestThresholdKeepsWrittenOrder: when two generators have close fanouts,
// the marginal saving from swapping them must not trigger rank-restoring
// emission.
func TestThresholdKeepsWrittenOrder(t *testing.T) {
	s := specOf(
		[]GenSpec{
			{Var: "A", Strict: true, Kind: KindLabel, Root: true,
				Card: Card{Known: true, Nodes: 100, Arcs: 300, Label: LabelCard{RootOut: 3}}},
			{Var: "B", Strict: true, Kind: KindLabel, Root: true,
				Card: Card{Known: true, Nodes: 100, Arcs: 300, Label: LabelCard{RootOut: 2}}},
		},
		nil,
	)
	pl := Prepare(s)
	if pl.Reordered {
		t.Fatalf("marginal swap reordered anyway: %v", pl.Notes)
	}
	if pl.Order[0] != 0 || pl.Order[1] != 1 {
		t.Fatalf("order = %v, want written [0 1]", pl.Order)
	}
	// The written-order cost is reported under the same model.
	if pl.CostWritten >= pl.CostChosen*ReorderThreshold {
		t.Fatalf("threshold should have blocked this: written %.4g, chosen %.4g",
			pl.CostWritten, pl.CostChosen)
	}
}

// TestPushdownPlacement: constant conjuncts land in Push[0]; each variable
// conjunct lands at the earliest position where its deps are bound.
func TestPushdownPlacement(t *testing.T) {
	s := specOf(
		[]GenSpec{
			{Var: "R", Strict: true, Kind: KindLabel, Root: true},
			{Var: "P", Strict: true, Kind: KindLabel, Deps: []int{0}},
		},
		[]ConjSpec{
			{Text: "1 < 2", Deps: nil, Kind: PredRange},         // constant
			{Text: "R = x", Deps: []int{0}, Kind: PredEq},       // after R
			{Text: "P < R", Deps: []int{0, 1}, Kind: PredRange}, // after both
			{Text: "P like y", Deps: []int{1}, Kind: PredLike},  // after P
		},
	)
	pl := Prepare(s)
	if len(pl.Push[0]) != 1 || pl.Push[0][0] != 0 {
		t.Fatalf("Push[0] = %v, want [0]", pl.Push[0])
	}
	if len(pl.Push[1]) != 1 || pl.Push[1][0] != 1 {
		t.Fatalf("Push[1] = %v, want [1]", pl.Push[1])
	}
	if len(pl.Push[2]) != 2 {
		t.Fatalf("Push[2] = %v, want conjuncts 2 and 3", pl.Push[2])
	}
}

// TestDependencyOrderRespected: a generator can never be placed before one
// it depends on, however selective it looks.
func TestDependencyOrderRespected(t *testing.T) {
	s := specOf(
		[]GenSpec{
			{Var: "R", Strict: true, Kind: KindHash, Root: true}, // expensive
			{Var: "N", Strict: true, Kind: KindHead, Deps: []int{0}},
		},
		[]ConjSpec{{Text: "N = 1", Deps: []int{1}, Kind: PredEq}},
	)
	pl := Prepare(s)
	posR, posN := -1, -1
	for p, gi := range pl.Order {
		switch gi {
		case 0:
			posR = p
		case 1:
			posN = p
		}
	}
	if posN < posR {
		t.Fatalf("dependent generator placed first: order %v", pl.Order)
	}
}

// TestExistentialReorderNotFlagged: moving only existential generators
// never sets Reordered — their bindings cannot reach the select clause.
func TestExistentialReorderNotFlagged(t *testing.T) {
	s := specOf(
		[]GenSpec{
			{Var: "R", Strict: true, Kind: KindLabel, Root: true},
			{Var: "X", Strict: false, Kind: KindHash, Deps: []int{0}},
			{Var: "P", Strict: false, Kind: KindLabel, Deps: []int{0},
				Card: Card{Known: true, Nodes: 100, Arcs: 100, Label: LabelCard{Parents: 100, Arcs: 100}}},
		},
		[]ConjSpec{{Text: "P < 8", Deps: []int{2}, Kind: PredRange}},
	)
	pl := Prepare(s)
	if pl.Reordered {
		t.Fatalf("existential-only reorder flagged as Reordered: %v", pl.Notes)
	}
	if pl.NStrict != 1 || pl.Order[0] != 0 {
		t.Fatalf("strict block broken: order %v nstrict %d", pl.Order, pl.NStrict)
	}
	// The cheap existential should come before the expensive one.
	if pl.Order[1] != 2 || pl.Order[2] != 1 {
		t.Fatalf("existential block not reordered by cost: %v", pl.Order)
	}
}

// TestFanoutDefaults: without statistics the structural defaults must rank
// head < label < glob < subtree, so written-order queries over unknown
// graphs still get sane pushdown positions.
func TestFanoutDefaults(t *testing.T) {
	kinds := []StepKind{KindHead, KindLabel, KindGlob, KindHash}
	prev := -1.0
	for _, k := range kinds {
		f := fanout(&GenSpec{Kind: k, Root: true})
		if f <= prev {
			t.Fatalf("default fanout not increasing at %s: %g <= %g", k, f, prev)
		}
		prev = f
	}
	if fanout(&GenSpec{Kind: KindHash, Root: true}) <= fanout(&GenSpec{Kind: KindHash}) {
		t.Fatal("root subtree should be costlier than a variable-headed one")
	}
}

// TestSelectivityDefaults pins the textbook constants EXPLAIN reports are
// derived from.
func TestSelectivityDefaults(t *testing.T) {
	if !(selectivity(PredEq) < selectivity(PredLike) &&
		selectivity(PredLike) < selectivity(PredRange) &&
		selectivity(PredRange) < selectivity(PredOther)) {
		t.Fatal("selectivity defaults out of order: want eq < like < range < other")
	}
}

// TestDescribeMentionsDecisions: the EXPLAIN lines name the join order,
// the pushed predicates, and the estimate totals.
func TestDescribeMentionsDecisions(t *testing.T) {
	s := specOf(
		[]GenSpec{
			{Var: "R", Source: "guide.restaurant", Strict: true, Kind: KindLabel, Root: true},
			{Var: "P", Source: "R.price", Strict: true, Kind: KindLabel, Deps: []int{0}},
		},
		[]ConjSpec{{Text: "P < 8", Deps: []int{1}, Kind: PredRange}},
	)
	pl := Prepare(s)
	joined := strings.Join(pl.Notes, "\n")
	for _, want := range []string{"join order: R -> P", "push: P < 8", "est tuples:", "guide.restaurant"} {
		if !strings.Contains(joined, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, joined)
		}
	}
}

// TestCardOf merges the per-label slice into the database summary.
func TestCardOf(t *testing.T) {
	st := fakeStats{
		nodes: 10, arcs: 20, annots: 5,
		labels: map[string]LabelCard{"price": {Parents: 4, Arcs: 4}},
	}
	c := CardOf(st, "price")
	if !c.Known || c.Nodes != 10 || c.Arcs != 20 || c.Annots != 5 || c.Label.Parents != 4 {
		t.Fatalf("CardOf = %+v", c)
	}
}

type fakeStats struct {
	nodes, arcs, annots int
	labels              map[string]LabelCard
}

func (f fakeStats) StatsVersion() uint64 { return 1 }
func (f fakeStats) NodeCount() int       { return f.nodes }
func (f fakeStats) ArcCount() int        { return f.arcs }
func (f fakeStats) AnnotCount() int      { return f.annots }
func (f fakeStats) LabelStats(l string) LabelCard {
	return f.labels[l]
}
