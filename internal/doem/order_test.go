package doem

import (
	"testing"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// orderBase builds the fixture the permutation tests mutate: a root with
// two children, one of which will be updated and one unlinked.
func orderBase(t *testing.T) *oem.Database {
	t.Helper()
	o := oem.New()
	n1, n2 := oem.NodeID(11), oem.NodeID(12)
	if err := o.CreateNodeWithID(n1, value.Int(3)); err != nil {
		t.Fatal(err)
	}
	if err := o.CreateNodeWithID(n2, value.Str("old")); err != nil {
		t.Fatal(err)
	}
	if err := o.AddArc(o.Root(), "a", n1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddArc(o.Root(), "old", n2); err != nil {
		t.Fatal(err)
	}
	return o
}

// permutations returns every ordering of ops (n! — keep n small).
func permutations(ops change.Set) []change.Set {
	if len(ops) <= 1 {
		return []change.Set{append(change.Set(nil), ops...)}
	}
	var out []change.Set
	for i := range ops {
		rest := make(change.Set, 0, len(ops)-1)
		rest = append(rest, ops[:i]...)
		rest = append(rest, ops[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append(change.Set{ops[i]}, p...))
		}
	}
	return out
}

// TestApplyOrderIndependence asserts Def. 2.2: the operations of one
// change set have no intrinsic order, so every permutation of the set must
// produce an identical DOEM database — identical annotations, identical
// O_t(D) at every instant.
func TestApplyOrderIndependence(t *testing.T) {
	tApply := timestamp.MustParse("5Jan97")
	n5 := oem.NodeID(50)
	set := change.Set{
		change.CreNode{Node: n5, Value: value.Str("new")},
		change.AddArc{Parent: oem.NodeID(1), Label: "x", Child: n5},
		change.UpdNode{Node: oem.NodeID(11), Value: value.Int(9)},
		change.RemArc{Parent: oem.NodeID(1), Label: "old", Child: oem.NodeID(12)},
	}

	var ref *Database
	checkTimes := []timestamp.Time{
		timestamp.NegInf, tApply.Add(-1e9), tApply, tApply.Add(1e9), timestamp.PosInf,
	}
	for i, perm := range permutations(set) {
		d := New(orderBase(t))
		if err := d.Apply(tApply, perm); err != nil {
			t.Fatalf("permutation %d: %v", i, err)
		}
		if ref == nil {
			ref = d
			continue
		}
		if !d.Equal(ref) {
			t.Fatalf("permutation %d: DOEM database differs from permutation 0:\n%s\nvs\n%s", i, d, ref)
		}
		for _, at := range checkTimes {
			if !d.SnapshotAt(at).Equal(ref.SnapshotAt(at)) {
				t.Fatalf("permutation %d: O_t(D) differs at %s", i, at)
			}
		}
	}
}

// TestApplyCreThenUpdSameSetRejected pins the invariant the order audit
// leans on: creating and updating one node in the same change set is
// rejected — in every input order. If a cre+upd pair were admitted, the
// upd annotation's old value would be captured from a node that does not
// exist in the pre-step snapshot and the annotation trail would hold two
// node annotations at one timestamp, so order independence (Def. 2.2)
// depends on this rejection staying order-independent itself.
func TestApplyCreThenUpdSameSetRejected(t *testing.T) {
	tApply := timestamp.MustParse("5Jan97")
	n5 := oem.NodeID(50)
	base := change.Set{
		change.CreNode{Node: n5, Value: value.Str("v1")},
		change.UpdNode{Node: n5, Value: value.Str("v2")},
		change.AddArc{Parent: oem.NodeID(1), Label: "x", Child: n5},
	}
	for i, perm := range permutations(base) {
		d := New(orderBase(t))
		before := d.Version()
		if err := d.Apply(tApply, perm); err == nil {
			t.Fatalf("permutation %d: cre+upd of one node in a single set was not rejected", i)
		}
		if d.Version() != before {
			t.Fatalf("permutation %d: failed Apply advanced the version counter", i)
		}
		if d.Has(n5) {
			t.Fatalf("permutation %d: failed Apply leaked node %s into the database", i, n5)
		}
	}
}
