package lore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func paperDOEM(t testing.TB) *doem.Database {
	t.Helper()
	db, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(db, guidegen.PaperHistory(ids))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInMemoryStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	db, _ := guidegen.PaperGuide()
	if err := s.PutOEM("guide", db); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db) {
		t.Error("stored database differs")
	}
	if _, err := s.GetOEM("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing db: %v", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := guidegen.PaperGuide()
	d := paperDOEM(t)
	if err := s.PutOEM("guide", db); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDOEM("guide-history", d); err != nil {
		t.Fatal(err)
	}

	// Reopen and compare.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db) {
		t.Error("OEM database changed across restart")
	}
	gd, err := s2.GetDOEM("guide-history")
	if err != nil {
		t.Fatal(err)
	}
	if !gd.Equal(d) {
		t.Error("DOEM database changed across restart")
	}
}

func TestListAndDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := guidegen.PaperGuide()
	if err := s.PutOEM("b", db); err != nil {
		t.Fatal(err)
	}
	if err := s.PutOEM("a", db); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDOEM("a", paperDOEM(t)); err != nil {
		t.Fatal(err)
	}
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("List = %v", list)
	}
	if list[0].Name != "a" || list[0].Kind != "doem" || list[2].Name != "b" {
		t.Errorf("List order = %v", list)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if len(s.List()) != 1 {
		t.Error("Delete left entries behind")
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	// Files are gone too.
	if _, err := os.Stat(filepath.Join(dir, "a.oem.json")); !os.IsNotExist(err) {
		t.Error("oem file survived delete")
	}
}

func TestInvalidNames(t *testing.T) {
	s, _ := Open("")
	db, _ := guidegen.PaperGuide()
	for _, name := range []string{"", "a/b", `a\b`, ".hidden"} {
		if err := s.PutOEM(name, db); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestLabelIndex(t *testing.T) {
	db, _ := guidegen.PaperGuide()
	ix := BuildLabelIndex(db)
	if got := len(ix.Arcs("restaurant")); got != 2 {
		t.Errorf("restaurant arcs = %d, want 2", got)
	}
	if got := len(ix.Arcs("nosuch")); got != 0 {
		t.Errorf("nosuch arcs = %d", got)
	}
	labels := ix.Labels()
	if len(labels) == 0 || labels[0] > labels[len(labels)-1] {
		t.Error("labels not sorted")
	}
}

func TestValueIndex(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	ix := BuildValueIndex(db)
	nodes := ix.Nodes(value.Str("Janta"))
	if len(nodes) != 1 || nodes[0] != ids.JantaName {
		t.Errorf("Janta nodes = %v", nodes)
	}
	if len(ix.Nodes(value.Int(999))) != 0 {
		t.Error("phantom value indexed")
	}
}

func TestAnnotationIndex(t *testing.T) {
	d := paperDOEM(t)
	ix := BuildAnnotationIndex(d)
	if ix.Size() != 8 {
		t.Errorf("index size = %d, want 8", ix.Size())
	}
	// Created in (31Dec96, 4Jan97]: the two nodes created at t1.
	got := ix.CreatedIn(timestamp.MustParse("31Dec96"), timestamp.MustParse("4Jan97"))
	if len(got) != 2 {
		t.Errorf("created in window = %v, want 2 nodes", got)
	}
	// Created in (4Jan97, +inf]: the comment node at t2.
	got = ix.CreatedIn(timestamp.MustParse("4Jan97"), timestamp.PosInf)
	if len(got) != 1 {
		t.Errorf("created after 4Jan97 = %v, want 1", got)
	}
	// Boundary semantics: (from, to] excludes from itself.
	got = ix.CreatedIn(guidegen.T1, timestamp.PosInf)
	if len(got) != 1 {
		t.Errorf("created strictly after t1 = %v, want 1 (comment)", got)
	}
	// Updates, adds, removes.
	if got := ix.UpdatedIn(timestamp.NegInf, timestamp.PosInf); len(got) != 1 {
		t.Errorf("updated nodes = %v", got)
	}
	if got := ix.AddedIn(timestamp.NegInf, timestamp.PosInf); len(got) != 3 {
		t.Errorf("added arcs = %v", got)
	}
	if got := ix.RemovedIn(timestamp.NegInf, timestamp.PosInf); len(got) != 1 {
		t.Errorf("removed arcs = %v", got)
	}
	// Empty range.
	if got := ix.AddedIn(timestamp.MustParse("1Feb97"), timestamp.PosInf); len(got) != 0 {
		t.Errorf("adds after history end = %v", got)
	}
}

func TestAnnotationIndexReachesDeletedNodes(t *testing.T) {
	// Annotations on arcs to nodes deleted from the current snapshot must
	// still be indexed (they are reachable through rem-annotated arcs).
	db := oem.New()
	n := db.CreateNode(value.Str("x"))
	if err := db.AddArc(db.Root(), "x", n); err != nil {
		t.Fatal(err)
	}
	d := doem.New(db)
	if err := d.Apply(timestamp.MustParse("1Jan97"), removeArcSet(db.Root(), "x", n)); err != nil {
		t.Fatal(err)
	}
	ix := BuildAnnotationIndex(d)
	if got := ix.RemovedIn(timestamp.NegInf, timestamp.PosInf); len(got) != 1 {
		t.Errorf("removed arcs = %v", got)
	}
}
