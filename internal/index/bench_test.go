package index

import (
	"fmt"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/lorel"
)

// benchDB builds a synthetic guide whose history carries roughly the
// requested number of annotations.
func benchDB(b *testing.B, annots int) *doem.Database {
	b.Helper()
	steps := annots / 8
	if steps < 1 {
		steps = 1
	}
	initial, h := guidegen.GenerateHistory(9, 40, steps, 10)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkIndexedEval compares repeated evaluation of the hot query
// shapes the indexes target — a <at T> snapshot query and an exact-label
// annotation query — through the indexed wrapper vs the raw database.
func BenchmarkIndexedEval(b *testing.B) {
	for _, tier := range []struct {
		name   string
		annots int
	}{
		{"1k", 1000},
		{"10k", 10000},
	} {
		d := benchDB(b, tier.annots)
		steps := d.Steps()
		at := steps[len(steps)/2]
		queries := []string{
			// Time-travelled values: every price node's upd chain is
			// consulted — binary search + view cache vs linear scans.
			fmt.Sprintf(`select P from guide.<at %q>restaurant.price P where P < 20`, at.String()),
			fmt.Sprintf(`select guide.<at %q>restaurant.name`, at.String()),
		}
		for _, mode := range []string{"indexed", "noindex"} {
			b.Run(tier.name+"/"+mode, func(b *testing.B) {
				eng := lorel.NewEngine()
				if mode == "indexed" {
					eng.Register("guide", NewGraph(d))
				} else {
					eng.Register("guide", d)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, q := range queries {
						if _, err := eng.Query(q); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
