package incr

import (
	"os"
	"sync/atomic"
)

// disabled flips the package-wide default from incremental matching back
// to unconditional full evaluation. It is consulted by qss.NewService and
// trigger.NewManager, so services constructed after SetEnabled(false)
// evaluate every subscription on every tick exactly as before this
// package existed; already-constructed instances can be switched with
// their own SetIncremental methods.
var disabled atomic.Bool

func init() {
	if v := os.Getenv("REPRO_NOINCREMENTAL"); v != "" && v != "0" {
		disabled.Store(true)
	}
}

// Enabled reports whether new services use incremental matching by
// default. The default is true; it is false when the REPRO_NOINCREMENTAL
// environment variable is set to a non-empty value other than "0", or
// after SetEnabled(false).
func Enabled() bool { return !disabled.Load() }

// SetEnabled flips the package-wide default and returns the previous
// value, for -noincremental style flags and tests.
func SetEnabled(on bool) (prev bool) {
	return !disabled.Swap(!on)
}
