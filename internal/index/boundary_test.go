package index

import (
	"fmt"
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// boundaryFixture builds a small history with every annotation kind:
//
//	O_0:  root --init--> n3 (value 7)
//	t1:   cre n2 (value 1), add root --item--> n2
//	t2:   upd n2 to 2
//	t3:   rem root --item--> n2, rem root --init--> n3
//	t4:   add root --item--> n2   (re-added)
func boundaryFixture(t *testing.T) (*doem.Database, oem.Arc, oem.Arc, oem.NodeID, []timestamp.Time) {
	t.Helper()
	o := oem.New()
	n3 := oem.NodeID(10)
	if err := o.CreateNodeWithID(n3, value.Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := o.AddArc(o.Root(), "init", n3); err != nil {
		t.Fatal(err)
	}
	d := doem.New(o)

	n2 := oem.NodeID(20)
	t1 := timestamp.MustParse("2Jan97")
	t2 := timestamp.MustParse("4Jan97")
	t3 := timestamp.MustParse("6Jan97")
	t4 := timestamp.MustParse("8Jan97")
	steps := []struct {
		at  timestamp.Time
		ops change.Set
	}{
		{t1, change.Set{
			change.CreNode{Node: n2, Value: value.Int(1)},
			change.AddArc{Parent: d.Root(), Label: "item", Child: n2},
			// A second arc keeps n2 reachable across the t3 removal so
			// the t4 re-add is legal under the deleted-node discipline.
			change.AddArc{Parent: d.Root(), Label: "keep", Child: n2},
		}},
		{t2, change.Set{change.UpdNode{Node: n2, Value: value.Int(2)}}},
		{t3, change.Set{
			change.RemArc{Parent: d.Root(), Label: "item", Child: n2},
			change.RemArc{Parent: d.Root(), Label: "init", Child: n3},
		}},
		{t4, change.Set{change.AddArc{Parent: d.Root(), Label: "item", Child: n2}}},
	}
	for _, s := range steps {
		if err := d.Apply(s.at, s.ops); err != nil {
			t.Fatalf("apply %s: %v", s.at, err)
		}
	}
	itemArc := oem.Arc{Parent: d.Root(), Label: "item", Child: n2}
	initArc := oem.Arc{Parent: d.Root(), Label: "init", Child: n3}
	return d, itemArc, initArc, n2, []timestamp.Time{t1, t2, t3, t4}
}

// TestAtBoundarySemantics pins the inclusive <at T> convention of Section
// 4.2.2 at exact annotation timestamps, for all four annotation kinds, on
// both the linear (doem) and binary-search (index) implementations.
func TestAtBoundarySemantics(t *testing.T) {
	d, itemArc, initArc, n2, ts := boundaryFixture(t)
	t1, t2, t3, t4 := ts[0], ts[1], ts[2], ts[3]
	ig := NewGraph(d)
	sec := func(t timestamp.Time, off int64) timestamp.Time { return t.Add(timestampDur(off)) }

	cases := []struct {
		name     string
		at       timestamp.Time
		itemLive bool // add(t1), rem(t3), add(t4)
		initLive bool // in O_0, rem(t3)
		n2Value  int64
	}{
		{"before-cre", sec(t1, -1), false, true, 1},
		{"at-cre-add", t1, true, true, 1}, // add at exactly t1 is live (inclusive)
		{"after-add", sec(t1, 1), true, true, 1},
		{"before-upd", sec(t2, -1), true, true, 1},
		{"at-upd", t2, true, true, 2}, // upd at exactly t2 already shows the new value
		{"after-upd", sec(t2, 1), true, true, 2},
		{"before-rem", sec(t3, -1), true, true, 2},
		{"at-rem", t3, false, false, 2}, // rem at exactly t3 already removes the arc
		{"after-rem", sec(t3, 1), false, false, 2},
		{"before-readd", sec(t4, -1), false, false, 2},
		{"at-readd", t4, true, false, 2},
		{"after-readd", sec(t4, 1), true, false, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, g := range []lorel.Graph{d, ig} {
				kind := fmt.Sprintf("%T", g)
				if got := g.ArcLiveAt(itemArc, tc.at); got != tc.itemLive {
					t.Errorf("%s: ArcLiveAt(item, %s) = %v, want %v", kind, tc.at, got, tc.itemLive)
				}
				if got := g.ArcLiveAt(initArc, tc.at); got != tc.initLive {
					t.Errorf("%s: ArcLiveAt(init, %s) = %v, want %v", kind, tc.at, got, tc.initLive)
				}
				if got := g.ValueAt(n2, tc.at); !got.Equal(value.Int(tc.n2Value)) {
					t.Errorf("%s: ValueAt(n2, %s) = %s, want %d", kind, tc.at, got, tc.n2Value)
				}
			}
		})
	}
}

// TestAtBoundaryQueries exercises the same boundaries through the query
// evaluator's virtual <at T> step, indexed vs unindexed.
func TestAtBoundaryQueries(t *testing.T) {
	d, _, _, _, ts := boundaryFixture(t)
	raw := lorel.NewEngine()
	raw.Register("guide", d)
	idx := lorel.NewEngine()
	idx.Register("guide", NewGraph(d))

	var instants []timestamp.Time
	for _, s := range ts {
		instants = append(instants, s.Add(timestampDur(-1)), s, s.Add(timestampDur(1)))
	}
	for _, at := range instants {
		for _, tmpl := range []string{
			`select guide.<at %q>item`,
			`select guide.<at %q>init`,
			`select X from guide.<at %q>item X where X = 2`,
		} {
			q := fmt.Sprintf(tmpl, at.String())
			want, err := raw.Query(q)
			if err != nil {
				t.Fatalf("unindexed %q: %v", q, err)
			}
			got, err := idx.Query(q)
			if err != nil {
				t.Fatalf("indexed %q: %v", q, err)
			}
			if want.String() != got.String() {
				t.Errorf("divergence at %s for %q:\nunindexed:\n%s\nindexed:\n%s", at, q, want, got)
			}
		}
	}
}
