package wal

import (
	"testing"

	"repro/internal/change"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// FuzzWALRecordDecode: arbitrary bytes fed to the frame decoder and the
// step payload decoder must error cleanly, never panic; accepted frames
// must re-encode to the same bytes.
func FuzzWALRecordDecode(f *testing.F) {
	step := change.Step{
		At: timestamp.MustParse("1Jan97"),
		Ops: change.Set{
			change.CreNode{Node: 2, Value: value.Str("Hakata")},
			change.AddArc{Parent: 1, Label: "restaurant", Child: 2},
		},
	}
	valid := appendFrame(nil, 1, change.AppendStep(nil, step))
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // torn CRC
	f.Add(valid[:3])            // torn length prefix
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f}) // absurd length
	f.Add(appendFrame(nil, 99, nil))      // empty payload
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, n, err := decodeFrame(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decodeFrame consumed %d of %d bytes", n, len(data))
		}
		if again := appendFrame(nil, seq, payload); string(again) != string(data[:n]) {
			t.Fatal("accepted frame does not re-encode identically")
		}
		// A syntactically valid payload must decode without panicking;
		// errors are fine (the fuzzer forges CRCs for arbitrary bodies).
		if step, m, err := change.DecodeStep(payload); err == nil {
			if m > len(payload) {
				t.Fatalf("DecodeStep consumed %d of %d bytes", m, len(payload))
			}
			change.AppendStep(nil, step) // re-encode must not panic
		}
	})
}
