package library

import (
	"testing"

	"repro/internal/doem"
	"repro/internal/lorel"
	"repro/internal/oemdiff"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func TestSimBasics(t *testing.T) {
	s := New(1, 10)
	if s.NumBooks() != 10 {
		t.Fatalf("books = %d", s.NumBooks())
	}
	db := s.Snapshot()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(db.OutLabeled(db.Root(), "book")); got != 10 {
		t.Errorf("book arcs = %d", got)
	}
	if !s.Checkout(0) {
		t.Error("first checkout failed")
	}
	if s.Checkout(0) {
		t.Error("double checkout succeeded")
	}
	if !s.IsOut(0) || s.Checkouts(0) != 1 {
		t.Error("state after checkout wrong")
	}
	if !s.Return(0) || s.IsOut(0) {
		t.Error("return failed")
	}
	if s.Return(0) {
		t.Error("double return succeeded")
	}
}

func TestSnapshotDiffsAreUpdates(t *testing.T) {
	s := New(2, 5)
	s1 := s.Snapshot()
	s.Checkout(3)
	s2 := s.Snapshot()
	set, err := oemdiff.DiffIdentity(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	c := oemdiff.Measure(set)
	// Checkout flips status and bumps the counter: exactly two updates.
	if c.Updates != 2 || c.Total() != 2 {
		t.Errorf("diff = %+v, want exactly 2 updates", c)
	}
}

// TestPopularAvailableQuery drives the full motivating example: build a
// DOEM history of circulation snapshots, then ask for popular available
// books.
func TestPopularAvailableQuery(t *testing.T) {
	s := New(3, 4)
	d := doem.New(s.Snapshot())

	record := func(ts string) {
		prev := d.Current().Clone()
		next := s.Snapshot()
		set, err := oemdiff.DiffIdentity(prev, next)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) == 0 {
			return
		}
		if err := d.Apply(timestamp.MustParse(ts), set); err != nil {
			t.Fatal(err)
		}
	}

	// Book 0: checked out twice and returned — popular and available.
	s.Checkout(0)
	record("1Jan97")
	s.Return(0)
	record("2Jan97")
	s.Checkout(0)
	record("3Jan97")
	s.Return(0)
	record("4Jan97")
	// Book 1: checked out once, still out — neither popular nor available.
	s.Checkout(1)
	record("5Jan97")
	// Book 2: checked out twice but currently out.
	s.Checkout(2)
	record("6Jan97")
	s.Return(2)
	record("7Jan97")
	s.Checkout(2)
	record("8Jan97")

	eng := lorel.NewEngine()
	eng.Register("library", d)
	res, err := eng.Query(PopularAvailableQuery("library", "31Dec96"))
	if err != nil {
		t.Fatal(err)
	}
	titles := res.Values("title")
	if len(titles) != 1 || !titles[0].Equal(value.Str(s.Title(0))) {
		t.Errorf("popular available books = %v, want [%q]", titles, s.Title(0))
	}
}

func TestStepIsDeterministic(t *testing.T) {
	a, b := New(9, 20), New(9, 20)
	for i := 0; i < 10; i++ {
		a.Step(15)
		b.Step(15)
	}
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Error("same-seed simulations diverged")
	}
}

func TestPopularAvailableQueryCount(t *testing.T) {
	s := New(4, 3)
	d := doem.New(s.Snapshot())
	rec := func(ts string) {
		set, err := oemdiff.DiffIdentity(d.Current(), s.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if len(set) == 0 {
			return
		}
		if err := d.Apply(timestamp.MustParse(ts), set); err != nil {
			t.Fatal(err)
		}
	}
	s.Checkout(1)
	rec("1Jan97")
	s.Return(1)
	rec("2Jan97")
	s.Checkout(1)
	rec("3Jan97")
	s.Return(1)
	rec("4Jan97")

	eng := lorel.NewEngine()
	eng.Register("library", d)
	res, err := eng.Query(PopularAvailableQueryCount("library"))
	if err != nil {
		t.Fatal(err)
	}
	titles := res.Values("title")
	if len(titles) != 1 || !titles[0].Equal(value.Str(s.Title(1))) {
		t.Errorf("count-based popular books = %v, want [%q]", titles, s.Title(1))
	}
}
