package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/value"
)

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		sp, dp := filepath.Join(src, ent.Name()), filepath.Join(dst, ent.Name())
		if ent.IsDir() {
			copyDir(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSealCrashSafety is the crash-safety property test for the seal
// sequence, mirroring the WAL torn-tail test: a crash at ANY byte offset
// of ANY file write during a seal must leave a store that reopens to a
// graph byte-identical with the monolithic database, and that can keep
// accepting changes and sealing.
//
// The seal sequence writes seg-N.seg, then seg-N.idx, then STATE (each via
// a temp file and atomic rename), then the WAL tail checkpoint. For every
// prefix of completed writes we simulate the next write torn at sampled
// offsets, both as a leftover .tmp (crash before rename) and as the final
// name (a non-atomic filesystem surfacing a partial rename target). The
// torn WAL checkpoint itself is the wal package's own torn-tail territory,
// covered by its tests; here the tail always holds the full pre-seal
// history, which is exactly the state every pre-checkpoint crash leaves.
func TestSealCrashSafety(t *testing.T) {
	root := t.TempDir()
	preDir := filepath.Join(root, "pre")

	// Build the pre-seal state once: a store with history but no seal.
	initial, h := guidegen.GenerateHistory(21, 10, 20, 5)
	mono := doem.New(initial.Clone())
	st, err := Create(preDir, doem.New(initial), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range h {
		mono.Apply(step.At, step.Ops)
		if err := st.Apply(step.At, step.Ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Produce the completed-seal files in a sibling copy.
	postDir := filepath.Join(root, "post")
	copyDir(t, preDir, postDir)
	st, err = Open(postDir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sealOrder := []string{segFileName(1), idxFileName(1), stateName}

	lastStep := h[len(h)-1].At
	scenario := 0
	for tornIdx := 0; tornIdx < len(sealOrder); tornIdx++ {
		full, err := os.ReadFile(filepath.Join(postDir, sealOrder[tornIdx]))
		if err != nil {
			t.Fatal(err)
		}
		offsets := []int{0, 1, len(full) / 3, len(full) / 2, len(full) - 1}
		for _, off := range offsets {
			for _, asTmp := range []bool{true, false} {
				scenario++
				name := fmt.Sprintf("torn-%s-at-%d-tmp-%v", sealOrder[tornIdx], off, asTmp)
				t.Run(name, func(t *testing.T) {
					dir := filepath.Join(root, fmt.Sprintf("s%03d", scenario))
					copyDir(t, preDir, dir)
					for i := 0; i < tornIdx; i++ {
						copyFile(t, filepath.Join(postDir, sealOrder[i]), filepath.Join(dir, sealOrder[i]))
					}
					torn := sealOrder[tornIdx]
					if asTmp {
						torn += ".tmp"
					}
					if err := os.WriteFile(filepath.Join(dir, torn), full[:off], 0o644); err != nil {
						t.Fatal(err)
					}

					st, err := Open(dir, nil, nil)
					if err != nil {
						t.Fatalf("Open after torn %s: %v", name, err)
					}
					defer st.Close()
					checkGraphParity(t, mono, st)

					// The recovered store must remain fully operational.
					id := st.MaxID() + 1
					set := change.Set{
						change.CreNode{Node: id, Value: value.Str("recovered")},
						change.AddArc{Parent: st.Active().Root(), Label: "recovered", Child: id},
					}
					at := lastStep.Add(86400e9)
					if err := st.Apply(at, set); err != nil {
						t.Fatalf("Apply after recovery: %v", err)
					}
					if err := st.Seal(); err != nil {
						t.Fatalf("Seal after recovery: %v", err)
					}
				})
			}
		}
	}

	// A crash after every seal write but before the WAL checkpoint: all
	// three files complete, tail still holding the pre-seal history. Open
	// must redo the seal to identical bytes.
	t.Run("complete-files-unCheckpointed-tail", func(t *testing.T) {
		dir := filepath.Join(root, "redo")
		copyDir(t, preDir, dir)
		for _, f := range sealOrder {
			copyFile(t, filepath.Join(postDir, f), filepath.Join(dir, f))
		}
		st, err := Open(dir, nil, nil)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer st.Close()
		if n := st.Segments(); n != 1 {
			t.Fatalf("segments = %d, want 1 (idempotent redo)", n)
		}
		checkGraphParity(t, mono, st)
		for _, f := range sealOrder {
			want, err := os.ReadFile(filepath.Join(postDir, f))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(got) {
				t.Errorf("redo produced different bytes for %s", f)
			}
		}
	})
}
