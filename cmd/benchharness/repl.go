package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/guidegen"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/qss"
	"repro/internal/repl"
	"repro/internal/timestamp"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// B14: replication cost. Two questions: what a poll cycle pays for each
// write-acknowledgment mode (none = local durable append; one/quorum add
// follower round trips), measured against the same workload unreplicated,
// and how long a failover's promotion step takes (epoch bump + fsync).
// The oplogs run with Sync: never on both ends so the numbers isolate the
// replication machinery — framing, streaming, ack round trips — from
// fsync latency, which every mode pays alike in production.

// benchRepl is a primary with N streaming followers for benchmarks.
type benchRepl struct {
	svc       *qss.Service
	node      *repl.Node
	followers []*repl.Node
	cleanup   func()
}

func newBenchRepl(ack repl.AckMode, followers int) *benchRepl {
	opt := &wal.Options{Sync: wal.SyncNever}
	dir, err := os.MkdirTemp("", "b14repl")
	if err != nil {
		panic(err)
	}
	svc := qss.NewService(nil)
	node, err := repl.Open(filepath.Join(dir, "p"), qss.NewReplState(svc), repl.Config{
		ID:         "p",
		Ack:        ack,
		Replicas:   followers,
		AckTimeout: 30 * time.Second,
		WAL:        opt,
	})
	if err != nil {
		panic(err)
	}
	if err := svc.EnableReplication(node); err != nil {
		panic(err)
	}
	if err := node.Promote(); err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go node.Serve(ln)
	addr := ln.Addr().String()
	var fs []*repl.Node
	for i := 0; i < followers; i++ {
		fsvc := qss.NewService(nil)
		fn, err := repl.Open(filepath.Join(dir, fmt.Sprintf("f%d", i)),
			qss.NewReplState(fsvc), repl.Config{ID: fmt.Sprintf("f%d", i), WAL: opt})
		if err != nil {
			panic(err)
		}
		if err := fsvc.EnableReplication(fn); err != nil {
			panic(err)
		}
		if err := fn.Follow(func() (net.Conn, error) { return net.Dial("tcp", addr) }); err != nil {
			panic(err)
		}
		fs = append(fs, fn)
	}
	deadline := time.Now().Add(10 * time.Second)
	for node.Status().Followers < followers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if node.Status().Followers < followers {
		panic("benchharness: followers failed to connect")
	}
	return &benchRepl{
		svc:       svc,
		node:      node,
		followers: fs,
		cleanup: func() {
			for _, f := range fs {
				f.Close()
			}
			ln.Close()
			node.Close()
			os.RemoveAll(dir)
		},
	}
}

// replPollWorkload subscribes the B6 evolver workload on svc and returns
// one-poll-cycle closure (mutate source, poll one hour later).
func replPollWorkload(svc *qss.Service, seed int64) func() {
	ev := guidegen.NewEvolver(seed, 100)
	src := wrapper.NewMutable(ev.DB)
	if err := svc.Subscribe(qss.Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}); err != nil {
		panic(err)
	}
	t := timestamp.MustParse("1Jan97")
	if _, err := svc.Poll("R", t); err != nil {
		panic(err)
	}
	return func() {
		src.Mutate(func(*oem.Database) error { ev.Step(2); return nil })
		t = t.Add(3600e9)
		if _, err := svc.Poll("R", t); err != nil {
			panic(err)
		}
	}
}

// replAckTiers is the measured matrix: ack mode and follower count
// (quorum runs with two followers, so commit waits for the faster one —
// the majority of a three-node cluster).
var replAckTiers = []struct {
	name      string
	ack       repl.AckMode
	followers int
}{
	{"none", repl.AckNone, 1},
	{"one", repl.AckOne, 1},
	{"quorum", repl.AckQuorum, 2},
}

func b14() {
	fmt.Println("\n-- B14: replication — ack-mode write overhead and time-to-promote --")
	plain := qss.NewService(nil)
	base := measure(replPollWorkload(plain, 14))
	fmt.Printf("  %8s %14s %10s\n", "ack", "poll/op", "overhead")
	fmt.Printf("  %8s %14s %10s\n", "off", base, "-")
	ackOK := true
	for _, tc := range replAckTiers {
		c := newBenchRepl(tc.ack, tc.followers)
		per := measure(replPollWorkload(c.svc, 14))
		if tc.ack == repl.AckOne {
			// AckOne means the follower had every poll durably before the
			// primary acknowledged it; its applied watermark must catch up
			// to the primary's.
			p := c.node.Status().Applied
			deadline := time.Now().Add(5 * time.Second)
			for c.followers[0].Status().Applied < p && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if c.followers[0].Status().Applied != p {
				ackOK = false
			}
		}
		fmt.Printf("  %8s %14s %9.2fx\n", tc.name, per, float64(per)/float64(base))
		c.cleanup()
	}
	check("B14a", "AckOne follower holds every acknowledged poll", ackOK)

	// Time-to-promote: what failover costs once the operator (or
	// orchestrator) picks the survivor — an epoch bump persisted with
	// fsync, after which writes flow. The history length does not matter
	// (the follower's state is already applied); measured over a node
	// holding a 50-poll history to prove it.
	c := newBenchRepl(repl.AckOne, 1)
	poll := replPollWorkload(c.svc, 15)
	for i := 0; i < 50; i++ {
		poll()
	}
	f := c.followers[0]
	promote := measure(func() {
		f.Demote()
		if err := f.Promote(); err != nil {
			panic(err)
		}
	})
	fmt.Printf("  time-to-promote: %s (demote+promote cycle, 50-poll history)\n", promote)
	c.cleanup()
}

// runReplJSON is B14 in JSON form: the replicated poll cycle per ack mode
// against the unreplicated baseline, and the promotion latency. The
// headline ratio is AckOne's overhead factor (machine-relative, gated by
// -check); promote latency is absolute and reported only.
func runReplJSON(report *benchReport, bench func(string, func(*testing.B)) testing.BenchmarkResult) error {
	obs.SetEnabled(false)
	nsOp := func(r testing.BenchmarkResult) float64 { return float64(r.T.Nanoseconds()) / float64(r.N) }

	plain := qss.NewService(nil)
	pollPlain := replPollWorkload(plain, 14)
	off := nsOp(bench("repl-poll-ack-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pollPlain()
		}
	}))
	report.ReplAckPollOverhead = make(map[string]float64, len(replAckTiers))
	for _, tc := range replAckTiers {
		c := newBenchRepl(tc.ack, tc.followers)
		poll := replPollWorkload(c.svc, 14)
		ns := nsOp(bench("repl-poll-ack-"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				poll()
			}
		}))
		report.ReplAckPollOverhead[tc.name] = ns / off
		if tc.ack == repl.AckOne {
			report.ReplAckOnePollOverhead = ns / off
		}
		c.cleanup()
	}

	c := newBenchRepl(repl.AckOne, 1)
	poll := replPollWorkload(c.svc, 15)
	for i := 0; i < 50; i++ {
		poll()
	}
	f := c.followers[0]
	report.ReplPromoteNs = nsOp(bench("repl-promote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Demote()
			if err := f.Promote(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	c.cleanup()

	// One instrumented replicated poll so the repl_* metrics land in the
	// report's obs snapshot alongside the rest of the stack.
	obs.SetEnabled(true)
	ic := newBenchRepl(repl.AckOne, 1)
	replPollWorkload(ic.svc, 16)()
	ic.cleanup()
	return nil
}
