// Package trigger implements the event-condition-action trigger language
// the paper sketches as future work (Section 7: "an event-condition-action
// trigger language for OEM based on ideas from DOEM and Chorel").
//
// A trigger watches a change-managed database. Its *event and condition*
// are expressed together as a Chorel query over the DOEM history — the
// event part with annotation expressions restricted to the latest step
// (the step-time variables t[0] and t[-1] are bound exactly as in QSS
// filter queries), the condition as the rest of the where clause. The
// *action* is an arbitrary callback, which may itself apply further
// changes; cascaded firing is depth-limited.
//
// Example — watch for price increases above 25:
//
//	mgr.Add(trigger.Trigger{
//	    Name: "expensive",
//	    Query: `select N, NV from guide.restaurant R, R.name N,
//	            R.price<upd at T to NV> where T > t[-1] and NV > 25`,
//	    Action: func(fire trigger.Firing) error { ... },
//	})
package trigger

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/incr"
	"repro/internal/lorel"
	"repro/internal/timestamp"
)

// Trigger is one ECA rule.
type Trigger struct {
	// Name identifies the trigger.
	Name string
	// Query is the Chorel event+condition: evaluated after every applied
	// change set, with t[0] bound to the new step's timestamp and t[-1]
	// to the previous one. A non-empty result fires the action.
	Query string
	// Action runs once per firing. Returning an error aborts the Apply
	// that caused it (the triggering change set is still applied; cascaded
	// sets after the error are not).
	Action func(Firing) error
}

// Firing describes one trigger activation.
type Firing struct {
	Trigger string
	At      timestamp.Time
	Result  *lorel.Result
	// Depth is the cascade depth: 0 for firings caused directly by an
	// external Apply, increasing for changes applied by trigger actions.
	Depth int
}

// Manager owns a DOEM database and a set of triggers; all changes must
// flow through Manager.Apply so triggers observe them.
type Manager struct {
	name string
	d    *doem.Database
	eng  *lorel.Engine

	mu       sync.Mutex
	triggers map[string]*Trigger
	order    []string
	// ix is the inverted fingerprint index (internal/incr): Apply probes
	// it with the applied delta and evaluates only the triggers the delta
	// can affect, instead of every registered query per change set.
	ix *incr.Index
	// incremental gates the probe; false evaluates every trigger on every
	// Apply (the pre-incr behavior). Firing is identical either way —
	// suppressed queries are exactly the provably-empty ones.
	incremental bool
	// MaxCascade bounds recursive firing (actions applying changes that
	// fire more triggers). Default 8.
	MaxCascade int

	// pending holds change sets queued by actions during a cascade.
	pending []pendingSet
	depth   int
}

type pendingSet struct {
	ops change.Set
}

// Errors.
var (
	ErrDuplicate    = errors.New("trigger: trigger already exists")
	ErrNoSuchTrig   = errors.New("trigger: no such trigger")
	ErrCascadeDepth = errors.New("trigger: cascade depth exceeded")
)

// NewManager wraps a DOEM database; queries address it by name.
func NewManager(name string, d *doem.Database) *Manager {
	eng := lorel.NewEngine()
	eng.Register(name, d)
	return &Manager{
		name: name, d: d, eng: eng,
		triggers:    make(map[string]*Trigger),
		ix:          incr.NewIndex(),
		incremental: incr.Enabled(),
		MaxCascade:  8,
	}
}

// SetIncremental switches incremental trigger matching on or off for
// subsequent Apply calls (the -noincremental escape hatch).
func (m *Manager) SetIncremental(on bool) {
	m.mu.Lock()
	m.incremental = on
	m.mu.Unlock()
}

// DOEM returns the managed database.
func (m *Manager) DOEM() *doem.Database { return m.d }

// Add registers a trigger; the query must parse.
func (m *Manager) Add(t Trigger) error {
	if t.Name == "" {
		return errors.New("trigger: trigger needs a name")
	}
	if t.Action == nil {
		return errors.New("trigger: trigger needs an action")
	}
	if _, err := lorel.Parse(t.Query); err != nil {
		return fmt.Errorf("trigger: query: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.triggers[t.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, t.Name)
	}
	m.triggers[t.Name] = &t
	m.order = append(m.order, t.Name)
	m.ix.Put(t.Name, m.fingerprint(t.Query))
	return nil
}

// fingerprint statically analyzes a trigger query for the index; queries
// that fail to canonicalize index as unanalyzable (always evaluated).
func (m *Manager) fingerprint(src string) *incr.Fingerprint {
	q, err := lorel.Parse(src)
	if err != nil {
		return nil
	}
	if err := lorel.Canonicalize(q); err != nil {
		return nil
	}
	return incr.Extract(q, map[string]lorel.Graph{m.name: m.d})
}

// Remove deletes a trigger.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.triggers[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTrig, name)
	}
	delete(m.triggers, name)
	m.ix.Remove(name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// List returns trigger names in registration order.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Apply applies a change set at time t and fires matching triggers.
// Changes queued by actions (via Queue) are applied at strictly later
// synthetic instants and processed recursively up to MaxCascade levels.
func (m *Manager) Apply(t timestamp.Time, ops change.Set) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applyLocked(t, ops, 0)
}

// Queue schedules a change set from inside a trigger action. It is applied
// after the current firing completes, one second after the triggering step
// (the time domain is discrete; cascaded steps need fresh instants).
func (m *Manager) Queue(ops change.Set) {
	// Called from actions, which run with m.mu held.
	m.pending = append(m.pending, pendingSet{ops: ops})
}

func (m *Manager) applyLocked(t timestamp.Time, ops change.Set, depth int) error {
	if depth > m.MaxCascade {
		return fmt.Errorf("%w (%d)", ErrCascadeDepth, m.MaxCascade)
	}
	prev := m.d.LastStep()
	if err := m.d.Apply(t, ops); err != nil {
		return err
	}
	mApplies.Inc()
	// Bind t[0] = this step, t[-1] = previous step.
	m.eng.SetPollTimes([]timestamp.Time{orNeg(prev), t})

	// Incremental matching: probe the fingerprint index with the applied
	// delta and evaluate only the triggers it can affect. Probe returns
	// ids sorted, preserving the deterministic firing order; suppressed
	// triggers are exactly those whose query provably returns no rows, so
	// firing behavior is identical to evaluating everything.
	var names []string
	if m.incremental {
		cur := m.d.Current()
		names = m.ix.Probe(incr.Summarize(ops, cur), cur)
		mSuppressed.Add(int64(len(m.order) - len(names)))
	} else {
		names = append([]string(nil), m.order...)
		sort.Strings(names) // deterministic firing order
	}
	for _, name := range names {
		tr, ok := m.triggers[name]
		if !ok {
			continue
		}
		mEvaluated.Inc()
		res, err := m.eng.Query(tr.Query)
		if err != nil {
			return fmt.Errorf("trigger %q: %w", name, err)
		}
		if res.Len() == 0 {
			continue
		}
		mFired.Inc()
		if err := tr.Action(Firing{Trigger: name, At: t, Result: res, Depth: depth}); err != nil {
			return fmt.Errorf("trigger %q action: %w", name, err)
		}
	}
	// Drain cascaded changes.
	for len(m.pending) > 0 {
		next := m.pending[0]
		m.pending = m.pending[1:]
		at := m.d.LastStep().Add(1e9) // +1s synthetic instant
		if err := m.applyLocked(at, next.ops, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func orNeg(t timestamp.Time) timestamp.Time {
	if !t.IsFinite() {
		return timestamp.NegInf
	}
	return t
}
