package qss

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/timestamp"
)

// Freq is a frequency specification (paper Section 6): it induces the
// sequence of polling times t1, t2, ... for a subscription.
type Freq interface {
	// Next returns the first polling time strictly after t.
	Next(t timestamp.Time) timestamp.Time
	// String renders the specification in its textual form.
	String() string
}

// Every polls at a fixed interval ("every 10 minutes").
type Every struct{ Interval time.Duration }

// Next implements Freq.
func (e Every) Next(t timestamp.Time) timestamp.Time { return t.Add(e.Interval) }

func (e Every) String() string { return "every " + e.Interval.String() }

// Daily polls once a day at a fixed local (UTC) time ("every night at
// 11:30pm").
type Daily struct {
	Hour, Minute int
}

// Next implements Freq.
func (d Daily) Next(t timestamp.Time) timestamp.Time {
	g := t.Go()
	cand := time.Date(g.Year(), g.Month(), g.Day(), d.Hour, d.Minute, 0, 0, time.UTC)
	if !cand.After(g) {
		cand = cand.AddDate(0, 0, 1)
	}
	return timestamp.FromTime(cand)
}

func (d Daily) String() string { return fmt.Sprintf("every day at %02d:%02d", d.Hour, d.Minute) }

// Weekly polls once a week on a fixed weekday and time ("every Friday at
// 5:00pm").
type Weekly struct {
	Day          time.Weekday
	Hour, Minute int
}

// Next implements Freq.
func (w Weekly) Next(t timestamp.Time) timestamp.Time {
	g := t.Go()
	cand := time.Date(g.Year(), g.Month(), g.Day(), w.Hour, w.Minute, 0, 0, time.UTC)
	delta := (int(w.Day) - int(cand.Weekday()) + 7) % 7
	cand = cand.AddDate(0, 0, delta)
	if !cand.After(g) {
		cand = cand.AddDate(0, 0, 7)
	}
	return timestamp.FromTime(cand)
}

func (w Weekly) String() string {
	return fmt.Sprintf("every %s at %02d:%02d", w.Day, w.Hour, w.Minute)
}

// ParseFreq parses textual frequency specifications:
//
//	every 10 minutes | every 2 hours | every 30 seconds
//	every day at 11:30pm | every night at 11:30pm | every morning at 9am
//	every Friday at 5:00pm
func ParseFreq(s string) (Freq, error) {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(s)))
	if len(fields) < 2 || fields[0] != "every" {
		return nil, fmt.Errorf("qss: unrecognized frequency %q (must start with 'every')", s)
	}
	rest := fields[1:]

	// "every N <unit>"
	if n, err := strconv.Atoi(rest[0]); err == nil {
		if len(rest) != 2 || n <= 0 {
			return nil, fmt.Errorf("qss: bad interval in %q", s)
		}
		unit, err := parseUnit(rest[1])
		if err != nil {
			return nil, fmt.Errorf("qss: %v in %q", err, s)
		}
		return Every{Interval: time.Duration(n) * unit}, nil
	}

	// "every <day-word> at <time>"
	if len(rest) == 3 && rest[1] == "at" {
		h, m, err := parseClock(rest[2])
		if err != nil {
			return nil, fmt.Errorf("qss: %v in %q", err, s)
		}
		switch rest[0] {
		case "day", "night", "morning", "evening":
			return Daily{Hour: h, Minute: m}, nil
		}
		if wd, ok := weekdays[rest[0]]; ok {
			return Weekly{Day: wd, Hour: h, Minute: m}, nil
		}
		return nil, fmt.Errorf("qss: unknown day %q in %q", rest[0], s)
	}

	// "every minute/hour/day/week"
	if len(rest) == 1 {
		switch rest[0] {
		case "minute":
			return Every{Interval: time.Minute}, nil
		case "hour":
			return Every{Interval: time.Hour}, nil
		case "day", "night":
			return Daily{}, nil
		case "week":
			return Weekly{}, nil
		}
	}
	return nil, fmt.Errorf("qss: unrecognized frequency %q", s)
}

var weekdays = map[string]time.Weekday{
	"sunday": time.Sunday, "monday": time.Monday, "tuesday": time.Tuesday,
	"wednesday": time.Wednesday, "thursday": time.Thursday,
	"friday": time.Friday, "saturday": time.Saturday,
}

func parseUnit(u string) (time.Duration, error) {
	switch strings.TrimSuffix(u, "s") {
	case "second", "sec":
		return time.Second, nil
	case "minute", "min":
		return time.Minute, nil
	case "hour", "hr":
		return time.Hour, nil
	case "day":
		return 24 * time.Hour, nil
	case "week":
		return 7 * 24 * time.Hour, nil
	}
	return 0, fmt.Errorf("unknown unit %q", u)
}

// parseClock parses "5pm", "5:00pm", "11:30pm", "09:15", "23:59".
func parseClock(s string) (hour, minute int, err error) {
	ampm := ""
	switch {
	case strings.HasSuffix(s, "am"):
		ampm = "am"
		s = strings.TrimSuffix(s, "am")
	case strings.HasSuffix(s, "pm"):
		ampm = "pm"
		s = strings.TrimSuffix(s, "pm")
	}
	parts := strings.SplitN(s, ":", 2)
	hour, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad hour %q", s)
	}
	if len(parts) == 2 {
		minute, err = strconv.Atoi(parts[1])
		if err != nil {
			return 0, 0, fmt.Errorf("bad minute %q", s)
		}
	}
	switch ampm {
	case "pm":
		if hour < 12 {
			hour += 12
		}
	case "am":
		if hour == 12 {
			hour = 0
		}
	}
	if hour < 0 || hour > 23 || minute < 0 || minute > 59 {
		return 0, 0, fmt.Errorf("clock time %q out of range", s)
	}
	return hour, minute, nil
}
