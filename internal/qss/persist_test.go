package qss

import (
	"testing"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// TestStateSurvivesRestart: poll, export, rebuild the service, import, and
// confirm the next poll sees exactly the delta (not a fresh start).
func TestStateSurvivesRestart(t *testing.T) {
	src, ids := paperSource(t)
	sub := Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}

	svc1 := NewService(nil)
	if err := svc1.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	n1, err := svc1.Poll("R", timestamp.MustParse("1Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n1 == nil || n1.Result.Len() != 2 {
		t.Fatalf("first poll = %v", n1)
	}
	state, err := svc1.ExportState("R")
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh service importing the state.
	svc2 := NewService(nil)
	if err := svc2.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := svc2.ImportState("R", state); err != nil {
		t.Fatal(err)
	}

	// Without changes, the next poll is silent (state carried over; a
	// fresh subscription would have re-reported both restaurants).
	n, err := svc2.Poll("R", timestamp.MustParse("2Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n != nil {
		t.Fatalf("restart re-reported existing objects:\n%s", n.Result)
	}

	// A real change is detected incrementally.
	if err := src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		return db.AddArc(ids.Guide, "restaurant", r)
	}); err != nil {
		t.Fatal(err)
	}
	n, err = svc2.Poll("R", timestamp.MustParse("3Jan97"))
	if err != nil {
		t.Fatal(err)
	}
	if n == nil || n.Result.Len() != 1 {
		t.Fatalf("post-restart delta = %v", n)
	}
	// History continuity: three polls total across both lifetimes.
	_, times, err := svc2.History("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Errorf("poll times = %v", times)
	}
}

func TestImportGuards(t *testing.T) {
	src, _ := paperSource(t)
	svc := NewService(nil)
	if _, err := svc.ExportState("ghost"); err == nil {
		t.Error("export of missing subscription succeeded")
	}
	if err := svc.ImportState("ghost", []byte("{}")); err == nil {
		t.Error("import into missing subscription succeeded")
	}
	sub := Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`, Filter: `select R.restaurant`,
	}
	if err := svc.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := svc.ImportState("R", []byte("not json")); err == nil {
		t.Error("garbage state accepted")
	}
	state, err := svc.ExportState("R")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Poll("R", timestamp.MustParse("1Jan97")); err != nil {
		t.Fatal(err)
	}
	if err := svc.ImportState("R", state); err == nil {
		t.Error("import into already-polled subscription accepted")
	}
}
