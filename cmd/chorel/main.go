// Command chorel is an interactive query shell for OEM and DOEM databases:
// the reproduction's analogue of the Lore query interface, speaking Chorel.
//
// Usage:
//
//	chorel [-store DIR] [-segments] [-translate] [-explain] [-strategy direct|translated] [-parallel N] [-noindex] [-noplanner] [QUERY...]
//
// With no QUERY arguments, chorel reads queries from standard input, one
// per line. The built-in demo database "guide" (the paper's running
// example, Figures 2-4) is always registered; databases from -store are
// registered under their stored names.
//
// -segments opens the store in segmented mode (lore.OpenSegmented):
// DOEM databases live in time-partitioned segment stores, queries run
// over the merged history graph, and update statements append to the
// active segment. -seal-anns and -seal-age tune the auto-seal policy;
// see docs/segments.md.
//
// -explain prints the Chorel→Lorel rewrite plan (rule-by-rule rewrite
// trace plus the generated Lorel query; see docs/observability.md) and the
// cost-based planner's decisions (join order, pushed predicates,
// estimated cardinalities; see docs/planner.md) instead of evaluating.
// -noplanner (or REPRO_NOPLANNER=1) reverts to written-order evaluation.
// -version prints build information.
//
// Shell commands: .list (databases), .translate QUERY (show the Lorel
// translation of a Chorel query, Section 5.2), .explain QUERY (show the
// rewrite plan), .history NAME, .quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/chorel"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/index"
	"repro/internal/lore"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/plan"
	"repro/internal/segment"
	"repro/internal/symbol"
	"repro/internal/timestamp"
)

func main() {
	storeDir := flag.String("store", "", "database store directory to load")
	segments := flag.Bool("segments", false, "open -store in segmented mode (time-partitioned DOEM history; see docs/segments.md)")
	sealAnns := flag.Int("seal-anns", 0, "with -segments: auto-seal the active segment after this many annotations (0 = manual)")
	sealAge := flag.Duration("seal-age", 0, "with -segments: auto-seal the active segment after this much history time (0 = off)")
	translate := flag.Bool("translate", false, "print the Lorel translation instead of evaluating")
	explain := flag.Bool("explain", false, "print the Chorel→Lorel rewrite plan instead of evaluating")
	strategy := flag.String("strategy", "direct", "execution strategy: direct or translated")
	parallel := flag.Int("parallel", 1, "evaluation workers (0 = GOMAXPROCS)")
	noindex := flag.Bool("noindex", false, "disable secondary indexes and snapshot caching (unindexed baseline)")
	noplanner := flag.Bool("noplanner", false, "disable the cost-based query planner (written-order baseline)")
	nointern := flag.Bool("nointern", false, "disable symbol interning and streaming evaluation (string+materialized baseline)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *noindex {
		index.SetEnabled(false)
	}
	if *noplanner {
		plan.SetEnabled(false)
	}
	if *nointern {
		symbol.SetEnabled(false)
		lorel.SetStreaming(false)
	}

	if *version {
		fmt.Println("chorel", obs.Version())
		return
	}
	var pol *segment.Policy
	if *sealAnns > 0 || *sealAge > 0 {
		pol = &segment.Policy{SealAnnotations: *sealAnns, SealAge: *sealAge}
	}
	if err := run(*storeDir, *segments, pol, *translate, *explain, *strategy, *parallel, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "chorel:", err)
		os.Exit(1)
	}
}

type session struct {
	eng   *lorel.Engine
	doems map[string]*doem.Database
	// store is set when -store names a directory; updates to stored DOEM
	// databases go through it so they are persisted (and, in segmented
	// mode, land in the right active segment).
	store    *lore.Store
	strategy string
	parallel int
}

func run(storeDir string, segmented bool, pol *segment.Policy, translate, explain bool, strategy string, parallel int, queries []string) error {
	if strategy != "direct" && strategy != "translated" {
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	if segmented && storeDir == "" {
		return fmt.Errorf("-segments needs -store")
	}
	s := &session{eng: lorel.NewEngine(), doems: make(map[string]*doem.Database), strategy: strategy, parallel: parallel}
	s.eng.SetParallelism(parallel)

	// The paper's running example is always available as "guide".
	g, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(g, guidegen.PaperHistory(ids))
	if err != nil {
		return err
	}
	s.register("guide", d)

	if storeDir != "" {
		var store *lore.Store
		if segmented {
			store, err = lore.OpenSegmented(storeDir, nil, pol)
		} else {
			store, err = lore.Open(storeDir)
		}
		if err != nil {
			return err
		}
		defer store.Close()
		s.store = store
		for _, ent := range store.List() {
			switch ent.Kind {
			case "doem":
				dd, err := store.GetDOEM(ent.Name)
				if err != nil {
					return err
				}
				s.register(ent.Name, dd)
				if st, ok := store.SegmentStore(ent.Name); ok {
					// Queries range over the merged sealed+active history,
					// not just the active segment.
					s.eng.Register(ent.Name, st.Graph())
				}
			case "oem":
				db, err := store.GetOEM(ent.Name)
				if err != nil {
					return err
				}
				s.eng.Register(ent.Name, lorel.NewOEMGraph(db))
			}
		}
	}

	if len(queries) > 0 {
		for _, q := range queries {
			if explain {
				out, err := s.explain(q)
				if err != nil {
					return err
				}
				fmt.Print(out)
				continue
			}
			if translate {
				out, err := chorel.TranslateString(q)
				if err != nil {
					return err
				}
				fmt.Println(out)
				continue
			}
			if err := s.runQuery(q); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Println("chorel shell — DOEM/Chorel reproduction (paper database registered as 'guide')")
	fmt.Println("enter queries, or .help")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("chorel> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return nil
		case line == ".help":
			fmt.Println(".list | .translate QUERY | .explain QUERY | .history NAME | .quit")
			fmt.Println("update/insert/delete statements apply to the addressed DOEM database at the current time")
		case hasVerb(line, "update") || hasVerb(line, "insert") || hasVerb(line, "delete"):
			if err := s.runUpdate(line); err != nil {
				fmt.Println("error:", err)
			}
		case line == ".list":
			for _, n := range s.eng.Names() {
				fmt.Println(" ", n)
			}
		case strings.HasPrefix(line, ".translate "):
			out, err := chorel.TranslateString(strings.TrimPrefix(line, ".translate "))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(out)
		case strings.HasPrefix(line, ".explain ") || hasVerb(line, "explain"):
			q := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, ".explain"), "explain"))
			out, err := s.explain(q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(line, ".history "):
			name := strings.TrimSpace(strings.TrimPrefix(line, ".history "))
			d, ok := s.doems[name]
			if !ok {
				fmt.Printf("no DOEM database %q\n", name)
				continue
			}
			fmt.Println(d.ExtractHistory())
		default:
			if err := s.runQuery(line); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

func hasVerb(line, verb string) bool {
	return strings.HasPrefix(strings.ToLower(line), verb+" ")
}

// runUpdate compiles an update statement and applies it to the DOEM
// database its target addresses, timestamped now.
func (s *session) runUpdate(stmt string) error {
	parsed, err := lorel.ParseUpdate(stmt)
	if err != nil {
		return err
	}
	name := parsed.Target.Head
	d, ok := s.doems[name]
	if !ok {
		return fmt.Errorf("%q is not a DOEM database (updates need change tracking)", name)
	}
	var seg *segment.Store
	if s.store != nil {
		seg, _ = s.store.SegmentStore(name)
	}
	next := d.MaxID()
	if seg != nil {
		// The active segment forgets ids garbage-collected in sealed
		// intervals; the store's high-water mark spans all history.
		if id, err := s.store.MaxID(name); err == nil && id > next {
			next = id
		}
	}
	set, err := s.eng.CompileUpdate(parsed, func() oem.NodeID {
		next++
		return next
	})
	if err != nil {
		return err
	}
	if len(set) == 0 {
		fmt.Println("no matches; nothing applied")
		return nil
	}
	last := d.LastStep()
	if seg != nil && seg.LastSeal().After(last) {
		last = seg.LastSeal()
	}
	now := timestamp.FromTime(time.Now())
	if !now.After(last) {
		now = last.Add(time.Second)
	}
	if seg != nil {
		// Segmented store: the append must go through the store so it hits
		// the active segment's tail log and the auto-seal policy.
		if err := s.store.ApplySet(name, now, set); err != nil {
			return err
		}
		if dd, err := s.store.GetDOEM(name); err == nil {
			s.doems[name] = dd // a seal may have swapped the active database
		}
	} else if err := d.Apply(now, set); err != nil {
		return err
	}
	fmt.Printf("applied %d operation(s) at %s\n", len(set), now)
	return nil
}

// explain renders the full EXPLAIN for a query: the Chorel→Lorel rewrite
// plan plus the cost-based planner's decisions against the session's
// registered graphs (join order, pushed predicates, estimates).
func (s *session) explain(q string) (string, error) {
	pl, err := chorel.ExplainQueryOn(s.eng, q)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

func (s *session) register(name string, d *doem.Database) {
	s.doems[name] = d
	// index.Wrap serves d through secondary indexes unless indexing is
	// disabled (-noindex or REPRO_NOINDEX).
	s.eng.Register(name, index.Wrap(d))
}

func (s *session) runQuery(q string) error {
	if s.strategy == "translated" {
		// Translate and run over the encoding of the addressed DOEM
		// database; fall back to direct evaluation when the query is
		// untranslatable (wildcards, virtual annotations).
		if name := s.addressedDOEM(q); name != "" {
			cdb := chorel.New(name, s.doems[name])
			cdb.SetParallelism(s.parallel)
			res, err := cdb.QueryTranslated(q)
			if err == nil {
				fmt.Print(res)
				return nil
			}
		}
	}
	res, err := s.eng.Query(q)
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}

// addressedDOEM parses the query and returns the first path head that
// names a registered DOEM database.
func (s *session) addressedDOEM(q string) string {
	parsed, err := lorel.Parse(q)
	if err != nil {
		return ""
	}
	name := ""
	parsed.WalkPaths(func(p *lorel.PathExpr) {
		if name == "" {
			if _, ok := s.doems[p.Head]; ok {
				name = p.Head
			}
		}
	})
	return name
}
