package segment

import (
	"os"
	"sync/atomic"

	"repro/internal/obs"
)

// Segment metrics, visible in obs.Snapshot() and on /metrics when
// collection is enabled. Names are documented in docs/segments.md.
var (
	mSeals        = obs.NewCounter("segment_seals_total")
	mSealNs       = obs.NewHistogram("segment_seal_ns")
	mIdxLoads     = obs.NewCounter("segment_index_loads_total")
	mIdxLoadNs    = obs.NewHistogram("segment_index_load_ns")
	mIdxRebuilds  = obs.NewCounter("segment_index_rebuilds_total")
	mDemotions    = obs.NewCounter("segment_demotions_total")
	mPromotions   = obs.NewCounter("segment_promotions_total")
	mQuarantined  = obs.NewCounter("segment_quarantined_total")
	mOpenNs       = obs.NewHistogram("segment_open_ns")
	gSegments     = obs.NewGauge("segment_count")
	gHotSegments  = obs.NewGauge("segment_hot_count")
	gColdSegments = obs.NewGauge("segment_cold_count")
	gActiveAnnots = obs.NewGauge("segment_active_annotations")
)

// enabled flips the package-wide default from monolithic WAL storage to
// segmented storage in lore.OpenWAL and the command-line front ends. Unlike
// indexing (on by default, REPRO_NOINDEX opts out), segmented storage is
// opt-in: the REPRO_SEGMENTS environment variable or a -segments command
// flag (via SetEnabled) turns it on.
var pkgEnabled atomic.Bool

func init() {
	if v := os.Getenv("REPRO_SEGMENTS"); v != "" && v != "0" {
		pkgEnabled.Store(true)
	}
}

// Enabled reports whether segmented storage is the package-wide default.
func Enabled() bool { return pkgEnabled.Load() }

// SetEnabled sets the package-wide default and returns the previous value.
func SetEnabled(on bool) (prev bool) { return pkgEnabled.Swap(on) }
