package symbol

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func TestInternDense(t *testing.T) {
	a1, s1 := Intern("test-intern-a")
	b1, _ := Intern("test-intern-b")
	a2, s2 := Intern("test-intern-a")
	if a1 != a2 {
		t.Fatalf("same string interned to different ids: %d vs %d", a1, a2)
	}
	if a1 == b1 {
		t.Fatalf("distinct strings share id %d", a1)
	}
	if a1 == None || b1 == None {
		t.Fatalf("valid symbols must not be None")
	}
	if unsafe.StringData(s1) != unsafe.StringData(s2) {
		t.Fatalf("canonical strings for one symbol have different backings")
	}
	if String(a1) != "test-intern-a" {
		t.Fatalf("String(%d) = %q", a1, String(a1))
	}
}

func TestLookupDoesNotInsert(t *testing.T) {
	before := Size()
	if id, ok := Lookup("test-never-interned-label"); ok {
		t.Fatalf("Lookup invented symbol %d", id)
	}
	if Size() != before {
		t.Fatalf("Lookup grew the table: %d -> %d", before, Size())
	}
	id, _ := Intern("test-now-interned-label")
	got, ok := Lookup("test-now-interned-label")
	if !ok || got != id {
		t.Fatalf("Lookup after Intern = (%d, %v), want (%d, true)", got, ok, id)
	}
}

func TestCanonSharesBacking(t *testing.T) {
	if !Enabled() {
		t.Skip("interning disabled (REPRO_NOINTERN)")
	}
	// Two fresh allocations of the same content must canonicalize to one
	// backing string.
	l1 := Canon(fmt.Sprintf("test-canon-%d", 7))
	l2 := Canon(fmt.Sprintf("test-canon-%d", 7))
	if unsafe.StringData(l1) != unsafe.StringData(l2) {
		t.Fatalf("Canon returned different backings for equal content")
	}
}

func TestCanonDisabled(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	before := Size()
	s := "test-canon-disabled"
	if got := Canon(s); got != s {
		t.Fatalf("Canon with interning off rewrote the string")
	}
	if Size() != before {
		t.Fatalf("Canon with interning off grew the table")
	}
}

func TestConcurrentIntern(t *testing.T) {
	const goroutines = 8
	const n = 200
	var wg sync.WaitGroup
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, n)
			for i := 0; i < n; i++ {
				id, s := Intern(fmt.Sprintf("test-conc-%d", i))
				if s != fmt.Sprintf("test-conc-%d", i) {
					t.Errorf("canonical string mismatch: %q", s)
				}
				ids[g][i] = id
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < n; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d interned %d to %d, goroutine 0 got %d", g, i, ids[g][i], ids[0][i])
			}
		}
	}
}
