// Package lore is a small storage manager standing in for the Lore DBMS the
// paper builds on: it keeps named OEM and DOEM databases, persists them
// atomically to a directory, and maintains the secondary indexes the paper
// proposes as future work (label, value, and annotation indexes) for the
// index-ablation experiment.
package lore

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/oemio"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/wal"
)

// Store manages named databases under a directory. The in-memory databases
// are authoritative; Put persists, Open loads everything found on disk.
// A Store with an empty directory is purely in-memory.
//
// A store opened with OpenWAL persists DOEM databases through per-database
// write-ahead logs instead of JSON snapshots: ApplySet appends only the
// delta, and Checkpoint folds the log back into a snapshot.
//
// Concurrency: Store methods are safe to call concurrently. The pointer
// GetDOEM returns is the live database, which ApplySet mutates in place —
// callers that query while another goroutine applies change sets must read
// through ViewDOEM, which excludes mutation for the duration of the
// callback (readers of different databases never block each other).
type Store struct {
	dir    string
	walOpt *wal.Options    // non-nil: DOEMs are WAL-backed
	segPol *segment.Policy // segmented mode's seal policy (may be nil)
	seg    bool            // segmented mode: new DOEMs go to segment stores

	mu     sync.RWMutex
	oems   map[string]*oem.Database
	doems  map[string]*doem.Database
	logs   map[string]*wal.Log       // open logs, WAL mode only
	stores map[string]*segment.Store // open segment stores, segmented mode only

	// locks holds one RWMutex per DOEM name, coordinating ViewDOEM readers
	// with ApplySet's in-place mutation without serializing reads of
	// unrelated databases behind the store-wide mu.
	lkMu  sync.Mutex
	locks map[string]*sync.RWMutex

	// indexes caches one secondary-index wrapper per DOEM name, created
	// lazily by IndexedDOEM, invalidated by ApplySet and dropped when the
	// database is replaced or deleted.
	idxMu   sync.Mutex
	indexes map[string]*index.Graph
}

// ErrNotFound reports a missing database name.
var ErrNotFound = errors.New("lore: database not found")

const (
	oemExt  = ".oem.json"
	doemExt = ".doem.json"
	walExt  = ".doemwal"
	segExt  = ".doemseg"
)

// Open loads a store from dir, creating the directory if needed. An empty
// dir yields an in-memory store.
func Open(dir string) (*Store, error) {
	return open(dir, nil, false, nil)
}

// OpenWAL loads a store whose DOEM databases are WAL-backed: each lives in
// a <name>.doemwal directory holding a checkpoint snapshot plus log
// segments, and loading replays the log tail on top of the checkpoint.
// opt may be nil for default log options. WAL mode requires a directory.
func OpenWAL(dir string, opt *wal.Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("lore: WAL mode requires a directory")
	}
	if segment.Enabled() {
		return OpenSegmented(dir, opt, nil)
	}
	if opt == nil {
		opt = &wal.Options{}
	}
	return open(dir, opt, false, nil)
}

// OpenSegmented loads a store whose DOEM databases are backed by
// time-partitioned segment stores (internal/segment): each lives in a
// <name>.doemseg directory holding sealed segments plus an active-segment
// WAL tail, and Checkpoint seals the active segment instead of rewriting a
// snapshot. pol controls automatic sealing; nil seals only on explicit
// Checkpoint calls. Pre-existing <name>.doemwal databases keep working
// through their logs.
func OpenSegmented(dir string, opt *wal.Options, pol *segment.Policy) (*Store, error) {
	if dir == "" {
		return nil, errors.New("lore: segmented mode requires a directory")
	}
	if opt == nil {
		opt = &wal.Options{}
	}
	return open(dir, opt, true, pol)
}

func open(dir string, walOpt *wal.Options, segmented bool, pol *segment.Policy) (*Store, error) {
	start, wallStart := obs.Now(), time.Now()
	s := &Store{
		dir:    dir,
		walOpt: walOpt,
		segPol: pol,
		seg:    segmented,
		oems:   make(map[string]*oem.Database),
		doems:  make(map[string]*doem.Database),
		logs:   make(map[string]*wal.Log),
		stores: make(map[string]*segment.Store),
		locks:  make(map[string]*sync.RWMutex),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lore: %w", err)
	}
	replayed := 0
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case ent.IsDir() && strings.HasSuffix(name, walExt):
			if walOpt == nil {
				// A snapshot-mode store ignores WAL directories rather than
				// replaying state it would then persist divergently.
				continue
			}
			base := strings.TrimSuffix(name, walExt)
			l, err := wal.Open(filepath.Join(dir, name), walOpt)
			if err != nil {
				return nil, fmt.Errorf("lore: opening log %s: %w", name, err)
			}
			d, records, err := l.ReplayDOEMCounted()
			if err != nil {
				l.Close()
				return nil, fmt.Errorf("lore: replaying %s: %w", name, err)
			}
			replayed += records
			s.doems[base] = d
			s.logs[base] = l
		case ent.IsDir() && strings.HasSuffix(name, segExt):
			if !segmented {
				// Like WAL directories in snapshot mode: don't replay state
				// this store would then persist divergently.
				continue
			}
			base := strings.TrimSuffix(name, segExt)
			st, err := segment.Open(filepath.Join(dir, name), walOpt, pol)
			if err != nil {
				return nil, fmt.Errorf("lore: opening segments %s: %w", name, err)
			}
			replayed += st.Stats().Records
			s.doems[base] = st.Active()
			s.stores[base] = st
		case ent.IsDir():
			continue
		case strings.HasSuffix(name, oemExt):
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("lore: %w", err)
			}
			db, err := oemio.Unmarshal(data)
			if err != nil {
				return nil, fmt.Errorf("lore: loading %s: %w", name, err)
			}
			s.oems[strings.TrimSuffix(name, oemExt)] = db
		case strings.HasSuffix(name, doemExt):
			base := strings.TrimSuffix(name, doemExt)
			if _, ok := s.doems[base]; ok {
				continue // a WAL directory for this name takes precedence
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("lore: %w", err)
			}
			d, err := doem.Unmarshal(data)
			if err != nil {
				return nil, fmt.Errorf("lore: loading %s: %w", name, err)
			}
			s.doems[base] = d
		}
	}
	if walOpt != nil {
		mReplayNs.ObserveSince(start)
		mReplayRecords.Add(int64(replayed))
		mode := "wal"
		if segmented {
			mode = "segmented"
		}
		log.Printf("lore: opened %s (%s): %d DOEM database(s), replayed %d log record(s) in %s",
			dir, mode, len(s.doems), replayed, time.Since(wallStart).Round(time.Microsecond))
	}
	return s, nil
}

// PutOEM stores (and persists) an OEM database under name.
func (s *Store) PutOEM(name string, db *oem.Database) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.oems[name] = db
	if s.dir == "" {
		return nil
	}
	data, err := oemio.Marshal(db)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, name+oemExt), data)
}

// GetOEM retrieves an OEM database by name.
func (s *Store) GetOEM(name string) (*oem.Database, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	db, ok := s.oems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return db, nil
}

// PutDOEM stores (and persists) a DOEM database under name. In WAL mode
// this starts a fresh log whose checkpoint is the full database; later
// deltas should go through ApplySet.
func (s *Store) PutDOEM(name string, d *doem.Database) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropIndex(name)
	if s.seg {
		if old, ok := s.stores[name]; ok {
			old.Close()
			delete(s.stores, name)
		}
		if old, ok := s.logs[name]; ok {
			// Replacing a database that predates segmented mode.
			old.Close()
			delete(s.logs, name)
		}
		segDir := filepath.Join(s.dir, name+segExt)
		for _, stale := range []string{segDir, filepath.Join(s.dir, name+walExt)} {
			if err := os.RemoveAll(stale); err != nil {
				return fmt.Errorf("lore: %w", err)
			}
		}
		st, err := segment.Create(segDir, d, s.walOpt, s.segPol)
		if err != nil {
			return fmt.Errorf("lore: %w", err)
		}
		// Drop any stale snapshot from a pre-segment run of the same store.
		if err := os.Remove(filepath.Join(s.dir, name+doemExt)); err != nil && !os.IsNotExist(err) {
			st.Close()
			return fmt.Errorf("lore: %w", err)
		}
		s.doems[name] = st.Active()
		s.stores[name] = st
		return nil
	}
	if s.walOpt != nil {
		if old, ok := s.logs[name]; ok {
			old.Close()
			delete(s.logs, name)
		}
		walDir := filepath.Join(s.dir, name+walExt)
		if err := os.RemoveAll(walDir); err != nil {
			return fmt.Errorf("lore: %w", err)
		}
		l, err := wal.Open(walDir, s.walOpt)
		if err != nil {
			return fmt.Errorf("lore: %w", err)
		}
		if err := l.CheckpointDOEM(d); err != nil {
			l.Close()
			return fmt.Errorf("lore: %w", err)
		}
		// Drop any stale snapshot from a pre-WAL run of the same store.
		if err := os.Remove(filepath.Join(s.dir, name+doemExt)); err != nil && !os.IsNotExist(err) {
			l.Close()
			return fmt.Errorf("lore: %w", err)
		}
		s.doems[name] = d
		s.logs[name] = l
		return nil
	}
	s.doems[name] = d
	if s.dir == "" {
		return nil
	}
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, name+doemExt), data)
}

// lockFor returns the RWMutex coordinating readers and writers of the
// named DOEM database, creating it on first use.
func (s *Store) lockFor(name string) *sync.RWMutex {
	s.lkMu.Lock()
	defer s.lkMu.Unlock()
	lk, ok := s.locks[name]
	if !ok {
		lk = &sync.RWMutex{}
		s.locks[name] = lk
	}
	return lk
}

// ViewDOEM runs fn with read access to the named DOEM database, holding
// off ApplySet mutations of that database (and only that database) until
// fn returns. Any number of ViewDOEM readers run concurrently; use this
// for queries that may race with a writer. fn must not retain the
// database past its return.
func (s *Store) ViewDOEM(name string, fn func(*doem.Database) error) error {
	d, err := s.GetDOEM(name)
	if err != nil {
		return err
	}
	lk := s.lockFor(name)
	lk.RLock()
	defer lk.RUnlock()
	return fn(d)
}

// ApplySet applies one timestamped change set to the named DOEM database
// and persists the result. In WAL mode only the delta is appended —
// O(|ops|) I/O; in snapshot mode the whole database is rewritten.
func (s *Store) ApplySet(name string, t timestamp.Time, ops change.Set) error {
	start := obs.Now()
	err := s.applySet(name, t, ops)
	mApplies.Inc()
	mApplyNs.ObserveSince(start)
	if err != nil {
		mApplyFailures.Inc()
	}
	return err
}

func (s *Store) applySet(name string, t timestamp.Time, ops change.Set) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.doems[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	// The in-place mutation excludes ViewDOEM readers of this database.
	// Lock order is always store mu → name lock; ViewDOEM readers hold
	// only the name lock (GetDOEM's RLock is released before they block),
	// so the two locks cannot deadlock.
	lk := s.lockFor(name)
	if st, ok := s.stores[name]; ok {
		lk.Lock()
		err := st.Apply(t, ops)
		// A policy-triggered seal swaps in a fresh active segment; keep the
		// live pointer current for GetDOEM/ViewDOEM callers.
		s.doems[name] = st.Active()
		lk.Unlock()
		if err != nil {
			return err
		}
		s.invalidateIndex(name)
		return nil
	}
	lk.Lock()
	err := d.Apply(t, ops)
	lk.Unlock()
	if err != nil {
		return err
	}
	s.invalidateIndex(name)
	if l, ok := s.logs[name]; ok {
		if _, err := l.AppendStep(t, ops); err != nil {
			return fmt.Errorf("lore: %w", err)
		}
		return nil
	}
	if s.dir == "" {
		return nil
	}
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, name+doemExt), data)
}

// Checkpoint folds the named database's log into a fresh snapshot and
// drops the covered segments (Section 6.1 log compaction). In snapshot
// mode it simply re-persists the database; in segmented mode it seals the
// active segment.
//
// Checkpoint and ApplySet both hold the store-wide mutex for their full
// duration, which is what satisfies wal.CheckpointDOEM's requirement that
// no append lands between marshaling the database and installing the
// checkpoint — the pair can interleave freely across goroutines but never
// overlap.
func (s *Store) Checkpoint(name string) error {
	start := obs.Now()
	defer func() {
		mCheckpoints.Inc()
		mCheckpointNs.ObserveSince(start)
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.doems[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if st, ok := s.stores[name]; ok {
		// In segmented mode a checkpoint IS a seal: the active segment's
		// interval becomes an immutable sealed segment and a fresh active
		// segment takes over.
		lk := s.lockFor(name)
		lk.Lock()
		err := st.Seal()
		s.doems[name] = st.Active()
		lk.Unlock()
		return err
	}
	if l, ok := s.logs[name]; ok {
		return l.CheckpointDOEM(d)
	}
	if s.dir == "" {
		return nil
	}
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, name+doemExt), data)
}

// Close releases any open logs and segment stores. The store must not be
// used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for name, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.logs, name)
	}
	for name, st := range s.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.stores, name)
	}
	return first
}

// SegmentStore returns the segment store backing the named DOEM database,
// when the store is segmented and the database is segment-backed.
func (s *Store) SegmentStore(name string) (*segment.Store, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.stores[name]
	return st, ok
}

// Segmented reports whether new DOEM databases are stored segmented.
func (s *Store) Segmented() bool { return s.seg }

// MaxID returns the highest node id ever used by the named DOEM database —
// across sealed history in segmented mode, where the live database's own
// MaxID only covers the active segment.
func (s *Store) MaxID(name string) (oem.NodeID, error) {
	if st, ok := s.SegmentStore(name); ok {
		return st.MaxID(), nil
	}
	d, err := s.GetDOEM(name)
	if err != nil {
		return 0, err
	}
	return d.MaxID(), nil
}

// GetDOEM retrieves a DOEM database by name.
func (s *Store) GetDOEM(name string) (*doem.Database, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.doems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return d, nil
}

// IndexedDOEM returns the store's secondary-index wrapper (internal/index)
// for the named DOEM database, creating it on first use. The wrapper is
// shared between callers; ApplySet invalidates it after every mutation.
// Read through it under the database's read lock (ViewIndexed) whenever
// writers may be active.
func (s *Store) IndexedDOEM(name string) (*index.Graph, error) {
	d, err := s.GetDOEM(name)
	if err != nil {
		return nil, err
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.indexes == nil {
		s.indexes = make(map[string]*index.Graph)
	}
	if ig, ok := s.indexes[name]; ok && ig.DOEM() == d {
		return ig, nil
	}
	ig := index.NewGraph(d)
	s.indexes[name] = ig
	return ig, nil
}

// ViewIndexed is the query-path analogue of ViewDOEM: it runs fn with the
// database's read lock held, passing the indexed view when indexing is
// enabled (index.Enabled) and the raw database otherwise.
func (s *Store) ViewIndexed(name string, fn func(lorel.Graph) error) error {
	if st, ok := s.SegmentStore(name); ok {
		// Segmented databases answer history queries through the store's
		// merged graph (sealed-segment indexes + active segment) rather than
		// the monolithic secondary indexes.
		lk := s.lockFor(name)
		lk.RLock()
		defer lk.RUnlock()
		return fn(st.Graph())
	}
	if !index.Enabled() {
		return s.ViewDOEM(name, func(d *doem.Database) error { return fn(d) })
	}
	ig, err := s.IndexedDOEM(name)
	if err != nil {
		return err
	}
	lk := s.lockFor(name)
	lk.RLock()
	defer lk.RUnlock()
	return fn(ig)
}

// invalidateIndex drops the cached index structures for name, if any.
func (s *Store) invalidateIndex(name string) {
	s.idxMu.Lock()
	if ig, ok := s.indexes[name]; ok {
		ig.Invalidate()
	}
	s.idxMu.Unlock()
}

// dropIndex forgets the index wrapper entirely (database replaced or
// deleted).
func (s *Store) dropIndex(name string) {
	s.idxMu.Lock()
	delete(s.indexes, name)
	s.idxMu.Unlock()
}

// Delete removes a database (either kind) and its files.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, hadOEM := s.oems[name]
	_, hadDOEM := s.doems[name]
	if !hadOEM && !hadDOEM {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.oems, name)
	delete(s.doems, name)
	s.dropIndex(name)
	if l, ok := s.logs[name]; ok {
		l.Close()
		delete(s.logs, name)
	}
	if st, ok := s.stores[name]; ok {
		st.Close()
		delete(s.stores, name)
	}
	if s.dir == "" {
		return nil
	}
	for _, ext := range []string{oemExt, doemExt} {
		path := filepath.Join(s.dir, name+ext)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("lore: %w", err)
		}
	}
	for _, ext := range []string{walExt, segExt} {
		if err := os.RemoveAll(filepath.Join(s.dir, name+ext)); err != nil {
			return fmt.Errorf("lore: %w", err)
		}
	}
	return nil
}

// List returns all database names, sorted, with their kind ("oem"/"doem").
func (s *Store) List() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for n := range s.oems {
		out = append(out, Entry{Name: n, Kind: "oem"})
	}
	for n := range s.doems {
		out = append(out, Entry{Name: n, Kind: "doem"})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Entry describes one stored database.
type Entry struct {
	Name string
	Kind string
}

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("lore: invalid database name %q", name)
	}
	return nil
}

// atomicWrite writes data to path via a temporary file, fsync, atomic
// rename, and a directory fsync, so a crash never leaves a torn file and
// the rename itself is durable.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("lore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("lore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lore: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		// Directory fsync is advisory on some filesystems; best effort.
		dir.Sync()
		dir.Close()
	}
	return nil
}
