package incr

import (
	"repro/internal/change"
	"repro/internal/oem"
)

// NodeAtom is one created or updated node of a delta, with the labels of
// its in-arcs in the post-apply snapshot — the arcs a plain traversal
// reaches it through, hence the labels a fresh node annotation can be
// bound under.
type NodeAtom struct {
	Node   oem.NodeID
	Labels []string
}

// Delta is an applied change set summarized for matching: the touched
// atoms grouped by annotation kind, exactly mirroring the annotations
// doem.Apply attaches (one per canonical op; nothing else in the system
// creates annotations).
type Delta struct {
	// Cre and Upd are the created/updated nodes.
	Cre, Upd []NodeAtom
	// Add and Rem are the added/removed arcs.
	Add, Rem []oem.Arc
	// HasSnapshot is false when no post-apply snapshot was available to
	// Summarize: node in-labels are then unknown and cre/upd guards with
	// a label must match conservatively.
	HasSnapshot bool
}

// Empty reports a delta with no atoms at all.
func (d *Delta) Empty() bool {
	return d == nil || (len(d.Cre) == 0 && len(d.Upd) == 0 && len(d.Add) == 0 && len(d.Rem) == 0)
}

// has reports whether the delta contains any atom of the kind.
func (d *Delta) has(k Kind) bool {
	switch k {
	case KindCre:
		return len(d.Cre) > 0
	case KindUpd:
		return len(d.Upd) > 0
	case KindAdd:
		return len(d.Add) > 0
	case KindRem:
		return len(d.Rem) > 0
	}
	return false
}

// Summarize reduces an applied change set to its Delta. cur must be the
// post-apply snapshot the filter queries will evaluate against (pass nil
// if unavailable; matching then degrades conservatively for node
// guards). Ops are the same canonical set doem.Apply annotated, so the
// delta covers every annotation stamped with the current step time.
func Summarize(ops []change.Op, cur *oem.Database) *Delta {
	d := &Delta{HasSnapshot: cur != nil}
	for _, op := range ops {
		switch o := op.(type) {
		case change.CreNode:
			d.Cre = append(d.Cre, nodeAtom(o.Node, cur))
		case change.UpdNode:
			d.Upd = append(d.Upd, nodeAtom(o.Node, cur))
		case change.AddArc:
			d.Add = append(d.Add, oem.Arc{Parent: o.Parent, Label: o.Label, Child: o.Child})
		case change.RemArc:
			d.Rem = append(d.Rem, oem.Arc{Parent: o.Parent, Label: o.Label, Child: o.Child})
		default:
			// Unknown op kind: poison the snapshot so label matching
			// degrades to kind-only (and an unknown kind can never be
			// proven absent, keeping the summary conservative).
			d.HasSnapshot = false
		}
	}
	return d
}

func nodeAtom(n oem.NodeID, cur *oem.Database) NodeAtom {
	a := NodeAtom{Node: n}
	if cur == nil {
		return a
	}
	seen := make(map[string]bool)
	for _, arc := range cur.In(n) {
		if !seen[arc.Label] {
			seen[arc.Label] = true
			a.Labels = append(a.Labels, arc.Label)
		}
	}
	return a
}
