package chorel

import (
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
)

// TestEquivalenceOnRandomHistories runs the direct and translated
// strategies over randomly evolved guides — including histories with
// deleted objects — and requires identical results.
func TestEquivalenceOnRandomHistories(t *testing.T) {
	queries := []string{
		`select guide.restaurant`,
		`select guide.restaurant.name`,
		`select guide.<add>restaurant`,
		`select guide.<rem at T>restaurant where T > 2Jan97`,
		// T is selected so rows are unique under both strategies: the
		// direct engine deduplicates equal *values*, while the translated
		// engine sees distinct &nv *objects* (see the package comment).
		`select N, T, NV from guide.restaurant R, R.name N, R.price<upd at T to NV>`,
		`select guide.restaurant<cre at T> where T > 3Jan97`,
		`select N from guide.restaurant R, R.name N where R.price < 20`,
		`select C from guide.restaurant.<add at T>comment C`,
	}
	for seed := int64(0); seed < 8; seed++ {
		initial, h := guidegen.GenerateHistory(seed, 20, 6, 6)
		d, err := doem.FromHistory(initial, h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		db := New("guide", d)
		for _, q := range queries {
			direct, err := db.Query(q)
			if err != nil {
				t.Fatalf("seed %d %q direct: %v", seed, q, err)
			}
			trans, err := db.QueryTranslated(q)
			if err != nil {
				t.Fatalf("seed %d %q translated: %v", seed, q, err)
			}
			if direct.Len() != trans.Len() {
				t.Errorf("seed %d %q: direct %d rows, translated %d rows",
					seed, q, direct.Len(), trans.Len())
				continue
			}
			dn := direct.FirstColumnNodes()
			tn := db.MapToDOEM(trans.FirstColumnNodes())
			if !equalIDs(dn, tn) {
				t.Errorf("seed %d %q: node sets differ: %v vs %v", seed, q, dn, tn)
			}
		}
	}
}
