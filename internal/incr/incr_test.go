package incr

import (
	"reflect"
	"testing"

	"repro/internal/change"
	"repro/internal/guidegen"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/value"
)

// extract parses, canonicalizes, and fingerprints src with the given
// names registered over the paper Guide database.
func extract(t *testing.T, src string, names ...string) *Fingerprint {
	t.Helper()
	q, err := lorel.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if err := lorel.Canonicalize(q); err != nil {
		t.Fatalf("Canonicalize(%q): %v", src, err)
	}
	db, _ := guidegen.PaperGuide()
	graphs := make(map[string]lorel.Graph, len(names))
	for _, n := range names {
		graphs[n] = lorel.NewOEMGraph(db)
	}
	return Extract(q, graphs)
}

func TestExtractCreGuard(t *testing.T) {
	f := extract(t, `select R.restaurant<cre at T> where T > t[-1]`, "R")
	if !f.Analyzable || len(f.Guards) != 1 {
		t.Fatalf("fingerprint = %+v, want one guard", f)
	}
	g := f.Guards[0]
	if g.Kind != KindCre || g.Label != "restaurant" || !g.PrefixOK || len(g.Prefix) != 0 {
		t.Errorf("guard = %+v", g)
	}
}

func TestExtractUpdWithPrefix(t *testing.T) {
	f := extract(t, `select NV from R.restaurant X, X.price<upd at T to NV>
		where T > t[-1] and NV > 15`, "R")
	if len(f.Guards) != 1 {
		t.Fatalf("guards = %+v, want one", f.Guards)
	}
	g := f.Guards[0]
	if g.Kind != KindUpd || g.Label != "price" || !g.PrefixOK ||
		!reflect.DeepEqual(g.Prefix, []string{"restaurant"}) {
		t.Errorf("guard = %+v", g)
	}
}

func TestExtractArcGuards(t *testing.T) {
	f := extract(t, `select R.<add at T>restaurant where T > t[-1]`, "R")
	if len(f.Guards) != 1 || f.Guards[0].Kind != KindAdd || f.Guards[0].Label != "restaurant" {
		t.Fatalf("add guard = %+v", f.Guards)
	}
	f = extract(t, `select R.restaurant.<rem at T>parking where T > t[0]`, "R")
	if len(f.Guards) != 1 {
		t.Fatalf("rem guards = %+v", f.Guards)
	}
	g := f.Guards[0]
	if g.Kind != KindRem || g.Label != "parking" || !g.PrefixOK ||
		!reflect.DeepEqual(g.Prefix, []string{"restaurant"}) {
		t.Errorf("rem guard = %+v", g)
	}
}

func TestExtractFreshShapes(t *testing.T) {
	cases := []struct {
		where string
		fresh bool
	}{
		{`T > t[-1]`, true},
		{`T > t[0]`, true},
		{`T >= t[0]`, true},
		{`T = t[0]`, true},
		{`t[-1] < T`, true}, // mirrored
		{`t[0] = T`, true},  // mirrored
		{`T >= t[-1]`, false},
		{`T < t[0]`, false},
		{`T != t[-1]`, false},
		{`T > t[-1] or T > t[0]`, false}, // disjunction: conservative
	}
	for _, c := range cases {
		f := extract(t, `select R.restaurant<cre at T> where `+c.where, "R")
		if !f.Analyzable {
			t.Errorf("where %s: unanalyzable", c.where)
			continue
		}
		if got := f.Guarded(); got != c.fresh {
			t.Errorf("where %s: Guarded() = %v, want %v", c.where, got, c.fresh)
		}
	}
}

func TestExtractGlobLabelKindOnly(t *testing.T) {
	f := extract(t, `select R.rest%<cre at T> where T > t[-1]`, "R")
	if len(f.Guards) != 1 {
		t.Fatalf("guards = %+v", f.Guards)
	}
	if g := f.Guards[0]; g.Kind != KindCre || g.Label != "" || g.PrefixOK {
		t.Errorf("glob guard = %+v, want kind-only", g)
	}
}

func TestExtractUnanalyzable(t *testing.T) {
	// Unregistered head name: evaluation would error, so never skip.
	f := extract(t, `select R.restaurant<cre at T> where T > t[-1]`)
	if f.Analyzable || f.Guarded() {
		t.Errorf("unregistered head: fingerprint = %+v", f)
	}
	// Never-canonicalized query.
	q, err := lorel.Parse(`select R.restaurant<cre at T> where T > t[-1]`)
	if err != nil {
		t.Fatal(err)
	}
	if f := Extract(q, nil); f.Analyzable {
		t.Errorf("non-canonical query reported analyzable")
	}
	if f := Extract(nil, nil); f.Analyzable || f.Guarded() {
		t.Errorf("nil query fingerprint = %+v", f)
	}
}

func TestSummarize(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	ops := change.Set{
		change.CreNode{Node: 900, Value: value.Str("new spot")},
		change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: 900},
		change.UpdNode{Node: ids.Price, Value: value.Int(21)},
		change.RemArc{Parent: ids.Janta, Label: "parking", Child: ids.Parking},
	}
	for _, op := range ops {
		if err := op.Apply(db); err != nil {
			t.Fatal(err)
		}
	}
	d := Summarize(ops, db)
	if !d.HasSnapshot || d.Empty() {
		t.Fatalf("delta = %+v", d)
	}
	if len(d.Cre) != 1 || d.Cre[0].Node != 900 || !reflect.DeepEqual(d.Cre[0].Labels, []string{"restaurant"}) {
		t.Errorf("Cre = %+v", d.Cre)
	}
	if len(d.Upd) != 1 || !hasLabel(d.Upd[0].Labels, "price") {
		t.Errorf("Upd = %+v", d.Upd)
	}
	if len(d.Add) != 1 || d.Add[0].Label != "restaurant" {
		t.Errorf("Add = %+v", d.Add)
	}
	if len(d.Rem) != 1 || d.Rem[0] != (oem.Arc{Parent: ids.Janta, Label: "parking", Child: ids.Parking}) {
		t.Errorf("Rem = %+v", d.Rem)
	}
	if Summarize(nil, db).Empty() != true {
		t.Errorf("empty op set not empty")
	}
	if Summarize(ops, nil).HasSnapshot {
		t.Errorf("nil snapshot claims HasSnapshot")
	}
}

func TestAffected(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	fPrice := extract(t, `select NV from R.restaurant X, X.price<upd at T to NV>
		where T > t[-1]`, "R")
	fCre := extract(t, `select R.restaurant<cre at T> where T > t[-1]`, "R")

	priceUpd := change.Set{change.UpdNode{Node: ids.Price, Value: value.Int(20)}}
	if err := priceUpd[0].Apply(db); err != nil {
		t.Fatal(err)
	}
	d := Summarize(priceUpd, db)
	if !fPrice.Affected(d, db) {
		t.Errorf("price update did not affect price watcher")
	}
	if fCre.Affected(d, db) {
		t.Errorf("price update affected cre watcher")
	}

	// An update to a node reached under a different label is filtered by
	// the in-label check.
	nameUpd := change.Set{change.UpdNode{Node: ids.BangkokName, Value: value.Str("BC")}}
	if err := nameUpd[0].Apply(db); err != nil {
		t.Fatal(err)
	}
	if fPrice.Affected(Summarize(nameUpd, db), db) {
		t.Errorf("name update affected price watcher")
	}
	// Without a snapshot the same delta is conservatively affected.
	if !fPrice.Affected(Summarize(nameUpd, nil), nil) {
		t.Errorf("snapshot-free delta not conservative")
	}
	// Unguarded fingerprints are always affected.
	if !(&Fingerprint{}).Affected(Summarize(nameUpd, db), db) {
		t.Errorf("unguarded fingerprint not always affected")
	}
}

func TestAffectedPrefixWalk(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	f := extract(t, `select NV from R.restaurant X, X.price<upd at T to NV>
		where T > t[-1]`, "R")

	// A "price" node hanging off a chain that does NOT run root
	// -restaurant-> parent is pruned by the backward walk.
	orphanParent := db.CreateNode(value.Complex())
	orphanPrice := db.CreateNode(value.Int(3))
	if err := db.AddArc(db.Root(), "archive", orphanParent); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(orphanParent, "price", orphanPrice); err != nil {
		t.Fatal(err)
	}
	upd := change.Set{change.UpdNode{Node: orphanPrice, Value: value.Int(4)}}
	if err := upd[0].Apply(db); err != nil {
		t.Fatal(err)
	}
	if f.Affected(Summarize(upd, db), db) {
		t.Errorf("walk failed to prune archive.price update")
	}

	// The real one still matches.
	upd = change.Set{change.UpdNode{Node: ids.Price, Value: value.Int(9)}}
	if err := upd[0].Apply(db); err != nil {
		t.Fatal(err)
	}
	if !f.Affected(Summarize(upd, db), db) {
		t.Errorf("walk pruned a genuine restaurant.price update")
	}
}

func TestDecideCounts(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	f := extract(t, `select R.restaurant<cre at T> where T > t[-1]`, "R")
	defer obs.SetEnabled(obs.SetEnabled(true))
	skips, evals := mSkips.Value(), mEvals.Value()
	upd := change.Set{change.UpdNode{Node: ids.Price, Value: value.Int(20)}}
	if f.Decide(Summarize(upd, db), db) {
		t.Errorf("Decide evaluated a provably-empty poll")
	}
	cre := change.Set{change.CreNode{Node: 901, Value: value.Str("x")},
		change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: 901}}
	for _, op := range cre {
		if err := op.Apply(db); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Decide(Summarize(cre, db), db) {
		t.Errorf("Decide skipped an affected poll")
	}
	if mSkips.Value() != skips+1 || mEvals.Value() != evals+1 {
		t.Errorf("counters: skips %d->%d evals %d->%d", skips, mSkips.Value(), evals, mEvals.Value())
	}
}

func TestIndex(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	ix := NewIndex()
	ix.Put("price", extract(t, `select NV from R.restaurant X, X.price<upd at T to NV>
		where T > t[-1]`, "R"))
	ix.Put("cre", extract(t, `select R.restaurant<cre at T> where T > t[-1]`, "R"))
	ix.Put("always", &Fingerprint{}) // unanalyzable: every probe returns it
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}

	upd := change.Set{change.UpdNode{Node: ids.Price, Value: value.Int(20)}}
	if err := upd[0].Apply(db); err != nil {
		t.Fatal(err)
	}
	got := ix.Probe(Summarize(upd, db), db)
	if !reflect.DeepEqual(got, []string{"always", "price"}) {
		t.Errorf("Probe(upd) = %v", got)
	}

	cre := change.Set{change.CreNode{Node: 902, Value: value.Str("y")},
		change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: 902}}
	for _, op := range cre {
		if err := op.Apply(db); err != nil {
			t.Fatal(err)
		}
	}
	got = ix.Probe(Summarize(cre, db), db)
	if !reflect.DeepEqual(got, []string{"always", "cre"}) {
		t.Errorf("Probe(cre) = %v", got)
	}

	ix.Remove("always")
	ix.Remove("cre")
	got = ix.Probe(Summarize(cre, db), db)
	if len(got) != 0 {
		t.Errorf("Probe after Remove = %v", got)
	}
	// Re-Put with a changed fingerprint re-files the id.
	ix.Put("price", &Fingerprint{})
	got = ix.Probe(Summarize(upd, db), db)
	if !reflect.DeepEqual(got, []string{"price"}) {
		t.Errorf("Probe after re-Put = %v", got)
	}
}

func TestEnabledToggle(t *testing.T) {
	if !Enabled() {
		t.Fatal("default not enabled")
	}
	prev := SetEnabled(false)
	if !prev || Enabled() {
		t.Errorf("SetEnabled(false): prev=%v enabled=%v", prev, Enabled())
	}
	if prev := SetEnabled(true); prev {
		t.Errorf("SetEnabled(true) prev = %v", prev)
	}
}
