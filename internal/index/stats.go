package index

import (
	"repro/internal/plan"
)

// Graph serves planner statistics straight from the structures the
// adjacency indexes already build: per-label aggregates fall out of the
// same (parent, label) loop that fills outLabeled/outAllLabeled, so
// statistics are exactly as fresh as the indexes themselves and cost one
// map write per distinct (parent, label) at build time.
var _ plan.Stats = (*Graph)(nil)

// StatsVersion implements plan.Stats: statistics move with the database
// generation, the same key the index tables invalidate on.
func (g *Graph) StatsVersion() uint64 { return g.d.Version() }

// NodeCount implements plan.Stats: every node ever created.
func (g *Graph) NodeCount() int { return len(g.tables().nodes) }

// ArcCount implements plan.Stats: current-snapshot arcs, all labels.
func (g *Graph) ArcCount() int { return g.tables().arcTotal }

// AnnotCount implements plan.Stats: total annotations in the history.
func (g *Graph) AnnotCount() int { return g.tables().annotTotal }

// LabelStats implements plan.Stats.
func (g *Graph) LabelStats(label string) plan.LabelCard {
	return g.tables().labelStats[label]
}
