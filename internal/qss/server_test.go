package qss

import (
	"net"
	"testing"
	"time"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wrapper"
)

// startServer launches a server on a random port and returns its address
// and a cleanup function.
func startServer(t *testing.T, sources map[string]wrapper.Source) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sources, NewSimClock(timestamp.MustParse("1Jan97")))
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

func TestClientServerEndToEnd(t *testing.T) {
	src, ids := paperSource(t)
	addr, _ := startServer(t, map[string]wrapper.Source{"guide": src})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	err = cl.Subscribe("Restaurants", "guide", "guide",
		`select guide.restaurant`,
		`select Restaurants.restaurant<cre at T> where T > t[-1]`,
		"") // manual polling
	if err != nil {
		t.Fatal(err)
	}

	names, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "Restaurants" {
		t.Fatalf("List = %v", names)
	}

	// Manual poll (explicit-request mode): initial snapshot notifies.
	if err := cl.Poll("Restaurants", "30Dec96"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-cl.Notifications():
		if n.Subscription != "Restaurants" {
			t.Errorf("notification for %q", n.Subscription)
		}
		if got := len(n.Answer.OutLabeled(n.Answer.Root(), "restaurant")); got != 2 {
			t.Errorf("notified restaurants = %d, want 2", got)
		}
		if !n.At.Equal(timestamp.MustParse("30Dec96")) {
			t.Errorf("notification time = %s", n.At)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification within 5s")
	}

	// Unchanged poll: no notification expected; verify via a follow-up
	// change that we receive exactly one more.
	if err := cl.Poll("Restaurants", "31Dec96"); err != nil {
		t.Fatal(err)
	}
	if err := src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "name", nm)
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Poll("Restaurants", "1Jan97"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-cl.Notifications():
		if !n.At.Equal(timestamp.MustParse("1Jan97")) {
			t.Errorf("second notification at %s, want 1Jan97 (none expected for 31Dec96)", n.At)
		}
		if got := len(n.Answer.OutLabeled(n.Answer.Root(), "restaurant")); got != 1 {
			t.Errorf("second notification restaurants = %d, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no second notification within 5s")
	}

	// Unsubscribe and verify.
	if err := cl.Unsubscribe("Restaurants"); err != nil {
		t.Fatal(err)
	}
	names, err = cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("List after unsubscribe = %v", names)
	}
}

func TestServerErrors(t *testing.T) {
	src, _ := paperSource(t)
	addr, _ := startServer(t, map[string]wrapper.Source{"guide": src})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Subscribe("x", "nosuchsource", "guide", "select a.b", "select c.d", ""); err == nil {
		t.Error("unknown source accepted")
	}
	if err := cl.Poll("ghost", "1Jan97"); err == nil {
		t.Error("poll of unknown subscription accepted")
	}
	if err := cl.Unsubscribe("ghost"); err == nil {
		t.Error("unsubscribe of unknown subscription accepted")
	}
	if err := cl.Subscribe("y", "guide", "guide", "select guide.restaurant", "select y.restaurant", "every nonsense"); err == nil {
		t.Error("bad frequency accepted")
	}
}

func TestConnectionCleanupRemovesSubscriptions(t *testing.T) {
	src, _ := paperSource(t)
	addr, srv := startServer(t, map[string]wrapper.Source{"guide": src})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe("gone", "guide", "guide",
		"select guide.restaurant", "select gone.restaurant", ""); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.Service().List()) == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("subscriptions survived disconnect: %v", srv.Service().List())
}

func TestSchedulerWithSimClock(t *testing.T) {
	src, _ := paperSource(t)
	var mu = make(chan Notification, 16)
	svc := NewService(func(n Notification) { mu <- n })
	if err := svc.Subscribe(Subscription{
		Name: "R", SourceName: "guide", Source: src,
		Polling: `select guide.restaurant`,
		Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
	}); err != nil {
		t.Fatal(err)
	}
	clock := NewSimClock(timestamp.MustParse("30Dec96"))
	sch := NewScheduler(svc, clock, func(sub string, err error) { t.Errorf("poll error: %v", err) })
	sch.Start("R", Every{Interval: 24 * time.Hour})
	// The first simulated poll fires essentially immediately.
	select {
	case n := <-mu:
		if n.Result.Len() != 2 {
			t.Errorf("scheduled poll results = %d", n.Result.Len())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler did not poll")
	}
	sch.StopAll()
}

func TestParseFreqSpecs(t *testing.T) {
	cases := map[string]string{
		"every 10 minutes":       "every 10m0s",
		"every 2 hours":          "every 2h0m0s",
		"every 30 seconds":       "every 30s",
		"every minute":           "every 1m0s",
		"every Friday at 5:00pm": "every Friday at 17:00",
		"every night at 11:30pm": "every day at 23:30",
		"every day at 9am":       "every day at 09:00",
	}
	for in, want := range cases {
		f, err := ParseFreq(in)
		if err != nil {
			t.Errorf("ParseFreq(%q): %v", in, err)
			continue
		}
		if f.String() != want {
			t.Errorf("ParseFreq(%q) = %q, want %q", in, f.String(), want)
		}
	}
	for _, bad := range []string{"", "sometimes", "every", "every -1 hours", "every blursday at 5pm", "every day at 25:00"} {
		if _, err := ParseFreq(bad); err == nil {
			t.Errorf("ParseFreq(%q) succeeded", bad)
		}
	}
}

func TestFreqNext(t *testing.T) {
	// Daily 23:30, from 30Dec96 10:00 -> 30Dec96 23:30; from 23:30 -> next day.
	d := Daily{Hour: 23, Minute: 30}
	at := timestamp.MustParse("30Dec96 10:00")
	n1 := d.Next(at)
	if n1.String() != "30Dec96 23:30" {
		t.Errorf("Daily.Next = %s", n1)
	}
	n2 := d.Next(n1)
	if n2.String() != "31Dec96 23:30" {
		t.Errorf("Daily.Next chained = %s", n2)
	}
	// Weekly Friday 17:00. 1Jan97 was a Wednesday.
	w := Weekly{Day: time.Friday, Hour: 17}
	n3 := w.Next(timestamp.MustParse("1Jan97"))
	if n3.String() != "3Jan97 17:00" {
		t.Errorf("Weekly.Next = %s", n3)
	}
	n4 := w.Next(n3)
	if n4.String() != "10Jan97 17:00" {
		t.Errorf("Weekly.Next chained = %s", n4)
	}
	// Every 10 minutes.
	e := Every{Interval: 10 * time.Minute}
	n5 := e.Next(timestamp.MustParse("1Jan97"))
	if n5.String() != "1Jan97 00:10" {
		t.Errorf("Every.Next = %s", n5)
	}
}

func TestServerSurvivesMalformedClient(t *testing.T) {
	src, _ := paperSource(t)
	addr, _ := startServer(t, map[string]wrapper.Source{"guide": src})
	// A client that sends garbage: the server must drop the connection
	// without affecting other clients.
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	bad.Close()

	good, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	names, err := good.List()
	if err != nil {
		t.Fatalf("healthy client broken by peer garbage: %v", err)
	}
	if len(names) != 0 {
		t.Errorf("names = %v", names)
	}
}
