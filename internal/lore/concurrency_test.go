package lore_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/chorel"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/lore"
)

// TestConcurrentQueriesWithApplySet drives N goroutines of parallel Chorel
// queries through Store.ViewDOEM while another goroutine feeds the
// remaining history steps through WAL-backed ApplySet — the tentpole's
// claim that one store serves readers and a writer at once. Run under
// -race this is the stress gate for the graph layer's read-path contract.
func TestConcurrentQueriesWithApplySet(t *testing.T) {
	initial, h := guidegen.GenerateHistory(11, 30, 12, 5)
	if len(h) < 4 {
		t.Fatalf("history too short: %d steps", len(h))
	}
	// Seed the store with the first few steps applied; the writer streams
	// in the rest while readers query.
	seedSteps, liveSteps := h[:2], h[2:]
	d, err := doem.FromHistory(initial, seedSteps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lore.OpenWAL(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutDOEM("guide", d); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`select R.name from guide.restaurant R where R.price < 30`,
		`select C from guide.restaurant.<add at T>comment C where T > 1Jan97`,
		`select R, T from guide.restaurant<cre at T> R`,
		`select guide.#`,
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 32)

	// Writer: stream the remaining history into the store.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, step := range liveSteps {
			if err := s.ApplySet("guide", step.At, step.Ops); err != nil {
				errCh <- fmt.Errorf("ApplySet at %s: %w", step.At, err)
				return
			}
		}
	}()

	// Readers: parallel Chorel queries through the coordinated view.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				q := queries[(w+i)%len(queries)]
				err := s.ViewDOEM("guide", func(dd *doem.Database) error {
					db := chorel.New("guide", dd)
					db.SetParallelism(4)
					_, qerr := db.Query(q)
					return qerr
				})
				if err != nil {
					errCh <- fmt.Errorf("worker %d query %q: %w", w, q, err)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The store must have absorbed every step despite the read load.
	got, err := s.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if last := got.LastStep(); !last.Equal(h[len(h)-1].At) {
		t.Fatalf("store last step %s, want %s", last, h[len(h)-1].At)
	}
}

// TestConcurrentApplySetCheckpoint is the race-stress gate for the
// wal.CheckpointDOEM concurrency contract: one goroutine streams change
// sets through ApplySet while another repeatedly checkpoints the same
// database. The store-wide lock must keep marshal-and-install atomic with
// respect to appends — under -race, and verified by reopening the store
// and comparing against the full history.
func TestConcurrentApplySetCheckpoint(t *testing.T) {
	initial, h := guidegen.GenerateHistory(17, 20, 15, 5)
	dir := t.TempDir()
	s, err := lore.OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutDOEM("guide", doem.New(initial.Clone())); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, step := range h {
			if err := s.ApplySet("guide", step.At, step.Ops); err != nil {
				errCh <- fmt.Errorf("ApplySet at %s: %w", step.At, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := s.Checkpoint("guide"); err != nil {
				errCh <- fmt.Errorf("Checkpoint: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Whatever interleaving happened, replaying the persisted state must
	// yield exactly the full history's final database.
	want, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lore.OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Current().Equal(want.Current()) {
		t.Error("persisted state diverged from the applied history")
	}
	last := got.LastStep()
	if st, ok := s2.SegmentStore("guide"); ok && st.LastSeal().After(last) {
		// Segmented mode: a trailing seal leaves the active segment empty,
		// so the newest instant may be the seal boundary itself.
		last = st.LastSeal()
	}
	if !last.Equal(h[len(h)-1].At) {
		t.Errorf("last step %s, want %s", last, h[len(h)-1].At)
	}
}
