package qss

import (
	"sync"
	"time"

	"repro/internal/timestamp"
)

// Clock abstracts time so schedulers can run against the real clock or a
// simulated one in tests and examples.
type Clock interface {
	// Now returns the current instant.
	Now() timestamp.Time
	// Sleep blocks until the given instant (or an implementation-defined
	// wakeup, for simulated clocks).
	SleepUntil(t timestamp.Time)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() timestamp.Time { return timestamp.FromTime(time.Now()) }

// SleepUntil implements Clock.
func (RealClock) SleepUntil(t timestamp.Time) {
	d := t.Sub(timestamp.FromTime(time.Now()))
	if d > 0 {
		time.Sleep(d)
	}
}

// SimClock is a manually advanced clock for deterministic runs.
type SimClock struct {
	mu  sync.Mutex
	now timestamp.Time
}

// NewSimClock starts a simulated clock at the given instant.
func NewSimClock(start timestamp.Time) *SimClock { return &SimClock{now: start} }

// Now implements Clock.
func (c *SimClock) Now() timestamp.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// SleepUntil implements Clock: simulated time jumps forward immediately.
func (c *SimClock) SleepUntil(t timestamp.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// Scheduler drives a subscription's polls at its frequency specification's
// times until Stop is called.
type Scheduler struct {
	svc   *Service
	clock Clock

	mu      sync.Mutex
	stopped map[string]chan struct{}
	wg      sync.WaitGroup
	onError func(sub string, err error)
}

// NewScheduler builds a scheduler over svc. onError (optional) observes
// polling failures; polling continues afterwards.
func NewScheduler(svc *Service, clock Clock, onError func(sub string, err error)) *Scheduler {
	if onError == nil {
		onError = func(string, error) {}
	}
	return &Scheduler{svc: svc, clock: clock, stopped: make(map[string]chan struct{}), onError: onError}
}

// Start begins polling the named subscription per its frequency spec.
func (sch *Scheduler) Start(name string, freq Freq) {
	stop := make(chan struct{})
	sch.mu.Lock()
	if old, ok := sch.stopped[name]; ok {
		close(old)
	}
	sch.stopped[name] = stop
	sch.mu.Unlock()

	sch.wg.Add(1)
	go func() {
		defer sch.wg.Done()
		next := freq.Next(sch.clock.Now())
		for {
			select {
			case <-stop:
				return
			default:
			}
			sch.clock.SleepUntil(next)
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sch.svc.Poll(name, next); err != nil {
				sch.onError(name, err)
			}
			next = freq.Next(next)
		}
	}()
}

// Stop ends polling for the named subscription.
func (sch *Scheduler) Stop(name string) {
	sch.mu.Lock()
	if ch, ok := sch.stopped[name]; ok {
		close(ch)
		delete(sch.stopped, name)
	}
	sch.mu.Unlock()
}

// StopAll ends every poller and waits for them to exit.
func (sch *Scheduler) StopAll() {
	sch.mu.Lock()
	for name, ch := range sch.stopped {
		close(ch)
		delete(sch.stopped, name)
	}
	sch.mu.Unlock()
	sch.wg.Wait()
}
