// Command qsc is the Query Subscription Client (paper Figure 7): it
// connects to a qss server, creates subscriptions, and prints the
// notifications as they arrive.
//
// Usage:
//
//	qsc -connect ADDR[,ADDR...] list
//	qsc -connect ADDR[,ADDR...] poll NAME [TIME]
//	qsc -connect ADDR[,ADDR...] status
//	qsc -connect ADDR[,ADDR...] [-reconnect] [-ping DUR] [-idle DUR] watch NAME SOURCE POLLING FILTER [FREQ]
//
// Example (against the demo server):
//
//	qsc watch NewRestaurants guide \
//	  'select guide.restaurant' \
//	  'select NewRestaurants.restaurant<cre at T> where T > t[-1]' \
//	  'every 3 seconds'
//
// With -reconnect, watch survives server restarts and network drops: the
// client redials with backoff, resumes its subscription (replaying what
// the server buffered during the outage) and dedupes notifications, so
// each one prints exactly once. -ping keeps a server-side idle timeout
// from reaping the connection; -idle tears down (and, with -reconnect,
// redials) a connection whose server has gone silent. Ctrl-C exits
// cleanly.
//
// Against a replicated deployment (see docs/replication.md), -connect
// takes a comma-separated list of servers: one-shot commands try each in
// order, and watch -reconnect rotates through them on failure and follows
// redirects, so the client finds whichever node is primary after a
// failover and resumes its subscription there exactly-once. status prints
// the connected node's role and staleness bound.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/qss"
)

func main() {
	addr := flag.String("connect", "127.0.0.1:4997", "qss server address(es), comma-separated failover targets")
	sourceName := flag.String("source-name", "", "name the polling query uses for the source (default: the source name)")
	reconnect := flag.Bool("reconnect", false, "auto-reconnect and resume subscriptions (watch mode)")
	ping := flag.Duration("ping", 0, "ping the server at this interval to defeat its idle timeout (0 = off)")
	idle := flag.Duration("idle", 0, "give up on a connection silent for this long (0 = never)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println("qsc", obs.Version())
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		usage()
	}
	if err := run(addrs, *sourceName, *reconnect, *ping, *idle, args); err != nil {
		fmt.Fprintln(os.Stderr, "qsc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  qsc [-connect ADDR[,ADDR...]] list
  qsc [-connect ADDR[,ADDR...]] poll NAME [TIME]
  qsc [-connect ADDR[,ADDR...]] status
  qsc [-connect ADDR[,ADDR...]] [-reconnect] [-ping DUR] [-idle DUR] watch NAME SOURCE POLLING FILTER [FREQ]`)
	os.Exit(2)
}

// dialFirst connects to the first reachable address.
func dialFirst(addrs []string) (*qss.Client, error) {
	var errs []error
	for _, a := range addrs {
		cl, err := qss.Dial(a)
		if err == nil {
			return cl, nil
		}
		errs = append(errs, err)
	}
	return nil, errors.Join(errs...)
}

func run(addrs []string, sourceName string, reconnect bool, ping, idle time.Duration, args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch args[0] {
	case "list":
		cl, err := dialFirst(addrs)
		if err != nil {
			return err
		}
		defer cl.Close()
		names, err := cl.List()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "poll":
		if len(args) < 2 {
			usage()
		}
		at := ""
		if len(args) > 2 {
			at = args[2]
		}
		cl, err := dialFirst(addrs)
		if err != nil {
			return err
		}
		defer cl.Close()
		return cl.Poll(args[1], at)
	case "status":
		cl, err := dialFirst(addrs)
		if err != nil {
			return err
		}
		defer cl.Close()
		st, err := cl.Status()
		if err != nil {
			return err
		}
		if st == nil {
			fmt.Println("replication: off")
			return nil
		}
		fmt.Printf("role: %s\nepoch: %d\napplied: %d\ncommit: %d\nlag: %d\n", st.Role, st.Epoch, st.Applied, st.Commit, st.LagSeq)
		if st.Fenced {
			fmt.Println("fenced: true")
		}
		if st.AppliedAt != "" {
			fmt.Printf("applied-at: %s\n", st.AppliedAt)
		}
		if st.Primary != "" {
			fmt.Printf("primary: %s\n", st.Primary)
		}
		return nil
	case "watch":
		if len(args) < 5 {
			usage()
		}
		name, source, polling, filter := args[1], args[2], args[3], args[4]
		freq := ""
		if len(args) > 5 {
			freq = args[5]
		}
		sn := sourceName
		if sn == "" {
			sn = source
		}
		if reconnect {
			return watchRobust(ctx, addrs, name, source, sn, polling, filter, freq, ping, idle)
		}
		return watchOnce(ctx, addrs, name, source, sn, polling, filter, freq, idle)
	default:
		usage()
		return nil
	}
}

// watchOnce watches over a single connection; any failure ends the watch.
func watchOnce(ctx context.Context, addrs []string, name, source, sourceName, polling, filter, freq string, idle time.Duration) error {
	cl, err := dialFirst(addrs)
	if err != nil {
		return err
	}
	defer cl.Close()
	if idle > 0 {
		cl.SetIdleTimeout(idle)
	}
	if err := cl.Subscribe(name, source, sourceName, polling, filter, freq); err != nil {
		return err
	}
	fmt.Printf("qsc: subscribed %q; waiting for notifications (Ctrl-C to stop)\n", name)
	go func() {
		<-ctx.Done()
		cl.Close()
	}()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("qsc: interrupted")
			return nil
		case h, ok := <-cl.Health():
			if ok {
				printHealth(h)
			}
		case n, ok := <-cl.Notifications():
			if !ok {
				if ctx.Err() != nil {
					fmt.Println("qsc: interrupted")
					return nil
				}
				return cl.Err()
			}
			printNotification(n)
		}
	}
}

// watchRobust watches through connection failures, resuming on reconnect:
// it rotates through the fallback addresses and follows replica redirects,
// so after a failover the subscription lands on the new primary.
func watchRobust(ctx context.Context, addrs []string, name, source, sourceName, polling, filter, freq string, ping, idle time.Duration) error {
	rc := qss.DialRobustAddrs(addrs, &qss.RobustOptions{
		PingInterval: ping,
		IdleTimeout:  idle,
		OnEvent: func(event string, err error) {
			if err != nil {
				fmt.Printf("qsc: %s: %v\n", event, err)
			} else {
				fmt.Printf("qsc: %s\n", event)
			}
		},
	})
	defer rc.Close()
	go func() {
		<-ctx.Done()
		rc.Close()
	}()
	// The first address may be a read replica: the subscribe comes back as
	// a redirect (or races the teardown of the redirected connection), the
	// client redials at the primary, and a retry lands.
	err := rc.Subscribe(name, source, sourceName, polling, filter, freq)
	for i := 0; err != nil && i < 50; i++ {
		var re *qss.RedirectError
		if !errors.As(err, &re) && !strings.Contains(err.Error(), "connection closed") {
			break
		}
		if ctx.Err() != nil {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
		err = rc.Subscribe(name, source, sourceName, polling, filter, freq)
	}
	if err != nil {
		return err
	}
	fmt.Printf("qsc: subscribed %q; reconnecting on failure (Ctrl-C to stop)\n", name)
	notifs, health := rc.Notifications(), rc.Health()
	for notifs != nil || health != nil {
		select {
		case h, ok := <-health:
			if !ok {
				health = nil
				continue
			}
			printHealth(h)
		case n, ok := <-notifs:
			if !ok {
				notifs = nil
				continue
			}
			printNotification(n)
		}
	}
	fmt.Println("qsc: interrupted")
	return nil
}

func printNotification(n qss.ClientNotification) {
	fmt.Printf("\n== %s @ %s ==\n", n.Subscription, n.At)
	printAnswer(n.Answer)
}

func printHealth(h qss.ClientHealth) {
	if h.Error != "" {
		fmt.Printf("qsc: health %s: %s -> %s (failures=%d: %s)\n",
			h.Subscription, h.From, h.To, h.Failures, h.Error)
	} else {
		fmt.Printf("qsc: health %s: %s -> %s\n", h.Subscription, h.From, h.To)
	}
}

// printAnswer renders a notification's answer database as an indented tree.
func printAnswer(db *oem.Database) {
	var walk func(n oem.NodeID, indent string, seen map[oem.NodeID]bool)
	walk = func(n oem.NodeID, indent string, seen map[oem.NodeID]bool) {
		if seen[n] {
			fmt.Printf("%s(shared %s)\n", indent, n)
			return
		}
		seen[n] = true
		for _, a := range db.Out(n) {
			v := db.MustValue(a.Child)
			if v.IsComplex() {
				fmt.Printf("%s%s:\n", indent, a.Label)
				walk(a.Child, indent+"  ", seen)
			} else {
				fmt.Printf("%s%s: %s\n", indent, a.Label, v.Display())
			}
		}
	}
	walk(db.Root(), "  ", make(map[oem.NodeID]bool))
}
