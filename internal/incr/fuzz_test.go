package incr

import (
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// FuzzFilterFingerprint checks the extractor never under-approximates:
// whenever the fingerprint of a (fuzzer-mutated) filter query decides a
// fuzzer-derived change set cannot affect it, evaluating the query after
// applying that change set must return an empty result with no error —
// the exact condition under which qss/trigger suppress the evaluation.
// Queries the extractor cannot analyze come back unguarded and are never
// skipped, so they trivially satisfy the property and the fuzzer's job
// is to hunt for guarded fingerprints whose skip is wrong.
func FuzzFilterFingerprint(f *testing.F) {
	f.Add(`select R.restaurant<cre at T> where T > t[-1]`, []byte{0, 7, 42})
	f.Add(`select NV from R.restaurant X, X.price<upd at T to NV> where T > t[-1] and NV > 15`, []byte{1, 2, 3, 4})
	f.Add(`select R.<add at T>restaurant where T > t[0]`, []byte{8, 8, 8})
	f.Add(`select R.restaurant.<rem at T>parking where T >= t[0]`, []byte{3, 1})
	f.Add(`select R.rest%<cre at T> where T = t[0]`, []byte{0})
	f.Add(`select R.restaurant<upd at T> where t[-1] < T`, []byte{5, 5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, src string, raw []byte) {
		q, err := lorel.Parse(src)
		if err != nil {
			t.Skip()
		}
		if err := lorel.Canonicalize(q); err != nil {
			t.Skip()
		}

		db, ids := guidegen.PaperGuide()
		d := doem.New(db)
		t1 := timestamp.MustParse("1Jan97")
		t2 := timestamp.MustParse("2Jan97")
		if err := d.Apply(t1, change.Set{
			change.CreNode{Node: 800, Value: value.Str("seed")},
			change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: 800},
		}); err != nil {
			t.Fatal(err)
		}

		ops := fuzzOps(raw, d.Current(), ids)
		if len(ops) == 0 {
			t.Skip()
		}
		if err := d.Apply(t2, ops); err != nil {
			t.Skip() // invalid change set for this state
		}

		fp := Extract(q, map[string]lorel.Graph{"R": d})
		if !fp.Guarded() || fp.Affected(Summarize(ops, d.Current()), d.Current()) {
			return // would be evaluated normally: nothing to check
		}

		// The fingerprint skips this poll: prove the evaluation empty.
		eng := lorel.NewEngine()
		eng.Register("R", d)
		eng.SetPollTimes([]timestamp.Time{t1, t2})
		res, err := eng.Query(src)
		if err != nil {
			t.Fatalf("skipped query errors under evaluation: %v\nquery: %s\nops: %v", err, src, ops)
		}
		if res.Len() != 0 {
			t.Fatalf("skipped query has %d rows\nquery: %s\nops: %v", res.Len(), src, ops)
		}
	})
}

// fuzzOps derives a change set from fuzz bytes over the current snapshot:
// creations of fresh nodes, updates of existing atomic nodes, arc
// additions between known nodes, and removals of existing arcs.
func fuzzOps(raw []byte, cur *oem.Database, ids *guidegen.PaperIDs) change.Set {
	targets := []oem.NodeID{ids.Price, ids.BangkokName, ids.JantaName, ids.JantaPrice, ids.Comment, 800}
	parents := []oem.NodeID{cur.Root(), ids.Bangkok, ids.Janta, ids.Address}
	labels := []string{"restaurant", "price", "name", "zip", "parking", "category"}
	arcs := cur.Arcs()

	var ops change.Set
	next := oem.NodeID(1000)
	for i := 0; i+2 < len(raw) && len(ops) < 6; i += 3 {
		a, b, c := raw[i], raw[i+1], raw[i+2]
		switch a % 4 {
		case 0:
			n := next
			next++
			ops = append(ops, change.CreNode{Node: n, Value: value.Int(int64(b))})
			if c%2 == 0 {
				ops = append(ops, change.AddArc{
					Parent: parents[int(c)%len(parents)],
					Label:  labels[int(b)%len(labels)],
					Child:  n,
				})
			}
		case 1:
			ops = append(ops, change.UpdNode{
				Node:  targets[int(b)%len(targets)],
				Value: value.Int(int64(c)),
			})
		case 2:
			ops = append(ops, change.AddArc{
				Parent: parents[int(b)%len(parents)],
				Label:  labels[int(c)%len(labels)],
				Child:  targets[int(b+c)%len(targets)],
			})
		case 3:
			if len(arcs) == 0 {
				continue
			}
			arc := arcs[(int(b)<<8|int(c))%len(arcs)]
			ops = append(ops, change.RemArc{Parent: arc.Parent, Label: arc.Label, Child: arc.Child})
		}
	}
	return ops
}
