// Benchmarks regenerating the reproduction's experiment series (B1-B8 in
// DESIGN.md). The paper itself publishes no quantitative tables; these
// benches characterize the design choices it discusses: DOEM maintenance
// cost, snapshot materialization, direct versus translated Chorel
// execution, annotation indexes (Section 7 future work), snapshot
// differencing, QSS polling cycles, encoding overhead, and htmldiff.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/change"
	"repro/internal/chorel"
	"repro/internal/doem"
	"repro/internal/encoding"
	"repro/internal/guidegen"
	"repro/internal/htmldiff"
	"repro/internal/lore"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/oemdiff"
	"repro/internal/qss"
	"repro/internal/timestamp"
	"repro/internal/trigger"
	"repro/internal/value"
	"repro/internal/wrapper"
)

// --- shared fixtures ---

func generate(b *testing.B, restaurants, steps, opsPerStep int) (*oem.Database, *doem.Database) {
	b.Helper()
	initial, h := guidegen.GenerateHistory(1, restaurants, steps, opsPerStep)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		b.Fatal(err)
	}
	return initial, d
}

// --- B1: DOEM construction throughput vs. history length ---

func BenchmarkDOEMConstruct(b *testing.B) {
	for _, steps := range []int{10, 50, 200} {
		initial, h := guidegen.GenerateHistory(1, 100, steps, 10)
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := doem.FromHistory(initial, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B2: snapshot materialization cost ---

func BenchmarkSnapshotAt(b *testing.B) {
	_, d := generate(b, 200, 100, 10)
	early := timestamp.MustParse("2Jan97")
	late := timestamp.MustParse("1Jan99")
	for name, t := range map[string]timestamp.Time{
		"original": timestamp.NegInf,
		"early":    early,
		"late":     late,
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.SnapshotAt(t)
			}
		})
	}
}

// --- B3: Chorel execution strategies (Section 5) ---

// strategyQueries are the query classes compared across strategies.
var strategyQueries = []struct {
	name string
	text string
}{
	{"plain-scan", `select guide.restaurant.name`},
	{"add-scan", `select guide.<add at T>restaurant where T > 1Jan97`},
	{"upd-join", `select N, NV from guide.restaurant R, R.name N, R.price<upd to NV>`},
}

func BenchmarkChorelDirect(b *testing.B) {
	_, d := generate(b, 200, 50, 10)
	eng := lorel.NewEngine()
	eng.Register("guide", d)
	for _, q := range strategyQueries {
		parsed, err := lorel.Parse(q.text)
		if err != nil {
			b.Fatal(err)
		}
		if err := lorel.Canonicalize(parsed); err != nil {
			b.Fatal(err)
		}
		b.Run(q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChorelTranslated(b *testing.B) {
	_, d := generate(b, 200, 50, 10)
	cdb := chorel.New("guide", d)
	cdb.Encoding() // build once, outside the timed loop
	for _, q := range strategyQueries {
		b.Run(q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cdb.QueryTranslated(q.text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChorelEncodeOnce measures the one-time encoding cost the
// translated strategy pays per database version.
func BenchmarkChorelEncodeOnce(b *testing.B) {
	_, d := generate(b, 200, 50, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		encoding.Encode(d)
	}
}

// --- B4: annotation-index ablation (Section 7 future work) ---

func BenchmarkAnnotationIndex(b *testing.B) {
	_, d := generate(b, 500, 100, 10)
	// A selective one-day window: the index answers it with a binary
	// search plus a handful of entries, while the query engine still scans
	// every restaurant arc.
	from := timestamp.MustParse("1Feb97")
	to := timestamp.MustParse("2Feb97")

	b.Run("chorel-scan", func(b *testing.B) {
		eng := lorel.NewEngine()
		eng.Register("guide", d)
		q, err := lorel.Parse(`select guide.restaurant<cre at T> where T > 1Feb97 and T <= 2Feb97`)
		if err != nil {
			b.Fatal(err)
		}
		if err := lorel.Canonicalize(q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Eval(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index-lookup", func(b *testing.B) {
		ix := lore.BuildAnnotationIndex(d)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.CreatedIn(from, to)
		}
	})
	b.Run("index-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lore.BuildAnnotationIndex(d)
		}
	})
}

// --- B5: snapshot differencing ---

func benchSnapshots(b *testing.B, n int) (*oem.Database, *oem.Database) {
	b.Helper()
	ev := guidegen.NewEvolver(1, n)
	old := ev.DB.Clone()
	ev.Step(n / 10)
	return old, ev.DB
}

func BenchmarkOEMDiffIdentity(b *testing.B) {
	for _, n := range []int{100, 500, 2000} {
		old, new := benchSnapshots(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := oemdiff.DiffIdentity(old, new); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOEMDiffMatching(b *testing.B) {
	for _, n := range []int{100, 500, 2000} {
		old, newDB := benchSnapshots(b, n)
		// Re-id the new snapshot (labels preserved) so matching is
		// actually exercised.
		fresh, err := wrapper.Unstable{Inner: wrapper.Static{DB: newDB}}.Poll()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := oemdiff.Diff(old, fresh, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B6: QSS polling cycle ---

func BenchmarkQSSCycle(b *testing.B) {
	for _, n := range []int{50, 200, 1000} {
		b.Run(fmt.Sprintf("restaurants=%d", n), func(b *testing.B) {
			ev := guidegen.NewEvolver(1, n)
			src := wrapper.NewMutable(ev.DB)
			svc := qss.NewService(nil)
			if err := svc.Subscribe(qss.Subscription{
				Name: "R", SourceName: "guide", Source: src,
				Polling: `select guide.restaurant`,
				Filter:  `select R.restaurant<cre at T> where T > t[-1]`,
			}); err != nil {
				b.Fatal(err)
			}
			t := timestamp.MustParse("1Jan97")
			if _, err := svc.Poll("R", t); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := src.Mutate(func(*oem.Database) error { ev.Step(5); return nil }); err != nil {
					b.Fatal(err)
				}
				t = t.Add(3600e9)
				b.StartTimer()
				if _, err := svc.Poll("R", t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B7: encoding overhead ---

func BenchmarkEncodingOverhead(b *testing.B) {
	for _, steps := range []int{20, 100} {
		_, d := generate(b, 200, steps, 10)
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			b.ReportAllocs()
			var stats encoding.Stats
			for i := 0; i < b.N; i++ {
				enc := encoding.Encode(d)
				stats = encoding.Measure(d, enc)
			}
			b.ReportMetric(stats.NodeFactor(), "node-factor")
			b.ReportMetric(stats.ArcFactor(), "arc-factor")
		})
	}
}

// --- B8: htmldiff ---

func makePage(entries int, bump string) string {
	var sb strings.Builder
	sb.WriteString("<html><body><h1>Guide</h1><ul>")
	for i := 0; i < entries; i++ {
		price := 10 + i%30
		note := ""
		if i == entries/2 {
			note = bump
		}
		fmt.Fprintf(&sb, "<li><b>Restaurant %d</b> price %d.%s</li>", i, price, note)
	}
	sb.WriteString("</ul></body></html>")
	return sb.String()
}

func BenchmarkHTMLDiff(b *testing.B) {
	for _, n := range []int{50, 200, 1000} {
		oldPage := makePage(n, "")
		newPage := makePage(n, " Now with patio seating!")
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := htmldiff.Markup(oldPage, newPage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- the paper's worked-example queries as micro-benches (Q1-Q5) ---

func BenchmarkPaperQueries(b *testing.B) {
	db, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(db, guidegen.PaperHistory(ids))
	if err != nil {
		b.Fatal(err)
	}
	eng := lorel.NewEngine()
	eng.Register("guide", d)
	queries := map[string]string{
		"ex4.1": `select guide.restaurant where guide.restaurant.price < 20.5`,
		"ex4.2": `select guide.<add>restaurant`,
		"ex4.3": `select guide.<add at T>restaurant where T < 4Jan97`,
		"ex4.4": `select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97 and NV > 15`,
		"ex4.5": `select N from guide.restaurant R, R.name N where R.<add at T>price = "moderate" and T >= 1Jan97`,
	}
	for name, text := range queries {
		q, err := lorel.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		if err := lorel.Canonicalize(q); err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- extensions: ECA triggers and the update language ---

func BenchmarkTriggerFiring(b *testing.B) {
	initial, _ := guidegen.GenerateHistory(1, 100, 1, 1)
	d := doem.New(initial)
	mgr := trigger.NewManager("guide", d)
	fired := 0
	if err := mgr.Add(trigger.Trigger{
		Name:   "watch",
		Query:  `select NV from guide.restaurant.price<upd at T to NV> where T > t[-1]`,
		Action: func(trigger.Firing) error { fired++; return nil },
	}); err != nil {
		b.Fatal(err)
	}
	// Collect the updatable price nodes.
	var prices []oem.NodeID
	cur := d.Current()
	for _, ra := range cur.OutLabeled(cur.Root(), "restaurant") {
		for _, pa := range cur.OutLabeled(ra.Child, "price") {
			prices = append(prices, pa.Child)
		}
	}
	if len(prices) == 0 {
		b.Fatal("no price nodes")
	}
	t := timestamp.MustParse("1Jan97")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(3600e9)
		set := change.Set{change.UpdNode{Node: prices[i%len(prices)], Value: value.Int(int64(i))}}
		if err := mgr.Apply(t, set); err != nil {
			b.Fatal(err)
		}
	}
	if fired == 0 {
		b.Fatal("trigger never fired")
	}
}

func BenchmarkUpdateCompile(b *testing.B) {
	initial, _ := guidegen.GenerateHistory(1, 500, 1, 1)
	eng := lorel.NewEngine()
	eng.Register("guide", lorel.NewOEMGraph(initial))
	stmt, err := lorel.ParseUpdate(`update guide.restaurant.price := 25 where guide.restaurant.cuisine = "Thai"`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CompileUpdate(stmt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B11: parallel vs serial query evaluation ---

// BenchmarkParallelEval measures the worker-pool evaluation mode against
// serial on a reachability-heavy query (every restaurant's `#` closure
// walks the shared parking/nearby-eats component, so work per outer
// binding is large and uniform). Speedup requires a multi-core host;
// workers beyond GOMAXPROCS cannot help.
func BenchmarkParallelEval(b *testing.B) {
	_, d := generate(b, 300, 4, 8)
	eng := lorel.NewEngine()
	eng.Register("guide", d)
	parsed, err := lorel.Parse(`select R.name from guide.restaurant R, R.# C where C = "no such value"`)
	if err != nil {
		b.Fatal(err)
	}
	if err := lorel.Canonicalize(parsed); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng.SetParallelism(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
