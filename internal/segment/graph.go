package segment

import (
	"fmt"
	"sort"

	"repro/internal/doem"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// DB is the store's query view: a lorel.Graph whose answers are
// byte-identical to a monolithic *doem.Database holding the same history,
// assembled from the store summaries, the active segment, and — only when
// a question actually reaches into sealed time — the sealed segments'
// annotation indexes. Annotation-bounded liveness questions touch at most
// the one segment covering the queried instant, which is what keeps `<at
// T>` query time flat as total history grows.
//
// DB deliberately does not implement LabelSeeker/AllLabelSeeker: the
// evaluator's fallback scan over Out/OutAll preserves ordering parity
// without per-segment label indexes.
//
// Concurrency contract: same as *doem.Database — any number of concurrent
// readers, mutators (Store.Apply/Seal/Truncate) must exclude them. Index
// loading on the read path has its own internal lock.
type DB struct {
	s *Store
}

var (
	_ lorel.Graph      = (*DB)(nil)
	_ lorel.TimeSeeker = (*DB)(nil)
)

// Graph returns the store's query view.
func (s *Store) Graph() *DB { return &DB{s: s} }

// mustIndex loads a sealed segment's index for the read path. Graph
// methods cannot return errors; a load failure here means the store's
// files were damaged while open (the recovery paths run at Open), which is
// unrecoverable mid-query.
func (s *Store) mustIndex(h *handle) *segIndex {
	x, err := s.index(h)
	if err != nil {
		panic(fmt.Sprintf("segment: query on damaged store: %v", err))
	}
	return x
}

// Root implements lorel.Graph.
func (g *DB) Root() oem.NodeID {
	g.s.touch()
	return g.s.active.Root()
}

// Value implements lorel.Graph: the current value from the active segment,
// or the final value of a node whose deletion has been sealed away.
func (g *DB) Value(n oem.NodeID) (value.Value, bool) {
	g.s.touch()
	if v, ok := g.s.active.Value(n); ok {
		return v, true
	}
	v, ok := g.s.dead[n]
	return v, ok
}

// Out implements lorel.Graph: the current snapshot lives entirely in the
// active segment.
func (g *DB) Out(n oem.NodeID) []oem.Arc {
	g.s.touch()
	return g.s.active.Out(n)
}

// OutAll implements lorel.Graph: the store registry is the full arc
// relation in monolithic insertion order.
func (g *DB) OutAll(n oem.NodeID) []oem.Arc {
	g.s.touch()
	return g.s.registry[n]
}

// CreTime implements lorel.Graph. A node is created exactly once, so its
// cre annotation is either still in the active segment or in the sealed
// summary.
func (g *DB) CreTime(n oem.NodeID) (timestamp.Time, bool) {
	g.s.touch()
	if t, ok := g.s.active.CreTime(n); ok {
		return t, true
	}
	t, ok := g.s.cre[n]
	return t, ok
}

// UpdTriples implements lorel.Graph: the sealed segments' upd chains in
// interval order, then the active segment's, with new values derived
// exactly as the monolithic database derives them.
func (g *DB) UpdTriples(n oem.NodeID) []doem.UpdInfo {
	g.s.touch()
	var ups []doem.UpdInfo
	for _, h := range g.s.segs {
		for _, a := range g.s.mustIndex(h).upd[n] {
			ups = append(ups, doem.UpdInfo{At: a.At, Old: a.Old})
		}
	}
	for _, a := range g.s.active.NodeAnnots(n) {
		if a.Kind == doem.AnnotUpd {
			ups = append(ups, doem.UpdInfo{At: a.At, Old: a.Old})
		}
	}
	for i := range ups {
		if i+1 < len(ups) {
			ups[i].New = ups[i+1].Old
		} else if v, ok := g.Value(n); ok {
			ups[i].New = v
		}
	}
	return ups
}

// ArcAnnots implements lorel.Graph: the concatenation of the sealed
// chains in interval order and the active chain, which is the monolithic
// chain in timestamp order.
func (g *DB) ArcAnnots(a oem.Arc) []doem.ArcAnnot {
	g.s.touch()
	var anns []doem.ArcAnnot
	for _, h := range g.s.segs {
		anns = append(anns, g.s.mustIndex(h).arcs[a]...)
	}
	active := g.s.active.ArcAnnots(a)
	if anns == nil {
		return active
	}
	return append(anns, active...)
}

// ArcLiveAt implements lorel.Graph. An arc with no annotations in any
// layer is vacuously live at every instant — the monolithic convention,
// which covers unknown arcs, untouched O_0 arcs, and arcs orphaned by node
// garbage collection alike. Otherwise the instant t is covered by exactly
// one layer — the active segment or one sealed segment — and that layer
// alone answers: its chain entries at or before t toggle liveness from the
// layer's start status.
func (g *DB) ArcLiveAt(a oem.Arc, t timestamp.Time) bool {
	g.s.touch()
	if g.unannotated(a) {
		return true
	}
	if i := g.s.covering(t); i >= 0 {
		return liveInSegment(g.s.mustIndex(g.s.segs[i]), a, t)
	}
	return g.liveInActive(a, t)
}

// unannotated reports whether the arc carries no annotations in sealed or
// active history.
func (g *DB) unannotated(a oem.Arc) bool {
	if _, ok := g.s.sealedStatus[a]; ok {
		return false
	}
	return len(g.s.active.ArcAnnots(a)) == 0
}

// liveInSegment resolves liveness at an instant inside a sealed segment's
// interval from that segment's index alone. The caller has established the
// arc is annotated somewhere, so the live-at-start set is authoritative
// when the segment's own chain has no entry at or before t.
func liveInSegment(x *segIndex, a oem.Arc, t timestamp.Time) bool {
	live := x.liveAtStart[a]
	for _, ann := range x.arcs[a] {
		if ann.At.After(t) {
			break
		}
		live = ann.Kind == doem.AnnotAdd
	}
	return live
}

// liveInActive resolves liveness at an instant after the last seal for an
// arc annotated somewhere.
func (g *DB) liveInActive(a oem.Arc, t timestamp.Time) bool {
	if len(g.s.active.ArcAnnots(a)) > 0 {
		// The active chain's first annotation pins the status at the seal
		// boundary (add ⇒ was dead, rem ⇒ was live), so the monolithic
		// toggle over the active chain alone is exact.
		return g.s.active.ArcLiveAt(a, t)
	}
	// Annotated only in sealed history and untouched since: the arc's
	// status at the boundary is its most recent sealed annotation.
	return g.s.sealedStatus[a] == doem.AnnotAdd
}

// ValueAt implements lorel.Graph: the old value of the earliest upd
// annotation after t, scanning layers from the one covering t upward, or
// the merged current value when no later upd exists.
func (g *DB) ValueAt(n oem.NodeID, t timestamp.Time) value.Value {
	g.s.touch()
	if i := g.s.covering(t); i >= 0 {
		for j := i; j < len(g.s.segs); j++ {
			chain := g.s.mustIndex(g.s.segs[j]).upd[n]
			if j == i {
				// Only the covering segment can hold upds at or before t;
				// later segments' chains are entirely after it.
				for _, a := range chain {
					if a.At.After(t) {
						return a.Old
					}
				}
			} else if len(chain) > 0 {
				return chain[0].Old
			}
		}
	}
	for _, a := range g.s.active.NodeAnnots(n) {
		if a.Kind == doem.AnnotUpd && a.At.After(t) {
			return a.Old
		}
	}
	v, _ := g.Value(n)
	return v
}

// OutAt implements lorel.TimeSeeker: the registry arcs of n live at t, in
// registry (insertion) order — exactly OutAll filtered by ArcLiveAt, but
// resolving the covering layer once for the whole adjacency list.
func (g *DB) OutAt(n oem.NodeID, t timestamp.Time) []oem.Arc {
	g.s.touch()
	arcs := g.s.registry[n]
	if len(arcs) == 0 {
		return nil
	}
	out := make([]oem.Arc, 0, len(arcs))
	if i := g.s.covering(t); i >= 0 {
		x := g.s.mustIndex(g.s.segs[i])
		for _, a := range arcs {
			if g.unannotated(a) || liveInSegment(x, a, t) {
				out = append(out, a)
			}
		}
		return out
	}
	for _, a := range arcs {
		if g.unannotated(a) || g.liveInActive(a, t) {
			out = append(out, a)
		}
	}
	return out
}

// StateAt materializes the database state at time t the segmented way:
// for sealed time it loads the covering segment's checkpointed base
// snapshot and applies only that interval's deltas up to t — one
// checkpoint plus one segment, independent of total history size. The
// result equals the monolithic SnapshotAt(t) up to arc ordering (it
// reports the true historical insertion order, where the monolithic
// reconstruction reports global first-insertion order).
func (s *Store) StateAt(t timestamp.Time) (*oem.Database, error) {
	s.touch()
	if i := s.covering(t); i >= 0 {
		sd, err := s.loadSegData(s.segs[i])
		if err != nil {
			return nil, err
		}
		d := doem.New(sd.base)
		for _, step := range sd.steps {
			if step.At.After(t) {
				break
			}
			if err := d.Apply(step.At, step.Ops); err != nil {
				return nil, fmt.Errorf("segment: replaying seg %d to %s: %w", sd.id, t, err)
			}
		}
		return d.Current(), nil
	}
	return s.active.SnapshotAt(t), nil
}

// globalSnapshotAt materializes the snapshot at t (which must be at or
// after the last seal) exactly as the monolithic SnapshotAt does: every
// node ever created — live, deleted in the active segment, or deleted in
// sealed history — with its value at t, arcs in global first-insertion
// order filtered by liveness, then garbage collection. Deleted nodes must
// participate before GC because an arc frozen live by a GC'd endpoint can
// keep an otherwise-unreachable node reachable, exactly as in the
// monolithic reconstruction.
func (s *Store) globalSnapshotAt(t timestamp.Time) *oem.Database {
	g := s.Graph()
	out := oem.New()
	if out.Root() != s.active.Root() {
		panic("segment: root id mismatch in snapshot materialization")
	}
	ids := append([]oem.NodeID(nil), s.active.AllNodeIDs()...)
	if len(s.dead) > 0 {
		seen := make(map[oem.NodeID]bool, len(ids))
		for _, id := range ids {
			seen[id] = true
		}
		for id := range s.dead {
			if !seen[id] {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	for _, id := range ids {
		if id == s.active.Root() {
			continue
		}
		if err := out.CreateNodeWithID(id, g.ValueAt(id, t)); err != nil {
			panic(fmt.Sprintf("segment: snapshot node %s: %v", id, err))
		}
	}
	for _, id := range ids {
		for _, arc := range s.registry[id] {
			if g.ArcLiveAt(arc, t) {
				if err := out.AddArc(arc.Parent, arc.Label, arc.Child); err != nil {
					panic(fmt.Sprintf("segment: snapshot arc %s: %v", arc, err))
				}
			}
		}
	}
	out.GarbageCollect()
	return out
}
