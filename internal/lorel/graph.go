package lorel

import (
	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/symbol"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// Graph abstracts the databases a query can range over. Plain OEM databases
// and DOEM databases both implement it; annotation accessors on a plain OEM
// graph simply report no annotations, so Chorel annotation expressions
// match nothing there (and plain Lorel queries behave identically on both —
// the paper's "a standard Lorel query over a DOEM database has exactly the
// semantics of the same query asked over the current snapshot").
//
// Concurrency contract: every method is a read. Implementations must be
// safe for any number of concurrent readers as long as the underlying
// database is not mutated mid-query — parallel evaluation fans one query
// out across goroutines that all read the same Graph. Both *doem.Database
// and *oem.Database honor this (their read methods are pure map and slice
// lookups with no interior caching); whoever mutates a shared database
// (doem.Apply, oem mutators) must exclude running queries, e.g. via
// lore.Store.ViewDOEM or wrapper.Mutable.
//
// *doem.Database satisfies Graph directly.
type Graph interface {
	// Root returns the root object.
	Root() oem.NodeID
	// Value returns the current value of node n.
	Value(n oem.NodeID) (value.Value, bool)
	// Out returns the current-snapshot arcs of n, in insertion order.
	Out(n oem.NodeID) []oem.Arc
	// OutAll returns every arc of n including removed ones.
	OutAll(n oem.NodeID) []oem.Arc
	// CreTime returns n's creation annotation, if any.
	CreTime(n oem.NodeID) (timestamp.Time, bool)
	// UpdTriples returns n's upd annotations with derived new values.
	UpdTriples(n oem.NodeID) []doem.UpdInfo
	// ArcAnnots returns the annotations on arc a in timestamp order.
	ArcAnnots(a oem.Arc) []doem.ArcAnnot
	// ArcLiveAt reports whether arc a existed at time t.
	ArcLiveAt(a oem.Arc, t timestamp.Time) bool
	// ValueAt returns the value of n at time t.
	ValueAt(n oem.NodeID, t timestamp.Time) value.Value
}

// assert *doem.Database implements Graph.
var _ Graph = (*doem.Database)(nil)

// The evaluator probes for the optional interfaces below with type
// assertions and falls back to scanning Out/OutAll when a graph does not
// provide them. Implementations must return arcs in the exact order the
// fallback scan would produce (insertion order, filtered) — parallel
// evaluation and the indexed/unindexed parity guarantee both depend on
// byte-identical result ordering. internal/index provides all three.

// LabelSeeker is an optional Graph extension serving exact-label arc
// lookups from an adjacency index instead of a scan over Out.
type LabelSeeker interface {
	// OutLabeled returns the current-snapshot arcs of n labeled exactly
	// label, in insertion order.
	OutLabeled(n oem.NodeID, label string) []oem.Arc
}

// AllLabelSeeker is the LabelSeeker analogue over the full arc relation
// (removed arcs included), used by <add>/<rem> annotation steps.
type AllLabelSeeker interface {
	// OutAllLabeled returns every arc of n labeled exactly label,
	// removed arcs included, in insertion order.
	OutAllLabeled(n oem.NodeID, label string) []oem.Arc
}

// SymSeeker is an optional Graph extension serving exact-label adjacency
// by interned symbol id. The evaluator resolves a path step's label to a
// symbol once per walk (symbol.Lookup) and then probes with the id per
// binding, replacing a string-keyed map hash per binding with a fixed
// 12-byte key hash. The boolean result reports whether the graph could
// serve the request at all: ok=false (for example, the index tables were
// built with interning disabled) sends the evaluator to the string-keyed
// LabelSeeker path, so a gate flip between builds degrades instead of
// misses. When ok=true the arcs must be exactly what OutLabeled /
// OutAllLabeled would return for the symbol's string.
type SymSeeker interface {
	// OutLabeledSym returns the current-snapshot arcs of n whose label is
	// the canonical string of sym, in insertion order.
	OutLabeledSym(n oem.NodeID, sym symbol.ID) ([]oem.Arc, bool)
	// OutAllLabeledSym is the same over the full arc relation, removed
	// arcs included.
	OutAllLabeledSym(n oem.NodeID, sym symbol.ID) ([]oem.Arc, bool)
}

// TimeSeeker is an optional Graph extension serving time-travel adjacency:
// the arcs of n live at time t, resolved from a materialized historical
// view instead of per-arc annotation scans.
type TimeSeeker interface {
	// OutAt returns the arcs of n that existed at time t, in insertion
	// order. It must equal filtering OutAll(n) by ArcLiveAt(arc, t).
	OutAt(n oem.NodeID, t timestamp.Time) []oem.Arc
}

// OEMGraph adapts a plain *oem.Database to the Graph interface: the current
// snapshot is the whole database and every annotation accessor is empty.
type OEMGraph struct {
	DB *oem.Database
}

// NewOEMGraph wraps db for querying.
func NewOEMGraph(db *oem.Database) OEMGraph { return OEMGraph{DB: db} }

// Root implements Graph.
func (g OEMGraph) Root() oem.NodeID { return g.DB.Root() }

// Value implements Graph.
func (g OEMGraph) Value(n oem.NodeID) (value.Value, bool) { return g.DB.Value(n) }

// Out implements Graph.
func (g OEMGraph) Out(n oem.NodeID) []oem.Arc { return g.DB.Out(n) }

// OutAll implements Graph: same as Out, since nothing is ever annotated
// as removed.
func (g OEMGraph) OutAll(n oem.NodeID) []oem.Arc { return g.DB.Out(n) }

// CreTime implements Graph: plain OEM has no annotations.
func (g OEMGraph) CreTime(oem.NodeID) (timestamp.Time, bool) {
	return timestamp.Time{}, false
}

// UpdTriples implements Graph: plain OEM has no annotations.
func (g OEMGraph) UpdTriples(oem.NodeID) []doem.UpdInfo { return nil }

// ArcAnnots implements Graph: plain OEM has no annotations.
func (g OEMGraph) ArcAnnots(oem.Arc) []doem.ArcAnnot { return nil }

// ArcLiveAt implements Graph: without history, an arc is considered to have
// always existed.
func (g OEMGraph) ArcLiveAt(a oem.Arc, _ timestamp.Time) bool {
	return g.DB.HasArc(a.Parent, a.Label, a.Child)
}

// ValueAt implements Graph: without history, the value is constant.
func (g OEMGraph) ValueAt(n oem.NodeID, _ timestamp.Time) value.Value {
	v, _ := g.DB.Value(n)
	return v
}
