package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo describes the running binary, read once from the embedded
// module metadata (runtime/debug.ReadBuildInfo).
type BuildInfo struct {
	// Main is the main module path ("repro").
	Main string `json:"main"`
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go"`
	// Revision is the VCS commit, when stamped.
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time, when stamped.
	Dirty bool `json:"dirty,omitempty"`
}

// ReadBuildInfo extracts the binary's build metadata. It degrades
// gracefully: binaries built without module info still report the
// runtime's Go version.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{Main: "unknown", Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Main = bi.Main.Path
	info.Version = bi.Main.Version
	if info.Version == "" {
		info.Version = "(devel)"
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the build info on one line, the form the -version
// flags print.
func (b BuildInfo) String() string {
	s := fmt.Sprintf("%s %s (%s)", b.Main, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " " + rev
		if b.Dirty {
			s += "-dirty"
		}
	}
	return s
}

// Version is a convenience for the -version flags: the one-line form of
// ReadBuildInfo.
func Version() string { return ReadBuildInfo().String() }
