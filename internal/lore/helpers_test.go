package lore

import (
	"repro/internal/change"
	"repro/internal/oem"
)

func removeArcSet(p oem.NodeID, l string, c oem.NodeID) change.Set {
	return change.Set{change.RemArc{Parent: p, Label: l, Child: c}}
}
