package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// buildPair applies one synthetic history to a monolithic DOEM database
// and a segmented store side by side, sealing the store after the step
// indexes sealAfter selects. The pair is the oracle for every parity
// check: any observable difference between them is a bug.
func buildPair(t testing.TB, dir string, seed int64, sealAfter func(i int) bool, pol *Policy) (*doem.Database, *Store) {
	t.Helper()
	initial, h := guidegen.GenerateHistory(seed, 10, 20, 5)
	mono := doem.New(initial.Clone())
	st, err := Create(dir, doem.New(initial), nil, pol)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i, step := range h {
		if err := mono.Apply(step.At, step.Ops); err != nil {
			t.Fatalf("monolithic apply step %d: %v", i, err)
		}
		if err := st.Apply(step.At, step.Ops); err != nil {
			t.Fatalf("segmented apply step %d: %v", i, err)
		}
		if sealAfter != nil && sealAfter(i) {
			if err := st.Seal(); err != nil {
				t.Fatalf("seal after step %d: %v", i, err)
			}
		}
	}
	return mono, st
}

// candidateTimes collects instants that exercise every interesting case:
// each recorded step time exactly (the inclusive boundary — and therefore
// every seal boundary), one second on either side, and instants before the
// first and after the last change.
func candidateTimes(d *doem.Database) []timestamp.Time {
	steps := d.Steps()
	var ts []timestamp.Time
	for _, s := range steps {
		ts = append(ts, s, s.Add(-1e9), s.Add(1e9))
	}
	if len(steps) > 0 {
		ts = append(ts, steps[0].Add(-86400e9), steps[len(steps)-1].Add(86400e9))
	} else {
		ts = append(ts, timestamp.MustParse("1Jan97"))
	}
	return ts
}

// checkGraphParity compares every Graph accessor of the segmented view
// against the monolithic database, across all nodes, arcs, and candidate
// instants.
func checkGraphParity(t testing.TB, mono *doem.Database, st *Store) {
	t.Helper()
	g := st.Graph()
	if g.Root() != mono.Root() {
		t.Fatalf("Root: segmented %s, monolithic %s", g.Root(), mono.Root())
	}
	times := candidateTimes(mono)
	for _, n := range mono.AllNodeIDs() {
		mv, mok := mono.Value(n)
		gv, gok := g.Value(n)
		if mok != gok || (mok && !mv.Equal(gv)) {
			t.Fatalf("Value(%s): segmented (%v,%v), monolithic (%v,%v)", n, gv, gok, mv, mok)
		}
		if got, want := fmt.Sprint(g.Out(n)), fmt.Sprint(mono.Out(n)); got != want {
			t.Fatalf("Out(%s): segmented %s, monolithic %s", n, got, want)
		}
		if got, want := fmt.Sprint(g.OutAll(n)), fmt.Sprint(mono.OutAll(n)); got != want {
			t.Fatalf("OutAll(%s): segmented %s, monolithic %s", n, got, want)
		}
		mt, mcok := mono.CreTime(n)
		gt, gcok := g.CreTime(n)
		if mcok != gcok || (mcok && !mt.Equal(gt)) {
			t.Fatalf("CreTime(%s): segmented (%s,%v), monolithic (%s,%v)", n, gt, gcok, mt, mcok)
		}
		if got, want := fmt.Sprint(g.UpdTriples(n)), fmt.Sprint(mono.UpdTriples(n)); got != want {
			t.Fatalf("UpdTriples(%s): segmented %s, monolithic %s", n, got, want)
		}
		for _, at := range times {
			if got, want := g.ValueAt(n, at), mono.ValueAt(n, at); !got.Equal(want) {
				t.Fatalf("ValueAt(%s, %s): segmented %v, monolithic %v", n, at, got, want)
			}
			var want []oem.Arc
			for _, a := range mono.OutAll(n) {
				if mono.ArcLiveAt(a, at) {
					want = append(want, a)
				}
			}
			if got := g.OutAt(n, at); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("OutAt(%s, %s): segmented %v, monolithic %v", n, at, got, want)
			}
		}
		for _, a := range mono.OutAll(n) {
			if got, want := fmt.Sprint(g.ArcAnnots(a)), fmt.Sprint(mono.ArcAnnots(a)); got != want {
				t.Fatalf("ArcAnnots(%s): segmented %s, monolithic %s", a, got, want)
			}
			for _, at := range times {
				if got, want := g.ArcLiveAt(a, at), mono.ArcLiveAt(a, at); got != want {
					t.Fatalf("ArcLiveAt(%s, %s): segmented %v, monolithic %v", a, at, got, want)
				}
			}
		}
	}
	// An arc the history never recorded: both sides report it vacuously
	// live, matching the monolithic convention.
	ghost := oem.Arc{Parent: 1 << 40, Label: "ghost", Child: 1<<40 + 1}
	if !g.ArcLiveAt(ghost, times[0]) || !mono.ArcLiveAt(ghost, times[0]) {
		t.Fatal("unknown arc is not vacuously live")
	}
}

func TestStoreSealReopenParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		dir := t.TempDir()
		mono, st := buildPair(t, dir, seed, func(i int) bool { return i%7 == 6 }, nil)
		if st.Segments() == 0 {
			t.Fatal("no segments sealed")
		}
		checkGraphParity(t, mono, st)
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		st2, err := Open(dir, nil, nil)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		checkGraphParity(t, mono, st2)
		// Restart replay is bounded by the active segment, not total history.
		want := 0
		for _, at := range mono.Steps() {
			if at.After(st2.LastSeal()) {
				want++
			}
		}
		if st2.Stats().Records != want {
			t.Errorf("seed %d: reopen replayed %d records, want %d (steps after last seal)",
				seed, st2.Stats().Records, want)
		}
		if st2.MaxID() != mono.MaxID() {
			t.Errorf("seed %d: MaxID %d, monolithic %d", seed, st2.MaxID(), mono.MaxID())
		}
		st2.Close()
	}
}

func TestStoreSealEveryStep(t *testing.T) {
	// The densest partitioning: one segment per step, empty active segment.
	dir := t.TempDir()
	mono, st := buildPair(t, dir, 4, func(int) bool { return true }, nil)
	defer st.Close()
	if st.Segments() < 15 {
		t.Fatalf("expected ~20 segments, got %d", st.Segments())
	}
	checkGraphParity(t, mono, st)
}

func TestStoreNoSealParity(t *testing.T) {
	// Degenerate case: never sealed, the store is a WAL-backed monolith.
	dir := t.TempDir()
	mono, st := buildPair(t, dir, 5, nil, nil)
	checkGraphParity(t, mono, st)
	st.Close()
	st2, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	checkGraphParity(t, mono, st2)
}

func TestAutoSealByAnnotationCount(t *testing.T) {
	dir := t.TempDir()
	mono, st := buildPair(t, dir, 6, nil, &Policy{SealAnnotations: 12})
	defer st.Close()
	if st.Segments() < 2 {
		t.Fatalf("count policy sealed %d segments, want >= 2", st.Segments())
	}
	checkGraphParity(t, mono, st)
}

func TestAutoSealByAge(t *testing.T) {
	dir := t.TempDir()
	// Steps advance one day of history time each; a 3-day window seals
	// every few steps regardless of wall-clock time.
	mono, st := buildPair(t, dir, 7, nil, &Policy{SealAge: 3 * 24 * time.Hour})
	defer st.Close()
	if st.Segments() < 3 {
		t.Fatalf("age policy sealed %d segments, want >= 3", st.Segments())
	}
	checkGraphParity(t, mono, st)
}

func TestColdTierDemotionAndPromotion(t *testing.T) {
	dir := t.TempDir()
	mono, st := buildPair(t, dir, 8, func(i int) bool { return i == 9 }, &Policy{ColdAfter: 3})
	defer st.Close()
	if st.Segments() != 1 {
		t.Fatalf("want exactly 1 segment, got %d", st.Segments())
	}
	// Advance the use clock past the policy window without touching the
	// sealed segment, then run maintenance.
	g := st.Graph()
	for i := 0; i < 10; i++ {
		g.Root()
	}
	st.Maintain()
	if hot, warm, cold := st.Tiers(); cold != 1 {
		t.Fatalf("segment did not demote to cold tier (hot=%d warm=%d cold=%d)", hot, warm, cold)
	}
	if _, err := os.Stat(filepath.Join(dir, segFileName(1)+".gz")); err != nil {
		t.Fatalf("cold segment not compressed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, idxFileName(1))); !os.IsNotExist(err) {
		t.Fatalf("cold segment kept its index file (err=%v)", err)
	}
	// Querying sealed time transparently promotes: the index rebuilds from
	// the compressed ground truth and answers stay byte-identical.
	checkGraphParity(t, mono, st)
	if hot, _, cold := st.Tiers(); cold != 0 || hot != 1 {
		t.Fatalf("query did not promote the cold segment (hot=%d cold=%d)", hot, cold)
	}
	if _, err := os.Stat(filepath.Join(dir, idxFileName(1))); err != nil {
		t.Fatalf("promotion did not re-persist the index file: %v", err)
	}
}

func TestColdTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	mono, st := buildPair(t, dir, 9, func(i int) bool { return i == 9 }, &Policy{ColdAfter: 1})
	g := st.Graph()
	for i := 0; i < 5; i++ {
		g.Root()
	}
	st.Maintain()
	if _, _, cold := st.Tiers(); cold != 1 {
		t.Fatal("setup: segment did not demote")
	}
	st.Close()
	st2, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatalf("reopen with cold segment: %v", err)
	}
	defer st2.Close()
	if _, _, cold := st2.Tiers(); cold != 1 {
		t.Fatal("reopen did not classify the compressed segment as cold")
	}
	checkGraphParity(t, mono, st2)
}

func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	mono, st := buildPair(t, dir, 10, func(i int) bool { return i == 7 }, nil)
	defer st.Close()

	// Inside sealed history: refused — sealed segments are immutable.
	early := st.LastSeal().Add(-time.Second)
	if err := st.Truncate(early); err == nil {
		t.Fatal("truncating inside sealed history did not fail")
	}

	// At a mid-active instant: equivalent to the monolithic truncation.
	steps := mono.Steps()
	var at timestamp.Time
	for _, s := range steps {
		if s.After(st.LastSeal()) {
			at = s
		}
	}
	at = at.Add(-1e9) // strictly between two active steps
	maxBefore := st.MaxID()
	monoTd, err := mono.Truncate(at)
	if err != nil {
		t.Fatalf("monolithic truncate: %v", err)
	}
	if err := st.Truncate(at); err != nil {
		t.Fatalf("segmented truncate: %v", err)
	}
	if st.Segments() != 0 {
		t.Fatalf("truncate left %d sealed segments", st.Segments())
	}
	checkGraphParity(t, monoTd, st)
	if st.MaxID() < maxBefore {
		t.Fatalf("truncate regressed MaxID from %d to %d (id reuse hazard)", maxBefore, st.MaxID())
	}
	// The truncation must persist across a restart.
	st.Close()
	st2, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatalf("reopen after truncate: %v", err)
	}
	defer st2.Close()
	checkGraphParity(t, monoTd, st2)
	if st2.MaxID() < maxBefore {
		t.Fatalf("reopen lost the MaxID high-water mark: %d < %d", st2.MaxID(), maxBefore)
	}
}

func TestApplyBeforeSealBoundaryRejected(t *testing.T) {
	dir := t.TempDir()
	_, st := buildPair(t, dir, 11, func(i int) bool { return i == 19 }, nil)
	defer st.Close()
	boundary := st.LastSeal()
	set := change.Set{change.UpdNode{Node: st.active.Root(), Value: value.Str("late")}}
	if err := st.Apply(boundary, set); err == nil {
		t.Fatal("applying at the seal boundary did not fail")
	}
	if err := st.Apply(boundary.Add(-time.Hour), set); err == nil {
		t.Fatal("applying before the seal boundary did not fail")
	}
}

func TestStateAt(t *testing.T) {
	dir := t.TempDir()
	mono, st := buildPair(t, dir, 12, func(i int) bool { return i%5 == 4 }, nil)
	defer st.Close()
	for _, at := range candidateTimes(mono) {
		got, err := st.StateAt(at)
		if err != nil {
			t.Fatalf("StateAt(%s): %v", at, err)
		}
		if want := mono.SnapshotAt(at); !got.Equal(want) {
			t.Fatalf("StateAt(%s) differs from monolithic snapshot:\nsegmented:\n%s\nmonolithic:\n%s",
				at, got, want)
		}
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	_, st := buildPair(t, dir, 13, nil, nil)
	st.Close()
	if _, err := Create(dir, doem.New(oem.New()), nil, nil); err == nil {
		t.Fatal("Create over an existing store did not fail")
	}
}
