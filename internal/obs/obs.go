// Package obs is the reproduction's dependency-free observability core:
// atomic counters and gauges, ring-buffered latency histograms with
// p50/p95/p99, per-query tracing (trace.go), an admin HTTP surface
// (http.go), and build metadata (buildinfo.go).
//
// Collection is globally gated: every metric mutation first loads one
// atomic bool, so with observability disabled (the default) an
// instrumented hot path pays a single predictable branch and no stores.
// Enable it process-wide with SetEnabled(true) — cmd/qss does so when
// -admin is given — and read everything back with Snapshot, the API the
// tests and the admin endpoint share.
//
// Metric names follow the Prometheus style (snake_case, optional
// {label="value"} suffix, _total for counters, _ns for nanosecond
// histograms); docs/observability.md is the catalogue.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global collection gate. Disabled metrics mutations
// return after one atomic load.
var enabled atomic.Bool

// SetEnabled turns metric collection on or off process-wide and returns
// the previous setting (so tests can restore it).
func SetEnabled(on bool) (prev bool) { return enabled.Swap(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// Now returns the current time when collection is enabled and the zero
// Time otherwise. Pair it with Histogram.ObserveSince so a disabled hot
// path skips both the clock read and the store:
//
//	start := obs.Now()
//	... work ...
//	hist.ObserveSince(start)
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// A Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when collection is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a metric that can go up and down.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v when collection is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by delta when collection is enabled.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// ringSize is the histogram sample window (a power of two so the write
// cursor wraps with a mask).
const ringSize = 1 << 10

// A Histogram records int64 observations (latencies in nanoseconds, by
// convention) into a fixed ring buffer. Count and Sum are all-time;
// min/max and the percentiles in a snapshot describe the most recent
// ringSize observations. Writers only append atomically — concurrent
// Observe calls never block each other.
type Histogram struct {
	name  string
	count atomic.Int64
	sum   atomic.Int64
	idx   atomic.Int64
	ring  [ringSize]atomic.Int64
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample when collection is enabled.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	i := h.idx.Add(1) - 1
	h.ring[i&(ringSize-1)].Store(v)
}

// ObserveSince records the nanoseconds elapsed since start, which must
// come from obs.Now(). A zero start (collection was disabled at the
// time) records nothing, so an enable racing a measurement never logs a
// bogus epoch-sized latency.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() || !enabled.Load() {
		return
	}
	h.observe(int64(time.Since(start)))
}

// HistogramStats is a point-in-time summary of a histogram.
type HistogramStats struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Mean   float64 `json:"mean"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	P50    int64   `json:"p50"`
	P95    int64   `json:"p95"`
	P99    int64   `json:"p99"`
	Window int     `json:"window"` // samples the percentiles cover
}

// Stats summarizes the histogram: all-time count/sum/mean, and
// min/max/p50/p95/p99 over the retained window.
func (h *Histogram) Stats() HistogramStats {
	st := HistogramStats{Count: h.count.Load(), Sum: h.sum.Load()}
	if st.Count == 0 {
		return st
	}
	st.Mean = float64(st.Sum) / float64(st.Count)
	n := st.Count
	if n > ringSize {
		n = ringSize
	}
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = h.ring[i].Load()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	st.Window = int(n)
	st.Min = samples[0]
	st.Max = samples[n-1]
	pick := func(p int64) int64 { return samples[(n-1)*p/100] }
	st.P50, st.P95, st.P99 = pick(50), pick(95), pick(99)
	return st
}

// A Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Registration is idempotent per (kind, name): asking for
// an existing name returns the existing metric, so package-level metric
// variables and dynamically named metrics (per-subscription histograms)
// coexist.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Default is the process-wide registry that the package-level helpers
// and Snapshot use.
var Default = NewRegistry()

// NewCounter registers (or fetches) a counter in the registry.
func (r *Registry) NewCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// NewGauge registers (or fetches) a gauge in the registry.
func (r *Registry) NewGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// RegisterGaugeFunc registers a gauge computed by fn at snapshot time
// (for readings derived from live state, like buffer depths). A
// re-registration under the same name replaces the function.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// NewHistogram registers (or fetches) a histogram in the registry.
func (r *Registry) NewHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// Package-level helpers against Default.

// NewCounter registers (or fetches) a counter in the default registry.
func NewCounter(name string) *Counter { return Default.NewCounter(name) }

// NewGauge registers (or fetches) a gauge in the default registry.
func NewGauge(name string) *Gauge { return Default.NewGauge(name) }

// RegisterGaugeFunc registers a computed gauge in the default registry.
func RegisterGaugeFunc(name string, fn func() int64) { Default.RegisterGaugeFunc(name, fn) }

// NewHistogram registers (or fetches) a histogram in the default registry.
func NewHistogram(name string) *Histogram { return Default.NewHistogram(name) }

// Snap is a point-in-time copy of every registered metric, in the shape
// the admin endpoint serves as JSON and the tests assert against.
type Snap struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Counter returns a counter's value (0 when absent).
func (s *Snap) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 when absent).
func (s *Snap) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram's stats (zero when absent).
func (s *Snap) Histogram(name string) HistogramStats { return s.Histograms[name] }

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() *Snap {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		funcs[n] = fn
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	s := &Snap{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	// Computed gauges run outside the registry lock: they may take other
	// locks (a server's mu) that must not nest under ours.
	for n, fn := range funcs {
		s.Gauges[n] = fn()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.Stats()
	}
	return s
}

// Snapshot copies the default registry's current values.
func Snapshot() *Snap { return Default.Snapshot() }

// LabeledName renders a metric name with one label, in the Prometheus
// style: LabeledName("qss_poll_ns", "sub", "R") = `qss_poll_ns{sub="R"}`.
func LabeledName(base, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", base, label, value)
}
