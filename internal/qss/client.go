package qss

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/oem"
	"repro/internal/oemio"
	"repro/internal/timestamp"
)

// Client is the QSC side of Figure 7: it connects to a QSS server, manages
// subscriptions, and receives notifications.
type Client struct {
	c   net.Conn
	enc *json.Encoder

	mu      sync.Mutex
	pending map[int64]chan *Response
	nextSeq int64
	notifCh chan ClientNotification
	readErr error
	done    chan struct{}
}

// ClientNotification is a decoded server push.
type ClientNotification struct {
	Subscription string
	At           timestamp.Time
	Answer       *oem.Database
}

// Dial connects to a QSS server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	cl := &Client{
		c:       nc,
		enc:     json.NewEncoder(nc),
		pending: make(map[int64]chan *Response),
		notifCh: make(chan ClientNotification, 64),
		done:    make(chan struct{}),
	}
	go cl.readLoop()
	return cl
}

// Notifications returns the channel of pushed notifications. It is closed
// when the connection ends.
func (cl *Client) Notifications() <-chan ClientNotification { return cl.notifCh }

// Close terminates the connection.
func (cl *Client) Close() error { return cl.c.Close() }

func (cl *Client) readLoop() {
	dec := json.NewDecoder(bufio.NewReader(cl.c))
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			cl.mu.Lock()
			cl.readErr = err
			for _, ch := range cl.pending {
				close(ch)
			}
			cl.pending = make(map[int64]chan *Response)
			cl.mu.Unlock()
			close(cl.notifCh)
			close(cl.done)
			return
		}
		if resp.Notification != nil {
			n := resp.Notification
			at, err := timestamp.Parse(n.At)
			if err != nil {
				continue
			}
			answer, err := oemio.Unmarshal(n.Answer)
			if err != nil {
				continue
			}
			select {
			case cl.notifCh <- ClientNotification{Subscription: n.Subscription, At: at, Answer: answer}:
			default:
				// Slow consumer: drop rather than stall the read loop.
			}
			continue
		}
		cl.mu.Lock()
		ch := cl.pending[resp.Seq]
		delete(cl.pending, resp.Seq)
		cl.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

func (cl *Client) call(req *Request) (*Response, error) {
	cl.mu.Lock()
	if cl.readErr != nil {
		err := cl.readErr
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextSeq++
	seq := cl.nextSeq
	ch := make(chan *Response, 1)
	cl.pending[seq] = ch
	// Encode while holding the lock: the server numbers responses by
	// arrival order, so our sequence assignment must match the wire order.
	err := cl.enc.Encode(req)
	cl.mu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, errors.New("qss: connection closed")
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("qss: server: %s", resp.Error)
	}
	return resp, nil
}

// Subscribe creates a subscription on the server. source names a
// server-side source; freq may be empty for manual polling.
func (cl *Client) Subscribe(name, source, sourceName, polling, filter, freq string) error {
	_, err := cl.call(&Request{
		Op: "subscribe", Name: name, Source: source, SourceName: sourceName,
		Polling: polling, Filter: filter, Freq: freq,
	})
	return err
}

// Unsubscribe removes a subscription.
func (cl *Client) Unsubscribe(name string) error {
	_, err := cl.call(&Request{Op: "unsubscribe", Name: name})
	return err
}

// List returns subscription names.
func (cl *Client) List() ([]string, error) {
	resp, err := cl.call(&Request{Op: "list"})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Poll triggers a manual poll at the given time ("" = server clock now) —
// the paper's explicit-request mode.
func (cl *Client) Poll(name, at string) error {
	_, err := cl.call(&Request{Op: "poll", Name: name, Time: at})
	return err
}
