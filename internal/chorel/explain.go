package chorel

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/lorel"
)

// Plan is the result of explaining a Chorel query: the canonicalized
// source, the rewrite trace of the Chorel→Lorel translation, and the
// generated Lorel query (empty when the query is untranslatable and must
// be evaluated directly on the DOEM graph).
type Plan struct {
	Source    string        // canonicalized Chorel query
	Steps     []RewriteStep // rewrite trace, in rule-firing order
	Lorel     string        // translated Lorel query text
	FreshVars int           // fresh encoding variables introduced (_t1, ...)
	Err       error         // non-nil when untranslatable (wraps ErrUntranslatable)
	// Planner holds the cost-based planner's EXPLAIN lines (join order,
	// pushed predicates, estimated cardinalities) for direct evaluation.
	// Empty when explaining without an engine (ExplainQuery) — the planner
	// needs registered graphs to cost against.
	Planner []string
}

// ExplainQuery parses, canonicalizes and translates a Chorel query without
// evaluating it, returning the rewrite plan. Parse and canonicalization
// errors are returned as errors; translation failures are reported inside
// the plan (the query still runs under direct evaluation).
func ExplainQuery(src string) (*Plan, error) {
	q, err := lorel.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := lorel.Canonicalize(q); err != nil {
		return nil, err
	}
	pl := &Plan{Source: RenderTranslated(q)}
	tq, steps, err := TranslateTraced(q)
	pl.Steps = steps
	for _, s := range steps {
		pl.FreshVars += strings.Count(s.After, "_t")
	}
	if err != nil {
		pl.Err = err
		return pl, nil
	}
	pl.Lorel = RenderTranslated(tq)
	return pl, nil
}

// Explain renders the rewrite plan for a Chorel query as the text the
// `chorel -explain` front door prints.
func Explain(src string) (string, error) {
	pl, err := ExplainQuery(src)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

// ExplainQueryOn is ExplainQuery plus the cost-based planner's decisions
// for direct evaluation on eng's registered graphs: chosen join order,
// pushed predicates, and estimated cardinalities.
func ExplainQueryOn(eng *lorel.Engine, src string) (*Plan, error) {
	pl, err := ExplainQuery(src)
	if err != nil {
		return nil, err
	}
	if eng != nil {
		if lines, perr := eng.PlanDescription(src); perr == nil {
			pl.Planner = lines
		}
	}
	return pl, nil
}

// Explain renders the full EXPLAIN for a query against this database:
// rewrite trace plus the direct-evaluation planner section.
func (db *DB) Explain(src string) (string, error) {
	pl, err := ExplainQueryOn(db.direct, src)
	if err != nil {
		return "", err
	}
	return pl.String(), nil
}

// String renders the plan in the EXPLAIN output format documented in
// docs/observability.md.
func (pl *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chorel (canonical):\n  %s\n", pl.Source)
	if len(pl.Steps) == 0 {
		b.WriteString("rewrite steps: none (plain Lorel; no annotation expressions)\n")
	} else {
		fmt.Fprintf(&b, "rewrite steps (%d):\n", len(pl.Steps))
		for i, s := range pl.Steps {
			fmt.Fprintf(&b, "  %d. [%s] %s\n       => %s\n", i+1, s.Rule, s.Before, s.After)
		}
	}
	switch {
	case pl.Err != nil && errors.Is(pl.Err, ErrUntranslatable):
		fmt.Fprintf(&b, "lorel: (untranslatable: %v)\n  strategy: direct evaluation on the DOEM graph\n", pl.Err)
	case pl.Err != nil:
		fmt.Fprintf(&b, "lorel: (translation failed: %v)\n", pl.Err)
	default:
		fmt.Fprintf(&b, "lorel:\n  %s\n  strategy: evaluate on the Section 5.1 OEM encoding\n", pl.Lorel)
	}
	if len(pl.Planner) > 0 {
		b.WriteString("planner (direct evaluation):\n")
		for _, line := range pl.Planner {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
