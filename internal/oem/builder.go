package oem

import (
	"fmt"

	"repro/internal/value"
)

// Builder constructs OEM databases fluently. It panics on misuse (adding an
// arc from an atomic node, referring to an undefined name), which keeps test
// and example data construction terse; programmatic mutation should use the
// Database methods directly and handle errors.
type Builder struct {
	db    *Database
	named map[string]NodeID
}

// NewBuilder returns a builder over a fresh database.
func NewBuilder() *Builder {
	return &Builder{db: New(), named: make(map[string]NodeID)}
}

// Root returns the database root id.
func (b *Builder) Root() NodeID { return b.db.Root() }

// Complex creates a complex object and remembers it under name (if non-empty).
func (b *Builder) Complex(name string) NodeID {
	id := b.db.CreateNode(value.Complex())
	b.remember(name, id)
	return id
}

// Atom creates an atomic object with the given value and remembers it under
// name (if non-empty).
func (b *Builder) Atom(name string, v value.Value) NodeID {
	if v.IsComplex() {
		panic("oem: Builder.Atom with complex value")
	}
	id := b.db.CreateNode(v)
	b.remember(name, id)
	return id
}

func (b *Builder) remember(name string, id NodeID) {
	if name == "" {
		return
	}
	if _, dup := b.named[name]; dup {
		panic(fmt.Sprintf("oem: Builder name %q reused", name))
	}
	b.named[name] = id
}

// Named returns the node previously remembered under name.
func (b *Builder) Named(name string) NodeID {
	id, ok := b.named[name]
	if !ok {
		panic(fmt.Sprintf("oem: Builder name %q not defined", name))
	}
	return id
}

// Arc adds an l-labeled arc from p to c.
func (b *Builder) Arc(p NodeID, l string, c NodeID) *Builder {
	if err := b.db.AddArc(p, l, c); err != nil {
		panic(err)
	}
	return b
}

// AtomArc creates an atomic child with value v under p via label l and
// returns its id.
func (b *Builder) AtomArc(p NodeID, l string, v value.Value) NodeID {
	c := b.Atom("", v)
	b.Arc(p, l, c)
	return c
}

// ComplexArc creates a complex child under p via label l and returns its id.
func (b *Builder) ComplexArc(p NodeID, l string) NodeID {
	c := b.Complex("")
	b.Arc(p, l, c)
	return c
}

// Build validates and returns the database. The builder must not be used
// afterwards.
func (b *Builder) Build() *Database {
	if err := b.db.Validate(); err != nil {
		panic(err)
	}
	db := b.db
	b.db = nil
	return db
}

// BuildUnchecked returns the database without validating reachability, for
// intentionally partial fixtures.
func (b *Builder) BuildUnchecked() *Database {
	db := b.db
	b.db = nil
	return db
}
