// Package encoding implements the paper's Section 5.1 scheme for encoding a
// DOEM database as a plain OEM database, so that Chorel queries can be
// answered by a standard Lorel engine (the paper's "on top of Lore"
// implementation strategy).
//
// For each DOEM object o there is an encoding object o' with subobjects:
//
//	&val        the current value (atomic objects), or o' itself (complex)
//	&cre        the cre(t) timestamp, if any
//	&upd        one complex child per upd(t, ov) annotation, with
//	            &time, &ov and &nv children (&nv is materialized even
//	            though it is derivable, for efficiency of translation)
//	l           one arc per *current-snapshot* arc (o, l, p)
//	&l-history  one complex child per arc (o, l, p) ever present, holding
//	            &target plus one &add / &rem timestamp child per annotation
//
// Labels used by the encoding start with '&' to keep them disjoint from
// data labels.
package encoding

import (
	"fmt"
	"strings"

	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/value"
)

// Prefix is the reserved label prefix of the encoding.
const Prefix = "&"

// Reserved encoding labels.
const (
	LabelVal    = "&val"
	LabelCre    = "&cre"
	LabelUpd    = "&upd"
	LabelTime   = "&time"
	LabelOV     = "&ov"
	LabelNV     = "&nv"
	LabelTarget = "&target"
	LabelAdd    = "&add"
	LabelRem    = "&rem"
)

// HistoryLabel returns the &l-history label for a data label l.
func HistoryLabel(l string) string { return "&" + l + "-history" }

// DataLabel inverts HistoryLabel; ok is false for non-history labels.
func DataLabel(histLabel string) (string, bool) {
	if strings.HasPrefix(histLabel, "&") && strings.HasSuffix(histLabel, "-history") {
		return histLabel[1 : len(histLabel)-len("-history")], true
	}
	return "", false
}

// Encoding is the result of encoding a DOEM database: the OEM encoding plus
// the correspondence between DOEM objects and their encoding objects.
type Encoding struct {
	DB *oem.Database
	// Fwd maps each DOEM node to its encoding node o'.
	Fwd map[oem.NodeID]oem.NodeID
	// Rev maps each encoding node o' back to its DOEM node.
	Rev map[oem.NodeID]oem.NodeID
}

// Encode builds the OEM encoding of d. The encoding's root encodes d's root.
func Encode(d *doem.Database) *Encoding {
	out := oem.New()
	enc := &Encoding{
		DB:  out,
		Fwd: make(map[oem.NodeID]oem.NodeID),
		Rev: make(map[oem.NodeID]oem.NodeID),
	}

	// Collect every node ever present: current ones plus targets/sources of
	// retained removed arcs (deleted nodes stay reachable via history arcs).
	ids := allDOEMNodes(d)

	// Pass 1: allocate encoding objects. Every encoding object is complex
	// (atomic values move into &val children).
	for _, id := range ids {
		var eid oem.NodeID
		if id == d.Root() {
			eid = out.Root()
		} else {
			eid = out.CreateNode(value.Complex())
		}
		enc.Fwd[id] = eid
		enc.Rev[eid] = id
	}

	// Pass 2: per-object structure.
	for _, id := range ids {
		eid := enc.Fwd[id]
		v, _ := d.Value(id)

		// &val: atomic objects get an atomic child; complex objects point
		// to themselves (paper Section 5.1).
		if v.IsComplex() {
			mustAdd(out, eid, LabelVal, eid)
		} else {
			av := out.CreateNode(v)
			mustAdd(out, eid, LabelVal, av)
		}

		// &cre.
		if ct, ok := d.CreTime(id); ok {
			cn := out.CreateNode(value.Time(ct))
			mustAdd(out, eid, LabelCre, cn)
		}

		// &upd, one complex child per annotation, with &time, &ov, &nv.
		for _, u := range d.UpdTriples(id) {
			un := out.CreateNode(value.Complex())
			mustAdd(out, eid, LabelUpd, un)
			tn := out.CreateNode(value.Time(u.At))
			mustAdd(out, un, LabelTime, tn)
			ov := out.CreateNode(u.Old)
			mustAdd(out, un, LabelOV, ov)
			nv := out.CreateNode(u.New)
			mustAdd(out, un, LabelNV, nv)
		}

		// Arcs: current-snapshot arcs keep their label; every arc ever gets
		// an &l-history object.
		current := make(map[oem.Arc]bool)
		for _, a := range d.Out(id) {
			current[a] = true
			mustAdd(out, eid, a.Label, enc.Fwd[a.Child])
		}
		for _, a := range d.OutAll(id) {
			hn := out.CreateNode(value.Complex())
			mustAdd(out, eid, HistoryLabel(a.Label), hn)
			mustAdd(out, hn, LabelTarget, enc.Fwd[a.Child])
			for _, ann := range d.ArcAnnots(a) {
				var l string
				if ann.Kind == doem.AnnotAdd {
					l = LabelAdd
				} else {
					l = LabelRem
				}
				tn := out.CreateNode(value.Time(ann.At))
				mustAdd(out, hn, l, tn)
			}
		}
	}
	return enc
}

func allDOEMNodes(d *doem.Database) []oem.NodeID {
	seen := make(map[oem.NodeID]bool)
	var ids []oem.NodeID
	add := func(id oem.NodeID) {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	// Reachability over the *full* graph (live + removed arcs) from the root.
	stack := []oem.NodeID{d.Root()}
	add(d.Root())
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range d.OutAll(n) {
			if !seen[a.Child] {
				add(a.Child)
				stack = append(stack, a.Child)
			}
		}
	}
	return ids
}

func mustAdd(db *oem.Database, p oem.NodeID, l string, c oem.NodeID) {
	if err := db.AddArc(p, l, c); err != nil {
		panic(fmt.Sprintf("encoding: %v", err))
	}
}

// Stats summarizes encoding overhead for the B7 experiment.
type Stats struct {
	DOEMNodes   int
	DOEMArcs    int // arcs in the full DOEM graph (live + removed)
	Annotations int
	EncNodes    int
	EncArcs     int
}

// NodeFactor returns encoded nodes per DOEM node.
func (s Stats) NodeFactor() float64 { return float64(s.EncNodes) / float64(s.DOEMNodes) }

// ArcFactor returns encoded arcs per DOEM arc.
func (s Stats) ArcFactor() float64 { return float64(s.EncArcs) / float64(s.DOEMArcs) }

// Measure computes the overhead statistics for d and its encoding.
func Measure(d *doem.Database, e *Encoding) Stats {
	nodes := allDOEMNodes(d)
	arcs := 0
	for _, id := range nodes {
		arcs += len(d.OutAll(id))
	}
	return Stats{
		DOEMNodes:   len(nodes),
		DOEMArcs:    arcs,
		Annotations: d.NumAnnotations(),
		EncNodes:    e.DB.NumNodes(),
		EncArcs:     e.DB.NumArcs(),
	}
}
