// Package oemdiff infers basic change operations from two snapshots of an
// OEM database — the differencing component the paper's Query Subscription
// Service depends on (Section 6, after the CRGMW96/CGM97 change-detection
// work).
//
// Two modes are provided:
//
//   - DiffIdentity assumes the two snapshots share object identity (the same
//     node id denotes the same object), as when a Tsimmis wrapper exposes
//     stable ids. The diff is then exact set comparison.
//
//   - Diff matches objects structurally (label context, values, subtree
//     similarity) before generating operations — a simplified LaDiff-style
//     algorithm for sources that do not preserve ids (e.g. re-parsed web
//     pages).
//
// Both return a single change.Set U with U(old) = new (up to isomorphism in
// matching mode), suitable for one DOEM history step.
package oemdiff

import (
	"fmt"
	"sort"

	"repro/internal/change"
	"repro/internal/oem"
)

// DiffIdentity computes the exact change set between two snapshots that
// share object identity. Nodes present only in new become creNode (with
// their new arcs); arcs present only in old become remArc; value changes on
// common nodes become updNode.
func DiffIdentity(old, new *oem.Database) (change.Set, error) {
	if old.Root() != new.Root() {
		return nil, fmt.Errorf("oemdiff: snapshots have different roots (%s vs %s)", old.Root(), new.Root())
	}
	var set change.Set
	// Node creations and updates.
	for _, id := range new.Nodes() {
		nv := new.MustValue(id)
		ov, ok := old.Value(id)
		switch {
		case !ok:
			set = append(set, change.CreNode{Node: id, Value: nv})
		case !ov.Equal(nv):
			set = append(set, change.UpdNode{Node: id, Value: nv})
		}
	}
	// Arc changes.
	for _, a := range new.Arcs() {
		if !old.HasArc(a.Parent, a.Label, a.Child) {
			set = append(set, change.AddArc{Parent: a.Parent, Label: a.Label, Child: a.Child})
		}
	}
	for _, a := range old.Arcs() {
		if !new.HasArc(a.Parent, a.Label, a.Child) {
			set = append(set, change.RemArc{Parent: a.Parent, Label: a.Label, Child: a.Child})
		}
	}
	if err := set.Validate(old); err != nil {
		return nil, fmt.Errorf("oemdiff: inconsistent snapshots: %w", err)
	}
	return set, nil
}

// Options configures matching-based diffing.
type Options struct {
	// AllocID supplies fresh node ids for objects created by the diff.
	// When nil, ids are allocated above the maximum id of both snapshots.
	AllocID func() oem.NodeID
	// Threshold is the minimum similarity in [0,1] for matching two complex
	// objects. Zero means the default of 0.5.
	Threshold float64
}

// Match computes the structural matching between two snapshots without
// generating a script: the returned maps are old->new and new->old. Used by
// htmldiff to mark up insertions, deletions and updates.
func Match(old, new *oem.Database, opts *Options) (map[oem.NodeID]oem.NodeID, map[oem.NodeID]oem.NodeID) {
	d := newDiffer(old, new, opts)
	d.match(old.Root(), new.Root())
	return d.m, d.back
}

// Diff computes a change set transforming old into a database isomorphic to
// new, matching objects structurally. The returned set uses old's node ids
// for matched objects and freshly allocated ids for created ones.
func Diff(old, new *oem.Database, opts *Options) (change.Set, error) {
	d := newDiffer(old, new, opts)
	d.match(old.Root(), new.Root())
	return d.script()
}

func newDiffer(old, new *oem.Database, opts *Options) *differ {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.AllocID == nil {
		next := maxID(old)
		if m := maxID(new); m > next {
			next = m
		}
		o.AllocID = func() oem.NodeID { next++; return next }
	}
	d := &differ{old: old, new: new, opts: o,
		m:    make(map[oem.NodeID]oem.NodeID),
		back: make(map[oem.NodeID]oem.NodeID),
	}
	d.oldFP = old.Fingerprint()
	d.newFP = new.Fingerprint()
	d.oldBag = leafBags(old)
	d.newBag = leafBags(new)
	return d
}

// bag is a multiset of token hashes with a total count, used for
// content-overlap similarity.
type bag struct {
	counts map[uint64]int
	total  int
}

func (b *bag) add(tok uint64, n int) {
	if b.counts == nil {
		b.counts = make(map[uint64]int)
	}
	b.counts[tok] += n
	b.total += n
}

// dice returns the Dice coefficient of two bags.
func (b *bag) dice(o *bag) float64 {
	if b.total == 0 && o.total == 0 {
		return 1
	}
	if b.total == 0 || o.total == 0 {
		return 0
	}
	small, large := b, o
	if len(small.counts) > len(large.counts) {
		small, large = large, small
	}
	common := 0
	for tok, n := range small.counts {
		if m := large.counts[tok]; m > 0 {
			if m < n {
				common += m
			} else {
				common += n
			}
		}
	}
	return 2 * float64(common) / float64(b.total+o.total)
}

// leafBags computes, for every node, the multiset of word tokens of the
// atomic values in its subtree. Word-level tokens make similarity robust to
// small text edits ("price 10" vs "price 20" still overlaps heavily), the
// property LaDiff exploits for matching prose-like documents.
func leafBags(db *oem.Database) map[oem.NodeID]*bag {
	bags := make(map[oem.NodeID]*bag, db.NumNodes())
	var visit func(n oem.NodeID, path map[oem.NodeID]bool) *bag
	visit = func(n oem.NodeID, path map[oem.NodeID]bool) *bag {
		if b, ok := bags[n]; ok {
			return b
		}
		if path[n] {
			return &bag{} // cycle: contribute nothing on the back edge
		}
		path[n] = true
		defer delete(path, n)
		b := &bag{}
		v := db.MustValue(n)
		if !v.IsComplex() {
			for _, tok := range tokenize(v.Display()) {
				b.add(tok, 1)
			}
		}
		for _, a := range db.Out(n) {
			cb := visit(a.Child, path)
			for tok, cnt := range cb.counts {
				b.add(tok, cnt)
			}
		}
		bags[n] = b
		return b
	}
	visit(db.Root(), make(map[oem.NodeID]bool))
	// Nodes unreachable from the root (none in valid databases) get empty bags.
	for _, id := range db.Nodes() {
		if _, ok := bags[id]; !ok {
			bags[id] = &bag{}
		}
	}
	return bags
}

// tokenize splits a display string into word-token hashes.
func tokenize(s string) []uint64 {
	var toks []uint64
	start := -1
	for i := 0; i <= len(s); i++ {
		boundary := i == len(s) || s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == ',' || s[i] == '.' || s[i] == ';'
		if boundary {
			if start >= 0 {
				toks = append(toks, hash64(s[start:i]))
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return toks
}

func maxID(db *oem.Database) oem.NodeID {
	var m oem.NodeID
	for _, id := range db.Nodes() {
		if id > m {
			m = id
		}
	}
	return m
}

type differ struct {
	old, new       *oem.Database
	opts           Options
	m              map[oem.NodeID]oem.NodeID // old -> new
	back           map[oem.NodeID]oem.NodeID // new -> old
	oldFP, newFP   map[oem.NodeID]uint64
	oldBag, newBag map[oem.NodeID]*bag
}

// match records the pair (o, n) and recursively matches their children,
// label group by label group, greedily by similarity.
func (d *differ) match(o, n oem.NodeID) {
	if _, done := d.m[o]; done {
		return
	}
	if _, done := d.back[n]; done {
		return
	}
	d.m[o] = n
	d.back[n] = o

	oldByLabel := groupByLabel(d.old.Out(o))
	newByLabel := groupByLabel(d.new.Out(n))
	labels := make([]string, 0, len(oldByLabel))
	for l := range oldByLabel {
		if _, ok := newByLabel[l]; ok {
			labels = append(labels, l)
		}
	}
	sort.Strings(labels)
	for _, l := range labels {
		d.matchGroup(oldByLabel[l], newByLabel[l])
	}
}

func groupByLabel(arcs []oem.Arc) map[string][]oem.NodeID {
	g := make(map[string][]oem.NodeID)
	for _, a := range arcs {
		g[a.Label] = append(g[a.Label], a.Child)
	}
	return g
}

// matchGroup pairs old and new children that share an incoming label.
// Exact-fingerprint pairs match first (unchanged subtrees), then remaining
// pairs greedily by similarity above the threshold.
func (d *differ) matchGroup(olds, news []oem.NodeID) {
	usedOld := make(map[oem.NodeID]bool)
	usedNew := make(map[oem.NodeID]bool)
	// Pass 1: identical subtrees (equal fingerprints), in order.
	byFP := make(map[uint64][]oem.NodeID)
	for _, nn := range news {
		if _, taken := d.back[nn]; taken {
			continue
		}
		byFP[d.newFP[nn]] = append(byFP[d.newFP[nn]], nn)
	}
	for _, on := range olds {
		if _, taken := d.m[on]; taken {
			usedOld[on] = true
			continue
		}
		cands := byFP[d.oldFP[on]]
		for len(cands) > 0 {
			nn := cands[0]
			cands = cands[1:]
			byFP[d.oldFP[on]] = cands
			if usedNew[nn] {
				continue
			}
			if _, taken := d.back[nn]; taken {
				continue
			}
			usedOld[on] = true
			usedNew[nn] = true
			d.match(on, nn)
			break
		}
	}
	// Pass 2: greedy similarity matching of the remainder.
	type cand struct {
		o, n oem.NodeID
		sim  float64
	}
	var cands []cand
	for _, on := range olds {
		if usedOld[on] {
			continue
		}
		if _, taken := d.m[on]; taken {
			continue
		}
		for _, nn := range news {
			if usedNew[nn] {
				continue
			}
			if _, taken := d.back[nn]; taken {
				continue
			}
			if s := d.similarity(on, nn); s >= d.opts.Threshold {
				cands = append(cands, cand{on, nn, s})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].sim > cands[j].sim })
	for _, c := range cands {
		if usedOld[c.o] || usedNew[c.n] {
			continue
		}
		usedOld[c.o] = true
		usedNew[c.n] = true
		d.match(c.o, c.n)
	}
	// Unique-pair relaxation: when exactly one old and one new child remain
	// under this label, there is no ambiguity — accept the pair at a much
	// lower similarity bar. This keeps a container matched when all of its
	// children changed (the top-down analogue of LaDiff's bottom-up
	// propagation).
	ro, rn := remaining(olds, usedOld, d.m), remainingNew(news, usedNew, d.back)
	if len(ro) == 1 && len(rn) == 1 {
		if d.similarity(ro[0], rn[0]) >= d.opts.Threshold*0.4 {
			d.match(ro[0], rn[0])
		}
	}
}

func remaining(ids []oem.NodeID, used map[oem.NodeID]bool, taken map[oem.NodeID]oem.NodeID) []oem.NodeID {
	var out []oem.NodeID
	for _, id := range ids {
		if used[id] {
			continue
		}
		if _, t := taken[id]; t {
			continue
		}
		out = append(out, id)
	}
	return out
}

func remainingNew(ids []oem.NodeID, used map[oem.NodeID]bool, taken map[oem.NodeID]oem.NodeID) []oem.NodeID {
	return remaining(ids, used, taken)
}

// similarity estimates how alike two objects are, in [0,1]. Atomic objects
// compare values; complex objects compare their (label, child fingerprint)
// multisets with a Dice coefficient, which rewards shared unchanged
// children. A complex/atomic pair scores 0.
func (d *differ) similarity(o, n oem.NodeID) float64 {
	ov := d.old.MustValue(o)
	nv := d.new.MustValue(n)
	if ov.IsComplex() != nv.IsComplex() {
		return 0
	}
	if !ov.IsComplex() {
		if ov.Equal(nv) {
			return 1
		}
		// Same slot, different value: an update candidate.
		return d.opts.Threshold
	}
	oArcs := d.old.Out(o)
	nArcs := d.new.Out(n)
	if len(oArcs) == 0 && len(nArcs) == 0 {
		return 1
	}
	count := make(map[[2]uint64]int)
	for _, a := range oArcs {
		count[[2]uint64{hash64(a.Label), d.oldFP[a.Child]}]++
	}
	common := 0
	for _, a := range nArcs {
		k := [2]uint64{hash64(a.Label), d.newFP[a.Child]}
		if count[k] > 0 {
			count[k]--
			common++
		}
	}
	// Credit shared labels with changed children.
	lcount := make(map[string]int)
	for _, a := range oArcs {
		lcount[a.Label]++
	}
	labelCommon := 0
	for _, a := range nArcs {
		if lcount[a.Label] > 0 {
			lcount[a.Label]--
			labelCommon++
		}
	}
	dice := func(c int) float64 { return 2 * float64(c) / float64(len(oArcs)+len(nArcs)) }
	// Word-level content overlap of the two subtrees is the main signal:
	// it survives small text edits deep below (the common case in document
	// diffing), where per-child fingerprints all change. Either strong
	// content overlap alone or the blended structural score qualifies.
	content := d.oldBag[o].dice(d.newBag[n])
	blended := 0.5*content + 0.3*dice(common) + 0.2*dice(labelCommon)
	if content > blended {
		return content
	}
	return blended
}

func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// script generates the change set from the computed matching.
func (d *differ) script() (change.Set, error) {
	var set change.Set
	// Created objects: new nodes with no match.
	created := make(map[oem.NodeID]oem.NodeID) // new id -> allocated id
	idFor := func(nn oem.NodeID) oem.NodeID {
		if on, ok := d.back[nn]; ok {
			return on
		}
		if id, ok := created[nn]; ok {
			return id
		}
		id := d.opts.AllocID()
		created[nn] = id
		return id
	}
	for _, nn := range d.new.Nodes() {
		if _, matched := d.back[nn]; !matched {
			set = append(set, change.CreNode{Node: idFor(nn), Value: d.new.MustValue(nn)})
		}
	}
	// Updates on matched nodes.
	for _, on := range d.old.Nodes() {
		nn, ok := d.m[on]
		if !ok {
			continue
		}
		ov := d.old.MustValue(on)
		nv := d.new.MustValue(nn)
		if !ov.Equal(nv) {
			set = append(set, change.UpdNode{Node: on, Value: nv})
		}
	}
	// Arcs: express new's arcs in old's id space; add the missing, remove
	// the stale.
	want := make(map[oem.Arc]bool)
	for _, a := range d.new.Arcs() {
		want[oem.Arc{Parent: idFor(a.Parent), Label: a.Label, Child: idFor(a.Child)}] = true
	}
	have := make(map[oem.Arc]bool)
	for _, a := range d.old.Arcs() {
		have[a] = true
	}
	// Deterministic op order: sort arc keys.
	addList := make([]oem.Arc, 0)
	for a := range want {
		if !have[a] {
			addList = append(addList, a)
		}
	}
	remList := make([]oem.Arc, 0)
	for a := range have {
		if !want[a] {
			remList = append(remList, a)
		}
	}
	sortArcs(addList)
	sortArcs(remList)
	for _, a := range addList {
		set = append(set, change.AddArc{Parent: a.Parent, Label: a.Label, Child: a.Child})
	}
	for _, a := range remList {
		set = append(set, change.RemArc{Parent: a.Parent, Label: a.Label, Child: a.Child})
	}
	if err := set.Validate(d.old); err != nil {
		return nil, fmt.Errorf("oemdiff: generated script invalid: %w", err)
	}
	return set, nil
}

func sortArcs(arcs []oem.Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Child < b.Child
	})
}

// Cost summarizes a change set for reporting.
type Cost struct {
	Creates, Updates, Adds, Removes int
}

// Total returns the total operation count.
func (c Cost) Total() int { return c.Creates + c.Updates + c.Adds + c.Removes }

// Measure tallies a change set by operation kind.
func Measure(set change.Set) Cost {
	var c Cost
	for _, op := range set {
		switch op.(type) {
		case change.CreNode:
			c.Creates++
		case change.UpdNode:
			c.Updates++
		case change.AddArc:
			c.Adds++
		case change.RemArc:
			c.Removes++
		}
	}
	return c
}
