package repl

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

const failoverSteps = 8

// failoverPrimaryCfg: quorum of the 2-node cluster = the one follower.
func failoverPrimaryCfg() Config {
	return Config{ID: "p", Ack: AckQuorum, Replicas: 1, AckTimeout: 150 * time.Millisecond}
}

// dialOnce returns a Dialer connecting to p through wrap exactly once;
// every later dial fails — the primary is "dead" after the stream severs.
func dialOnce(p *Node, wrap func(net.Conn) net.Conn) Dialer {
	var used bool
	return func() (net.Conn, error) {
		if used {
			return nil, errors.New("primary dead")
		}
		used = true
		a, b := net.Pipe()
		if wrap != nil {
			b = wrap(b)
		}
		go p.HandleConn(b)
		return a, nil
	}
}

// countConn counts bytes written through it.
type countConn struct {
	net.Conn
	n *int64
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	atomic.AddInt64(c.n, int64(n))
	return n, err
}

// measureStreamBytes runs the scenario with no fault and returns how many
// bytes the primary writes to replicate failoverSteps records — the offset
// space the crash test sweeps.
func measureStreamBytes(t *testing.T) int64 {
	t.Helper()
	p := newTestNode(t, failoverPrimaryCfg())
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	f := newTestNode(t, Config{ID: "f"})
	var written int64
	dial := dialOnce(p.n, func(c net.Conn) net.Conn { return countConn{Conn: c, n: &written} })
	if err := f.n.Follow(dial); err != nil {
		t.Fatal(err)
	}
	p.applySteps("db", 0, failoverSteps)
	waitFor(t, "clean catch-up", func() bool { return f.n.Status().Applied == failoverSteps })
	return atomic.LoadInt64(&written)
}

// TestFailoverByteExact is the issue's core robustness property: kill the
// primary at an arbitrary byte offset mid-stream, promote the follower,
// and the promoted node's history must be byte-identical to the
// acknowledged prefix (acked writes survive; the follower's oplog is a
// verbatim byte prefix of the dead primary's).
func TestFailoverByteExact(t *testing.T) {
	total := measureStreamBytes(t)
	if total <= 0 {
		t.Fatalf("measured stream length %d", total)
	}
	step := total / 24
	if testing.Short() {
		step = total / 6
	}
	if step < 1 {
		step = 1
	}
	offsets := []int64{0, 1, 2, 3}
	for off := step; off <= total; off += step {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		off := off
		t.Run(fmt.Sprintf("cut%04d", off), func(t *testing.T) { runFailoverAt(t, off) })
	}
}

func runFailoverAt(t *testing.T, cutAt int64) {
	p := newTestNode(t, failoverPrimaryCfg())
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	oldEpoch := p.n.Epoch()
	f := newTestNode(t, Config{ID: "f"})
	dial := dialOnce(p.n, func(c net.Conn) net.Conn { return faults.CutAfterBytes(c, cutAt) })
	if err := f.n.Follow(dial); err != nil {
		t.Fatal(err)
	}

	// Drive writes until one goes unacknowledged (the cut) or all land.
	var ackedSeq uint64
	var applyErr error
	for i := 0; i < failoverSteps; i++ {
		s := testStep(i)
		seq, err := p.n.ApplyStep("db", s.At, s.Ops)
		if err != nil {
			if !errors.Is(err, ErrAckTimeout) {
				t.Fatalf("apply step %d: %v", i, err)
			}
			applyErr = err
			break
		}
		ackedSeq = seq
	}
	if applyErr != nil {
		// The severed session must unwind on the primary too.
		waitFor(t, "session teardown", func() bool { return p.n.Status().Followers == 0 })
	}

	// Crash the primary and capture its on-disk history.
	p.n.Close()
	pBytes := oplogBytes(t, p.dir)

	// Promote the survivor: new epoch, its log becomes authoritative. The
	// new epoch outranks the dead primary's as soon as the follower ever
	// heard from it (any frame carries the epoch); with zero contact — cut
	// before the Welcome — there is nothing to outrank and nothing acked.
	preEpoch := f.n.Epoch()
	hadContact := preEpoch >= oldEpoch || f.n.Status().Applied > 0
	if err := f.n.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := f.n.Epoch(); got <= preEpoch {
		t.Fatalf("promoted epoch %d not above %d", got, preEpoch)
	}
	if hadContact && f.n.Epoch() <= oldEpoch {
		t.Fatalf("promoted epoch %d not above deposed primary's %d", f.n.Epoch(), oldEpoch)
	}
	if ackedSeq > 0 && !hadContact {
		t.Fatalf("cut %d: records acked without any follower contact", cutAt)
	}
	fBytes := oplogBytes(t, f.dir)

	// Byte-identity: the follower's oplog is a verbatim prefix of the dead
	// primary's, and it contains at least every acknowledged record.
	if !bytes.HasPrefix(pBytes, fBytes) {
		t.Fatalf("cut %d: follower oplog (%d bytes) is not a byte prefix of primary's (%d bytes)",
			cutAt, len(fBytes), len(pBytes))
	}
	st := f.n.Status()
	if st.Applied < ackedSeq {
		t.Fatalf("cut %d: promoted node applied=%d < acknowledged %d", cutAt, st.Applied, ackedSeq)
	}
	if st.Commit != st.Applied {
		t.Fatalf("cut %d: promoted commit=%d applied=%d", cutAt, st.Commit, st.Applied)
	}
	if ackedSeq > 0 {
		d, err := f.state.Store().GetDOEM("db")
		if err != nil {
			t.Fatalf("cut %d: %v", cutAt, err)
		}
		want := testStep(int(ackedSeq) - 1).At
		if d.LastStep().Before(want) {
			t.Fatalf("cut %d: promoted history ends %v, acknowledged through %v", cutAt, d.LastStep(), want)
		}
	}

	// The new primary accepts writes under the new epoch (ack mode none on
	// this node: it has no followers yet).
	s := testStep(failoverSteps)
	if _, err := f.n.ApplyStep("db", s.At, s.Ops); err != nil {
		t.Fatalf("cut %d: write on promoted node: %v", cutAt, err)
	}
}
