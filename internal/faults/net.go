package faults

// In-memory network for replication tests: named hosts, asymmetric
// partitions, per-direction delay, and seeded chunk reorder. Each
// direction of a connection is an independent queue, so "A can reach B
// but B cannot reach A" is directly expressible — the classic asymmetric
// partition that wedges naive replication protocols.
//
// Semantics are deliberately partition-realistic:
//
//   - Cut(from, to) blackholes that direction: in-flight chunks are
//     dropped and later writes succeed locally but never arrive, exactly
//     like packets into a dead link. A byte stream that spans a cut has a
//     hole in it after Heal, so framed protocols will (must!) detect
//     corruption and drop the connection; reconnecting through Dial after
//     Heal gives a clean stream.
//   - Dial fails while either direction between the hosts is cut (the
//     handshake needs both).
//   - Reorder delays a seeded-random subset of chunks so they overtake
//     later writes. Which chunks are chosen is deterministic per seed;
//     stream-level protocols must reject the resulting corruption rather
//     than misapply it.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrUnreachable reports a dial through a cut or unknown route.
var ErrUnreachable = errors.New("faults: host unreachable")

// reorderBy is how much extra delay a reordered chunk receives — enough
// to land after subsequently written chunks.
const reorderBy = 3 * time.Millisecond

type dirKey struct{ from, to string }

type linkState struct {
	cut     bool
	delay   time.Duration
	reorder float64 // probability a chunk is delayed past its successors
}

// Net is a deterministic in-memory network of named hosts.
type Net struct {
	mu        sync.Mutex
	rng       *rand.Rand
	links     map[dirKey]*linkState
	queues    map[dirKey][]*dirQueue
	listeners map[string]*memListener
}

// NewNet builds a network whose reorder decisions derive from seed.
func NewNet(seed int64) *Net {
	return &Net{
		rng:       rand.New(rand.NewSource(seed)),
		links:     make(map[dirKey]*linkState),
		queues:    make(map[dirKey][]*dirQueue),
		listeners: make(map[string]*memListener),
	}
}

func (n *Net) linkLocked(k dirKey) *linkState {
	l := n.links[k]
	if l == nil {
		l = &linkState{}
		n.links[k] = l
	}
	return l
}

// Cut blackholes the from→to direction: pending chunks are dropped and
// later writes vanish. The reverse direction is unaffected.
func (n *Net) Cut(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := dirKey{from, to}
	n.linkLocked(k).cut = true
	for _, q := range n.queues[k] {
		q.flush()
	}
}

// CutBoth cuts both directions between a and b — a full partition.
func (n *Net) CutBoth(a, b string) {
	n.Cut(a, b)
	n.Cut(b, a)
}

// Heal restores the from→to direction. Bytes dropped while cut stay
// dropped.
func (n *Net) Heal(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(dirKey{from, to}).cut = false
}

// HealAll removes every cut.
func (n *Net) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		l.cut = false
	}
}

// SetDelay adds a fixed delivery delay to the from→to direction.
func (n *Net) SetDelay(from, to string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(dirKey{from, to}).delay = d
}

// SetReorder makes each chunk on from→to overtake its successors with the
// given probability (seeded, deterministic per chunk sequence).
func (n *Net) SetReorder(from, to string, rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(dirKey{from, to}).reorder = rate
}

// isCut reports whether from→to is currently blackholed.
func (n *Net) isCut(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.links[dirKey{from, to}]
	return l != nil && l.cut
}

// sendPlan samples the current link state for one written chunk.
func (n *Net) sendPlan(from, to string) (cut bool, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.links[dirKey{from, to}]
	if l == nil {
		return false, 0
	}
	if l.cut {
		return true, 0
	}
	delay = l.delay
	if l.reorder > 0 && n.rng.Float64() < l.reorder {
		delay += reorderBy
	}
	return false, delay
}

// Listen registers host as accepting connections and returns its listener.
func (n *Net) Listen(host string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[host]; ok {
		return nil, fmt.Errorf("faults: %s already listening", host)
	}
	ln := &memListener{net: n, host: host, accept: make(chan *memConn, 64)}
	n.listeners[host] = ln
	return ln, nil
}

// Dial connects from→to. It fails while either direction is cut or no
// listener is registered at to.
func (n *Net) Dial(from, to string) (net.Conn, error) {
	n.mu.Lock()
	ln := n.listeners[to]
	n.mu.Unlock()
	if ln == nil || n.isCut(from, to) || n.isCut(to, from) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	fwd := newDirQueue(n, from, to) // dialer writes, acceptor reads
	rev := newDirQueue(n, to, from)
	n.mu.Lock()
	n.queues[dirKey{from, to}] = append(n.queues[dirKey{from, to}], fwd)
	n.queues[dirKey{to, from}] = append(n.queues[dirKey{to, from}], rev)
	n.mu.Unlock()
	dialer := &memConn{net: n, localHost: from, remoteHost: to, r: rev, w: fwd}
	acceptor := &memConn{net: n, localHost: to, remoteHost: from, r: fwd, w: rev}
	select {
	case ln.accept <- acceptor:
		return dialer, nil
	case <-ln.done():
		return nil, fmt.Errorf("%w: %s listener closed", ErrUnreachable, to)
	}
}

type memListener struct {
	net    *Net
	host   string
	accept chan *memConn

	mu     sync.Mutex
	closed chan struct{}
}

func (l *memListener) done() chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed == nil {
		l.closed = make(chan struct{})
	}
	return l.closed
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done():
		return nil, fmt.Errorf("faults: %s listener closed", l.host)
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	l.mu.Lock()
	done := l.closed
	if done == nil {
		done = make(chan struct{})
		l.closed = done
	}
	l.mu.Unlock()
	select {
	case <-done:
	default:
		close(done)
	}
	l.net.mu.Lock()
	if l.net.listeners[l.host] == l {
		delete(l.net.listeners, l.host)
	}
	l.net.mu.Unlock()
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.host) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// dirQueue is one direction of a connection: a queue of delivered chunks.
// Delay is realized by deferring the enqueue, so readers only ever see
// chunks that are due.
type dirQueue struct {
	net      *Net
	from, to string

	mu     sync.Mutex
	cond   *sync.Cond
	chunks [][]byte
	closed bool
}

func newDirQueue(n *Net, from, to string) *dirQueue {
	q := &dirQueue{net: n, from: from, to: to}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *dirQueue) push(data []byte) {
	// A chunk due after the direction was cut is dropped too.
	if q.net.isCut(q.from, q.to) {
		return
	}
	q.mu.Lock()
	if !q.closed {
		q.chunks = append(q.chunks, data)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *dirQueue) flush() {
	q.mu.Lock()
	q.chunks = nil
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *dirQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// read pops bytes, draining buffered chunks before reporting EOF on a
// closed queue. expired reports whether the caller's read deadline passed.
func (q *dirQueue) read(p []byte, expired func() bool) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.chunks) == 0 {
		if q.closed {
			return 0, io.EOF
		}
		if expired != nil && expired() {
			return 0, &timeoutError{}
		}
		q.cond.Wait()
	}
	n := copy(p, q.chunks[0])
	if n == len(q.chunks[0]) {
		q.chunks = q.chunks[1:]
	} else {
		q.chunks[0] = q.chunks[0][n:]
	}
	return n, nil
}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "faults: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// memConn is one endpoint of an in-memory connection.
type memConn struct {
	net                   *Net
	localHost, remoteHost string
	r, w                  *dirQueue

	mu           sync.Mutex
	closed       bool
	readDeadline time.Time
}

// Read implements net.Conn.
func (c *memConn) Read(p []byte) (int, error) {
	return c.r.read(p, func() bool {
		c.mu.Lock()
		d := c.readDeadline
		c.mu.Unlock()
		return !d.IsZero() && time.Now().After(d)
	})
}

// Write implements net.Conn.
func (c *memConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, errors.New("faults: write on closed connection")
	}
	cut, delay := c.net.sendPlan(c.localHost, c.remoteHost)
	if cut {
		// Blackholed: the sender cannot tell.
		return len(p), nil
	}
	data := append([]byte(nil), p...)
	if delay > 0 {
		q := c.w
		time.AfterFunc(delay, func() { q.push(data) })
	} else {
		c.w.push(data)
	}
	return len(p), nil
}

// Close implements net.Conn. Both directions end; the peer drains buffered
// data and then reads EOF.
func (c *memConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.r.close()
	c.w.close()
	return nil
}

// LocalAddr implements net.Conn.
func (c *memConn) LocalAddr() net.Addr { return memAddr(c.localHost) }

// RemoteAddr implements net.Conn.
func (c *memConn) RemoteAddr() net.Addr { return memAddr(c.remoteHost) }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *memConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *memConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	if !t.IsZero() {
		q := c.r
		time.AfterFunc(time.Until(t), func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
	}
	return nil
}

// SetWriteDeadline implements net.Conn. Writes are buffered and never
// block, so this is a no-op.
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// ByteLimitConn truncates the write stream at an exact byte offset and
// then kills the connection — "the process died mid-frame at byte N",
// the crash-at-offset primitive for replication stream tests. Reads pass
// through until the cut.
type ByteLimitConn struct {
	net.Conn

	mu      sync.Mutex
	remain  int64
	tripped bool
}

// ErrByteLimit reports a write cut at the configured byte boundary.
var ErrByteLimit = errors.New("faults: connection cut at byte limit")

// CutAfterBytes wraps inner so that exactly limit bytes of writes are
// transmitted; the write that crosses the boundary transmits its prefix,
// the connection is closed, and every later write fails.
func CutAfterBytes(inner net.Conn, limit int64) *ByteLimitConn {
	return &ByteLimitConn{Conn: inner, remain: limit}
}

// Write implements net.Conn.
func (c *ByteLimitConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return 0, ErrByteLimit
	}
	if int64(len(p)) <= c.remain {
		c.remain -= int64(len(p))
		c.mu.Unlock()
		return c.Conn.Write(p)
	}
	keep := c.remain
	c.remain = 0
	c.tripped = true
	c.mu.Unlock()
	n := 0
	if keep > 0 {
		n, _ = c.Conn.Write(p[:keep])
	}
	c.Conn.Close()
	return n, ErrByteLimit
}

// Tripped reports whether the byte limit has been hit.
func (c *ByteLimitConn) Tripped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}
