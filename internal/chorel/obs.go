package chorel

import "repro/internal/obs"

// Translation metrics (see docs/observability.md).
var (
	mTranslations   = obs.NewCounter("chorel_translations_total")
	mUntranslatable = obs.NewCounter("chorel_untranslatable_total")
	mRewriteSteps   = obs.NewCounter("chorel_rewrite_steps_total")
	mTranslateNs    = obs.NewHistogram("chorel_translate_ns")
)
