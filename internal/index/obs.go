package index

import (
	"os"
	"sync/atomic"
	"time"

	"repro/internal/doem"
	"repro/internal/lorel"
	"repro/internal/obs"
)

// Index metrics, visible in obs.Snapshot() and on /metrics when
// collection is enabled. Names are documented in docs/indexing.md.
var (
	mBuilds          = obs.NewCounter("index_builds_total")
	mBuildNs         = obs.NewHistogram("index_build_ns")
	mCacheHits       = obs.NewCounter("index_snapshot_cache_hits_total")
	mCacheMisses     = obs.NewCounter("index_snapshot_cache_misses_total")
	mCacheEvictions  = obs.NewCounter("index_snapshot_cache_evictions_total")
	mSnapshotBuildNs = obs.NewHistogram("index_snapshot_build_ns")
)

func now() time.Time { return obs.Now() }

// disabled flips the package-wide default from indexed to unindexed. It
// only affects Wrap; explicitly constructed Graphs keep working.
var disabled atomic.Bool

func init() {
	if v := os.Getenv("REPRO_NOINDEX"); v != "" && v != "0" {
		disabled.Store(true)
	}
}

// Enabled reports whether Wrap currently returns indexed graphs. The
// default is on; the REPRO_NOINDEX environment variable or a -noindex
// command flag (via SetEnabled) turns it off.
func Enabled() bool { return !disabled.Load() }

// SetEnabled sets the package-wide default and returns the previous value.
func SetEnabled(on bool) (prev bool) { return !disabled.Swap(!on) }

// Wrap returns d behind an indexed Graph when indexing is enabled, or d
// itself (the unindexed baseline) when it is not. This is the single
// switch point the engines register their databases through.
func Wrap(d *doem.Database) lorel.Graph {
	if !Enabled() {
		return d
	}
	return NewGraph(d)
}
