package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// The -check mode is the CI bench-regression gate: it runs the -json
// suite fresh and compares its headline metrics against a committed
// baseline report (BENCH_*.json). The headlines are all machine-relative
// ratios (speedups and growth factors), so a baseline recorded on one
// machine remains meaningful on another; absolute ns/op numbers are
// reported but never gated on.

// checkThreshold is the relative regression that fails the gate: a
// headline may not degrade by more than 25% against the baseline.
const checkThreshold = 0.25

// checkSlack is an absolute allowance on top of the relative threshold:
// ratios near 1 (the flatness factors) jitter by run-to-run noise that a
// purely relative bound would misread as regression.
const checkSlack = 0.2

type headlineMetric struct {
	name string
	get  func(*benchReport) float64
	// higherBetter: speedups regress downward; flatness/growth factors
	// regress upward.
	higherBetter bool
}

var headlineMetrics = []headlineMetric{
	{"parallel_speedup_4", func(r *benchReport) float64 { return r.ParallelSpeedup4 }, true},
	{"planner_selective_speedup_10k", func(r *benchReport) float64 { return r.PlannerSelectiveSpeedup10k }, true},
	{"index_at_query_speedup_10k", func(r *benchReport) float64 { return r.IndexAtQuerySpeedup10k }, true},
	{"index_at_snapshot_speedup_10k", func(r *benchReport) float64 { return r.IndexAtSnapshotSpeedup10k }, true},
	{"segment_at_query_flatness_10x", func(r *benchReport) float64 { return r.SegmentAtQueryFlatness10x }, false},
	{"segment_open_flatness_10x", func(r *benchReport) float64 { return r.SegmentOpenFlatness10x }, false},
	{"repl_ackone_poll_overhead", func(r *benchReport) float64 { return r.ReplAckOnePollOverhead }, false},
	{"incr_notify_speedup_10k", func(r *benchReport) float64 { return r.IncrNotifySpeedup10k }, true},
	{"incr_notify_flatness_10x", func(r *benchReport) float64 { return r.IncrNotifyFlatness10x }, false},
	{"intern_eval_speedup_10k", func(r *benchReport) float64 { return r.InternEvalSpeedup10k }, true},
	{"exists_early_exit_ratio", func(r *benchReport) float64 { return r.ExistsEarlyExitRatio }, true},
}

func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// runCheck runs the benchmark suite fresh, writes its report to outPath
// (a temporary file when empty), and fails on any headline regression
// beyond the threshold.
func runCheck(baselinePath, outPath string) error {
	base, err := readReport(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if outPath == "" {
		dir, err := os.MkdirTemp("", "benchcheck")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		outPath = filepath.Join(dir, "bench.json")
	}
	if err := runJSON(outPath); err != nil {
		return err
	}
	fresh, err := readReport(outPath)
	if err != nil {
		return fmt.Errorf("fresh report: %w", err)
	}

	fmt.Printf("\nbench-check: fresh run vs %s (threshold %.0f%% + %.2g slack)\n",
		baselinePath, checkThreshold*100, checkSlack)
	fmt.Printf("  %-34s %10s %10s  %s\n", "headline", "baseline", "fresh", "verdict")
	regressions := 0
	for _, m := range headlineMetrics {
		b, f := m.get(base), m.get(fresh)
		if b == 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			// Metric absent from an older baseline: report, don't gate.
			fmt.Printf("  %-34s %10s %10.2f  skipped (not in baseline)\n", m.name, "-", f)
			continue
		}
		bad := false
		if m.higherBetter {
			bad = f < b*(1-checkThreshold)-checkSlack
		} else {
			bad = f > b*(1+checkThreshold)+checkSlack
		}
		verdict := "ok"
		if bad {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-34s %10.2f %10.2f  %s\n", m.name, b, f, verdict)
	}
	if regressions > 0 {
		return fmt.Errorf("%d headline metric(s) regressed beyond %.0f%%", regressions, checkThreshold*100)
	}
	fmt.Println("bench-check: all headline metrics within threshold")
	return nil
}
