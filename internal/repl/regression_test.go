package repl

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"

	"repro/internal/wal"
)

// TestApplyFencedMidQuorumWaitReturnsSeq: a primary deposed while blocked
// on the ack quorum has already appended and applied the record; Apply
// must report the sequence (not 0) so callers know the record is durable
// and do not roll back state the oplog carries.
func TestApplyFencedMidQuorumWaitReturnsSeq(t *testing.T) {
	p := newTestNode(t, Config{ID: "p", Ack: AckQuorum, Replicas: 2})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	type res struct {
		seq uint64
		err error
	}
	ch := make(chan res, 1)
	s := testStep(0)
	go func() {
		seq, err := p.n.ApplyStep("db", s.At, s.Ops)
		ch <- res{seq, err}
	}()
	// The append+apply happen before the quorum wait; once Applied is
	// visible the writer is blocked waiting for acks that never come.
	waitFor(t, "record appended", func() bool { return p.n.Status().Applied == 1 })
	p.n.Demote()
	r := <-ch
	if !errors.Is(r.err, ErrFenced) {
		t.Fatalf("deposed mid-wait apply: %v", r.err)
	}
	if r.seq != 1 {
		t.Fatalf("deposed mid-wait seq = %d, want 1 (record is durable)", r.seq)
	}
	if st := p.n.Status(); st.Applied != 1 {
		t.Fatalf("status after deposed apply: %+v", st)
	}
}

// flakyState wraps StoreState with a one-shot Apply failure.
type flakyState struct {
	*StoreState
	mu   sync.Mutex
	fail bool
}

func (s *flakyState) Apply(name string, data []byte) error {
	s.mu.Lock()
	fail := s.fail
	s.fail = false
	s.mu.Unlock()
	if fail {
		return errors.New("injected apply failure")
	}
	return s.StoreState.Apply(name, data)
}

func (s *flakyState) failNext() {
	s.mu.Lock()
	s.fail = true
	s.mu.Unlock()
}

// TestStateApplyFailureClosesNode: a State.Apply failure after a
// successful log append leaves log and state irreconcilable — the node
// must stop (no further writes, no streaming of the record its own state
// skipped); a restart replays the log and repairs the divergence.
func TestStateApplyFailureClosesNode(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyState{StoreState: NewStoreState()}
	n, err := Open(dir, fs, Config{ID: "p", WAL: &wal.Options{Sync: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Promote(); err != nil {
		t.Fatal(err)
	}
	s0 := testStep(0)
	if _, err := n.ApplyStep("db", s0.At, s0.Ops); err != nil {
		t.Fatal(err)
	}

	fs.failNext()
	s1 := testStep(1)
	seq, err := n.ApplyStep("db", s1.At, s1.Ops)
	if err == nil {
		t.Fatal("apply with failing state succeeded")
	}
	if seq != 2 {
		t.Fatalf("failed apply seq = %d, want 2 (record was appended)", seq)
	}
	s2 := testStep(2)
	if _, err := n.ApplyStep("db", s2.At, s2.Ops); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after log/state divergence: %v (want ErrClosed)", err)
	}

	// Reopen: the replay includes the orphaned record, so log and state
	// agree again.
	n2, err := Open(dir, NewStoreState(), Config{ID: "p", WAL: &wal.Options{Sync: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if got := n2.Status().Applied; got != 2 {
		t.Fatalf("applied after restart = %d, want 2", got)
	}
}

// TestCheckpointBoundaryDivergence: a follower whose last record sits
// exactly at the primary's checkpoint base — where the record bytes may
// have been compacted away — must still be verified. A matching tip
// (same seq and record epoch as the primary's) streams; a mismatched one
// is reset from a snapshot instead of silently extending a divergent tail.
func TestCheckpointBoundaryDivergence(t *testing.T) {
	p := newTestNode(t, Config{ID: "p"})
	if err := p.n.Promote(); err != nil {
		t.Fatal(err)
	}
	p.applySteps("db", 0, 5)
	// Compact at the applied position: base == applied == 5.
	if err := p.n.Compact(); err != nil {
		t.Fatal(err)
	}

	handshake := func(recEpoch uint64) (Frame, net.Conn) {
		t.Helper()
		a, b := net.Pipe()
		go p.n.HandleConn(b)
		hello := Frame{Type: FrameHello, Epoch: p.n.Epoch(), Seq: 5, Commit: recEpoch, Payload: handshakePayload("f")}
		if err := WriteFrame(a, hello); err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(a)
		w, err := ReadFrame(br, DefaultMaxFrame)
		if err != nil || w.Type != FrameWelcome {
			t.Fatalf("welcome: %+v, %v", w, err)
		}
		// Force a post-welcome frame so acceptance is observable: a new
		// record streams from seq 6 to an accepted follower.
		s := testStep(int(p.n.Status().Applied))
		go p.n.ApplyStep("db", s.At, s.Ops)
		f, err := ReadFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		return f, a
	}

	// Matching boundary record (records 1..5 were written at epoch 1):
	// streamed, no reset — even though the record bytes at the boundary
	// may be gone.
	f, conn := handshake(1)
	if f.Type != FrameRecord {
		t.Fatalf("matching boundary follower got frame type %d, want record", f.Type)
	}
	conn.Close()

	// Divergent boundary record (epoch from a deposed primary): snapshot.
	f, conn = handshake(p.n.Epoch() + 7)
	if f.Type != FrameSnapshot {
		t.Fatalf("divergent boundary follower got frame type %d, want snapshot", f.Type)
	}
	conn.Close()
}

// TestWelcomeDoesNotRegressCommitKnown: a reconnect Welcome carrying an
// older commit watermark must not lower what the follower already knows.
func TestWelcomeDoesNotRegressCommitKnown(t *testing.T) {
	f := newTestNode(t, Config{ID: "f"})
	f.n.mu.Lock()
	f.n.commitKnown = 7
	f.n.mu.Unlock()

	a, b := net.Pipe()
	defer a.Close()
	done := make(chan error, 1)
	go func() { done <- f.n.pump(b, make(chan struct{})) }()
	br := bufio.NewReader(a)
	if h, err := ReadFrame(br, DefaultMaxFrame); err != nil || h.Type != FrameHello {
		t.Fatalf("hello: %+v, %v", h, err)
	}
	w := Frame{Type: FrameWelcome, Seq: 0, Commit: 3, Payload: handshakePayload("addr")}
	if err := WriteFrame(a, w); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "welcome processed", func() bool { return f.n.PrimaryAddr() == "addr" })
	f.n.mu.Lock()
	ck := f.n.commitKnown
	f.n.mu.Unlock()
	if ck != 7 {
		t.Fatalf("commitKnown regressed to %d, want 7", ck)
	}
	a.Close()
	<-done
}
