package timestamp

import "testing"

// FuzzParse: the flexible timestamp parser must never panic, and successful
// parses must render and re-parse consistently at second resolution.
func FuzzParse(f *testing.F) {
	for _, s := range []string{"1Jan97", "4Jan97 11:30pm", "1997-01-01", "-inf", "852076800", "Jan 5, 1997", "gibberish"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ts, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(ts.String())
		if err != nil {
			t.Fatalf("rendered form %q of %q does not re-parse: %v", ts, src, err)
		}
		// The rendered form is canonical only within the two-digit-year
		// window; outside it the re-parse may alias, which is acceptable,
		// but it must never error.
		_ = back
	})
}
